#!/usr/bin/env python3
"""ujoin_lint: repo-specific invariant linter for the ujoin codebase.

The runtime test suite proves the repo's determinism and allocation
invariants on the inputs it runs; this linter enforces the coding rules
those invariants depend on *statically*, so a violation is caught in any
code path, compiled or not.  It is a regex-AST hybrid: a small lexer strips
comments and literals, a brace tracker attributes code to functions, and
per-rule regexes run over the stripped source.  (libclang is not available
in the build container; the lexer+tracker recovers the structure the rules
need.)

Rules (see DESIGN.md "Static analysis and CI gates"):

  rng-source
      rand()/srand()/time()/std::random_device/std::mt19937 anywhere except
      src/util/rng.h.  Every randomized component must draw from the seeded
      ujoin::Rng so runs are reproducible across machines and reruns.

  unordered-iteration
      Iterating an unordered_{map,set,multimap,multiset} (range-for or
      explicit begin()) in files that produce join results or serialized
      output.  Unordered iteration order depends on hash seeding and
      insertion history, which silently breaks byte-identical results
      across thread counts and save/load round-trips.

  probe-path-alloc
      new/malloc-family/make_unique/make_shared or construction of a local
      allocating container inside the frozen probe path
      (flat_postings, segment_index, probe_set), outside whitelisted
      build/freeze functions.  The steady-state probe path must not
      allocate; the operator-new hook tests prove it at runtime for tested
      inputs, this rule keeps untested branches honest.

  obs-macro-only
      Direct Recorder recording calls (RecordHist/AddCounter/SetGauge/
      AddFunnel) outside src/obs/.  Instrumentation must go through the
      UJOIN_OBS_* macros so -DUJOIN_OBS=OFF compiles it out and every site
      keeps the null-recorder guard.

  simd-intrinsics
      Raw SIMD intrinsics (immintrin/arm_neon includes, _mm*/__m* tokens,
      NEON v*_type calls, __builtin_prefetch / __builtin_cpu_supports)
      anywhere except src/util/simd*.  All vector code lives behind the
      dispatched wrappers in util/simd.h so -DUJOIN_SIMD=off and
      non-x86 builds keep compiling, and so the differential kernel test
      covers every intrinsic ever written.

  simd-dispatch-fallback
      A vector kernel variant (FooSse2 / FooAvx2 / FooNeon definition in
      src/util/simd*) whose scalar reference scalar::Foo does not exist
      anywhere in the kernel layer.  Every runtime-dispatch entry point
      must have an always-available scalar fallback — it is both the
      -DUJOIN_SIMD=off implementation and the bit-identity oracle the
      differential test compares against.

  query-log-api
      JsonWriter use in src/serve/ outside protocol.cc.  Serve-layer JSON
      (responses, /healthz, query-log records, the /debug/slow page) must
      be rendered through the shared renderers — protocol.cc for the wire
      protocol, the obs::QueryLog/RenderSlowQueriesPage API for records —
      so tools/validate_query_log.py and the byte-golden tests pin every
      byte that leaves the server.  Ad-hoc JsonWriter use in the server
      would create a second, unvalidated serialization path.

  flight-macro-only
      Direct FlightRecorder::RecordEvent calls outside src/obs/.  Flight
      events must be recorded through UJOIN_OBS_FLIGHT_EVENT so
      -DUJOIN_OBS=OFF compiles them out and every site stays on the
      alloc/lock/io-free record path the flight-path effects contract
      proves (tools/ujoin_effects.py).

  stale-suppression
      An `ujoin-lint: allow(<rule>)` comment that suppresses nothing: the
      code it excused was refactored away, or the rule name is a typo and
      it never worked.  Either way it is a silent escape hatch held open
      for the next edit.  Stale suppressions are not themselves
      suppressible — delete the comment.  (tools/ujoin_effects.py runs
      the same check over unused `ujoin-effect: assumes(...)`.)

Suppression: append `// ujoin-lint: allow(<rule>)` on the offending line
(or the line above) with a reason.  Suppressions are deliberate, reviewed
escapes — e.g. the legacy allocating Query overloads kept for API
compatibility — and must stay load-bearing: an allow() that no longer
suppresses anything is reported by the stale-suppression rule.

Usage:
  tools/ujoin_lint.py [--root DIR] [paths...]   lint the repo (or paths)
  tools/ujoin_lint.py --self-test               run the fixture suite
  tools/ujoin_lint.py --list-rules              print rule names

Exit status: 0 clean, 1 violations found (or self-test failure), 2 usage.
"""

from __future__ import annotations

import argparse
import fnmatch
import os
import re
import sys
from dataclasses import dataclass, field

# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------

# Files scanned at all (relative to the repo root).
SCAN_GLOBS = [
    "src/**/*.h", "src/**/*.cc",
    "tools/*.cc",
    "bench/*.cc", "bench/*.h",
    "tests/**/*.cc", "tests/**/*.h",
    "examples/*.cpp",
]

# Lint fixtures contain deliberate violations; never scanned as real code.
EXCLUDE_GLOBS = [
    "tests/lint/*",
]

# Files that produce join results or serialized output: pair lists, index
# serialization, run reports.  Iteration order here is output order.
DETERMINISTIC_OUTPUT_GLOBS = [
    "src/join/*",
    "src/index/*",
    "src/obs/*",
    "src/serve/*",
    "src/util/serde*",
    "tools/ujoin_cli.cc",
]

# The frozen probe path and its per-file allocation whitelist: functions
# that legitimately allocate because they build, freeze, serialize, or grow
# a reusable workspace — never called per-probe in steady state.
PROBE_PATH_ALLOC_WHITELIST = {
    "src/index/flat_postings.h": {
        "FlatPostings", "Add", "Freeze", "Rehash", "ForEachSorted",
    },
    "src/index/flat_postings.cc": {
        "FlatPostings", "Add", "Freeze", "Rehash", "ForEachSorted",
    },
    "src/index/segment_index.h": {
        "LengthBucketIndex", "InvertedSegmentIndex", "Insert", "Freeze",
        "Serialize", "Deserialize", "MemoryUsage",
    },
    "src/index/segment_index.cc": {
        "LengthBucketIndex", "InvertedSegmentIndex", "Insert", "Freeze",
        "Serialize", "Deserialize", "MemoryUsage",
    },
    "src/filter/probe_set.h": {
        "Reset",
    },
    "src/filter/probe_set.cc": {
        "BuildProbeSet", "ForEachWindowWorld", "ExactOccurrenceProbability",
    },
}

OBS_MACRO_SCOPE_GLOBS = ["src/*", "src/**/*", "tools/*"]
OBS_MACRO_ALLOW_GLOBS = ["src/obs/*"]

# The kernel layer: the only files allowed to contain raw intrinsics, and
# the group within which every vector variant must have a scalar:: twin.
SIMD_KERNEL_GLOBS = ["src/util/simd*"]

RULE_NAMES = (
    "rng-source",
    "unordered-iteration",
    "probe-path-alloc",
    "obs-macro-only",
    "simd-intrinsics",
    "simd-dispatch-fallback",
    "query-log-api",
    "flight-macro-only",
    "stale-suppression",
)

# Serve-layer JSON rendering is confined to the shared renderers: every
# byte the server emits is covered by the byte-golden protocol tests and
# tools/validate_query_log.py.
QUERY_LOG_API_SCOPE_GLOBS = ["src/serve/*"]
QUERY_LOG_API_ALLOW = {"src/serve/protocol.cc"}

SUPPRESS_RE = re.compile(r"ujoin-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

# ---------------------------------------------------------------------------
# Lexer: strip comments and literals, preserving line structure
# ---------------------------------------------------------------------------


def strip_comments_and_literals(text: str) -> str:
    """Returns `text` with comments and string/char literal *contents*
    replaced by spaces.  Newlines are preserved so line numbers survive."""
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            if j < 0:
                j = n
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("".join(ch if ch == "\n" else " "
                               for ch in text[i:j]))
            i = j
        elif c == "R" and nxt == '"':
            # Raw string literal: R"delim( ... )delim"
            m = re.match(r'R"([^()\\\s]{0,16})\(', text[i:])
            if m:
                close = ")" + m.group(1) + '"'
                j = text.find(close, i + m.end())
                j = n if j < 0 else j + len(close)
                out.append('""')
                out.append("".join("\n" for ch in text[i:j] if ch == "\n"))
                i = j
            else:
                out.append(c)
                i += 1
        elif c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote or text[j] == "\n":
                    break
                j += 1
            j = min(j + 1, n)
            out.append(quote + quote)
            out.append("".join("\n" for ch in text[i:j] if ch == "\n"))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


# ---------------------------------------------------------------------------
# Function tracker: map each line to the name of the enclosing function
#
# The tracker walks the stripped source once, classifying every `{` as a
# namespace, class, enum, function, lambda, or plain block, and records a
# FunctionSpan for each function-like body.  It understands the constructs
# the original PR 4 tracker mis-attributed:
#   * lambdas get their own frame (named `(lambda@LINE)`, qualified by the
#     enclosing function) instead of silently inheriting the enclosing
#     named function — or no frame at all at class/file scope;
#   * constructor init lists (`Foo::Foo() : a_(x), b_(y) {`) attribute the
#     body to the constructor, not to the last initializer (`b_`);
#   * operator definitions (`operator==`, `operator[]`, `operator()`, …)
#     and out-of-line template members get proper frames instead of None.
# The spans carry namespace/class-qualified names, which the whole-repo
# effect analyzer (tools/ujoin_effects.py) builds its call graph from.
# ---------------------------------------------------------------------------

_CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "do", "else", "try", "catch", "return",
    "sizeof", "alignof", "decltype", "new", "delete", "co_return", "co_await",
}
_NON_FUNCTION_HEADS = re.compile(
    r"(?:^|[;{}])\s*(?:typedef\b|using\b|namespace\b|enum\b"
    r"|struct\s+\w+\s*$|class\s+\w+\s*$)")

_NAMESPACE_RE = re.compile(
    r"(?:^|[^\w])(?:inline\s+)?namespace(?:\s+([\w:]+))?\s*$")
_CLASS_RE = re.compile(
    r"(?:^|[^\w])(?:class|struct|union)\s+(?:\w+\s+)*?"
    r"(\w+)(?:<[^;{}]*>)?\s*(?:final\s*)?(?::[^:{][^{]*)?$")
_ENUM_RE = re.compile(
    r"(?:^|[^\w])enum(?:\s+(?:class|struct))?(?:\s+\w+)?\s*(?::[^{]*)?$")
_LEADING_TEMPLATE_RE = re.compile(r"^\s*template\s*<")
_TRAILING_QUAL_RE = re.compile(
    r"\s*(?:const|noexcept(?:\([^()]*\))?|override|final|mutable|constexpr"
    r"|&&|&|throw\s*\([^()]*\))$")
_OPERATOR_TAIL_RE = re.compile(
    r"operator\s*(?:\(\s*\)|\[\s*\]|\"\"\s*_?\w+|[^\s\w]{1,3}"
    r"|\s+[\w:]+(?:\s*[&*])*)$")
_NAME_TAIL_RE = re.compile(r"((?:\w+\s*::\s*)*)(~?\w+)\s*$")


def _strip_angle_groups(text: str) -> str:
    """Removes balanced `<...>` groups (template argument lists) so
    `Foo<T>::Bar` names as `Foo::Bar`.  Unbalanced `<` (comparisons) leave
    the text unchanged."""
    out = []
    depth = 0
    for ch in text:
        if ch == "<":
            depth += 1
        elif ch == ">":
            if depth > 0:
                depth -= 1
                continue
        if depth == 0:
            out.append(ch)
    return "".join(out) if depth == 0 else text


def _strip_leading_templates(chunk: str) -> str:
    """Removes leading `template <...>` headers (possibly several)."""
    while _LEADING_TEMPLATE_RE.match(chunk):
        depth = 0
        cut = None
        for idx, ch in enumerate(chunk):
            if ch == "<":
                depth += 1
            elif ch == ">":
                depth -= 1
                if depth == 0:
                    cut = idx + 1
                    break
        if cut is None:
            break
        chunk = chunk[cut:].lstrip()
    return chunk


def _cut_ctor_init_list(sig: str) -> str:
    """Truncates a constructor init list: `Foo(int x) : a_(x), b_(y)` ->
    `Foo(int x)`.  The init-list `:` is the first depth-0 `:` (not `::`)
    that follows a `)` and precedes an initializer (`ident(` / `ident{`)."""
    depth = 0
    for idx, ch in enumerate(sig):
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
        elif ch == ":" and depth == 0:
            if idx + 1 < len(sig) and sig[idx + 1] == ":":
                continue
            if idx > 0 and sig[idx - 1] == ":":
                continue
            before = sig[:idx].rstrip()
            after = sig[idx + 1:].lstrip()
            if before.endswith(")") and re.match(r"\w+\s*[({]", after):
                return before
    return sig


def _cut_trailing_return(sig: str) -> str:
    """Truncates a depth-0 trailing return type: `auto F(int) -> T` ->
    `auto F(int)` (only when what precedes `->` ends with `)`)."""
    depth = 0
    for idx in range(len(sig) - 1):
        ch = sig[idx]
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
        elif ch == "-" and sig[idx + 1] == ">" and depth == 0:
            before = sig[:idx].rstrip()
            if before.endswith(")"):
                return before
    return sig


def _signature_name(chunk: str) -> str | None:
    """Heuristic: extract the function name from the text between the
    previous top-level delimiter and an opening `{`.  Returns the (possibly
    `::`-qualified) name, `"(lambda)"` for a lambda introducer, or None if
    the chunk does not look like a function definition."""
    chunk = _strip_leading_templates(chunk.strip())
    if not chunk or chunk.endswith("=") or chunk.endswith("("):
        return None
    if _NON_FUNCTION_HEADS.search(" " + chunk):
        return None
    sig = _cut_trailing_return(_cut_ctor_init_list(chunk))
    while True:
        cut = _TRAILING_QUAL_RE.sub("", sig)
        if cut == sig:
            break
        sig = cut
    sig = _cut_trailing_return(sig).rstrip()
    if sig.endswith("]"):
        # `[&] {` — capture-only lambda, unless it is an operator[] def.
        if re.search(r"operator\s*\[\s*\]$", sig):
            return "operator[]"
        return "(lambda)"
    if not sig.endswith(")"):
        return None
    # Find the parameter list's opening paren.
    depth = 0
    open_idx = -1
    for idx in range(len(sig) - 1, -1, -1):
        ch = sig[idx]
        if ch == ")":
            depth += 1
        elif ch == "(":
            depth -= 1
            if depth == 0:
                open_idx = idx
                break
    if open_idx <= 0:
        return None
    head = sig[:open_idx].rstrip()
    if head.endswith("]"):
        if re.search(r"operator\s*\[\s*\]$", head):
            return "operator[]"
        return "(lambda)"  # `[...](args) {`
    m = _OPERATOR_TAIL_RE.search(head)
    if m:
        return re.sub(r"\s+", "_", m.group(0).strip())
    head = _strip_angle_groups(head)
    m = _NAME_TAIL_RE.search(head)
    if not m:
        return None
    name = m.group(2)
    if name in _CONTROL_KEYWORDS:
        return None
    qual = re.sub(r"\s", "", m.group(1))
    # `Type var(args);` style initialization is indistinguishable in general;
    # requiring the next token to be `{` (checked by the caller) rules out
    # the `;` forms, and control keywords the rest.
    return qual + name if qual else name


@dataclass
class FunctionSpan:
    """One function-like body: a named function, method, operator, or
    lambda.  `qual` is the `::`-qualified name including namespace and
    class scope (lambdas: `<enclosing-qual>::(lambda@LINE)`); `name` is the
    unqualified last component.  Lines are 1-based; `start_line` is the
    line of the opening brace, `end_line` the line of the closing brace."""
    qual: str
    name: str
    start_line: int
    end_line: int
    parent: int | None  # index of the enclosing function/lambda span
    is_lambda: bool


@dataclass
class _Frame:
    kind: str  # "namespace" | "class" | "function" | "block"
    name: str
    depth: int
    span: int | None = None  # FunctionSpan index for function frames


def function_spans(stripped: str) -> list[FunctionSpan]:
    """Parses the stripped source into function-body spans with qualified
    names.  This is the structural backbone shared by the per-file lint
    rules (via enclosing_functions) and the whole-repo call-graph extractor
    in tools/ujoin_effects.py."""
    lines = stripped.split("\n")
    spans: list[FunctionSpan] = []
    stack: list[_Frame] = []
    depth = 0
    pending = ""  # text since the last top-level delimiter

    def scope_prefix() -> str:
        parts = [f.name for f in stack if f.kind in ("namespace", "class")
                 and f.name and f.name != "(anon)"]
        return "::".join(parts)

    def enclosing_span() -> int | None:
        for frame in reversed(stack):
            if frame.kind == "function":
                return frame.span
        return None

    for line_no, line in enumerate(lines, 1):
        for ch in line:
            if ch == "{":
                chunk = _strip_leading_templates(pending.strip())
                frame = _Frame("block", "", depth)
                m = _NAMESPACE_RE.search(chunk) if chunk else None
                if chunk and m:
                    frame = _Frame("namespace", m.group(1) or "(anon)", depth)
                elif chunk and _ENUM_RE.search(chunk):
                    frame = _Frame("block", "", depth)
                elif chunk and not chunk.endswith(")") \
                        and _CLASS_RE.search(chunk):
                    frame = _Frame("class", _CLASS_RE.search(chunk).group(1),
                                   depth)
                else:
                    name = _signature_name(pending)
                    if name is not None:
                        parent = enclosing_span()
                        if name == "(lambda)":
                            short = f"(lambda@{line_no})"
                            if parent is not None:
                                qual = f"{spans[parent].qual}::{short}"
                            else:
                                prefix = scope_prefix()
                                qual = (f"{prefix}::{short}" if prefix
                                        else short)
                            spans.append(FunctionSpan(
                                qual, short, line_no, line_no, parent, True))
                        else:
                            prefix = scope_prefix()
                            qual = f"{prefix}::{name}" if prefix else name
                            spans.append(FunctionSpan(
                                qual, name.split("::")[-1], line_no, line_no,
                                parent, False))
                        frame = _Frame("function", name, depth,
                                       span=len(spans) - 1)
                stack.append(frame)
                depth += 1
                pending = ""
            elif ch == "}":
                depth -= 1
                while stack and depth <= stack[-1].depth:
                    popped = stack.pop()
                    if popped.kind == "function" and popped.span is not None:
                        spans[popped.span].end_line = line_no
                pending = ""
            elif ch == ";":
                pending = ""
            else:
                pending += ch
        pending += " "  # line break separates tokens
    while stack:  # unterminated bodies extend to EOF
        popped = stack.pop()
        if popped.kind == "function" and popped.span is not None:
            spans[popped.span].end_line = len(lines)
    return spans


def _display_name(spans: list[FunctionSpan], idx: int) -> str:
    """Lint-facing name of a span: the unqualified name, with lambda
    frames shown as `<named-ancestor>::(lambda@LINE)` chains."""
    span = spans[idx]
    if not span.is_lambda:
        return span.name
    if span.parent is not None:
        return f"{_display_name(spans, span.parent)}::{span.name}"
    return span.name


def named_base(func: str) -> str:
    """The named function a (possibly lambda-nested) lint frame belongs
    to: `Freeze::(lambda@12)` -> `Freeze`.  Lambdas inherit their defining
    function's whitelist membership — the effect analyzer
    (tools/ujoin_effects.py) is the layer that tracks where a lambda is
    actually *invoked*."""
    return func.split("::(lambda", 1)[0]


def enclosing_functions(stripped: str) -> list[str | None]:
    """For each line (0-based) of the stripped source, the innermost
    function name enclosing that line, or None at namespace/class scope.
    Lambda bodies report `<function>::(lambda@LINE)` (nested lambdas
    chain); rules that whitelist by function name compare named_base()."""
    spans = function_spans(stripped)
    n_lines = stripped.count("\n") + 1
    result: list[str | None] = [None] * n_lines
    # Spans are listed in opening order, so inner (later) spans overwrite
    # their enclosing span's lines; the brace line attributes to the
    # opening function, matching the PR 4 tracker.
    for idx, span in enumerate(spans):
        name = _display_name(spans, idx)
        for line in range(span.start_line, min(span.end_line, n_lines) + 1):
            result[line - 1] = name
    return result


# ---------------------------------------------------------------------------
# Violations and suppression
# ---------------------------------------------------------------------------


@dataclass
class Violation:
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _suppression_at(raw_lines: list[str], line: int, rule: str) -> int | None:
    """When line `line` (1-based) or the line above carries an
    `ujoin-lint: allow(rule)` comment, returns that comment's 1-based line
    number; None otherwise."""
    for idx in (line - 1, line - 2):
        if 0 <= idx < len(raw_lines):
            m = SUPPRESS_RE.search(raw_lines[idx])
            if m and rule in [r.strip() for r in m.group(1).split(",")]:
                return idx + 1
    return None


def suppression_comments(raw_lines: list[str],
                         pattern: re.Pattern = SUPPRESS_RE,
                         ) -> list[tuple[int, str]]:
    """Every (1-based line, rule-name) pair declared by a suppression
    comment matching `pattern` (group 1 = comma-separated rule list).
    Shared with tools/ujoin_effects.py, which runs the same staleness
    check over its `ujoin-effect: assumes(...)` annotations."""
    out: list[tuple[int, str]] = []
    for idx, raw in enumerate(raw_lines, 1):
        m = pattern.search(raw)
        if m:
            for rule in m.group(1).split(","):
                out.append((idx, rule.strip()))
    return out


def stale_suppression_violations(
        path: str, raw_lines: list[str], used: set[tuple[int, str]],
        known_rules: tuple[str, ...] = RULE_NAMES,
        pattern: re.Pattern = SUPPRESS_RE,
        rule_name: str = "stale-suppression",
        what: str = "ujoin-lint: allow") -> list[Violation]:
    """A suppression that suppresses nothing is itself a violation: it
    either outlived the code it excused (delete it) or names the wrong
    rule (it never worked).  `used` holds (comment line, rule) pairs that
    actually absorbed a violation.  Stale-suppression findings are not
    themselves suppressible — fix them by deleting the comment."""
    out = []
    for line, rule in suppression_comments(raw_lines, pattern):
        if rule == rule_name:
            out.append(Violation(
                path, line, rule_name,
                f"`{what}({rule})` is not suppressible; delete stale "
                f"suppressions instead of allowing them"))
        elif rule not in known_rules:
            out.append(Violation(
                path, line, rule_name,
                f"`{what}({rule})` names an unknown rule (known: "
                f"{', '.join(known_rules)}); it can never suppress "
                f"anything"))
        elif (line, rule) not in used:
            out.append(Violation(
                path, line, rule_name,
                f"`{what}({rule})` suppresses nothing on the next line; "
                f"the code it excused is gone — delete the comment"))
    return out


def _matches(path: str, globs: list[str]) -> bool:
    return any(fnmatch.fnmatch(path, g) for g in globs)


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------

_RNG_PATTERNS = [
    (re.compile(r"(?<![\w:])srand\s*\("), "srand()"),
    (re.compile(r"(?<![\w:.>])rand\s*\("), "rand()"),
    (re.compile(r"std\s*::\s*random_device"), "std::random_device"),
    (re.compile(r"std\s*::\s*mt19937(?:_64)?\b"), "std::mt19937"),
    (re.compile(r"std\s*::\s*(?:minstd_rand0?|ranlux\w+|knuth_b)\b"),
     "a std:: engine"),
    # ::time takes a time_t* argument, so the call form always passes one
    # (usually nullptr); requiring it keeps member functions *named* time()
    # from matching.
    (re.compile(r"(?<![\w:.>])(?:std\s*::\s*)?time\s*\("
                r"\s*(?:NULL|nullptr|0|&\s*\w+)\s*\)"),
     "time()"),
]


def check_rng_source(path: str, stripped_lines: list[str], **_) -> list[Violation]:
    if path == "src/util/rng.h":
        return []
    out = []
    for i, line in enumerate(stripped_lines, 1):
        for pat, what in _RNG_PATTERNS:
            if pat.search(line):
                out.append(Violation(
                    path, i, "rng-source",
                    f"{what} breaks run reproducibility; draw from the "
                    f"seeded ujoin::Rng (src/util/rng.h) instead"))
    return out


_UNORDERED_DECL_RE = re.compile(
    r"unordered_(?:multi)?(?:map|set)\s*<")
# Declared names of unordered containers (members, locals, parameters).
# Greedy `<...>` absorbs nested template arguments on the same line.
_UNORDERED_NAME_RE = re.compile(
    r"unordered_(?:multi)?(?:map|set)\s*<[^;{}]*>(?:\s*[&*])?\s+(\w+)\s*[;={(,)]")
# Range-for: `for ( decl : range-expr )`.  `[^;]` keeps classic
# `for (init; cond; step)` loops from matching.
_RANGE_FOR_SPLIT_RE = re.compile(r"for\s*\(([^;]*?)(?<!:):(?!:)([^;]*)\)")
_BEGIN_CALL_RE = re.compile(r"([\w.\->]+)\s*(?:\.|->)\s*c?begin\s*\(")


def _base_identifier(expr: str) -> str:
    """Trailing identifier of an lvalue expression: `ws->sets_` -> `sets_`."""
    m = re.search(r"([\w.\->]+)\s*$", expr.strip().replace("()", ""))
    return re.split(r"\.|->", m.group(1))[-1] if m else ""


def check_unordered_iteration(path: str, stripped_lines: list[str],
                              **_) -> list[Violation]:
    if not _matches(path, DETERMINISTIC_OUTPUT_GLOBS):
        return []
    text = "\n".join(stripped_lines)
    unordered_names = set(_UNORDERED_NAME_RE.findall(text))
    out = []
    for i, line in enumerate(stripped_lines, 1):
        hit = None
        m = _RANGE_FOR_SPLIT_RE.search(line)
        if m:
            range_expr = m.group(2)
            base = _base_identifier(range_expr)
            if _UNORDERED_DECL_RE.search(range_expr):
                hit = "range-for over an unordered temporary"
            elif base in unordered_names:
                hit = f"range-for over unordered container '{base}'"
        if hit is None:
            m = _BEGIN_CALL_RE.search(line)
            if m:
                base = re.split(r"\.|->", m.group(1).replace("()", ""))[-1]
                if base in unordered_names:
                    hit = f"iterator over unordered container '{base}'"
        if hit:
            out.append(Violation(
                path, i, "unordered-iteration",
                f"{hit}: iteration order is hash/insertion dependent and "
                f"this file produces join results or serialized output; "
                f"sort first or use an ordered/flat container"))
    return out


# (pattern, description, flag_at_file_scope): container construction is only
# a violation inside a function body — at class scope the same syntax is a
# member *declaration* (the reusable workspace pattern), and on signature
# lines it is a return type.
_ALLOC_PATTERNS = [
    (re.compile(r"(?<![\w:])new\b(?!\s*\()"), "operator new", True),
    (re.compile(r"(?<![\w:])new\s*\("), "placement/operator new", True),
    (re.compile(r"(?<![\w:.>])(?:std\s*::\s*)?(?:m|c|re)alloc\s*\("),
     "malloc-family call", True),
    (re.compile(r"make_(?:unique|shared)\s*<"), "make_unique/make_shared",
     True),
    (re.compile(
        r"(?<![\w:])(?:std\s*::\s*)?"
        r"(?:vector|deque|list|map|set|multimap|multiset|"
        r"unordered_map|unordered_set|basic_string)\s*<[^;{}]*>\s+(\w+)"
        r"\s*[;({=]"),
     "local allocating container", False),
    (re.compile(r"(?<![\w:])std\s*::\s*string\s+(\w+)\s*[;({=]"),
     "local std::string", False),
]


def check_probe_path_alloc(path: str, stripped_lines: list[str],
                           functions: list[str | None] | None = None,
                           **_) -> list[Violation]:
    whitelist = PROBE_PATH_ALLOC_WHITELIST.get(path)
    if whitelist is None:
        return []
    assert functions is not None
    out = []
    for i, line in enumerate(stripped_lines, 1):
        func = functions[i - 1]
        if func is not None and named_base(func) in whitelist:
            continue
        for pat, what, flag_at_file_scope in _ALLOC_PATTERNS:
            if func is None and not flag_at_file_scope:
                continue
            m = pat.search(line)
            if m is None:
                continue
            # A container type followed by the enclosing function's own name
            # is that function's signature (return type), not a local.
            if m.groups() and func is not None and m.group(1) == named_base(func):
                continue
            where = f"in '{func}'" if func else "at file scope"
            out.append(Violation(
                path, i, "probe-path-alloc",
                f"{what} {where}: the frozen probe path must not "
                f"allocate in steady state; move the allocation into a "
                f"build/freeze function (whitelisted in ujoin_lint.py) "
                f"or into a reusable workspace"))
            break
    return out


_OBS_DIRECT_RE = re.compile(
    r"(?:\.|->)\s*(RecordHist|AddCounter|SetGauge|AddFunnel)\s*\(")


def check_obs_macro_only(path: str, stripped_lines: list[str],
                         **_) -> list[Violation]:
    if not _matches(path, OBS_MACRO_SCOPE_GLOBS):
        return []
    if _matches(path, OBS_MACRO_ALLOW_GLOBS):
        return []
    out = []
    for i, line in enumerate(stripped_lines, 1):
        m = _OBS_DIRECT_RE.search(line)
        if m:
            macro = {
                "RecordHist": "UJOIN_OBS_HIST",
                "AddCounter": "UJOIN_OBS_COUNTER",
                "SetGauge": "UJOIN_OBS_GAUGE",
                "AddFunnel": "UJOIN_OBS_FUNNEL",
            }[m.group(1)]
            out.append(Violation(
                path, i, "obs-macro-only",
                f"direct Recorder::{m.group(1)} call; record through "
                f"{macro}(...) so -DUJOIN_OBS=OFF compiles it out and the "
                f"null-recorder guard is kept"))
    return out


_INTRINSIC_PATTERNS = [
    (re.compile(r"#\s*include\s*<(?:[a-z]mm|imm|avx|arm_neon)\w*\.h>"),
     "intrinsics header include"),
    (re.compile(r"\b_mm(?:256|512)?_\w+\s*\("), "x86 SIMD intrinsic"),
    (re.compile(r"\b__m(?:64|128|256|512)[di]?\b"), "x86 vector type"),
    (re.compile(r"\bv\w+q?_(?:[fsup](?:8|16|32|64)|lane\w*)\s*\("),
     "NEON intrinsic"),
    (re.compile(r"\b(?:float|int|uint|poly)(?:8|16|32|64)x\d+_t\b"),
     "NEON vector type"),
    (re.compile(r"\b__builtin_prefetch\s*\("), "__builtin_prefetch"),
    (re.compile(r"\b__builtin_cpu_supports\s*\("), "__builtin_cpu_supports"),
]


def check_simd_intrinsics(path: str, stripped_lines: list[str],
                          **_) -> list[Violation]:
    if _matches(path, SIMD_KERNEL_GLOBS):
        return []
    out = []
    for i, line in enumerate(stripped_lines, 1):
        for pat, what in _INTRINSIC_PATTERNS:
            if pat.search(line):
                out.append(Violation(
                    path, i, "simd-intrinsics",
                    f"{what} outside src/util/simd*; raw vector code lives "
                    f"only in the kernel layer (util/simd.h wrappers) so "
                    f"-DUJOIN_SIMD=off and non-x86 builds keep working and "
                    f"the differential test covers it"))
                break
    return out


# A vector kernel variant definition: FooSse2/FooAvx2/FooNeon recognized by
# the function tracker (so calls to them in dispatch entries do not match).
_VECTOR_VARIANT_RE = re.compile(r"^(\w+?)(?:Sse2|Avx2|Avx512|Neon)$")


def check_simd_dispatch_fallback(path: str, stripped_lines: list[str],
                                 functions: list[str | None] | None = None,
                                 simd_group: str | None = None,
                                 **_) -> list[Violation]:
    if not _matches(path, SIMD_KERNEL_GLOBS):
        return []
    assert functions is not None
    group = simd_group if simd_group is not None else "\n".join(stripped_lines)
    out = []
    flagged: set[str] = set()
    for i, func in enumerate(functions):
        if func is None or func in flagged:
            continue
        if i > 0 and functions[i - 1] == func:
            continue  # continuation of the same definition
        m = _VECTOR_VARIANT_RE.match(func)
        if not m:
            continue
        base = m.group(1)
        if re.search(r"\bscalar\s*::\s*" + re.escape(base) + r"\b", group):
            continue
        flagged.add(func)
        out.append(Violation(
            path, i + 1, "simd-dispatch-fallback",
            f"vector variant '{func}' has no scalar::{base} reference "
            f"fallback in the kernel layer; every dispatched kernel needs "
            f"an always-available scalar twin (the -DUJOIN_SIMD=off "
            f"implementation and the differential test's oracle)"))
    return out


_JSON_WRITER_RE = re.compile(r"\bJsonWriter\b")


def check_query_log_api(path: str, stripped_lines: list[str],
                        **_) -> list[Violation]:
    if not _matches(path, QUERY_LOG_API_SCOPE_GLOBS):
        return []
    if path in QUERY_LOG_API_ALLOW:
        return []
    out = []
    for i, line in enumerate(stripped_lines, 1):
        if _JSON_WRITER_RE.search(line):
            out.append(Violation(
                path, i, "query-log-api",
                "JsonWriter use in the serve layer outside protocol.cc; "
                "render wire responses via serve/protocol.cc and query-log "
                "records via the obs::QueryLog API so every emitted byte "
                "stays covered by the byte-golden tests and "
                "tools/validate_query_log.py"))
    return out


# A direct flight-event record call.  The watchdog (src/obs/) records its
# own capture events and tests exercise the recorder directly; everything
# else goes through UJOIN_OBS_FLIGHT_EVENT.  Taking the recorder pointer
# (GlobalFlightRecorder()) for lifecycle wiring — watchdog construction,
# the bench kill switch — is fine; only recording is confined.
_FLIGHT_DIRECT_RE = re.compile(r"(?:\.|->)\s*RecordEvent\s*\(")


def check_flight_macro_only(path: str, stripped_lines: list[str],
                            **_) -> list[Violation]:
    if not _matches(path, OBS_MACRO_SCOPE_GLOBS):
        return []
    if _matches(path, OBS_MACRO_ALLOW_GLOBS):
        return []
    out = []
    for i, line in enumerate(stripped_lines, 1):
        if _FLIGHT_DIRECT_RE.search(line):
            out.append(Violation(
                path, i, "flight-macro-only",
                "direct FlightRecorder::RecordEvent call; record through "
                "UJOIN_OBS_FLIGHT_EVENT(...) so -DUJOIN_OBS=OFF compiles "
                "it out and the site stays on the flight-path contract's "
                "alloc/lock/io-free record path"))
    return out


CHECKS = [
    check_rng_source,
    check_unordered_iteration,
    check_probe_path_alloc,
    check_obs_macro_only,
    check_simd_intrinsics,
    check_simd_dispatch_fallback,
    check_query_log_api,
    check_flight_macro_only,
]


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def lint_text(path: str, text: str,
              simd_group: str | None = None) -> list[Violation]:
    """Lints one file's contents as repo-relative `path`.  `simd_group` is
    the concatenated stripped source of every src/util/simd* file, for the
    cross-file simd-dispatch-fallback rule; defaults to this file alone."""
    raw_lines = text.split("\n")
    stripped = strip_comments_and_literals(text)
    stripped_lines = stripped.split("\n")
    functions = enclosing_functions(stripped)
    violations: list[Violation] = []
    used: set[tuple[int, str]] = set()  # (comment line, rule) consumed
    for check in CHECKS:
        for v in check(path, stripped_lines, functions=functions,
                       simd_group=simd_group):
            comment_line = _suppression_at(raw_lines, v.line, v.rule)
            if comment_line is None:
                violations.append(v)
            else:
                used.add((comment_line, v.rule))
    violations.extend(
        stale_suppression_violations(path, raw_lines, used))
    violations.sort(key=lambda v: (v.line, v.rule))
    return violations


def iter_repo_files(root: str) -> list[str]:
    found: list[str] = []
    for glob in SCAN_GLOBS:
        # fnmatch-based recursive walk (Python's glob ** needs recursive=True
        # and we want stable ordering anyway).
        for dirpath, _dirnames, filenames in os.walk(root):
            rel_dir = os.path.relpath(dirpath, root)
            for fname in sorted(filenames):
                rel = os.path.normpath(os.path.join(rel_dir, fname))
                rel = rel.replace(os.sep, "/")
                if fnmatch.fnmatch(rel, glob) and rel not in found:
                    found.append(rel)
    return sorted(
        rel for rel in found if not _matches(rel, EXCLUDE_GLOBS))


def lint_paths(root: str, rel_paths: list[str]) -> list[Violation]:
    texts: dict[str, str] = {}
    for rel in rel_paths:
        full = os.path.join(root, rel)
        try:
            with open(full, encoding="utf-8", errors="replace") as f:
                texts[rel] = f.read()
        except OSError as e:
            print(f"ujoin_lint: cannot read {full}: {e}", file=sys.stderr)
            sys.exit(2)
    # Aggregate the kernel layer so FooAvx2 in simd.cc is satisfied by the
    # scalar::Foo reference in simd.h.  When the kernel files are not part
    # of this run (explicit path list), read them from disk anyway — the
    # rule is about the layer, not the argument list.
    group_files = {rel: t for rel, t in texts.items()
                   if _matches(rel, SIMD_KERNEL_GLOBS)}
    for rel in iter_repo_files(root):
        if _matches(rel, SIMD_KERNEL_GLOBS) and rel not in group_files:
            try:
                with open(os.path.join(root, rel), encoding="utf-8",
                          errors="replace") as f:
                    group_files[rel] = f.read()
            except OSError:
                pass
    simd_group = "\n".join(
        strip_comments_and_literals(group_files[rel])
        for rel in sorted(group_files))
    violations: list[Violation] = []
    for rel in rel_paths:
        violations.extend(lint_text(rel, texts[rel], simd_group=simd_group))
    return violations


# ---------------------------------------------------------------------------
# Self-test: fixtures with seeded violations
# ---------------------------------------------------------------------------

FIXTURE_DIRECTIVE_RE = re.compile(
    r"ujoin-lint-fixture:\s*as=(\S+)\s+rule=(\S+)\s+expect=(\d+)")


def run_self_test(root: str) -> int:
    """Lints every fixture under tests/lint/fixtures as the path named in
    its `ujoin-lint-fixture` directive and checks the violation count and
    rule.  Returns a process exit status."""
    fixture_dir = os.path.join(root, "tests", "lint", "fixtures")
    if not os.path.isdir(fixture_dir):
        print(f"ujoin_lint: no fixture directory at {fixture_dir}",
              file=sys.stderr)
        return 2
    failures = 0
    total = 0
    for fname in sorted(os.listdir(fixture_dir)):
        if not fname.endswith((".cc", ".h")):
            continue
        full = os.path.join(fixture_dir, fname)
        with open(full, encoding="utf-8") as f:
            text = f.read()
        m = FIXTURE_DIRECTIVE_RE.search(text)
        if not m:
            print(f"FAIL {fname}: missing ujoin-lint-fixture directive")
            failures += 1
            continue
        as_path, rule, expect = m.group(1), m.group(2), int(m.group(3))
        if rule != "-" and rule not in RULE_NAMES:
            print(f"FAIL {fname}: unknown rule '{rule}' in directive")
            failures += 1
            continue
        total += 1
        violations = lint_text(as_path, text)
        ok = len(violations) == expect and all(
            rule == "-" or v.rule == rule for v in violations)
        if ok:
            print(f"ok   {fname}: {len(violations)} violation(s) as expected")
        else:
            failures += 1
            print(f"FAIL {fname}: expected {expect} violation(s) of "
                  f"'{rule}', got {len(violations)}:")
            for v in violations:
                print(f"     {v}")
    if total == 0:
        print("FAIL: no fixtures found")
        return 1
    # The fixture suite must cover every rule with at least one seeded
    # violation and one clean counterpart, or the linter itself is untested.
    covered: dict[str, set[str]] = {r: set() for r in RULE_NAMES}
    for fname in sorted(os.listdir(fixture_dir)):
        full = os.path.join(fixture_dir, fname)
        if not os.path.isfile(full) or not fname.endswith((".cc", ".h")):
            continue
        with open(full, encoding="utf-8") as f:
            m = FIXTURE_DIRECTIVE_RE.search(f.read())
        if m and m.group(2) in covered:
            covered[m.group(2)].add(
                "seeded" if int(m.group(3)) > 0 else "clean")
    for rule, kinds in covered.items():
        for kind in ("seeded", "clean"):
            if kind not in kinds:
                print(f"FAIL: rule '{rule}' has no {kind} fixture")
                failures += 1
    print(f"self-test: {total} fixture(s), {failures} failure(s)")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(
        prog="ujoin_lint.py",
        description="ujoin-specific invariant linter (see module docstring)")
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this script)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the fixture suite and exit")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("paths", nargs="*",
                        help="repo-relative files to lint (default: all)")
    args = parser.parse_args()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if args.list_rules:
        for rule in RULE_NAMES:
            print(rule)
        return 0
    if args.self_test:
        return run_self_test(root)

    rel_paths = args.paths or iter_repo_files(root)
    violations = lint_paths(root, rel_paths)
    for v in violations:
        print(v)
    if violations:
        print(f"ujoin_lint: {len(violations)} violation(s) in "
              f"{len({v.path for v in violations})} file(s)")
        return 1
    print(f"ujoin_lint: {len(rel_paths)} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
