#!/usr/bin/env bash
# Repo check driver, mirroring the CI gate matrix (.github/workflows/ci.yml):
# invariant lint, warning-hardened Release build + tier-1 tests, clang-tidy
# (skipped with a notice when not installed), the concurrency-sensitive join
# tests under ThreadSanitizer, the full suite under UndefinedBehaviorSanitizer,
# a -DUJOIN_SIMD=off build + test leg (proves the scalar fallback alone
# passes everything), the SIMD kernel micro-bench gates (per-kernel speedup
# + scalar/vector bit-identity, BENCH_simd.json), the index-probe
# micro-bench gates (speedup + zero allocations), an
# observability smoke: a CLI join with metrics + tracing whose JSON outputs
# are schema-validated, plus the allocation gate with recording on, and a
# live-monitoring smoke (tools/live_smoke.sh): HTTP scrape of /metrics and
# /healthz from a held join, exposition-format validation, and the
# --trace-sample=N probe-span reduction check, plus a resident-service
# smoke (tools/serve_smoke.sh): a socket query batch against `ujoin_cli
# serve`, a /metrics scrape of the serve-layer series, a clean SIGINT
# shutdown, and the watchdog-stall leg (slow query under --watchdog-ms,
# /debug/stalls content identical across 1/2/4 concurrent clients, flight
# records validated by tools/validate_flight_record.py).
#
# Usage: tools/check.sh [jobs]
#   jobs defaults to the machine's core count.
#
# Exits non-zero on the first failing step, including any sanitizer report
# (halt_on_error=1 makes the offending test fail instead of just logging).

set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

# Any sanitizer finding is a hard failure, in every step below.
export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1${ASAN_OPTIONS:+:$ASAN_OPTIONS}"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1${UBSAN_OPTIONS:+:$UBSAN_OPTIONS}"
export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1${TSAN_OPTIONS:+:$TSAN_OPTIONS}"

echo "==> [1/14] invariant lint + effect analysis (self-tests + repo scans)"
python3 tools/ujoin_lint.py --self-test
python3 tools/ujoin_lint.py
python3 tools/ujoin_effects.py --self-test
python3 tools/ujoin_effects.py --require-roots
python3 tools/validate_query_log.py --self-test
python3 tools/validate_flight_record.py --self-test

echo "==> [2/14] configure + build (Release, warnings as errors)"
cmake -B build -S . -DUJOIN_WERROR=ON >/dev/null
cmake --build build -j "$JOBS"
./build/tools/ujoin_cli simd-info

echo "==> [3/14] clang-tidy (profile: .clang-tidy)"
if command -v clang-tidy >/dev/null 2>&1; then
  # The build dir holds compile_commands.json (CMAKE_EXPORT_COMPILE_COMMANDS).
  find src tools bench -name '*.cc' -print0 |
    xargs -0 -n 4 -P "$JOBS" clang-tidy -p build --quiet
else
  echo "clang-tidy not installed: skipping (CI runs this step)"
fi

echo "==> [4/14] tier-1 test suite"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "==> [5/14] configure + build (ThreadSanitizer)"
cmake -B build-tsan -S . -DUJOIN_SANITIZE=thread \
  -DUJOIN_BUILD_BENCHMARKS=OFF -DUJOIN_BUILD_EXAMPLES=OFF >/dev/null
TSAN_TARGETS=(self_join_parallel_test self_cross_differential_test \
  join_stats_test self_join_test cross_join_test join_obs_test \
  scrape_server_test serve_protocol_test serve_differential_test \
  slow_query_test verify_budget_test simd_kernel_test \
  flight_recorder_test watchdog_test serve_idle_test)
cmake --build build-tsan -j "$JOBS" --target "${TSAN_TARGETS[@]}"

echo "==> [6/14] parallel join tests under TSan"
for t in "${TSAN_TARGETS[@]}"; do
  echo "--- $t"
  "./build-tsan/tests/$t"
done

echo "==> [7/14] full suite under UBSan"
cmake -B build-ubsan -S . -DUJOIN_SANITIZE=undefined \
  -DUJOIN_BUILD_BENCHMARKS=OFF -DUJOIN_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-ubsan -j "$JOBS"
ctest --test-dir build-ubsan --output-on-failure -j "$JOBS" -LE lint

echo "==> [8/14] scalar fallback leg (-DUJOIN_SIMD=off build + tests)"
# The differential test degenerates to scalar==scalar here; the point is
# that the whole suite passes with every kernel forced to the fallback.
cmake -B build-simd-off -S . -DUJOIN_SIMD=off -DUJOIN_WERROR=ON \
  -DUJOIN_BUILD_BENCHMARKS=OFF -DUJOIN_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-simd-off -j "$JOBS"
./build-simd-off/tools/ujoin_cli simd-info
ctest --test-dir build-simd-off --output-on-failure -j "$JOBS" -LE lint

echo "==> [9/14] SIMD kernel micro-bench (speedup + bit-identity gates)"
./build/bench/bench_simd build/BENCH_simd.json

echo "==> [10/14] index probe micro-bench (speedup + zero-allocation gates)"
# Tiny scale: this is a smoke run of the gates, not a timing measurement.
UJOIN_BENCH_SCALE="${UJOIN_BENCH_SCALE:-0.25}" \
  ./build/bench/bench_index_probe build/BENCH_probe.json

echo "==> [11/14] CLI observability smoke (run report + trace schemas)"
OBS_DIR="build/obs-smoke"
mkdir -p "$OBS_DIR"
./build/tools/ujoin_cli generate --kind=names --size=200 --seed=11 \
  --out="$OBS_DIR/data.txt" >/dev/null
./build/tools/ujoin_cli join --input="$OBS_DIR/data.txt" --kind=names \
  --k=2 --tau=0.1 --threads=2 --progress \
  --out="$OBS_DIR/pairs.txt" \
  --metrics-out="$OBS_DIR/metrics.json" \
  --trace-out="$OBS_DIR/trace.json" 2>/dev/null >/dev/null
python3 - "$OBS_DIR/metrics.json" "$OBS_DIR/trace.json" <<'PYEOF'
import json, sys

report = json.load(open(sys.argv[1]))
assert report["schema"] == "ujoin.run_report", report.get("schema")
assert report["schema_version"] == 1
assert report["command"] == "join"
for key in ("options", "stats", "metrics"):
    assert key in report, f"run report missing section '{key}'"
stats = report["stats"]
for key in ("pairs", "time_seconds", "index", "verify"):
    assert key in stats, f"stats missing '{key}'"
metrics = report["metrics"]
for key in ("counters", "gauges", "histograms"):
    assert key in metrics, f"metrics missing '{key}'"
assert metrics["counters"]["probes"] == 200, metrics["counters"]
for name in ("verify_latency_ns", "merged_list_length",
             "candidate_alpha_ppm", "explored_trie_nodes"):
    hist = metrics["histograms"][name]
    for key in ("unit", "count", "sum", "buckets"):
        assert key in hist, f"histogram '{name}' missing '{key}'"

trace = json.load(open(sys.argv[2]))
events = trace["traceEvents"]
assert events, "trace has no events"
spans = {e["name"] for e in events if e["ph"] == "X"}
for name in ("index_insert", "wave_probe", "probe", "wave_merge"):
    assert name in spans, f"trace missing span '{name}'"
# Metadata ("M") events carry no timestamp; complete ("X") events must.
assert all({"ph", "pid"} <= e.keys() for e in events)
assert all({"ts", "dur", "tid"} <= e.keys()
           for e in events if e["ph"] == "X")
print("run report and trace are schema-valid")
PYEOF

echo "==> [12/14] zero-allocation and overhead gates with recording on"
./build/tests/frozen_index_test \
  --gtest_filter='FrozenIndexTest.SteadyStateQueryDoesNotAllocate'
# Smoke gate only: at this tiny scale a 1-CPU box needs a wide margin and
# extra reps for a stable minimum.  The authoritative 2% budget is the
# bench's own default gate at full scale (see DESIGN.md "Observability").
UJOIN_BENCH_SCALE="${UJOIN_BENCH_SCALE:-0.25}" \
  UJOIN_OBS_OVERHEAD_GATE="${UJOIN_OBS_OVERHEAD_GATE:-0.15}" \
  UJOIN_OBS_OVERHEAD_REPS="${UJOIN_OBS_OVERHEAD_REPS:-15}" \
  ./build/bench/bench_obs_overhead build/BENCH_obs.json

echo "==> [13/14] live monitoring smoke (scrape endpoint + trace sampling)"
bash tools/live_smoke.sh build

echo "==> [14/14] resident service smoke (socket batch + scrape + SIGINT)"
bash tools/serve_smoke.sh build

echo "all checks passed"
