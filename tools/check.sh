#!/usr/bin/env bash
# Repo check driver: tier-1 tests in a plain Release build, the
# concurrency-sensitive join tests again under ThreadSanitizer, and a smoke
# run of the index-probe micro-bench gates (speedup + zero allocations).
#
# Usage: tools/check.sh [jobs]
#   jobs defaults to the machine's core count.
#
# Exits non-zero on the first failing step, including any TSan report (TSan
# makes the offending test fail via halt_on_error).

set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "==> [1/5] configure + build (Release)"
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"

echo "==> [2/5] tier-1 test suite"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "==> [3/5] configure + build (ThreadSanitizer)"
cmake -B build-tsan -S . -DUJOIN_SANITIZE=thread \
  -DUJOIN_BUILD_BENCHMARKS=OFF -DUJOIN_BUILD_EXAMPLES=OFF >/dev/null
TSAN_TARGETS=(self_join_parallel_test self_cross_differential_test \
  join_stats_test self_join_test cross_join_test)
cmake --build build-tsan -j "$JOBS" --target "${TSAN_TARGETS[@]}"

echo "==> [4/5] parallel join tests under TSan"
export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1${TSAN_OPTIONS:+:$TSAN_OPTIONS}"
for t in "${TSAN_TARGETS[@]}"; do
  echo "--- $t"
  "./build-tsan/tests/$t"
done

echo "==> [5/5] index probe micro-bench (speedup + zero-allocation gates)"
# Tiny scale: this is a smoke run of the gates, not a timing measurement.
UJOIN_BENCH_SCALE="${UJOIN_BENCH_SCALE:-0.25}" \
  ./build/bench/bench_index_probe build/BENCH_probe.json

echo "all checks passed"
