#!/usr/bin/env bash
# Repo check driver: tier-1 tests in a plain Release build, the
# concurrency-sensitive join tests again under ThreadSanitizer, a smoke run
# of the index-probe micro-bench gates (speedup + zero allocations), and an
# observability smoke: a CLI join with metrics + tracing whose JSON outputs
# are schema-validated, plus the allocation gate with recording on.
#
# Usage: tools/check.sh [jobs]
#   jobs defaults to the machine's core count.
#
# Exits non-zero on the first failing step, including any TSan report (TSan
# makes the offending test fail via halt_on_error).

set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "==> [1/7] configure + build (Release)"
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"

echo "==> [2/7] tier-1 test suite"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "==> [3/7] configure + build (ThreadSanitizer)"
cmake -B build-tsan -S . -DUJOIN_SANITIZE=thread \
  -DUJOIN_BUILD_BENCHMARKS=OFF -DUJOIN_BUILD_EXAMPLES=OFF >/dev/null
TSAN_TARGETS=(self_join_parallel_test self_cross_differential_test \
  join_stats_test self_join_test cross_join_test join_obs_test)
cmake --build build-tsan -j "$JOBS" --target "${TSAN_TARGETS[@]}"

echo "==> [4/7] parallel join tests under TSan"
export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1${TSAN_OPTIONS:+:$TSAN_OPTIONS}"
for t in "${TSAN_TARGETS[@]}"; do
  echo "--- $t"
  "./build-tsan/tests/$t"
done

echo "==> [5/7] index probe micro-bench (speedup + zero-allocation gates)"
# Tiny scale: this is a smoke run of the gates, not a timing measurement.
UJOIN_BENCH_SCALE="${UJOIN_BENCH_SCALE:-0.25}" \
  ./build/bench/bench_index_probe build/BENCH_probe.json

echo "==> [6/7] CLI observability smoke (run report + trace schemas)"
OBS_DIR="build/obs-smoke"
mkdir -p "$OBS_DIR"
./build/tools/ujoin_cli generate --kind=names --size=200 --seed=11 \
  --out="$OBS_DIR/data.txt" >/dev/null
./build/tools/ujoin_cli join --input="$OBS_DIR/data.txt" --kind=names \
  --k=2 --tau=0.1 --threads=2 --progress \
  --out="$OBS_DIR/pairs.txt" \
  --metrics-out="$OBS_DIR/metrics.json" \
  --trace-out="$OBS_DIR/trace.json" 2>/dev/null >/dev/null
python3 - "$OBS_DIR/metrics.json" "$OBS_DIR/trace.json" <<'PYEOF'
import json, sys

report = json.load(open(sys.argv[1]))
assert report["schema"] == "ujoin.run_report", report.get("schema")
assert report["schema_version"] == 1
assert report["command"] == "join"
for key in ("options", "stats", "metrics"):
    assert key in report, f"run report missing section '{key}'"
stats = report["stats"]
for key in ("pairs", "time_seconds", "index", "verify"):
    assert key in stats, f"stats missing '{key}'"
metrics = report["metrics"]
for key in ("counters", "gauges", "histograms"):
    assert key in metrics, f"metrics missing '{key}'"
assert metrics["counters"]["probes"] == 200, metrics["counters"]
for name in ("verify_latency_ns", "merged_list_length",
             "candidate_alpha_ppm", "explored_trie_nodes"):
    hist = metrics["histograms"][name]
    for key in ("unit", "count", "sum", "buckets"):
        assert key in hist, f"histogram '{name}' missing '{key}'"

trace = json.load(open(sys.argv[2]))
events = trace["traceEvents"]
assert events, "trace has no events"
spans = {e["name"] for e in events if e["ph"] == "X"}
for name in ("index_insert", "wave_probe", "probe", "wave_merge"):
    assert name in spans, f"trace missing span '{name}'"
# Metadata ("M") events carry no timestamp; complete ("X") events must.
assert all({"ph", "pid"} <= e.keys() for e in events)
assert all({"ts", "dur", "tid"} <= e.keys()
           for e in events if e["ph"] == "X")
print("run report and trace are schema-valid")
PYEOF

echo "==> [7/7] zero-allocation and overhead gates with recording on"
./build/tests/frozen_index_test \
  --gtest_filter='FrozenIndexTest.SteadyStateQueryDoesNotAllocate'
# Smoke gate only: at this tiny scale a 1-CPU box needs a wide margin and
# extra reps for a stable minimum.  The authoritative 2% budget is the
# bench's own default gate at full scale (see DESIGN.md "Observability").
UJOIN_BENCH_SCALE="${UJOIN_BENCH_SCALE:-0.25}" \
  UJOIN_OBS_OVERHEAD_GATE="${UJOIN_OBS_OVERHEAD_GATE:-0.15}" \
  UJOIN_OBS_OVERHEAD_REPS="${UJOIN_OBS_OVERHEAD_REPS:-15}" \
  ./build/bench/bench_obs_overhead build/BENCH_obs.json

echo "all checks passed"
