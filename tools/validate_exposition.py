#!/usr/bin/env python3
"""Validator for Prometheus text-exposition (version 0.0.4) pages.

Checks the format invariants the ujoin exposition renderer must uphold
(tested from ctest and tools/check.sh):

  * every sample belongs to a family announced by `# HELP` and `# TYPE`
    lines, in that order, before its first sample;
  * metric and label names are well-formed; no duplicate (name, labels)
    sample; values parse as numbers;
  * counter family names end in `_total`;
  * histograms have `_bucket` samples with non-decreasing cumulative counts,
    `le` bucket bounds in strictly increasing order, a terminal
    `le="+Inf"` bucket, and `_sum`/`_count` samples with
    `_count` == the `+Inf` bucket value.

Pure stdlib.  Usage:

  validate_exposition.py FILE       # validate a page ("-" reads stdin)
  validate_exposition.py --self-test

Exit status 0 when the page is valid, 1 with one line per problem on
stderr otherwise.
"""

import re
import sys

METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)(?:\s+(?P<timestamp>\S+))?$")
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _family_of(sample_name, types):
    """Maps a sample name to its family: histogram samples drop the
    _bucket/_sum/_count suffix when the base family is a histogram."""
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if types.get(base) == "histogram":
                return base
    return sample_name


def _parse_le(raw):
    if raw == "+Inf":
        return float("inf")
    try:
        return float(raw)
    except ValueError:
        return None


def validate_lines(lines):
    """Returns a list of problem strings (empty when the page is valid)."""
    problems = []
    helps = {}
    types = {}
    seen_samples = set()
    # family -> list of (le, cumulative value) in document order
    hist_buckets = {}
    hist_sum = {}
    hist_count = {}
    family_sampled = set()

    for lineno, line in enumerate(lines, 1):
        line = line.rstrip("\n")
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line[len("# HELP "):].split(None, 1)
            if not parts:
                problems.append(f"line {lineno}: HELP line without a name")
                continue
            name = parts[0]
            if name in helps:
                problems.append(f"line {lineno}: duplicate HELP for '{name}'")
            if name in family_sampled:
                problems.append(
                    f"line {lineno}: HELP for '{name}' after its samples")
            helps[name] = parts[1] if len(parts) > 1 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE "):].split()
            if len(parts) != 2:
                problems.append(f"line {lineno}: malformed TYPE line")
                continue
            name, kind = parts
            if kind not in ("counter", "gauge", "histogram", "summary",
                            "untyped"):
                problems.append(
                    f"line {lineno}: unknown metric type '{kind}'")
            if name in types:
                problems.append(f"line {lineno}: duplicate TYPE for '{name}'")
            if name in family_sampled:
                problems.append(
                    f"line {lineno}: TYPE for '{name}' after its samples")
            if name not in helps:
                problems.append(
                    f"line {lineno}: TYPE for '{name}' without preceding "
                    f"HELP")
            types[name] = kind
            if kind == "counter" and not name.endswith("_total"):
                problems.append(
                    f"line {lineno}: counter '{name}' does not end in "
                    f"'_total'")
            continue
        if line.startswith("#"):
            continue  # other comments are legal

        m = SAMPLE_RE.match(line)
        if m is None:
            problems.append(f"line {lineno}: unparsable sample line: {line}")
            continue
        name = m.group("name")
        if not METRIC_NAME_RE.match(name):
            problems.append(f"line {lineno}: bad metric name '{name}'")
            continue
        labels = {}
        raw_labels = m.group("labels")
        if raw_labels:
            consumed = 0
            for lm in LABEL_RE.finditer(raw_labels):
                key = lm.group(1)
                if not LABEL_NAME_RE.match(key):
                    problems.append(
                        f"line {lineno}: bad label name '{key}'")
                if key in labels:
                    problems.append(
                        f"line {lineno}: duplicate label '{key}'")
                labels[key] = lm.group(2)
                consumed += len(lm.group(0))
            leftovers = re.sub(r"[,\s]", "", raw_labels)
            matched = "".join(
                lm.group(0) for lm in LABEL_RE.finditer(raw_labels))
            if len(leftovers) != len(re.sub(r"[,\s]", "", matched)):
                problems.append(
                    f"line {lineno}: malformed label set "
                    f"'{{{raw_labels}}}'")
        try:
            value = float(m.group("value"))
        except ValueError:
            problems.append(
                f"line {lineno}: unparsable value "
                f"'{m.group('value')}' for '{name}'")
            continue

        key = (name, tuple(sorted(labels.items())))
        if key in seen_samples:
            problems.append(
                f"line {lineno}: duplicate sample for '{name}' "
                f"{dict(labels)}")
        seen_samples.add(key)

        family = _family_of(name, types)
        family_sampled.add(family)
        if family not in types:
            problems.append(
                f"line {lineno}: sample '{name}' without a preceding TYPE "
                f"for '{family}'")
        if family not in helps:
            problems.append(
                f"line {lineno}: sample '{name}' without a preceding HELP "
                f"for '{family}'")

        if types.get(family) == "histogram":
            if name.endswith("_bucket"):
                if "le" not in labels:
                    problems.append(
                        f"line {lineno}: histogram bucket without an 'le' "
                        f"label")
                    continue
                le = _parse_le(labels["le"])
                if le is None:
                    problems.append(
                        f"line {lineno}: unparsable le "
                        f"'{labels['le']}'")
                    continue
                hist_buckets.setdefault(family, []).append(
                    (le, value, lineno))
            elif name.endswith("_sum"):
                hist_sum[family] = value
            elif name.endswith("_count"):
                hist_count[family] = value

    for family, kind in types.items():
        if kind != "histogram":
            continue
        buckets = hist_buckets.get(family, [])
        if not buckets:
            problems.append(f"histogram '{family}' has no _bucket samples")
            continue
        if buckets[-1][0] != float("inf"):
            problems.append(
                f"histogram '{family}' does not end with an le=\"+Inf\" "
                f"bucket")
        prev_le = None
        prev_value = None
        for le, value, lineno in buckets:
            if prev_le is not None and le <= prev_le:
                problems.append(
                    f"line {lineno}: histogram '{family}' bucket bounds not "
                    f"strictly increasing")
            if prev_value is not None and value < prev_value:
                problems.append(
                    f"line {lineno}: histogram '{family}' cumulative bucket "
                    f"counts decrease")
            prev_le, prev_value = le, value
        if family not in hist_count:
            problems.append(f"histogram '{family}' is missing _count")
        elif buckets[-1][0] == float("inf") and \
                hist_count[family] != buckets[-1][1]:
            problems.append(
                f"histogram '{family}': _count ({hist_count[family]:g}) != "
                f"le=\"+Inf\" bucket ({buckets[-1][1]:g})")
        if family not in hist_sum:
            problems.append(f"histogram '{family}' is missing _sum")

    return problems


# ---------------------------------------------------------------------------
# Self-test
# ---------------------------------------------------------------------------

_GOOD_PAGE = """\
# HELP ujoin_probes_total probes executed
# TYPE ujoin_probes_total counter
ujoin_probes_total 200
# HELP ujoin_threads worker threads used
# TYPE ujoin_threads gauge
ujoin_threads 4
# HELP ujoin_filter_funnel_candidates_total candidates per stage
# TYPE ujoin_filter_funnel_candidates_total counter
ujoin_filter_funnel_candidates_total{stage="qgram",edge="entered"} 6305
ujoin_filter_funnel_candidates_total{stage="qgram",edge="survived"} 108
# HELP ujoin_verify_latency_ns wall time of one verification
# TYPE ujoin_verify_latency_ns histogram
ujoin_verify_latency_ns_bucket{le="0"} 0
ujoin_verify_latency_ns_bucket{le="1023"} 2
ujoin_verify_latency_ns_bucket{le="2047"} 5
ujoin_verify_latency_ns_bucket{le="+Inf"} 5
ujoin_verify_latency_ns_sum 6000
ujoin_verify_latency_ns_count 5
"""

# (page, expected problem substring) pairs: each bad page must trip the
# validator with a problem mentioning the substring.
_BAD_PAGES = [
    ("ujoin_x_total 1\n", "without a preceding TYPE"),
    ("# HELP ujoin_x_total x\n# TYPE ujoin_x_total counter\n"
     "ujoin_x_total 1\nujoin_x_total 1\n", "duplicate sample"),
    ("# HELP ujoin_x x\n# TYPE ujoin_x counter\nujoin_x 1\n",
     "does not end in '_total'"),
    ("# HELP ujoin_h h\n# TYPE ujoin_h histogram\n"
     "ujoin_h_bucket{le=\"1\"} 1\nujoin_h_sum 1\nujoin_h_count 1\n",
     "le=\"+Inf\""),
    ("# HELP ujoin_h h\n# TYPE ujoin_h histogram\n"
     "ujoin_h_bucket{le=\"1\"} 3\nujoin_h_bucket{le=\"2\"} 2\n"
     "ujoin_h_bucket{le=\"+Inf\"} 3\nujoin_h_sum 1\nujoin_h_count 3\n",
     "cumulative bucket counts decrease"),
    ("# HELP ujoin_h h\n# TYPE ujoin_h histogram\n"
     "ujoin_h_bucket{le=\"2\"} 1\nujoin_h_bucket{le=\"1\"} 2\n"
     "ujoin_h_bucket{le=\"+Inf\"} 2\nujoin_h_sum 1\nujoin_h_count 2\n",
     "not strictly increasing"),
    ("# HELP ujoin_h h\n# TYPE ujoin_h histogram\n"
     "ujoin_h_bucket{le=\"1\"} 1\nujoin_h_bucket{le=\"+Inf\"} 1\n"
     "ujoin_h_sum 1\nujoin_h_count 2\n", "_count"),
    ("# TYPE ujoin_x_total counter\nujoin_x_total 1\n",
     "without preceding HELP"),
    ("# HELP ujoin_x_total x\n# TYPE ujoin_x_total counter\n"
     "ujoin_x_total nope\n", "unparsable value"),
]


def self_test():
    failures = 0
    problems = validate_lines(_GOOD_PAGE.splitlines(True))
    if problems:
        failures += 1
        print("FAIL good page flagged:", problems, file=sys.stderr)
    else:
        print("ok   good page accepted")
    for i, (page, expected) in enumerate(_BAD_PAGES):
        problems = validate_lines(page.splitlines(True))
        if any(expected in p for p in problems):
            print(f"ok   bad page {i} flagged ({expected!r})")
        else:
            failures += 1
            print(f"FAIL bad page {i}: expected a problem mentioning "
                  f"{expected!r}, got {problems}", file=sys.stderr)
    print(f"self-test: {1 + len(_BAD_PAGES)} page(s), {failures} failure(s)")
    return 1 if failures else 0


def main(argv):
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    if argv[1] == "--self-test":
        return self_test()
    if argv[1] == "-":
        lines = sys.stdin.readlines()
    else:
        with open(argv[1], "r", encoding="utf-8") as f:
            lines = f.readlines()
    problems = validate_lines(lines)
    for problem in problems:
        print(f"validate_exposition: {problem}", file=sys.stderr)
    if problems:
        return 1
    samples = sum(
        1 for l in lines if l.strip() and not l.startswith("#"))
    print(f"validate_exposition: ok ({samples} samples)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
