#!/usr/bin/env bash
# Resident-service smoke, shared by tools/check.sh and CI:
#
#   1. starts `ujoin_cli serve` on an ephemeral port with a generated
#      dataset, a metrics endpoint, and a verification budget;
#   2. runs a query batch over a real socket with a python3 stdlib client:
#      well-formed queries (checking id-sorted hits, per-connection seq, and
#      the inexact flag), one malformed line (error without losing the
#      connection), and a blank batch separator;
#   3. scrapes /metrics, /healthz (the build-info JSON block), and
#      /debug/slow (the slow-query rings) and checks the serve-layer series
#      reflect the batch just sent;
#   4. shuts the server down with SIGINT and checks a clean exit plus the
#      shutdown summary on stderr, then validates the structured query log
#      the run wrote with tools/validate_query_log.py.
#
# Usage: tools/serve_smoke.sh [build_dir]
#   build_dir defaults to "build"; artefacts go to <build_dir>/serve-smoke.
#
# Pure python3 stdlib (socket + urllib): curl is not assumed.

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
CLI="$BUILD/tools/ujoin_cli"
DIR="$BUILD/serve-smoke"
mkdir -p "$DIR"

# Low-fanout strings (<= 3^2 worlds each): exact verification is cheap, so
# the serve-side world budget below never trips and responses stay exact.
"$CLI" generate --kind=names --size=100 --seed=17 \
  --theta=0.1 --gamma=3 --max-uncertain=2 \
  --out="$DIR/data.txt" >/dev/null

echo "--- resident search service"
rm -f "$DIR/serve.err"
rm -f "$DIR/query_log.jsonl"
"$CLI" serve --input="$DIR/data.txt" --kind=names --k=2 --tau=0.1 \
  --port=0 --metrics-port=0 --max-verify-worlds=1000000 \
  --query-log="$DIR/query_log.jsonl" \
  2>"$DIR/serve.err" &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT

# The CLI announces both ports on stderr before accepting; poll for them.
PORT="" METRICS_PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/^serve: .* answering on 127\.0\.0\.1:\([0-9]*\) .*$/\1/p' \
    "$DIR/serve.err" 2>/dev/null || true)"
  METRICS_PORT="$(sed -n 's/^serve: \/metrics on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
    "$DIR/serve.err" 2>/dev/null || true)"
  [[ -n "$PORT" && -n "$METRICS_PORT" ]] && break
  sleep 0.1
done
if [[ -z "$PORT" || -z "$METRICS_PORT" ]]; then
  echo "FAIL: serve never announced its ports" >&2
  cat "$DIR/serve.err" >&2
  exit 1
fi
echo "query port $PORT, metrics port $METRICS_PORT"

python3 - "$PORT" "$METRICS_PORT" "$DIR/data.txt" "$DIR/metrics.prom" <<'PYEOF'
import json, socket, sys, time, urllib.request

port, metrics_port = int(sys.argv[1]), int(sys.argv[2])
queries = [line.strip() for line in open(sys.argv[3]) if line.strip()][:10]

sock = socket.create_connection(("127.0.0.1", port), timeout=10)
f = sock.makefile("rwb")

def ask(line):
    f.write(line.encode() + b"\n")
    f.flush()
    return json.loads(f.readline().decode())

# A batch of well-formed queries: sequenced responses, id-sorted hits, and
# exact results under a budget far above these strings' world counts.
total_hits = 0
for i, q in enumerate(queries, start=1):
    r = ask(q)
    assert r["seq"] == i and r["status"] == "ok", r
    assert r["inexact"] is False, r
    ids = [h["id"] for h in r["hits"]]
    assert ids == sorted(ids), r
    assert all(h["probability"] > 0.1 for h in r["hits"]), r
    total_hits += len(ids)
# Querying the collection against itself must surface matches (certain
# strings match themselves with probability 1).
assert total_hits > 0

# A malformed line gets an error response and the connection survives.
r = ask("not a query !!")
assert r["status"] == "error" and r["seq"] == len(queries) + 1, r
r = ask(queries[0])
assert r["status"] == "ok" and r["seq"] == len(queries) + 2, r

# Blank line = batch separator: flushes a metrics snapshot, no response.
f.write(b"\n")
f.flush()

def fetch(path):
    url = f"http://127.0.0.1:{metrics_port}{path}"
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.status, resp.read()

# /healthz under serve is the build-info JSON block (the bare scrape
# endpoint's "ok\n" liveness body is covered by tools/live_smoke.sh).
status, body = fetch("/healthz")
assert status == 200, (status, body)
health = json.loads(body)
assert health["status"] == "ok", health
for key in ("searcher_format_version", "simd_isa", "obs",
            "metrics_schema_version", "collection_size",
            "index_length_buckets", "index_segments"):
    assert key in health, f"healthz missing '{key}': {health}"
assert health["collection_size"] == 100, health

# The batch-boundary snapshot is pushed by the worker that saw the blank
# line; poll briefly until it lands.
want = f"ujoin_serve_requests_total {len(queries) + 2}\n".encode()
deadline = time.monotonic() + 10
while True:
    status, body = fetch("/metrics")
    assert status == 200, status
    if want in body:
        break
    assert time.monotonic() < deadline, \
        f"snapshot never appeared; last page:\n{body.decode()}"
    time.sleep(0.2)
assert b"ujoin_serve_connections_total 1\n" in body, body.decode()
assert b"ujoin_serve_request_errors_total 1\n" in body, body.decode()
assert f"ujoin_queries_total {len(queries) + 1}\n".encode() in body
with open(sys.argv[4], "wb") as out:
    out.write(body)

# /debug/slow serves the slow-query rings once the batch snapshot landed.
status, body = fetch("/debug/slow")
assert status == 200, status
slow = json.loads(body)
assert slow["schema"] == "ujoin.slow_queries", slow
assert slow["schema_version"] == 1, slow
assert slow["by_verify_worlds"], "verify-worlds ring is empty after a batch"
assert slow["by_latency_ns"], "latency ring is empty after a batch"
worst = slow["by_verify_worlds"][0]
assert worst["schema"] == "ujoin.query_log", worst
keys = [r["verify_worlds"] for r in slow["by_verify_worlds"]]
assert keys == sorted(keys, reverse=True), keys

sock.close()
print(f"answered {len(queries) + 2} requests, scraped /metrics "
      f"({len(body)} bytes)")
PYEOF

python3 tools/validate_exposition.py "$DIR/metrics.prom"

kill -INT "$SERVE_PID"
wait "$SERVE_PID"
trap - EXIT
grep -q "^serve: shutting down$" "$DIR/serve.err"
grep -q "^serve: 1 connections (0 rejected), 12 requests (1 errors)" \
  "$DIR/serve.err"
echo "server exited cleanly on SIGINT with shutdown summary"

# The structured query log: one schema-valid record per answered request
# (10 good + 1 error + 1 retry), flushed at the batch boundary and closed
# on shutdown.
grep -q "^query-log: wrote 12 records to " "$DIR/serve.err"
python3 tools/validate_query_log.py "$DIR/query_log.jsonl"
[[ "$(wc -l < "$DIR/query_log.jsonl")" == "12" ]]
grep -q '"status":"error"' "$DIR/query_log.jsonl"
echo "query log is schema-valid (12 records, error record included)"

echo "serve smoke passed"
