#!/usr/bin/env bash
# Resident-service smoke, shared by tools/check.sh and CI:
#
#   1. starts `ujoin_cli serve` on an ephemeral port with a generated
#      dataset, a metrics endpoint, and a verification budget;
#   2. runs a query batch over a real socket with a python3 stdlib client:
#      well-formed queries (checking id-sorted hits, per-connection seq, and
#      the inexact flag), one malformed line (error without losing the
#      connection), and a blank batch separator;
#   3. scrapes /metrics, /healthz (the build-info JSON block), and
#      /debug/slow (the slow-query rings) and checks the serve-layer series
#      reflect the batch just sent;
#   4. shuts the server down with SIGINT and checks a clean exit plus the
#      shutdown summary on stderr, then validates the structured query log
#      the run wrote with tools/validate_query_log.py.
#
#   5. runs the watchdog leg: three fresh serve instances under
#      --watchdog-ms with 1, 2, and 4 concurrent clients all sending the
#      same slow (huge world-product) query, asserts /debug/stalls reports
#      the stall with funnel_stage "verify", validates the flight record
#      each run dumps on shutdown, and checks the non-timing stall
#      projection (timing, connection, and seq stripped) is byte-identical
#      across the three client counts.
#
# Usage: tools/serve_smoke.sh [build_dir]
#   build_dir defaults to "build"; artefacts go to <build_dir>/serve-smoke.
#
# Pure python3 stdlib (socket + urllib): curl is not assumed.

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
CLI="$BUILD/tools/ujoin_cli"
DIR="$BUILD/serve-smoke"
mkdir -p "$DIR"

# Low-fanout strings (<= 3^2 worlds each): exact verification is cheap, so
# the serve-side world budget below never trips and responses stay exact.
"$CLI" generate --kind=names --size=100 --seed=17 \
  --theta=0.1 --gamma=3 --max-uncertain=2 \
  --out="$DIR/data.txt" >/dev/null

echo "--- resident search service"
rm -f "$DIR/serve.err"
rm -f "$DIR/query_log.jsonl"
"$CLI" serve --input="$DIR/data.txt" --kind=names --k=2 --tau=0.1 \
  --port=0 --metrics-port=0 --max-verify-worlds=1000000 \
  --query-log="$DIR/query_log.jsonl" \
  2>"$DIR/serve.err" &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT

# The CLI announces both ports on stderr before accepting; poll for them.
PORT="" METRICS_PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/^serve: .* answering on 127\.0\.0\.1:\([0-9]*\) .*$/\1/p' \
    "$DIR/serve.err" 2>/dev/null || true)"
  METRICS_PORT="$(sed -n 's/^serve: \/metrics on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
    "$DIR/serve.err" 2>/dev/null || true)"
  [[ -n "$PORT" && -n "$METRICS_PORT" ]] && break
  sleep 0.1
done
if [[ -z "$PORT" || -z "$METRICS_PORT" ]]; then
  echo "FAIL: serve never announced its ports" >&2
  cat "$DIR/serve.err" >&2
  exit 1
fi
echo "query port $PORT, metrics port $METRICS_PORT"

python3 - "$PORT" "$METRICS_PORT" "$DIR/data.txt" "$DIR/metrics.prom" <<'PYEOF'
import json, socket, sys, time, urllib.request

port, metrics_port = int(sys.argv[1]), int(sys.argv[2])
queries = [line.strip() for line in open(sys.argv[3]) if line.strip()][:10]

sock = socket.create_connection(("127.0.0.1", port), timeout=10)
f = sock.makefile("rwb")

def ask(line):
    f.write(line.encode() + b"\n")
    f.flush()
    return json.loads(f.readline().decode())

# A batch of well-formed queries: sequenced responses, id-sorted hits, and
# exact results under a budget far above these strings' world counts.
total_hits = 0
for i, q in enumerate(queries, start=1):
    r = ask(q)
    assert r["seq"] == i and r["status"] == "ok", r
    assert r["inexact"] is False, r
    ids = [h["id"] for h in r["hits"]]
    assert ids == sorted(ids), r
    assert all(h["probability"] > 0.1 for h in r["hits"]), r
    total_hits += len(ids)
# Querying the collection against itself must surface matches (certain
# strings match themselves with probability 1).
assert total_hits > 0

# A malformed line gets an error response and the connection survives.
r = ask("not a query !!")
assert r["status"] == "error" and r["seq"] == len(queries) + 1, r
r = ask(queries[0])
assert r["status"] == "ok" and r["seq"] == len(queries) + 2, r

# Blank line = batch separator: flushes a metrics snapshot, no response.
f.write(b"\n")
f.flush()

def fetch(path):
    url = f"http://127.0.0.1:{metrics_port}{path}"
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.status, resp.read()

# /healthz under serve is the build-info JSON block (the bare scrape
# endpoint's "ok\n" liveness body is covered by tools/live_smoke.sh).
status, body = fetch("/healthz")
assert status == 200, (status, body)
health = json.loads(body)
assert health["status"] == "ok", health
for key in ("searcher_format_version", "simd_isa", "obs",
            "metrics_schema_version", "collection_size",
            "index_length_buckets", "index_segments"):
    assert key in health, f"healthz missing '{key}': {health}"
assert health["collection_size"] == 100, health

# The batch-boundary snapshot is pushed by the worker that saw the blank
# line; poll briefly until it lands.
want = f"ujoin_serve_requests_total {len(queries) + 2}\n".encode()
deadline = time.monotonic() + 10
while True:
    status, body = fetch("/metrics")
    assert status == 200, status
    if want in body:
        break
    assert time.monotonic() < deadline, \
        f"snapshot never appeared; last page:\n{body.decode()}"
    time.sleep(0.2)
assert b"ujoin_serve_connections_total 1\n" in body, body.decode()
assert b"ujoin_serve_request_errors_total 1\n" in body, body.decode()
assert f"ujoin_queries_total {len(queries) + 1}\n".encode() in body
with open(sys.argv[4], "wb") as out:
    out.write(body)

# /debug/slow serves the slow-query rings once the batch snapshot landed.
status, body = fetch("/debug/slow")
assert status == 200, status
slow = json.loads(body)
assert slow["schema"] == "ujoin.slow_queries", slow
assert slow["schema_version"] == 1, slow
assert slow["by_verify_worlds"], "verify-worlds ring is empty after a batch"
assert slow["by_latency_ns"], "latency ring is empty after a batch"
worst = slow["by_verify_worlds"][0]
assert worst["schema"] == "ujoin.query_log", worst
keys = [r["verify_worlds"] for r in slow["by_verify_worlds"]]
assert keys == sorted(keys, reverse=True), keys

sock.close()
print(f"answered {len(queries) + 2} requests, scraped /metrics "
      f"({len(body)} bytes)")
PYEOF

python3 tools/validate_exposition.py "$DIR/metrics.prom"

kill -INT "$SERVE_PID"
wait "$SERVE_PID"
trap - EXIT
grep -q "^serve: shutting down$" "$DIR/serve.err"
grep -q "^serve: 1 connections (0 rejected), 12 requests (1 errors)" \
  "$DIR/serve.err"
echo "server exited cleanly on SIGINT with shutdown summary"

# The structured query log: one schema-valid record per answered request
# (10 good + 1 error + 1 retry), flushed at the batch boundary and closed
# on shutdown.
grep -q "^query-log: wrote 12 records to " "$DIR/serve.err"
python3 tools/validate_query_log.py "$DIR/query_log.jsonl"
[[ "$(wc -l < "$DIR/query_log.jsonl")" == "12" ]]
grep -q '"status":"error"' "$DIR/query_log.jsonl"
echo "query log is schema-valid (12 records, error record included)"

echo "--- watchdog stall leg"
# One string whose self-verification is genuinely slow: five uncertain
# positions with five alternatives each (3125 worlds, a 9.7M-world pair
# product) and a skewed distribution so the CDF bounds straddle tau and the
# funnel cannot decide without exact verification.  The query takes ~1-3 s —
# far past the 50 ms flat watchdog threshold, finite well under timeouts.
python3 - > "$DIR/stall_data.txt" <<'PYEOF'
u = "{" + ",".join(f"({c},{0.6 if c == 'a' else 0.1:g})" for c in "abcde") + "}"
print("ab" + u * 5 + "xy")
print("qrstuvwxyz")
print("mnopqrstuv")
PYEOF
STALL_QUERY="$(head -1 "$DIR/stall_data.txt")"

for CLIENTS in 1 2 4; do
  ERR="$DIR/stall_serve_$CLIENTS.err"
  rm -f "$ERR" "$DIR/stall_flight_$CLIENTS.json"
  "$CLI" serve --input="$DIR/stall_data.txt" --kind=names --k=2 --tau=0.1 \
    --port=0 --metrics-port=0 --watchdog-ms=50 \
    --flight-record="$DIR/stall_flight_$CLIENTS.json" \
    2>"$ERR" &
  SERVE_PID=$!
  trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT

  PORT="" METRICS_PORT=""
  for _ in $(seq 1 100); do
    PORT="$(sed -n 's/^serve: .* answering on 127\.0\.0\.1:\([0-9]*\) .*$/\1/p' \
      "$ERR" 2>/dev/null || true)"
    METRICS_PORT="$(sed -n 's/^serve: \/metrics on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
      "$ERR" 2>/dev/null || true)"
    [[ -n "$PORT" && -n "$METRICS_PORT" ]] && break
    sleep 0.1
  done
  [[ -n "$PORT" && -n "$METRICS_PORT" ]] || {
    echo "FAIL: stall serve ($CLIENTS clients) never announced its ports" >&2
    cat "$ERR" >&2
    exit 1
  }

  python3 - "$PORT" "$METRICS_PORT" "$CLIENTS" "$STALL_QUERY" \
    "$DIR/stalls_proj_$CLIENTS.json" <<'PYEOF'
import json, socket, sys, threading, urllib.request

port, metrics_port = int(sys.argv[1]), int(sys.argv[2])
clients, query, out_path = int(sys.argv[3]), sys.argv[4], sys.argv[5]

# All clients send the same slow query concurrently; every one must still
# get its (exact) answer back — a stall capture observes, never cancels.
def run_client(results, i):
    sock = socket.create_connection(("127.0.0.1", port), timeout=120)
    f = sock.makefile("rwb")
    f.write(query.encode() + b"\n")
    f.flush()
    results[i] = json.loads(f.readline().decode())
    sock.close()

results = [None] * clients
threads = [threading.Thread(target=run_client, args=(results, i))
           for i in range(clients)]
for t in threads:
    t.start()
for t in threads:
    t.join()
for r in results:
    assert r is not None and r["status"] == "ok", r
    assert r["hits"] and r["hits"][0]["id"] == 0, r

# The watchdog saw every in-flight query blow through the 50 ms flat
# threshold inside exact verification.
url = f"http://127.0.0.1:{metrics_port}/debug/stalls"
with urllib.request.urlopen(url, timeout=5) as resp:
    status, body = resp.status, resp.read()
assert status == 200, status
page = json.loads(body)
assert page["schema"] == "ujoin.stalls", page
assert page["schema_version"] == 1, page
assert page["captures"] >= 1, page
assert page["stalls"], page
for s in page["stalls"]:
    assert s["funnel_stage"] == "verify", s
    assert s["deadline_ns"] == 0, s
    assert s["threshold_ns"] == 50_000_000, s
    assert s["elapsed_ns"] > 50_000_000, s

# Non-timing projection: drop elapsed time and connection identity, keep
# everything content-derived.  Identical queries must leave identical
# stall content no matter how many clients raced.
timing = ("elapsed_ns", "connection", "seq")
proj = sorted(set(
    json.dumps({k: v for k, v in s.items() if k not in timing},
               sort_keys=True)
    for s in page["stalls"]))
with open(out_path, "w") as out:
    out.write("\n".join(proj) + "\n")
print(f"{clients} client(s): {page['captures']} capture(s), "
      f"{len(proj)} distinct stall signature(s)")
PYEOF

  kill -INT "$SERVE_PID"
  wait "$SERVE_PID"
  trap - EXIT
  grep -q "^serve: shutting down$" "$ERR"
  grep -q "^flight-record: wrote " "$ERR"
  python3 tools/validate_flight_record.py "$DIR/stall_flight_$CLIENTS.json"
  grep -q '"kind":"stall_captured"' "$DIR/stall_flight_$CLIENTS.json"
done

# The stripped stall projection is byte-identical across 1, 2, and 4
# concurrent clients: watchdog content depends on the query, not the race.
cmp "$DIR/stalls_proj_1.json" "$DIR/stalls_proj_2.json"
cmp "$DIR/stalls_proj_1.json" "$DIR/stalls_proj_4.json"
echo "stall projection identical across 1/2/4 clients"

echo "serve smoke passed"
