// ujoin command-line tool: generate datasets, run similarity joins and
// searches on files of uncertain strings (one string per line in the
// paper's `A{(C,0.5),(G,0.5)}A` notation).
//
// Usage:
//   ujoin_cli generate --kind=names|protein --size=N [--theta=0.2]
//              [--gamma=5] [--seed=42] [--max-uncertain=0] --out=FILE
//   ujoin_cli join --input=FILE --kind=names|protein [--k=2] [--tau=0.1]
//              [--q=3] [--variant=QFCT|QCT|QFT|FCT] [--exact]
//              [--early-stop] [--threads=1] [--wave-size=0] [--out=FILE]
//              [--metrics-out=FILE] [--trace-out=FILE] [--trace-sample=N]
//              [--prom-out=FILE] [--listen=PORT] [--listen-hold] [--progress]
//              [--flight-record[=FILE]] [--watchdog-ms=N]
//              (--threads=0 uses all cores; results are identical for
//               every thread count and wave size)
//   ujoin_cli index --input=FILE --kind=names|protein [--k=2] [--tau=0.1]
//              [--q=3] --out=FILE.idx
//   ujoin_cli search (--input=FILE | --index=FILE.idx) --kind=names|protein
//              (--query=STRING | --queries=FILE) [--k=2] [--tau=0.1] [--q=3]
//              [--topk=N] [--threads=1] [--query-log=FILE]
//              [--metrics-out=FILE] [--trace-out=FILE] [--trace-sample=N]
//              [--slow-trace-ms=N]
//              [--prom-out=FILE] [--listen=PORT] [--listen-hold]
//              [--flight-record[=FILE]] [--watchdog-ms=N]
//              (--queries runs the whole file through SearchMany and prints
//               aggregated filter/verification statistics; the stats are
//               identical for every --threads value.  --query-log writes one
//               ujoin.query_log JSONL record per query; see DESIGN.md
//               "Per-query diagnostics".)
//   ujoin_cli explain (--input=FILE | --index=FILE.idx) --kind=names|protein
//              --query=STRING [--k=2] [--tau=0.1] [--q=3]
//              [--max-verify-worlds=0] [--deadline-ms=0] [--out=FILE]
//              [--no-timing]
//              (replays one query and prints the full funnel narrative: a
//               versioned ujoin.explain JSON envelope on stdout (or --out)
//               plus a human-readable account on stderr.  With --no-timing
//               the envelope is byte-identical across runs for the same
//               index, query, and limits.)
//   ujoin_cli stats --input=FILE --kind=names|protein
//   ujoin_cli simd-info   (prints the dispatched SIMD instruction set)
//   ujoin_cli serve (--input=FILE | --index=FILE.idx) --kind=names|protein
//              [--k=2] [--tau=0.1] [--q=3] [--port=0] [--metrics-port=-1]
//              [--max-connections=4] [--max-verify-worlds=0]
//              [--deadline-ms=0] [--max-request-bytes=65536]
//              [--max-batch-requests=1024] [--max-batch-bytes=1048576]
//              [--query-log=FILE] [--trace-out=FILE] [--trace-sample=N]
//              [--slow-trace-ms=N] [--idle-timeout-ms=0]
//              [--flight-record[=FILE]] [--watchdog-ms=N]
//              (loads the collection once and answers newline-delimited
//               query batches over TCP until SIGINT/SIGTERM; see
//               DESIGN.md "Resident search service".  --port=0 picks a free
//               port, announced on stderr.  --metrics-port enables the
//               /metrics + /healthz + /debug/slow endpoint, refreshed at
//               batch boundaries.  --max-verify-worlds caps the
//               possible-world product a single exact verification may
//               cost; over-budget candidates fall back to their CDF bounds
//               and the response is marked "inexact".  --deadline-ms is the
//               per-query wall-clock deadline with the same fallback.
//               --max-batch-requests/--max-batch-bytes cap one batch; a
//               client that exceeds either gets a structured error and is
//               disconnected.  --query-log writes one JSONL record per
//               answered request.  --slow-trace-ms force-keeps the spans of
//               any query at or over the threshold regardless of
//               --trace-sample; alone it keeps only such slow queries.
//               --idle-timeout-ms closes a connection that sends nothing
//               for that long.)
//
// Flight recorder (DESIGN.md "Flight recorder and watchdog"):
//   --flight-record[=FILE]  installs a SIGSEGV/SIGABRT/SIGBUS handler that
//                       dumps the always-on flight recorder (what every
//                       thread was doing recently) to FILE — default
//                       ujoin.flight_record — and writes the same dump
//                       (reason "manual") at orderly exit.  The document is
//                       versioned ujoin.flight_record JSON; check it with
//                       tools/validate_flight_record.py.
//   --watchdog-ms=N     starts a stall watchdog: a query/wave running past
//                       4x its own deadline (or past N ms when it has no
//                       deadline) is captured as a stall report — length
//                       band, funnel position, verify-world estimate,
//                       elapsed — and, with --flight-record, dumps the full
//                       flight record.  Under serve the reports are served
//                       at /debug/stalls on the metrics port.
//
// Observability (DESIGN.md "Observability" and "Live monitoring"):
//   --metrics-out=FILE  writes a ujoin.run_report JSON document with the
//                       effective options, the JoinStats, and the merged
//                       obs metric registry (counters/gauges/histograms).
//   --trace-out=FILE    writes per-stage spans as Chrome trace-event JSON;
//                       load it in chrome://tracing or https://ui.perfetto.dev.
//   --trace-sample=N    keeps the spans of 1-in-N probes/queries (driver and
//                       wave spans are always kept).  The decision is a pure
//                       function of a fixed seed and the probe index, so
//                       sampled traces are reproducible and thread-count
//                       invariant; the rate is recorded in trace metadata.
//   --prom-out=FILE     writes the final metric state in Prometheus text
//                       format (atomically, for the node_exporter textfile
//                       collector).
//   --listen=PORT       serves /metrics (Prometheus text) and /healthz on
//                       127.0.0.1:PORT from a background thread; snapshots
//                       refresh at wave boundaries, so scrapes never touch
//                       live per-rank state.  PORT 0 picks a free port; the
//                       bound port is printed to stderr.
//   --listen-hold       after the run completes, keep serving until
//                       SIGINT/SIGTERM (for scrape-interval demos).
//   --progress          prints wave-boundary progress lines to stderr.

#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "datagen/datagen.h"
#include "join/explain.h"
#include "join/ujoin.h"
#include "obs/exposition.h"
#include "obs/flight_recorder.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/query_log.h"
#include "obs/report.h"
#include "obs/scrape_server.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "serve/search_server.h"
#include "util/simd.h"

namespace {

using namespace ujoin;  // NOLINT: CLI driver

class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        error_ = "unexpected argument '" + arg + "'";
        return;
      }
      arg = arg.substr(2);
      const size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg] = "true";
      } else {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      }
    }
  }

  std::string GetString(const std::string& key,
                        const std::string& fallback = "") {
    seen_.insert(key);
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) {
    const std::string v = GetString(key);
    return v.empty() ? fallback : std::atof(v.c_str());
  }
  int GetInt(const std::string& key, int fallback) {
    const std::string v = GetString(key);
    return v.empty() ? fallback : std::atoi(v.c_str());
  }
  bool GetBool(const std::string& key) { return GetString(key) == "true"; }

  // Call after all Get* calls: reports unknown flags.
  bool Validate() {
    if (!error_.empty()) {
      std::fprintf(stderr, "error: %s\n", error_.c_str());
      return false;
    }
    for (const auto& [key, value] : values_) {
      if (!seen_.count(key)) {
        std::fprintf(stderr, "error: unknown flag --%s\n", key.c_str());
        return false;
      }
    }
    return true;
  }

 private:
  std::map<std::string, std::string> values_;
  std::set<std::string> seen_;
  std::string error_;
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: ujoin_cli "
      "<generate|join|index|search|explain|serve|stats|simd-info>"
      " [flags]\n"
      "see the header of tools/ujoin_cli.cc for flag reference\n");
  return 2;
}

// --- observability plumbing (--metrics-out / --trace-out / --progress /
// --prom-out / --listen / --trace-sample) ----------------------------------

// Fixed seed for --trace-sample: sampling decisions are a pure function of
// (seed, probe index), so the same command line always keeps the same probes.
constexpr uint64_t kTraceSampleSeed = 0x756a6f696e;  // "ujoin"

// Owns the sinks named by the observability flags for one command run.
struct ObsOutputs {
  std::string metrics_path;
  std::string trace_path;
  std::string prom_path;
  int listen_port = -1;  // -1 = no server; 0 = pick a free port
  bool listen_hold = false;
  bool progress = false;
  obs::Recorder recorder;
  obs::TraceRecorder tracer;
  obs::ScrapeServer server;

  // Whether any flag needs the metric recorder attached to the run.
  bool WantsRecorder() const {
    return !metrics_path.empty() || !prom_path.empty() || listen_port >= 0;
  }
};

// Reads the shared observability flags into `out` (ObsOutputs owns a
// ScrapeServer and is not movable); call before flags.Validate().
void ReadObsFlags(Flags& flags, bool with_progress, ObsOutputs* out) {
  out->metrics_path = flags.GetString("metrics-out");
  out->trace_path = flags.GetString("trace-out");
  out->prom_path = flags.GetString("prom-out");
  const std::string listen = flags.GetString("listen");
  if (!listen.empty()) {
    out->listen_port = listen == "true" ? 0 : std::atoi(listen.c_str());
  }
  out->listen_hold = flags.GetBool("listen-hold");
  const int sample = flags.GetInt("trace-sample", 1);
  if (sample > 1) out->tracer.SetProbeSampling(sample, kTraceSampleSeed);
  if (with_progress) out->progress = flags.GetBool("progress");
}

// Reads --slow-trace-ms into `tracer`: spans of a query at or over the
// threshold are force-kept regardless of the probe sampler.  Without an
// explicit --trace-sample the sampler is set to keep nothing, so the trace
// contains exactly the slow queries.
void ReadSlowTraceFlag(Flags& flags, obs::TraceRecorder* tracer) {
  const int slow_trace_ms = flags.GetInt("slow-trace-ms", 0);
  if (slow_trace_ms <= 0) return;
  tracer->SetSlowKeepNs(int64_t{slow_trace_ms} * 1000000);
  if (flags.GetString("trace-sample").empty()) {
    tracer->SetProbeSampling(0, kTraceSampleSeed);
  }
}

// --- flight recorder / watchdog plumbing (--flight-record / --watchdog-ms,
// shared by join, search, and serve; DESIGN.md "Flight recorder and
// watchdog") -----------------------------------------------------------------

// The flags as given: `record_path` is empty when --flight-record is absent,
// the default file name when given bare, else the explicit file.
struct FlightFlags {
  std::string record_path;
  int64_t watchdog_ms = 0;
};

void ReadFlightFlags(Flags& flags, FlightFlags* out) {
  const std::string record = flags.GetString("flight-record");
  if (!record.empty()) {
    out->record_path = record == "true" ? "ujoin.flight_record" : record;
  }
  out->watchdog_ms = flags.GetInt("watchdog-ms", 0);
}

// Installs the crash-dump handler and starts an in-process watchdog for the
// join/search commands (serve runs its own; see ServeOptions::watchdog_ms).
// 0 on success.
int StartFlight(const FlightFlags& ff,
                std::unique_ptr<obs::Watchdog>* watchdog) {
  if (!ff.record_path.empty() &&
      !obs::InstallCrashDump(ff.record_path.c_str())) {
    std::fprintf(stderr, "error: cannot open %s\n", ff.record_path.c_str());
    return 1;
  }
  if (watchdog != nullptr && ff.watchdog_ms > 0) {
    *watchdog = std::make_unique<obs::Watchdog>(obs::GlobalFlightRecorder());
    obs::WatchdogOptions wd;
    wd.stall_ns = ff.watchdog_ms * 1'000'000;
    wd.dump_path = ff.record_path;
    (*watchdog)->Start(wd);
  }
  return 0;
}

// Stops the watchdog (reporting captures) and writes the orderly end-of-run
// flight record; 0 on success.
int FinishFlight(const FlightFlags& ff,
                 std::unique_ptr<obs::Watchdog>* watchdog) {
  int rc = 0;
  if (watchdog != nullptr && *watchdog != nullptr) {
    (*watchdog)->Stop();
    std::fprintf(stderr, "watchdog: %lld stalls captured\n",
                 static_cast<long long>((*watchdog)->captures()));
    watchdog->reset();
  }
  if (!ff.record_path.empty()) {
    obs::FlightDumpOptions options;
    options.reason = "manual";
    if (obs::DumpFlightRecord(ff.record_path.c_str(), options)) {
      std::fprintf(stderr, "flight-record: wrote %s\n",
                   ff.record_path.c_str());
    } else {
      std::fprintf(stderr, "error: cannot open %s\n", ff.record_path.c_str());
      rc = 1;
    }
  }
  return rc;
}

// Opens the --query-log sink when the flag was given; 0 on success.  On
// success `*out` points at `log` (or stays null when the flag is absent).
int OpenQueryLog(const std::string& path, obs::QueryLog* log,
                 obs::QueryLog** out) {
  *out = nullptr;
  if (path.empty()) return 0;
  const Status status = log->Open(path);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  *out = log;
  return 0;
}

// Closes the --query-log sink and reports the record count; 0 on success.
int FinishQueryLog(const std::string& path, obs::QueryLog* log) {
  if (!log->is_open()) return 0;
  const int64_t written = log->records_written();
  const Status status = log->Close();
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "query-log: wrote %lld records to %s\n",
               static_cast<long long>(written), path.c_str());
  return 0;
}

// Starts the scrape endpoint when --listen was given; 0 on success.  The
// initial snapshot is the (all-zero) recorder so /metrics is well-formed
// before the first wave completes.
int StartObsServer(ObsOutputs& obs_out) {
  if (obs_out.listen_port < 0) return 0;
  obs_out.server.UpdateMetrics(obs::RenderPrometheusText(obs_out.recorder));
  const Status status = obs_out.server.Start(obs_out.listen_port);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "listen: serving /metrics on 127.0.0.1:%d\n",
               obs_out.server.port());
  return 0;
}

volatile std::sig_atomic_t g_hold_interrupted = 0;
void HoldSignalHandler(int /*sig*/) { g_hold_interrupted = 1; }

// Publishes the final snapshot; with --listen-hold, keeps serving until
// SIGINT/SIGTERM.  The ScrapeServer destructor stops the accept thread.
void FinishObsServer(ObsOutputs& obs_out) {
  if (obs_out.listen_port < 0) return;
  obs_out.server.UpdateMetrics(obs::RenderPrometheusText(obs_out.recorder));
  if (obs_out.listen_hold) {
    std::signal(SIGINT, &HoldSignalHandler);
    std::signal(SIGTERM, &HoldSignalHandler);
    std::fprintf(stderr, "listen: holding until SIGINT/SIGTERM\n");
    while (g_hold_interrupted == 0) pause();
  }
  obs_out.server.Stop();
}

struct ProgressState {
  uint64_t last_permille = ~uint64_t{0};
};

// Join progress hook state: optional stderr lines plus live /metrics
// refreshes.  Wave boundaries are the only points where the merged recorder
// is quiescent, which is why the snapshot is rendered here (on the driver
// thread) and pushed to the serving thread as finished bytes.
struct JoinProgressState {
  ProgressState print_state;
  bool print = false;
  ObsOutputs* obs_out = nullptr;
};

// JoinOptions::progress_fn target: one stderr line per permille step.
void PrintProgress(const JoinProgress& progress, void* user) {
  auto* state = static_cast<ProgressState*>(user);
  const uint64_t permille =
      progress.total == 0 ? 1000 : progress.processed * 1000 / progress.total;
  if (state != nullptr) {
    if (permille == state->last_permille &&
        progress.processed != progress.total) {
      return;
    }
    state->last_permille = permille;
  }
  std::fprintf(stderr,
               "progress: %5.1f%%  %llu/%llu strings  %llu pairs  %.2fs\n",
               static_cast<double>(permille) / 10.0,
               static_cast<unsigned long long>(progress.processed),
               static_cast<unsigned long long>(progress.total),
               static_cast<unsigned long long>(progress.result_pairs),
               progress.elapsed_seconds);
}

// JoinOptions::progress_fn target when a live endpoint or --progress (or
// both) is active.
void OnJoinProgress(const JoinProgress& progress, void* user) {
  auto* state = static_cast<JoinProgressState*>(user);
  if (state->print) PrintProgress(progress, &state->print_state);
  if (state->obs_out->listen_port >= 0) {
    state->obs_out->server.UpdateMetrics(
        obs::RenderPrometheusText(state->obs_out->recorder));
  }
}

// The effective JoinOptions, serialized for the run report's "options"
// section (deterministic key order; see DESIGN.md "Observability").
std::string OptionsJson(const JoinOptions& options) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("k");
  w.Int(options.k);
  w.Key("tau");
  w.Double(options.tau);
  w.Key("q");
  w.Int(options.q);
  w.Key("use_qgram_filter");
  w.Bool(options.use_qgram_filter);
  w.Key("use_freq_filter");
  w.Bool(options.use_freq_filter);
  w.Key("use_cdf_filter");
  w.Bool(options.use_cdf_filter);
  w.Key("qgram_probabilistic_pruning");
  w.Bool(options.qgram_probabilistic_pruning);
  w.Key("always_verify");
  w.Bool(options.always_verify);
  w.Key("early_stop_verification");
  w.Bool(options.early_stop_verification);
  w.Key("verify_method");
  w.String(options.verify_method == VerifyMethod::kTrie
               ? "trie"
               : options.verify_method == VerifyMethod::kCompressedTrie
                     ? "compressed_trie"
                     : "naive");
  w.Key("threads");
  w.Int(options.threads);
  w.Key("wave_size");
  w.Int(options.wave_size);
  w.EndObject();
  return w.TakeString();
}

// Writes the run report and/or trace named by the flags; 0 on success.
int WriteObsOutputs(ObsOutputs& obs_out, const std::string& command,
                    const JoinOptions& options, const JoinStats& stats) {
  if (!obs_out.metrics_path.empty()) {
    const Status status =
        obs::WriteRunReport(obs_out.metrics_path, command,
                            {{"options", OptionsJson(options)},
                             {"stats", stats.ToJson()},
                             {"metrics", obs_out.recorder.ToJson()}});
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "metrics: wrote %s\n", obs_out.metrics_path.c_str());
  }
  if (!obs_out.trace_path.empty()) {
    const Status status = obs_out.tracer.WriteFile(obs_out.trace_path);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "trace: wrote %zu spans to %s\n",
                 obs_out.tracer.num_events(), obs_out.trace_path.c_str());
  }
  if (!obs_out.prom_path.empty()) {
    const Status status =
        obs::WritePrometheusTextfile(obs_out.recorder, obs_out.prom_path);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "prom: wrote %s\n", obs_out.prom_path.c_str());
  }
  return 0;
}

Result<Alphabet> AlphabetFromKind(const std::string& kind) {
  if (kind == "names") return Alphabet::Names();
  if (kind == "protein") return Alphabet::Protein();
  if (kind == "dna") return Alphabet::Dna();
  return Status::InvalidArgument("unknown --kind '" + kind +
                                 "' (names|protein|dna)");
}

int RunGenerate(Flags& flags) {
  DatasetOptions opt;
  const std::string kind = flags.GetString("kind", "names");
  opt.kind = kind == "protein" ? DatasetOptions::Kind::kProtein
                               : DatasetOptions::Kind::kNames;
  opt.size = flags.GetInt("size", 1000);
  opt.theta = flags.GetDouble("theta", 0.2);
  opt.gamma = flags.GetInt("gamma", 5);
  opt.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  opt.max_uncertain_positions = flags.GetInt("max-uncertain", 0);
  const std::string out = flags.GetString("out");
  if (!flags.Validate()) return 2;
  if (kind != "names" && kind != "protein") {
    std::fprintf(stderr, "error: --kind must be names or protein\n");
    return 2;
  }
  if (out.empty()) {
    std::fprintf(stderr, "error: --out is required\n");
    return 2;
  }
  const Dataset data = GenerateDataset(opt);
  const Status status = SaveDataset(data, out);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu strings to %s\n", data.strings.size(), out.c_str());
  return 0;
}

Result<std::vector<UncertainString>> LoadInput(Flags& flags,
                                               const Alphabet& alphabet) {
  const std::string input = flags.GetString("input");
  if (input.empty()) {
    return Status::InvalidArgument("--input is required");
  }
  return LoadDataset(input, alphabet);
}

int RunJoin(Flags& flags) {
  Result<Alphabet> alphabet =
      AlphabetFromKind(flags.GetString("kind", "names"));
  if (!alphabet.ok()) {
    std::fprintf(stderr, "error: %s\n", alphabet.status().ToString().c_str());
    return 2;
  }
  JoinOptions options = JoinOptions::Qfct(flags.GetInt("k", 2),
                                          flags.GetDouble("tau", 0.1),
                                          flags.GetInt("q", 3));
  const std::string variant = flags.GetString("variant", "QFCT");
  if (variant == "QCT") {
    options.use_freq_filter = false;
  } else if (variant == "QFT") {
    options.use_cdf_filter = false;
  } else if (variant == "FCT") {
    options.use_qgram_filter = false;
  } else if (variant != "QFCT") {
    std::fprintf(stderr, "error: unknown --variant '%s'\n", variant.c_str());
    return 2;
  }
  options.always_verify = flags.GetBool("exact");
  options.early_stop_verification = flags.GetBool("early-stop");
  options.threads = flags.GetInt("threads", 1);
  options.wave_size = flags.GetInt("wave-size", 0);
  const std::string out_path = flags.GetString("out");
  ObsOutputs obs_out;
  ReadObsFlags(flags, /*with_progress=*/true, &obs_out);
  FlightFlags flight;
  ReadFlightFlags(flags, &flight);
  Result<std::vector<UncertainString>> input = LoadInput(flags, *alphabet);
  if (!flags.Validate()) return 2;
  if (!input.ok()) {
    std::fprintf(stderr, "error: %s\n", input.status().ToString().c_str());
    return 1;
  }
  if (obs_out.WantsRecorder()) options.metrics = &obs_out.recorder;
  if (!obs_out.trace_path.empty()) options.trace = &obs_out.tracer;
  JoinProgressState progress_state;
  progress_state.print = obs_out.progress;
  progress_state.obs_out = &obs_out;
  if (obs_out.progress || obs_out.listen_port >= 0) {
    options.progress_fn = &OnJoinProgress;
    options.progress_user = &progress_state;
  }
  if (StartObsServer(obs_out) != 0) return 1;
  std::unique_ptr<obs::Watchdog> watchdog;
  if (StartFlight(flight, &watchdog) != 0) return 1;
  Result<SelfJoinResult> result =
      SimilaritySelfJoin(*input, *alphabet, options);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::FILE* out = stdout;
  if (!out_path.empty()) {
    out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "error: cannot open %s\n", out_path.c_str());
      return 1;
    }
  }
  for (const JoinPair& pair : result->pairs) {
    std::fprintf(out, "%u\t%u\t%.6f%s\n", pair.lhs, pair.rhs,
                 pair.probability, pair.exact ? "" : "\t(lower bound)");
  }
  if (out != stdout) std::fclose(out);
  std::fprintf(stderr, "%zu pairs\n%s\n", result->pairs.size(),
               result->stats.ToString().c_str());
  int rc = WriteObsOutputs(obs_out, "join", options, result->stats);
  if (FinishFlight(flight, &watchdog) != 0) rc = 1;
  FinishObsServer(obs_out);
  return rc;
}

int RunIndex(Flags& flags) {
  Result<Alphabet> alphabet =
      AlphabetFromKind(flags.GetString("kind", "names"));
  if (!alphabet.ok()) {
    std::fprintf(stderr, "error: %s\n", alphabet.status().ToString().c_str());
    return 2;
  }
  JoinOptions options = JoinOptions::Qfct(flags.GetInt("k", 2),
                                          flags.GetDouble("tau", 0.1),
                                          flags.GetInt("q", 3));
  options.always_verify = true;
  const std::string out = flags.GetString("out");
  Result<std::vector<UncertainString>> input = LoadInput(flags, *alphabet);
  if (!flags.Validate()) return 2;
  if (!input.ok()) {
    std::fprintf(stderr, "error: %s\n", input.status().ToString().c_str());
    return 1;
  }
  if (out.empty()) {
    std::fprintf(stderr, "error: --out is required\n");
    return 2;
  }
  Result<SimilaritySearcher> searcher =
      SimilaritySearcher::Create(std::move(*input), *alphabet, options);
  if (!searcher.ok()) {
    std::fprintf(stderr, "error: %s\n", searcher.status().ToString().c_str());
    return 1;
  }
  const Status status = searcher->Save(out);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("indexed %zu strings (%.2f MiB of inverted lists) -> %s\n",
              searcher->collection().size(),
              static_cast<double>(searcher->IndexMemoryUsage()) /
                  (1024.0 * 1024.0),
              out.c_str());
  return 0;
}

int RunSearch(Flags& flags) {
  Result<Alphabet> alphabet =
      AlphabetFromKind(flags.GetString("kind", "names"));
  if (!alphabet.ok()) {
    std::fprintf(stderr, "error: %s\n", alphabet.status().ToString().c_str());
    return 2;
  }
  JoinOptions options = JoinOptions::Qfct(flags.GetInt("k", 2),
                                          flags.GetDouble("tau", 0.1),
                                          flags.GetInt("q", 3));
  options.always_verify = true;
  const std::string query_text = flags.GetString("query");
  const std::string queries_path = flags.GetString("queries");
  const std::string index_path = flags.GetString("index");
  const int topk = flags.GetInt("topk", 0);
  const int threads = flags.GetInt("threads", 1);
  ObsOutputs obs_out;
  ReadObsFlags(flags, /*with_progress=*/false, &obs_out);
  ReadSlowTraceFlag(flags, &obs_out.tracer);
  FlightFlags flight;
  ReadFlightFlags(flags, &flight);
  const std::string query_log_path = flags.GetString("query-log");
  obs::Recorder* const metrics =
      obs_out.WantsRecorder() ? &obs_out.recorder : nullptr;
  obs::TraceRecorder* const trace =
      obs_out.trace_path.empty() ? nullptr : &obs_out.tracer;

  Result<SimilaritySearcher> searcher = [&]() -> Result<SimilaritySearcher> {
    if (!index_path.empty()) {
      flags.GetString("input");  // accepted but ignored with --index
      return SimilaritySearcher::Load(index_path, *alphabet);
    }
    Result<std::vector<UncertainString>> input = LoadInput(flags, *alphabet);
    if (!input.ok()) return input.status();
    return SimilaritySearcher::Create(std::move(*input), *alphabet, options);
  }();
  if (!flags.Validate()) return 2;
  if (!searcher.ok()) {
    std::fprintf(stderr, "error: %s\n", searcher.status().ToString().c_str());
    return 1;
  }
  obs::QueryLog query_log;
  obs::QueryLog* query_log_ptr = nullptr;
  if (OpenQueryLog(query_log_path, &query_log, &query_log_ptr) != 0) return 1;
  if (StartObsServer(obs_out) != 0) return 1;
  std::unique_ptr<obs::Watchdog> watchdog;
  if (StartFlight(flight, &watchdog) != 0) return 1;
  if (!queries_path.empty()) {
    // Batch mode: run the whole query file through SearchMany and report
    // the aggregated statistics (folded in query order, so the numbers are
    // identical for every --threads value).
    Result<std::vector<UncertainString>> queries =
        LoadDataset(queries_path, *alphabet);
    if (!queries.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   queries.status().ToString().c_str());
      return 1;
    }
    JoinStats stats;
    Result<std::vector<std::vector<SearchHit>>> hits =
        searcher->SearchMany(*queries, threads, &stats, metrics, trace,
                             /*limits=*/nullptr, query_log_ptr);
    if (!hits.ok()) {
      std::fprintf(stderr, "error: %s\n", hits.status().ToString().c_str());
      return 1;
    }
    size_t total_hits = 0;
    for (size_t q = 0; q < hits->size(); ++q) {
      for (const SearchHit& hit : (*hits)[q]) {
        std::printf("%zu\t%u\t%.6f\n", q, hit.id, hit.probability);
        ++total_hits;
      }
    }
    std::fprintf(stderr, "%zu queries, %zu hits\n%s\n", queries->size(),
                 total_hits, stats.ToString().c_str());
    int rc = WriteObsOutputs(obs_out, "search", options, stats);
    if (FinishQueryLog(query_log_path, &query_log) != 0) rc = 1;
    if (FinishFlight(flight, &watchdog) != 0) rc = 1;
    FinishObsServer(obs_out);
    return rc;
  }
  if (query_text.empty()) {
    std::fprintf(stderr, "error: --query or --queries is required\n");
    return 2;
  }
  Result<UncertainString> query =
      UncertainString::Parse(query_text, *alphabet);
  if (!query.ok()) {
    std::fprintf(stderr, "error: bad query: %s\n",
                 query.status().ToString().c_str());
    return 1;
  }
  JoinStats stats;
  // Per-query span buffer, appended to the tracer after the call (the
  // same collect-then-fold pattern the batch drivers use).  With a
  // slow-keep threshold the spans must be collected speculatively: the
  // keep decision needs the query's wall time.
  obs::SpanCollector spans;
  obs::SpanCollector* span_sink = nullptr;
  if (trace != nullptr &&
      (trace->SampleProbe(0) || trace->slow_keep_ns() > 0)) {
    spans = obs::SpanCollector(trace, /*tid=*/1);
    span_sink = &spans;
  }
  // A --query-log record needs a per-query recorder even when no other obs
  // flag attached one.
  obs::Recorder query_rec;
  obs::Recorder* rec_ptr = metrics;
  if (rec_ptr == nullptr && query_log_ptr != nullptr) rec_ptr = &query_rec;
  // SearchTopK has no metric hooks: a --topk report carries stats only.
  Result<std::vector<SearchHit>> hits =
      topk > 0 ? searcher->SearchTopK(*query, topk, &stats)
               : searcher->Search(*query, &stats, /*workspace=*/nullptr,
                                  rec_ptr, span_sink);
  if (!hits.ok()) {
    std::fprintf(stderr, "error: %s\n", hits.status().ToString().c_str());
    return 1;
  }
  const int64_t query_ns = static_cast<int64_t>(stats.total_time * 1e9);
  if (trace != nullptr) {
    const bool keep =
        spans.enabled() && trace->KeepProbe(trace->SampleProbe(0), query_ns);
    trace->NoteProbe(keep);
    if (keep) trace->Append(spans.events());
  }
  if (query_log_ptr != nullptr) {
    obs::QueryLogRecord record = obs::MakeQueryLogRecord(
        *rec_ptr, /*connection=*/0, /*seq=*/1, query->length(),
        static_cast<int64_t>(hits->size()), /*error=*/false);
    record.budget_fallbacks = stats.budget_fallbacks;
    record.deadline_fallbacks = stats.deadline_fallbacks;
    record.inexact = stats.Inexact();
    record.total_ns = query_ns;
    record.verify_ns = static_cast<int64_t>(stats.verify_time * 1e9);
    query_log_ptr->Write(record);
  }
  for (const SearchHit& hit : *hits) {
    std::printf("%u\t%.6f\t%s\n", hit.id, hit.probability,
                searcher->collection()[hit.id].ToString().c_str());
  }
  std::fprintf(stderr, "%zu hits\n", hits->size());
  int rc = WriteObsOutputs(obs_out, "search", options, stats);
  if (FinishQueryLog(query_log_path, &query_log) != 0) rc = 1;
  if (FinishFlight(flight, &watchdog) != 0) rc = 1;
  FinishObsServer(obs_out);
  return rc;
}

int RunExplain(Flags& flags) {
  Result<Alphabet> alphabet =
      AlphabetFromKind(flags.GetString("kind", "names"));
  if (!alphabet.ok()) {
    std::fprintf(stderr, "error: %s\n", alphabet.status().ToString().c_str());
    return 2;
  }
  JoinOptions options = JoinOptions::Qfct(flags.GetInt("k", 2),
                                          flags.GetDouble("tau", 0.1),
                                          flags.GetInt("q", 3));
  options.always_verify = true;
  const std::string query_text = flags.GetString("query");
  const std::string index_path = flags.GetString("index");
  const std::string out_path = flags.GetString("out");
  const bool no_timing = flags.GetBool("no-timing");
  SearchLimits limits;
  limits.max_verify_worlds = flags.GetInt("max-verify-worlds", 0);
  limits.deadline_ns = int64_t{flags.GetInt("deadline-ms", 0)} * 1000000;

  Result<SimilaritySearcher> searcher = [&]() -> Result<SimilaritySearcher> {
    if (!index_path.empty()) {
      flags.GetString("input");  // accepted but ignored with --index
      return SimilaritySearcher::Load(index_path, *alphabet);
    }
    Result<std::vector<UncertainString>> input = LoadInput(flags, *alphabet);
    if (!input.ok()) return input.status();
    return SimilaritySearcher::Create(std::move(*input), *alphabet, options);
  }();
  if (!flags.Validate()) return 2;
  if (!searcher.ok()) {
    std::fprintf(stderr, "error: %s\n", searcher.status().ToString().c_str());
    return 1;
  }
  if (query_text.empty()) {
    std::fprintf(stderr, "error: --query is required\n");
    return 2;
  }
  Result<UncertainString> query =
      UncertainString::Parse(query_text, searcher->alphabet());
  if (!query.ok()) {
    std::fprintf(stderr, "error: bad query: %s\n",
                 query.status().ToString().c_str());
    return 1;
  }
  Result<ExplainResult> result = searcher->Explain(*query, &limits);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  const std::string json = RenderExplainJson(*searcher, *query, *result,
                                             limits, !no_timing);
  if (out_path.empty()) {
    std::fputs(json.c_str(), stdout);
  } else {
    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    out << json;
    if (!out.good()) {
      std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "explain: wrote %s\n", out_path.c_str());
  }
  std::fputs(RenderExplainNarrative(*searcher, *query, *result).c_str(),
             stderr);
  return 0;
}

int RunServe(Flags& flags) {
  Result<Alphabet> alphabet =
      AlphabetFromKind(flags.GetString("kind", "names"));
  if (!alphabet.ok()) {
    std::fprintf(stderr, "error: %s\n", alphabet.status().ToString().c_str());
    return 2;
  }
  JoinOptions options = JoinOptions::Qfct(flags.GetInt("k", 2),
                                          flags.GetDouble("tau", 0.1),
                                          flags.GetInt("q", 3));
  options.always_verify = true;
  const std::string index_path = flags.GetString("index");
  serve::ServeOptions serve_options;
  serve_options.port = flags.GetInt("port", 0);
  serve_options.metrics_port = flags.GetInt("metrics-port", -1);
  serve_options.max_connections = flags.GetInt("max-connections", 4);
  serve_options.limits.max_verify_worlds =
      flags.GetInt("max-verify-worlds", 0);
  serve_options.limits.deadline_ns =
      int64_t{flags.GetInt("deadline-ms", 0)} * 1000000;
  serve_options.max_request_bytes = static_cast<size_t>(
      flags.GetInt("max-request-bytes", 1 << 16));
  serve_options.max_batch_requests =
      int64_t{flags.GetInt("max-batch-requests", 1024)};
  serve_options.max_batch_bytes =
      int64_t{flags.GetInt("max-batch-bytes", 1 << 20)};
  serve_options.idle_timeout_ms = flags.GetInt("idle-timeout-ms", 0);
  FlightFlags flight;
  ReadFlightFlags(flags, &flight);
  serve_options.watchdog_ms = flight.watchdog_ms;
  serve_options.watchdog_dump_path = flight.record_path;
  const std::string query_log_path = flags.GetString("query-log");
  const std::string trace_path = flags.GetString("trace-out");
  obs::QueryLog query_log;
  obs::TraceRecorder tracer;
  const int trace_sample = flags.GetInt("trace-sample", 1);
  if (trace_sample > 1) tracer.SetProbeSampling(trace_sample, kTraceSampleSeed);
  ReadSlowTraceFlag(flags, &tracer);
  if (!trace_path.empty()) serve_options.trace = &tracer;

  Result<SimilaritySearcher> searcher = [&]() -> Result<SimilaritySearcher> {
    if (!index_path.empty()) {
      flags.GetString("input");  // accepted but ignored with --index
      return SimilaritySearcher::Load(index_path, *alphabet);
    }
    Result<std::vector<UncertainString>> input = LoadInput(flags, *alphabet);
    if (!input.ok()) return input.status();
    return SimilaritySearcher::Create(std::move(*input), *alphabet, options);
  }();
  if (!flags.Validate()) return 2;
  if (serve_options.max_connections <= 0) {
    std::fprintf(stderr, "error: --max-connections must be positive\n");
    return 2;
  }
  if (!searcher.ok()) {
    std::fprintf(stderr, "error: %s\n", searcher.status().ToString().c_str());
    return 1;
  }
  if (OpenQueryLog(query_log_path, &query_log, &serve_options.query_log) !=
      0) {
    return 1;
  }
  // Serve runs its own watchdog (inside SearchServer, so captures reach
  // /debug/stalls and the serve recorder); here only the crash handler.
  if (StartFlight(flight, /*watchdog=*/nullptr) != 0) return 1;

  serve::SearchServer server(&*searcher, serve_options);
  const Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "serve: %zu strings indexed, answering on 127.0.0.1:%d "
               "(%d connections max)\n",
               searcher->collection().size(), server.port(),
               serve_options.max_connections);
  if (server.metrics_port() >= 0) {
    std::fprintf(stderr, "serve: /metrics on 127.0.0.1:%d\n",
                 server.metrics_port());
  }
  if (serve_options.watchdog_ms > 0) {
    std::fprintf(stderr, "serve: watchdog at %lld ms (/debug/stalls)\n",
                 static_cast<long long>(serve_options.watchdog_ms));
  }
  std::signal(SIGINT, &HoldSignalHandler);
  std::signal(SIGTERM, &HoldSignalHandler);
  while (g_hold_interrupted == 0) pause();
  std::fprintf(stderr, "serve: shutting down\n");
  server.Stop();
  if (serve_options.watchdog_ms > 0) {
    std::fprintf(stderr, "watchdog: %lld stalls captured\n",
                 static_cast<long long>(server.WatchdogCaptures()));
  }
  const JoinStats stats = server.Stats();
  const obs::Recorder serve_metrics = server.ServeMetrics();
  std::fprintf(
      stderr,
      "serve: %lld connections (%lld rejected), %lld requests "
      "(%lld errors), %lld batches\n%s\n",
      static_cast<long long>(
          serve_metrics.counter(obs::Counter::kServeConnections)),
      static_cast<long long>(
          serve_metrics.counter(obs::Counter::kServeRejectedConnections)),
      static_cast<long long>(
          serve_metrics.counter(obs::Counter::kServeRequests)),
      static_cast<long long>(
          serve_metrics.counter(obs::Counter::kServeRequestErrors)),
      static_cast<long long>(
          serve_metrics.counter(obs::Counter::kServeBatches)),
      stats.ToString().c_str());
  int rc = 0;
  if (FinishFlight(flight, /*watchdog=*/nullptr) != 0) rc = 1;
  if (FinishQueryLog(query_log_path, &query_log) != 0) rc = 1;
  if (!trace_path.empty()) {
    const Status trace_status = tracer.WriteFile(trace_path);
    if (!trace_status.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   trace_status.ToString().c_str());
      rc = 1;
    } else {
      std::fprintf(stderr, "trace: wrote %zu spans to %s\n",
                   tracer.num_events(), trace_path.c_str());
    }
  }
  return rc;
}

int RunStats(Flags& flags) {
  Result<Alphabet> alphabet =
      AlphabetFromKind(flags.GetString("kind", "names"));
  if (!alphabet.ok()) {
    std::fprintf(stderr, "error: %s\n", alphabet.status().ToString().c_str());
    return 2;
  }
  Result<std::vector<UncertainString>> input = LoadInput(flags, *alphabet);
  if (!flags.Validate()) return 2;
  if (!input.ok()) {
    std::fprintf(stderr, "error: %s\n", input.status().ToString().c_str());
    return 1;
  }
  int64_t total_len = 0, uncertain = 0, alternatives = 0;
  int min_len = INT32_MAX, max_len = 0;
  for (const UncertainString& s : *input) {
    total_len += s.length();
    min_len = std::min(min_len, s.length());
    max_len = std::max(max_len, s.length());
    for (int i = 0; i < s.length(); ++i) {
      if (!s.IsCertain(i)) {
        ++uncertain;
        alternatives += s.NumAlternatives(i);
      }
    }
  }
  const double n = static_cast<double>(input->size());
  std::printf("strings:            %zu\n", input->size());
  std::printf("length:             min %d, avg %.1f, max %d\n", min_len,
              static_cast<double>(total_len) / n, max_len);
  std::printf("theta (uncertain):  %.3f\n",
              static_cast<double>(uncertain) / static_cast<double>(total_len));
  std::printf("gamma (mean alts):  %.2f\n",
              uncertain > 0 ? static_cast<double>(alternatives) /
                                  static_cast<double>(uncertain)
                            : 0.0);
  return 0;
}

// `ujoin_cli simd-info`: the instruction set the kernel layer dispatched to
// at startup (also recorded as "simd_isa" in every ujoin.run_report).  CI's
// release leg prints this so the log shows what the benchmarks measured.
int RunSimdInfo() {
  std::printf("simd_isa: %s\n", simd::ActiveIsaName());
#if defined(UJOIN_SIMD_DISABLED)
  std::printf("build:    -DUJOIN_SIMD=off (scalar kernels only)\n");
#else
  std::printf("build:    -DUJOIN_SIMD=auto (runtime dispatch)\n");
#endif
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  Flags flags(argc, argv);
  const std::string command = argv[1];
  if (command == "generate") return RunGenerate(flags);
  if (command == "join") return RunJoin(flags);
  if (command == "index") return RunIndex(flags);
  if (command == "search") return RunSearch(flags);
  if (command == "explain") return RunExplain(flags);
  if (command == "serve") return RunServe(flags);
  if (command == "stats") return RunStats(flags);
  if (command == "simd-info") return RunSimdInfo();
  return Usage();
}
