#!/usr/bin/env bash
# Live-monitoring smoke, shared by tools/check.sh and CI:
#
#   1. runs a CLI join with --listen (ephemeral port) and --listen-hold,
#      scrapes /metrics and /healthz over real HTTP while the process is
#      holding, and validates the page with tools/validate_exposition.py;
#   2. shuts the held process down with SIGINT and checks a clean exit;
#   3. re-runs the join with --trace-sample=N and asserts the sampled trace
#      keeps every driver/wave span, records the sampling rate in its
#      metadata, and carries roughly N-fold fewer probe spans than an
#      unsampled trace of the same run.
#
# Usage: tools/live_smoke.sh [build_dir]
#   build_dir defaults to "build"; artefacts go to <build_dir>/live-smoke.
#
# Pure python3 stdlib for the HTTP client (urllib): curl is not assumed.

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
CLI="$BUILD/tools/ujoin_cli"
DIR="$BUILD/live-smoke"
SAMPLE_N=4
mkdir -p "$DIR"

"$CLI" generate --kind=names --size=200 --seed=11 \
  --out="$DIR/data.txt" >/dev/null

echo "--- live scrape endpoint"
rm -f "$DIR/listen.err"
"$CLI" join --input="$DIR/data.txt" --kind=names --k=2 --tau=0.1 \
  --threads=2 --listen=0 --listen-hold --out="$DIR/pairs.txt" \
  >/dev/null 2>"$DIR/listen.err" &
JOIN_PID=$!
trap 'kill "$JOIN_PID" 2>/dev/null || true' EXIT

# The CLI prints "listen: serving /metrics on 127.0.0.1:<port>" on stderr
# before the join starts; poll for it, then for the endpoint itself.
PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/^listen: serving \/metrics on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
    "$DIR/listen.err" 2>/dev/null || true)"
  [[ -n "$PORT" ]] && break
  sleep 0.1
done
if [[ -z "$PORT" ]]; then
  echo "FAIL: scrape endpoint never announced its port" >&2
  cat "$DIR/listen.err" >&2
  exit 1
fi
echo "scrape endpoint on port $PORT"

python3 - "$PORT" "$DIR/metrics.prom" <<'PYEOF'
import sys, time, urllib.request

port, out_path = int(sys.argv[1]), sys.argv[2]
base = f"http://127.0.0.1:{port}"

def fetch(path):
    with urllib.request.urlopen(base + path, timeout=5) as r:
        return r.status, r.headers.get("Content-Type", ""), r.read()

deadline = time.monotonic() + 10
while True:
    try:
        status, _, body = fetch("/healthz")
        break
    except OSError:
        if time.monotonic() > deadline:
            raise
        time.sleep(0.1)
assert status == 200 and body == b"ok\n", (status, body)

# Scrape until the finished join's final snapshot (all 200 probes) lands;
# --listen-hold keeps the server up after the join completes.
deadline = time.monotonic() + 60
while True:
    status, ctype, body = fetch("/metrics")
    assert status == 200, status
    assert ctype.startswith("text/plain"), ctype
    if b"ujoin_probes_total 200\n" in body:
        break
    assert time.monotonic() < deadline, \
        f"final snapshot never appeared; last page:\n{body.decode()}"
    time.sleep(0.2)
assert b"ujoin_filter_funnel_candidates_total{stage=\"qgram\"," in body
with open(out_path, "wb") as f:
    f.write(body)
print(f"scraped /healthz and /metrics ({len(body)} bytes)")
PYEOF

python3 tools/validate_exposition.py "$DIR/metrics.prom"

kill -INT "$JOIN_PID"
wait "$JOIN_PID"
trap - EXIT
echo "held process exited cleanly on SIGINT"

echo "--- trace sampling (1 in $SAMPLE_N)"
"$CLI" join --input="$DIR/data.txt" --kind=names --k=2 --tau=0.1 \
  --threads=2 --trace-out="$DIR/trace_full.json" \
  --out=/dev/null >/dev/null 2>&1
"$CLI" join --input="$DIR/data.txt" --kind=names --k=2 --tau=0.1 \
  --threads=2 --trace-out="$DIR/trace_sampled.json" \
  --trace-sample="$SAMPLE_N" --out=/dev/null >/dev/null 2>&1

python3 - "$DIR/trace_full.json" "$DIR/trace_sampled.json" "$SAMPLE_N" <<'PYEOF'
import json, sys

full = json.load(open(sys.argv[1]))
sampled = json.load(open(sys.argv[2]))
n = int(sys.argv[3])

def probe_spans(trace):
    return sum(1 for e in trace["traceEvents"]
               if e["ph"] == "X" and e["name"] == "probe")

for trace in (full, sampled):
    # Same schema checks as the unsampled obs smoke.
    assert trace["traceEvents"], "trace has no events"
    assert all({"ph", "pid"} <= e.keys() for e in trace["traceEvents"])
    assert all({"ts", "dur", "tid"} <= e.keys()
               for e in trace["traceEvents"] if e["ph"] == "X")
    # Driver/wave spans survive sampling.
    spans = {e["name"] for e in trace["traceEvents"] if e["ph"] == "X"}
    for name in ("index_insert", "wave_probe", "wave_merge"):
        assert name in spans, f"missing span '{name}'"

meta_full = full["metadata"]
meta_sampled = sampled["metadata"]
assert meta_full["probe_span_sample_n"] == 1, meta_full
assert meta_full["probes_seen"] == meta_full["probes_sampled"] == 200, \
    meta_full
assert meta_sampled["probe_span_sample_n"] == n, meta_sampled
assert meta_sampled["probes_seen"] == 200, meta_sampled

full_probes = probe_spans(full)
kept = probe_spans(sampled)
assert full_probes == 200, full_probes
assert kept == meta_sampled["probes_sampled"], (kept, meta_sampled)
# ~1-in-n survives; the seeded decision is deterministic, the band generous.
assert 0 < kept <= full_probes // 2, (kept, full_probes)
print(f"sampled trace keeps {kept}/{full_probes} probe spans "
      f"(rate 1/{n} recorded in metadata)")
PYEOF

echo "live smoke passed"
