#!/usr/bin/env python3
"""ujoin_effects: whole-repo transitive effect analyzer for ujoin.

tools/ujoin_lint.py spot-checks invariants file by file; this tool proves
the *transitive* versions.  It reuses the linter's comment-stripping lexer
and brace-depth function tracker to extract a function-level call graph of
src/ and tools/, infers a per-function effect set, propagates effects over
the graph, and verifies the contracts below, reporting every violation
with a full call-chain witness.  (libclang is not available in the build
container; like the linter, this is a regex-AST hybrid, tuned to the
repo's own idioms.)

Effect lattice (a set union lattice; bigger = more effects):

  alloc          heap allocation: new/malloc/make_unique/make_shared or
                 construction of a local allocating container
  lock           mutex acquisition: lock_guard/unique_lock/scoped_lock,
                 .lock()
  io             syscalls and streams: socket/send/recv/open/fstream/...
  block          unbounded blocking: thread join, condition_variable wait,
                 sleep, accept
  wall_clock     reading the clock: Timer/ScopedTimer/ScopedNanoTimer,
                 steady_clock::now
  rng            an unseeded randomness source (rand, random_device,
                 time(NULL) seeds); the seeded ujoin::Rng does not count
  unordered_iter iterating an unordered_{map,set}: order depends on hash
                 seeding and insertion history
  obs_record     direct Recorder mutation (RecordHist/AddCounter/SetGauge/
                 AddFunnel)

Annotation grammar (in comments, attached to the function they precede or
enclose):

  // ujoin-effect: declares(alloc, io) -- reason
      This function intentionally carries these effects.  Adds them if the
      analyzer cannot see them (externals), and *blesses* them: a contract
      traversal that reaches this function accepts the declared effects
      instead of reporting a violation.  Removing a declares() from a
      function with visible evidence turns a clean analysis into a
      violation — annotations are load-bearing.
  // ujoin-effect: assumes(alloc) -- reason
      Vouches for the whole subtree: traversals stop here for the listed
      effects.  Use for intentional sinks whose internals are audited by
      other means.
  // ujoin-effect: calls(ujoin::Foo::Bar) -- reason
      Adds an explicit call edge for indirection the extractor cannot see
      (function pointers, type-erased callbacks, virtual dispatch).

Every annotation must be load-bearing: a declares()/assumes() that no
contract traversal consults, an assumes() masking an effect its subtree
does not have, or a calls() naming an unknown function is reported as
stale (same policy as the linter's stale-suppression rule).

Contracts (frozen in CONTRACTS below; see DESIGN.md "Effect analysis"):

  probe-path        The query roots (InvertedSegmentIndex::Query, the
                    searcher's Search/SearchMany, the self-join wave
                    driver) reach no alloc/lock/io/block outside the
                    frozen whitelist of build/freeze/workspace-growth and
                    batch-boundary functions.
  serialize-deterministic
                    Serialization and deterministic-JSON roots reach no
                    unordered_iter, wall_clock, or unseeded rng: emitted
                    bytes stay a pure function of content.
  flight-path       The flight recorder's record path (RecordEvent, run
                    inside the zero-allocation probe path) and dump path
                    (DumpToFd, run inside a SIGSEGV handler) reach no
                    alloc, lock, or io; the async-signal-safe raw-write
                    sink is blessed by its declares(io) annotation.
  serve-steady      Serve request handlers and the aggregate fold/snapshot
                    path reach no unbounded blocking call: a slow scrape
                    or a stuck peer must not stall query folds.
  obs-isolation     obs_record happens only inside src/obs/ (reached
                    through the UJOIN_OBS_* macro layer), transitively.
  stale-annotation  Every ujoin-effect annotation (and whitelist entry)
                    is load-bearing; stale ones are errors.

Usage:
  tools/ujoin_effects.py [--root DIR] [--report FILE] [--require-roots]
  tools/ujoin_effects.py --self-test        embedded graphs + fixtures
  tools/ujoin_effects.py --list-contracts

The report (--report) is the versioned "ujoin.effects" JSON document:
deterministic byte-for-byte for a fixed tree (no timestamps, sorted
collections), so fixtures pin it byte-golden.

Exit status: 0 clean, 1 violations/stale findings, 2 usage or I/O error.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import os
import re
import sys
from dataclasses import dataclass, field

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import ujoin_lint as lint  # noqa: E402  (lexer, tracker, staleness helpers)

SCHEMA_NAME = "ujoin.effects"
SCHEMA_VERSION = 1

EFFECTS = (
    "alloc", "lock", "io", "block", "wall_clock", "rng", "unordered_iter",
    "obs_record",
)

# Files whose functions enter the graph.  Tests are excluded: contracts
# constrain the production tree, and tests exercise deliberately-allocating
# convenience overloads.
GRAPH_GLOBS = ["src/**/*.h", "src/**/*.cc", "tools/*.cc"]
EXCLUDE_GLOBS = ["tests/lint/*"]

# ---------------------------------------------------------------------------
# Direct effect evidence: patterns over stripped source lines
# ---------------------------------------------------------------------------

_LOCK_PATTERNS = [
    (re.compile(r"\b(?:std\s*::\s*)?"
                r"(?:lock_guard|unique_lock|scoped_lock|shared_lock)\s*<"),
     "mutex guard construction"),
    (re.compile(r"(?:\.|->)\s*lock\s*\(\s*\)"), ".lock()"),
    (re.compile(r"\bpthread_mutex_lock\s*\("), "pthread_mutex_lock"),
]

_IO_PATTERNS = [
    (re.compile(r"\b(?:std\s*::\s*)?[oi]?fstream\b"), "file stream"),
    (re.compile(r"\bstd\s*::\s*(?:cout|cerr|clog|cin)\b"), "std stream"),
    (re.compile(r"(?<![\w:.>])(?:f?printf|fputs|fopen|fclose|fread|fwrite"
                r"|fflush|remove|rename|getenv|system)\s*\("),
     "libc io call"),
    (re.compile(r"(?<![\w:.>])(?:socket|bind|listen|accept|connect|send"
                r"|recv|setsockopt|getsockname|poll|close)\s*\("),
     "socket/syscall"),
]

_BLOCK_PATTERNS = [
    (re.compile(r"(?:\.|->)\s*join\s*\(\s*\)"), "thread join"),
    (re.compile(r"(?:\.|->)\s*wait\s*\("), "condition_variable wait"),
    (re.compile(r"\bsleep_(?:for|until)\s*\("), "sleep"),
    (re.compile(r"(?<![\w:.>])(?:sleep|usleep)\s*\("), "sleep"),
    (re.compile(r"(?<![\w:.>])accept\s*\("), "blocking accept"),
]

_WALL_CLOCK_PATTERNS = [
    (re.compile(r"\b(?:steady_clock|system_clock|high_resolution_clock"
                r"|Clock)\s*::\s*now\s*\("),
     "clock read"),
    (re.compile(r"\b(?:Timer|ScopedTimer|ScopedNanoTimer)\s+\w+\s*[;({]"),
     "stopwatch construction"),
]

# A local declaration of an unordered container, and iteration over one
# (shared shapes with the linter's per-file rule).
_UNORDERED_ITER_PATTERNS = [
    (lint._RANGE_FOR_SPLIT_RE, None),   # handled specially below
]


def _line_effects(line: str, unordered_names: set[str]
                  ) -> list[tuple[str, str]]:
    """Direct effect evidence on one stripped line: (effect, what) pairs."""
    out: list[tuple[str, str]] = []
    for pat, what, _file_scope in lint._ALLOC_PATTERNS:
        if pat.search(line):
            out.append(("alloc", what))
            break
    for pat, what in _LOCK_PATTERNS:
        if pat.search(line):
            out.append(("lock", what))
            break
    for pat, what in _IO_PATTERNS:
        if pat.search(line):
            out.append(("io", what))
            break
    for pat, what in _BLOCK_PATTERNS:
        if pat.search(line):
            out.append(("block", what))
            break
    for pat, what in _WALL_CLOCK_PATTERNS:
        if pat.search(line):
            out.append(("wall_clock", what))
            break
    for pat, what in lint._RNG_PATTERNS:
        if pat.search(line):
            out.append(("rng", what))
            break
    m = lint._RANGE_FOR_SPLIT_RE.search(line)
    if m:
        range_expr = m.group(2)
        if lint._UNORDERED_DECL_RE.search(range_expr):
            out.append(("unordered_iter", "range-for over unordered temporary"))
        elif lint._base_identifier(range_expr) in unordered_names:
            out.append(("unordered_iter",
                        "range-for over unordered container"))
    else:
        m = lint._BEGIN_CALL_RE.search(line)
        if m:
            base = re.split(r"\.|->", m.group(1).replace("()", ""))[-1]
            if base in unordered_names:
                out.append(("unordered_iter",
                            "iterator over unordered container"))
    if lint._OBS_DIRECT_RE.search(line):
        out.append(("obs_record", "direct Recorder mutation"))
    return out


# Effects of calls the extractor cannot resolve to a repo function.  Keyed
# by the callee's last name component; consulted only after repo-function
# resolution fails, so a repo function named e.g. `Open` shadows the entry.
BUILTIN_CALL_EFFECTS = {
    "to_string": ("alloc", "std::to_string"),
    "substr": ("alloc", "std::string::substr"),
    "stringstream": ("alloc", "stringstream"),
    "strdup": ("alloc", "strdup"),
    "fopen": ("io", "fopen"),
    "getline": ("io", "getline"),
    "wait_for": ("block", "condition_variable wait_for"),
}

_ANNOT_RE = re.compile(r"ujoin-effect:\s*(declares|assumes|calls)\(([^)]*)\)")

# ---------------------------------------------------------------------------
# Graph model
# ---------------------------------------------------------------------------


@dataclass
class Evidence:
    effect: str
    file: str
    line: int
    what: str


@dataclass
class Annotation:
    kind: str       # declares | assumes | calls
    arg: str        # one effect name or one call target
    file: str
    line: int       # 1-based line of the comment
    used: bool = False


@dataclass
class Node:
    qual: str                       # merged key: qualified function name
    files: list = field(default_factory=list)       # definition sites
    evidence: list = field(default_factory=list)    # [Evidence]
    declares: dict = field(default_factory=dict)    # effect -> Annotation
    assumes: dict = field(default_factory=dict)     # effect -> Annotation
    callees: set = field(default_factory=set)       # node quals
    is_macro: bool = False

    def direct_effects(self) -> set[str]:
        return {e.effect for e in self.evidence} | set(self.declares)

    def first_evidence(self, effect: str) -> Evidence | None:
        best = None
        for ev in self.evidence:
            if ev.effect == effect:
                if best is None or (ev.file, ev.line) < (best.file, best.line):
                    best = ev
        if best is None and effect in self.declares:
            a = self.declares[effect]
            return Evidence(effect, a.file, a.line, "declared effect")
        return best


_CALL_RE = re.compile(
    r"(?<![\w.>:])((?:~?\w+\s*::\s*)+~?\w+|\w+)\s*\(")
_MEMBER_CALL_RE = re.compile(
    r"([\w\)\]]+(?:(?:\.|->)\w+(?:\(\s*\))?)*)\s*(?:\.|->)\s*(\w+)\s*\(")
_DECL_BIND_RE = re.compile(
    r"(?:^|[;{(,]|\bconst\s|\bstatic\s|\bmutable\s)\s*"
    r"((?:\w+\s*::\s*)*[A-Z]\w*)(?:<[^;{}]*>)?([&*\s]+)(\w+)\s*(?:[;={(,]|$)")
_MEMBER_BIND_RE = re.compile(
    r"^\s*(?:const\s+|static\s+|mutable\s+)*"
    r"((?:\w+\s*::\s*)*[A-Z]\w*)(?:<[^;{}()]*>)?[&*\s]+(\w+_)\s*[;={]")
_MACRO_DEF_RE = re.compile(r"^\s*#\s*define\s+(UJOIN_\w+)\s*\(")
# Lowercase std:: vocabulary types the class-style binder misses.  Binding
# them lets builtin-call inference stay type-aware: string_view::substr is
# allocation-free while string::substr is not.
_STD_BIND_RE = re.compile(r"\bstd\s*::\s*(string_view|string)\b[&*\s]+(\w+)\b")

_CALL_KEYWORDS = lint._CONTROL_KEYWORDS | {
    "static_cast", "const_cast", "reinterpret_cast", "dynamic_cast",
    "defined", "assert", "static_assert", "noexcept", "alignas",
    "UJOIN_CHECK", "UJOIN_RETURN_IF_ERROR", "UJOIN_ASSIGN_OR_RETURN",
}


def _norm(name: str) -> str:
    return re.sub(r"\s*::\s*", "::", name.strip())


class Graph:
    """The whole-repo call graph with per-function effect evidence."""

    def __init__(self) -> None:
        self.nodes: dict[str, Node] = {}
        self.by_last: dict[str, set[str]] = {}       # last comp -> quals
        self.class_methods: dict[str, dict[str, set[str]]] = {}
        self.member_types: dict[str, str] = {}       # `foo_` -> type last comp
        self.annotations: list[Annotation] = []
        self.call_edges_from_annotations: list[tuple[str, str, Annotation]] = []
        self.files: list[str] = []

    # -- node bookkeeping ---------------------------------------------------

    def node(self, qual: str) -> Node:
        qual = _norm(qual)
        n = self.nodes.get(qual)
        if n is None:
            n = Node(qual)
            self.nodes[qual] = n
            parts = qual.split("::")
            self.by_last.setdefault(parts[-1], set()).add(qual)
            if len(parts) >= 2 and "(" not in parts[-1]:
                cls = parts[-2]
                if "(" not in cls:
                    self.class_methods.setdefault(cls, {}).setdefault(
                        parts[-1], set()).add(qual)
        return n

    # -- extraction ---------------------------------------------------------

    def add_file(self, rel: str, text: str) -> None:
        self.files.append(rel)
        stripped = lint.strip_comments_and_literals(text)
        stripped_lines = stripped.split("\n")
        raw_lines = text.split("\n")
        spans = lint.function_spans(stripped)
        spans = spans + _macro_spans(stripped_lines)
        # Innermost span per line (later/inner spans overwrite).
        line_span: list[int | None] = [None] * len(stripped_lines)
        for idx, span in enumerate(spans):
            for ln in range(span.start_line,
                            min(span.end_line, len(stripped_lines)) + 1):
                line_span[ln - 1] = idx
        # Member variable bindings (class scope, `name_` convention) are
        # collected globally: the trailing underscore keeps them unambiguous
        # enough across the tree.
        for line in stripped_lines:
            m = _MEMBER_BIND_RE.match(line)
            if m:
                self.member_types.setdefault(
                    m.group(2), _norm(m.group(1)).split("::")[-1])
        # Register nodes.
        span_nodes: list[Node] = []
        for span in spans:
            n = self.node(span.qual)
            if rel not in n.files:
                n.files.append(rel)
            n.is_macro = n.is_macro or span.qual.startswith("UJOIN_")
            span_nodes.append(n)
        # Unordered container names declared anywhere in this file feed the
        # unordered_iter evidence patterns.
        unordered_names = set(
            lint._UNORDERED_NAME_RE.findall("\n".join(stripped_lines)))
        # Effect evidence + raw call sites per line.
        calls: dict[int, list[tuple[str, str, str]]] = {}
        for i, line in enumerate(stripped_lines, 1):
            idx = line_span[i - 1]
            if idx is None:
                continue
            node = span_nodes[idx]
            for effect, what in _line_effects(line, unordered_names):
                node.evidence.append(Evidence(effect, rel, i, what))
            sites = calls.setdefault(idx, [])
            for m in _CALL_RE.finditer(line):
                name = _norm(m.group(1))
                if name.split("::")[-1] in _CALL_KEYWORDS:
                    continue
                sites.append(("free", name, i, False))
            for m in _MEMBER_CALL_RE.finditer(line):
                obj, meth = m.group(1), m.group(2)
                if meth in _CALL_KEYWORDS:
                    continue
                base = re.split(r"\.|->", obj.replace("()", ""))[-1]
                # Inline string_view temporaries (`string_view(x).substr(...)`)
                # leave no binding; the line text is the only type signal.
                sv_hint = "string_view" in line[:m.start(2)]
                sites.append(("member", f"{base}.{meth}", i, sv_hint))
            for m in _DECL_BIND_RE.finditer(line):
                # A pointer/reference declaration binds the name for member
                # resolution but constructs nothing.
                if "*" not in m.group(2) and "&" not in m.group(2):
                    sites.append(("ctor", _norm(m.group(1)), i, False))
        # Local variable bindings per span (span body text).
        span_binds: dict[int, dict[str, str]] = {}
        for idx, span in enumerate(spans):
            binds: dict[str, str] = {}
            # span.start_line is the `{` line; the signature (and its
            # parameter types) may run over the preceding lines.  Backscan a
            # bounded window, stopping at the previous statement boundary.
            sig_start = span.start_line - 1
            while (sig_start > 1 and span.start_line - sig_start < 8 and
                   not re.search(r"[;}]\s*$|^\s*#",
                                 stripped_lines[sig_start - 2])):
                sig_start -= 1
            for ln in range(sig_start - 1,
                            min(span.end_line, len(stripped_lines))):
                for m in _DECL_BIND_RE.finditer(stripped_lines[ln]):
                    binds[m.group(3)] = _norm(m.group(1)).split("::")[-1]
                for m in _STD_BIND_RE.finditer(stripped_lines[ln]):
                    binds[m.group(2)] = m.group(1)
            span_binds[idx] = binds
        self._pending_calls = getattr(self, "_pending_calls", [])
        for idx, sites in calls.items():
            for kind, name, line_no, sv_hint in sites:
                self._pending_calls.append(
                    (spans[idx].qual, kind, name, rel, line_no,
                     span_binds.get(idx, {}), sv_hint))
        # Annotations attach to the innermost span containing the comment
        # line, else to the next span that starts after it.
        for i, raw in enumerate(raw_lines, 1):
            for m in _ANNOT_RE.finditer(raw):
                kind = m.group(1)
                args = [a.strip() for a in m.group(2).split(",") if a.strip()]
                target = self._annotation_target(spans, i)
                for arg in args:
                    ann = Annotation(kind, _norm(arg), rel, i)
                    self.annotations.append(ann)
                    if target is None:
                        continue  # dangling: reported stale later
                    node = self.node(target.qual)
                    if kind == "declares":
                        node.declares.setdefault(arg, ann)
                    elif kind == "assumes":
                        node.assumes.setdefault(arg, ann)
                    else:  # calls
                        self.call_edges_from_annotations.append(
                            (node.qual, ann.arg, ann))

    @staticmethod
    def _annotation_target(spans, line: int):
        inner = None
        for span in spans:
            if span.start_line <= line <= span.end_line:
                if inner is None or span.start_line >= inner.start_line:
                    inner = span
        if inner is not None:
            return inner
        after = [s for s in spans if s.start_line > line]
        return min(after, key=lambda s: s.start_line) if after else None

    # -- call resolution (after all files are loaded) -----------------------

    def resolve_calls(self) -> None:
        for caller, kind, name, rel, line_no, binds, sv_hint in \
                getattr(self, "_pending_calls", []):
            caller = _norm(caller)
            targets = self._resolve(caller, kind, name, binds)
            for target in targets:
                if target != caller:
                    self.nodes[caller].callees.add(target)
            if not targets and kind != "ctor":
                last = name.split("::")[-1].split(".")[-1]
                hit = BUILTIN_CALL_EFFECTS.get(last)
                if hit and last == "substr":
                    base = name.split(".")[0]
                    if sv_hint or binds.get(base) == "string_view":
                        hit = None  # string_view::substr does not allocate
                if hit:
                    self.nodes[caller].evidence.append(
                        Evidence(hit[0], rel, line_no, hit[1]))
        for caller, target, ann in self.call_edges_from_annotations:
            resolved = self._suffix_match(target)
            if resolved:
                ann.used = True
                for t in resolved:
                    self.nodes[caller].callees.add(t)
        # Lambdas are invoked by their definer (directly or passed down):
        # add the implicit definition edge.
        for qual in list(self.nodes):
            if "(lambda@" in qual:
                parent = qual.rsplit("::(lambda@", 1)[0]
                if parent in self.nodes:
                    self.nodes[parent].callees.add(qual)
        # Builtin member-call effects (e.g. cv.wait) that never resolved are
        # already covered by the direct-evidence patterns.

    def _resolve(self, caller: str, kind: str, name: str,
                 binds: dict[str, str]) -> set[str]:
        if kind == "member":
            base, meth = name.split(".", 1)
            btype = binds.get(base) or self.member_types.get(base)
            if btype and btype in self.class_methods:
                hits = self.class_methods[btype].get(meth)
                if hits:
                    return set(hits)
            if btype:
                return set()  # bound to a non-repo type (std:: etc.)
            hits = set()
            for cls, methods in self.class_methods.items():
                hits |= methods.get(meth, set())
            return hits
        if kind == "ctor":
            last = name.split("::")[-1]
            return self._suffix_match(f"{name}::{last}") or \
                self._suffix_match(f"{last}::{last}")
        # free / qualified call
        hits = self._suffix_match(name)
        if hits:
            return hits
        # Unqualified constructor-style temporary `Type(...)`.
        last = name.split("::")[-1]
        if last[:1].isupper():
            hits = self._suffix_match(f"{name}::{last}")
            if hits:
                return hits
        # Same-class unqualified member call.
        if "::" not in name:
            caller_parts = caller.split("::")
            if len(caller_parts) >= 2:
                cls = caller_parts[-2]
                hits = self.class_methods.get(cls, {}).get(name)
                if hits:
                    return set(hits)
        return set()

    def _suffix_match(self, name: str) -> set[str]:
        parts = name.split("::")
        candidates = self.by_last.get(parts[-1], set())
        out = set()
        for qual in candidates:
            qparts = qual.split("::")
            if qparts[-len(parts):] == parts:
                out.add(qual)
        return out

    # -- propagation --------------------------------------------------------

    def closures(self) -> dict[str, set[str]]:
        """Unmasked transitive effect closure per node (direct + declared
        effects of the node and everything reachable from it)."""
        closure = {q: set(n.direct_effects()) for q, n in self.nodes.items()}
        changed = True
        while changed:
            changed = False
            for q, n in self.nodes.items():
                acc = closure[q]
                before = len(acc)
                for callee in n.callees:
                    acc |= closure.get(callee, set())
                if len(acc) != before:
                    changed = True
        return closure


def _macro_spans(stripped_lines: list[str]) -> list:
    """Function-like `#define UJOIN_*(...)` macros become pseudo-function
    spans, so the obs macro layer appears in the call graph: call sites
    UJOIN_OBS_COUNTER(...) resolve to the macro node, and the macro body's
    direct Recorder mutation is attributed to it (not to file scope)."""
    spans = []
    i = 0
    while i < len(stripped_lines):
        m = _MACRO_DEF_RE.match(stripped_lines[i])
        if m:
            start = i + 1
            end = i
            while end < len(stripped_lines) - 1 and \
                    stripped_lines[end].rstrip().endswith("\\"):
                end += 1
            spans.append(lint.FunctionSpan(
                m.group(1), m.group(1), start, end + 1, None, False))
            i = end + 1
        else:
            i += 1
    return spans


# ---------------------------------------------------------------------------
# Contracts
# ---------------------------------------------------------------------------
#
# Roots, allow_nodes, and allow_subtrees are function-name suffixes matched
# at `::` boundaries.  allow_nodes accepts the function's *own* effects but
# still descends into its callees; allow_subtrees stops the traversal (the
# subtree is vouched for).  Growing either list is a reviewed change to
# this file — that is the point: a new allocation two layers below a query
# root fails CI until it is whitelisted or annotated.

CONTRACTS = [
    {
        "name": "probe-path",
        "doc": "query roots reach no alloc/lock/io/block outside the "
               "frozen build/workspace-growth whitelist",
        "roots": [
            "InvertedSegmentIndex::Query",
            "LengthBucketIndex::QueryCandidates",
            "SimilaritySearcher::Search",
            "SimilaritySearcher::SearchMany",
            "ujoin::SimilaritySelfJoin",
        ],
        "forbid": ["alloc", "lock", "io", "block"],
        "allow_nodes": [
            # Driver-level setup and result emission: vectors sized to the
            # batch/wave before the steady-state loop, hit emission after.
            "ujoin::SimilaritySelfJoin",
            "SimilaritySearcher::Search",
            "SimilaritySearcher::SearchTopK",
            "SimilaritySearcher::SearchMany",
            "SimilaritySearcher::SearchImpl",
            "SimilaritySearcher::Explain",
            # Worker fan-out joins its pool; bounded by the wave's work.
            "ujoin::RunWaveTasks",
            # Workspace growth: allocates until warm, then reuses.
            "FlatProbeSets::Reset",
            "ujoin::BuildProbeSet",
        ],
        "allow_subtrees": [
            # Pair verification builds per-pair tries by design; its own
            # budget/deadline limits bound the work (see verify/).
            "internal::PairVerifier::PairVerifier",
            "internal::PairVerifier::Decide",
            "internal::PairVerifier::Probability",
            # The self-join root spans both phases; phase 1 builds the index
            # (postings, partitions, world enumeration all allocate).
            "InvertedSegmentIndex::Insert",
            # Batch-boundary log flush: SearchMany flushes the query log
            # once per batch, outside the per-query steady state.
            "obs::QueryLog::Write",
            # Error construction allocates the message string; error paths
            # are not steady state.
            "Status::InvalidArgument",
            "Status::IoError",
            "Status::NotFound",
            "Status::Internal",
            "Status::ResourceExhausted",
        ],
    },
    {
        "name": "serialize-deterministic",
        "doc": "serialized bytes are a pure function of content: no "
               "unordered iteration, no clock reads, no unseeded rng",
        "roots": [
            "InvertedSegmentIndex::Serialize",
            "LengthBucketIndex::Serialize",
            "SimilaritySearcher::Save",
            "obs::DeterministicContentJson",
            "obs::RenderQueryLogLine",
            "obs::RenderSlowQueriesPage",
            "obs::RenderPrometheusText",
            "serve::RenderHitsResponse",
            "serve::RenderErrorResponse",
        ],
        "forbid": ["unordered_iter", "wall_clock", "rng"],
        "allow_nodes": [],
        "allow_subtrees": [],
    },
    {
        "name": "flight-path",
        "doc": "flight-event record and dump paths reach no alloc/lock/io "
               "(crash-safe: the only I/O is the blessed pre-opened-fd "
               "sink write)",
        "roots": [
            "FlightRecorder::RecordEvent",
            "FlightRecorder::DumpToFd",
        ],
        "forbid": ["alloc", "lock", "io"],
        "allow_nodes": [],
        "allow_subtrees": [],
    },
    {
        "name": "serve-steady",
        "doc": "request handling and the aggregate fold/snapshot path "
               "reach no unbounded blocking call",
        "roots": [
            "SearchServer::HandleConnection",
            "SearchServer::FoldQuery",
            "SearchServer::FinishBatch",
            "SearchServer::PushSnapshotLocked",
            "SearchServer::QueryMetrics",
            "SearchServer::ServeMetrics",
            "SearchServer::Stats",
            "SearchServer::SlowQueriesJson",
        ],
        "forbid": ["block"],
        "allow_nodes": [],
        "allow_subtrees": [],
    },
]

# obs-isolation: direct Recorder mutation is confined to src/obs/ (every
# other instrumentation site goes through the UJOIN_OBS_* macro layer, which
# lives there).  Checked as a scope contract over direct evidence — the
# transitive closure through the macro nodes is masked at src/obs/*.
OBS_ISOLATION = {
    "name": "obs-isolation",
    "doc": "obs_record only inside src/obs/ (reached via UJOIN_OBS_*)",
    "effect": "obs_record",
    "allow_path_globs": ["src/obs/*"],
}


def _suffix_set(graph: Graph, names: list[str]) -> dict[str, set[str]]:
    """Maps each configured suffix to the node quals it resolves to."""
    return {name: graph._suffix_match(name) for name in names}


@dataclass
class ContractViolation:
    contract: str
    root: str
    effect: str
    function: str
    path: list
    evidence: Evidence


@dataclass
class StaleFinding:
    file: str
    line: int
    kind: str
    message: str


class Analysis:
    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self.closure = graph.closures()
        self.violations: list[ContractViolation] = []
        self.stale: list[StaleFinding] = []
        self.contract_info: list[dict] = []
        self._used_allow: set[tuple[str, str]] = set()

    # -- contract traversal -------------------------------------------------

    def run(self, require_roots: bool = False) -> None:
        for contract in CONTRACTS:
            self._run_contract(contract, require_roots)
        self._run_obs_isolation()
        self._collect_stale(require_roots)
        self.violations.sort(key=lambda v: (
            v.contract, v.root, v.effect, v.function))
        self.stale.sort(key=lambda s: (s.file, s.line, s.kind, s.message))

    def _run_contract(self, contract: dict, require_roots: bool) -> None:
        g = self.graph
        roots = _suffix_set(g, contract["roots"])
        allow_nodes = _suffix_set(g, contract["allow_nodes"])
        allow_subtrees = _suffix_set(g, contract["allow_subtrees"])
        allow_node_quals = {q for s in allow_nodes.values() for q in s}
        allow_subtree_quals = {q for s in allow_subtrees.values() for q in s}
        resolved, missing = [], []
        for name in contract["roots"]:
            (resolved if roots[name] else missing).append(name)
        if require_roots:
            for name in missing:
                self.stale.append(StaleFinding(
                    "tools/ujoin_effects.py", 0, "missing-root",
                    f"contract '{contract['name']}' root '{name}' matches "
                    f"no function in the tree"))
        for entry, quals in {**allow_nodes, **allow_subtrees}.items():
            if require_roots and not quals:
                self.stale.append(StaleFinding(
                    "tools/ujoin_effects.py", 0, "stale-whitelist",
                    f"contract '{contract['name']}' whitelist entry "
                    f"'{entry}' matches no function in the tree"))
        for effect in contract["forbid"]:
            for root_name in resolved:
                for root_qual in sorted(roots[root_name]):
                    self._traverse(contract["name"], root_qual, effect,
                                   allow_node_quals, allow_subtree_quals)
        self.contract_info.append({
            "name": contract["name"],
            "doc": contract["doc"],
            "forbidden": list(contract["forbid"]),
            "roots": sorted(q for s in roots.values() for q in s),
            "roots_missing": sorted(missing),
        })

    def _traverse(self, contract: str, root: str, effect: str,
                  allow_nodes: set[str], allow_subtrees: set[str]) -> None:
        g = self.graph
        parent: dict[str, str | None] = {root: None}
        queue = [root]
        while queue:
            qual = queue.pop(0)
            node = g.nodes.get(qual)
            if node is None:
                continue
            # Subtree masks: analyzer whitelist or an assumes() annotation.
            if qual != root:
                if qual in allow_subtrees:
                    if effect in self.closure.get(qual, set()):
                        self._used_allow.add((contract, qual))
                    continue
                ann = node.assumes.get(effect)
                if ann is not None:
                    if effect in self.closure.get(qual, set()):
                        ann.used = True
                    continue
            # Node-level check of the function's own effects.
            if effect in node.direct_effects():
                ann = node.declares.get(effect)
                if ann is not None:
                    ann.used = True
                elif qual in allow_nodes:
                    self._used_allow.add((contract, qual))
                else:
                    path = []
                    cur: str | None = qual
                    while cur is not None:
                        path.append(cur)
                        cur = parent[cur]
                    path.reverse()
                    self.violations.append(ContractViolation(
                        contract, root, effect, qual, path,
                        node.first_evidence(effect)))
            for callee in sorted(node.callees):
                if callee not in parent:
                    parent[callee] = qual
                    queue.append(callee)

    def _run_obs_isolation(self) -> None:
        g = self.graph
        effect = OBS_ISOLATION["effect"]
        globs = OBS_ISOLATION["allow_path_globs"]
        for qual in sorted(g.nodes):
            node = g.nodes[qual]
            if node.is_macro:
                continue
            if node.files and all(lint._matches(f, globs)
                                  for f in node.files):
                continue
            for ev in node.evidence:
                if ev.effect != effect:
                    continue
                if lint._matches(ev.file, globs):
                    continue
                ann = node.declares.get(effect)
                if ann is not None:
                    ann.used = True
                    continue
                self.violations.append(ContractViolation(
                    OBS_ISOLATION["name"], qual, effect, qual, [qual], ev))
        self.contract_info.append({
            "name": OBS_ISOLATION["name"],
            "doc": OBS_ISOLATION["doc"],
            "forbidden": [effect],
            "roots": ["<every function outside src/obs/>"],
            "roots_missing": [],
        })

    # -- staleness ----------------------------------------------------------

    def _collect_stale(self, require_roots: bool) -> None:
        for ann in self.graph.annotations:
            if ann.used:
                continue
            if ann.kind == "calls":
                self.stale.append(StaleFinding(
                    ann.file, ann.line, "stale-annotation",
                    f"`ujoin-effect: calls({ann.arg})` matches no function "
                    f"in the tree; fix the name or delete the annotation"))
            elif ann.kind in ("declares", "assumes") and \
                    ann.arg not in EFFECTS:
                self.stale.append(StaleFinding(
                    ann.file, ann.line, "stale-annotation",
                    f"`ujoin-effect: {ann.kind}({ann.arg})` names an "
                    f"unknown effect (known: {', '.join(EFFECTS)})"))
            else:
                self.stale.append(StaleFinding(
                    ann.file, ann.line, "stale-annotation",
                    f"`ujoin-effect: {ann.kind}({ann.arg})` changes no "
                    f"contract's outcome (no traversal consults it); the "
                    f"code it excused is gone — delete the annotation"))

    # -- report -------------------------------------------------------------

    def report(self) -> dict:
        g = self.graph
        edges = sum(len(n.callees) for n in g.nodes.values())
        return {
            "schema": SCHEMA_NAME,
            "version": SCHEMA_VERSION,
            "files": len(g.files),
            "functions": len(g.nodes),
            "edges": edges,
            "contracts": [
                {
                    **info,
                    "violations": [
                        {
                            "root": v.root,
                            "effect": v.effect,
                            "function": v.function,
                            "path": v.path,
                            "evidence": {
                                "file": v.evidence.file,
                                "line": v.evidence.line,
                                "what": v.evidence.what,
                            } if v.evidence else None,
                        }
                        for v in self.violations
                        if v.contract == info["name"]
                    ],
                }
                for info in self.contract_info
            ],
            "stale": [
                {"file": s.file, "line": s.line, "kind": s.kind,
                 "message": s.message}
                for s in self.stale
            ],
            "summary": {
                "violations": len(self.violations),
                "stale": len(self.stale),
            },
        }


# ---------------------------------------------------------------------------
# Drivers
# ---------------------------------------------------------------------------


def build_graph(files: dict[str, str]) -> Graph:
    graph = Graph()
    for rel in sorted(files):
        graph.add_file(rel, files[rel])
    graph.resolve_calls()
    return graph


def analyze(files: dict[str, str], require_roots: bool = False) -> Analysis:
    analysis = Analysis(build_graph(files))
    analysis.run(require_roots)
    return analysis


def repo_files(root: str) -> dict[str, str]:
    out: dict[str, str] = {}
    for dirpath, _dirs, filenames in os.walk(root):
        rel_dir = os.path.relpath(dirpath, root)
        for fname in sorted(filenames):
            rel = os.path.normpath(os.path.join(rel_dir, fname))
            rel = rel.replace(os.sep, "/")
            if not any(fnmatch.fnmatch(rel, g) for g in GRAPH_GLOBS):
                continue
            if lint._matches(rel, EXCLUDE_GLOBS):
                continue
            with open(os.path.join(root, rel), encoding="utf-8",
                      errors="replace") as f:
                out[rel] = f.read()
    return out


def render_report(report: dict) -> str:
    return json.dumps(report, indent=2) + "\n"


def print_findings(analysis: Analysis) -> None:
    for v in analysis.violations:
        ev = v.evidence
        where = f"{ev.file}:{ev.line}" if ev else "?"
        print(f"{where}: [{v.contract}] root {v.root} reaches "
              f"'{v.effect}' ({ev.what if ev else '?'}) in {v.function}")
        print(f"    witness: {' -> '.join(v.path)}")
    for s in analysis.stale:
        print(f"{s.file}:{s.line}: [{s.kind}] {s.message}")


# ---------------------------------------------------------------------------
# Self-test: embedded graphs + fixture trees
# ---------------------------------------------------------------------------

_EMBEDDED_BAD = {
    # Multi-hop violation: Query -> Helper -> Deep allocates; the witness
    # must spell out the full chain.
    "src/index/segment_index.cc": """
namespace ujoin {
void Deep() { int* p = new int[4]; (void)p; }
void Helper() { Deep(); }
class InvertedSegmentIndex {
 public:
  void Query() { Helper(); }
};
}  // namespace ujoin
""",
    # Direct Recorder mutation outside src/obs: obs-isolation violation.
    "src/join/search.cc": """
namespace ujoin {
class SimilaritySearcher {
 public:
  void Search(void* rec) { recorder_->AddCounter(1, 2); }
 private:
  void* recorder_;
};
}  // namespace ujoin
""",
    # Stale assumes: nothing below carries io.
    "src/util/serde.cc": """
namespace ujoin {
// ujoin-effect: assumes(io)
void CleanHelper() { int x = 0; (void)x; }
}  // namespace ujoin
""",
}

_EMBEDDED_CLEAN = {
    "src/index/segment_index.cc": """
namespace ujoin {
// ujoin-effect: declares(alloc) -- external arena growth
void Deep();
void Deep2() { Helper2(); }
// ujoin-effect: declares(alloc) -- grows the workspace until warm
void Helper() { int* p = new int[4]; (void)p; }
class InvertedSegmentIndex {
 public:
  void Query() { Helper(); }
};
}  // namespace ujoin
""",
}

FIXTURE_DIRECTIVE_RE = re.compile(r"ujoin-effects-fixture:\s*as=(\S+)")


def _load_fixture_tree(dirpath: str) -> dict[str, str]:
    files: dict[str, str] = {}
    for fname in sorted(os.listdir(dirpath)):
        if not fname.endswith((".cc", ".h")):
            continue
        with open(os.path.join(dirpath, fname), encoding="utf-8") as f:
            text = f.read()
        m = FIXTURE_DIRECTIVE_RE.search(text)
        if not m:
            raise ValueError(f"{fname}: missing ujoin-effects-fixture "
                             f"directive")
        files[m.group(1)] = text
    return files


def run_self_test(root: str) -> int:
    failures = 0

    def check(name: str, ok: bool, detail: str = "") -> None:
        nonlocal failures
        if ok:
            print(f"ok   {name}")
        else:
            failures += 1
            print(f"FAIL {name}{': ' + detail if detail else ''}")

    # --- embedded graphs ---------------------------------------------------
    bad = analyze(_EMBEDDED_BAD)
    probe = [v for v in bad.violations if v.contract == "probe-path"]
    check("embedded: multi-hop alloc violation found",
          len(probe) == 1 and probe[0].effect == "alloc",
          f"got {[(v.contract, v.effect) for v in bad.violations]}")
    check("embedded: witness spells the full chain",
          bool(probe) and len(probe[0].path) >= 3 and
          probe[0].path[0].endswith("Query") and
          probe[0].path[-1].endswith("Deep"),
          f"path={probe[0].path if probe else None}")
    check("embedded: obs-isolation violation found",
          any(v.contract == "obs-isolation" for v in bad.violations))
    check("embedded: stale assumes reported",
          any(s.kind == "stale-annotation" and "assumes(io)" in s.message
              for s in bad.stale))
    clean = analyze(_EMBEDDED_CLEAN)
    check("embedded: declares() blesses the chain",
          not [v for v in clean.violations if v.contract == "probe-path"],
          f"got {[(v.function, v.effect) for v in clean.violations]}")
    check("embedded: unused declares is stale",
          any("declares(alloc)" in s.message and s.line == 3
              for s in clean.stale),
          f"stale={[(s.line, s.message) for s in clean.stale]}")
    # Cycle tolerance: mutual recursion must terminate and propagate.
    cyc = analyze({"src/index/segment_index.cc": """
namespace ujoin {
void A();
void B() { A(); }
void A() { B(); int* p = new int; (void)p; }
class InvertedSegmentIndex { public: void Query() { A(); } };
}  // namespace ujoin
"""})
    check("embedded: cycles terminate and propagate",
          any(v.function.endswith("::A") for v in cyc.violations))

    # --- fixture trees -----------------------------------------------------
    fixture_root = os.path.join(root, "tests", "lint", "fixtures", "effects")
    if not os.path.isdir(fixture_root):
        print(f"FAIL: no fixture directory at {fixture_root}")
        return 1
    saw_multi_hop = False
    for case in sorted(os.listdir(fixture_root)):
        casedir = os.path.join(fixture_root, case)
        if not os.path.isdir(casedir):
            continue
        expect_path = os.path.join(casedir, "expect.json")
        with open(expect_path, encoding="utf-8") as f:
            expect = json.load(f)
        try:
            files = _load_fixture_tree(casedir)
        except ValueError as e:
            check(f"fixture {case}", False, str(e))
            continue
        analysis = analyze(files)
        report = analysis.report()
        ok = (report["summary"]["violations"] == expect["violations"] and
              report["summary"]["stale"] == expect["stale"])
        detail = (f"expected {expect['violations']} violation(s) / "
                  f"{expect['stale']} stale, got "
                  f"{report['summary']['violations']} / "
                  f"{report['summary']['stale']}")
        if ok and "witness" in expect:
            paths = [v.path for v in analysis.violations]
            ok = expect["witness"] in paths
            detail = f"witness {expect['witness']} not in {paths}"
        if ok and expect.get("golden"):
            golden_path = os.path.join(casedir, "golden.json")
            rendered = render_report(report)
            with open(golden_path, encoding="utf-8") as f:
                golden = f.read()
            ok = rendered == golden
            detail = f"report does not match {golden_path} byte-for-byte"
        for v in analysis.violations:
            if len(v.path) >= 3:
                saw_multi_hop = True
        check(f"fixture {case}", ok, detail)
    check("fixtures: at least one multi-hop witness", saw_multi_hop)
    print(f"self-test: {failures} failure(s)")
    return 1 if failures else 0


# ---------------------------------------------------------------------------
# main
# ---------------------------------------------------------------------------


def main() -> int:
    parser = argparse.ArgumentParser(
        prog="ujoin_effects.py",
        description="whole-repo transitive effect analyzer (see module "
                    "docstring)")
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this script)")
    parser.add_argument("--report", default=None, metavar="FILE",
                        help="write the ujoin.effects JSON report here")
    parser.add_argument("--require-roots", action="store_true",
                        help="fail when a contract root or whitelist entry "
                             "matches nothing (the repo gate sets this)")
    parser.add_argument("--self-test", action="store_true",
                        help="run embedded graphs + fixture trees and exit")
    parser.add_argument("--list-contracts", action="store_true")
    args = parser.parse_args()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if args.list_contracts:
        for contract in CONTRACTS + [OBS_ISOLATION]:
            print(f"{contract['name']}: {contract['doc']}")
        print("stale-annotation: every ujoin-effect annotation is "
              "load-bearing")
        return 0
    if args.self_test:
        return run_self_test(root)

    files = repo_files(root)
    if not files:
        print(f"ujoin_effects: no source files under {root}",
              file=sys.stderr)
        return 2
    analysis = analyze(files, require_roots=args.require_roots)
    report = analysis.report()
    if args.report:
        with open(args.report, "w", encoding="utf-8") as f:
            f.write(render_report(report))
    print_findings(analysis)
    n_viol = report["summary"]["violations"]
    n_stale = report["summary"]["stale"]
    if n_viol or n_stale:
        print(f"ujoin_effects: {n_viol} violation(s), {n_stale} stale "
              f"finding(s) across {report['functions']} function(s)")
        return 1
    print(f"ujoin_effects: {report['files']} file(s), "
          f"{report['functions']} function(s), {report['edges']} edge(s): "
          f"all contracts hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
