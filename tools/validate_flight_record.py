#!/usr/bin/env python3
"""validate_flight_record: schema validator for ujoin.flight_record files.

`ujoin_cli join|search|serve --flight-record[=FILE]` dumps the black-box
flight recorder (src/obs/flight_recorder.h) — at orderly exit, from the
SIGSEGV/SIGABRT/SIGBUS crash handler, and on watchdog stall captures.  The
dump is rendered by an async-signal-safe hand-rolled serializer (no stdio,
no malloc), so this tool re-validates the bytes from the outside with no
ujoin code involved: CI runs it against records the test suite and a forced
crash produce, so a silent drift in the C++ renderer fails the gate even if
every C++ test still passes.

Checks, per document:

  * a single JSON object with the exact top-level key order (key order is
    part of the schema: redacted dumps are byte-comparable);
  * schema == "ujoin.flight_record" and schema_version == 1;
  * reason is "manual", "crash", or "watchdog"; exactly the "crash" reason
    carries a non-zero delivering signal;
  * build holds a non-empty compiler string and a known simd_isa;
  * the registry lists every event kind in registry order with
    non-negative totals; dropped_events is non-negative;
  * threads_registered matches the per-thread list, slots are unique,
    ascending, and within the recorder's capacity;
  * per thread: recorded is non-negative, at most kEventsPerThread events
    are present, each with the exact event key order, a known kind, and
    strictly increasing seq within (recorded - capacity, recorded] — the
    ring's visible window.  A dump taken under live writers may skip torn
    events, so gaps are legal; regressions are not.

Wall-clock fields (ts_ns, os_tid) are checked for type and sign only,
never for value: they are determinism tier 1, and redacted dumps
(redact_timing) zero them.

Usage:
  tools/validate_flight_record.py FILE     validate a dump ('-' = stdin)
  tools/validate_flight_record.py --self-test

Exit status: 0 valid, 1 invalid (or self-test failure), 2 usage.
"""

from __future__ import annotations

import json
import sys

TOP_LEVEL_KEYS = [
    "schema", "schema_version", "reason", "signal", "build",
    "dropped_events", "threads_registered", "registry", "threads",
]
BUILD_KEYS = ["compiler", "simd_isa"]
THREAD_KEYS = ["slot", "os_tid", "recorded", "events"]
EVENT_KEYS = ["seq", "ts_ns", "kind", "a", "b"]

# FlightEvent registry order (src/obs/flight_recorder.cc
# kFlightEventNames); the dump spells the registry in exactly this order.
EVENT_KINDS = [
    "wave_start", "wave_end", "probe_begin", "funnel_stage", "verify_begin",
    "query_begin", "query_end", "batch_boundary", "conn_open", "conn_close",
    "conn_idle_close", "serve_query", "stall_captured",
]
REASONS = ("manual", "crash", "watchdog")
SIMD_ISAS = ("sse2", "avx2", "neon", "scalar")

MAX_THREAD_SLOTS = 32    # FlightRecorder::kMaxThreadSlots
EVENTS_PER_THREAD = 128  # FlightRecorder::kEventsPerThread


def _int_field(obj: dict, key: str, errors: list[str],
               where: str = "") -> int:
    value = obj.get(key)
    # bool is an int subclass in Python; reject it explicitly.
    if not isinstance(value, int) or isinstance(value, bool):
        errors.append(f"{where}{key}: expected integer, got {value!r}")
        return 0
    return value


def _validate_thread(thread, index: int, errors: list[str]) -> int:
    """Validates one per-thread entry; returns its slot (or -1)."""
    where = f"threads[{index}]"
    if not isinstance(thread, dict) or list(thread.keys()) != THREAD_KEYS:
        errors.append(f"{where}: expected keys {THREAD_KEYS}, got "
                      f"{list(thread.keys()) if isinstance(thread, dict) else thread!r}")
        return -1
    slot = _int_field(thread, "slot", errors, where=f"{where}.")
    if not 0 <= slot < MAX_THREAD_SLOTS:
        errors.append(f"{where}.slot out of range [0, {MAX_THREAD_SLOTS}): "
                      f"{slot}")
    if _int_field(thread, "os_tid", errors, where=f"{where}.") < 0:
        errors.append(f"{where}.os_tid is negative: {thread['os_tid']}")
    recorded = _int_field(thread, "recorded", errors, where=f"{where}.")
    if recorded < 0:
        errors.append(f"{where}.recorded is negative: {recorded}")

    events = thread["events"]
    if not isinstance(events, list):
        errors.append(f"{where}.events: expected list, got {events!r}")
        return slot
    if len(events) > EVENTS_PER_THREAD:
        errors.append(f"{where}.events: {len(events)} events exceed the "
                      f"ring capacity {EVENTS_PER_THREAD}")
    if len(events) > recorded:
        errors.append(f"{where}.events: {len(events)} events but only "
                      f"{recorded} recorded")
    window_lo = max(0, recorded - EVENTS_PER_THREAD)
    prev_seq = window_lo  # seq is 1-based; the window is (lo, recorded]
    prev_ts = -1
    for j, event in enumerate(events):
        ewhere = f"{where}.events[{j}]"
        if not isinstance(event, dict) or list(event.keys()) != EVENT_KEYS:
            errors.append(f"{ewhere}: expected keys {EVENT_KEYS}")
            continue
        seq = _int_field(event, "seq", errors, where=f"{ewhere}.")
        if seq <= prev_seq:
            errors.append(f"{ewhere}.seq not strictly increasing within "
                          f"the ring window: {seq} after {prev_seq}")
        if seq > recorded:
            errors.append(f"{ewhere}.seq {seq} exceeds recorded {recorded}")
        prev_seq = max(prev_seq, seq)
        ts = _int_field(event, "ts_ns", errors, where=f"{ewhere}.")
        if ts < 0:
            errors.append(f"{ewhere}.ts_ns is negative: {ts}")
        if ts < prev_ts:
            errors.append(f"{ewhere}.ts_ns regresses: {ts} after {prev_ts}")
        prev_ts = max(prev_ts, ts)
        if event["kind"] not in EVENT_KINDS:
            errors.append(f"{ewhere}.kind unknown: {event['kind']!r}")
        _int_field(event, "a", errors, where=f"{ewhere}.")
        _int_field(event, "b", errors, where=f"{ewhere}.")
    return slot


def validate_document(text: str) -> list[str]:
    """Validates one flight-record document; returns error strings."""
    errors: list[str] = []
    try:
        rec = json.loads(text)
    except json.JSONDecodeError as e:
        return [f"not valid JSON: {e}"]
    if not isinstance(rec, dict):
        return ["document is not a JSON object"]
    if list(rec.keys()) != TOP_LEVEL_KEYS:
        return [f"top-level key order mismatch: got {list(rec.keys())}"]

    if rec["schema"] != "ujoin.flight_record":
        errors.append(f"schema: expected 'ujoin.flight_record', "
                      f"got {rec['schema']!r}")
    if rec["schema_version"] != 1:
        errors.append(f"schema_version: expected 1, "
                      f"got {rec['schema_version']!r}")

    reason = rec["reason"]
    signal = _int_field(rec, "signal", errors)
    if reason not in REASONS:
        errors.append(f"reason: expected one of {REASONS}, got {reason!r}")
    elif reason == "crash" and signal <= 0:
        errors.append(f"crash record without a delivering signal: {signal}")
    elif reason != "crash" and signal != 0:
        errors.append(f"non-crash record carries signal {signal}")

    build = rec["build"]
    if not isinstance(build, dict) or list(build.keys()) != BUILD_KEYS:
        errors.append(f"build: expected keys {BUILD_KEYS}")
    else:
        if not isinstance(build["compiler"], str) or not build["compiler"]:
            errors.append(f"build.compiler: expected non-empty string, "
                          f"got {build['compiler']!r}")
        if build["simd_isa"] not in SIMD_ISAS:
            errors.append(f"build.simd_isa: expected one of {SIMD_ISAS}, "
                          f"got {build['simd_isa']!r}")

    if _int_field(rec, "dropped_events", errors) < 0:
        errors.append(f"dropped_events is negative: {rec['dropped_events']}")

    registry = rec["registry"]
    if not isinstance(registry, dict) or list(registry.keys()) != EVENT_KINDS:
        errors.append(f"registry key order mismatch: got "
                      f"{list(registry.keys()) if isinstance(registry, dict) else registry!r}")
    else:
        for kind in EVENT_KINDS:
            if _int_field(registry, kind, errors, where="registry.") < 0:
                errors.append(f"registry.{kind} is negative: "
                              f"{registry[kind]}")

    threads = rec["threads"]
    threads_registered = _int_field(rec, "threads_registered", errors)
    if not isinstance(threads, list):
        errors.append(f"threads: expected list, got {threads!r}")
        return errors
    if len(threads) != min(threads_registered, MAX_THREAD_SLOTS):
        errors.append(f"threads: {len(threads)} entries for "
                      f"threads_registered {threads_registered}")
    prev_slot = -1
    for i, thread in enumerate(threads):
        slot = _validate_thread(thread, i, errors)
        if slot <= prev_slot:
            errors.append(f"threads[{i}].slot not strictly increasing: "
                          f"{slot} after {prev_slot}")
        prev_slot = max(prev_slot, slot)
    return errors


def validate_file(text: str, label: str) -> int:
    """Validates one document; prints errors; returns an exit status."""
    if not text.strip():
        print(f"{label}: empty document")
        return 1
    errors = validate_document(text)
    if errors:
        for err in errors:
            print(f"{label}: {err}")
        print(f"{label}: {len(errors)} error(s)")
        return 1
    print(f"{label}: valid")
    return 0


# ---------------------------------------------------------------------------
# Self-test
# ---------------------------------------------------------------------------

def _good_document() -> dict:
    return {
        "schema": "ujoin.flight_record",
        "schema_version": 1,
        "reason": "manual",
        "signal": 0,
        "build": {"compiler": "12.2.0", "simd_isa": "avx2"},
        "dropped_events": 0,
        "threads_registered": 2,
        "registry": {
            "wave_start": 2, "wave_end": 2, "probe_begin": 3,
            "funnel_stage": 0, "verify_begin": 1, "query_begin": 0,
            "query_end": 0, "batch_boundary": 0, "conn_open": 0,
            "conn_close": 0, "conn_idle_close": 0, "serve_query": 0,
            "stall_captured": 0,
        },
        "threads": [
            {
                "slot": 0, "os_tid": 4242, "recorded": 4,
                "events": [
                    {"seq": 1, "ts_ns": 10, "kind": "wave_start",
                     "a": 0, "b": 2},
                    {"seq": 2, "ts_ns": 20, "kind": "probe_begin",
                     "a": 0, "b": 0},
                    {"seq": 3, "ts_ns": 30, "kind": "verify_begin",
                     "a": 64, "b": 0},
                    {"seq": 4, "ts_ns": 40, "kind": "wave_end",
                     "a": 0, "b": 0},
                ],
            },
            {
                "slot": 1, "os_tid": 4243, "recorded": 2,
                "events": [
                    {"seq": 1, "ts_ns": 15, "kind": "probe_begin",
                     "a": 1, "b": 1},
                    {"seq": 2, "ts_ns": 25, "kind": "probe_begin",
                     "a": 1, "b": 3},
                ],
            },
        ],
    }


def run_self_test() -> int:
    failures = 0

    def expect(name: str, doc, should_pass: bool):
        nonlocal failures
        text = doc if isinstance(doc, str) else \
            json.dumps(doc, separators=(",", ":"))
        errors = validate_document(text)
        ok = (not errors) == should_pass
        if ok:
            print(f"ok   {name}")
        else:
            failures += 1
            verdict = "valid" if not errors else f"invalid ({errors[0]})"
            print(f"FAIL {name}: expected "
                  f"{'valid' if should_pass else 'invalid'}, got {verdict}")

    expect("good document", _good_document(), True)

    doc = _good_document()
    doc["schema"] = "ujoin.query_log"
    expect("wrong schema", doc, False)

    # Key order is part of the schema: same content, swapped keys.
    doc = _good_document()
    items = list(doc.items())
    items[2], items[3] = items[3], items[2]
    expect("top-level key order", dict(items), False)

    doc = _good_document()
    doc["reason"] = "panic"
    expect("unknown reason", doc, False)

    doc = _good_document()
    doc["reason"] = "crash"
    expect("crash without signal", doc, False)
    doc["signal"] = 11
    expect("crash with signal", doc, True)

    doc = _good_document()
    doc["signal"] = 11  # reason stays "manual"
    expect("manual with signal", doc, False)

    doc = _good_document()
    doc["build"]["simd_isa"] = "avx1024"
    expect("unknown simd_isa", doc, False)

    doc = _good_document()
    del doc["registry"]["serve_query"]
    expect("missing registry kind", doc, False)

    doc = _good_document()
    doc["registry"]["probe_begin"] = -1
    expect("negative registry count", doc, False)

    doc = _good_document()
    doc["threads_registered"] = 3  # but only 2 entries
    expect("thread count mismatch", doc, False)

    doc = _good_document()
    doc["threads"][1]["slot"] = 0  # duplicate slot
    expect("duplicate thread slot", doc, False)

    doc = _good_document()
    doc["threads"][0]["events"][2]["seq"] = 2  # repeats the previous seq
    expect("seq not increasing", doc, False)

    doc = _good_document()
    doc["threads"][0]["events"][3]["seq"] = 9  # > recorded
    expect("seq exceeds recorded", doc, False)

    doc = _good_document()
    doc["threads"][0]["events"][1]["kind"] = "coffee_break"
    expect("unknown event kind", doc, False)

    doc = _good_document()
    doc["threads"][0]["events"][1]["ts_ns"] = 5  # regresses after 10
    expect("timestamp regression", doc, False)

    doc = _good_document()
    doc["threads"][0]["recorded"] = 3  # fewer than the 4 events present
    expect("more events than recorded", doc, False)

    doc = _good_document()
    doc["threads"][0]["events"][0]["a"] = True  # bool is not an integer
    expect("bool-typed payload", doc, False)

    # A ring that wrapped: only the visible window is present, seqs sit in
    # (recorded - capacity, recorded], and gaps (torn events skipped by a
    # live dump) are legal.
    doc = _good_document()
    doc["threads"][0]["recorded"] = 500
    doc["threads"][0]["events"] = [
        {"seq": 480, "ts_ns": 100, "kind": "probe_begin", "a": 0, "b": 0},
        {"seq": 482, "ts_ns": 110, "kind": "verify_begin", "a": 8, "b": 0},
        {"seq": 500, "ts_ns": 120, "kind": "wave_end", "a": 0, "b": 0},
    ]
    expect("wrapped ring with gaps", doc, True)

    doc["threads"][0]["events"][0]["seq"] = 300  # below the window
    expect("seq below ring window", doc, False)

    expect("not json", "{nope", False)

    print(f"self-test: {failures} failure(s)")
    return 1 if failures else 0


def main() -> int:
    args = sys.argv[1:]
    if len(args) != 1:
        print(__doc__.strip().splitlines()[0], file=sys.stderr)
        print("usage: validate_flight_record.py FILE|-|--self-test",
              file=sys.stderr)
        return 2
    if args[0] == "--self-test":
        return run_self_test()
    if args[0] == "-":
        return validate_file(sys.stdin.read(), "<stdin>")
    try:
        with open(args[0], encoding="utf-8") as f:
            return validate_file(f.read(), args[0])
    except OSError as e:
        print(f"validate_flight_record: cannot read {args[0]}: {e}",
              file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
