#!/usr/bin/env python3
"""validate_query_log: schema validator for ujoin.query_log JSONL files.

`ujoin_cli search --query-log=FILE` and `ujoin_cli serve --query-log=FILE`
write one JSON line per answered query (src/obs/query_log.h).  This tool
re-validates those files from the outside, with no ujoin code involved:
key order, types, the deterministic request id, and the internal
consistency of the filter-funnel fields.  CI runs it against a log the
test suite produces, so a silent schema drift in the C++ renderer fails
the gate even if every C++ test still passes.

Checks, per line:

  * the line is a single JSON object with the exact top-level key order
    (key order is part of the schema: records are byte-comparable);
  * schema == "ujoin.query_log" and schema_version == 1;
  * request_id equals splitmix64((connection << 32) ^ seq) — recomputed
    here with explicit 64-bit masking, so the mixing constants in
    src/obs/query_log.h are pinned by an independent implementation;
  * length_band is the bit width of query_length (Histogram::BucketIndex);
  * funnel stages appear in cascade order with survived <= entered, the
    stages chain (freq_distance enters what qgram survived, cdf_bound
    enters what freq_distance survived, verify enters at most what
    cdf_bound survived), and candidates == qgram survivors;
  * counts are non-negative integers, status is "ok" or "error", error
    records report zero hits, and timing fields are non-negative.

Wall-clock fields are checked for type and sign only, never for value:
they are determinism tier 1 (see the query_log.h header comment).

Usage:
  tools/validate_query_log.py FILE     validate a JSONL file ('-' = stdin)
  tools/validate_query_log.py --self-test

Exit status: 0 valid, 1 invalid (or self-test failure), 2 usage.
"""

from __future__ import annotations

import json
import sys

MASK64 = (1 << 64) - 1

TOP_LEVEL_KEYS = [
    "schema", "schema_version", "request_id", "connection", "seq",
    "query_length", "length_band", "funnel", "candidates", "verify_worlds",
    "budget_fallbacks", "deadline_fallbacks", "hits", "status", "inexact",
    "timing",
]
FUNNEL_STAGES = ["qgram", "freq_distance", "cdf_bound", "verify"]
STAGE_KEYS = ["entered", "survived"]
TIMING_KEYS = ["total_ns", "verify_ns"]


def request_id(connection: int, seq: int) -> int:
    """splitmix64 over (connection << 32) ^ seq, as in src/obs/query_log.h."""
    x = ((connection << 32) ^ seq) & MASK64
    x = (x + 0x9E3779B97F4A7C15) & MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & MASK64
    return (x ^ (x >> 31)) & MASK64


def _int_field(obj: dict, key: str, errors: list[str],
               where: str = "") -> int:
    value = obj.get(key)
    # bool is an int subclass in Python; reject it explicitly.
    if not isinstance(value, int) or isinstance(value, bool):
        errors.append(f"{where}{key}: expected integer, got {value!r}")
        return 0
    return value


def validate_record(line: str) -> list[str]:
    """Validates one JSONL line; returns a list of error strings."""
    errors: list[str] = []
    try:
        rec = json.loads(line)
    except json.JSONDecodeError as e:
        return [f"not valid JSON: {e}"]
    if not isinstance(rec, dict):
        return ["line is not a JSON object"]
    if list(rec.keys()) != TOP_LEVEL_KEYS:
        return [f"top-level key order mismatch: got {list(rec.keys())}"]

    if rec["schema"] != "ujoin.query_log":
        errors.append(f"schema: expected 'ujoin.query_log', "
                      f"got {rec['schema']!r}")
    if rec["schema_version"] != 1:
        errors.append(f"schema_version: expected 1, "
                      f"got {rec['schema_version']!r}")

    connection = _int_field(rec, "connection", errors)
    seq = _int_field(rec, "seq", errors)
    rid = _int_field(rec, "request_id", errors)
    if connection < 0 or seq < 1:
        errors.append(f"attribution out of range: connection={connection} "
                      f"(>= 0), seq={seq} (>= 1)")
    expected_rid = request_id(connection, seq)
    if rid != expected_rid:
        errors.append(f"request_id mismatch: got {rid}, expected "
                      f"{expected_rid} for (connection={connection}, "
                      f"seq={seq})")

    query_length = _int_field(rec, "query_length", errors)
    length_band = _int_field(rec, "length_band", errors)
    if query_length < 0:
        errors.append(f"query_length is negative: {query_length}")
    elif length_band != query_length.bit_length():
        errors.append(f"length_band mismatch: got {length_band}, expected "
                      f"{query_length.bit_length()} for query_length "
                      f"{query_length}")

    funnel = rec["funnel"]
    stages: dict[str, tuple[int, int]] = {}
    if not isinstance(funnel, dict) or list(funnel.keys()) != FUNNEL_STAGES:
        errors.append(f"funnel stage order mismatch: got "
                      f"{list(funnel.keys()) if isinstance(funnel, dict) else funnel!r}")
    else:
        for stage, counts in funnel.items():
            if not isinstance(counts, dict) or \
                    list(counts.keys()) != STAGE_KEYS:
                errors.append(f"funnel.{stage}: expected keys {STAGE_KEYS}")
                continue
            entered = _int_field(counts, "entered", errors,
                                 where=f"funnel.{stage}.")
            survived = _int_field(counts, "survived", errors,
                                  where=f"funnel.{stage}.")
            if entered < 0 or survived < 0 or survived > entered:
                errors.append(f"funnel.{stage}: need 0 <= survived <= "
                              f"entered, got entered={entered} "
                              f"survived={survived}")
            stages[stage] = (entered, survived)
    if len(stages) == len(FUNNEL_STAGES):
        # The cascade chains: each filter enters what the previous one
        # passed (a disabled filter is recorded as a pass-through).
        # Verification may enter fewer — CDF-accepted candidates and
        # budget/deadline fallbacks are decided without verifying.
        if stages["freq_distance"][0] != stages["qgram"][1]:
            errors.append(f"funnel chain broken: freq_distance.entered "
                          f"{stages['freq_distance'][0]} != qgram.survived "
                          f"{stages['qgram'][1]}")
        if stages["cdf_bound"][0] != stages["freq_distance"][1]:
            errors.append(f"funnel chain broken: cdf_bound.entered "
                          f"{stages['cdf_bound'][0]} != "
                          f"freq_distance.survived "
                          f"{stages['freq_distance'][1]}")
        if stages["verify"][0] > stages["cdf_bound"][1]:
            errors.append(f"funnel chain broken: verify.entered "
                          f"{stages['verify'][0]} > cdf_bound.survived "
                          f"{stages['cdf_bound'][1]}")
        candidates = _int_field(rec, "candidates", errors)
        if candidates != stages["qgram"][1]:
            errors.append(f"candidates {candidates} != qgram survivors "
                          f"{stages['qgram'][1]}")

    for key in ("verify_worlds", "budget_fallbacks", "deadline_fallbacks",
                "hits"):
        if _int_field(rec, key, errors) < 0:
            errors.append(f"{key} is negative: {rec[key]}")

    status = rec["status"]
    if status not in ("ok", "error"):
        errors.append(f"status: expected 'ok' or 'error', got {status!r}")
    elif status == "error" and rec["hits"] != 0:
        errors.append(f"error record reports {rec['hits']} hits")
    if not isinstance(rec["inexact"], bool):
        errors.append(f"inexact: expected bool, got {rec['inexact']!r}")

    timing = rec["timing"]
    if not isinstance(timing, dict) or list(timing.keys()) != TIMING_KEYS:
        errors.append(f"timing: expected keys {TIMING_KEYS}")
    else:
        for key in TIMING_KEYS:
            if _int_field(timing, key, errors, where="timing.") < 0:
                errors.append(f"timing.{key} is negative: {timing[key]}")
    return errors


def validate_stream(lines, label: str) -> int:
    """Validates every line; prints errors; returns a process exit status."""
    records = 0
    bad = 0
    for lineno, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        records += 1
        for err in validate_record(line):
            print(f"{label}:{lineno}: {err}")
            bad += 1
    if records == 0:
        print(f"{label}: no records")
        return 1
    if bad:
        print(f"{label}: {records} record(s), {bad} error(s)")
        return 1
    print(f"{label}: {records} record(s) valid")
    return 0


# ---------------------------------------------------------------------------
# Self-test
# ---------------------------------------------------------------------------

def _good_record() -> dict:
    rec = {
        "schema": "ujoin.query_log",
        "schema_version": 1,
        "request_id": request_id(3, 7),
        "connection": 3,
        "seq": 7,
        "query_length": 22,
        "length_band": 5,
        "funnel": {
            "qgram": {"entered": 49, "survived": 4},
            "freq_distance": {"entered": 4, "survived": 4},
            "cdf_bound": {"entered": 4, "survived": 3},
            "verify": {"entered": 2, "survived": 2},
        },
        "candidates": 4,
        "verify_worlds": 77250,
        "budget_fallbacks": 0,
        "deadline_fallbacks": 0,
        "hits": 3,
        "status": "ok",
        "inexact": False,
        "timing": {"total_ns": 160389952, "verify_ns": 157542480},
    }
    return rec


def run_self_test() -> int:
    failures = 0

    def expect(name: str, line: str, should_pass: bool):
        nonlocal failures
        errors = validate_record(line)
        ok = (not errors) == should_pass
        if ok:
            print(f"ok   {name}")
        else:
            failures += 1
            verdict = "valid" if not errors else f"invalid ({errors[0]})"
            print(f"FAIL {name}: expected "
                  f"{'valid' if should_pass else 'invalid'}, got {verdict}")

    expect("good record", json.dumps(_good_record(), separators=(",", ":")),
           True)

    rec = _good_record()
    rec["request_id"] = (rec["request_id"] + 1) & MASK64
    expect("bad request id", json.dumps(rec, separators=(",", ":")), False)

    rec = _good_record()
    rec["length_band"] = 9
    expect("bad length band", json.dumps(rec, separators=(",", ":")), False)

    rec = _good_record()
    rec["funnel"]["freq_distance"]["entered"] = 5  # != qgram.survived
    expect("broken funnel chain", json.dumps(rec, separators=(",", ":")),
           False)

    rec = _good_record()
    rec["funnel"]["qgram"]["survived"] = 50  # > entered
    expect("survivors exceed entered", json.dumps(rec, separators=(",", ":")),
           False)

    rec = _good_record()
    rec["candidates"] = 5
    expect("candidates mismatch", json.dumps(rec, separators=(",", ":")),
           False)

    rec = _good_record()
    rec["status"] = "slow"
    expect("unknown status", json.dumps(rec, separators=(",", ":")), False)

    # Key order is part of the schema: same content, swapped keys.
    rec = _good_record()
    items = list(rec.items())
    items[3], items[4] = items[4], items[3]
    expect("top-level key order", json.dumps(dict(items),
                                             separators=(",", ":")), False)

    rec = _good_record()
    rec["timing"]["total_ns"] = -1
    expect("negative timing", json.dumps(rec, separators=(",", ":")), False)

    rec = _good_record()
    rec["hits"] = True  # bool is not an acceptable integer
    expect("bool-typed count", json.dumps(rec, separators=(",", ":")), False)

    expect("not json", "{nope", False)

    # An error record: funnel zeroed, no hits.
    rec = _good_record()
    rec["request_id"] = request_id(1, 2)
    rec["connection"], rec["seq"] = 1, 2
    rec["query_length"], rec["length_band"] = 0, 0
    for stage in FUNNEL_STAGES:
        rec["funnel"][stage] = {"entered": 0, "survived": 0}
    rec["candidates"] = rec["verify_worlds"] = rec["hits"] = 0
    rec["status"] = "error"
    rec["timing"] = {"total_ns": 0, "verify_ns": 0}
    expect("error record", json.dumps(rec, separators=(",", ":")), True)

    rec["hits"] = 2
    expect("error record with hits", json.dumps(rec, separators=(",", ":")),
           False)

    print(f"self-test: {failures} failure(s)")
    return 1 if failures else 0


def main() -> int:
    args = sys.argv[1:]
    if len(args) != 1:
        print(__doc__.strip().splitlines()[0], file=sys.stderr)
        print("usage: validate_query_log.py FILE|-|--self-test",
              file=sys.stderr)
        return 2
    if args[0] == "--self-test":
        return run_self_test()
    if args[0] == "-":
        return validate_stream(sys.stdin, "<stdin>")
    try:
        with open(args[0], encoding="utf-8") as f:
            return validate_stream(f, args[0])
    except OSError as e:
        print(f"validate_query_log: cannot read {args[0]}: {e}",
              file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
