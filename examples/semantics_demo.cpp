// Why (k, τ)-matching instead of expected edit distance?
//
// Section 1 of the paper argues that eed does not implement possible-world
// semantics at the query level: *every* world contributes to the score,
// weighted by its distance, so a pair can look "close in expectation" while
// having almost no probability of actually being within the threshold — and
// vice versa.  This example constructs such pairs, prints their possible
// worlds, and shows the two semantics ranking them in opposite orders.

#include <cstdio>

#include "eed/eed.h"
#include "join/ujoin.h"
#include "util/check.h"

namespace {

using namespace ujoin;  // NOLINT: example code

UncertainString Parse(const char* text, const Alphabet& alphabet) {
  Result<UncertainString> s = UncertainString::Parse(text, alphabet);
  UJOIN_CHECK(s.ok());
  return std::move(s).value();
}

void Describe(const char* name, const UncertainString& r,
              const UncertainString& s, int k) {
  Result<double> eed = ExpectedEditDistance(r, s);
  Result<double> prob = TrieVerifyProbability(r, s, k);
  UJOIN_CHECK(eed.ok() && prob.ok());
  std::printf("%s\n  R = %s\n  S = %s\n", name, r.ToString().c_str(),
              s.ToString().c_str());
  std::printf("  eed(R,S) = %.3f    Pr(ed <= %d) = %.3f\n", eed.value(), k,
              prob.value());
  std::printf("  worlds of S against R's single world:\n");
  ForEachWorld(s, [&](const std::string& instance, double p) {
    std::printf("    %-12s p=%.3f  ed=%d\n", instance.c_str(), p,
                EditDistance(r.MostLikelyInstance(), instance));
  });
  std::printf("\n");
}

}  // namespace

int main() {
  const Alphabet dna = Alphabet::Dna();
  const int k = 1;

  // Pair A: eight independently noisy positions (each wrong with
  // probability 0.3).  There is a solid chance that at most one goes wrong
  // (ed <= 1), yet the expected number of wrong positions — and hence eed —
  // is around 2.4.
  const UncertainString r = UncertainString::FromDeterministic("ACGTACGTACGT");
  const UncertainString s_noisy = Parse(
      "{(A,0.7),(T,0.3)}{(C,0.7),(G,0.3)}{(G,0.7),(C,0.3)}{(T,0.7),(A,0.3)}"
      "{(A,0.7),(G,0.3)}{(C,0.7),(T,0.3)}{(G,0.7),(A,0.3)}{(T,0.7),(C,0.3)}"
      "ACGT", dna);

  // Pair B: deterministic, every world at distance exactly 2 — NEVER within
  // k = 1 — but with the smaller eed of exactly 2.
  const UncertainString s_always_two =
      UncertainString::FromDeterministic("ACGTACGTACAA");

  Describe("pair A (eight mildly noisy positions)", r, s_noisy, k);
  std::printf("pair B (deterministic, always at distance 2)\n  R = %s\n"
              "  S = %s\n\n", r.ToString().c_str(),
              s_always_two.ToString().c_str());

  Result<double> eed_a = ExpectedEditDistance(r, s_noisy);
  Result<double> eed_b = ExpectedEditDistance(r, s_always_two);
  Result<double> prob_a = TrieVerifyProbability(r, s_noisy, k);
  Result<double> prob_b = TrieVerifyProbability(r, s_always_two, k);
  UJOIN_CHECK(eed_a.ok() && eed_b.ok() && prob_a.ok() && prob_b.ok());

  std::printf("                 pair A     pair B\n");
  std::printf("eed              %.3f      %.3f\n", eed_a.value(),
              eed_b.value());
  std::printf("Pr(ed <= %d)      %.3f      %.3f\n\n", k, prob_a.value(),
              prob_b.value());
  std::printf("ranking by eed:          %s\n",
              eed_a.value() < eed_b.value() ? "A before B" : "B before A");
  std::printf("ranking by Pr(ed <= %d): %s\n", k,
              prob_a.value() > prob_b.value() ? "A before B" : "B before A");
  std::printf(
      "\nAn eed threshold between %.3f and %.3f reports pair B — which is\n"
      "NEVER within edit distance %d — and drops pair A, which is within\n"
      "distance %d with probability %.3f.  (k,tau)-matching with tau < %.3f\n"
      "reports exactly pair A: the possible-world semantics the paper argues\n"
      "for (Section 1).\n",
      std::min(eed_a.value(), eed_b.value()),
      std::max(eed_a.value(), eed_b.value()), k, k, prob_a.value(),
      prob_a.value());
  return 0;
}
