// Data-cleaning scenario from the paper's introduction: deduplicating noisy
// person-name records.
//
// Names digitized through OCR carry character-level uncertainty — the
// recognizer emits a distribution over confusable letters per position
// ('m' vs 'n', 'i' vs 'l', ...).  A deterministic join over the top-1
// transcription misses duplicates whose most likely readings differ; the
// probabilistic (k, τ) join recovers them by reasoning over all readings.
//
// This example synthesizes such records, joins them, and contrasts the
// probabilistic result with a deterministic join on the most likely
// reading.

#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "join/ujoin.h"
#include "text/edit_distance.h"
#include "util/rng.h"

namespace {

using namespace ujoin;  // NOLINT: example code

// OCR-style confusion sets over the name alphabet.
const std::map<char, std::string>& ConfusionSets() {
  static const std::map<char, std::string> kSets = {
      {'m', "nm"}, {'n', "nm"}, {'i', "il"}, {'l', "il"},
      {'o', "oa"}, {'a', "oa"}, {'e', "ec"}, {'c', "ec"},
      {'u', "uv"}, {'v', "uv"},
  };
  return kSets;
}

// Simulates scanning `name`: confusable characters become uncertain with a
// recognizer-confidence distribution.
UncertainString Scan(const std::string& name, double noise, Rng& rng) {
  UncertainString::Builder builder;
  for (char c : name) {
    auto it = ConfusionSets().find(c);
    if (it == ConfusionSets().end() || !rng.Bernoulli(noise)) {
      builder.AddCertain(c);
      continue;
    }
    // The recognizer hedges between the two confusable letters and is
    // sometimes outright wrong about which is more likely.
    const double confidence = 0.35 + 0.5 * rng.UniformDouble();
    std::vector<CharProb> alts;
    for (char option : it->second) {
      alts.push_back(CharProb{
          option, option == c ? confidence : 1.0 - confidence});
    }
    builder.AddUncertain(std::move(alts));
  }
  Result<UncertainString> s = builder.Build();
  UJOIN_CHECK(s.ok());
  return std::move(s).value();
}

}  // namespace

int main() {
  const Alphabet alphabet = Alphabet::Names();
  Rng rng(2024);

  // Ground truth: each person appears in several separately-scanned records.
  const std::vector<std::string> people = {
      "maria gonzalez", "mario gonzales", "julia chen",    "julian chen",
      "amelia novak",   "emil novak",     "liam connor",   "noel maxim",
      "viola lemond",   "carmen silva",
  };
  std::vector<UncertainString> records;
  std::vector<int> owner;  // record -> person
  for (size_t person = 0; person < people.size(); ++person) {
    const int copies = 2 + static_cast<int>(rng.Uniform(2));
    for (int c = 0; c < copies; ++c) {
      records.push_back(Scan(people[person], /*noise=*/0.6, rng));
      owner.push_back(static_cast<int>(person));
    }
  }
  std::printf("scanned %zu records of %zu people\n\n", records.size(),
              people.size());

  // Probabilistic duplicate detection.
  JoinOptions options = JoinOptions::Qfct(/*k=*/2, /*tau=*/0.3);
  options.always_verify = true;
  Result<SelfJoinResult> joined =
      SimilaritySelfJoin(records, alphabet, options);
  if (!joined.ok()) {
    std::fprintf(stderr, "join failed: %s\n",
                 joined.status().ToString().c_str());
    return 1;
  }

  // Deterministic baseline: join the most likely readings only.
  std::set<std::pair<uint32_t, uint32_t>> deterministic;
  for (uint32_t i = 0; i < records.size(); ++i) {
    for (uint32_t j = i + 1; j < records.size(); ++j) {
      if (WithinEditDistance(records[i].MostLikelyInstance(),
                             records[j].MostLikelyInstance(), options.k)) {
        deterministic.insert({i, j});
      }
    }
  }

  int true_dupes = 0, cross_person = 0, recovered = 0;
  std::printf("probabilistic duplicates (k=%d, tau=%.2f):\n", options.k,
              options.tau);
  for (const JoinPair& pair : joined->pairs) {
    const bool same_person = owner[pair.lhs] == owner[pair.rhs];
    const bool missed_by_top1 = !deterministic.count({pair.lhs, pair.rhs});
    true_dupes += same_person;
    cross_person += !same_person;
    recovered += same_person && missed_by_top1;
    std::printf("  records %2u ~ %2u  Pr=%.3f  [%s%s]\n", pair.lhs, pair.rhs,
                pair.probability, same_person ? "same person" : "different",
                missed_by_top1 ? ", missed by top-1 join" : "");
  }
  std::printf(
      "\nsummary: %zu pairs reported, %d same-person, %d cross-person;\n"
      "%d same-person pairs were invisible to the deterministic top-1 join\n",
      joined->pairs.size(), true_dupes, cross_person, recovered);
  std::printf("\nstatistics:\n%s\n", joined->stats.ToString().c_str());
  return 0;
}
