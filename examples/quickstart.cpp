// Quickstart: build a handful of uncertain strings, run a (k, τ) similarity
// self-join, and inspect the results.  Start here to learn the API surface.

#include <cstdio>
#include <vector>

#include "join/ujoin.h"

int main() {
  // 1. Pick an alphabet.  Parsing validates that every symbol belongs to it.
  const ujoin::Alphabet dna = ujoin::Alphabet::Dna();

  // 2. Build the collection.  Uncertain positions use the paper's notation:
  //    `{(symbol,probability),...}`.  Certain positions are plain symbols.
  const char* raw[] = {
      "ACGTACGT",                      // fully deterministic
      "ACG{(T,0.9),(A,0.1)}ACGT",      // one noisy read
      "AC{(G,0.7),(C,0.3)}TACG{(T,0.6),(C,0.4)}",  // two noisy reads
      "TTTTGGGG",                      // unrelated
      "ACGTACG",                       // one deletion away from the first
  };
  std::vector<ujoin::UncertainString> collection;
  for (const char* text : raw) {
    ujoin::Result<ujoin::UncertainString> s =
        ujoin::UncertainString::Parse(text, dna);
    if (!s.ok()) {
      std::fprintf(stderr, "parse error: %s\n", s.status().ToString().c_str());
      return 1;
    }
    collection.push_back(std::move(s).value());
  }

  // 3. Configure the join: report pairs with Pr(ed(R,S) <= k) > tau.
  ujoin::JoinOptions options = ujoin::JoinOptions::Qfct(/*k=*/1, /*tau=*/0.5);
  options.always_verify = true;  // report exact probabilities

  // 4. Run it.
  ujoin::Result<ujoin::SelfJoinResult> result =
      ujoin::SimilaritySelfJoin(collection, dna, options);
  if (!result.ok()) {
    std::fprintf(stderr, "join error: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // 5. Use the output: matching index pairs with their probabilities.
  std::printf("similar pairs with Pr(ed <= %d) > %.2f:\n", options.k,
              options.tau);
  for (const ujoin::JoinPair& pair : result->pairs) {
    std::printf("  (%u, %u)  Pr = %.4f\n      %s\n      %s\n", pair.lhs,
                pair.rhs, pair.probability,
                collection[pair.lhs].ToString().c_str(),
                collection[pair.rhs].ToString().c_str());
  }

  // 6. Per-stage statistics show where the time went and how hard each
  //    filter worked (the same counters the paper's figures report).
  std::printf("\nstatistics:\n%s\n", result->stats.ToString().c_str());
  return 0;
}
