// Similarity search over uncertain protein snippets.
//
// Sequencing pipelines report per-residue quality: low-confidence calls are
// naturally modelled as character-level distributions.  This example builds
// a searchable collection of uncertain peptide snippets (the paper's second
// workload), then answers (k, τ) similarity-search queries against it —
// including queries that are themselves uncertain, which prior work on
// uncertain-string search did not support (Section 1).

#include <cstdio>
#include <vector>

#include "datagen/datagen.h"
#include "join/ujoin.h"
#include "util/rng.h"

namespace {

using namespace ujoin;  // NOLINT: example code

}  // namespace

int main() {
  // A collection of uncertain peptide snippets (synthetic, but with the
  // paper's protein workload characteristics: |Σ| = 22, θ = 0.1, γ = 5).
  DatasetOptions data_opt;
  data_opt.kind = DatasetOptions::Kind::kProtein;
  data_opt.size = 3000;
  data_opt.theta = 0.1;
  data_opt.seed = 7;
  data_opt.max_uncertain_positions = 5;
  const Dataset data = GenerateDataset(data_opt);

  JoinOptions options = JoinOptions::Qfct(/*k=*/4, /*tau=*/0.01);
  options.always_verify = true;
  Result<SimilaritySearcher> searcher =
      SimilaritySearcher::Create(data.strings, data.alphabet, options);
  if (!searcher.ok()) {
    std::fprintf(stderr, "index build failed: %s\n",
                 searcher.status().ToString().c_str());
    return 1;
  }
  std::printf("indexed %zu snippets, inverted index = %.2f MiB\n\n",
              data.strings.size(),
              static_cast<double>(searcher->IndexMemoryUsage()) /
                  (1024.0 * 1024.0));

  // Query 1: a deterministic peptide taken from a collection member's most
  // likely instance, with a couple of residues mutated.
  Rng rng(99);
  std::string peptide = data.strings[42].MostLikelyInstance();
  peptide[3] = 'W';
  peptide[7] = 'K';
  Result<std::vector<SearchHit>> hits =
      searcher->Search(UncertainString::FromDeterministic(peptide));
  if (!hits.ok()) {
    std::fprintf(stderr, "search failed: %s\n",
                 hits.status().ToString().c_str());
    return 1;
  }
  std::printf("deterministic query %s\n-> %zu hits\n", peptide.c_str(),
              hits->size());
  for (const SearchHit& hit : *hits) {
    std::printf("   snippet %5u  Pr(ed <= %d) = %.4f\n", hit.id, options.k,
                hit.probability);
  }

  // Query 2: an *uncertain* query — e.g. a fresh read with two
  // low-confidence residue calls.
  UncertainString::Builder builder;
  for (size_t i = 0; i < peptide.size(); ++i) {
    if (i == 5) {
      builder.AddUncertain({{'L', 0.6}, {'I', 0.4}});  // leucine/isoleucine
    } else if (i == 11) {
      builder.AddUncertain({{'D', 0.5}, {'E', 0.3}, {'N', 0.2}});
    } else {
      builder.AddCertain(peptide[i]);
    }
  }
  Result<UncertainString> uncertain_query = builder.Build();
  UJOIN_CHECK(uncertain_query.ok());
  JoinStats stats;
  Result<std::vector<SearchHit>> hits2 =
      searcher->Search(*uncertain_query, &stats);
  if (!hits2.ok()) {
    std::fprintf(stderr, "search failed: %s\n",
                 hits2.status().ToString().c_str());
    return 1;
  }
  std::printf("\nuncertain query %s\n-> %zu hits\n",
              uncertain_query->ToString().c_str(), hits2->size());
  for (const SearchHit& hit : *hits2) {
    std::printf("   snippet %5u  Pr(ed <= %d) = %.4f\n", hit.id, options.k,
                hit.probability);
  }
  std::printf("\nquery statistics:\n%s\n", stats.ToString().c_str());
  return 0;
}
