// Build the index once, persist it, reload, and answer a batch of queries
// in parallel — the deployment shape of a similarity-search service.
//
// Demonstrates: SimilaritySearcher::Save/Load, SearchMany (thread pool),
// SearchTopK, and the cross-collection SimilarityJoin.

#include <cstdio>

#include "datagen/datagen.h"
#include "join/ujoin.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {
using namespace ujoin;  // NOLINT: example code
}  // namespace

int main() {
  // A mid-sized collection of uncertain name records.
  DatasetOptions data_opt;
  data_opt.kind = DatasetOptions::Kind::kNames;
  data_opt.size = 5000;
  data_opt.theta = 0.2;
  data_opt.seed = 11;
  data_opt.max_uncertain_positions = 5;
  const Dataset data = GenerateDataset(data_opt);

  JoinOptions options = JoinOptions::Qfct(/*k=*/2, /*tau=*/0.1);
  options.early_stop_verification = true;

  // Build and persist.
  Timer build_timer;
  Result<SimilaritySearcher> built =
      SimilaritySearcher::Create(data.strings, data.alphabet, options);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  std::printf("built index over %zu strings in %.2fs (%.1f MiB)\n",
              data.strings.size(), build_timer.ElapsedSeconds(),
              static_cast<double>(built->IndexMemoryUsage()) / (1 << 20));
  const std::string path = "/tmp/ujoin_batch_search.idx";
  if (Status s = built->Save(path); !s.ok()) {
    std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // Reload (a fresh process would start here).
  Timer load_timer;
  Result<SimilaritySearcher> searcher =
      SimilaritySearcher::Load(path, data.alphabet);
  if (!searcher.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 searcher.status().ToString().c_str());
    return 1;
  }
  std::printf("reloaded from %s in %.3fs\n", path.c_str(),
              load_timer.ElapsedSeconds());

  // A batch of queries: noisy re-reads of collection members (the most
  // likely instance with one random substitution).
  Rng rng(12);
  std::vector<UncertainString> queries;
  for (size_t i = 0; i < data.strings.size() && queries.size() < 200;
       i += 25) {
    std::string text = data.strings[i].MostLikelyInstance();
    text[rng.Uniform(text.size())] =
        data.alphabet.SymbolAt(static_cast<int>(rng.Uniform(26)));
    queries.push_back(UncertainString::FromDeterministic(text));
  }

  for (int threads : {1, 4}) {
    Timer timer;
    Result<std::vector<std::vector<SearchHit>>> batches =
        searcher->SearchMany(queries, threads);
    if (!batches.ok()) {
      std::fprintf(stderr, "batch search failed: %s\n",
                   batches.status().ToString().c_str());
      return 1;
    }
    size_t total_hits = 0;
    for (const auto& hits : *batches) total_hits += hits.size();
    std::printf("%3d thread(s): %zu queries -> %zu hits in %.2fs\n", threads,
                queries.size(), total_hits, timer.ElapsedSeconds());
  }

  // Top-3 matches for one query, with exact probabilities.
  Result<std::vector<SearchHit>> top = searcher->SearchTopK(queries[0], 3);
  if (!top.ok()) {
    std::fprintf(stderr, "topk failed: %s\n", top.status().ToString().c_str());
    return 1;
  }
  std::printf("\ntop-%zu for query %s\n", top->size(),
              queries[0].ToString().c_str());
  for (const SearchHit& hit : *top) {
    std::printf("  #%u  Pr=%.4f  %s\n", hit.id, hit.probability,
                searcher->collection()[hit.id].ToString().c_str());
  }

  // Cross-collection join: which query records match which index records?
  JoinOptions join_options = options;
  join_options.threads = 4;
  Timer join_timer;
  Result<CrossJoinResult> joined =
      SimilarityJoin(queries, data.strings, data.alphabet, join_options);
  if (!joined.ok()) {
    std::fprintf(stderr, "cross join failed: %s\n",
                 joined.status().ToString().c_str());
    return 1;
  }
  std::printf("\ncross join (4 threads): %zu query-record pairs in %.2fs\n",
              joined->pairs.size(), join_timer.ElapsedSeconds());
  std::remove(path.c_str());
  return 0;
}
