# Empty dependencies file for ujoin_cli.
# This may be replaced when dependencies are built.
