file(REMOVE_RECURSE
  "CMakeFiles/ujoin_cli.dir/ujoin_cli.cc.o"
  "CMakeFiles/ujoin_cli.dir/ujoin_cli.cc.o.d"
  "ujoin_cli"
  "ujoin_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ujoin_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
