file(REMOVE_RECURSE
  "CMakeFiles/semantics_demo.dir/semantics_demo.cpp.o"
  "CMakeFiles/semantics_demo.dir/semantics_demo.cpp.o.d"
  "semantics_demo"
  "semantics_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semantics_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
