file(REMOVE_RECURSE
  "CMakeFiles/cross_join_test.dir/join/cross_join_test.cc.o"
  "CMakeFiles/cross_join_test.dir/join/cross_join_test.cc.o.d"
  "cross_join_test"
  "cross_join_test.pdb"
  "cross_join_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
