# Empty dependencies file for cross_join_test.
# This may be replaced when dependencies are built.
