# Empty dependencies file for searcher_persistence_test.
# This may be replaced when dependencies are built.
