file(REMOVE_RECURSE
  "CMakeFiles/searcher_persistence_test.dir/join/searcher_persistence_test.cc.o"
  "CMakeFiles/searcher_persistence_test.dir/join/searcher_persistence_test.cc.o.d"
  "searcher_persistence_test"
  "searcher_persistence_test.pdb"
  "searcher_persistence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/searcher_persistence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
