file(REMOVE_RECURSE
  "CMakeFiles/eed_test.dir/eed/eed_test.cc.o"
  "CMakeFiles/eed_test.dir/eed/eed_test.cc.o.d"
  "eed_test"
  "eed_test.pdb"
  "eed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
