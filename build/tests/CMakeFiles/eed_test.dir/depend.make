# Empty dependencies file for eed_test.
# This may be replaced when dependencies are built.
