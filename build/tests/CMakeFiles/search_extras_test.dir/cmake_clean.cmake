file(REMOVE_RECURSE
  "CMakeFiles/search_extras_test.dir/join/search_extras_test.cc.o"
  "CMakeFiles/search_extras_test.dir/join/search_extras_test.cc.o.d"
  "search_extras_test"
  "search_extras_test.pdb"
  "search_extras_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_extras_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
