file(REMOVE_RECURSE
  "CMakeFiles/probe_overlap_test.dir/filter/probe_overlap_test.cc.o"
  "CMakeFiles/probe_overlap_test.dir/filter/probe_overlap_test.cc.o.d"
  "probe_overlap_test"
  "probe_overlap_test.pdb"
  "probe_overlap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probe_overlap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
