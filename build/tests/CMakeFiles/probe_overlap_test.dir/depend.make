# Empty dependencies file for probe_overlap_test.
# This may be replaced when dependencies are built.
