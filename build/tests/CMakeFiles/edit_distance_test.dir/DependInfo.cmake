
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/text/edit_distance_test.cc" "tests/CMakeFiles/edit_distance_test.dir/text/edit_distance_test.cc.o" "gcc" "tests/CMakeFiles/edit_distance_test.dir/text/edit_distance_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/tests/CMakeFiles/ujoin_testing.dir/DependInfo.cmake"
  "/root/repo/build/src/join/CMakeFiles/ujoin_join.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/ujoin_index.dir/DependInfo.cmake"
  "/root/repo/build/src/filter/CMakeFiles/ujoin_filter.dir/DependInfo.cmake"
  "/root/repo/build/src/verify/CMakeFiles/ujoin_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/eed/CMakeFiles/ujoin_eed.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/ujoin_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/ujoin_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ujoin_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
