file(REMOVE_RECURSE
  "CMakeFiles/uncertain_string_test.dir/text/uncertain_string_test.cc.o"
  "CMakeFiles/uncertain_string_test.dir/text/uncertain_string_test.cc.o.d"
  "uncertain_string_test"
  "uncertain_string_test.pdb"
  "uncertain_string_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uncertain_string_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
