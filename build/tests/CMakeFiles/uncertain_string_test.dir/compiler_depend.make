# Empty compiler generated dependencies file for uncertain_string_test.
# This may be replaced when dependencies are built.
