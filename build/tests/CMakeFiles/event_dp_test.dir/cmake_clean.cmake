file(REMOVE_RECURSE
  "CMakeFiles/event_dp_test.dir/filter/event_dp_test.cc.o"
  "CMakeFiles/event_dp_test.dir/filter/event_dp_test.cc.o.d"
  "event_dp_test"
  "event_dp_test.pdb"
  "event_dp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_dp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
