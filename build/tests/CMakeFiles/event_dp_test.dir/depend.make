# Empty dependencies file for event_dp_test.
# This may be replaced when dependencies are built.
