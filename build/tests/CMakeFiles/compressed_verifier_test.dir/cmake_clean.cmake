file(REMOVE_RECURSE
  "CMakeFiles/compressed_verifier_test.dir/verify/compressed_verifier_test.cc.o"
  "CMakeFiles/compressed_verifier_test.dir/verify/compressed_verifier_test.cc.o.d"
  "compressed_verifier_test"
  "compressed_verifier_test.pdb"
  "compressed_verifier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compressed_verifier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
