# Empty dependencies file for compressed_verifier_test.
# This may be replaced when dependencies are built.
