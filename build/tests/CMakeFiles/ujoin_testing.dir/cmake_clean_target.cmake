file(REMOVE_RECURSE
  "libujoin_testing.a"
)
