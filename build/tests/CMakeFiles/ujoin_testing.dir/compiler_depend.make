# Empty compiler generated dependencies file for ujoin_testing.
# This may be replaced when dependencies are built.
