file(REMOVE_RECURSE
  "CMakeFiles/ujoin_testing.dir/testing/test_util.cc.o"
  "CMakeFiles/ujoin_testing.dir/testing/test_util.cc.o.d"
  "libujoin_testing.a"
  "libujoin_testing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ujoin_testing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
