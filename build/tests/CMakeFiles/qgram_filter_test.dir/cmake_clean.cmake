file(REMOVE_RECURSE
  "CMakeFiles/qgram_filter_test.dir/filter/qgram_filter_test.cc.o"
  "CMakeFiles/qgram_filter_test.dir/filter/qgram_filter_test.cc.o.d"
  "qgram_filter_test"
  "qgram_filter_test.pdb"
  "qgram_filter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qgram_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
