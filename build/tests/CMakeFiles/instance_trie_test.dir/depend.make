# Empty dependencies file for instance_trie_test.
# This may be replaced when dependencies are built.
