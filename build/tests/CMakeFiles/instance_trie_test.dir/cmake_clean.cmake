file(REMOVE_RECURSE
  "CMakeFiles/instance_trie_test.dir/verify/instance_trie_test.cc.o"
  "CMakeFiles/instance_trie_test.dir/verify/instance_trie_test.cc.o.d"
  "instance_trie_test"
  "instance_trie_test.pdb"
  "instance_trie_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instance_trie_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
