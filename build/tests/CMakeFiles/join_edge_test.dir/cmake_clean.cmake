file(REMOVE_RECURSE
  "CMakeFiles/join_edge_test.dir/join/join_edge_test.cc.o"
  "CMakeFiles/join_edge_test.dir/join/join_edge_test.cc.o.d"
  "join_edge_test"
  "join_edge_test.pdb"
  "join_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
