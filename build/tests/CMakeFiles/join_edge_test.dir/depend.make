# Empty dependencies file for join_edge_test.
# This may be replaced when dependencies are built.
