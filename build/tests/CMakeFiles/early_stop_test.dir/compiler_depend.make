# Empty compiler generated dependencies file for early_stop_test.
# This may be replaced when dependencies are built.
