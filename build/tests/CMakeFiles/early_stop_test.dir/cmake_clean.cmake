file(REMOVE_RECURSE
  "CMakeFiles/early_stop_test.dir/verify/early_stop_test.cc.o"
  "CMakeFiles/early_stop_test.dir/verify/early_stop_test.cc.o.d"
  "early_stop_test"
  "early_stop_test.pdb"
  "early_stop_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/early_stop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
