# Empty compiler generated dependencies file for string_level_join_test.
# This may be replaced when dependencies are built.
