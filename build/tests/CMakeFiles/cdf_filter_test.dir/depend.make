# Empty dependencies file for cdf_filter_test.
# This may be replaced when dependencies are built.
