file(REMOVE_RECURSE
  "CMakeFiles/cdf_filter_test.dir/filter/cdf_filter_test.cc.o"
  "CMakeFiles/cdf_filter_test.dir/filter/cdf_filter_test.cc.o.d"
  "cdf_filter_test"
  "cdf_filter_test.pdb"
  "cdf_filter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdf_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
