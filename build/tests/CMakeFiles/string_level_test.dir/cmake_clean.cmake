file(REMOVE_RECURSE
  "CMakeFiles/string_level_test.dir/text/string_level_test.cc.o"
  "CMakeFiles/string_level_test.dir/text/string_level_test.cc.o.d"
  "string_level_test"
  "string_level_test.pdb"
  "string_level_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/string_level_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
