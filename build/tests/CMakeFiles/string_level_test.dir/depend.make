# Empty dependencies file for string_level_test.
# This may be replaced when dependencies are built.
