file(REMOVE_RECURSE
  "CMakeFiles/freq_filter_test.dir/filter/freq_filter_test.cc.o"
  "CMakeFiles/freq_filter_test.dir/filter/freq_filter_test.cc.o.d"
  "freq_filter_test"
  "freq_filter_test.pdb"
  "freq_filter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/freq_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
