# Empty compiler generated dependencies file for freq_filter_test.
# This may be replaced when dependencies are built.
