file(REMOVE_RECURSE
  "CMakeFiles/probe_set_test.dir/filter/probe_set_test.cc.o"
  "CMakeFiles/probe_set_test.dir/filter/probe_set_test.cc.o.d"
  "probe_set_test"
  "probe_set_test.pdb"
  "probe_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probe_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
