file(REMOVE_RECURSE
  "CMakeFiles/segment_index_test.dir/index/segment_index_test.cc.o"
  "CMakeFiles/segment_index_test.dir/index/segment_index_test.cc.o.d"
  "segment_index_test"
  "segment_index_test.pdb"
  "segment_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segment_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
