# Empty dependencies file for bench_fig5_tau.
# This may be replaced when dependencies are built.
