file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_verify.dir/bench_fig8_verify.cc.o"
  "CMakeFiles/bench_fig8_verify.dir/bench_fig8_verify.cc.o.d"
  "bench_fig8_verify"
  "bench_fig8_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
