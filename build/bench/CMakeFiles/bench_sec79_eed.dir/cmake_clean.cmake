file(REMOVE_RECURSE
  "CMakeFiles/bench_sec79_eed.dir/bench_sec79_eed.cc.o"
  "CMakeFiles/bench_sec79_eed.dir/bench_sec79_eed.cc.o.d"
  "bench_sec79_eed"
  "bench_sec79_eed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec79_eed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
