# Empty compiler generated dependencies file for bench_sec79_eed.
# This may be replaced when dependencies are built.
