# Empty compiler generated dependencies file for bench_fig7_q.
# This may be replaced when dependencies are built.
