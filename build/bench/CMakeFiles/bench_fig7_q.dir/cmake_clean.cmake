file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_q.dir/bench_fig7_q.cc.o"
  "CMakeFiles/bench_fig7_q.dir/bench_fig7_q.cc.o.d"
  "bench_fig7_q"
  "bench_fig7_q.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_q.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
