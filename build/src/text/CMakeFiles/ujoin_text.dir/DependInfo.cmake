
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/alphabet.cc" "src/text/CMakeFiles/ujoin_text.dir/alphabet.cc.o" "gcc" "src/text/CMakeFiles/ujoin_text.dir/alphabet.cc.o.d"
  "/root/repo/src/text/edit_distance.cc" "src/text/CMakeFiles/ujoin_text.dir/edit_distance.cc.o" "gcc" "src/text/CMakeFiles/ujoin_text.dir/edit_distance.cc.o.d"
  "/root/repo/src/text/frequency.cc" "src/text/CMakeFiles/ujoin_text.dir/frequency.cc.o" "gcc" "src/text/CMakeFiles/ujoin_text.dir/frequency.cc.o.d"
  "/root/repo/src/text/possible_worlds.cc" "src/text/CMakeFiles/ujoin_text.dir/possible_worlds.cc.o" "gcc" "src/text/CMakeFiles/ujoin_text.dir/possible_worlds.cc.o.d"
  "/root/repo/src/text/string_level.cc" "src/text/CMakeFiles/ujoin_text.dir/string_level.cc.o" "gcc" "src/text/CMakeFiles/ujoin_text.dir/string_level.cc.o.d"
  "/root/repo/src/text/uncertain_string.cc" "src/text/CMakeFiles/ujoin_text.dir/uncertain_string.cc.o" "gcc" "src/text/CMakeFiles/ujoin_text.dir/uncertain_string.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ujoin_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
