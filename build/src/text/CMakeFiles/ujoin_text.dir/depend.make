# Empty dependencies file for ujoin_text.
# This may be replaced when dependencies are built.
