file(REMOVE_RECURSE
  "libujoin_text.a"
)
