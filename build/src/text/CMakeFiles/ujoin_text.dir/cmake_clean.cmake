file(REMOVE_RECURSE
  "CMakeFiles/ujoin_text.dir/alphabet.cc.o"
  "CMakeFiles/ujoin_text.dir/alphabet.cc.o.d"
  "CMakeFiles/ujoin_text.dir/edit_distance.cc.o"
  "CMakeFiles/ujoin_text.dir/edit_distance.cc.o.d"
  "CMakeFiles/ujoin_text.dir/frequency.cc.o"
  "CMakeFiles/ujoin_text.dir/frequency.cc.o.d"
  "CMakeFiles/ujoin_text.dir/possible_worlds.cc.o"
  "CMakeFiles/ujoin_text.dir/possible_worlds.cc.o.d"
  "CMakeFiles/ujoin_text.dir/string_level.cc.o"
  "CMakeFiles/ujoin_text.dir/string_level.cc.o.d"
  "CMakeFiles/ujoin_text.dir/uncertain_string.cc.o"
  "CMakeFiles/ujoin_text.dir/uncertain_string.cc.o.d"
  "libujoin_text.a"
  "libujoin_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ujoin_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
