file(REMOVE_RECURSE
  "CMakeFiles/ujoin_verify.dir/compressed_trie.cc.o"
  "CMakeFiles/ujoin_verify.dir/compressed_trie.cc.o.d"
  "CMakeFiles/ujoin_verify.dir/compressed_verifier.cc.o"
  "CMakeFiles/ujoin_verify.dir/compressed_verifier.cc.o.d"
  "CMakeFiles/ujoin_verify.dir/instance_trie.cc.o"
  "CMakeFiles/ujoin_verify.dir/instance_trie.cc.o.d"
  "CMakeFiles/ujoin_verify.dir/verifier.cc.o"
  "CMakeFiles/ujoin_verify.dir/verifier.cc.o.d"
  "libujoin_verify.a"
  "libujoin_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ujoin_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
