
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/verify/compressed_trie.cc" "src/verify/CMakeFiles/ujoin_verify.dir/compressed_trie.cc.o" "gcc" "src/verify/CMakeFiles/ujoin_verify.dir/compressed_trie.cc.o.d"
  "/root/repo/src/verify/compressed_verifier.cc" "src/verify/CMakeFiles/ujoin_verify.dir/compressed_verifier.cc.o" "gcc" "src/verify/CMakeFiles/ujoin_verify.dir/compressed_verifier.cc.o.d"
  "/root/repo/src/verify/instance_trie.cc" "src/verify/CMakeFiles/ujoin_verify.dir/instance_trie.cc.o" "gcc" "src/verify/CMakeFiles/ujoin_verify.dir/instance_trie.cc.o.d"
  "/root/repo/src/verify/verifier.cc" "src/verify/CMakeFiles/ujoin_verify.dir/verifier.cc.o" "gcc" "src/verify/CMakeFiles/ujoin_verify.dir/verifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/text/CMakeFiles/ujoin_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ujoin_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
