file(REMOVE_RECURSE
  "libujoin_verify.a"
)
