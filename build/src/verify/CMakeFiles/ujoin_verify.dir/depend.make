# Empty dependencies file for ujoin_verify.
# This may be replaced when dependencies are built.
