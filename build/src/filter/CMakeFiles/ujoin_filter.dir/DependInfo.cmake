
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/filter/cdf_filter.cc" "src/filter/CMakeFiles/ujoin_filter.dir/cdf_filter.cc.o" "gcc" "src/filter/CMakeFiles/ujoin_filter.dir/cdf_filter.cc.o.d"
  "/root/repo/src/filter/event_dp.cc" "src/filter/CMakeFiles/ujoin_filter.dir/event_dp.cc.o" "gcc" "src/filter/CMakeFiles/ujoin_filter.dir/event_dp.cc.o.d"
  "/root/repo/src/filter/freq_filter.cc" "src/filter/CMakeFiles/ujoin_filter.dir/freq_filter.cc.o" "gcc" "src/filter/CMakeFiles/ujoin_filter.dir/freq_filter.cc.o.d"
  "/root/repo/src/filter/partition.cc" "src/filter/CMakeFiles/ujoin_filter.dir/partition.cc.o" "gcc" "src/filter/CMakeFiles/ujoin_filter.dir/partition.cc.o.d"
  "/root/repo/src/filter/probe_set.cc" "src/filter/CMakeFiles/ujoin_filter.dir/probe_set.cc.o" "gcc" "src/filter/CMakeFiles/ujoin_filter.dir/probe_set.cc.o.d"
  "/root/repo/src/filter/qgram_filter.cc" "src/filter/CMakeFiles/ujoin_filter.dir/qgram_filter.cc.o" "gcc" "src/filter/CMakeFiles/ujoin_filter.dir/qgram_filter.cc.o.d"
  "/root/repo/src/filter/selection.cc" "src/filter/CMakeFiles/ujoin_filter.dir/selection.cc.o" "gcc" "src/filter/CMakeFiles/ujoin_filter.dir/selection.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/text/CMakeFiles/ujoin_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ujoin_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
