# Empty compiler generated dependencies file for ujoin_filter.
# This may be replaced when dependencies are built.
