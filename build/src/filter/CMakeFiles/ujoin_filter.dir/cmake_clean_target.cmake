file(REMOVE_RECURSE
  "libujoin_filter.a"
)
