file(REMOVE_RECURSE
  "CMakeFiles/ujoin_filter.dir/cdf_filter.cc.o"
  "CMakeFiles/ujoin_filter.dir/cdf_filter.cc.o.d"
  "CMakeFiles/ujoin_filter.dir/event_dp.cc.o"
  "CMakeFiles/ujoin_filter.dir/event_dp.cc.o.d"
  "CMakeFiles/ujoin_filter.dir/freq_filter.cc.o"
  "CMakeFiles/ujoin_filter.dir/freq_filter.cc.o.d"
  "CMakeFiles/ujoin_filter.dir/partition.cc.o"
  "CMakeFiles/ujoin_filter.dir/partition.cc.o.d"
  "CMakeFiles/ujoin_filter.dir/probe_set.cc.o"
  "CMakeFiles/ujoin_filter.dir/probe_set.cc.o.d"
  "CMakeFiles/ujoin_filter.dir/qgram_filter.cc.o"
  "CMakeFiles/ujoin_filter.dir/qgram_filter.cc.o.d"
  "CMakeFiles/ujoin_filter.dir/selection.cc.o"
  "CMakeFiles/ujoin_filter.dir/selection.cc.o.d"
  "libujoin_filter.a"
  "libujoin_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ujoin_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
