file(REMOVE_RECURSE
  "libujoin_eed.a"
)
