# Empty dependencies file for ujoin_eed.
# This may be replaced when dependencies are built.
