file(REMOVE_RECURSE
  "CMakeFiles/ujoin_eed.dir/eed.cc.o"
  "CMakeFiles/ujoin_eed.dir/eed.cc.o.d"
  "libujoin_eed.a"
  "libujoin_eed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ujoin_eed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
