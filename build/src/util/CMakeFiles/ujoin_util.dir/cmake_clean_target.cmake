file(REMOVE_RECURSE
  "libujoin_util.a"
)
