# Empty compiler generated dependencies file for ujoin_util.
# This may be replaced when dependencies are built.
