file(REMOVE_RECURSE
  "CMakeFiles/ujoin_util.dir/serde.cc.o"
  "CMakeFiles/ujoin_util.dir/serde.cc.o.d"
  "CMakeFiles/ujoin_util.dir/status.cc.o"
  "CMakeFiles/ujoin_util.dir/status.cc.o.d"
  "libujoin_util.a"
  "libujoin_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ujoin_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
