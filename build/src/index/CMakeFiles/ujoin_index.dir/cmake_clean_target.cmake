file(REMOVE_RECURSE
  "libujoin_index.a"
)
