file(REMOVE_RECURSE
  "CMakeFiles/ujoin_index.dir/segment_index.cc.o"
  "CMakeFiles/ujoin_index.dir/segment_index.cc.o.d"
  "libujoin_index.a"
  "libujoin_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ujoin_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
