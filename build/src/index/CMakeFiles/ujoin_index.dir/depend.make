# Empty dependencies file for ujoin_index.
# This may be replaced when dependencies are built.
