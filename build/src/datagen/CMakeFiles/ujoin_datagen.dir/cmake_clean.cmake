file(REMOVE_RECURSE
  "CMakeFiles/ujoin_datagen.dir/datagen.cc.o"
  "CMakeFiles/ujoin_datagen.dir/datagen.cc.o.d"
  "libujoin_datagen.a"
  "libujoin_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ujoin_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
