file(REMOVE_RECURSE
  "libujoin_datagen.a"
)
