# Empty dependencies file for ujoin_datagen.
# This may be replaced when dependencies are built.
