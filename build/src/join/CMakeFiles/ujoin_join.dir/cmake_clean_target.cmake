file(REMOVE_RECURSE
  "libujoin_join.a"
)
