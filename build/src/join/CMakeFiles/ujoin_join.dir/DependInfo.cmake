
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/join/cross_join.cc" "src/join/CMakeFiles/ujoin_join.dir/cross_join.cc.o" "gcc" "src/join/CMakeFiles/ujoin_join.dir/cross_join.cc.o.d"
  "/root/repo/src/join/join_stats.cc" "src/join/CMakeFiles/ujoin_join.dir/join_stats.cc.o" "gcc" "src/join/CMakeFiles/ujoin_join.dir/join_stats.cc.o.d"
  "/root/repo/src/join/search.cc" "src/join/CMakeFiles/ujoin_join.dir/search.cc.o" "gcc" "src/join/CMakeFiles/ujoin_join.dir/search.cc.o.d"
  "/root/repo/src/join/self_join.cc" "src/join/CMakeFiles/ujoin_join.dir/self_join.cc.o" "gcc" "src/join/CMakeFiles/ujoin_join.dir/self_join.cc.o.d"
  "/root/repo/src/join/string_level_join.cc" "src/join/CMakeFiles/ujoin_join.dir/string_level_join.cc.o" "gcc" "src/join/CMakeFiles/ujoin_join.dir/string_level_join.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/index/CMakeFiles/ujoin_index.dir/DependInfo.cmake"
  "/root/repo/build/src/filter/CMakeFiles/ujoin_filter.dir/DependInfo.cmake"
  "/root/repo/build/src/verify/CMakeFiles/ujoin_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/ujoin_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ujoin_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
