# Empty dependencies file for ujoin_join.
# This may be replaced when dependencies are built.
