file(REMOVE_RECURSE
  "CMakeFiles/ujoin_join.dir/cross_join.cc.o"
  "CMakeFiles/ujoin_join.dir/cross_join.cc.o.d"
  "CMakeFiles/ujoin_join.dir/join_stats.cc.o"
  "CMakeFiles/ujoin_join.dir/join_stats.cc.o.d"
  "CMakeFiles/ujoin_join.dir/search.cc.o"
  "CMakeFiles/ujoin_join.dir/search.cc.o.d"
  "CMakeFiles/ujoin_join.dir/self_join.cc.o"
  "CMakeFiles/ujoin_join.dir/self_join.cc.o.d"
  "CMakeFiles/ujoin_join.dir/string_level_join.cc.o"
  "CMakeFiles/ujoin_join.dir/string_level_join.cc.o.d"
  "libujoin_join.a"
  "libujoin_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ujoin_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
