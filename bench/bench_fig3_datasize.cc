// Figure 3 — effect of dataset size |S| on the dblp dataset.
//
// Sweeps the collection size for the four algorithm variants QFCT, QCT,
// QFT, FCT and reports filtering time and total join time.  The paper's
// headline: q-gram-indexed variants (QFCT/QCT/QFT) keep filtering cheap
// while FCT's per-pair filtering grows quadratically; QFCT/QCT scale best
// overall because CDF bounds cap the number of expensive verifications.

#include <benchmark/benchmark.h>

#include "bench_report.h"
#include "bench_util.h"
#include "datagen/datagen.h"
#include "join/self_join.h"
#include "util/check.h"

namespace {

using namespace ujoin;
using ujoin::bench::DblpConfig;
using ujoin::bench::Scaled;
using ujoin::bench::VariantName;
using ujoin::bench::WithVariant;

const Dataset& CachedDataset(int size) {
  static std::map<int, Dataset> cache;
  auto it = cache.find(size);
  if (it == cache.end()) {
    it = cache.emplace(size, GenerateDataset(DblpConfig::Data(size))).first;
  }
  return it->second;
}

void BM_Fig3_DataSize(benchmark::State& state) {
  const int variant = static_cast<int>(state.range(0));
  const int size = Scaled(static_cast<int>(state.range(1)));
  const Dataset& data = CachedDataset(size);
  const JoinOptions options =
      WithVariant(DblpConfig::Join(), VariantName(variant));
  JoinStats stats;
  for (auto _ : state) {
    Result<SelfJoinResult> out =
        SimilaritySelfJoin(data.strings, data.alphabet, options);
    UJOIN_CHECK(out.ok());
    stats = out->stats;
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel(std::string(VariantName(variant)) + "/|S|=" +
                 std::to_string(size));
  state.counters["filter_ms"] =
      (stats.FilterTime() + stats.index_build_time) * 1e3;
  state.counters["total_ms"] = stats.total_time * 1e3;
  state.counters["verify_ms"] = stats.verify_time * 1e3;
  state.counters["verified"] = static_cast<double>(stats.verified_pairs);
  state.counters["results"] = static_cast<double>(stats.result_pairs);
}

BENCHMARK(BM_Fig3_DataSize)
    ->ArgsProduct({{0, 1, 2, 3}, {500, 1000, 2000, 4000}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  return ujoin::bench::RunReportMain(argc, argv, "bench_fig3_datasize",
                                     "BENCH_fig3_datasize.json");
}
