// Figure 5 — effect of the probability threshold τ.
//
// Sweeps τ for QFCT on both datasets and reports query time plus the
// CDF-bound decision counts the paper plots: candidates rejected by the
// q-gram stage, accepted by the CDF lower bound, and rejected by the CDF
// upper bound.  Expected trends: larger τ makes the q-gram probabilistic
// pruning and the CDF upper bound more selective while the CDF lower bound
// accepts less; query time is flat over a wide range and improves for
// large τ.

#include <map>
#include <string>
#include <utility>

#include <benchmark/benchmark.h>

#include "bench_report.h"
#include "bench_util.h"
#include "datagen/datagen.h"
#include "join/self_join.h"
#include "util/check.h"

namespace {

using namespace ujoin;
using ujoin::bench::DblpConfig;
using ujoin::bench::ProteinConfig;
using ujoin::bench::Scaled;

const Dataset& CachedDataset(bool protein) {
  static const Dataset dblp = GenerateDataset(DblpConfig::Data(Scaled(1500)));
  // k = 4 verification on long protein strings dominates at mid/large τ;
  // a smaller collection with at most 4 uncertain positions keeps every
  // sweep point in seconds while preserving the τ trends.
  static const Dataset prot = [] {
    DatasetOptions opt = ProteinConfig::Data(Scaled(500));
    opt.max_uncertain_positions = 4;
    return GenerateDataset(opt);
  }();
  return protein ? prot : dblp;
}

void BM_Fig5_Tau(benchmark::State& state) {
  const bool protein = state.range(0) != 0;
  const double tau = static_cast<double>(state.range(1)) / 1000.0;
  const Dataset& data = CachedDataset(protein);
  JoinOptions options = protein ? ProteinConfig::Join() : DblpConfig::Join();
  options.tau = tau;
  JoinStats stats;
  for (auto _ : state) {
    Result<SelfJoinResult> out =
        SimilaritySelfJoin(data.strings, data.alphabet, options);
    UJOIN_CHECK(out.ok());
    stats = out->stats;
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel(std::string(protein ? "protein" : "dblp") +
                 "/tau=" + std::to_string(tau));
  state.counters["total_ms"] = stats.total_time * 1e3;
  state.counters["qgram_pruned"] = static_cast<double>(
      stats.length_compatible_pairs - stats.qgram_candidates);
  state.counters["cdf_accepted"] = static_cast<double>(stats.cdf_accepted);
  state.counters["cdf_rejected"] = static_cast<double>(stats.cdf_rejected);
  state.counters["verified"] = static_cast<double>(stats.verified_pairs);
  state.counters["results"] = static_cast<double>(stats.result_pairs);
}

BENCHMARK(BM_Fig5_Tau)
    ->ArgsProduct({{0, 1}, {1, 10, 100, 200, 400}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  return ujoin::bench::RunReportMain(argc, argv, "bench_fig5_tau",
                                     "BENCH_fig5_tau.json");
}
