#ifndef UJOIN_BENCH_BENCH_REPORT_H_
#define UJOIN_BENCH_BENCH_REPORT_H_

// Run-report envelope adapter for google-benchmark harnesses.
//
// The plain-executable benches (bench_obs_overhead, bench_index_probe,
// bench_selfjoin_scaling) write BENCH_*.json in the shared ujoin.run_report
// envelope directly.  Benches built on google-benchmark get the same
// artefact through RunReportMain: a ConsoleReporter subclass keeps the
// familiar console table and captures every finished run; after
// RunSpecifiedBenchmarks the captured runs are rendered into the envelope's
// "results" section (one entry per run: name, label, iterations, per-
// iteration real/cpu time in the bench's declared unit, and every user
// counter) and written via obs::WriteRunReport.
//
//   int main(int argc, char** argv) {
//     return ujoin::bench::RunReportMain(argc, argv, "bench_fig5_tau",
//                                        "BENCH_fig5_tau.json");
//   }
//
// UJOIN_BENCH_REPORT_OUT overrides the output path (the google-benchmark
// flag parser owns argv, so the override rides in the environment like
// UJOIN_BENCH_SCALE does).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "obs/json_writer.h"
#include "obs/report.h"
#include "util/status.h"

namespace ujoin {
namespace bench {

/// Console reporter that additionally captures every run for the
/// ujoin.run_report "results" section.
class RunReportReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& report) override {
    benchmark::ConsoleReporter::ReportRuns(report);
    for (const Run& run : report) {
      if (run.error_occurred) {
        any_errors_ = true;
        continue;
      }
      runs_.push_back(run);
    }
  }

  bool any_errors() const { return any_errors_; }
  size_t num_runs() const { return runs_.size(); }

  /// Renders the captured runs as a JSON array, one object per run, in
  /// execution order.  Iteration counts and counters are exact; times are
  /// per-iteration and use the benchmark's declared time unit, so the
  /// bytes are deterministic given identical timings.
  std::string ResultsJson() const {
    obs::JsonWriter w;
    w.BeginArray();
    for (const Run& run : runs_) {
      w.BeginObject();
      w.Key("name");
      w.String(run.benchmark_name());
      if (!run.report_label.empty()) {
        w.Key("label");
        w.String(run.report_label);
      }
      if (run.run_type == Run::RT_Aggregate) {
        w.Key("aggregate");
        w.String(run.aggregate_name);
      }
      w.Key("iterations");
      w.Int(static_cast<int64_t>(run.iterations));
      w.Key("time_unit");
      w.String(benchmark::GetTimeUnitString(run.time_unit));
      w.Key("real_time");
      w.Double(run.GetAdjustedRealTime());
      w.Key("cpu_time");
      w.Double(run.GetAdjustedCPUTime());
      w.Key("counters");
      w.BeginObject();
      for (const auto& [name, counter] : run.counters) {
        w.Key(name);
        w.Double(static_cast<double>(counter));
      }
      w.EndObject();
      w.EndObject();
    }
    w.EndArray();
    return w.TakeString();
  }

 private:
  std::vector<Run> runs_;
  bool any_errors_ = false;
};

/// Drop-in replacement for BENCHMARK_MAIN()'s body: runs the registered
/// benchmarks with a RunReportReporter and writes `default_out` (or
/// $UJOIN_BENCH_REPORT_OUT) in the ujoin.run_report envelope.
inline int RunReportMain(int argc, char** argv, const char* command,
                         const char* default_out) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;

  RunReportReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (reporter.any_errors()) {
    std::fprintf(stderr, "%s: a benchmark reported an error\n", command);
    return 1;
  }
  const char* env_out = std::getenv("UJOIN_BENCH_REPORT_OUT");
  const std::string out_path = env_out != nullptr ? env_out : default_out;
  const Status status = obs::WriteRunReport(
      out_path, command, {{"results", reporter.ResultsJson()}});
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", command, status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%zu runs)\n", out_path.c_str(),
              reporter.num_runs());
  return 0;
}

}  // namespace bench
}  // namespace ujoin

#endif  // UJOIN_BENCH_BENCH_REPORT_H_
