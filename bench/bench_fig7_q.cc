// Figure 7 — effect of the q-gram length q.
//
// Sweeps q ∈ {2..6} on both datasets and reports the quantities the paper
// plots: q-gram filtering time (falls with q: fewer segments), peak
// inverted-index memory (rises with q: more instances per segment),
// candidates surviving the q-gram stage (effectiveness degrades at large q
// for uncertain strings), and total join time (uni-valley: q = 3 or 4 is
// the sweet spot).

#include <string>

#include <benchmark/benchmark.h>

#include "bench_report.h"
#include "bench_util.h"
#include "datagen/datagen.h"
#include "join/self_join.h"
#include "util/check.h"

namespace {

using namespace ujoin;
using ujoin::bench::DataBytes;
using ujoin::bench::DblpConfig;
using ujoin::bench::ProteinConfig;
using ujoin::bench::Scaled;

const Dataset& CachedDataset(bool protein) {
  static const Dataset dblp = GenerateDataset(DblpConfig::Data(Scaled(1500)));
  static const Dataset prot =
      GenerateDataset(ProteinConfig::Data(Scaled(800)));
  return protein ? prot : dblp;
}

void BM_Fig7_Q(benchmark::State& state) {
  const bool protein = state.range(0) != 0;
  const int q = static_cast<int>(state.range(1));
  const Dataset& data = CachedDataset(protein);
  JoinOptions options = protein ? ProteinConfig::Join() : DblpConfig::Join();
  options.q = q;
  JoinStats stats;
  for (auto _ : state) {
    Result<SelfJoinResult> out =
        SimilaritySelfJoin(data.strings, data.alphabet, options);
    UJOIN_CHECK(out.ok());
    stats = out->stats;
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel(std::string(protein ? "protein" : "dblp") +
                 "/q=" + std::to_string(q));
  state.counters["qgram_filter_ms"] =
      (stats.qgram_time + stats.index_build_time) * 1e3;
  state.counters["total_ms"] = stats.total_time * 1e3;
  state.counters["cand_after_qgram"] =
      static_cast<double>(stats.qgram_candidates);
  state.counters["peak_index_MB"] =
      static_cast<double>(stats.peak_index_memory) / (1024.0 * 1024.0);
  state.counters["index_vs_data"] =
      static_cast<double>(stats.peak_index_memory) /
      static_cast<double>(DataBytes(data.strings));
}

BENCHMARK(BM_Fig7_Q)
    ->ArgsProduct({{0, 1}, {2, 3, 4, 5, 6}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  return ujoin::bench::RunReportMain(argc, argv, "bench_fig7_q",
                                     "BENCH_fig7_q.json");
}
