// Overhead gate for the observability subsystem (src/obs/): the same
// self-join is run with recording off and on, interleaved best-of-N, and
// the bench fails if recording costs more than the budget (2% by default;
// override with UJOIN_OBS_OVERHEAD_GATE, a fraction;
// UJOIN_OBS_OVERHEAD_REPS overrides the repetition count).
//
// Recording on means a Recorder attached via JoinOptions::metrics — the
// histogram/counter path that is wired into every probe — plus the global
// flight recorder live (its always-on default), so the gate covers the
// black-box lifecycle events too; the off leg flips the flight recorder's
// kill switch, reducing every flight macro to one relaxed load.  Trace
// spans are excluded: span collection allocates by design and is a
// debugging mode outside the steady-state budget (DESIGN.md
// "Observability").
//
// The bench also proves recording is inert: pairs and merged counters of
// the instrumented run must equal the uninstrumented run exactly.
//
// Usage: bench_obs_overhead [output.json]
//   Writes BENCH_obs.json (or the given path) in the shared
//   ujoin.run_report envelope.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "datagen/datagen.h"
#include "join/self_join.h"
#include "obs/flight_recorder.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "util/timer.h"

namespace {

using ujoin::Dataset;
using ujoin::GenerateDataset;
using ujoin::JoinOptions;
using ujoin::Result;
using ujoin::SelfJoinResult;
using ujoin::SimilaritySelfJoin;
using ujoin::Timer;

double GateFromEnv() {
  const char* env = std::getenv("UJOIN_OBS_OVERHEAD_GATE");
  if (env == nullptr) return 0.02;
  const double v = std::atof(env);
  return v > 0.0 ? v : 0.02;
}

int RepsFromEnv() {
  const char* env = std::getenv("UJOIN_OBS_OVERHEAD_REPS");
  if (env == nullptr) return 7;
  const int v = std::atoi(env);
  return v > 0 ? v : 7;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_obs.json";
  const double gate = GateFromEnv();

  const Dataset dataset =
      GenerateDataset(ujoin::bench::DblpConfig::Data(ujoin::bench::Scaled(800)));
  JoinOptions options = ujoin::bench::DblpConfig::Join();
  options.threads = 1;  // single-threaded: the cleanest per-probe cost signal

  // Warm-up run (also the baseline result for the identity checks).
  Result<SelfJoinResult> baseline =
      SimilaritySelfJoin(dataset.strings, dataset.alphabet, options);
  if (!baseline.ok()) {
    std::fprintf(stderr, "FAIL: %s\n",
                 baseline.status().ToString().c_str());
    return 1;
  }

  // Interleaved best-of-N: alternating the contestants per repetition
  // spreads machine noise over both instead of biasing one; the minimum is
  // the low-noise estimate on a shared/1-CPU box.
  const int reps = RepsFromEnv();
  double off_seconds = 1e300;
  double on_seconds = 1e300;
  ujoin::obs::Recorder recorder;
  std::vector<ujoin::JoinPair> instrumented_pairs;
  ujoin::JoinStats instrumented_stats;
  ujoin::obs::FlightRecorder* flight = ujoin::obs::GlobalFlightRecorder();
  for (int rep = 0; rep < reps; ++rep) {
    {
      flight->set_enabled(false);
      Timer timer;
      Result<SelfJoinResult> off =
          SimilaritySelfJoin(dataset.strings, dataset.alphabet, options);
      off_seconds = std::min(off_seconds, timer.ElapsedSeconds());
      flight->set_enabled(true);
      if (!off.ok()) return 1;
    }
    {
      JoinOptions observed = options;
      recorder.Clear();
      observed.metrics = &recorder;
      Timer timer;
      Result<SelfJoinResult> on =
          SimilaritySelfJoin(dataset.strings, dataset.alphabet, observed);
      on_seconds = std::min(on_seconds, timer.ElapsedSeconds());
      if (!on.ok()) return 1;
      instrumented_pairs = std::move(on->pairs);
      instrumented_stats = on->stats;
    }
  }

  // Identity: recording must not change a single pair or counter.
  bool identical = instrumented_pairs.size() == baseline->pairs.size();
  for (size_t i = 0; identical && i < instrumented_pairs.size(); ++i) {
    identical = instrumented_pairs[i].lhs == baseline->pairs[i].lhs &&
                instrumented_pairs[i].rhs == baseline->pairs[i].rhs &&
                instrumented_pairs[i].probability ==
                    baseline->pairs[i].probability &&
                instrumented_pairs[i].exact == baseline->pairs[i].exact;
  }
  identical = identical &&
              instrumented_stats.verified_pairs ==
                  baseline->stats.verified_pairs &&
              instrumented_stats.qgram_candidates ==
                  baseline->stats.qgram_candidates &&
              instrumented_stats.index_stats.postings_scanned ==
                  baseline->stats.index_stats.postings_scanned;
  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: instrumented join differs from uninstrumented\n");
    return 1;
  }

  const double overhead = on_seconds / off_seconds - 1.0;
  std::printf("self-join of %zu strings, best of %d:\n",
              dataset.strings.size(), reps);
  std::printf("  metrics off: %8.4f s\n", off_seconds);
  std::printf("  metrics on:  %8.4f s\n", on_seconds);
  std::printf("  overhead:    %+7.2f%% (gate: < %.1f%%)\n", overhead * 100.0,
              gate * 100.0);
  std::printf("  recorded: %lld probes, %lld verify samples\n",
              static_cast<long long>(
                  recorder.counter(ujoin::obs::Counter::kProbes)),
              static_cast<long long>(
                  recorder.hist(ujoin::obs::Hist::kVerifyLatencyNs).count()));
  std::printf("  flight: %d thread slots, %lld dropped\n",
              flight->slots_used(),
              static_cast<long long>(flight->dropped_events()));

  ujoin::obs::JsonWriter results;
  results.BeginObject();
  results.Key("collection_size");
  results.Int(static_cast<int64_t>(dataset.strings.size()));
  results.Key("reps");
  results.Int(reps);
  results.Key("metrics_off_seconds");
  results.Double(off_seconds);
  results.Key("metrics_on_seconds");
  results.Double(on_seconds);
  results.Key("overhead_fraction");
  results.Double(overhead);
  results.Key("overhead_gate");
  results.Double(gate);
  results.Key("result_pairs");
  results.Int(static_cast<int64_t>(instrumented_pairs.size()));
  results.EndObject();
  const ujoin::Status write_status = ujoin::obs::WriteRunReport(
      out_path, "bench_obs_overhead",
      {{"results", results.TakeString()}, {"metrics", recorder.ToJson()}});
  if (!write_status.ok()) {
    std::fprintf(stderr, "FAIL: %s\n", write_status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path);

  if (overhead >= gate) {
    std::fprintf(stderr,
                 "FAIL: metrics overhead %.2f%% exceeds the %.1f%% gate\n",
                 overhead * 100.0, gate * 100.0);
    return 1;
  }
  return 0;
}
