#ifndef UJOIN_BENCH_BENCH_UTIL_H_
#define UJOIN_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <string>
#include <vector>

#include "datagen/datagen.h"
#include "join/join_options.h"
#include "text/alphabet.h"
#include "text/uncertain_string.h"

namespace ujoin::bench {

/// Global scale factor for collection sizes, settable via the environment
/// variable UJOIN_BENCH_SCALE (default 1).  The paper joins 100K–500K
/// strings on a dedicated machine; the default configuration here is sized
/// for laptop-minutes while preserving every trend.  Multiply the scale to
/// approach the paper's sizes.
inline double ScaleFactor() {
  const char* env = std::getenv("UJOIN_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double v = std::atof(env);
  return v > 0.0 ? v : 1.0;
}

inline int Scaled(int base) {
  const double v = static_cast<double>(base) * ScaleFactor();
  return v < 1.0 ? 1 : static_cast<int>(v);
}

/// The paper's dblp configuration (Section 7): |Σ| = 27, ~normal lengths,
/// avg ≈ 19, θ = 0.2, γ = 5, k = 2, τ = 0.1, q = 3.
struct DblpConfig {
  static DatasetOptions Data(int size, double theta = 0.2,
                             uint64_t seed = 42) {
    DatasetOptions opt;
    opt.kind = DatasetOptions::Kind::kNames;
    opt.size = size;
    opt.theta = theta;
    opt.gamma = 5;
    opt.seed = seed;
    // Cap uncertain positions so exact verification always fits the trie
    // node budget and stays laptop-fast (the paper similarly caps at 8 in
    // the string-length experiments).
    opt.max_uncertain_positions = 6;
    return opt;
  }
  static JoinOptions Join() { return JoinOptions::Qfct(2, 0.1, 3); }
};

/// The paper's protein configuration: |Σ| = 22, uniform lengths [20, 45],
/// θ = 0.1, γ = 5, k = 4, τ = 0.01, q = 3.
struct ProteinConfig {
  static DatasetOptions Data(int size, double theta = 0.1,
                             uint64_t seed = 43) {
    DatasetOptions opt;
    opt.kind = DatasetOptions::Kind::kProtein;
    opt.size = size;
    opt.theta = theta;
    opt.gamma = 5;
    opt.seed = seed;
    // Protein strings reach length 45 and join at k = 4, which makes
    // exact verification the dominant cost; 5^5 worlds keeps it fast.
    opt.max_uncertain_positions = 5;
    return opt;
  }
  static JoinOptions Join() { return JoinOptions::Qfct(4, 0.01, 3); }
};

/// Applies one of the paper's algorithm-variant names to a base option set.
inline JoinOptions WithVariant(JoinOptions base, const std::string& variant) {
  if (variant == "QFCT") return base;
  if (variant == "QCT") {
    base.use_freq_filter = false;
    return base;
  }
  if (variant == "QFT") {
    base.use_cdf_filter = false;
    return base;
  }
  if (variant == "FCT") {
    base.use_qgram_filter = false;
    return base;
  }
  return base;
}

inline const char* VariantName(int index) {
  static const char* kNames[] = {"QFCT", "QCT", "QFT", "FCT"};
  return kNames[index];
}

/// Raw size of a collection's string payloads, for index-size ratios.
inline size_t DataBytes(const std::vector<UncertainString>& strings) {
  size_t total = 0;
  for (const UncertainString& s : strings) total += s.MemoryUsage();
  return total;
}

}  // namespace ujoin::bench

#endif  // UJOIN_BENCH_BENCH_UTIL_H_
