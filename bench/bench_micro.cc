// Micro-benchmarks for the component costs the paper's analysis sections
// discuss: thresholded edit distance, the event DP of Theorem 2, probe-set
// construction (α_x inputs), frequency-summary construction and Theorem 3
// evaluation, CDF-bound DP, and instance-trie construction.

#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_report.h"
#include "bench_util.h"
#include "datagen/datagen.h"
#include "filter/cdf_filter.h"
#include "filter/event_dp.h"
#include "filter/freq_filter.h"
#include "filter/probe_set.h"
#include "filter/qgram_filter.h"
#include "text/edit_distance.h"
#include "util/check.h"
#include "util/rng.h"
#include "verify/instance_trie.h"

namespace {

using namespace ujoin;
using ujoin::bench::DblpConfig;

const Dataset& CachedDataset() {
  static const Dataset data = GenerateDataset(DblpConfig::Data(500));
  return data;
}

void BM_BoundedEditDistance(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Rng rng(1);
  const Alphabet names = Alphabet::Names();
  std::vector<std::pair<std::string, std::string>> pairs;
  for (int i = 0; i < 256; ++i) {
    std::string a(24, 'a');
    for (char& c : a) c = names.SymbolAt(static_cast<int>(rng.Uniform(26)));
    std::string b = a;
    for (int e = 0; e < k + 1; ++e) {
      b[rng.Uniform(b.size())] = names.SymbolAt(static_cast<int>(rng.Uniform(26)));
    }
    pairs.emplace_back(std::move(a), std::move(b));
  }
  int64_t sum = 0;
  for (auto _ : state) {
    for (const auto& [a, b] : pairs) sum += BoundedEditDistance(a, b, k);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_BoundedEditDistance)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_EventCountDp(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  Rng rng(2);
  std::vector<double> alphas;
  for (int i = 0; i < m; ++i) alphas.push_back(rng.UniformDouble());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ProbAtLeastEvents(alphas, m / 2));
  }
}
BENCHMARK(BM_EventCountDp)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_BuildProbeSet(benchmark::State& state) {
  const Dataset& data = CachedDataset();
  const int k = 2, q = 3;
  size_t idx = 0;
  for (auto _ : state) {
    const UncertainString& r = data.strings[idx++ % data.strings.size()];
    if (r.length() <= q) continue;
    Result<std::vector<ProbeSubstring>> set = BuildProbeSet(
        r, r.length(), Segment{r.length() / 2, q}, k, ProbeSetOptions{});
    UJOIN_CHECK(set.ok());
    benchmark::DoNotOptimize(set);
  }
}
BENCHMARK(BM_BuildProbeSet);

void BM_FrequencySummaryBuild(benchmark::State& state) {
  const Dataset& data = CachedDataset();
  size_t idx = 0;
  for (auto _ : state) {
    const FrequencySummary summary = FrequencySummary::Build(
        data.strings[idx++ % data.strings.size()], data.alphabet);
    benchmark::DoNotOptimize(summary);
  }
}
BENCHMARK(BM_FrequencySummaryBuild);

void BM_FreqChebyshev(benchmark::State& state) {
  const Dataset& data = CachedDataset();
  std::vector<FrequencySummary> summaries;
  for (size_t i = 0; i < 64; ++i) {
    summaries.push_back(
        FrequencySummary::Build(data.strings[i], data.alphabet));
  }
  size_t idx = 0;
  for (auto _ : state) {
    const FrequencySummary& a = summaries[idx % summaries.size()];
    const FrequencySummary& b = summaries[(idx + 1) % summaries.size()];
    ++idx;
    benchmark::DoNotOptimize(FreqChebyshevBound(a, b, 2));
  }
}
BENCHMARK(BM_FreqChebyshev);

void BM_CdfBounds(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const Dataset& data = CachedDataset();
  size_t idx = 0;
  for (auto _ : state) {
    const UncertainString& r = data.strings[idx % data.strings.size()];
    const UncertainString& s = data.strings[(idx + 1) % data.strings.size()];
    ++idx;
    benchmark::DoNotOptimize(ComputeCdfBounds(r, s, k));
  }
}
BENCHMARK(BM_CdfBounds)->Arg(1)->Arg(2)->Arg(4);

void BM_InstanceTrieBuild(benchmark::State& state) {
  const Dataset& data = CachedDataset();
  size_t idx = 0;
  for (auto _ : state) {
    Result<InstanceTrie> trie =
        InstanceTrie::Build(data.strings[idx++ % data.strings.size()]);
    UJOIN_CHECK(trie.ok());
    benchmark::DoNotOptimize(trie);
  }
}
BENCHMARK(BM_InstanceTrieBuild);

void BM_PairwiseQGramFilter(benchmark::State& state) {
  const Dataset& data = CachedDataset();
  QGramOptions options;
  options.k = 2;
  options.q = 3;
  size_t idx = 0;
  for (auto _ : state) {
    const UncertainString& r = data.strings[idx % data.strings.size()];
    const UncertainString& s = data.strings[(idx + 7) % data.strings.size()];
    ++idx;
    Result<QGramFilterOutcome> out = EvaluateQGramFilter(r, s, options);
    UJOIN_CHECK(out.ok());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_PairwiseQGramFilter);

}  // namespace

int main(int argc, char** argv) {
  return ujoin::bench::RunReportMain(argc, argv, "bench_micro",
                                     "BENCH_micro.json");
}
