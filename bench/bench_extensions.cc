// Benchmarks for the library's extensions beyond the paper: the
// string-level model's join, the threaded cross join, parallel batch
// search, and index persistence.

#include <cstdio>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_report.h"
#include "bench_util.h"
#include "datagen/datagen.h"
#include "join/cross_join.h"
#include "join/search.h"
#include "join/self_join.h"
#include "join/string_level_join.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace ujoin;
using ujoin::bench::DblpConfig;
using ujoin::bench::Scaled;

const Dataset& CachedDataset() {
  static const Dataset data = [] {
    DatasetOptions opt = DblpConfig::Data(Scaled(800));
    opt.max_uncertain_positions = 4;  // string-level pdfs enumerate worlds
    return GenerateDataset(opt);
  }();
  return data;
}

// Smaller slice for the string-level comparison: the explicit-pdf join is
// quadratic in pairs with per-pair world-pair enumeration.
const Dataset& SmallDataset() {
  static const Dataset data = [] {
    DatasetOptions opt = DblpConfig::Data(Scaled(300));
    opt.max_uncertain_positions = 3;
    return GenerateDataset(opt);
  }();
  return data;
}

// Character-level QFCT join vs the explicit-pdf string-level join on the
// same logical data: the price of losing the factorized representation.
void BM_Ext_CharacterLevelJoin(benchmark::State& state) {
  const Dataset& data = SmallDataset();
  JoinStats stats;
  for (auto _ : state) {
    Result<SelfJoinResult> out =
        SimilaritySelfJoin(data.strings, data.alphabet, DblpConfig::Join());
    UJOIN_CHECK(out.ok());
    stats = out->stats;
    benchmark::DoNotOptimize(out);
  }
  state.counters["results"] = static_cast<double>(stats.result_pairs);
}
BENCHMARK(BM_Ext_CharacterLevelJoin)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_Ext_StringLevelJoin(benchmark::State& state) {
  const Dataset& data = SmallDataset();
  static const std::vector<StringLevelUncertainString> collection = [] {
    std::vector<StringLevelUncertainString> out;
    for (const UncertainString& s : SmallDataset().strings) {
      Result<StringLevelUncertainString> sl =
          StringLevelUncertainString::FromCharacterLevel(s);
      UJOIN_CHECK(sl.ok());
      out.push_back(std::move(sl).value());
    }
    return out;
  }();
  StringLevelJoinOptions options;
  options.k = DblpConfig::Join().k;
  options.tau = DblpConfig::Join().tau;
  size_t results = 0;
  for (auto _ : state) {
    Result<SelfJoinResult> out =
        StringLevelSelfJoin(collection, data.alphabet, options);
    UJOIN_CHECK(out.ok());
    results = out->pairs.size();
    benchmark::DoNotOptimize(out);
  }
  state.counters["results"] = static_cast<double>(results);
}
BENCHMARK(BM_Ext_StringLevelJoin)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

// Threaded cross join: left = noisy probes, right = the collection.
void BM_Ext_CrossJoinThreads(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const Dataset& data = CachedDataset();
  // Probes derived from the collection (noisy deterministic re-reads) so
  // the join has real matches and the search stage dominates the indexing.
  static const std::vector<UncertainString> probes = [] {
    std::vector<UncertainString> out;
    Rng rng(77);
    const Dataset& base = CachedDataset();
    while (out.size() < static_cast<size_t>(Scaled(2000))) {
      const UncertainString& origin =
          base.strings[rng.Uniform(base.strings.size())];
      std::string text = origin.MostLikelyInstance();
      text[rng.Uniform(text.size())] =
          base.alphabet.SymbolAt(static_cast<int>(rng.Uniform(26)));
      out.push_back(UncertainString::FromDeterministic(text));
    }
    return out;
  }();
  JoinOptions options = DblpConfig::Join();
  options.threads = threads;
  size_t results = 0;
  for (auto _ : state) {
    Result<CrossJoinResult> out =
        SimilarityJoin(probes, data.strings, data.alphabet, options);
    UJOIN_CHECK(out.ok());
    results = out->pairs.size();
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel("threads=" + std::to_string(threads));
  state.counters["results"] = static_cast<double>(results);
}
BENCHMARK(BM_Ext_CrossJoinThreads)
    ->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

// Index persistence: build vs save vs load.
void BM_Ext_Persistence(benchmark::State& state) {
  const Dataset& data = CachedDataset();
  const std::string path = "/tmp/ujoin_bench_persist.idx";
  double build_ms = 0, save_ms = 0, load_ms = 0;
  for (auto _ : state) {
    Timer build_timer;
    Result<SimilaritySearcher> searcher = SimilaritySearcher::Create(
        data.strings, data.alphabet, DblpConfig::Join());
    UJOIN_CHECK(searcher.ok());
    build_ms = build_timer.ElapsedSeconds() * 1e3;
    Timer save_timer;
    UJOIN_CHECK(searcher->Save(path).ok());
    save_ms = save_timer.ElapsedSeconds() * 1e3;
    Timer load_timer;
    Result<SimilaritySearcher> loaded =
        SimilaritySearcher::Load(path, data.alphabet);
    UJOIN_CHECK(loaded.ok());
    load_ms = load_timer.ElapsedSeconds() * 1e3;
    benchmark::DoNotOptimize(loaded);
  }
  std::remove(path.c_str());
  state.counters["build_ms"] = build_ms;
  state.counters["save_ms"] = save_ms;
  state.counters["load_ms"] = load_ms;
}
BENCHMARK(BM_Ext_Persistence)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  return ujoin::bench::RunReportMain(argc, argv, "bench_extensions",
                                     "BENCH_extensions.json");
}
