// Figure 8 — trie-based versus naive verification.
//
// Sweeps θ on both datasets, collects the candidate pairs that reach the
// verification stage of a QFCT join, and verifies all of them with (a) the
// trie-based verifier (Section 6.2, reusing T_R per probe) and (b) naive
// world-pair enumeration with prefix pruning.  Paper trend: both costs grow
// exponentially with θ, but the trie's on-demand exploration wins by an
// increasing margin as uncertainty rises; gains are smaller on protein data
// (longer strings, lower θ, smaller alphabet).

#include <map>
#include <string>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_report.h"
#include "bench_util.h"
#include "datagen/datagen.h"
#include "join/self_join.h"
#include "util/check.h"
#include "verify/verifier.h"

namespace {

using namespace ujoin;
using ujoin::bench::DblpConfig;
using ujoin::bench::ProteinConfig;
using ujoin::bench::Scaled;

struct VerificationWorkload {
  Dataset data;
  // Pairs that survived all filters and need exact verification.
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  int k;
};

const VerificationWorkload& CachedWorkload(bool protein, int theta_permille) {
  static std::map<std::pair<bool, int>, VerificationWorkload> cache;
  const auto key = std::make_pair(protein, theta_permille);
  auto it = cache.find(key);
  if (it == cache.end()) {
    const double theta = theta_permille / 1000.0;
    DatasetOptions data_opt = protein
                                  ? ProteinConfig::Data(Scaled(500), theta)
                                  : DblpConfig::Data(Scaled(800), theta);
    // Keep naive verification tractable: its cost is the product of the
    // world counts of both sides, so cap at 5^4 worlds per string and
    // verify a fixed sample of pairs below.
    data_opt.max_uncertain_positions = 4;
    VerificationWorkload workload{GenerateDataset(data_opt), {}, 0};
    JoinOptions join_opt =
        protein ? ProteinConfig::Join() : DblpConfig::Join();
    workload.k = join_opt.k;
    // Collect verification-stage pairs by running the join and keeping the
    // verified ones (accepted or not).
    join_opt.always_verify = true;
    Result<SelfJoinResult> out = SimilaritySelfJoin(
        workload.data.strings, workload.data.alphabet, join_opt);
    UJOIN_CHECK(out.ok());
    for (const JoinPair& p : out->pairs) {
      if (workload.pairs.size() >= 40) break;  // fixed per-config sample
      workload.pairs.push_back({p.lhs, p.rhs});
    }
    it = cache.emplace(key, std::move(workload)).first;
  }
  return it->second;
}

void RunVerify(benchmark::State& state, bool protein, bool use_trie) {
  const int theta_permille = static_cast<int>(state.range(0));
  const VerificationWorkload& workload =
      CachedWorkload(protein, theta_permille);
  VerifyStats stats;
  int64_t verified = 0;
  double checksum = 0.0;
  for (auto _ : state) {
    checksum = 0.0;
    for (const auto& [lhs, rhs] : workload.pairs) {
      const UncertainString& r = workload.data.strings[lhs];
      const UncertainString& s = workload.data.strings[rhs];
      Result<double> prob =
          use_trie
              ? TrieVerifyProbability(r, s, workload.k, VerifyOptions{}, &stats)
              : NaiveVerifyProbability(r, s, workload.k, VerifyOptions{},
                                       &stats);
      UJOIN_CHECK(prob.ok());
      checksum += prob.value();
      ++verified;
    }
    benchmark::DoNotOptimize(checksum);
  }
  state.SetLabel(std::string(protein ? "protein/" : "dblp/") +
                 (use_trie ? "trie" : "naive") +
                 "/theta=" + std::to_string(theta_permille / 1000.0));
  state.counters["pairs"] = static_cast<double>(workload.pairs.size());
  state.counters["world_pairs"] = static_cast<double>(stats.world_pairs);
  state.counters["s_nodes"] = static_cast<double>(stats.explored_s_nodes);
  state.counters["prob_sum"] = checksum;
}

void BM_Fig8_Dblp_Trie(benchmark::State& state) {
  RunVerify(state, false, true);
}
void BM_Fig8_Dblp_Naive(benchmark::State& state) {
  RunVerify(state, false, false);
}
void BM_Fig8_Protein_Trie(benchmark::State& state) {
  RunVerify(state, true, true);
}
void BM_Fig8_Protein_Naive(benchmark::State& state) {
  RunVerify(state, true, false);
}

BENCHMARK(BM_Fig8_Dblp_Trie)
    ->Arg(100)->Arg(200)->Arg(300)->Arg(400)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Fig8_Dblp_Naive)
    ->Arg(100)->Arg(200)->Arg(300)->Arg(400)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Fig8_Protein_Trie)
    ->Arg(50)->Arg(100)->Arg(150)->Arg(200)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Fig8_Protein_Naive)
    ->Arg(50)->Arg(100)->Arg(150)->Arg(200)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  return ujoin::bench::RunReportMain(argc, argv, "bench_fig8_verify",
                                     "BENCH_fig8_verify.json");
}
