// Micro-benchmark for the vectorized kernel layer (PR 7, util/simd.h):
// times each probe-path kernel in its scalar-reference form against the
// dispatched form the pipeline calls, verifies the two agree bit-for-bit on
// the benchmark workload (the differential ctest covers adversarial shapes;
// this re-checks the exact buffers being timed), and emits BENCH_simd.json
// in the ujoin.run_report envelope with per-kernel speedups and the filter
// funnel stage each kernel accelerates.
//
// Usage: bench_simd [output.json]
//   Exits non-zero if any kernel's dispatched output differs from scalar,
//   or — when the dispatcher selected a vector ISA — if the CDF-DP or
//   fingerprint-batch kernels fail their speedup gates (>= 1.05x).  On a
//   scalar-only machine (or a -DUJOIN_SIMD=off build) the speedup gates are
//   skipped: dispatched IS scalar there and the speedup is 1.0 by
//   construction.

#include <bit>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/json_writer.h"
#include "obs/report.h"
#include "util/rng.h"
#include "util/simd.h"
#include "util/timer.h"

namespace {

using ujoin::Rng;
using ujoin::Timer;
namespace simd = ujoin::simd;

// Representative shapes: the CDF band is k+1 wide (k = 8 stresses the
// vector body; production k is 1..8), the event-DP row is m+1 long with
// m up to ~32 segments, the frequency dot products run over pmf supports
// of a few dozen lanes, and a segment's probe batch holds a few dozen keys
// of the segment's fixed length.
constexpr int kCdfWidth = 9;
constexpr int kCdfCells = 512;
constexpr int kEventUpto = 16;
constexpr int kEventSteps = 512;
constexpr size_t kDotLanes = 48;
constexpr int kDotReps = 1024;
constexpr size_t kBatchKeys = 48;
constexpr size_t kBatchKeyLen = 3;
constexpr int kBatchReps = 256;

std::vector<double> RandomProbs(Rng* rng, size_t n) {
  std::vector<double> v(n);
  for (double& x : v) x = rng->UniformDouble();
  return v;
}

// One timed contestant: runs the workload `rounds` times, returns seconds,
// and accumulates a checksum the caller compares across contestants — the
// bit-identity check rides inside the timing harness.
struct KernelResult {
  double seconds = 0.0;
  uint64_t checksum = 0;
};

uint64_t FoldBits(uint64_t acc, double x) {
  return acc * 1099511628211ULL + std::bit_cast<uint64_t>(x);
}

// Optimization barriers (the google-benchmark idiom, local to this plain
// executable): without them the inline scalar reference — a pure function
// of loop-invariant buffers — hoists out of the rep loop entirely, while
// the out-of-line AVX2 variants cannot, and the "comparison" times a FNV
// fold against a real kernel.  The memory clobber makes every rep reload
// the inputs; the value barrier keeps each result live.
inline void ClobberMemory() { asm volatile("" : : : "memory"); }
template <typename T>
inline void KeepLive(T const& value) {
  asm volatile("" : : "g"(value) : "memory");
}

// --- CDF banded-DP cell kernel ---------------------------------------------

struct CdfWorkload {
  std::vector<double> l1, u1, u2, u3, lsel;
  std::vector<double> lo, up;
  double p1, p2;
};

CdfWorkload MakeCdfWorkload(Rng* rng) {
  CdfWorkload w;
  const size_t n = static_cast<size_t>(kCdfWidth);
  w.l1 = RandomProbs(rng, n);
  w.u1 = RandomProbs(rng, n);
  w.u2 = RandomProbs(rng, n);
  w.u3 = RandomProbs(rng, n);
  w.lsel = RandomProbs(rng, n);
  w.lo.assign(n, 0.0);
  w.up.assign(n, 0.0);
  w.p1 = rng->UniformDouble();
  w.p2 = 1.0 - w.p1;
  return w;
}

template <typename Kernel>
KernelResult RunCdf(CdfWorkload* w, Kernel kernel) {
  KernelResult r;
  Timer timer;
  for (int cell = 0; cell < kCdfCells; ++cell) {
    const double cell_max =
        kernel(w->l1.data(), w->u1.data(), w->u2.data(), w->u3.data(),
               w->lsel.data(), w->p1, w->p2, kCdfWidth, w->lo.data(),
               w->up.data());
    r.checksum = FoldBits(r.checksum, cell_max);
    KeepLive(cell_max);
    ClobberMemory();
  }
  r.seconds = timer.ElapsedSeconds();
  for (double x : w->lo) r.checksum = FoldBits(r.checksum, x);
  for (double x : w->up) r.checksum = FoldBits(r.checksum, x);
  return r;
}

// --- Event-count DP step ---------------------------------------------------

template <typename Kernel>
KernelResult RunEvent(const std::vector<double>& init,
                      const std::vector<double>& alphas, Kernel kernel) {
  KernelResult r;
  std::vector<double> row = init;
  Timer timer;
  for (int step = 0; step < kEventSteps; ++step) {
    kernel(alphas[static_cast<size_t>(step) % alphas.size()], kEventUpto,
           row.data());
    ClobberMemory();
  }
  r.seconds = timer.ElapsedSeconds();
  for (double x : row) r.checksum = FoldBits(r.checksum, x);
  return r;
}

// --- Frequency-distance dot kernels ----------------------------------------

template <typename Kernel>
KernelResult RunDot(const std::vector<double>& a, const std::vector<double>& b,
                    Kernel kernel) {
  KernelResult r;
  Timer timer;
  for (int rep = 0; rep < kDotReps; ++rep) {
    const double dot = kernel(a.data(), b.data(), kDotLanes);
    r.checksum = FoldBits(r.checksum, dot);
    KeepLive(dot);
    ClobberMemory();
  }
  r.seconds = timer.ElapsedSeconds();
  return r;
}

// --- Batched fingerprints --------------------------------------------------

struct BatchWorkload {
  std::string pool;
  std::vector<const char*> keys;
  std::vector<uint64_t> out;
};

BatchWorkload MakeBatchWorkload(Rng* rng) {
  BatchWorkload w;
  w.pool.resize(kBatchKeys * kBatchKeyLen);
  for (char& c : w.pool) {
    c = static_cast<char>('a' + rng->Uniform(26));
  }
  for (size_t i = 0; i < kBatchKeys; ++i) {
    w.keys.push_back(w.pool.data() + i * kBatchKeyLen);
  }
  w.out.assign(kBatchKeys, 0);
  return w;
}

// Loaded through volatiles so neither the key count nor the key length
// constant-folds into the inlined scalar reference (which would unroll its
// byte loop, skewing the comparison against the out-of-line dispatch, and
// trips GCC's aggressive-loop-optimization diagnostics on the remainder
// loop).  Production call sites pass runtime values for both.
volatile size_t g_batch_keys = kBatchKeys;
volatile size_t g_batch_key_len = kBatchKeyLen;

template <typename Kernel>
KernelResult RunBatch(BatchWorkload* w, Kernel kernel) {
  KernelResult r;
  const size_t count = g_batch_keys;
  const size_t len = g_batch_key_len;
  Timer timer;
  for (int rep = 0; rep < kBatchReps; ++rep) {
    kernel(w->keys.data(), len, count, w->out.data());
    ClobberMemory();
  }
  r.seconds = timer.ElapsedSeconds();
  for (uint64_t fp : w->out) r.checksum = r.checksum * 1099511628211ULL + fp;
  return r;
}

// --- Harness ---------------------------------------------------------------

struct KernelReport {
  const char* name;
  const char* funnel_stage;
  int64_t ops;          // kernel invocations per timed round
  double scalar_sec;    // best-of-N
  double simd_sec;      // best-of-N
  bool bit_identical;
  double speedup() const { return scalar_sec / simd_sec; }
};

// Interleaved best-of-7 over both contestants; machine noise lands on both.
template <typename RunScalar, typename RunSimd>
KernelReport Measure(const char* name, const char* funnel_stage, int64_t ops,
                     RunScalar run_scalar, RunSimd run_simd) {
  KernelReport report{name, funnel_stage, ops, 1e99, 1e99, true};
  (void)run_scalar();  // warm-up
  (void)run_simd();
  uint64_t scalar_sum = 0, simd_sum = 0;
  for (int rep = 0; rep < 7; ++rep) {
    const KernelResult s = run_scalar();
    const KernelResult v = run_simd();
    scalar_sum = s.checksum;
    simd_sum = v.checksum;
    if (s.seconds < report.scalar_sec) report.scalar_sec = s.seconds;
    if (v.seconds < report.simd_sec) report.simd_sec = v.seconds;
  }
  report.bit_identical = scalar_sum == simd_sum;
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_simd.json";
  Rng rng(20140707);  // the paper's year+month+day; any fixed seed works

  std::vector<KernelReport> reports;

  {
    CdfWorkload w = MakeCdfWorkload(&rng);
    reports.push_back(Measure(
        "cdf_dp_cell", "cdf_bound", kCdfCells,
        [&] { return RunCdf(&w, &simd::scalar::CdfCellUpdate); },
        [&] { return RunCdf(&w, &simd::CdfCellUpdate); }));
  }
  {
    const std::vector<double> init =
        RandomProbs(&rng, static_cast<size_t>(kEventUpto) + 1);
    const std::vector<double> alphas = RandomProbs(&rng, 64);
    reports.push_back(Measure(
        "event_dp_step", "qgram", kEventSteps,
        [&] { return RunEvent(init, alphas, &simd::scalar::EventDpStep); },
        [&] { return RunEvent(init, alphas, &simd::EventDpStep); }));
  }
  {
    const std::vector<double> a = RandomProbs(&rng, kDotLanes);
    const std::vector<double> b = RandomProbs(&rng, kDotLanes);
    reports.push_back(Measure(
        "freq_dot", "freq_distance", kDotReps,
        [&] { return RunDot(a, b, &simd::scalar::DotSlots); },
        [&] { return RunDot(a, b, &simd::DotSlots); }));
  }
  {
    BatchWorkload w = MakeBatchWorkload(&rng);
    reports.push_back(Measure(
        "fingerprint_batch", "qgram",
        static_cast<int64_t>(kBatchKeys) * kBatchReps,
        [&] { return RunBatch(&w, &simd::scalar::Fingerprint64Batch); },
        [&] { return RunBatch(&w, &simd::Fingerprint64Batch); }));
  }

  const bool vectorized = simd::ActiveIsa() != simd::Isa::kScalar;
  std::printf("simd kernel benchmark, dispatched isa: %s\n\n",
              simd::ActiveIsaName());
  std::printf("%-18s %-14s %14s %14s %9s  %s\n", "kernel", "funnel stage",
              "scalar ns/op", "simd ns/op", "speedup", "bits");
  bool ok = true;
  for (const KernelReport& r : reports) {
    const double scalar_ns =
        1e9 * r.scalar_sec / static_cast<double>(r.ops);
    const double simd_ns = 1e9 * r.simd_sec / static_cast<double>(r.ops);
    std::printf("%-18s %-14s %14.1f %14.1f %8.2fx  %s\n", r.name,
                r.funnel_stage, scalar_ns, simd_ns, r.speedup(),
                r.bit_identical ? "identical" : "DIFFER");
    if (!r.bit_identical) {
      std::fprintf(stderr, "FAIL: %s dispatched result differs from scalar\n",
                   r.name);
      ok = false;
    }
  }

  // Speedup gates on the two kernels the tentpole is accountable for.  Only
  // meaningful when a vector ISA was dispatched; 1.05x keeps the gate real
  // but robust to shared-machine noise (the interesting signal — the
  // measured value — is in the JSON either way).
  constexpr double kSpeedupGate = 1.05;
  if (vectorized) {
    for (const KernelReport& r : reports) {
      const bool gated = std::string(r.name) == "cdf_dp_cell" ||
                         std::string(r.name) == "fingerprint_batch";
      if (gated && r.speedup() < kSpeedupGate) {
        std::fprintf(stderr, "FAIL: %s speedup %.2fx below the %.2fx gate\n",
                     r.name, r.speedup(), kSpeedupGate);
        ok = false;
      }
    }
  } else {
    std::printf("\nscalar dispatch: speedup gates skipped\n");
  }

  ujoin::obs::JsonWriter results;
  results.BeginObject();
  results.Key("speedup_gate");
  results.Double(kSpeedupGate);
  results.Key("gated_kernels");
  results.RawValue(R"(["cdf_dp_cell","fingerprint_batch"])");
  results.Key("kernels");
  results.BeginObject();
  for (const KernelReport& r : reports) {
    results.Key(r.name);
    results.BeginObject();
    results.Key("funnel_stage");
    results.String(r.funnel_stage);
    results.Key("scalar_ns_per_op");
    results.Double(1e9 * r.scalar_sec / static_cast<double>(r.ops));
    results.Key("simd_ns_per_op");
    results.Double(1e9 * r.simd_sec / static_cast<double>(r.ops));
    results.Key("speedup");
    results.Double(r.speedup());
    results.Key("bit_identical");
    results.Bool(r.bit_identical);
    results.EndObject();
  }
  results.EndObject();
  results.EndObject();
  const ujoin::Status write_status = ujoin::obs::WriteRunReport(
      out_path, "bench_simd", {{"results", results.TakeString()}});
  if (!write_status.ok()) {
    std::fprintf(stderr, "FAIL: %s\n", write_status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path);
  return ok ? 0 : 1;
}
