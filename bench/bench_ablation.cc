// Ablations of the library's design choices (beyond the paper's own
// figures):
//
//  * selection window policy — the ±k window the paper's examples use
//    (kPositional) versus the tighter shift-bounded window its prose
//    formula describes (kShiftBounded),
//  * probabilistic q-gram pruning (Theorem 2) versus the conservative
//    support-only mode (exact Lemma 5),
//  * the paper's grouped occurrence probabilities versus exact union
//    probabilities in probe sets,
//  * τ-early-terminated verification versus exact-probability verification,
//  * plain versus path-compressed instance tries on long strings.

#include <string>

#include <benchmark/benchmark.h>

#include "bench_report.h"
#include "bench_util.h"
#include "datagen/datagen.h"
#include "join/self_join.h"
#include "util/check.h"
#include "verify/compressed_verifier.h"
#include "verify/verifier.h"

namespace {

using namespace ujoin;
using ujoin::bench::DblpConfig;
using ujoin::bench::Scaled;

const Dataset& CachedDataset() {
  static const Dataset data =
      GenerateDataset(DblpConfig::Data(Scaled(1500)));
  return data;
}

void RunJoinAblation(benchmark::State& state, const JoinOptions& options,
                     const char* label) {
  const Dataset& data = CachedDataset();
  JoinStats stats;
  for (auto _ : state) {
    Result<SelfJoinResult> out =
        SimilaritySelfJoin(data.strings, data.alphabet, options);
    UJOIN_CHECK(out.ok());
    stats = out->stats;
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel(label);
  state.counters["qgram_candidates"] =
      static_cast<double>(stats.qgram_candidates);
  state.counters["verified"] = static_cast<double>(stats.verified_pairs);
  state.counters["results"] = static_cast<double>(stats.result_pairs);
  state.counters["filter_ms"] =
      (stats.FilterTime() + stats.index_build_time) * 1e3;
  state.counters["verify_ms"] = stats.verify_time * 1e3;
  state.counters["total_ms"] = stats.total_time * 1e3;
}

void BM_Ablation_SelectionPolicy(benchmark::State& state) {
  JoinOptions options = DblpConfig::Join();
  const bool tight = state.range(0) != 0;
  options.probe.selection = tight ? SelectionPolicy::kShiftBounded
                                  : SelectionPolicy::kPositional;
  RunJoinAblation(state, options,
                  tight ? "shift_bounded_window" : "positional_window");
}
BENCHMARK(BM_Ablation_SelectionPolicy)
    ->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_Ablation_ProbabilisticPruning(benchmark::State& state) {
  JoinOptions options = DblpConfig::Join();
  options.qgram_probabilistic_pruning = state.range(0) != 0;
  RunJoinAblation(state, options,
                  options.qgram_probabilistic_pruning
                      ? "theorem2_pruning"
                      : "support_only (conservative)");
}
BENCHMARK(BM_Ablation_ProbabilisticPruning)
    ->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_Ablation_ExactProbeProbability(benchmark::State& state) {
  JoinOptions options = DblpConfig::Join();
  options.probe.exact_union_probability = state.range(0) != 0;
  RunJoinAblation(state, options,
                  options.probe.exact_union_probability
                      ? "exact_union_prob"
                      : "grouped_recursion (paper)");
}
BENCHMARK(BM_Ablation_ExactProbeProbability)
    ->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_Ablation_EarlyStopVerification(benchmark::State& state) {
  JoinOptions options = DblpConfig::Join();
  options.early_stop_verification = state.range(0) != 0;
  RunJoinAblation(state, options,
                  options.early_stop_verification ? "early_stop_verify"
                                                  : "exact_verify");
}
BENCHMARK(BM_Ablation_EarlyStopVerification)
    ->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond)->Iterations(1);

// Plain vs compressed tries on progressively longer strings (×1..×3
// self-append).  Counters show the node-count gap; the timing column shows
// build plus a fixed number of verifications.
void BM_Ablation_TrieRepresentation(benchmark::State& state) {
  const bool compressed = state.range(0) != 0;
  const int repeats = static_cast<int>(state.range(1));
  Dataset data = GenerateDataset(DblpConfig::Data(Scaled(60)));
  for (UncertainString& s : data.strings) {
    s = CapUncertainPositions(AppendSelf(s, repeats), 6);
  }
  const int k = 2;
  int64_t nodes = 0;
  double checksum = 0.0;
  for (auto _ : state) {
    nodes = 0;
    checksum = 0.0;
    for (size_t i = 0; i + 1 < data.strings.size(); i += 2) {
      if (compressed) {
        Result<CompressedTrieVerifier> verifier =
            CompressedTrieVerifier::Create(data.strings[i], k);
        UJOIN_CHECK(verifier.ok());
        nodes += verifier->trie().num_nodes();
        checksum += verifier->Probability(data.strings[i + 1]);
      } else {
        Result<TrieVerifier> verifier =
            TrieVerifier::Create(data.strings[i], k);
        UJOIN_CHECK(verifier.ok());
        nodes += verifier->trie().num_nodes();
        checksum += verifier->Probability(data.strings[i + 1]);
      }
    }
    benchmark::DoNotOptimize(checksum);
  }
  state.SetLabel(std::string(compressed ? "compressed" : "plain") + "/x" +
                 std::to_string(repeats + 1));
  state.counters["trie_nodes"] = static_cast<double>(nodes);
  state.counters["prob_sum"] = checksum;
}
BENCHMARK(BM_Ablation_TrieRepresentation)
    ->ArgsProduct({{0, 1}, {0, 1, 2}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  return ujoin::bench::RunReportMain(argc, argv, "bench_ablation",
                                     "BENCH_ablation.json");
}
