// Figure 6 — effect of the edit-distance threshold k.
//
// Sweeps k ∈ {1..4} on dblp and k ∈ {2,4,6,8} on protein for QFCT and FCT.
// Paper trend: larger k weakens every filter (Lemma 5 needs fewer matched
// segments, bounds loosen), so query time rises and QFCT's advantage over
// FCT narrows — but QFCT still saves a sizable share of FCT's cost.

#include <string>

#include <benchmark/benchmark.h>

#include "bench_report.h"
#include "bench_util.h"
#include "datagen/datagen.h"
#include "join/self_join.h"
#include "util/check.h"

namespace {

using namespace ujoin;
using ujoin::bench::DblpConfig;
using ujoin::bench::ProteinConfig;
using ujoin::bench::Scaled;
using ujoin::bench::WithVariant;

const Dataset& CachedDataset(bool protein) {
  // The k = 4 sweep point multiplies verification cost; a smaller
  // collection with at most 5 uncertain positions keeps the whole sweep in
  // laptop-seconds while preserving the trends.
  static const Dataset dblp = [] {
    DatasetOptions opt = DblpConfig::Data(Scaled(600));
    opt.max_uncertain_positions = 4;
    return GenerateDataset(opt);
  }();
  static const Dataset prot =
      GenerateDataset(ProteinConfig::Data(Scaled(700)));
  return protein ? prot : dblp;
}

void RunK(benchmark::State& state, bool protein, const char* variant) {
  const int k = static_cast<int>(state.range(0));
  const Dataset& data = CachedDataset(protein);
  JoinOptions options = WithVariant(
      protein ? ProteinConfig::Join() : DblpConfig::Join(), variant);
  options.k = k;
  JoinStats stats;
  for (auto _ : state) {
    Result<SelfJoinResult> out =
        SimilaritySelfJoin(data.strings, data.alphabet, options);
    UJOIN_CHECK(out.ok());
    stats = out->stats;
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel(std::string(protein ? "protein/" : "dblp/") + variant +
                 "/k=" + std::to_string(k));
  state.counters["total_ms"] = stats.total_time * 1e3;
  state.counters["filter_ms"] =
      (stats.FilterTime() + stats.index_build_time) * 1e3;
  state.counters["verified"] = static_cast<double>(stats.verified_pairs);
  state.counters["results"] = static_cast<double>(stats.result_pairs);
}

void BM_Fig6_Dblp_QFCT(benchmark::State& state) { RunK(state, false, "QFCT"); }
void BM_Fig6_Dblp_FCT(benchmark::State& state) { RunK(state, false, "FCT"); }
void BM_Fig6_Protein_QFCT(benchmark::State& state) {
  RunK(state, true, "QFCT");
}
void BM_Fig6_Protein_FCT(benchmark::State& state) { RunK(state, true, "FCT"); }

BENCHMARK(BM_Fig6_Dblp_QFCT)
    ->Arg(1)->Arg(2)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Fig6_Dblp_FCT)
    ->Arg(1)->Arg(2)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Fig6_Protein_QFCT)
    ->Arg(2)->Arg(4)->Arg(6)->Arg(8)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Fig6_Protein_FCT)
    ->Arg(2)->Arg(4)->Arg(6)->Arg(8)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  return ujoin::bench::RunReportMain(argc, argv, "bench_fig6_k",
                                     "BENCH_fig6_k.json");
}
