// Micro-benchmark for the frozen posting-list layout (PR 2): measures
// heterogeneous string_view lookups against the std::unordered_map layout
// it replaced, measures end-to-end frozen-index query throughput, and
// verifies — with a global allocation hook — that the steady-state probe
// path performs zero heap allocations.
//
// Usage: bench_index_probe [output.json]
//   Writes machine-readable results to BENCH_probe.json (or the given
//   path) and exits non-zero if the speedup gate (>= 1.5x over the map
//   baseline) or the zero-allocation gate fails.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_util.h"
#include "datagen/datagen.h"
#include "index/flat_postings.h"
#include "index/segment_index.h"
#include "obs/json_writer.h"
#include "obs/report.h"
#include "util/rng.h"
#include "util/timer.h"

// ---------------------------------------------------------------------------
// Allocation hook: counts heap allocations while enabled.
// ---------------------------------------------------------------------------

namespace {
std::atomic<bool> g_count_allocations{false};
std::atomic<size_t> g_allocation_count{0};

void* CountedAlloc(std::size_t size) {
  if (g_count_allocations.load(std::memory_order_relaxed)) {
    g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* CountedAllocAligned(std::size_t size, std::size_t alignment) {
  if (g_count_allocations.load(std::memory_order_relaxed)) {
    g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::aligned_alloc(alignment, ((size + alignment - 1) / alignment) *
                                              alignment);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return CountedAllocAligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return CountedAllocAligned(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using ujoin::Alphabet;
using ujoin::Dataset;
using ujoin::FlatPostings;
using ujoin::GenerateDataset;
using ujoin::IndexQueryStats;
using ujoin::InvertedSegmentIndex;
using ujoin::Posting;
using ujoin::QueryWorkspace;
using ujoin::Rng;
using ujoin::Timer;
using ujoin::UncertainString;

constexpr int kKeyLength = 3;  // the paper's default q

// Probe keys live in one pool with a fixed stride so both contestants see
// the identical std::string_view workload.
struct ProbeWorkload {
  std::string pool;
  size_t count = 0;
  std::string_view key(size_t i) const {
    return {pool.data() + i * kKeyLength, kKeyLength};
  }
};

struct FlatRun {
  const FlatPostings* lists;
  const ProbeWorkload* probes;
  int rounds;
};

struct MapRun {
  const std::unordered_map<std::string, std::vector<Posting>>* lists;
  const ProbeWorkload* probes;
  int rounds;
};

// Returns lookups per second; folds a checksum so the loop cannot be
// optimized away.
double RunFlat(const void* arg) {
  const FlatRun& run = *static_cast<const FlatRun*>(arg);
  Timer timer;
  uint64_t checksum = 0;
  for (int round = 0; round < run.rounds; ++round) {
    for (size_t i = 0; i < run.probes->count; ++i) {
      const FlatPostings::ListView view = run.lists->Find(run.probes->key(i));
      checksum += view.size();
    }
  }
  const double seconds = timer.ElapsedSeconds();
  if (checksum == UINT64_MAX) std::printf("impossible\n");
  return static_cast<double>(run.rounds) *
         static_cast<double>(run.probes->count) / seconds;
}

double RunMap(const void* arg) {
  const MapRun& run = *static_cast<const MapRun*>(arg);
  Timer timer;
  uint64_t checksum = 0;
  for (int round = 0; round < run.rounds; ++round) {
    for (size_t i = 0; i < run.probes->count; ++i) {
      // The cost the frozen layout removes: keying a map of std::string
      // requires materializing the probe substring on every lookup.
      const auto it = run.lists->find(std::string(run.probes->key(i)));
      if (it != run.lists->end()) checksum += it->second.size();
    }
  }
  const double seconds = timer.ElapsedSeconds();
  if (checksum == UINT64_MAX) std::printf("impossible\n");
  return static_cast<double>(run.rounds) *
         static_cast<double>(run.probes->count) / seconds;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_probe.json";

  // ------------------------------------------------------------------
  // Workload: q-grams of a dblp-like deterministic collection, posted
  // under both layouts; probes are a hit-heavy mix with random misses.
  // The size is fixed (not UJOIN_BENCH_SCALE-scaled): the speedup gate
  // compares data structures at a realistic table size — shrinking it
  // until both fit in cache would measure nothing.
  // ------------------------------------------------------------------
  const int collection_size = 4000;
  ujoin::DatasetOptions data_options =
      ujoin::bench::DblpConfig::Data(collection_size);
  data_options.theta = 0.0;  // deterministic: every position one symbol
  const Dataset dataset = GenerateDataset(data_options);

  FlatPostings flat(kKeyLength);
  std::unordered_map<std::string, std::vector<Posting>> map;
  std::string gram(static_cast<size_t>(kKeyLength), ' ');
  int64_t num_postings = 0;
  for (uint32_t id = 0; id < dataset.strings.size(); ++id) {
    const UncertainString& s = dataset.strings[id];
    for (int start = 0; start + kKeyLength <= s.length(); ++start) {
      for (int i = 0; i < kKeyLength; ++i) {
        gram[static_cast<size_t>(i)] = s.AlternativesAt(start + i)[0].symbol;
      }
      const Posting posting{id, 1.0};
      flat.Add(gram, posting);
      map[gram].push_back(posting);
      ++num_postings;
    }
  }
  flat.Freeze();

  ProbeWorkload probes;
  Rng rng(1234);
  const size_t num_probes = 1 << 16;
  probes.pool.reserve(num_probes * kKeyLength);
  for (size_t i = 0; i < num_probes; ++i) {
    if (rng.Bernoulli(0.7)) {
      // Hit: a q-gram of a random collection string.
      const UncertainString& s = dataset.strings[rng.Uniform(
          static_cast<uint64_t>(dataset.strings.size()))];
      const int start = static_cast<int>(
          rng.Uniform(static_cast<uint64_t>(s.length() - kKeyLength + 1)));
      for (int j = 0; j < kKeyLength; ++j) {
        probes.pool.push_back(s.AlternativesAt(start + j)[0].symbol);
      }
    } else {
      // Likely miss: random letters.
      for (int j = 0; j < kKeyLength; ++j) {
        probes.pool.push_back(
            static_cast<char>('a' + rng.Uniform(26)));
      }
    }
  }
  probes.count = num_probes;

  const int rounds = 20;
  const FlatRun flat_run{&flat, &probes, rounds};
  const MapRun map_run{&map, &probes, rounds};
  // Warm-up, then interleaved best-of-7: alternating the contestants per
  // repetition spreads machine noise over both instead of biasing one.
  (void)RunFlat(&flat_run);
  (void)RunMap(&map_run);
  double flat_rate = 0.0;
  double map_rate = 0.0;
  for (int rep = 0; rep < 7; ++rep) {
    flat_rate = std::max(flat_rate, RunFlat(&flat_run));
    map_rate = std::max(map_rate, RunMap(&map_run));
  }
  const double speedup = flat_rate / map_rate;

  std::printf("lookup throughput over %zu probes x %d rounds "
              "(%lld postings, %zu keys):\n",
              probes.count, rounds, static_cast<long long>(num_postings),
              flat.num_keys());
  std::printf("  flat postings:  %12.0f lookups/s\n", flat_rate);
  std::printf("  unordered_map:  %12.0f lookups/s\n", map_rate);
  std::printf("  speedup:        %12.2fx (gate: >= 1.50x)\n", speedup);

  // ------------------------------------------------------------------
  // End-to-end query throughput through a frozen index, and the
  // zero-allocation gate on the steady-state probe path.
  // ------------------------------------------------------------------
  ujoin::DatasetOptions index_options =
      ujoin::bench::DblpConfig::Data(ujoin::bench::Scaled(1500));
  const Dataset uncertain = GenerateDataset(index_options);
  InvertedSegmentIndex index(/*k=*/2, /*q=*/kKeyLength);
  for (uint32_t id = 0; id < uncertain.strings.size(); ++id) {
    if (!index.Insert(id, uncertain.strings[id]).ok()) {
      std::fprintf(stderr, "FAIL: index insert rejected string %u\n", id);
      return 1;
    }
  }
  index.Freeze();

  QueryWorkspace workspace;
  IndexQueryStats stats;
  const size_t num_queries = std::min<size_t>(uncertain.strings.size(), 256);
  // Warm-up pass grows every workspace buffer to steady state.
  size_t warm_candidates = 0;
  for (size_t i = 0; i < num_queries; ++i) {
    const UncertainString& r = uncertain.strings[i];
    warm_candidates +=
        index.Query(r, r.length(), /*tau=*/0.1, &workspace, &stats).size();
  }

  g_allocation_count.store(0, std::memory_order_relaxed);
  g_count_allocations.store(true, std::memory_order_relaxed);
  Timer query_timer;
  size_t counted_candidates = 0;
  for (size_t i = 0; i < num_queries; ++i) {
    const UncertainString& r = uncertain.strings[i];
    counted_candidates +=
        index.Query(r, r.length(), /*tau=*/0.1, &workspace, &stats).size();
  }
  const double query_seconds = query_timer.ElapsedSeconds();
  g_count_allocations.store(false, std::memory_order_relaxed);
  const size_t steady_state_allocations =
      g_allocation_count.load(std::memory_order_relaxed);
  const double queries_per_sec =
      static_cast<double>(num_queries) / query_seconds;

  std::printf("frozen-index queries: %zu queries, %zu candidates, "
              "%.0f queries/s\n",
              num_queries, counted_candidates, queries_per_sec);
  std::printf("steady-state allocations in the probe path: %zu "
              "(gate: 0)\n",
              steady_state_allocations);
  if (counted_candidates != warm_candidates) {
    std::fprintf(stderr, "FAIL: repeated queries changed the result\n");
    return 1;
  }

  // Shared machine-readable envelope (DESIGN.md "Observability"): every
  // BENCH_*.json is a ujoin.run_report whose payload sits in "results".
  ujoin::obs::JsonWriter results;
  results.BeginObject();
  results.Key("collection_size");
  results.Int(collection_size);
  results.Key("num_keys");
  results.UInt(flat.num_keys());
  results.Key("num_postings");
  results.Int(num_postings);
  results.Key("num_probes");
  results.UInt(probes.count);
  results.Key("flat_lookups_per_sec");
  results.Double(flat_rate);
  results.Key("map_lookups_per_sec");
  results.Double(map_rate);
  results.Key("speedup");
  results.Double(speedup);
  results.Key("speedup_gate");
  results.Double(1.5);
  results.Key("frozen_index_queries_per_sec");
  results.Double(queries_per_sec);
  results.Key("steady_state_allocations");
  results.UInt(steady_state_allocations);
  results.EndObject();
  const ujoin::Status write_status = ujoin::obs::WriteRunReport(
      out_path, "bench_index_probe", {{"results", results.TakeString()}});
  if (!write_status.ok()) {
    std::fprintf(stderr, "FAIL: %s\n", write_status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path);

  bool ok = true;
  if (speedup < 1.5) {
    std::fprintf(stderr,
                 "FAIL: flat-postings speedup %.2fx below the 1.5x gate\n",
                 speedup);
    ok = false;
  }
  if (steady_state_allocations != 0) {
    std::fprintf(stderr,
                 "FAIL: %zu allocations in the steady-state probe path\n",
                 steady_state_allocations);
    ok = false;
  }
  return ok ? 0 : 1;
}
