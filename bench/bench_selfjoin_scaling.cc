// Thread-scaling of the wave-parallel self-join: runs the default datagen
// workload at 1/2/4/8 threads, reports wall time and speedup over the
// single-thread run, and verifies that every configuration returns the
// identical pair list (ids, probabilities, exactness flags).
//
// Usage: bench_selfjoin_scaling [collection_size] [output.json]
//   UJOIN_BENCH_SCALE scales the default collection size (see bench_util.h).
//   Writes BENCH_scaling.json (or the given path) in the shared
//   ujoin.run_report envelope.
//
// Exit code is non-zero if any thread count changes the result — the bench
// doubles as an end-to-end determinism check at benchmark scale.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "datagen/datagen.h"
#include "join/self_join.h"
#include "obs/json_writer.h"
#include "obs/report.h"
#include "util/timer.h"

namespace {

using ujoin::Alphabet;
using ujoin::Dataset;
using ujoin::GenerateDataset;
using ujoin::JoinOptions;
using ujoin::JoinPair;
using ujoin::Result;
using ujoin::SelfJoinResult;
using ujoin::SimilaritySelfJoin;
using ujoin::Timer;
using ujoin::UncertainString;

bool IdenticalPairs(const std::vector<JoinPair>& a,
                    const std::vector<JoinPair>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].lhs != b[i].lhs || a[i].rhs != b[i].rhs ||
        a[i].probability != b[i].probability || a[i].exact != b[i].exact) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int size = ujoin::bench::Scaled(3000);
  if (argc > 1) size = std::atoi(argv[1]);
  if (size < 2) size = 2;
  const char* out_path = argc > 2 ? argv[2] : "BENCH_scaling.json";

  const ujoin::DatasetOptions data_options =
      ujoin::bench::DblpConfig::Data(size);
  const Dataset dataset = GenerateDataset(data_options);

  const unsigned hardware = std::thread::hardware_concurrency();
  std::printf("self-join thread scaling: %d dblp-like strings, "
              "k=2 tau=0.1 q=3 (QFCT), %u hardware thread(s)\n",
              size, hardware);
  if (hardware < 4) {
    std::printf("note: fewer than 4 hardware threads available; speedups "
                "above %u× are not physically reachable on this machine\n",
                hardware);
  }

  std::vector<JoinPair> reference;
  double base_seconds = 0.0;
  bool identical = true;

  ujoin::obs::JsonWriter runs;
  runs.BeginArray();
  size_t num_pairs = 0;

  std::printf("%8s %12s %10s %12s %14s\n", "threads", "time[s]", "speedup",
              "pairs", "identical");
  for (int threads : {1, 2, 4, 8}) {
    JoinOptions options = ujoin::bench::DblpConfig::Join();
    options.threads = threads;

    Timer timer;
    Result<SelfJoinResult> result =
        SimilaritySelfJoin(dataset.strings, dataset.alphabet, options);
    const double seconds = timer.ElapsedSeconds();
    if (!result.ok()) {
      std::fprintf(stderr, "join failed at threads=%d: %s\n", threads,
                   result.status().ToString().c_str());
      return 1;
    }

    bool same = true;
    if (threads == 1) {
      reference = result->pairs;
      base_seconds = seconds;
    } else {
      same = IdenticalPairs(reference, result->pairs);
      identical = identical && same;
    }
    num_pairs = result->pairs.size();
    std::printf("%8d %12.3f %9.2fx %12zu %14s\n", threads, seconds,
                base_seconds > 0.0 ? base_seconds / seconds : 1.0,
                result->pairs.size(), same ? "yes" : "NO");
    runs.BeginObject();
    runs.Key("threads");
    runs.Int(threads);
    runs.Key("seconds");
    runs.Double(seconds);
    runs.Key("speedup");
    runs.Double(base_seconds > 0.0 ? base_seconds / seconds : 1.0);
    runs.Key("identical");
    runs.Bool(same);
    runs.EndObject();
  }
  runs.EndArray();

  ujoin::obs::JsonWriter results;
  results.BeginObject();
  results.Key("collection_size");
  results.Int(size);
  results.Key("hardware_threads");
  results.UInt(hardware);
  results.Key("result_pairs");
  results.UInt(num_pairs);
  results.Key("all_identical");
  results.Bool(identical);
  results.Key("runs");
  results.RawValue(runs.str());
  results.EndObject();
  const ujoin::Status write_status = ujoin::obs::WriteRunReport(
      out_path, "bench_selfjoin_scaling", {{"results", results.TakeString()}});
  if (!write_status.ok()) {
    std::fprintf(stderr, "FAIL: %s\n", write_status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path);

  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: thread count changed the self-join result\n");
    return 1;
  }
  std::printf("all thread counts returned the identical pair list\n");
  return 0;
}
