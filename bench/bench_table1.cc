// Reproduces Table 1 of the paper: the q-gram filtering walk-through with
// r = GGATCC, m = 3, q = 2, k = 1, τ = 0.25 over four uncertain strings.
// Prints the probe sets q(r, x), each string's per-segment match
// probabilities α_x, Theorem 2's upper bound, and the accept/reject
// decision — the same rows the paper's table and accompanying narrative
// report — then times the filter evaluation per string through the
// google-benchmark harness and emits BENCH_table1.json in the
// ujoin.run_report envelope (bench_report.h).  Each timed run carries the
// table's values as counters (alpha_1..alpha_m, bound, candidate), so the
// JSON artefact holds the full worked example, machine-readably.

#include <cstdio>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_report.h"
#include "filter/partition.h"
#include "filter/probe_set.h"
#include "filter/qgram_filter.h"
#include "text/alphabet.h"
#include "util/check.h"

namespace {

using namespace ujoin;  // NOLINT: benchmark driver

struct TableRow {
  const char* name;
  const char* text;
};

constexpr TableRow kStrings[] = {
    {"S1", "A{(C,0.5),(G,0.5)}A{(C,0.5),(G,0.5)}AC"},
    {"S2", "AA{(G,0.9),(T,0.1)}G{(C,0.3),(G,0.2),(T,0.5)}C"},
    {"S3", "G{(A,0.8),(G,0.2)}CT{(A,0.8),(C,0.1),(T,0.1)}C"},
    {"S4", "{(G,0.8),(T,0.2)}GA{(C,0.3),(G,0.2),(T,0.5)}CT"},
};

QGramOptions Table1Options() {
  QGramOptions options;
  options.k = 1;
  options.q = 2;
  return options;
}

constexpr double kTau = 0.25;

UncertainString Parse(const char* text) {
  Result<UncertainString> s = UncertainString::Parse(text, Alphabet::Dna());
  UJOIN_CHECK(s.ok());
  return std::move(s).value();
}

UncertainString QueryR() {
  return UncertainString::FromDeterministic("GGATCC");
}

// The console walk-through the pre-envelope binary printed; runs once so
// the human-readable table still accompanies the JSON artefact.
void PrintWalkthrough() {
  const QGramOptions options = Table1Options();
  const UncertainString r = QueryR();
  std::printf("Table 1: application of q-gram filtering\n");
  std::printf("m = 3, q = %d, k = %d, tau = %.2f, r = GGATCC\n\n", options.q,
              options.k, kTau);
  const std::vector<Segment> segments = EvenPartition(6, 3);
  for (size_t x = 0; x < segments.size(); ++x) {
    Result<std::vector<ProbeSubstring>> probes =
        BuildProbeSet(r, 6, segments[x], options.k, options.probe);
    UJOIN_CHECK(probes.ok());
    std::printf("q(r,%zu) = {", x + 1);
    for (size_t i = 0; i < probes->size(); ++i) {
      std::printf("%s%s", i ? ", " : " ", (*probes)[i].text.c_str());
    }
    std::printf(" }\n");
  }
  std::printf("\n%-4s %-48s %-28s %-7s %s\n", "S", "string",
              "alpha_1 alpha_2 alpha_3", "bound", "decision");
  for (const TableRow& entry : kStrings) {
    const UncertainString s = Parse(entry.text);
    Result<QGramFilterOutcome> out = EvaluateQGramFilter(r, s, options);
    UJOIN_CHECK(out.ok());
    std::string alphas;
    for (double a : out->alphas) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%.3f   ", a);
      alphas += buf;
    }
    const char* decision;
    if (out->support_pruned) {
      decision = out->matched_segments == 0
                     ? "pruned (no segment matches, Lemma 4)"
                     : "pruned (too few matches, Lemma 4)";
    } else if (!out->Survives(kTau)) {
      decision = "pruned (Theorem 2 bound <= tau)";
    } else {
      decision = "CANDIDATE";
    }
    std::printf("%-4s %-48s %-28s %-7.3f %s\n", entry.name, entry.text,
                alphas.c_str(), out->upper_bound, decision);
  }
  std::printf(
      "\npaper narrative: S1 no matches; S2 one matched segment (its GG "
      "occurs in r only\noutside the position-aware window); S3 alphas "
      "(1, 0, 0.2) -> bound 0.2 rejected;\nS4 bound 0.4 -> candidate.\n\n");
}

void BM_Table1Filter(benchmark::State& state) {
  const TableRow& entry = kStrings[static_cast<size_t>(state.range(0))];
  const QGramOptions options = Table1Options();
  const UncertainString r = QueryR();
  const UncertainString s = Parse(entry.text);
  Result<QGramFilterOutcome> out = Status::Internal("not evaluated");
  for (auto _ : state) {
    out = EvaluateQGramFilter(r, s, options);
    benchmark::DoNotOptimize(out);
  }
  UJOIN_CHECK(out.ok());
  state.SetLabel(entry.name);
  for (size_t x = 0; x < out->alphas.size(); ++x) {
    state.counters["alpha_" + std::to_string(x + 1)] = out->alphas[x];
  }
  state.counters["bound"] = out->upper_bound;
  state.counters["candidate"] =
      !out->support_pruned && out->Survives(kTau) ? 1.0 : 0.0;
}
BENCHMARK(BM_Table1Filter)->DenseRange(0, 3)->ArgName("string");

}  // namespace

int main(int argc, char** argv) {
  PrintWalkthrough();
  return ujoin::bench::RunReportMain(argc, argv, "bench_table1",
                                     "BENCH_table1.json");
}
