// Reproduces Table 1 of the paper: the q-gram filtering walk-through with
// r = GGATCC, m = 3, q = 2, k = 1, τ = 0.25 over four uncertain strings.
// Prints the probe sets q(r, x), each string's segment instance lists, the
// per-segment match probabilities α_x, Theorem 2's upper bound, and the
// accept/reject decision — the same rows the paper's table and accompanying
// narrative report.

#include <cstdio>
#include <string>
#include <vector>

#include "filter/partition.h"
#include "filter/probe_set.h"
#include "filter/qgram_filter.h"
#include "text/alphabet.h"
#include "text/possible_worlds.h"
#include "util/check.h"

namespace {

using namespace ujoin;  // NOLINT: benchmark driver

UncertainString Parse(const char* text, const Alphabet& alphabet) {
  Result<UncertainString> s = UncertainString::Parse(text, alphabet);
  UJOIN_CHECK(s.ok());
  return std::move(s).value();
}

}  // namespace

int main() {
  const Alphabet dna = Alphabet::Dna();
  const UncertainString r = UncertainString::FromDeterministic("GGATCC");
  const struct {
    const char* name;
    const char* text;
  } strings[] = {
      {"S1", "A{(C,0.5),(G,0.5)}A{(C,0.5),(G,0.5)}AC"},
      {"S2", "AA{(G,0.9),(T,0.1)}G{(C,0.3),(G,0.2),(T,0.5)}C"},
      {"S3", "G{(A,0.8),(G,0.2)}CT{(A,0.8),(C,0.1),(T,0.1)}C"},
      {"S4", "{(G,0.8),(T,0.2)}GA{(C,0.3),(G,0.2),(T,0.5)}CT"},
  };
  QGramOptions options;
  options.k = 1;
  options.q = 2;
  const double tau = 0.25;

  std::printf("Table 1: application of q-gram filtering\n");
  std::printf("m = 3, q = %d, k = %d, tau = %.2f, r = GGATCC\n\n", options.q,
              options.k, tau);

  const std::vector<Segment> segments = EvenPartition(6, 3);
  for (size_t x = 0; x < segments.size(); ++x) {
    Result<std::vector<ProbeSubstring>> probes =
        BuildProbeSet(r, 6, segments[x], options.k, options.probe);
    UJOIN_CHECK(probes.ok());
    std::printf("q(r,%zu) = {", x + 1);
    for (size_t i = 0; i < probes->size(); ++i) {
      std::printf("%s%s", i ? ", " : " ", (*probes)[i].text.c_str());
    }
    std::printf(" }\n");
  }
  std::printf("\n%-4s %-48s %-28s %-7s %s\n", "S", "string",
              "alpha_1 alpha_2 alpha_3", "bound", "decision");
  for (const auto& entry : strings) {
    const UncertainString s = Parse(entry.text, dna);
    Result<QGramFilterOutcome> out = EvaluateQGramFilter(r, s, options);
    UJOIN_CHECK(out.ok());
    std::string alphas;
    for (double a : out->alphas) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%.3f   ", a);
      alphas += buf;
    }
    const char* decision;
    if (out->support_pruned) {
      decision = out->matched_segments == 0
                     ? "pruned (no segment matches, Lemma 4)"
                     : "pruned (too few matches, Lemma 4)";
    } else if (!out->Survives(tau)) {
      decision = "pruned (Theorem 2 bound <= tau)";
    } else {
      decision = "CANDIDATE";
    }
    std::printf("%-4s %-48s %-28s %-7.3f %s\n", entry.name, entry.text,
                alphas.c_str(), out->upper_bound, decision);
  }
  std::printf(
      "\npaper narrative: S1 no matches; S2 one matched segment (its GG "
      "occurs in r only\noutside the position-aware window); S3 alphas "
      "(1, 0, 0.2) -> bound 0.2 rejected;\nS4 bound 0.4 -> candidate.\n");
  return 0;
}
