// Section 7.9 — qualitative comparison with the expected-edit-distance
// (eed) join of Jestes et al. [10].  Reproduces the three claims:
//
//  1. Index size: our disjoint-segment index stays around twice the data
//     size, while an overlapping-q-gram index over all instances (the [10]
//     style) is several times larger (the paper reports ≈ 5×).
//  2. Query algorithm: QFCT's indexed filtering beats a join that must
//     evaluate expensive per-pair computations for every length-compatible
//     pair (the eed join evaluates all of them).
//  3. Verification: computing exact eed enumerates all world pairs, while
//     trie-based (k,τ) verification prunes most of them.

#include <benchmark/benchmark.h>

#include "bench_report.h"
#include "bench_util.h"
#include "datagen/datagen.h"
#include "eed/eed.h"
#include "index/segment_index.h"
#include "join/self_join.h"
#include "util/check.h"
#include "util/timer.h"
#include "verify/verifier.h"

namespace {

using namespace ujoin;
using ujoin::bench::DataBytes;
using ujoin::bench::DblpConfig;
using ujoin::bench::Scaled;

const Dataset& CachedDataset() {
  static Dataset data = [] {
    DatasetOptions opt = DblpConfig::Data(Scaled(250));
    // Exact eed enumerates |worlds(R)| x |worlds(S)| full (unbanded) edit
    // distances per pair; 5^3 worlds per string is the budget that keeps
    // the baseline joinable at all — itself a Section 7.9 data point.
    opt.max_uncertain_positions = 3;
    return GenerateDataset(opt);
  }();
  return data;
}

// A larger insert-only collection for the storage comparison.
const Dataset& IndexSizeDataset() {
  static Dataset data = GenerateDataset(DblpConfig::Data(Scaled(3000)));
  return data;
}

// Claim 1: index sizes relative to the raw data.  Postings are the
// scale-independent measure (byte ratios depend on per-list overhead that
// only amortizes at corpus scale).
void BM_Sec79_IndexSize(benchmark::State& state) {
  const Dataset& data = IndexSizeDataset();
  size_t disjoint_bytes = 0, overlapping_bytes = 0;
  int64_t disjoint_postings = 0, overlapping_postings = 0;
  for (auto _ : state) {
    InvertedSegmentIndex disjoint(2, 3);
    OverlappingQGramIndex overlapping(3);
    for (uint32_t id = 0; id < data.strings.size(); ++id) {
      UJOIN_CHECK(disjoint.Insert(id, data.strings[id]).ok());
      UJOIN_CHECK(overlapping.Insert(id, data.strings[id]).ok());
    }
    disjoint_bytes = disjoint.MemoryUsage();
    overlapping_bytes = overlapping.MemoryUsage();
    disjoint_postings = disjoint.num_postings();
    overlapping_postings = overlapping.num_postings();
    benchmark::DoNotOptimize(disjoint_bytes);
  }
  const double data_bytes = static_cast<double>(DataBytes(data.strings));
  state.counters["disjoint_vs_data"] =
      static_cast<double>(disjoint_bytes) / data_bytes;
  state.counters["overlapping_vs_data"] =
      static_cast<double>(overlapping_bytes) / data_bytes;
  state.counters["disjoint_postings"] = static_cast<double>(disjoint_postings);
  state.counters["overlapping_postings"] =
      static_cast<double>(overlapping_postings);
  state.counters["posting_ratio"] = static_cast<double>(overlapping_postings) /
                                    static_cast<double>(disjoint_postings);
}
BENCHMARK(BM_Sec79_IndexSize)->Unit(benchmark::kMillisecond)->Iterations(1);

// Claim 2: join time, QFCT (k,τ) semantics vs. per-pair eed semantics.
void BM_Sec79_QfctJoin(benchmark::State& state) {
  const Dataset& data = CachedDataset();
  JoinStats stats;
  for (auto _ : state) {
    Result<SelfJoinResult> out =
        SimilaritySelfJoin(data.strings, data.alphabet, DblpConfig::Join());
    UJOIN_CHECK(out.ok());
    stats = out->stats;
    benchmark::DoNotOptimize(out);
  }
  state.counters["results"] = static_cast<double>(stats.result_pairs);
  state.counters["verified"] = static_cast<double>(stats.verified_pairs);
}
BENCHMARK(BM_Sec79_QfctJoin)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_Sec79_EedJoin(benchmark::State& state) {
  const Dataset& data = CachedDataset();
  EedJoinOptions options;
  options.threshold = 2.0;  // comparable to k = 2
  int64_t evaluated = 0;
  size_t results = 0;
  for (auto _ : state) {
    Result<EedJoinResult> out = EedSelfJoin(data.strings, options);
    UJOIN_CHECK(out.ok());
    evaluated = out->pairs_evaluated;
    results = out->pairs.size();
    benchmark::DoNotOptimize(out);
  }
  state.counters["results"] = static_cast<double>(results);
  state.counters["pairs_evaluated"] = static_cast<double>(evaluated);
}
BENCHMARK(BM_Sec79_EedJoin)->Unit(benchmark::kMillisecond)->Iterations(1);

// Claim 3: per-pair cost, exact eed vs. trie-based (k,τ) verification.
void BM_Sec79_PerPair(benchmark::State& state) {
  const bool use_trie = state.range(0) != 0;
  const Dataset& data = CachedDataset();
  // Verify a fixed sample of length-compatible pairs.
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  for (uint32_t i = 0; i < data.strings.size() && pairs.size() < 100; ++i) {
    for (uint32_t j = i + 1; j < data.strings.size() && pairs.size() < 100;
         ++j) {
      if (std::abs(data.strings[i].length() - data.strings[j].length()) <= 2) {
        pairs.push_back({i, j});
      }
    }
  }
  double checksum = 0.0;
  for (auto _ : state) {
    checksum = 0.0;
    for (const auto& [lhs, rhs] : pairs) {
      if (use_trie) {
        Result<double> p =
            TrieVerifyProbability(data.strings[lhs], data.strings[rhs], 2);
        UJOIN_CHECK(p.ok());
        checksum += p.value();
      } else {
        Result<double> e =
            ExpectedEditDistance(data.strings[lhs], data.strings[rhs]);
        UJOIN_CHECK(e.ok());
        checksum += e.value();
      }
    }
    benchmark::DoNotOptimize(checksum);
  }
  state.SetLabel(use_trie ? "trie_k_tau_verify" : "exact_eed");
  state.counters["pairs"] = static_cast<double>(pairs.size());
}
BENCHMARK(BM_Sec79_PerPair)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  return ujoin::bench::RunReportMain(argc, argv, "bench_sec79_eed",
                                     "BENCH_sec79_eed.json");
}
