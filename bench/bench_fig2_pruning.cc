// Figure 2 — effectiveness vs. efficiency of pruning.
//
// Applies each filtering scheme *independently* to the same stream of
// length-compatible pairs (θ = 0.2, k = 2, τ = 0.1 on both datasets, as in
// the paper) and reports, per filter, the candidates remaining and the time
// to apply it.  Paper findings to reproduce: CDF bounds prune tightest but
// cost the most; q-gram filtering is orders of magnitude faster thanks to
// the inverted index and still prunes most pairs; frequency-distance
// filtering is cheap (especially on protein data: smaller alphabet, lower
// uncertainty) but the least tight.

#include <algorithm>
#include <map>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_report.h"
#include "bench_util.h"
#include "datagen/datagen.h"
#include "filter/cdf_filter.h"
#include "filter/freq_filter.h"
#include "index/segment_index.h"
#include "util/check.h"
#include "util/timer.h"

namespace {

using namespace ujoin;
using ujoin::bench::DblpConfig;
using ujoin::bench::ProteinConfig;
using ujoin::bench::Scaled;

struct PairStream {
  Dataset data;
  std::vector<uint32_t> order;          // ids sorted by length
  std::vector<std::pair<uint32_t, uint32_t>> pairs;  // length-compatible
};

const PairStream& CachedStream(bool protein, int k) {
  static std::map<std::pair<bool, int>, PairStream> cache;
  const auto key = std::make_pair(protein, k);
  auto it = cache.find(key);
  if (it == cache.end()) {
    PairStream stream{GenerateDataset(
                          protein ? ProteinConfig::Data(Scaled(1000), 0.2)
                                  : DblpConfig::Data(Scaled(2000), 0.2)),
                      {},
                      {}};
    stream.order.resize(stream.data.strings.size());
    std::iota(stream.order.begin(), stream.order.end(), 0);
    std::stable_sort(stream.order.begin(), stream.order.end(),
                     [&](uint32_t a, uint32_t b) {
                       return stream.data.strings[a].length() <
                              stream.data.strings[b].length();
                     });
    for (size_t i = 0; i < stream.order.size(); ++i) {
      for (size_t j = i; j-- > 0;) {
        const int gap = stream.data.strings[stream.order[i]].length() -
                        stream.data.strings[stream.order[j]].length();
        if (gap > k) break;
        stream.pairs.push_back({stream.order[i], stream.order[j]});
      }
    }
    it = cache.emplace(key, std::move(stream)).first;
  }
  return it->second;
}

constexpr double kTau = 0.1;
constexpr int kK = 2;
constexpr int kQ = 3;

// q-gram filtering through the inverted index (insert-then-query flow).
void BM_Fig2_QGram(benchmark::State& state) {
  const bool protein = state.range(0) != 0;
  const PairStream& stream = CachedStream(protein, kK);
  int64_t survivors = 0;
  for (auto _ : state) {
    survivors = 0;
    InvertedSegmentIndex index(kK, kQ);
    for (uint32_t pos = 0; pos < stream.order.size(); ++pos) {
      const UncertainString& r = stream.data.strings[stream.order[pos]];
      for (int l = std::max(1, r.length() - kK); l <= r.length(); ++l) {
        survivors +=
            static_cast<int64_t>(index.Query(r, l, kTau).size());
      }
      UJOIN_CHECK(index.Insert(pos, r).ok());
    }
    benchmark::DoNotOptimize(survivors);
  }
  state.SetLabel(protein ? "protein/qgram" : "dblp/qgram");
  state.counters["pairs_in"] = static_cast<double>(stream.pairs.size());
  state.counters["candidates"] = static_cast<double>(survivors);
}

// Frequency-distance filtering applied to every length-compatible pair.
void BM_Fig2_Freq(benchmark::State& state) {
  const bool protein = state.range(0) != 0;
  const PairStream& stream = CachedStream(protein, kK);
  std::vector<FrequencySummary> summaries;
  summaries.reserve(stream.data.strings.size());
  for (const UncertainString& s : stream.data.strings) {
    summaries.push_back(FrequencySummary::Build(s, stream.data.alphabet));
  }
  int64_t survivors = 0;
  for (auto _ : state) {
    survivors = 0;
    for (const auto& [lhs, rhs] : stream.pairs) {
      survivors += EvaluateFreqFilter(summaries[lhs], summaries[rhs], kK)
                       .Survives(kK, kTau);
    }
    benchmark::DoNotOptimize(survivors);
  }
  state.SetLabel(protein ? "protein/freq" : "dblp/freq");
  state.counters["pairs_in"] = static_cast<double>(stream.pairs.size());
  state.counters["candidates"] = static_cast<double>(survivors);
}

// CDF-bound filtering applied to every length-compatible pair.
void BM_Fig2_Cdf(benchmark::State& state) {
  const bool protein = state.range(0) != 0;
  const PairStream& stream = CachedStream(protein, kK);
  int64_t survivors = 0;
  for (auto _ : state) {
    survivors = 0;
    for (const auto& [lhs, rhs] : stream.pairs) {
      const CdfFilterOutcome out =
          EvaluateCdfFilter(stream.data.strings[lhs],
                            stream.data.strings[rhs], kK, kTau);
      survivors += out.decision != CdfDecision::kReject;
    }
    benchmark::DoNotOptimize(survivors);
  }
  state.SetLabel(protein ? "protein/cdf" : "dblp/cdf");
  state.counters["pairs_in"] = static_cast<double>(stream.pairs.size());
  state.counters["candidates"] = static_cast<double>(survivors);
}

BENCHMARK(BM_Fig2_QGram)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Fig2_Freq)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Fig2_Cdf)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  return ujoin::bench::RunReportMain(argc, argv, "bench_fig2_pruning",
                                     "BENCH_fig2_pruning.json");
}
