// Figure 4 — effect of the uncertain-position fraction θ.
//
// Sweeps θ for QFCT and FCT on both dataset kinds.  The paper's trends:
// query time grows with θ for every algorithm (probe sets, frequency pmfs,
// CDF cells and above all verification all grow), QFCT stays well below
// FCT on dblp, while FCT narrows the gap on protein data where frequency
// filtering is cheap.

#include <map>
#include <string>
#include <utility>

#include <benchmark/benchmark.h>

#include "bench_report.h"
#include "bench_util.h"
#include "datagen/datagen.h"
#include "join/self_join.h"
#include "util/check.h"

namespace {

using namespace ujoin;
using ujoin::bench::DblpConfig;
using ujoin::bench::ProteinConfig;
using ujoin::bench::Scaled;
using ujoin::bench::WithVariant;

const Dataset& CachedDataset(bool protein, int theta_permille) {
  static std::map<std::pair<bool, int>, Dataset> cache;
  const auto key = std::make_pair(protein, theta_permille);
  auto it = cache.find(key);
  if (it == cache.end()) {
    const double theta = theta_permille / 1000.0;
    DatasetOptions opt = protein
                             ? ProteinConfig::Data(Scaled(800), theta)
                             : DblpConfig::Data(Scaled(1500), theta);
    it = cache.emplace(key, GenerateDataset(opt)).first;
  }
  return it->second;
}

void RunTheta(benchmark::State& state, bool protein, const char* variant) {
  const int theta_permille = static_cast<int>(state.range(0));
  const Dataset& data = CachedDataset(protein, theta_permille);
  const JoinOptions options = WithVariant(
      protein ? ProteinConfig::Join() : DblpConfig::Join(), variant);
  JoinStats stats;
  for (auto _ : state) {
    Result<SelfJoinResult> out =
        SimilaritySelfJoin(data.strings, data.alphabet, options);
    UJOIN_CHECK(out.ok());
    stats = out->stats;
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel(std::string(protein ? "protein/" : "dblp/") + variant +
                 "/theta=" + std::to_string(theta_permille / 1000.0));
  state.counters["filter_ms"] =
      (stats.FilterTime() + stats.index_build_time) * 1e3;
  state.counters["verify_ms"] = stats.verify_time * 1e3;
  state.counters["total_ms"] = stats.total_time * 1e3;
  state.counters["results"] = static_cast<double>(stats.result_pairs);
}

void BM_Fig4_Dblp_QFCT(benchmark::State& state) {
  RunTheta(state, false, "QFCT");
}
void BM_Fig4_Dblp_FCT(benchmark::State& state) { RunTheta(state, false, "FCT"); }
void BM_Fig4_Protein_QFCT(benchmark::State& state) {
  RunTheta(state, true, "QFCT");
}
void BM_Fig4_Protein_FCT(benchmark::State& state) {
  RunTheta(state, true, "FCT");
}

// dblp sweeps θ in 0.1–0.4; protein in 0.05–0.2 (the paper's ranges).
BENCHMARK(BM_Fig4_Dblp_QFCT)
    ->Arg(100)->Arg(200)->Arg(300)->Arg(400)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Fig4_Dblp_FCT)
    ->Arg(100)->Arg(200)->Arg(300)->Arg(400)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Fig4_Protein_QFCT)
    ->Arg(50)->Arg(100)->Arg(150)->Arg(200)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Fig4_Protein_FCT)
    ->Arg(50)->Arg(100)->Arg(150)->Arg(200)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  return ujoin::bench::RunReportMain(argc, argv, "bench_fig4_theta",
                                     "BENCH_fig4_theta.json");
}
