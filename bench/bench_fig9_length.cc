// Figure 9 — effect of string length.
//
// Appends each string to itself 0–3 times (the paper's workload), keeping
// at most 8 probabilistic characters per string, and reports QFCT and FCT
// query time.  Paper trends: costs rise with length for both algorithms;
// frequency filtering is length-insensitive so FCT closes part of the gap;
// verification begins to dominate; output size shrinks but query time
// still grows.

#include <map>
#include <string>
#include <utility>

#include <benchmark/benchmark.h>

#include "bench_report.h"
#include "bench_util.h"
#include "datagen/datagen.h"
#include "join/self_join.h"
#include "util/check.h"

namespace {

using namespace ujoin;
using ujoin::bench::DblpConfig;
using ujoin::bench::ProteinConfig;
using ujoin::bench::Scaled;
using ujoin::bench::WithVariant;

const Dataset& CachedDataset(bool protein, int repeats) {
  static std::map<std::pair<bool, int>, Dataset> cache;
  const auto key = std::make_pair(protein, repeats);
  auto it = cache.find(key);
  if (it == cache.end()) {
    Dataset data = GenerateDataset(protein ? ProteinConfig::Data(Scaled(350))
                                           : DblpConfig::Data(Scaled(1000)));
    // Figure 9: append to itself `repeats` times.  The paper caps strings
    // at 8 probabilistic characters; we cap at 6 (dblp) / 5 (protein, whose
    // x4 strings reach length 180) so the tries stay within the node
    // budget (see EXPERIMENTS.md).
    const int cap = protein ? 5 : 6;
    for (UncertainString& s : data.strings) {
      s = CapUncertainPositions(AppendSelf(s, repeats), cap);
    }
    it = cache.emplace(key, std::move(data)).first;
  }
  return it->second;
}

void RunLength(benchmark::State& state, bool protein, const char* variant) {
  const int repeats = static_cast<int>(state.range(0));
  const Dataset& data = CachedDataset(protein, repeats);
  const JoinOptions options = WithVariant(
      protein ? ProteinConfig::Join() : DblpConfig::Join(), variant);
  JoinStats stats;
  for (auto _ : state) {
    Result<SelfJoinResult> out =
        SimilaritySelfJoin(data.strings, data.alphabet, options);
    UJOIN_CHECK(out.ok());
    stats = out->stats;
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel(std::string(protein ? "protein/" : "dblp/") + variant +
                 "/x" + std::to_string(repeats + 1));
  state.counters["total_ms"] = stats.total_time * 1e3;
  state.counters["filter_ms"] =
      (stats.FilterTime() + stats.index_build_time) * 1e3;
  state.counters["verify_ms"] = stats.verify_time * 1e3;
  state.counters["results"] = static_cast<double>(stats.result_pairs);
}

void BM_Fig9_Dblp_QFCT(benchmark::State& state) {
  RunLength(state, false, "QFCT");
}
void BM_Fig9_Dblp_FCT(benchmark::State& state) {
  RunLength(state, false, "FCT");
}
void BM_Fig9_Protein_QFCT(benchmark::State& state) {
  RunLength(state, true, "QFCT");
}
void BM_Fig9_Protein_FCT(benchmark::State& state) {
  RunLength(state, true, "FCT");
}

BENCHMARK(BM_Fig9_Dblp_QFCT)
    ->Arg(0)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Fig9_Dblp_FCT)
    ->Arg(0)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Fig9_Protein_QFCT)
    ->Arg(0)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Fig9_Protein_FCT)
    ->Arg(0)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  return ujoin::bench::RunReportMain(argc, argv, "bench_fig9_length",
                                     "BENCH_fig9_length.json");
}
