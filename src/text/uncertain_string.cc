#include "text/uncertain_string.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/check.h"
#include "util/math_util.h"

namespace ujoin {

namespace {

// Tolerance for the sum of a position's probabilities before normalization.
constexpr double kSumTolerance = 1e-6;

std::string FormatProb(double p) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", p);
  return buf;
}

}  // namespace

UncertainString UncertainString::FromDeterministic(std::string_view s) {
  UncertainString out;
  out.offsets_.reserve(s.size() + 1);
  out.entries_.reserve(s.size());
  for (char c : s) {
    out.entries_.push_back(CharProb{c, 1.0});
    out.offsets_.push_back(static_cast<uint32_t>(out.entries_.size()));
  }
  return out;
}

double UncertainString::ProbabilityOf(int i, char c) const {
  for (const CharProb& cp : AlternativesAt(i)) {
    if (cp.symbol == c) return cp.prob;
    if (cp.symbol > c) break;  // alternatives are sorted by symbol
  }
  return 0.0;
}

char UncertainString::MostLikelySymbol(int i) const {
  auto alts = AlternativesAt(i);
  UJOIN_DCHECK(!alts.empty());
  const CharProb* best = &alts[0];
  for (const CharProb& cp : alts) {
    if (cp.prob > best->prob) best = &cp;
  }
  return best->symbol;
}

std::string UncertainString::MostLikelyInstance() const {
  std::string out;
  out.reserve(static_cast<size_t>(length()));
  for (int i = 0; i < length(); ++i) out.push_back(MostLikelySymbol(i));
  return out;
}

int64_t UncertainString::WorldCount() const {
  int64_t count = 1;
  for (int i = 0; i < length(); ++i) {
    count = SaturatingMul(count, NumAlternatives(i));
  }
  return count;
}

UncertainString UncertainString::Substring(int pos, int len) const {
  UJOIN_CHECK(pos >= 0 && len >= 0 && pos + len <= length());
  UncertainString out;
  const size_t upos = static_cast<size_t>(pos);
  out.offsets_.reserve(static_cast<size_t>(len) + 1);
  out.entries_.assign(entries_.begin() + offsets_[upos],
                      entries_.begin() + offsets_[upos + static_cast<size_t>(len)]);
  const uint32_t base = offsets_[upos];
  for (int i = 1; i <= len; ++i) {
    out.offsets_.push_back(offsets_[upos + static_cast<size_t>(i)] - base);
    if (NumAlternatives(pos + i - 1) > 1) ++out.num_uncertain_;
  }
  return out;
}

UncertainString UncertainString::Concat(const UncertainString& a,
                                        const UncertainString& b) {
  UncertainString out = a;
  out.entries_.insert(out.entries_.end(), b.entries_.begin(),
                      b.entries_.end());
  const uint32_t base = out.offsets_.back();
  for (size_t i = 1; i < b.offsets_.size(); ++i) {
    out.offsets_.push_back(base + b.offsets_[i]);
  }
  out.num_uncertain_ += b.num_uncertain_;
  return out;
}

std::string UncertainString::ToString() const {
  std::string out;
  for (int i = 0; i < length(); ++i) {
    auto alts = AlternativesAt(i);
    if (alts.size() == 1) {
      out.push_back(alts[0].symbol);
      continue;
    }
    out.push_back('{');
    for (size_t j = 0; j < alts.size(); ++j) {
      if (j > 0) out.push_back(',');
      out.push_back('(');
      out.push_back(alts[j].symbol);
      out.push_back(',');
      out += FormatProb(alts[j].prob);
      out.push_back(')');
    }
    out.push_back('}');
  }
  return out;
}

UncertainString::Builder& UncertainString::Builder::AddCertain(char c) {
  s_.entries_.push_back(CharProb{c, 1.0});
  s_.offsets_.push_back(static_cast<uint32_t>(s_.entries_.size()));
  return *this;
}

UncertainString::Builder& UncertainString::Builder::AddUncertain(
    std::vector<CharProb> alternatives) {
  if (!deferred_error_.ok()) return *this;
  const int position = s_.length();
  if (alternatives.empty()) {
    deferred_error_ = Status::InvalidArgument(
        "position " + std::to_string(position) + " has no alternatives");
    return *this;
  }
  std::sort(alternatives.begin(), alternatives.end(),
            [](const CharProb& a, const CharProb& b) {
              return a.symbol < b.symbol;
            });
  double sum = 0.0;
  for (size_t j = 0; j < alternatives.size(); ++j) {
    if (alternatives[j].prob <= 0.0) {
      deferred_error_ = Status::InvalidArgument(
          "non-positive probability at position " + std::to_string(position));
      return *this;
    }
    if (j > 0 && alternatives[j].symbol == alternatives[j - 1].symbol) {
      deferred_error_ = Status::InvalidArgument(
          std::string("duplicate alternative '") + alternatives[j].symbol +
          "' at position " + std::to_string(position));
      return *this;
    }
    sum += alternatives[j].prob;
  }
  if (std::fabs(sum - 1.0) > kSumTolerance) {
    deferred_error_ = Status::InvalidArgument(
        "probabilities at position " + std::to_string(position) +
        " sum to " + FormatProb(sum) + ", expected 1");
    return *this;
  }
  // Renormalize exactly so downstream products stay well-behaved.
  for (CharProb& cp : alternatives) cp.prob /= sum;
  if (alternatives.size() > 1) ++s_.num_uncertain_;
  s_.entries_.insert(s_.entries_.end(), alternatives.begin(),
                     alternatives.end());
  s_.offsets_.push_back(static_cast<uint32_t>(s_.entries_.size()));
  return *this;
}

Result<UncertainString> UncertainString::Builder::Build() {
  if (!deferred_error_.ok()) {
    Status err = deferred_error_;
    *this = Builder();
    return err;
  }
  UncertainString out = std::move(s_);
  *this = Builder();
  return out;
}

Result<UncertainString> UncertainString::Parse(std::string_view text,
                                               const Alphabet& alphabet) {
  Builder builder;
  size_t i = 0;
  auto symbol_error = [&](char c) {
    return Status::InvalidArgument(std::string("symbol '") + c +
                                   "' is not in the alphabet");
  };
  while (i < text.size()) {
    char c = text[i];
    if (c != '{') {
      if (!alphabet.Contains(c)) return symbol_error(c);
      builder.AddCertain(c);
      ++i;
      continue;
    }
    // Parse `{(c,p),(c,p),...}`.
    ++i;  // consume '{'
    std::vector<CharProb> alts;
    for (;;) {
      if (i >= text.size() || text[i] != '(') {
        return Status::InvalidArgument("expected '(' in uncertain position");
      }
      ++i;  // consume '('
      if (i >= text.size()) {
        return Status::InvalidArgument("truncated uncertain position");
      }
      char sym = text[i++];
      if (!alphabet.Contains(sym)) return symbol_error(sym);
      if (i >= text.size() || text[i] != ',') {
        return Status::InvalidArgument("expected ',' after symbol");
      }
      ++i;  // consume ','
      size_t start = i;
      while (i < text.size() && text[i] != ')') ++i;
      if (i >= text.size()) {
        return Status::InvalidArgument("expected ')' after probability");
      }
      std::string prob_text(text.substr(start, i - start));
      ++i;  // consume ')'
      char* end = nullptr;
      double prob = std::strtod(prob_text.c_str(), &end);
      if (end == prob_text.c_str() || *end != '\0') {
        return Status::InvalidArgument("malformed probability '" + prob_text +
                                       "'");
      }
      alts.push_back(CharProb{sym, prob});
      if (i < text.size() && text[i] == ',') {
        ++i;  // consume ',' before the next alternative
        continue;
      }
      break;
    }
    if (i >= text.size() || text[i] != '}') {
      return Status::InvalidArgument("expected '}' closing uncertain position");
    }
    ++i;  // consume '}'
    builder.AddUncertain(std::move(alts));
  }
  return builder.Build();
}

double MatchProbabilityAt(std::string_view w, const UncertainString& t,
                          int start) {
  if (start < 0 || start + static_cast<int>(w.size()) > t.length()) return 0.0;
  double p = 1.0;
  for (size_t j = 0; j < w.size(); ++j) {
    p *= t.ProbabilityOf(start + static_cast<int>(j), w[j]);
    if (p == 0.0) return 0.0;
  }
  return p;
}

double MatchProbability(std::string_view w, const UncertainString& t) {
  if (static_cast<int>(w.size()) != t.length()) return 0.0;
  return MatchProbabilityAt(w, t, 0);
}

double MatchProbabilityAt(const UncertainString& w, const UncertainString& t,
                          int start) {
  if (start < 0 || start + w.length() > t.length()) return 0.0;
  double p = 1.0;
  for (int j = 0; j < w.length(); ++j) {
    auto wa = w.AlternativesAt(j);
    auto ta = t.AlternativesAt(start + j);
    // Both alternative lists are sorted by symbol: merge them.
    double cell = 0.0;
    size_t a = 0, b = 0;
    while (a < wa.size() && b < ta.size()) {
      if (wa[a].symbol == ta[b].symbol) {
        cell += wa[a].prob * ta[b].prob;
        ++a;
        ++b;
      } else if (wa[a].symbol < ta[b].symbol) {
        ++a;
      } else {
        ++b;
      }
    }
    p *= cell;
    if (p == 0.0) return 0.0;
  }
  return p;
}

double MatchProbability(const UncertainString& w, const UncertainString& t) {
  if (w.length() != t.length()) return 0.0;
  return MatchProbabilityAt(w, t, 0);
}

}  // namespace ujoin
