#ifndef UJOIN_TEXT_EDIT_DISTANCE_H_
#define UJOIN_TEXT_EDIT_DISTANCE_H_

#include <string_view>

namespace ujoin {

/// Levenshtein edit distance between deterministic strings: the minimum
/// number of single-character insertions, deletions and substitutions
/// transforming `a` into `b`.  O(|a|·|b|) time, O(min) space.
int EditDistance(std::string_view a, std::string_view b);

/// Thresholded edit distance: returns ed(a, b) when it is at most `k`, and
/// k+1 otherwise.  Banded DP in O((2k+1)·min(|a|,|b|)) time — the workhorse
/// for verification, where `k` is small.
int BoundedEditDistance(std::string_view a, std::string_view b, int k);

/// True when ed(a, b) <= k.
bool WithinEditDistance(std::string_view a, std::string_view b, int k);

}  // namespace ujoin

#endif  // UJOIN_TEXT_EDIT_DISTANCE_H_
