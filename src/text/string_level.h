#ifndef UJOIN_TEXT_STRING_LEVEL_H_
#define UJOIN_TEXT_STRING_LEVEL_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "text/uncertain_string.h"
#include "util/status.h"

namespace ujoin {

/// \brief A string-level uncertain string (Section 1): an explicit
/// probability distribution over complete instances.
///
/// This is the second uncertainty model of Jestes et al. [10].  Unlike the
/// character-level model it can express correlations between positions and
/// instances of *different lengths*, at the cost of enumerating the pdf
/// explicitly.  ujoin supports it as a first-class citizen: exact (k, τ)
/// matching, eed, conversions to/from the character-level model, and a
/// self-join (join/string_level_join.h).
///
/// Instances are stored sorted by descending probability (ties broken by
/// instance text), which the verification early-termination exploits.
class StringLevelUncertainString {
 public:
  struct Instance {
    std::string text;
    double prob;
  };

  /// Validates (non-empty, distinct instances, positive probabilities
  /// summing to 1 within tolerance) and normalizes.
  static Result<StringLevelUncertainString> Create(
      std::vector<Instance> instances);

  /// Expands a character-level string into its explicit pdf; fails with
  /// ResourceExhausted beyond `max_worlds` instances.
  static Result<StringLevelUncertainString> FromCharacterLevel(
      const UncertainString& s, int64_t max_worlds = 1 << 20);

  /// Converts to the character-level model.  Succeeds only when the pdf
  /// factorizes exactly into independent per-position distributions (equal
  /// lengths and product-form probabilities); otherwise returns
  /// FailedPrecondition — the character-level model cannot represent
  /// correlated positions.
  Result<UncertainString> ToCharacterLevel(double tolerance = 1e-9) const;

  int num_instances() const { return static_cast<int>(instances_.size()); }
  const Instance& instance(int i) const {
    return instances_[static_cast<size_t>(i)];
  }
  const std::vector<Instance>& instances() const { return instances_; }

  int min_length() const { return min_length_; }
  int max_length() const { return max_length_; }

  /// The highest-probability instance.
  const std::string& MostLikelyInstance() const { return instances_[0].text; }

  size_t MemoryUsage() const;

 private:
  explicit StringLevelUncertainString(std::vector<Instance> instances);

  std::vector<Instance> instances_;  // sorted by descending probability
  int min_length_ = 0;
  int max_length_ = 0;
};

/// Exact Pr(ed(A, B) <= k) under the joint (independent) distribution.
/// O(|A| · |B|) thresholded edit-distance computations; instances are
/// visited in decreasing probability so `tau_accept`/`tau_reject`-style
/// callers can use DecideStringLevelSimilar below instead.
double StringLevelMatchProbability(const StringLevelUncertainString& a,
                                   const StringLevelUncertainString& b, int k);

/// (k, τ) verdict with early termination: stops as soon as the accumulated
/// matching mass exceeds τ or the undecided mass cannot lift it above τ.
struct StringLevelVerdict {
  bool similar;
  double lower;
  double upper;
  bool exact;
};
StringLevelVerdict DecideStringLevelSimilar(
    const StringLevelUncertainString& a, const StringLevelUncertainString& b,
    int k, double tau);

/// Expected edit distance under the string-level model.
double StringLevelExpectedEditDistance(const StringLevelUncertainString& a,
                                       const StringLevelUncertainString& b);

}  // namespace ujoin

#endif  // UJOIN_TEXT_STRING_LEVEL_H_
