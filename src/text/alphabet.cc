#include "text/alphabet.h"

#include "util/check.h"

namespace ujoin {

Result<Alphabet> Alphabet::Create(std::string_view chars) {
  if (chars.empty()) {
    return Status::InvalidArgument("alphabet must contain at least one symbol");
  }
  Alphabet a;
  for (char c : chars) {
    if (a.Contains(c)) {
      return Status::InvalidArgument(std::string("duplicate symbol '") + c +
                                     "' in alphabet");
    }
    a.index_[static_cast<unsigned char>(c)] =
        static_cast<int16_t>(a.symbols_.size());
    a.symbols_.push_back(c);
  }
  return a;
}

namespace {

Alphabet MustCreate(std::string_view chars) {
  Result<Alphabet> r = Alphabet::Create(chars);
  UJOIN_CHECK(r.ok());
  return std::move(r).value();
}

}  // namespace

Alphabet Alphabet::Dna() { return MustCreate("ACGT"); }

Alphabet Alphabet::Names() { return MustCreate("abcdefghijklmnopqrstuvwxyz "); }

Alphabet Alphabet::Protein() {
  // 20 standard amino acids plus the ambiguity codes B and Z (|Σ| = 22),
  // matching the alphabet size reported for the paper's protein dataset.
  return MustCreate("ACDEFGHIKLMNPQRSTVWYBZ");
}

Alphabet Alphabet::Uppercase() { return MustCreate("ABCDEFGHIJKLMNOPQRSTUVWXYZ"); }

}  // namespace ujoin
