#include "text/frequency.h"

#include "util/check.h"

namespace ujoin {

Result<FrequencyVector> MakeFrequencyVector(std::string_view s,
                                            const Alphabet& alphabet) {
  FrequencyVector f(static_cast<size_t>(alphabet.size()), 0);
  for (char c : s) {
    const int idx = alphabet.IndexOf(c);
    if (idx < 0) {
      return Status::InvalidArgument(std::string("symbol '") + c +
                                     "' is not in the alphabet");
    }
    ++f[static_cast<size_t>(idx)];
  }
  return f;
}

int FrequencyDistance(const FrequencyVector& fr, const FrequencyVector& fs) {
  UJOIN_CHECK(fr.size() == fs.size());
  int pos_surplus = 0;
  int neg_surplus = 0;
  for (size_t i = 0; i < fr.size(); ++i) {
    const int diff = fr[i] - fs[i];
    if (diff > 0) {
      pos_surplus += diff;
    } else {
      neg_surplus -= diff;
    }
  }
  return pos_surplus > neg_surplus ? pos_surplus : neg_surplus;
}

}  // namespace ujoin
