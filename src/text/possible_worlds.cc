#include "text/possible_worlds.h"

#include "util/check.h"

namespace ujoin {

WorldEnumerator::WorldEnumerator(const UncertainString& s) : s_(s) { Reset(); }

void WorldEnumerator::Reset() {
  uncertain_positions_.clear();
  current_.resize(static_cast<size_t>(s_.length()));
  for (int i = 0; i < s_.length(); ++i) {
    current_[static_cast<size_t>(i)] = s_.AlternativesAt(i)[0].symbol;
    if (s_.NumAlternatives(i) > 1) uncertain_positions_.push_back(i);
  }
  choice_.assign(uncertain_positions_.size(), 0);
  done_ = false;
}

bool WorldEnumerator::Next(std::string* instance, double* prob) {
  if (done_) return false;
  // Emit the current odometer state.
  double p = 1.0;
  for (size_t u = 0; u < uncertain_positions_.size(); ++u) {
    const int pos = uncertain_positions_[u];
    p *= s_.AlternativesAt(pos)[static_cast<size_t>(choice_[u])].prob;
  }
  *instance = current_;
  *prob = p;
  // Advance the odometer (least-significant digit last).
  for (size_t u = uncertain_positions_.size(); u-- > 0;) {
    const int pos = uncertain_positions_[u];
    if (choice_[u] + 1 < s_.NumAlternatives(pos)) {
      ++choice_[u];
      current_[static_cast<size_t>(pos)] =
          s_.AlternativesAt(pos)[static_cast<size_t>(choice_[u])].symbol;
      return true;
    }
    choice_[u] = 0;
    current_[static_cast<size_t>(pos)] = s_.AlternativesAt(pos)[0].symbol;
  }
  done_ = true;
  return true;
}

Result<std::vector<std::pair<std::string, double>>> AllWorlds(
    const UncertainString& s, int64_t max_worlds) {
  const int64_t count = s.WorldCount();
  if (count > max_worlds) {
    return Status::ResourceExhausted(
        "string has " + std::to_string(count) +
        " possible worlds, more than the cap of " + std::to_string(max_worlds));
  }
  std::vector<std::pair<std::string, double>> out;
  out.reserve(static_cast<size_t>(count));
  ForEachWorld(s, [&](const std::string& instance, double prob) {
    out.emplace_back(instance, prob);
  });
  return out;
}

}  // namespace ujoin
