#ifndef UJOIN_TEXT_POSSIBLE_WORLDS_H_
#define UJOIN_TEXT_POSSIBLE_WORLDS_H_

#include <string>
#include <utility>
#include <vector>

#include "text/uncertain_string.h"
#include "util/status.h"

namespace ujoin {

/// \brief Streams the possible worlds Ω of an uncertain string.
///
/// Each world is a deterministic instance together with its existence
/// probability; probabilities over all worlds sum to 1.  Enumeration order is
/// lexicographic in the per-position alternative indices (an odometer over
/// the uncertain positions), so it is deterministic and instances sharing a
/// prefix of alternative choices are adjacent.
///
///   WorldEnumerator worlds(s);
///   std::string instance; double prob;
///   while (worlds.Next(&instance, &prob)) { ... }
///
/// The caller is responsible for checking `s.WorldCount()` beforehand when
/// exponential blow-up is a concern; AllWorlds() below enforces a cap.
class WorldEnumerator {
 public:
  explicit WorldEnumerator(const UncertainString& s);

  /// Produces the next world; returns false when Ω is exhausted.
  bool Next(std::string* instance, double* prob);

  /// Restarts enumeration from the first world.
  void Reset();

 private:
  const UncertainString& s_;
  std::vector<int> uncertain_positions_;
  std::vector<int> choice_;  // current alternative index per uncertain position
  std::string current_;      // instance under construction
  bool done_ = false;
};

/// Materializes all possible worlds of `s`.  Fails with ResourceExhausted
/// when the world count exceeds `max_worlds`.
Result<std::vector<std::pair<std::string, double>>> AllWorlds(
    const UncertainString& s, int64_t max_worlds = 1 << 20);

/// Invokes `fn(instance, prob)` for every possible world of `s`.
template <typename Fn>
void ForEachWorld(const UncertainString& s, Fn&& fn) {
  WorldEnumerator worlds(s);
  std::string instance;
  double prob;
  while (worlds.Next(&instance, &prob)) {
    fn(static_cast<const std::string&>(instance), prob);
  }
}

}  // namespace ujoin

#endif  // UJOIN_TEXT_POSSIBLE_WORLDS_H_
