#ifndef UJOIN_TEXT_FREQUENCY_H_
#define UJOIN_TEXT_FREQUENCY_H_

#include <string_view>
#include <vector>

#include "text/alphabet.h"
#include "util/status.h"

namespace ujoin {

/// \brief Per-symbol occurrence counts f(s) of a deterministic string
/// (Section 2.2).  Index i counts alphabet symbol i.
using FrequencyVector = std::vector<int>;

/// Builds the frequency vector of `s`; fails when `s` contains a symbol
/// outside `alphabet`.
Result<FrequencyVector> MakeFrequencyVector(std::string_view s,
                                            const Alphabet& alphabet);

/// Frequency distance fd(r, s) = max(pD, nD) where pD sums positive surpluses
/// of r over s and nD the reverse.  fd lower-bounds the edit distance
/// (Kahveci & Singh), which is what makes it a safe pruning signal.
int FrequencyDistance(const FrequencyVector& fr, const FrequencyVector& fs);

}  // namespace ujoin

#endif  // UJOIN_TEXT_FREQUENCY_H_
