#ifndef UJOIN_TEXT_ALPHABET_H_
#define UJOIN_TEXT_ALPHABET_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace ujoin {

/// \brief Finite symbol set Σ over which (uncertain) strings are defined.
///
/// An alphabet maps raw bytes to dense indices [0, size) so that frequency
/// vectors and per-character tables can be plain arrays.  The factories below
/// mirror the alphabets used in the paper's experiments: author names
/// (|Σ| = 27), protein sequences (|Σ| = 22), plus DNA for examples and tests.
class Alphabet {
 public:
  /// Builds an alphabet from the distinct characters of `chars` (order kept).
  static Result<Alphabet> Create(std::string_view chars);

  /// `ACGT` — used by the paper's running examples (Table 1).
  static Alphabet Dna();

  /// Lowercase letters plus space: the dblp author-name alphabet (|Σ| = 27).
  static Alphabet Names();

  /// Twenty-two amino-acid letters (20 standard + B, Z), |Σ| = 22.
  static Alphabet Protein();

  /// Uppercase A–Z, handy for tests.
  static Alphabet Uppercase();

  /// Number of symbols.
  int size() const { return static_cast<int>(symbols_.size()); }

  /// Dense index of `c`, or -1 when `c` is not in the alphabet.
  int IndexOf(char c) const { return index_[static_cast<unsigned char>(c)]; }

  /// True when `c` belongs to the alphabet.
  bool Contains(char c) const { return IndexOf(c) >= 0; }

  /// Symbol at dense index `i` (0 <= i < size()).
  char SymbolAt(int i) const { return symbols_[static_cast<size_t>(i)]; }

  /// All symbols in index order.
  const std::string& symbols() const { return symbols_; }

 private:
  Alphabet() { index_.fill(-1); }

  std::string symbols_;
  std::array<int16_t, 256> index_;
};

}  // namespace ujoin

#endif  // UJOIN_TEXT_ALPHABET_H_
