#ifndef UJOIN_TEXT_UNCERTAIN_STRING_H_
#define UJOIN_TEXT_UNCERTAIN_STRING_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "text/alphabet.h"
#include "util/status.h"

namespace ujoin {

/// \brief One alternative of an uncertain character: symbol plus probability.
struct CharProb {
  char symbol;
  double prob;

  friend bool operator==(const CharProb& a, const CharProb& b) {
    return a.symbol == b.symbol && a.prob == b.prob;
  }
};

/// \brief A character-level uncertain string (Section 1 of the paper).
///
/// S = S[1]S[2]...S[l] where each position holds a discrete distribution over
/// the alphabet: S[i] = {(c_j, p_i(c_j))} with probabilities summing to 1.
/// Positions are 0-based in this API (the paper uses 1-based positions).
///
/// Alternatives at each position are stored sorted by symbol in one flat
/// array shared by all positions, so iteration is cache-friendly and a
/// deterministic position costs a single entry.  A deterministic string is
/// simply an uncertain string whose every position has one alternative.
///
/// Instances are immutable; use Builder or Parse to construct them.
class UncertainString {
 public:
  class Builder;

  /// Empty string.
  UncertainString() { offsets_.push_back(0); }

  /// Wraps a deterministic string (every position certain with probability 1).
  static UncertainString FromDeterministic(std::string_view s);

  /// Parses the paper's notation, e.g. `A{(C,0.5),(G,0.5)}A{(C,0.5),(G,0.5)}AC`.
  ///
  /// Every symbol must belong to `alphabet`; the probabilities of each
  /// uncertain position must be positive and sum to 1 (within a small
  /// tolerance; they are renormalized exactly).
  static Result<UncertainString> Parse(std::string_view text,
                                       const Alphabet& alphabet);

  /// Number of positions l.  All possible instances share this length.
  int length() const { return static_cast<int>(offsets_.size()) - 1; }

  bool empty() const { return length() == 0; }

  /// Number of alternatives at position i.
  int NumAlternatives(int i) const {
    const size_t pos = static_cast<size_t>(i);
    return static_cast<int>(offsets_[pos + 1] - offsets_[pos]);
  }

  /// Alternatives at position i, sorted by symbol.
  std::span<const CharProb> AlternativesAt(int i) const {
    const size_t pos = static_cast<size_t>(i);
    return {entries_.data() + offsets_[pos],
            entries_.data() + offsets_[pos + 1]};
  }

  /// True when position i is deterministic.
  bool IsCertain(int i) const { return NumAlternatives(i) == 1; }

  /// True when every position is deterministic.
  bool IsDeterministic() const { return num_uncertain_ == 0; }

  /// Number of uncertain (multi-alternative) positions.
  int NumUncertainPositions() const { return num_uncertain_; }

  /// p_i(c): probability of symbol `c` at position i (0 when absent).
  double ProbabilityOf(int i, char c) const;

  /// The highest-probability symbol at position i (ties broken by symbol).
  char MostLikelySymbol(int i) const;

  /// The instance formed by the most likely symbol at every position.
  std::string MostLikelyInstance() const;

  /// Number of possible worlds, saturated at kWorldCountCap.
  int64_t WorldCount() const;

  /// The uncertain substring S[pos .. pos+len-1].
  UncertainString Substring(int pos, int len) const;

  /// Concatenation (used e.g. by the Figure 9 self-append workload).
  static UncertainString Concat(const UncertainString& a,
                                const UncertainString& b);

  /// Renders the paper's notation (inverse of Parse for valid input).
  std::string ToString() const;

  /// Structural equality: same symbols and identical probabilities.
  friend bool operator==(const UncertainString& a, const UncertainString& b) {
    return a.offsets_ == b.offsets_ && a.entries_ == b.entries_;
  }

  /// Approximate size of this string's in-memory representation, in bytes.
  size_t MemoryUsage() const {
    return offsets_.capacity() * sizeof(uint32_t) +
           entries_.capacity() * sizeof(CharProb);
  }

 private:
  friend class Builder;

  std::vector<uint32_t> offsets_;  // length() + 1 entries
  std::vector<CharProb> entries_;  // alternatives, flat, sorted per position
  int num_uncertain_ = 0;
};

/// \brief Incremental constructor for UncertainString with validation.
class UncertainString::Builder {
 public:
  Builder() = default;

  /// Appends a deterministic position.
  Builder& AddCertain(char c);

  /// Appends an uncertain position with the given alternatives.  Alternatives
  /// are validated (distinct symbols, positive probabilities summing to 1
  /// within tolerance) when Build() runs.
  Builder& AddUncertain(std::vector<CharProb> alternatives);

  /// Validates and produces the string; the builder is left empty.
  Result<UncertainString> Build();

 private:
  UncertainString s_;
  Status deferred_error_;
};

/// Probability that deterministic `w` matches T starting at 0-based `start`:
/// Π_j p_{start+j}(w[j]).  Returns 0 when the window exceeds T.
double MatchProbabilityAt(std::string_view w, const UncertainString& t,
                          int start);

/// Probability that deterministic `w` equals T (0 unless lengths agree).
double MatchProbability(std::string_view w, const UncertainString& t);

/// Probability that uncertain W matches T starting at `start`:
/// Π_j Σ_c Pr(W[j]=c)·Pr(T[start+j]=c).
double MatchProbabilityAt(const UncertainString& w, const UncertainString& t,
                          int start);

/// Probability that uncertain W equals T (0 unless lengths agree).
double MatchProbability(const UncertainString& w, const UncertainString& t);

}  // namespace ujoin

#endif  // UJOIN_TEXT_UNCERTAIN_STRING_H_
