#include "text/edit_distance.h"

#include <algorithm>
#include <cstdlib>
#include <vector>

namespace ujoin {

int EditDistance(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);  // b is the shorter: O(|b|) space
  const int n = static_cast<int>(a.size());
  const int m = static_cast<int>(b.size());
  std::vector<int> row(static_cast<size_t>(m) + 1);
  for (int j = 0; j <= m; ++j) row[static_cast<size_t>(j)] = j;
  for (int i = 1; i <= n; ++i) {
    int diag = row[0];  // DP[i-1][0]
    row[0] = i;
    for (int j = 1; j <= m; ++j) {
      const int up = row[static_cast<size_t>(j)];
      const int cost = (a[static_cast<size_t>(i - 1)] ==
                        b[static_cast<size_t>(j - 1)])
                           ? 0
                           : 1;
      row[static_cast<size_t>(j)] =
          std::min({diag + cost, up + 1, row[static_cast<size_t>(j - 1)] + 1});
      diag = up;
    }
  }
  return row[static_cast<size_t>(m)];
}

int BoundedEditDistance(std::string_view a, std::string_view b, int k) {
  if (k < 0) return k + 1;  // no distance is <= a negative threshold
  if (a.size() < b.size()) std::swap(a, b);
  const int n = static_cast<int>(a.size());
  const int m = static_cast<int>(b.size());
  if (n - m > k) return k + 1;
  if (m == 0) return n <= k ? n : k + 1;

  // Banded DP over rows of `a`: only cells with |i - j| <= k can be <= k.
  const int kInf = k + 1;
  const int width = 2 * k + 1;
  // band[d] holds DP[i][i + d - k] for d in [0, width).
  std::vector<int> band(static_cast<size_t>(width), kInf);
  std::vector<int> next(static_cast<size_t>(width), kInf);
  // Row 0: DP[0][j] = j for j <= k.
  for (int d = k; d < width; ++d) {
    const int j = d - k;
    if (j <= m) band[static_cast<size_t>(d)] = j;
  }
  for (int i = 1; i <= n; ++i) {
    std::fill(next.begin(), next.end(), kInf);
    int row_min = kInf;
    const int j_lo = std::max(0, i - k);
    const int j_hi = std::min(m, i + k);
    for (int j = j_lo; j <= j_hi; ++j) {
      const int d = j - i + k;
      int best = kInf;
      if (j == 0) {
        best = i;  // first column
      } else {
        // Diagonal DP[i-1][j-1] sits at the same offset d in the previous row.
        const int diag = band[static_cast<size_t>(d)];
        const int cost = (a[static_cast<size_t>(i - 1)] ==
                          b[static_cast<size_t>(j - 1)])
                             ? 0
                             : 1;
        best = diag == kInf ? kInf : std::min(kInf, diag + cost);
        // Up: DP[i-1][j] at offset d+1.
        if (d + 1 < width && band[static_cast<size_t>(d + 1)] < kInf) {
          best = std::min(best, band[static_cast<size_t>(d + 1)] + 1);
        }
        // Left: DP[i][j-1] at offset d-1 in the current row.
        if (d - 1 >= 0 && next[static_cast<size_t>(d - 1)] < kInf) {
          best = std::min(best, next[static_cast<size_t>(d - 1)] + 1);
        }
      }
      next[static_cast<size_t>(d)] = std::min(best, kInf);
      row_min = std::min(row_min, next[static_cast<size_t>(d)]);
    }
    if (row_min >= kInf) return k + 1;  // prefix pruning: whole band exceeded
    band.swap(next);
  }
  const int d = m - n + k;
  if (d < 0 || d >= width) return k + 1;
  return std::min(band[static_cast<size_t>(d)], kInf);
}

bool WithinEditDistance(std::string_view a, std::string_view b, int k) {
  return BoundedEditDistance(a, b, k) <= k;
}

}  // namespace ujoin
