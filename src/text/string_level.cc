#include "text/string_level.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "text/edit_distance.h"
#include "text/possible_worlds.h"
#include "util/check.h"
#include "util/math_util.h"

namespace ujoin {

namespace {
constexpr double kSumTolerance = 1e-6;
}  // namespace

StringLevelUncertainString::StringLevelUncertainString(
    std::vector<Instance> instances)
    : instances_(std::move(instances)) {
  UJOIN_CHECK(!instances_.empty());
  std::sort(instances_.begin(), instances_.end(),
            [](const Instance& a, const Instance& b) {
              if (a.prob != b.prob) return a.prob > b.prob;
              return a.text < b.text;
            });
  min_length_ = max_length_ = static_cast<int>(instances_[0].text.size());
  for (const Instance& inst : instances_) {
    const int len = static_cast<int>(inst.text.size());
    min_length_ = std::min(min_length_, len);
    max_length_ = std::max(max_length_, len);
  }
}

Result<StringLevelUncertainString> StringLevelUncertainString::Create(
    std::vector<Instance> instances) {
  if (instances.empty()) {
    return Status::InvalidArgument("a pdf needs at least one instance");
  }
  std::sort(instances.begin(), instances.end(),
            [](const Instance& a, const Instance& b) {
              return a.text < b.text;
            });
  double sum = 0.0;
  for (size_t i = 0; i < instances.size(); ++i) {
    if (instances[i].prob <= 0.0) {
      return Status::InvalidArgument("instance '" + instances[i].text +
                                     "' has non-positive probability");
    }
    if (i > 0 && instances[i].text == instances[i - 1].text) {
      return Status::InvalidArgument("duplicate instance '" +
                                     instances[i].text + "'");
    }
    sum += instances[i].prob;
  }
  if (std::fabs(sum - 1.0) > kSumTolerance) {
    return Status::InvalidArgument("instance probabilities sum to " +
                                   std::to_string(sum) + ", expected 1");
  }
  for (Instance& inst : instances) inst.prob /= sum;
  return StringLevelUncertainString(std::move(instances));
}

Result<StringLevelUncertainString> StringLevelUncertainString::FromCharacterLevel(
    const UncertainString& s, int64_t max_worlds) {
  Result<std::vector<std::pair<std::string, double>>> worlds =
      AllWorlds(s, max_worlds);
  if (!worlds.ok()) return worlds.status();
  std::vector<Instance> instances;
  instances.reserve(worlds->size());
  for (auto& [text, prob] : *worlds) {
    instances.push_back(Instance{std::move(text), prob});
  }
  return StringLevelUncertainString(std::move(instances));
}

Result<UncertainString> StringLevelUncertainString::ToCharacterLevel(
    double tolerance) const {
  // All instances must share one length.
  if (min_length_ != max_length_) {
    return Status::FailedPrecondition(
        "instances have different lengths; the character-level model fixes "
        "|S| across worlds");
  }
  const int len = max_length_;
  // Marginal distribution per position.
  std::vector<std::map<char, double>> marginals(static_cast<size_t>(len));
  for (const Instance& inst : instances_) {
    for (int i = 0; i < len; ++i) {
      marginals[static_cast<size_t>(i)][inst.text[static_cast<size_t>(i)]] +=
          inst.prob;
    }
  }
  UncertainString::Builder builder;
  for (int i = 0; i < len; ++i) {
    std::vector<CharProb> alts;
    for (const auto& [symbol, prob] : marginals[static_cast<size_t>(i)]) {
      alts.push_back(CharProb{symbol, prob});
    }
    builder.AddUncertain(std::move(alts));
  }
  Result<UncertainString> converted = builder.Build();
  if (!converted.ok()) return converted.status();
  // The conversion is lossless only when the pdf factorizes: verify that
  // the product of marginals reproduces each instance probability AND that
  // the world counts agree (otherwise mass leaked onto new instances).
  if (converted->WorldCount() != static_cast<int64_t>(instances_.size())) {
    return Status::FailedPrecondition(
        "pdf does not factorize into independent positions (world-count "
        "mismatch)");
  }
  for (const Instance& inst : instances_) {
    const double product = MatchProbability(inst.text, *converted);
    if (std::fabs(product - inst.prob) > tolerance) {
      return Status::FailedPrecondition(
          "pdf does not factorize into independent positions (instance '" +
          inst.text + "' has probability " + std::to_string(inst.prob) +
          " but marginals give " + std::to_string(product) + ")");
    }
  }
  return converted;
}

size_t StringLevelUncertainString::MemoryUsage() const {
  size_t bytes = sizeof(*this) + instances_.capacity() * sizeof(Instance);
  for (const Instance& inst : instances_) bytes += inst.text.capacity();
  return bytes;
}

double StringLevelMatchProbability(const StringLevelUncertainString& a,
                                   const StringLevelUncertainString& b,
                                   int k) {
  double total = 0.0;
  for (const auto& ia : a.instances()) {
    for (const auto& ib : b.instances()) {
      if (WithinEditDistance(ia.text, ib.text, k)) {
        total += ia.prob * ib.prob;
      }
    }
  }
  return ClampProb(total);
}

StringLevelVerdict DecideStringLevelSimilar(
    const StringLevelUncertainString& a, const StringLevelUncertainString& b,
    int k, double tau) {
  UJOIN_CHECK(tau >= 0.0 && tau <= 1.0);
  // Instances are sorted by descending probability, so the outer prefix
  // mass shrinks fast; `remaining` upper-bounds everything undecided.
  double matched = 0.0;
  double resolved = 0.0;
  for (const auto& ia : a.instances()) {
    for (const auto& ib : b.instances()) {
      const double mass = ia.prob * ib.prob;
      if (WithinEditDistance(ia.text, ib.text, k)) matched += mass;
      resolved += mass;
      if (matched > tau || matched + (1.0 - resolved) <= tau) {
        const bool finished = resolved >= 1.0 - kProbEpsilon;
        return StringLevelVerdict{matched > tau, ClampProb(matched),
                                  ClampProb(matched + (1.0 - resolved)),
                                  finished};
      }
    }
  }
  const double exact = ClampProb(matched);
  return StringLevelVerdict{exact > tau, exact, exact, true};
}

double StringLevelExpectedEditDistance(const StringLevelUncertainString& a,
                                       const StringLevelUncertainString& b) {
  double total = 0.0;
  for (const auto& ia : a.instances()) {
    for (const auto& ib : b.instances()) {
      total += ia.prob * ib.prob * EditDistance(ia.text, ib.text);
    }
  }
  return total;
}

}  // namespace ujoin
