#ifndef UJOIN_JOIN_UJOIN_H_
#define UJOIN_JOIN_UJOIN_H_

/// \file
/// \brief Umbrella header: the full public API of ujoin, the similarity-join
/// library for character-level uncertain strings (reproduction of Patil &
/// Shah, "Similarity Joins for Uncertain Strings", SIGMOD 2014).
///
/// Typical use:
///
///   ujoin::Alphabet dna = ujoin::Alphabet::Dna();
///   auto s = ujoin::UncertainString::Parse(
///       "A{(C,0.5),(G,0.5)}A{(C,0.5),(G,0.5)}AC", dna);
///   ujoin::JoinOptions opt = ujoin::JoinOptions::Qfct(/*k=*/2, /*tau=*/0.1);
///   auto result = ujoin::SimilaritySelfJoin(collection, dna, opt);
///   for (const ujoin::JoinPair& p : result->pairs) { ... }

#include "filter/cdf_filter.h"
#include "filter/freq_filter.h"
#include "filter/qgram_filter.h"
#include "index/segment_index.h"
#include "join/cross_join.h"
#include "join/join_options.h"
#include "join/join_stats.h"
#include "join/search.h"
#include "join/self_join.h"
#include "join/string_level_join.h"
#include "text/alphabet.h"
#include "text/edit_distance.h"
#include "text/possible_worlds.h"
#include "text/string_level.h"
#include "text/uncertain_string.h"
#include "util/status.h"
#include "verify/verifier.h"

#endif  // UJOIN_JOIN_UJOIN_H_
