#ifndef UJOIN_JOIN_PAIR_VERIFIER_H_
#define UJOIN_JOIN_PAIR_VERIFIER_H_

#include <optional>

#include "join/join_options.h"
#include "text/uncertain_string.h"
#include "util/status.h"
#include "verify/compressed_verifier.h"
#include "verify/verifier.h"

namespace ujoin::internal {

/// \brief Verification front-end for one probe string R, shared by the
/// self-join and search drivers.
///
/// Builds the configured verifier (plain or compressed trie) at most once
/// per probe and reuses it for every candidate (the Section 6.2
/// amortization).  When the trie overflows its node budget the verifier
/// falls back per pair to VerifyPairProbability's chain (cheaper-side trie,
/// compressed trie, naive enumeration).
class PairVerifier {
 public:
  PairVerifier(const UncertainString& r, const JoinOptions& options)
      : r_(r), options_(options) {}

  /// Exact Pr(ed(R, s) <= k).
  Result<double> Probability(const UncertainString& s, VerifyStats* stats) {
    if (options_.verify_method == VerifyMethod::kNaive) {
      return NaiveVerifyProbability(r_, s, options_.k, options_.verify, stats);
    }
    EnsureVerifier();
    if (trie_.has_value()) return trie_->Probability(s, stats);
    if (compressed_.has_value()) return compressed_->Probability(s, stats);
    return VerifyPairProbability(r_, s, options_.k, options_.verify, stats);
  }

  /// (k, τ) verdict; terminates early when the configuration allows it.
  Result<ThresholdVerdict> Decide(const UncertainString& s, double tau,
                                  VerifyStats* stats) {
    const bool can_stop_early = options_.early_stop_verification &&
                                !options_.always_verify &&
                                options_.verify_method != VerifyMethod::kNaive;
    if (can_stop_early) {
      EnsureVerifier();
      if (trie_.has_value()) return trie_->DecideSimilar(s, tau, stats);
      if (compressed_.has_value()) {
        return compressed_->DecideSimilar(s, tau, stats);
      }
    }
    Result<double> prob = Probability(s, stats);
    if (!prob.ok()) return prob.status();
    return ThresholdVerdict{prob.value() > tau, prob.value(), prob.value(),
                            true};
  }

 private:
  void EnsureVerifier() {
    if (trie_.has_value() || compressed_.has_value() || failed_) return;
    if (options_.verify_method == VerifyMethod::kTrie) {
      Result<TrieVerifier> verifier =
          TrieVerifier::Create(r_, options_.k, options_.verify);
      if (verifier.ok()) {
        trie_.emplace(std::move(verifier).value());
        return;
      }
    } else if (options_.verify_method == VerifyMethod::kCompressedTrie) {
      Result<CompressedTrieVerifier> verifier =
          CompressedTrieVerifier::Create(r_, options_.k, options_.verify);
      if (verifier.ok()) {
        compressed_.emplace(std::move(verifier).value());
        return;
      }
    }
    failed_ = true;  // don't retry a blown-up trie per candidate
  }

  const UncertainString& r_;
  const JoinOptions& options_;
  std::optional<TrieVerifier> trie_;
  std::optional<CompressedTrieVerifier> compressed_;
  bool failed_ = false;
};

}  // namespace ujoin::internal

#endif  // UJOIN_JOIN_PAIR_VERIFIER_H_
