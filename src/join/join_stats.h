#ifndef UJOIN_JOIN_JOIN_STATS_H_
#define UJOIN_JOIN_JOIN_STATS_H_

#include <cstdint>
#include <string>

#include "index/segment_index.h"
#include "verify/verifier.h"

namespace ujoin {

/// \brief Per-stage counters and timings of one join (or search) run.
///
/// These are the quantities plotted in the paper's Figures 2–9: candidates
/// surviving each filter, accept/reject counts of the CDF bounds, exact
/// verifications performed, per-stage wall time, and peak index memory.
struct JoinStats {
  // --- pair flow ------------------------------------------------------
  /// Pairs within the length window |ΔL| <= k (the filter pipeline input).
  int64_t length_compatible_pairs = 0;
  /// Pairs surviving the q-gram stage (equals the input when disabled).
  int64_t qgram_candidates = 0;
  int64_t qgram_support_pruned = 0;      ///< by Lemma 5's count condition
  int64_t qgram_probability_pruned = 0;  ///< by Theorem 2's bound
  /// Pairs surviving the frequency-distance stage.
  int64_t freq_candidates = 0;
  int64_t freq_lower_pruned = 0;  ///< by Lemma 6 (fd lower bound > k)
  int64_t freq_upper_pruned = 0;  ///< by Theorem 3 (bound <= τ)
  /// CDF-bound decisions (Section 6.1).
  int64_t cdf_accepted = 0;
  int64_t cdf_rejected = 0;
  int64_t cdf_undecided = 0;
  /// Pairs handed to exact verification, and final results.
  int64_t verified_pairs = 0;
  int64_t result_pairs = 0;
  /// Candidates whose exact verification was skipped because the
  /// possible-world product exceeded SearchLimits::max_verify_worlds (the
  /// pair was decided from its CDF bounds instead; results may be inexact).
  int64_t budget_fallbacks = 0;
  /// Candidates skipped because SearchLimits::deadline_ns expired.
  int64_t deadline_fallbacks = 0;

  /// True when any verification was skipped under a limit, i.e. the result
  /// set is certified (every reported pair has Pr > τ) but possibly
  /// incomplete and with lower-bound probabilities.
  bool Inexact() const { return budget_fallbacks + deadline_fallbacks > 0; }

  // --- per-stage wall time, seconds -----------------------------------
  double qgram_time = 0.0;
  double freq_time = 0.0;
  double cdf_time = 0.0;
  double verify_time = 0.0;
  double index_build_time = 0.0;
  double total_time = 0.0;

  // --- resources -------------------------------------------------------
  size_t peak_index_memory = 0;  ///< inverted-index bytes (Figure 7)
  IndexQueryStats index_stats;
  VerifyStats verify_stats;

  /// Filtering time proper: the three filter stages, excluding both
  /// verification and index construction.  Index build is reported
  /// separately (`index_build_time`); callers reproducing the paper's
  /// "filtering time" figures, which fold index construction in, add it
  /// back explicitly.
  double FilterTime() const { return qgram_time + freq_time + cdf_time; }

  /// Accumulates `other` into this: pair-flow counters and per-stage times
  /// sum, `peak_index_memory` takes the max, and the nested index/verify
  /// work counters sum.  The parallel join drivers give every worker a
  /// thread-local JoinStats and fold them into the run total with this, in
  /// a fixed (wave, rank) order so merged counters are deterministic.
  void Merge(const JoinStats& other);

  /// Multi-line human-readable dump (used by examples and benches).
  std::string ToString() const;

  /// Machine-readable JSON object with a versioned, stable schema
  /// (`kJoinStatsSchemaVersion`; documented in DESIGN.md "Observability").
  /// Serialization is deterministic: identical stats produce identical
  /// bytes, regardless of how the run that produced them was threaded.
  std::string ToJson() const;
};

/// Version of the JSON object emitted by JoinStats::ToJson.
inline constexpr int kJoinStatsSchemaVersion = 1;

}  // namespace ujoin

#endif  // UJOIN_JOIN_JOIN_STATS_H_
