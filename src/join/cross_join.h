#ifndef UJOIN_JOIN_CROSS_JOIN_H_
#define UJOIN_JOIN_CROSS_JOIN_H_

#include "join/self_join.h"

namespace ujoin {

/// \brief Result of a two-collection join: pairs (lhs, rhs) where `lhs`
/// indexes the left collection and `rhs` the right one (no ordering
/// relation between the two indices, unlike SelfJoinResult).
struct CrossJoinResult {
  std::vector<JoinPair> pairs;  // sorted by (lhs, rhs)
  JoinStats stats;
};

/// General similarity join between two collections (the paper's problem
/// statement before its WLOG reduction to the self-join): all pairs
/// (R, S) ∈ left × right with Pr(ed(R, S) <= k) > τ.
///
/// The smaller collection is indexed once (inverted segment index plus
/// frequency summaries) and each string of the other collection probes it
/// through the same filter cascade as the self-join.
Result<CrossJoinResult> SimilarityJoin(
    const std::vector<UncertainString>& left,
    const std::vector<UncertainString>& right, const Alphabet& alphabet,
    const JoinOptions& options);

}  // namespace ujoin

#endif  // UJOIN_JOIN_CROSS_JOIN_H_
