#include "join/search.h"

#include <algorithm>
#include <atomic>
#include <optional>
#include <thread>

#include "filter/cdf_filter.h"
#include "join/explain.h"
#include "join/pair_verifier.h"
#include "obs/metrics.h"
#include "obs/obs_macros.h"
#include "obs/query_log.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/math_util.h"
#include "util/timer.h"
#include "verify/verifier.h"

namespace ujoin {

namespace {

Status ValidateString(const UncertainString& s, const Alphabet& alphabet,
                      const char* what) {
  if (s.empty()) {
    return Status::InvalidArgument(std::string(what) + " is empty");
  }
  for (int pos = 0; pos < s.length(); ++pos) {
    for (const CharProb& cp : s.AlternativesAt(pos)) {
      if (!alphabet.Contains(cp.symbol)) {
        return Status::InvalidArgument(std::string(what) + " uses symbol '" +
                                       cp.symbol + "' outside the alphabet");
      }
    }
  }
  return Status::OK();
}

}  // namespace

SimilaritySearcher::SimilaritySearcher(std::vector<UncertainString> collection,
                                       const Alphabet& alphabet,
                                       const JoinOptions& options)
    : collection_(std::move(collection)),
      alphabet_(alphabet),
      options_(options),
      index_(options.k, options.q, options.probe) {}

Result<SimilaritySearcher> SimilaritySearcher::Create(
    std::vector<UncertainString> collection, const Alphabet& alphabet,
    const JoinOptions& options) {
  UJOIN_CHECK(options.k >= 0 && options.q >= 1);
  for (size_t i = 0; i < collection.size(); ++i) {
    UJOIN_RETURN_IF_ERROR(
        ValidateString(collection[i], alphabet, "collection string"));
  }
  SimilaritySearcher searcher(std::move(collection), alphabet, options);
  int max_length = 0;
  for (const UncertainString& s : searcher.collection_) {
    max_length = std::max(max_length, s.length());
  }
  searcher.ids_by_length_.resize(static_cast<size_t>(max_length) + 1);
  searcher.freq_summaries_.reserve(searcher.collection_.size());
  for (uint32_t id = 0; id < searcher.collection_.size(); ++id) {
    const UncertainString& s = searcher.collection_[id];
    if (options.use_qgram_filter) {
      UJOIN_RETURN_IF_ERROR(searcher.index_.Insert(id, s));
    }
    if (options.use_freq_filter) {
      searcher.freq_summaries_.push_back(FrequencySummary::Build(s, alphabet));
    }
    searcher.ids_by_length_[static_cast<size_t>(s.length())].push_back(id);
  }
  // The searcher is read-only from here on: pack the inverted lists into
  // their contiguous arenas once so every later probe scans flat memory.
  searcher.index_.Freeze();
  return searcher;
}

Result<std::vector<SearchHit>> SimilaritySearcher::Search(
    const UncertainString& query, JoinStats* stats, QueryWorkspace* workspace,
    obs::Recorder* metrics, obs::SpanCollector* spans,
    const SearchLimits* limits) const {
  return SearchImpl(query, stats, /*force_exact=*/false, workspace, metrics,
                    spans, limits != nullptr ? *limits : options_.limits,
                    /*explain=*/nullptr);
}

Result<std::vector<SearchHit>> SimilaritySearcher::SearchImpl(
    const UncertainString& query, JoinStats* stats, bool force_exact,
    QueryWorkspace* workspace, obs::Recorder* metrics,
    obs::SpanCollector* spans, const SearchLimits& limits,
    ExplainData* explain) const {
  UJOIN_RETURN_IF_ERROR(ValidateString(query, alphabet_, "query"));
  JoinStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  QueryWorkspace local_workspace;
  if (workspace == nullptr) workspace = &local_workspace;
  obs::SpanCollector local_spans;  // disabled
  if (spans == nullptr) spans = &local_spans;
  // The index probe records merged-list lengths and candidate α bounds
  // through the workspace hook; restore the previous sink on every exit so
  // a caller-owned workspace is left untouched.
  obs::Recorder* const saved_ws_obs = workspace->obs;
  workspace->obs = metrics;
  struct ObsRestore {
    QueryWorkspace* ws;
    obs::Recorder* saved;
    ~ObsRestore() { ws->obs = saved; }
  } obs_restore{workspace, saved_ws_obs};
  // The explain sink collects per-segment merged-list lengths through the
  // workspace hook; same save/restore discipline as the recorder above.
  std::vector<int64_t> explain_merged;
  std::vector<int64_t>* const saved_ws_explain = workspace->explain_merged;
  if (explain != nullptr) workspace->explain_merged = &explain_merged;
  struct ExplainRestore {
    QueryWorkspace* ws;
    std::vector<int64_t>* saved;
    ~ExplainRestore() { ws->explain_merged = saved; }
  } explain_restore{workspace, saved_ws_explain};

  // `stats` may be caller-owned and already non-zero, so the funnel deltas
  // for this query are computed against base snapshots taken here.
  const int64_t base_length_compatible = stats->length_compatible_pairs;
  const int64_t base_qgram = stats->qgram_candidates;
  const int64_t base_freq = stats->freq_candidates;
  const int64_t base_cdf_rejected = stats->cdf_rejected;
  const int64_t base_verified = stats->verified_pairs;
  int64_t verify_emitted = 0;

  UJOIN_OBS_FLIGHT_EVENT(
      obs::FlightEvent::kQueryBegin, limits.deadline_ns,
      obs::Histogram::BucketIndex(static_cast<int64_t>(query.length())));
  // Close the in-flight epoch on every exit (the error returns included):
  // an unmatched begin would leave this thread permanently "in flight" for
  // the watchdog.
  struct FlightQueryEnd {
    bool ok = false;
    int64_t hits = 0;
    ~FlightQueryEnd() {
      UJOIN_OBS_FLIGHT_EVENT(obs::FlightEvent::kQueryEnd, hits, ok ? 0 : 1);
    }
  } flight_query_end;
  Timer total_timer;
  const int64_t query_span_start = spans->NowNs();
  // Sub-millisecond per-pair stages accumulate integer nanoseconds and fold
  // into the seconds-based stats once per query.
  int64_t qgram_ns = 0;
  int64_t freq_ns = 0;
  int64_t cdf_ns = 0;
  int64_t verify_ns = 0;
  std::vector<SearchHit> hits;

  std::optional<FrequencySummary> query_summary;
  if (options_.use_freq_filter) {
    ScopedNanoTimer timer(&freq_ns);
    query_summary.emplace(FrequencySummary::Build(query, alphabet_));
  }
  JoinOptions effective_options = options_;
  if (force_exact) {
    effective_options.always_verify = true;
    effective_options.early_stop_verification = false;
  }
  internal::PairVerifier verifier(query, effective_options);
  // World-count factor of the query, computed once and only when someone
  // consumes it — a recorder, or the verification budget (WorldCount walks
  // every position).
  const bool budget_active = limits.max_verify_worlds > 0;
  const bool limit_active = budget_active || limits.deadline_ns > 0;
  const bool want_worlds = UJOIN_OBS_ENABLED(metrics) || budget_active ||
                           explain != nullptr || UJOIN_OBS_FLIGHT_ENABLED();
  const int64_t q_worlds = want_worlds ? query.WorldCount() : 0;

  const double qgram_tau =
      options_.qgram_probabilistic_pruning ? options_.tau : 0.0;
  const int max_indexed_length =
      static_cast<int>(ids_by_length_.size()) - 1;
  const int lo = std::max(1, query.length() - options_.k);
  const int hi = std::min(max_indexed_length, query.length() + options_.k);

  std::vector<uint32_t>& candidates = workspace->candidate_ids;
  candidates.clear();
  const int64_t qgram_span_start = spans->NowNs();
  for (int l = lo; l <= hi; ++l) {
    const int64_t bucket_ids =
        static_cast<int64_t>(ids_by_length_[static_cast<size_t>(l)].size());
    stats->length_compatible_pairs += bucket_ids;
    ExplainProbe* probe = nullptr;
    IndexQueryStats probe_base;
    size_t candidates_base = candidates.size();
    size_t merged_base = 0;
    if (explain != nullptr) {
      explain->probes.push_back(ExplainProbe{});
      probe = &explain->probes.back();
      probe->length = l;
      probe->indexed_ids = bucket_ids;
      probe_base = stats->index_stats;
      merged_base = explain_merged.size();
    }
    if (options_.use_qgram_filter) {
      ScopedNanoTimer timer(&qgram_ns);
      for (const IndexCandidate& c :
           index_.Query(query, l, qgram_tau, workspace,
                        &stats->index_stats)) {
        candidates.push_back(c.id);
        if (explain != nullptr) {
          ExplainCandidate ec;
          ec.id = c.id;
          ec.length = l;
          ec.matched_segments = c.matched_segments;
          ec.qgram_bound = c.upper_bound;
          explain->candidates.push_back(ec);
        }
      }
    } else {
      for (uint32_t id : ids_by_length_[static_cast<size_t>(l)]) {
        candidates.push_back(id);
        if (explain != nullptr) {
          ExplainCandidate ec;
          ec.id = id;
          ec.length = l;
          explain->candidates.push_back(ec);
        }
      }
    }
    if (probe != nullptr) {
      if (options_.use_qgram_filter) {
        const LengthBucketIndex* bucket = index_.bucket(l);
        probe->num_segments =
            bucket != nullptr ? bucket->num_segments() : 0;
        const IndexQueryStats& is = stats->index_stats;
        probe->lists_scanned = is.lists_scanned - probe_base.lists_scanned;
        probe->postings_scanned =
            is.postings_scanned - probe_base.postings_scanned;
        probe->ids_touched = is.ids_touched - probe_base.ids_touched;
        probe->support_pruned = is.support_pruned - probe_base.support_pruned;
        probe->probability_pruned =
            is.probability_pruned - probe_base.probability_pruned;
        probe->merged_list_lengths.assign(
            explain_merged.begin() +
                static_cast<std::ptrdiff_t>(merged_base),
            explain_merged.end());
      }
      probe->candidates =
          static_cast<int64_t>(candidates.size() - candidates_base);
    }
  }
  if (options_.use_qgram_filter) {
    spans->Span("qgram_probe", qgram_span_start,
                spans->NowNs() - qgram_span_start);
  }
  stats->qgram_candidates += static_cast<int64_t>(candidates.size());
  UJOIN_OBS_FLIGHT_EVENT(obs::FlightEvent::kFunnelStage,
                         static_cast<int64_t>(obs::FunnelStage::kQgram),
                         static_cast<int64_t>(candidates.size()));

  const int64_t cascade_start = spans->NowNs();
  size_t explain_ci = 0;
  for (uint32_t id : candidates) {
    const UncertainString& s = collection_[id];
    // Explain rows were appended in candidate order above, so the running
    // index pairs each cascade pass with its narrative row.
    ExplainCandidate* const ec =
        explain != nullptr ? &explain->candidates[explain_ci++] : nullptr;
    if (options_.use_freq_filter) {
      ScopedNanoTimer timer(&freq_ns);
      const FreqFilterOutcome freq =
          EvaluateFreqFilter(*query_summary, freq_summaries_[id], options_.k);
      if (ec != nullptr) {
        ec->have_freq = true;
        ec->freq_lower_bound = freq.fd_lower_bound;
        ec->freq_upper_bound = freq.upper_bound;
      }
      if (freq.fd_lower_bound > options_.k) {
        ++stats->freq_lower_pruned;
        if (ec != nullptr) ec->stage = ExplainStage::kFreqLowerPruned;
        continue;
      }
      if (freq.upper_bound <= options_.tau) {
        ++stats->freq_upper_pruned;
        if (ec != nullptr) ec->stage = ExplainStage::kFreqUpperPruned;
        continue;
      }
    }
    ++stats->freq_candidates;

    bool need_verify = true;
    bool have_cdf = false;
    double cdf_lower = 0.0;
    if (options_.use_cdf_filter) {
      ScopedNanoTimer timer(&cdf_ns);
      const CdfFilterOutcome cdf =
          EvaluateCdfFilter(query, s, options_.k, options_.tau);
      have_cdf = true;
      cdf_lower = cdf.bounds.lower[static_cast<size_t>(options_.k)];
      if (ec != nullptr) {
        ec->have_cdf = true;
        ec->cdf_lower = cdf_lower;
      }
      if (cdf.decision == CdfDecision::kReject) {
        ++stats->cdf_rejected;
        if (ec != nullptr) ec->stage = ExplainStage::kCdfRejected;
        continue;
      }
      if (cdf.decision == CdfDecision::kAccept) {
        ++stats->cdf_accepted;
        if (!effective_options.always_verify) {
          need_verify = false;
        }
      } else {
        ++stats->cdf_undecided;
      }
    }

    if (!need_verify) {
      ++stats->result_pairs;
      hits.push_back(SearchHit{id, cdf_lower, /*exact=*/false});
      if (ec != nullptr) {
        ec->stage = ExplainStage::kCdfAccepted;
        ec->emitted = true;
        ec->probability = cdf_lower;
        ec->exact = false;
      }
      continue;
    }

    // Per-query limits (the serve layer's deadline / verification budget):
    // when this pair's exact verification is forbidden, decide it from the
    // certified CDF lower bound instead and mark the query inexact.  The
    // budget is a pure function of the two strings, so budget-limited
    // results stay deterministic; the deadline is wall-clock and is not.
    if (limit_active) {
      const bool over_budget = ExceedsWorldBudget(
          SaturatingMul(q_worlds, s.WorldCount()), limits.max_verify_worlds);
      const bool over_deadline =
          !over_budget && limits.deadline_ns > 0 &&
          total_timer.ElapsedNanos() > limits.deadline_ns;
      if (over_budget || over_deadline) {
        if (!have_cdf) {
          ScopedNanoTimer timer(&cdf_ns);
          const CdfFilterOutcome cdf =
              EvaluateCdfFilter(query, s, options_.k, options_.tau);
          cdf_lower = cdf.bounds.lower[static_cast<size_t>(options_.k)];
        }
        if (over_budget) {
          ++stats->budget_fallbacks;
          UJOIN_OBS_COUNTER(metrics, obs::Counter::kVerifyBudgetFallbacks, 1);
        } else {
          ++stats->deadline_fallbacks;
          UJOIN_OBS_COUNTER(metrics, obs::Counter::kVerifyDeadlineFallbacks,
                            1);
        }
        if (ec != nullptr) {
          ec->have_cdf = true;
          ec->cdf_lower = cdf_lower;
          ec->stage = over_budget ? ExplainStage::kBudgetFallback
                                  : ExplainStage::kDeadlineFallback;
        }
        if (cdf_lower > options_.tau) {
          ++stats->result_pairs;
          hits.push_back(SearchHit{id, cdf_lower, /*exact=*/false});
          if (ec != nullptr) {
            ec->emitted = true;
            ec->probability = cdf_lower;
            ec->exact = false;
          }
        }
        continue;
      }
    }

    const int64_t pair_worlds =
        want_worlds ? SaturatingMul(q_worlds, s.WorldCount()) : 0;
    UJOIN_OBS_FLIGHT_EVENT(obs::FlightEvent::kVerifyBegin, pair_worlds, 0);
    Timer verify_timer;
    ++stats->verified_pairs;
    const int64_t nodes_before = stats->verify_stats.explored_s_nodes;
    Result<ThresholdVerdict> verdict =
        verifier.Decide(s, options_.tau, &stats->verify_stats);
    const int64_t pair_verify_ns = verify_timer.ElapsedNanos();
    verify_ns += pair_verify_ns;
    UJOIN_OBS_HIST(metrics, obs::Hist::kVerifyLatencyNs, pair_verify_ns);
    UJOIN_OBS_HIST(metrics, obs::Hist::kExploredTrieNodes,
                   stats->verify_stats.explored_s_nodes - nodes_before);
    UJOIN_OBS_HIST(metrics, obs::Hist::kVerifyWorldCount, pair_worlds);
    if (!verdict.ok()) return verdict.status();
    if (ec != nullptr) {
      ec->stage = ExplainStage::kVerified;
      ec->verify_worlds = pair_worlds;
    }
    if (verdict->similar) {
      ++stats->result_pairs;
      ++verify_emitted;
      hits.push_back(SearchHit{id, verdict->lower, verdict->exact});
      if (ec != nullptr) {
        ec->emitted = true;
        ec->probability = verdict->lower;
        ec->exact = verdict->exact;
      }
    }
  }

  stats->qgram_time += 1e-9 * static_cast<double>(qgram_ns);
  stats->freq_time += 1e-9 * static_cast<double>(freq_ns);
  stats->cdf_time += 1e-9 * static_cast<double>(cdf_ns);
  stats->verify_time += 1e-9 * static_cast<double>(verify_ns);
  UJOIN_OBS_COUNTER(metrics, obs::Counter::kKernelFreqDistNs, freq_ns);
  UJOIN_OBS_COUNTER(metrics, obs::Counter::kKernelCdfDpNs, cdf_ns);

  // Filter-funnel flow for this query, as deltas against the base snapshots
  // (a disabled stage is a pass-through: entered == survived).
  UJOIN_OBS_FUNNEL(metrics, obs::FunnelStage::kQgram,
                   stats->length_compatible_pairs - base_length_compatible,
                   stats->qgram_candidates - base_qgram);
  UJOIN_OBS_FUNNEL(metrics, obs::FunnelStage::kFreqDistance,
                   stats->qgram_candidates - base_qgram,
                   stats->freq_candidates - base_freq);
  UJOIN_OBS_FUNNEL(metrics, obs::FunnelStage::kCdfBound,
                   stats->freq_candidates - base_freq,
                   (stats->freq_candidates - base_freq) -
                       (stats->cdf_rejected - base_cdf_rejected));
  UJOIN_OBS_FUNNEL(metrics, obs::FunnelStage::kVerify,
                   stats->verified_pairs - base_verified, verify_emitted);

  UJOIN_OBS_COUNTER(metrics, obs::Counter::kQueries, 1);
  UJOIN_OBS_COUNTER(metrics, obs::Counter::kProbes, 1);
  const int64_t query_ns = total_timer.ElapsedNanos();
  UJOIN_OBS_HIST(metrics, obs::Hist::kProbeLatencyNs, query_ns);

  if (spans->enabled()) {
    // Aggregate per-pair stage times as back-to-back synthetic spans from
    // the cascade's start (see DESIGN.md "Observability").
    int64_t t = cascade_start;
    if (options_.use_freq_filter) {
      spans->Span("freq_filter", t, freq_ns);
      t += freq_ns;
    }
    if (options_.use_cdf_filter) {
      spans->Span("cdf_dp", t, cdf_ns);
      t += cdf_ns;
    }
    if (verify_ns > 0) spans->Span("trie_verify", t, verify_ns);
    spans->Span("search", query_span_start,
                spans->NowNs() - query_span_start);
  }

  std::sort(hits.begin(), hits.end());
  stats->total_time = total_timer.ElapsedSeconds();
  flight_query_end.ok = true;
  flight_query_end.hits = static_cast<int64_t>(hits.size());
  return hits;
}

Result<std::vector<SearchHit>> SimilaritySearcher::SearchTopK(
    const UncertainString& query, int count, JoinStats* stats,
    QueryWorkspace* workspace) const {
  if (count <= 0) {
    return Status::InvalidArgument("count must be positive");
  }
  // Top-k needs comparable (exact) probabilities, so per-query limits are
  // ignored here: a CDF-bound fallback would rank hits by incomparable
  // lower bounds.
  Result<std::vector<SearchHit>> hits =
      SearchImpl(query, stats, /*force_exact=*/true, workspace,
                 /*metrics=*/nullptr, /*spans=*/nullptr, SearchLimits{},
                 /*explain=*/nullptr);
  if (!hits.ok()) return hits.status();
  std::sort(hits->begin(), hits->end(),
            [](const SearchHit& a, const SearchHit& b) {
              if (a.probability != b.probability) {
                return a.probability > b.probability;
              }
              return a.id < b.id;
            });
  if (static_cast<int>(hits->size()) > count) {
    hits->resize(static_cast<size_t>(count));
  }
  return hits;
}

namespace {

constexpr uint32_t kSearcherMagic = 0x554a5358;  // "UJSX"
// Version 2 (kSearcherFormatVersion, search.h): the index section writes
// keys in sorted order and no longer persists the derived memory/posting
// counters (they are recomputed from content), so saved bytes are a pure
// function of the indexed collection.

void SerializeUncertainString(const UncertainString& s, BinaryWriter* writer) {
  writer->WriteI32(s.length());
  for (int i = 0; i < s.length(); ++i) {
    auto alts = s.AlternativesAt(i);
    writer->WriteU32(static_cast<uint32_t>(alts.size()));
    for (const CharProb& cp : alts) {
      writer->WriteU8(static_cast<uint8_t>(cp.symbol));
      writer->WriteDouble(cp.prob);
    }
  }
}

Result<UncertainString> DeserializeUncertainString(BinaryReader* reader) {
  Result<int32_t> length = reader->ReadI32();
  if (!length.ok()) return length.status();
  if (*length < 0) {
    return Status::InvalidArgument("corrupt searcher: negative length");
  }
  UncertainString::Builder builder;
  for (int32_t i = 0; i < *length; ++i) {
    Result<uint32_t> num_alts = reader->ReadU32();
    if (!num_alts.ok()) return num_alts.status();
    if (*num_alts == 0 || *num_alts > 256) {
      return Status::InvalidArgument("corrupt searcher: bad alternative count");
    }
    std::vector<CharProb> alts;
    alts.reserve(*num_alts);
    for (uint32_t a = 0; a < *num_alts; ++a) {
      Result<uint8_t> symbol = reader->ReadU8();
      if (!symbol.ok()) return symbol.status();
      Result<double> prob = reader->ReadDouble();
      if (!prob.ok()) return prob.status();
      alts.push_back(CharProb{static_cast<char>(*symbol), *prob});
    }
    builder.AddUncertain(std::move(alts));
  }
  return builder.Build();
}

}  // namespace

Status SimilaritySearcher::Save(const std::string& path) const {
  BinaryWriter writer;
  writer.WriteU32(kSearcherMagic);
  writer.WriteU32(kSearcherFormatVersion);
  writer.WriteI32(options_.k);
  writer.WriteDouble(options_.tau);
  writer.WriteI32(options_.q);
  uint8_t flags = 0;
  flags |= options_.use_qgram_filter ? 1 : 0;
  flags |= options_.use_freq_filter ? 2 : 0;
  flags |= options_.use_cdf_filter ? 4 : 0;
  flags |= options_.qgram_probabilistic_pruning ? 8 : 0;
  flags |= options_.always_verify ? 16 : 0;
  flags |= options_.early_stop_verification ? 32 : 0;
  writer.WriteU8(flags);
  writer.WriteU8(static_cast<uint8_t>(options_.verify_method));
  writer.WriteU64(collection_.size());
  for (const UncertainString& s : collection_) {
    SerializeUncertainString(s, &writer);
  }
  writer.WriteU8(options_.use_qgram_filter ? 1 : 0);
  if (options_.use_qgram_filter) index_.Serialize(&writer);
  return writer.WriteToFile(path);
}

Result<SimilaritySearcher> SimilaritySearcher::Load(const std::string& path,
                                                    const Alphabet& alphabet) {
  Result<BinaryReader> reader_or = BinaryReader::FromFile(path);
  if (!reader_or.ok()) return reader_or.status();
  BinaryReader reader = std::move(reader_or).value();

  Result<uint32_t> magic = reader.ReadU32();
  if (!magic.ok()) return magic.status();
  if (*magic != kSearcherMagic) {
    return Status::InvalidArgument("not a ujoin searcher file");
  }
  Result<uint32_t> version = reader.ReadU32();
  if (!version.ok()) return version.status();
  if (*version != kSearcherFormatVersion) {
    return Status::InvalidArgument("unsupported searcher version " +
                                   std::to_string(*version));
  }
  JoinOptions options;
  Result<int32_t> k = reader.ReadI32();
  if (!k.ok()) return k.status();
  options.k = *k;
  Result<double> tau = reader.ReadDouble();
  if (!tau.ok()) return tau.status();
  options.tau = *tau;
  Result<int32_t> q = reader.ReadI32();
  if (!q.ok()) return q.status();
  options.q = *q;
  if (options.k < 0 || options.q < 1 || options.tau < 0.0 ||
      options.tau > 1.0) {
    return Status::InvalidArgument("corrupt searcher: bad options");
  }
  Result<uint8_t> flags = reader.ReadU8();
  if (!flags.ok()) return flags.status();
  options.use_qgram_filter = *flags & 1;
  options.use_freq_filter = *flags & 2;
  options.use_cdf_filter = *flags & 4;
  options.qgram_probabilistic_pruning = *flags & 8;
  options.always_verify = *flags & 16;
  options.early_stop_verification = *flags & 32;
  Result<uint8_t> method = reader.ReadU8();
  if (!method.ok()) return method.status();
  if (*method > static_cast<uint8_t>(VerifyMethod::kNaive)) {
    return Status::InvalidArgument("corrupt searcher: bad verify method");
  }
  options.verify_method = static_cast<VerifyMethod>(*method);

  Result<uint64_t> count = reader.ReadU64();
  if (!count.ok()) return count.status();
  std::vector<UncertainString> collection;
  collection.reserve(*count);
  for (uint64_t i = 0; i < *count; ++i) {
    Result<UncertainString> s = DeserializeUncertainString(&reader);
    if (!s.ok()) return s.status();
    UJOIN_RETURN_IF_ERROR(ValidateString(*s, alphabet, "persisted string"));
    collection.push_back(std::move(s).value());
  }

  Result<uint8_t> has_index = reader.ReadU8();
  if (!has_index.ok()) return has_index.status();

  SimilaritySearcher searcher(std::move(collection), alphabet, options);
  if (*has_index != 0) {
    Result<InvertedSegmentIndex> index =
        InvertedSegmentIndex::Deserialize(&reader, options.probe);
    if (!index.ok()) return index.status();
    if (index->k() != options.k || index->q() != options.q) {
      return Status::InvalidArgument(
          "corrupt searcher: index parameters disagree with options");
    }
    searcher.index_ = std::move(index).value();
    searcher.index_.Freeze();
  }
  // Rebuild the cheap side structures.
  int max_length = 0;
  for (const UncertainString& s : searcher.collection_) {
    max_length = std::max(max_length, s.length());
  }
  searcher.ids_by_length_.resize(static_cast<size_t>(max_length) + 1);
  searcher.freq_summaries_.reserve(searcher.collection_.size());
  for (uint32_t id = 0; id < searcher.collection_.size(); ++id) {
    const UncertainString& s = searcher.collection_[id];
    if (options.use_freq_filter) {
      searcher.freq_summaries_.push_back(FrequencySummary::Build(s, alphabet));
    }
    searcher.ids_by_length_[static_cast<size_t>(s.length())].push_back(id);
  }
  return searcher;
}

Result<std::vector<std::vector<SearchHit>>> SimilaritySearcher::SearchMany(
    const std::vector<UncertainString>& queries, int threads,
    JoinStats* stats, obs::Recorder* metrics,
    obs::TraceRecorder* trace_sink, const SearchLimits* limits,
    obs::QueryLog* query_log) const {
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  threads = std::min(
      threads, static_cast<int>(std::max<size_t>(queries.size(), 1)));
  std::vector<Result<std::vector<SearchHit>>> results(
      queries.size(), Result<std::vector<SearchHit>>(std::vector<SearchHit>{}));
  // Per-query stats folded in query order below, so the aggregate is the
  // same for every thread count and work assignment.  The observability
  // sinks attached to the Create-time options (if any) follow the same
  // pattern: each query records into a private recorder / span buffer, and
  // the fold below runs in query order.
  std::vector<JoinStats> query_stats(queries.size());
  obs::Recorder* const run_metrics =
      metrics != nullptr ? metrics : options_.metrics;
  obs::TraceRecorder* const trace =
      trace_sink != nullptr ? trace_sink : options_.trace;
  // Query-log records are built from per-query recorders, so a log sink
  // forces them even without a run-level metrics sink.
  const bool per_query_metrics = run_metrics != nullptr || query_log != nullptr;
  std::vector<obs::Recorder> query_metrics(
      per_query_metrics ? queries.size() : 0);
  std::vector<obs::SpanCollector> query_spans(
      trace != nullptr ? queries.size() : 0);
  const auto run_query = [&](int worker, size_t i,
                             QueryWorkspace* workspace) {
    obs::Recorder* const rec =
        per_query_metrics ? &query_metrics[i] : nullptr;
    obs::SpanCollector* span_sink = nullptr;
    // Query-span sampling: the keep/drop decision depends only on the
    // sampling config and the query index, so sampled traces are identical
    // for every thread count.  A slow-keep threshold means any query might
    // need its spans post hoc, so spans are collected for all and the fold
    // below decides which to keep.
    if (trace != nullptr && (trace->SampleProbe(static_cast<int64_t>(i)) ||
                             trace->slow_keep_ns() > 0)) {
      query_spans[i] =
          obs::SpanCollector(trace, static_cast<uint32_t>(worker) + 1);
      span_sink = &query_spans[i];
    }
    results[i] = Search(queries[i], &query_stats[i], workspace, rec,
                        span_sink, limits);
  };
  if (threads == 1) {
    QueryWorkspace workspace;
    for (size_t i = 0; i < queries.size(); ++i) {
      run_query(/*worker=*/0, i, &workspace);
    }
  } else {
    std::vector<QueryWorkspace> workspaces(static_cast<size_t>(threads));
    std::atomic<size_t> next{0};
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t]() {
        for (;;) {
          const size_t i = next.fetch_add(1);
          if (i >= queries.size()) return;
          run_query(t, i, &workspaces[static_cast<size_t>(t)]);
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
  }
  std::vector<std::vector<SearchHit>> out;
  out.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    if (!results[i].ok()) return results[i].status();
    out.push_back(std::move(results[i]).value());
    if (stats != nullptr) stats->Merge(query_stats[i]);
    if (run_metrics != nullptr) run_metrics->Merge(query_metrics[i]);
    const int64_t query_ns =
        static_cast<int64_t>(query_stats[i].total_time * 1e9);
    if (query_log != nullptr) {
      obs::QueryLogRecord record = obs::MakeQueryLogRecord(
          query_metrics[i], /*connection=*/0,
          /*seq=*/static_cast<int64_t>(i) + 1, queries[i].length(),
          static_cast<int64_t>(out.back().size()), /*error=*/false);
      // Stats-derived and wall-clock fields are caller-filled (see
      // MakeQueryLogRecord) so the record survives -DUJOIN_OBS=OFF.
      record.budget_fallbacks = query_stats[i].budget_fallbacks;
      record.deadline_fallbacks = query_stats[i].deadline_fallbacks;
      record.inexact = query_stats[i].Inexact();
      record.total_ns = query_ns;
      record.verify_ns =
          static_cast<int64_t>(query_stats[i].verify_time * 1e9);
      query_log->Write(record);
    }
    if (trace != nullptr) {
      const bool keep = trace->KeepProbe(
          trace->SampleProbe(static_cast<int64_t>(i)), query_ns);
      trace->NoteProbe(keep);
      if (keep) trace->Append(query_spans[i].events());
    }
  }
  UJOIN_OBS_GAUGE(run_metrics, obs::Gauge::kThreads, threads);
  UJOIN_OBS_GAUGE(run_metrics, obs::Gauge::kCollectionSize,
                  static_cast<int64_t>(collection_.size()));
  UJOIN_OBS_GAUGE(run_metrics, obs::Gauge::kPeakIndexMemoryBytes,
                  static_cast<int64_t>(index_.MemoryUsage()));
  return out;
}

}  // namespace ujoin
