#include "join/join_stats.h"

#include <algorithm>
#include <cstdio>

namespace ujoin {

void JoinStats::Merge(const JoinStats& other) {
  length_compatible_pairs += other.length_compatible_pairs;
  qgram_candidates += other.qgram_candidates;
  qgram_support_pruned += other.qgram_support_pruned;
  qgram_probability_pruned += other.qgram_probability_pruned;
  freq_candidates += other.freq_candidates;
  freq_lower_pruned += other.freq_lower_pruned;
  freq_upper_pruned += other.freq_upper_pruned;
  cdf_accepted += other.cdf_accepted;
  cdf_rejected += other.cdf_rejected;
  cdf_undecided += other.cdf_undecided;
  verified_pairs += other.verified_pairs;
  result_pairs += other.result_pairs;

  qgram_time += other.qgram_time;
  freq_time += other.freq_time;
  cdf_time += other.cdf_time;
  verify_time += other.verify_time;
  index_build_time += other.index_build_time;
  total_time += other.total_time;

  peak_index_memory = std::max(peak_index_memory, other.peak_index_memory);
  index_stats.Merge(other.index_stats);
  verify_stats.Merge(other.verify_stats);
}

std::string JoinStats::ToString() const {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "pairs: length-compatible=%lld qgram=%lld (support-pruned=%lld, "
      "prob-pruned=%lld) freq=%lld (fd-pruned=%lld, cheb-pruned=%lld)\n"
      "cdf: accepted=%lld rejected=%lld undecided=%lld | verified=%lld "
      "results=%lld\n"
      "time[s]: qgram=%.4f freq=%.4f cdf=%.4f verify=%.4f index=%.4f "
      "total=%.4f\n"
      "index: peak-memory=%zu bytes",
      static_cast<long long>(length_compatible_pairs),
      static_cast<long long>(qgram_candidates),
      static_cast<long long>(qgram_support_pruned),
      static_cast<long long>(qgram_probability_pruned),
      static_cast<long long>(freq_candidates),
      static_cast<long long>(freq_lower_pruned),
      static_cast<long long>(freq_upper_pruned),
      static_cast<long long>(cdf_accepted),
      static_cast<long long>(cdf_rejected),
      static_cast<long long>(cdf_undecided),
      static_cast<long long>(verified_pairs),
      static_cast<long long>(result_pairs), qgram_time, freq_time, cdf_time,
      verify_time, index_build_time, total_time, peak_index_memory);
  return buf;
}

}  // namespace ujoin
