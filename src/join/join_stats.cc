#include "join/join_stats.h"

#include <cstdio>

namespace ujoin {

std::string JoinStats::ToString() const {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "pairs: length-compatible=%lld qgram=%lld (support-pruned=%lld, "
      "prob-pruned=%lld) freq=%lld (fd-pruned=%lld, cheb-pruned=%lld)\n"
      "cdf: accepted=%lld rejected=%lld undecided=%lld | verified=%lld "
      "results=%lld\n"
      "time[s]: qgram=%.4f freq=%.4f cdf=%.4f verify=%.4f index=%.4f "
      "total=%.4f\n"
      "index: peak-memory=%zu bytes",
      static_cast<long long>(length_compatible_pairs),
      static_cast<long long>(qgram_candidates),
      static_cast<long long>(qgram_support_pruned),
      static_cast<long long>(qgram_probability_pruned),
      static_cast<long long>(freq_candidates),
      static_cast<long long>(freq_lower_pruned),
      static_cast<long long>(freq_upper_pruned),
      static_cast<long long>(cdf_accepted),
      static_cast<long long>(cdf_rejected),
      static_cast<long long>(cdf_undecided),
      static_cast<long long>(verified_pairs),
      static_cast<long long>(result_pairs), qgram_time, freq_time, cdf_time,
      verify_time, index_build_time, total_time, peak_index_memory);
  return buf;
}

}  // namespace ujoin
