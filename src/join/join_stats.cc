#include "join/join_stats.h"

#include <algorithm>
#include <cstdio>

#include "obs/json_writer.h"

namespace ujoin {

void JoinStats::Merge(const JoinStats& other) {
  length_compatible_pairs += other.length_compatible_pairs;
  qgram_candidates += other.qgram_candidates;
  qgram_support_pruned += other.qgram_support_pruned;
  qgram_probability_pruned += other.qgram_probability_pruned;
  freq_candidates += other.freq_candidates;
  freq_lower_pruned += other.freq_lower_pruned;
  freq_upper_pruned += other.freq_upper_pruned;
  cdf_accepted += other.cdf_accepted;
  cdf_rejected += other.cdf_rejected;
  cdf_undecided += other.cdf_undecided;
  verified_pairs += other.verified_pairs;
  result_pairs += other.result_pairs;
  budget_fallbacks += other.budget_fallbacks;
  deadline_fallbacks += other.deadline_fallbacks;

  qgram_time += other.qgram_time;
  freq_time += other.freq_time;
  cdf_time += other.cdf_time;
  verify_time += other.verify_time;
  index_build_time += other.index_build_time;
  total_time += other.total_time;

  peak_index_memory = std::max(peak_index_memory, other.peak_index_memory);
  index_stats.Merge(other.index_stats);
  verify_stats.Merge(other.verify_stats);
}

std::string JoinStats::ToString() const {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "pairs: length-compatible=%lld qgram=%lld (support-pruned=%lld, "
      "prob-pruned=%lld) freq=%lld (fd-pruned=%lld, cheb-pruned=%lld)\n"
      "cdf: accepted=%lld rejected=%lld undecided=%lld | verified=%lld "
      "results=%lld (budget-fallbacks=%lld, deadline-fallbacks=%lld)\n"
      "time[s]: qgram=%.4f freq=%.4f cdf=%.4f verify=%.4f total=%.4f\n"
      "index-build[s]: %.4f\n"
      "index: peak-memory=%zu bytes",
      static_cast<long long>(length_compatible_pairs),
      static_cast<long long>(qgram_candidates),
      static_cast<long long>(qgram_support_pruned),
      static_cast<long long>(qgram_probability_pruned),
      static_cast<long long>(freq_candidates),
      static_cast<long long>(freq_lower_pruned),
      static_cast<long long>(freq_upper_pruned),
      static_cast<long long>(cdf_accepted),
      static_cast<long long>(cdf_rejected),
      static_cast<long long>(cdf_undecided),
      static_cast<long long>(verified_pairs),
      static_cast<long long>(result_pairs),
      static_cast<long long>(budget_fallbacks),
      static_cast<long long>(deadline_fallbacks),
      qgram_time, freq_time, cdf_time,
      verify_time, total_time, index_build_time, peak_index_memory);
  return buf;
}

std::string JoinStats::ToJson() const {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("schema_version");
  w.Int(kJoinStatsSchemaVersion);

  w.Key("pairs");
  w.BeginObject();
  w.Key("length_compatible");
  w.Int(length_compatible_pairs);
  w.Key("qgram_candidates");
  w.Int(qgram_candidates);
  w.Key("qgram_support_pruned");
  w.Int(qgram_support_pruned);
  w.Key("qgram_probability_pruned");
  w.Int(qgram_probability_pruned);
  w.Key("freq_candidates");
  w.Int(freq_candidates);
  w.Key("freq_lower_pruned");
  w.Int(freq_lower_pruned);
  w.Key("freq_upper_pruned");
  w.Int(freq_upper_pruned);
  w.Key("cdf_accepted");
  w.Int(cdf_accepted);
  w.Key("cdf_rejected");
  w.Int(cdf_rejected);
  w.Key("cdf_undecided");
  w.Int(cdf_undecided);
  w.Key("verified");
  w.Int(verified_pairs);
  w.Key("results");
  w.Int(result_pairs);
  w.Key("budget_fallbacks");
  w.Int(budget_fallbacks);
  w.Key("deadline_fallbacks");
  w.Int(deadline_fallbacks);
  w.EndObject();

  w.Key("time_seconds");
  w.BeginObject();
  w.Key("qgram");
  w.Double(qgram_time);
  w.Key("freq");
  w.Double(freq_time);
  w.Key("cdf");
  w.Double(cdf_time);
  w.Key("verify");
  w.Double(verify_time);
  w.Key("index_build");
  w.Double(index_build_time);
  w.Key("filter");
  w.Double(FilterTime());
  w.Key("total");
  w.Double(total_time);
  w.EndObject();

  w.Key("index");
  w.BeginObject();
  w.Key("peak_memory_bytes");
  w.UInt(peak_index_memory);
  w.Key("lists_scanned");
  w.Int(index_stats.lists_scanned);
  w.Key("postings_scanned");
  w.Int(index_stats.postings_scanned);
  w.Key("ids_touched");
  w.Int(index_stats.ids_touched);
  w.Key("support_pruned");
  w.Int(index_stats.support_pruned);
  w.Key("probability_pruned");
  w.Int(index_stats.probability_pruned);
  w.Key("candidates");
  w.Int(index_stats.candidates);
  w.EndObject();

  w.Key("verify");
  w.BeginObject();
  w.Key("r_trie_nodes");
  w.Int(verify_stats.r_trie_nodes);
  w.Key("explored_s_nodes");
  w.Int(verify_stats.explored_s_nodes);
  w.Key("active_entries");
  w.Int(verify_stats.active_entries);
  w.Key("world_pairs");
  w.Int(verify_stats.world_pairs);
  w.EndObject();

  w.EndObject();
  return w.TakeString();
}

}  // namespace ujoin
