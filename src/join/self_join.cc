#include "join/self_join.h"

#include <algorithm>
#include <memory>
#include <numeric>
#include <optional>

#include "filter/cdf_filter.h"
#include "filter/freq_filter.h"
#include "index/segment_index.h"
#include "join/pair_verifier.h"
#include "util/check.h"
#include "util/timer.h"

namespace ujoin {

namespace {

Status ValidateCollection(const std::vector<UncertainString>& collection,
                          const Alphabet& alphabet) {
  for (size_t i = 0; i < collection.size(); ++i) {
    const UncertainString& s = collection[i];
    if (s.empty()) {
      return Status::InvalidArgument("string " + std::to_string(i) +
                                     " is empty");
    }
    for (int pos = 0; pos < s.length(); ++pos) {
      for (const CharProb& cp : s.AlternativesAt(pos)) {
        if (!alphabet.Contains(cp.symbol)) {
          return Status::InvalidArgument(
              std::string("string ") + std::to_string(i) + " uses symbol '" +
              cp.symbol + "' outside the alphabet");
        }
      }
    }
  }
  return Status::OK();
}

// Visiting order: ascending length, ties by original index.  The index is
// queried before insertion, so each unordered pair is examined exactly once.
std::vector<uint32_t> LengthSortedOrder(
    const std::vector<UncertainString>& collection) {
  std::vector<uint32_t> order(collection.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return collection[a].length() < collection[b].length();
  });
  return order;
}

void EmitPair(uint32_t a, uint32_t b, double probability, bool exact,
              std::vector<JoinPair>* pairs) {
  if (a > b) std::swap(a, b);
  pairs->push_back(JoinPair{a, b, probability, exact});
}

}  // namespace

Result<SelfJoinResult> SimilaritySelfJoin(
    const std::vector<UncertainString>& collection, const Alphabet& alphabet,
    const JoinOptions& options) {
  UJOIN_CHECK(options.k >= 0 && options.q >= 1);
  UJOIN_CHECK(options.tau >= 0.0 && options.tau <= 1.0);
  UJOIN_RETURN_IF_ERROR(ValidateCollection(collection, alphabet));

  SelfJoinResult result;
  JoinStats& stats = result.stats;
  Timer total_timer;

  const std::vector<uint32_t> order = LengthSortedOrder(collection);
  std::vector<int> visited_lengths;  // ascending; internal id -> length
  visited_lengths.reserve(order.size());

  InvertedSegmentIndex index(options.k, options.q, options.probe);
  std::vector<FrequencySummary> freq_summaries;
  if (options.use_freq_filter) freq_summaries.reserve(order.size());

  // The q-gram stage prunes with Theorem 2's bound only when probabilistic
  // pruning is on; otherwise only the exact support condition applies.
  const double qgram_tau =
      options.qgram_probabilistic_pruning ? options.tau : 0.0;

  std::vector<uint32_t> candidates;
  for (uint32_t i = 0; i < order.size(); ++i) {
    const UncertainString& r = collection[order[i]];
    const int len = r.length();

    // ---- candidate generation -------------------------------------------
    // Previously visited strings with length in [len - k, len] (visited
    // strings are never longer than the current one).
    const auto window_begin = std::lower_bound(
        visited_lengths.begin(), visited_lengths.end(), len - options.k);
    const int64_t in_window =
        visited_lengths.end() - window_begin;
    stats.length_compatible_pairs += in_window;

    candidates.clear();
    if (options.use_qgram_filter) {
      ScopedTimer timer(&stats.qgram_time);
      for (int l = std::max(1, len - options.k); l <= len; ++l) {
        std::vector<IndexCandidate> found =
            index.Query(r, l, qgram_tau, &stats.index_stats);
        for (const IndexCandidate& c : found) candidates.push_back(c.id);
      }
      stats.qgram_candidates += static_cast<int64_t>(candidates.size());
    } else {
      const uint32_t first =
          static_cast<uint32_t>(window_begin - visited_lengths.begin());
      for (uint32_t j = first; j < i; ++j) candidates.push_back(j);
      stats.qgram_candidates += static_cast<int64_t>(candidates.size());
    }

    // R's own frequency summary must exist before the cascade touches it.
    if (options.use_freq_filter) {
      ScopedTimer timer(&stats.freq_time);
      freq_summaries.push_back(FrequencySummary::Build(r, alphabet));
    }

    // ---- per-candidate filter cascade ------------------------------------
    internal::PairVerifier verifier(r, options);
    for (uint32_t j : candidates) {
      const UncertainString& s = collection[order[j]];

      if (options.use_freq_filter) {
        ScopedTimer timer(&stats.freq_time);
        const FreqFilterOutcome freq = EvaluateFreqFilter(
            freq_summaries[i], freq_summaries[j], options.k);
        if (freq.fd_lower_bound > options.k) {
          ++stats.freq_lower_pruned;
          continue;
        }
        if (freq.upper_bound <= options.tau) {
          ++stats.freq_upper_pruned;
          continue;
        }
      }
      ++stats.freq_candidates;

      bool need_verify = true;
      double accepted_lower_bound = 0.0;
      if (options.use_cdf_filter) {
        ScopedTimer timer(&stats.cdf_time);
        const CdfFilterOutcome cdf =
            EvaluateCdfFilter(r, s, options.k, options.tau);
        if (cdf.decision == CdfDecision::kReject) {
          ++stats.cdf_rejected;
          continue;
        }
        if (cdf.decision == CdfDecision::kAccept) {
          ++stats.cdf_accepted;
          if (!options.always_verify) {
            accepted_lower_bound =
                cdf.bounds.lower[static_cast<size_t>(options.k)];
            need_verify = false;
          }
        } else {
          ++stats.cdf_undecided;
        }
      }

      if (!need_verify) {
        ++stats.result_pairs;
        EmitPair(order[i], order[j], accepted_lower_bound, /*exact=*/false,
                 &result.pairs);
        continue;
      }

      ScopedTimer timer(&stats.verify_time);
      ++stats.verified_pairs;
      Result<ThresholdVerdict> verdict =
          verifier.Decide(s, options.tau, &stats.verify_stats);
      if (!verdict.ok()) return verdict.status();
      if (verdict->similar) {
        ++stats.result_pairs;
        EmitPair(order[i], order[j], verdict->lower, verdict->exact,
                 &result.pairs);
      }
    }

    // ---- make the current string visible to later probes -----------------
    if (options.use_qgram_filter) {
      ScopedTimer timer(&stats.index_build_time);
      UJOIN_RETURN_IF_ERROR(index.Insert(i, r));
      stats.peak_index_memory =
          std::max(stats.peak_index_memory, index.MemoryUsage());
    }
    visited_lengths.push_back(len);
  }

  std::sort(result.pairs.begin(), result.pairs.end());
  stats.total_time = total_timer.ElapsedSeconds();
  return result;
}

Result<SelfJoinResult> ExhaustiveSelfJoin(
    const std::vector<UncertainString>& collection, const Alphabet& alphabet,
    const JoinOptions& options) {
  UJOIN_RETURN_IF_ERROR(ValidateCollection(collection, alphabet));
  SelfJoinResult result;
  Timer total_timer;
  const std::vector<uint32_t> order = LengthSortedOrder(collection);
  std::vector<int> visited_lengths;
  visited_lengths.reserve(order.size());
  for (uint32_t i = 0; i < order.size(); ++i) {
    const UncertainString& r = collection[order[i]];
    const auto window_begin =
        std::lower_bound(visited_lengths.begin(), visited_lengths.end(),
                         r.length() - options.k);
    const uint32_t first =
        static_cast<uint32_t>(window_begin - visited_lengths.begin());
    internal::PairVerifier verifier(r, options);
    for (uint32_t j = first; j < i; ++j) {
      ++result.stats.length_compatible_pairs;
      ++result.stats.verified_pairs;
      Result<double> prob =
          verifier.Probability(collection[order[j]], &result.stats.verify_stats);
      if (!prob.ok()) return prob.status();
      if (prob.value() > options.tau) {
        ++result.stats.result_pairs;
        EmitPair(order[i], order[j], prob.value(), /*exact=*/true,
                 &result.pairs);
      }
    }
    visited_lengths.push_back(r.length());
  }
  std::sort(result.pairs.begin(), result.pairs.end());
  result.stats.total_time = total_timer.ElapsedSeconds();
  return result;
}

}  // namespace ujoin
