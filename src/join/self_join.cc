#include "join/self_join.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <numeric>
#include <optional>
#include <span>
#include <thread>

#include "filter/cdf_filter.h"
#include "filter/freq_filter.h"
#include "index/segment_index.h"
#include "join/pair_verifier.h"
#include "obs/metrics.h"
#include "obs/obs_macros.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/math_util.h"
#include "util/timer.h"

namespace ujoin {

namespace {

Status ValidateCollection(const std::vector<UncertainString>& collection,
                          const Alphabet& alphabet) {
  // ujoin-effect: declares(alloc) -- error messages concatenate
  // std::to_string; validation runs once per join, before the waves.
  for (size_t i = 0; i < collection.size(); ++i) {
    const UncertainString& s = collection[i];
    if (s.empty()) {
      return Status::InvalidArgument("string " + std::to_string(i) +
                                     " is empty");
    }
    for (int pos = 0; pos < s.length(); ++pos) {
      for (const CharProb& cp : s.AlternativesAt(pos)) {
        if (!alphabet.Contains(cp.symbol)) {
          return Status::InvalidArgument(
              std::string("string ") + std::to_string(i) + " uses symbol '" +
              cp.symbol + "' outside the alphabet");
        }
      }
    }
  }
  return Status::OK();
}

// Visiting order: ascending length, ties by original index.  Each string
// only pairs with strings of smaller visiting position, so each unordered
// pair is examined exactly once.
std::vector<uint32_t> LengthSortedOrder(
    const std::vector<UncertainString>& collection) {
  // ujoin-effect: declares(alloc) -- the visiting order is materialized once
  // per join run, before the steady-state wave loop.
  std::vector<uint32_t> order(collection.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return collection[a].length() < collection[b].length();
  });
  return order;
}

void EmitPair(uint32_t a, uint32_t b, double probability, bool exact,
              std::vector<JoinPair>* pairs) {
  if (a > b) std::swap(a, b);
  pairs->push_back(JoinPair{a, b, probability, exact});
}

int ResolveThreads(int requested, size_t work_items) {
  int threads = requested;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  return std::min(threads,
                  static_cast<int>(std::max<size_t>(work_items, 1)));
}

// Runs fn(worker, rank) for every rank in [0, count).  Ranks are handed out
// through an atomic counter, so the assignment of ranks to threads is
// arbitrary — correctness requires fn to touch only rank-private state plus
// worker-private scratch (each pool thread has a fixed worker id, so
// worker-indexed buffers like QueryWorkspaces are never shared).
template <typename Fn>
void RunWaveTasks(int threads, uint32_t count, const Fn& fn) {
  if (count == 0) return;
  const int workers = std::min(threads, static_cast<int>(count));
  if (workers <= 1) {
    for (uint32_t rank = 0; rank < count; ++rank) fn(0, rank);
    return;
  }
  std::atomic<uint32_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(workers));
  for (int t = 0; t < workers; ++t) {
    pool.emplace_back([&, t]() {
      for (;;) {
        const uint32_t rank = next.fetch_add(1);
        if (rank >= count) return;
        fn(t, rank);
      }
    });
  }
  for (std::thread& worker : pool) worker.join();
}

// Result of one probe task: rank-private, merged in (wave, rank) order so
// the join output and counters are identical for every thread count.
struct ProbeOutcome {
  Status status = Status::OK();
  std::vector<JoinPair> pairs;
  JoinStats stats;
  int64_t probe_ns = 0;       // wall time of this rank's probe
  obs::SpanCollector spans;   // rank-private trace spans (empty when off)
};

}  // namespace

// Wave-parallel driver.  The length-sorted scan is cut into waves; each wave
// is first inserted into the inverted index sequentially, then every string
// of the wave probes the now-frozen index concurrently.  A probe at position
// i passes id_limit = i to the index so it only sees strings of smaller
// position — exactly the prefix the paper's insert-after-every-string scan
// would have indexed — which keeps results, filter decisions, and pair-flow
// counters identical to the sequential semantics for every wave size and
// thread count (see DESIGN.md, "Parallel self-join").
Result<SelfJoinResult> SimilaritySelfJoin(
    const std::vector<UncertainString>& collection, const Alphabet& alphabet,
    const JoinOptions& options) {
  UJOIN_CHECK(options.k >= 0 && options.q >= 1);
  UJOIN_CHECK(options.tau >= 0.0 && options.tau <= 1.0);
  UJOIN_RETURN_IF_ERROR(ValidateCollection(collection, alphabet));

  SelfJoinResult result;
  JoinStats& stats = result.stats;
  Timer total_timer;

  const std::vector<uint32_t> order = LengthSortedOrder(collection);
  const uint32_t n = static_cast<uint32_t>(order.size());
  std::vector<int> lengths(n);  // ascending; visiting position -> length
  for (uint32_t i = 0; i < n; ++i) {
    lengths[i] = collection[order[i]].length();
  }

  const int threads = ResolveThreads(options.threads, n);
  const uint32_t wave_size =
      options.wave_size > 0
          ? static_cast<uint32_t>(options.wave_size)
          : static_cast<uint32_t>(std::max(64, 8 * threads));

  InvertedSegmentIndex index(options.k, options.q, options.probe);
  std::vector<FrequencySummary> freq_summaries(
      options.use_freq_filter ? n : 0);
  // One query workspace per pool worker, reused across waves: once warm,
  // the whole candidate-generation stage runs without heap allocation.
  std::vector<QueryWorkspace> workspaces(
      static_cast<size_t>(std::max(threads, 1)));

  // The q-gram stage prunes with Theorem 2's bound only when probabilistic
  // pruning is on; otherwise only the exact support condition applies.
  const double qgram_tau =
      options.qgram_probabilistic_pruning ? options.tau : 0.0;

  // Observability sinks (both null unless the caller opted in).  Each rank
  // records into its own Recorder / SpanCollector; the driver folds them in
  // (wave, rank) order below, mirroring JoinStats::Merge, so merged metric
  // counters and work-derived histograms are identical for every thread
  // count (timing-valued histograms vary run to run by nature).
  obs::Recorder* const run_metrics = options.metrics;
  obs::TraceRecorder* const trace = options.trace;
  std::vector<obs::Recorder> rank_metrics;

  for (uint32_t wave_start = 0; wave_start < n; wave_start += wave_size) {
    const uint32_t wave_end = static_cast<uint32_t>(
        std::min<uint64_t>(n, static_cast<uint64_t>(wave_start) + wave_size));
    const uint32_t wave_count = wave_end - wave_start;
    const int64_t wave_index =
        static_cast<int64_t>(wave_start / std::max<uint32_t>(wave_size, 1));
    UJOIN_OBS_FLIGHT_EVENT(obs::FlightEvent::kWaveStart, wave_index,
                           wave_count);

    // ---- phase 1 (sequential): make the wave visible to its own probes ---
    // After this the index is frozen until the next wave: the concurrent
    // probe phases below only use its const query path.
    if (options.use_qgram_filter) {
      const int64_t span_start = trace != nullptr ? trace->NowNs() : 0;
      ScopedTimer timer(&stats.index_build_time);
      for (uint32_t i = wave_start; i < wave_end; ++i) {
        UJOIN_RETURN_IF_ERROR(index.Insert(i, collection[order[i]]));
      }
      timer.StopAndGet();
      if (trace != nullptr) {
        trace->AddSpan("index_insert", span_start, trace->NowNs() - span_start,
                       /*tid=*/0);
      }
    }
    stats.peak_index_memory =
        std::max(stats.peak_index_memory, index.MemoryUsage());

    std::vector<ProbeOutcome> outcomes(wave_count);
    if (run_metrics != nullptr) {
      rank_metrics.assign(wave_count, obs::Recorder());
    }

    // ---- phase 2 (parallel): frequency summaries for the wave -----------
    // Probes read summaries of every smaller position, including same-wave
    // ones, so the whole wave's summaries must exist before phase 3.
    if (options.use_freq_filter) {
      const int64_t span_start = trace != nullptr ? trace->NowNs() : 0;
      RunWaveTasks(threads, wave_count, [&](int /*worker*/, uint32_t rank) {
        ScopedTimer timer(&outcomes[rank].stats.freq_time);
        freq_summaries[wave_start + rank] =
            FrequencySummary::Build(collection[order[wave_start + rank]],
                                    alphabet);
      });
      if (trace != nullptr) {
        trace->AddSpan("freq_summaries", span_start,
                       trace->NowNs() - span_start, /*tid=*/0);
      }
    }

    // ---- phase 3 (parallel): probe the frozen index ----------------------
    const int64_t probe_phase_start = trace != nullptr ? trace->NowNs() : 0;
    RunWaveTasks(threads, wave_count, [&](int worker, uint32_t rank) {
      QueryWorkspace& workspace = workspaces[static_cast<size_t>(worker)];
      const uint32_t i = wave_start + rank;
      UJOIN_OBS_FLIGHT_EVENT(obs::FlightEvent::kProbeBegin, worker, i);
      const UncertainString& r = collection[order[i]];
      const int len = lengths[i];
      ProbeOutcome& outcome = outcomes[rank];
      JoinStats& pstats = outcome.stats;

      // Rank-private observability state: the index probe records into
      // `rec` via the workspace hook; spans buffer locally and are folded
      // by the driver in (wave, rank) order.
      obs::Recorder* const rec =
          run_metrics != nullptr ? &rank_metrics[rank] : nullptr;
      workspace.obs = rec;
      // Probe-span sampling: the keep/drop decision is a pure function of
      // (sampling seed, global probe index), so sampled traces are identical
      // for every thread count.  Driver/wave spans are never sampled out.
      if (trace != nullptr &&
          trace->SampleProbe(static_cast<int64_t>(wave_start) + rank)) {
        outcome.spans =
            obs::SpanCollector(trace, static_cast<uint32_t>(worker) + 1);
      }
      obs::SpanCollector& spans = outcome.spans;
      Timer probe_timer;
      const int64_t probe_span_start = spans.NowNs();
      // Sub-millisecond per-pair stages accumulate integer nanoseconds and
      // fold into the seconds-based JoinStats fields once per rank.
      int64_t qgram_ns = 0;
      int64_t freq_ns = 0;
      int64_t cdf_ns = 0;
      int64_t verify_ns = 0;

      // ---- candidate generation ----------------------------------------
      // Strings of smaller visiting position with length in [len - k, len]
      // (smaller positions are never longer).
      const auto window_begin =
          std::lower_bound(lengths.begin(), lengths.begin() + i,
                           len - options.k);
      pstats.length_compatible_pairs += (lengths.begin() + i) - window_begin;

      std::vector<uint32_t>& candidates = workspace.candidate_ids;
      candidates.clear();
      if (options.use_qgram_filter) {
        const int64_t span_start = spans.NowNs();
        ScopedNanoTimer timer(&qgram_ns);
        for (int l = std::max(1, len - options.k); l <= len; ++l) {
          const std::span<const IndexCandidate> found = index.Query(
              r, l, qgram_tau, &workspace, &pstats.index_stats,
              /*id_limit=*/i);
          for (const IndexCandidate& c : found) candidates.push_back(c.id);
        }
        timer.StopAndGet();
        spans.Span("qgram_probe", span_start, spans.NowNs() - span_start);
        pstats.qgram_candidates += static_cast<int64_t>(candidates.size());
      } else {
        const uint32_t first =
            static_cast<uint32_t>(window_begin - lengths.begin());
        for (uint32_t j = first; j < i; ++j) candidates.push_back(j);
        pstats.qgram_candidates += static_cast<int64_t>(candidates.size());
      }

      // ---- per-candidate filter cascade ---------------------------------
      internal::PairVerifier verifier(r, options);
      // World-count factor of the probing string, computed once per rank and
      // only while recording (WorldCount walks every position).  The flight
      // recorder wants it too: its verify-begin events carry the world
      // estimate the watchdog reports for stalled verifications.
      const bool want_worlds =
          UJOIN_OBS_ENABLED(rec) || UJOIN_OBS_FLIGHT_ENABLED();
      const int64_t r_worlds = want_worlds ? r.WorldCount() : 0;
      int64_t verify_emitted = 0;
      const int64_t cascade_start = spans.NowNs();
      for (uint32_t j : candidates) {
        const UncertainString& s = collection[order[j]];

        if (options.use_freq_filter) {
          ScopedNanoTimer timer(&freq_ns);
          const FreqFilterOutcome freq = EvaluateFreqFilter(
              freq_summaries[i], freq_summaries[j], options.k);
          if (freq.fd_lower_bound > options.k) {
            ++pstats.freq_lower_pruned;
            continue;
          }
          if (freq.upper_bound <= options.tau) {
            ++pstats.freq_upper_pruned;
            continue;
          }
        }
        ++pstats.freq_candidates;

        bool need_verify = true;
        double accepted_lower_bound = 0.0;
        if (options.use_cdf_filter) {
          ScopedNanoTimer timer(&cdf_ns);
          const CdfFilterOutcome cdf =
              EvaluateCdfFilter(r, s, options.k, options.tau);
          if (cdf.decision == CdfDecision::kReject) {
            ++pstats.cdf_rejected;
            continue;
          }
          if (cdf.decision == CdfDecision::kAccept) {
            ++pstats.cdf_accepted;
            if (!options.always_verify) {
              accepted_lower_bound =
                  cdf.bounds.lower[static_cast<size_t>(options.k)];
              need_verify = false;
            }
          } else {
            ++pstats.cdf_undecided;
          }
        }

        if (!need_verify) {
          ++pstats.result_pairs;
          EmitPair(order[i], order[j], accepted_lower_bound, /*exact=*/false,
                   &outcome.pairs);
          continue;
        }

        const int64_t pair_worlds =
            want_worlds ? SaturatingMul(r_worlds, s.WorldCount()) : 0;
        UJOIN_OBS_FLIGHT_EVENT(obs::FlightEvent::kVerifyBegin, pair_worlds, 0);
        Timer verify_timer;
        ++pstats.verified_pairs;
        const int64_t nodes_before = pstats.verify_stats.explored_s_nodes;
        Result<ThresholdVerdict> verdict =
            verifier.Decide(s, options.tau, &pstats.verify_stats);
        const int64_t pair_verify_ns = verify_timer.ElapsedNanos();
        verify_ns += pair_verify_ns;
        UJOIN_OBS_HIST(rec, obs::Hist::kVerifyLatencyNs, pair_verify_ns);
        UJOIN_OBS_HIST(rec, obs::Hist::kExploredTrieNodes,
                       pstats.verify_stats.explored_s_nodes - nodes_before);
        UJOIN_OBS_HIST(rec, obs::Hist::kVerifyWorldCount, pair_worlds);
        if (!verdict.ok()) {
          outcome.status = verdict.status();
          return;
        }
        if (verdict->similar) {
          ++pstats.result_pairs;
          ++verify_emitted;
          EmitPair(order[i], order[j], verdict->lower, verdict->exact,
                   &outcome.pairs);
        }
      }

      // Fold the nano accumulators into the seconds-based stats once per
      // rank (satellite: no per-pair seconds-double round-trips).
      pstats.qgram_time += 1e-9 * static_cast<double>(qgram_ns);
      pstats.freq_time += 1e-9 * static_cast<double>(freq_ns);
      pstats.cdf_time += 1e-9 * static_cast<double>(cdf_ns);
      pstats.verify_time += 1e-9 * static_cast<double>(verify_ns);
      UJOIN_OBS_COUNTER(rec, obs::Counter::kKernelFreqDistNs, freq_ns);
      UJOIN_OBS_COUNTER(rec, obs::Counter::kKernelCdfDpNs, cdf_ns);

      // Filter-funnel flow for this rank, read off the rank-private stats
      // (they start at zero, so these are exactly this probe's deltas).  A
      // disabled stage is a pass-through — entered == survived — by
      // construction of the counters above.
      UJOIN_OBS_FUNNEL(rec, obs::FunnelStage::kQgram,
                       pstats.length_compatible_pairs,
                       pstats.qgram_candidates);
      UJOIN_OBS_FUNNEL(rec, obs::FunnelStage::kFreqDistance,
                       pstats.qgram_candidates, pstats.freq_candidates);
      UJOIN_OBS_FUNNEL(rec, obs::FunnelStage::kCdfBound,
                       pstats.freq_candidates,
                       pstats.freq_candidates - pstats.cdf_rejected);
      UJOIN_OBS_FUNNEL(rec, obs::FunnelStage::kVerify, pstats.verified_pairs,
                       verify_emitted);

      outcome.probe_ns = probe_timer.ElapsedNanos();
      UJOIN_OBS_HIST(rec, obs::Hist::kProbeLatencyNs, outcome.probe_ns);
      workspace.obs = nullptr;

      if (spans.enabled()) {
        // The per-pair filter/verify stages interleave, so they are emitted
        // as aggregate spans laid back to back from the cascade's start;
        // each span's duration is that stage's summed time in this rank
        // (documented in DESIGN.md "Observability").
        int64_t t = cascade_start;
        if (options.use_freq_filter) {
          spans.Span("freq_filter", t, freq_ns);
          t += freq_ns;
        }
        if (options.use_cdf_filter) {
          spans.Span("cdf_dp", t, cdf_ns);
          t += cdf_ns;
        }
        if (verify_ns > 0) spans.Span("trie_verify", t, verify_ns);
        spans.Span("probe", probe_span_start,
                   spans.NowNs() - probe_span_start);
      }
    });

    if (trace != nullptr) {
      trace->AddSpan("wave_probe", probe_phase_start,
                     trace->NowNs() - probe_phase_start, /*tid=*/0);
    }

    // ---- phase 4 (sequential): merge in rank order -----------------------
    const int64_t merge_span_start = trace != nullptr ? trace->NowNs() : 0;
    for (uint32_t rank = 0; rank < wave_count; ++rank) {
      ProbeOutcome& outcome = outcomes[rank];
      if (!outcome.status.ok()) return outcome.status;
      stats.Merge(outcome.stats);
      result.pairs.insert(result.pairs.end(), outcome.pairs.begin(),
                          outcome.pairs.end());
      if (run_metrics != nullptr) run_metrics->Merge(rank_metrics[rank]);
      if (trace != nullptr) {
        trace->NoteProbe(outcome.spans.enabled());
        trace->Append(outcome.spans.events());
      }
    }
    if (trace != nullptr) {
      trace->AddSpan("wave_merge", merge_span_start,
                     trace->NowNs() - merge_span_start, /*tid=*/0);
    }

    // Wave-level metrics, recorded by the driver after the fold.
    UJOIN_OBS_COUNTER(run_metrics, obs::Counter::kWaves, 1);
    UJOIN_OBS_COUNTER(run_metrics, obs::Counter::kProbes, wave_count);
    if (UJOIN_OBS_ENABLED(run_metrics) && wave_count >= 2) {
      int64_t max_ns = 0;
      int64_t sum_ns = 0;
      for (const ProbeOutcome& outcome : outcomes) {
        max_ns = std::max(max_ns, outcome.probe_ns);
        sum_ns += outcome.probe_ns;
      }
      if (sum_ns > 0) {
        const double mean_ns =
            static_cast<double>(sum_ns) / static_cast<double>(wave_count);
        UJOIN_OBS_HIST(
            run_metrics, obs::Hist::kWaveImbalancePermille,
            static_cast<int64_t>(1000.0 * static_cast<double>(max_ns) /
                                     mean_ns +
                                 0.5));
      }
    }

    UJOIN_OBS_FLIGHT_EVENT(obs::FlightEvent::kWaveEnd, wave_index, 0);
    if (options.progress_fn != nullptr) {
      options.progress_fn(
          JoinProgress{wave_end, n, result.pairs.size(),
                       total_timer.ElapsedSeconds()},
          options.progress_user);
    }
  }

  UJOIN_OBS_GAUGE(run_metrics, obs::Gauge::kThreads, threads);
  UJOIN_OBS_GAUGE(run_metrics, obs::Gauge::kWaveSize,
                  static_cast<int64_t>(wave_size));
  UJOIN_OBS_GAUGE(run_metrics, obs::Gauge::kPeakIndexMemoryBytes,
                  static_cast<int64_t>(stats.peak_index_memory));
  UJOIN_OBS_GAUGE(run_metrics, obs::Gauge::kCollectionSize,
                  static_cast<int64_t>(n));

  std::sort(result.pairs.begin(), result.pairs.end());
  stats.total_time = total_timer.ElapsedSeconds();
  return result;
}

Result<SelfJoinResult> ExhaustiveSelfJoin(
    const std::vector<UncertainString>& collection, const Alphabet& alphabet,
    const JoinOptions& options) {
  UJOIN_RETURN_IF_ERROR(ValidateCollection(collection, alphabet));
  SelfJoinResult result;
  Timer total_timer;
  const std::vector<uint32_t> order = LengthSortedOrder(collection);
  std::vector<int> visited_lengths;
  visited_lengths.reserve(order.size());
  for (uint32_t i = 0; i < order.size(); ++i) {
    const UncertainString& r = collection[order[i]];
    const auto window_begin =
        std::lower_bound(visited_lengths.begin(), visited_lengths.end(),
                         r.length() - options.k);
    const uint32_t first =
        static_cast<uint32_t>(window_begin - visited_lengths.begin());
    internal::PairVerifier verifier(r, options);
    for (uint32_t j = first; j < i; ++j) {
      ++result.stats.length_compatible_pairs;
      ++result.stats.verified_pairs;
      Result<double> prob =
          verifier.Probability(collection[order[j]], &result.stats.verify_stats);
      if (!prob.ok()) return prob.status();
      if (prob.value() > options.tau) {
        ++result.stats.result_pairs;
        EmitPair(order[i], order[j], prob.value(), /*exact=*/true,
                 &result.pairs);
      }
    }
    visited_lengths.push_back(r.length());
  }
  std::sort(result.pairs.begin(), result.pairs.end());
  result.stats.total_time = total_timer.ElapsedSeconds();
  return result;
}

}  // namespace ujoin
