#ifndef UJOIN_JOIN_SELF_JOIN_H_
#define UJOIN_JOIN_SELF_JOIN_H_

#include <cstdint>
#include <vector>

#include "join/join_options.h"
#include "join/join_stats.h"
#include "text/alphabet.h"
#include "text/uncertain_string.h"
#include "util/status.h"

namespace ujoin {

/// \brief One similar pair reported by the join.
///
/// Indices refer to the input collection and satisfy lhs < rhs.  When
/// `exact` is true, `probability` is the exact Pr(ed(R,S) <= k); otherwise
/// the pair was accepted by the CDF lower bound without verification and
/// `probability` is a certified lower bound (still > τ).  Set
/// JoinOptions::always_verify to force exact probabilities everywhere.
struct JoinPair {
  uint32_t lhs;
  uint32_t rhs;
  double probability;
  bool exact;

  friend bool operator==(const JoinPair& a, const JoinPair& b) {
    return a.lhs == b.lhs && a.rhs == b.rhs;
  }
  friend bool operator<(const JoinPair& a, const JoinPair& b) {
    return a.lhs != b.lhs ? a.lhs < b.lhs : a.rhs < b.rhs;
  }
};

/// \brief Join output: the similar pairs plus per-stage statistics.
struct SelfJoinResult {
  std::vector<JoinPair> pairs;  // sorted by (lhs, rhs)
  JoinStats stats;
};

/// Similarity self-join (Problem definition, Section 1): finds all pairs
/// (R, S), R != S, of `collection` with Pr(ed(R, S) <= k) > τ.
///
/// Implements the paper's pipeline: strings are visited in ascending length
/// order; each string queries the inverted segment index of previously
/// visited strings (q-gram filtering with probabilistic pruning), survivors
/// pass through frequency-distance filtering and CDF-bound filtering, and
/// undecided pairs are verified exactly with the trie-based verifier.
/// Filter stages toggle via JoinOptions to form the QFCT/QCT/QFT/FCT
/// variants of Section 7.
///
/// The scan is wave-parallel: the length-sorted order is cut into waves of
/// JoinOptions::wave_size strings; a wave is inserted into the index
/// sequentially, then all of its strings run the probe pipeline concurrently
/// on JoinOptions::threads workers against the frozen index, each seeing
/// only strings of smaller visiting position.  Results, filter decisions,
/// and pair-flow counters are identical to the paper's sequential scan for
/// every wave size and thread count (per-worker buffers are merged in
/// deterministic (wave, rank) order; see DESIGN.md, "Parallel self-join").
///
/// Fails with InvalidArgument when a string is empty or uses symbols
/// outside `alphabet`.
Result<SelfJoinResult> SimilaritySelfJoin(
    const std::vector<UncertainString>& collection, const Alphabet& alphabet,
    const JoinOptions& options);

/// Ground-truth join used by tests and as the "no filtering" reference:
/// verifies every length-compatible pair exactly.
Result<SelfJoinResult> ExhaustiveSelfJoin(
    const std::vector<UncertainString>& collection, const Alphabet& alphabet,
    const JoinOptions& options);

}  // namespace ujoin

#endif  // UJOIN_JOIN_SELF_JOIN_H_
