#ifndef UJOIN_JOIN_EXPLAIN_H_
#define UJOIN_JOIN_EXPLAIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "join/join_stats.h"
#include "join/search.h"
#include "obs/metrics.h"
#include "text/uncertain_string.h"

namespace ujoin {

// ---------------------------------------------------------------------------
// Explain replay (DESIGN.md "Per-query diagnostics")
//
// `ujoin_cli explain` replays one query through the normal search path with
// a narrative sink attached: which length buckets were probed and how much
// merge work each cost, then — for every q-gram survivor — which filter of
// the paper's cascade decided it and with what bound value.  The narrative
// is a pure function of (index, query, options, limits): rendered without
// the timing section it is byte-identical across runs and thread counts,
// the same contract the registry's deterministic fields keep.  Unlike the
// obs sinks, explain works under -DUJOIN_OBS=OFF and on Load-restored
// searchers (nothing needs to be attached at Create time).
// ---------------------------------------------------------------------------

/// Version of the "ujoin.explain" JSON envelope schema.
inline constexpr int kExplainSchemaVersion = 1;

/// \brief Probe work for one length bucket [|query|-k, |query|+k].
struct ExplainProbe {
  int length = 0;
  int64_t indexed_ids = 0;  ///< Collection strings of this length.
  int num_segments = 0;     ///< Bucket segments merged (0 = q-gram filter off).
  // IndexQueryStats deltas for this bucket's merge scan.
  int64_t lists_scanned = 0;
  int64_t postings_scanned = 0;
  int64_t ids_touched = 0;
  int64_t support_pruned = 0;      ///< Lemma 5 count check.
  int64_t probability_pruned = 0;  ///< Theorem 2 bound.
  int64_t candidates = 0;          ///< Survivors into the cascade.
  std::vector<int64_t> merged_list_lengths;  ///< One per segment x.
};

/// Which stage of the cascade decided a candidate.
enum class ExplainStage {
  kFreqLowerPruned,   ///< frequency-distance lower bound > k
  kFreqUpperPruned,   ///< frequency upper bound <= tau
  kCdfRejected,       ///< CDF upper bound <= tau
  kCdfAccepted,       ///< CDF lower bound > tau, verification skipped
  kBudgetFallback,    ///< world budget exceeded, decided from CDF bound
  kDeadlineFallback,  ///< deadline exceeded, decided from CDF bound
  kVerified,          ///< exact (or early-stopped) trie verification
};

/// Stable lowercase name, part of the ujoin.explain schema.
const char* ExplainStageName(ExplainStage stage);

/// \brief One q-gram survivor's path through the filter cascade.
struct ExplainCandidate {
  uint32_t id = 0;
  int length = 0;
  int matched_segments = -1;  ///< Lemma 5 count; -1 = q-gram filter off.
  double qgram_bound = 0.0;   ///< Theorem 2 upper bound (0 = filter off).
  bool have_freq = false;
  int freq_lower_bound = 0;      ///< Frequency-distance ed lower bound.
  double freq_upper_bound = 0.0;
  bool have_cdf = false;
  double cdf_lower = 0.0;  ///< CDF lower bound at distance k.
  ExplainStage stage = ExplainStage::kVerified;
  int64_t verify_worlds = 0;  ///< World product, stage kVerified only.
  bool emitted = false;       ///< Became a hit.
  double probability = 0.0;   ///< Hit probability (exact or CDF lower bound).
  bool exact = false;
};

/// \brief The narrative SearchImpl fills when an explain sink is attached.
struct ExplainData {
  std::vector<ExplainProbe> probes;          ///< One per probed length.
  std::vector<ExplainCandidate> candidates;  ///< Cascade order (= id order
                                             ///< within each probed length).
};

/// \brief Everything Explain returns: the narrative, the run's stats, the
/// hits (exactly Search's), and the per-query metrics recorder (kernel-ns
/// counters for the timing section; all-zero under -DUJOIN_OBS=OFF).
struct ExplainResult {
  ExplainData data;
  JoinStats stats;
  std::vector<SearchHit> hits;
  obs::Recorder metrics;
};

/// Renders the versioned "ujoin.explain" JSON envelope (newline-terminated).
/// With `include_timing` false the envelope contains deterministic fields
/// only and is byte-identical across runs for the same (index, query,
/// limits); with true a trailing "timing_ns" object is appended.
std::string RenderExplainJson(const SimilaritySearcher& searcher,
                              const UncertainString& query,
                              const ExplainResult& result,
                              const SearchLimits& limits, bool include_timing);

/// Renders a human-readable multi-line narrative of the same replay (for
/// stderr; the JSON envelope is the machine artifact).
std::string RenderExplainNarrative(const SimilaritySearcher& searcher,
                                   const UncertainString& query,
                                   const ExplainResult& result);

}  // namespace ujoin

#endif  // UJOIN_JOIN_EXPLAIN_H_
