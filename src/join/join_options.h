#ifndef UJOIN_JOIN_JOIN_OPTIONS_H_
#define UJOIN_JOIN_JOIN_OPTIONS_H_

#include <cstdint>

#include "filter/probe_set.h"
#include "verify/verifier.h"

namespace ujoin {

namespace obs {
class Recorder;
class TraceRecorder;
}  // namespace obs

/// \brief Snapshot handed to JoinOptions::progress_fn at wave boundaries.
struct JoinProgress {
  uint64_t processed;      ///< strings (or probes/queries) completed so far
  uint64_t total;          ///< total strings (or probes/queries) in the run
  uint64_t result_pairs;   ///< result pairs found so far
  double elapsed_seconds;  ///< wall time since the run started
};

/// \brief Per-query resource limits for the search drivers.
///
/// Both limits bound the exact-verification stage, where the known
/// pathological cost lives (strings with many high-fanout uncertain
/// positions make the possible-world product — and with it `always_verify`
/// work — explode; see ROADMAP "Guard against exponential exact
/// verification").  A candidate that trips a limit is not verified:
/// the query falls back to the certified CDF bounds for that pair (the
/// Theorem 4 bounds are always cheap to compute) and the fallback is
/// counted in JoinStats::budget_fallbacks / deadline_fallbacks, which is
/// how callers — notably the resident serve layer — know to mark the
/// response inexact.
///
/// `max_verify_worlds` is a pure function of the query and candidate
/// strings, so results under a world budget stay deterministic and
/// thread-count invariant.  `deadline_ns` is wall-clock and therefore
/// timing-dependent: two runs may fall back on different candidates.  Use
/// the world budget when reproducibility matters and the deadline as the
/// serve layer's last-resort latency guard.
struct SearchLimits {
  /// Cap on the saturating |worlds(query)| x |worlds(candidate)| product
  /// above which a candidate is never exactly verified.  0 = unlimited.
  int64_t max_verify_worlds = 0;

  /// Per-query wall-clock deadline in nanoseconds, checked before each
  /// candidate verification.  0 = none.
  int64_t deadline_ns = 0;

  bool Unlimited() const {
    return max_verify_worlds <= 0 && deadline_ns <= 0;
  }
};

/// \brief Exact-verification algorithm used on surviving candidates.
enum class VerifyMethod {
  kTrie,  ///< trie-based verification (Section 6.2) — the paper's method
  kCompressedTrie,  ///< path-compressed trie: same results, node budget
                    ///< independent of string length (library extension)
  kNaive,  ///< all-world-pairs enumeration with prefix pruning (baseline)
};

/// \brief Parameters of a (k, τ) similarity join or search.
///
/// The filter toggles reproduce the paper's algorithm variants
/// (Section 7): QFCT enables everything (default); QCT disables the
/// frequency filter; QFT disables the CDF filter; FCT disables q-gram
/// filtering (and with it the inverted index).
struct JoinOptions {
  int k = 2;        ///< edit-distance threshold
  double tau = 0.1; ///< probability threshold; a pair matches iff
                    ///< Pr(ed(R,S) <= k) > tau
  int q = 3;        ///< q-gram (segment) length driving the partitioning

  bool use_qgram_filter = true;  ///< Sections 3–4
  bool use_freq_filter = true;   ///< Section 5
  bool use_cdf_filter = true;    ///< Section 6.1

  /// When false, the q-gram stage prunes only with the exact support-level
  /// necessary condition (Lemmas 4/5) and skips Theorem 2's probabilistic
  /// bound — a conservative mode immune to the bound's independence
  /// approximation (see DESIGN.md).
  bool qgram_probabilistic_pruning = true;

  /// Verify pairs that the CDF lower bound already accepted, so that every
  /// reported probability is exact (costs extra verification work).
  bool always_verify = false;

  /// Stop trie-based verification as soon as the (k, τ) verdict is certain
  /// instead of computing the exact probability (see
  /// TrieVerifier::DecideSimilar).  Reported probabilities of pairs decided
  /// early are certified lower bounds (> τ) flagged as inexact.  Ignored
  /// when always_verify is set.  Off by default to match the paper's
  /// algorithm; the ablation benchmark quantifies the speedup.
  bool early_stop_verification = false;

  VerifyMethod verify_method = VerifyMethod::kTrie;
  VerifyOptions verify;
  ProbeSetOptions probe;

  /// Default per-query limits for SimilaritySearcher::Search/SearchMany
  /// (unlimited by default; see SearchLimits).  Callers that need per-query
  /// values — the serve layer's deadlines — pass an override to Search
  /// instead of copying the options.  Not persisted by Save/Load: limits
  /// are a property of the serving policy, not of the index.
  SearchLimits limits;

  /// Worker threads for the parallel drivers: the wave-batched
  /// SimilaritySelfJoin, the two-collection SimilarityJoin, and
  /// SimilaritySearcher::SearchMany.  <= 0 picks the hardware concurrency.
  /// All drivers return identical results for every thread count.
  int threads = 1;

  /// Wave size of the parallel self-join: the length-sorted scan is cut
  /// into waves of this many strings; a wave is inserted into the inverted
  /// index sequentially, then all of its strings probe the frozen index
  /// concurrently (each probe only sees ids smaller than its own, so every
  /// unordered pair is examined exactly once, on its higher-id side).
  /// Larger waves expose more parallelism; smaller waves keep the probe
  /// window closer to the paper's insert-after-every-string scan.  The
  /// result set is identical for every wave size.  <= 0 picks an adaptive
  /// default (max(64, 8 × threads)).
  int wave_size = 0;

  // --- observability (src/obs/; DESIGN.md "Observability") --------------
  // All sinks are borrowed, never owned: they must outlive every join or
  // search call that sees this options value, and null (the default) means
  // recording is off — the instrumentation then costs one pointer test.

  /// Metrics sink.  When set, the drivers give each worker rank a private
  /// Recorder and fold them into *metrics in the same deterministic
  /// (wave, rank) order as JoinStats::Merge, so the merged counters and
  /// work-derived histograms are identical for every thread count.
  obs::Recorder* metrics = nullptr;

  /// Trace sink.  When set, the drivers emit per-stage spans (index build,
  /// wave phases, probes, filter/verify stages) for Chrome trace-event
  /// output.  Span collection allocates; it is a debugging mode and is not
  /// covered by the steady-state zero-allocation guarantee.
  obs::TraceRecorder* trace = nullptr;

  /// Progress callback, invoked from the driver thread at wave boundaries
  /// (self-join) or batch completion points.  A plain function pointer plus
  /// context pointer — not std::function — so copying JoinOptions never
  /// allocates.
  void (*progress_fn)(const JoinProgress&, void* user) = nullptr;
  void* progress_user = nullptr;

  /// Convenience constructors for the paper's named variants.
  static JoinOptions Qfct(int k, double tau, int q = 3) {
    JoinOptions o;
    o.k = k;
    o.tau = tau;
    o.q = q;
    return o;
  }
  static JoinOptions Qct(int k, double tau, int q = 3) {
    JoinOptions o = Qfct(k, tau, q);
    o.use_freq_filter = false;
    return o;
  }
  static JoinOptions Qft(int k, double tau, int q = 3) {
    JoinOptions o = Qfct(k, tau, q);
    o.use_cdf_filter = false;
    return o;
  }
  static JoinOptions Fct(int k, double tau, int q = 3) {
    JoinOptions o = Qfct(k, tau, q);
    o.use_qgram_filter = false;
    return o;
  }
};

}  // namespace ujoin

#endif  // UJOIN_JOIN_JOIN_OPTIONS_H_
