#include "join/explain.h"

#include <string>

#include "obs/json_writer.h"
#include "util/simd.h"

namespace ujoin {

const char* ExplainStageName(ExplainStage stage) {
  switch (stage) {
    case ExplainStage::kFreqLowerPruned:
      return "freq_lower_pruned";
    case ExplainStage::kFreqUpperPruned:
      return "freq_upper_pruned";
    case ExplainStage::kCdfRejected:
      return "cdf_rejected";
    case ExplainStage::kCdfAccepted:
      return "cdf_accepted";
    case ExplainStage::kBudgetFallback:
      return "budget_fallback";
    case ExplainStage::kDeadlineFallback:
      return "deadline_fallback";
    case ExplainStage::kVerified:
      return "verified";
  }
  return "unknown";
}

Result<ExplainResult> SimilaritySearcher::Explain(
    const UncertainString& query, const SearchLimits* limits) const {
  // Defined here (not search.cc) so the narrative machinery lives with its
  // renderers; a member function may be defined in any TU of the library.
  ExplainResult result;
  Result<std::vector<SearchHit>> hits =
      SearchImpl(query, &result.stats, /*force_exact=*/false,
                 /*workspace=*/nullptr, &result.metrics, /*spans=*/nullptr,
                 limits != nullptr ? *limits : options_.limits, &result.data);
  if (!hits.ok()) return hits.status();
  result.hits = std::move(hits).value();
  return result;
}

namespace {

void AppendOptions(const JoinOptions& options, obs::JsonWriter* w) {
  w->BeginObject();
  w->Key("k");
  w->Int(options.k);
  w->Key("tau");
  w->Double(options.tau);
  w->Key("q");
  w->Int(options.q);
  w->Key("use_qgram_filter");
  w->Bool(options.use_qgram_filter);
  w->Key("use_freq_filter");
  w->Bool(options.use_freq_filter);
  w->Key("use_cdf_filter");
  w->Bool(options.use_cdf_filter);
  w->Key("qgram_probabilistic_pruning");
  w->Bool(options.qgram_probabilistic_pruning);
  w->Key("always_verify");
  w->Bool(options.always_verify);
  w->Key("early_stop_verification");
  w->Bool(options.early_stop_verification);
  w->Key("verify_method");
  w->String(options.verify_method == VerifyMethod::kTrie
                ? "trie"
                : options.verify_method == VerifyMethod::kCompressedTrie
                      ? "compressed_trie"
                      : "naive");
  w->EndObject();
}

void AppendProbe(const ExplainProbe& probe, obs::JsonWriter* w) {
  w->BeginObject();
  w->Key("length");
  w->Int(probe.length);
  w->Key("indexed_ids");
  w->Int(probe.indexed_ids);
  w->Key("num_segments");
  w->Int(probe.num_segments);
  w->Key("merged_list_lengths");
  w->BeginArray();
  for (int64_t n : probe.merged_list_lengths) w->Int(n);
  w->EndArray();
  w->Key("lists_scanned");
  w->Int(probe.lists_scanned);
  w->Key("postings_scanned");
  w->Int(probe.postings_scanned);
  w->Key("ids_touched");
  w->Int(probe.ids_touched);
  w->Key("support_pruned");
  w->Int(probe.support_pruned);
  w->Key("probability_pruned");
  w->Int(probe.probability_pruned);
  w->Key("candidates");
  w->Int(probe.candidates);
  w->EndObject();
}

void AppendCandidate(const ExplainCandidate& c, obs::JsonWriter* w) {
  w->BeginObject();
  w->Key("id");
  w->UInt(c.id);
  w->Key("length");
  w->Int(c.length);
  w->Key("matched_segments");
  w->Int(c.matched_segments);
  w->Key("qgram_bound");
  w->Double(c.qgram_bound);
  w->Key("freq_lower_bound");
  if (c.have_freq) {
    w->Int(c.freq_lower_bound);
  } else {
    w->Null();
  }
  w->Key("freq_upper_bound");
  if (c.have_freq) {
    w->Double(c.freq_upper_bound);
  } else {
    w->Null();
  }
  w->Key("cdf_lower");
  if (c.have_cdf) {
    w->Double(c.cdf_lower);
  } else {
    w->Null();
  }
  w->Key("stage");
  w->String(ExplainStageName(c.stage));
  w->Key("verify_worlds");
  w->Int(c.verify_worlds);
  w->Key("emitted");
  w->Bool(c.emitted);
  w->Key("probability");
  w->Double(c.probability);
  w->Key("exact");
  w->Bool(c.exact);
  w->EndObject();
}

}  // namespace

std::string RenderExplainJson(const SimilaritySearcher& searcher,
                              const UncertainString& query,
                              const ExplainResult& result,
                              const SearchLimits& limits,
                              bool include_timing) {
  const JoinStats& stats = result.stats;
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("schema");
  w.String("ujoin.explain");
  w.Key("schema_version");
  w.Int(kExplainSchemaVersion);
  w.Key("query");
  w.BeginObject();
  w.Key("text");
  w.String(query.MostLikelyInstance());
  w.Key("length");
  w.Int(query.length());
  w.Key("length_band");
  w.Int(obs::Histogram::BucketIndex(query.length()));
  w.Key("worlds");
  w.Int(query.WorldCount());
  w.EndObject();
  w.Key("options");
  AppendOptions(searcher.options(), &w);
  w.Key("limits");
  w.BeginObject();
  w.Key("max_verify_worlds");
  w.Int(limits.max_verify_worlds);
  w.Key("deadline_ns");
  w.Int(limits.deadline_ns);
  w.EndObject();
  w.Key("index");
  w.BeginObject();
  w.Key("collection_size");
  w.Int(static_cast<int64_t>(searcher.collection().size()));
  w.Key("length_buckets");
  w.Int(searcher.NumIndexLengthBuckets());
  w.Key("segments");
  w.Int(searcher.NumIndexSegments());
  w.EndObject();
  // The funnel comes from JoinStats (not the obs recorder) so the envelope
  // is complete under -DUJOIN_OBS=OFF.
  w.Key("funnel");
  w.BeginObject();
  w.Key("length_compatible");
  w.Int(stats.length_compatible_pairs);
  w.Key("qgram_candidates");
  w.Int(stats.qgram_candidates);
  w.Key("freq_candidates");
  w.Int(stats.freq_candidates);
  w.Key("cdf_rejected");
  w.Int(stats.cdf_rejected);
  w.Key("cdf_accepted");
  w.Int(stats.cdf_accepted);
  w.Key("cdf_undecided");
  w.Int(stats.cdf_undecided);
  w.Key("verified");
  w.Int(stats.verified_pairs);
  w.EndObject();
  w.Key("probes");
  w.BeginArray();
  for (const ExplainProbe& probe : result.data.probes) AppendProbe(probe, &w);
  w.EndArray();
  w.Key("candidates");
  w.BeginArray();
  for (const ExplainCandidate& c : result.data.candidates) {
    AppendCandidate(c, &w);
  }
  w.EndArray();
  w.Key("hits");
  w.BeginArray();
  for (const SearchHit& hit : result.hits) {
    w.BeginObject();
    w.Key("id");
    w.UInt(hit.id);
    w.Key("probability");
    w.Double(hit.probability);
    w.Key("exact");
    w.Bool(hit.exact);
    w.EndObject();
  }
  w.EndArray();
  w.Key("verdict");
  w.BeginObject();
  w.Key("hits");
  w.Int(static_cast<int64_t>(result.hits.size()));
  w.Key("inexact");
  w.Bool(stats.Inexact());
  w.Key("budget_fallbacks");
  w.Int(stats.budget_fallbacks);
  w.Key("deadline_fallbacks");
  w.Int(stats.deadline_fallbacks);
  w.EndObject();
  w.Key("simd_isa");
  w.String(simd::ActiveIsaName());
  if (include_timing) {
    // Wall clock, appended last so `--no-timing` yields a prefix-stable,
    // byte-reproducible envelope (the registry's ns-exclusion discipline).
    const obs::Recorder& m = result.metrics;
    w.Key("timing_ns");
    w.BeginObject();
    w.Key("total");
    w.Int(static_cast<int64_t>(stats.total_time * 1e9));
    w.Key("qgram");
    w.Int(static_cast<int64_t>(stats.qgram_time * 1e9));
    w.Key("freq");
    w.Int(static_cast<int64_t>(stats.freq_time * 1e9));
    w.Key("cdf");
    w.Int(static_cast<int64_t>(stats.cdf_time * 1e9));
    w.Key("verify");
    w.Int(static_cast<int64_t>(stats.verify_time * 1e9));
    w.Key("kernel_cdf_dp");
    w.Int(m.counter(obs::Counter::kKernelCdfDpNs));
    w.Key("kernel_event_dp");
    w.Int(m.counter(obs::Counter::kKernelEventDpNs));
    w.Key("kernel_freq_dist");
    w.Int(m.counter(obs::Counter::kKernelFreqDistNs));
    w.Key("kernel_fingerprint");
    w.Int(m.counter(obs::Counter::kKernelFingerprintNs));
    w.Key("kernel_merge");
    w.Int(m.counter(obs::Counter::kKernelMergeNs));
    w.EndObject();
  }
  w.EndObject();
  std::string out = w.TakeString();
  out += '\n';
  return out;
}

std::string RenderExplainNarrative(const SimilaritySearcher& searcher,
                                   const UncertainString& query,
                                   const ExplainResult& result) {
  using obs::JsonWriter;
  const JoinOptions& options = searcher.options();
  std::string out;
  out += "explain: query \"" + query.MostLikelyInstance() + "\" (length " +
         std::to_string(query.length()) + ", " +
         std::to_string(query.WorldCount()) + " worlds) against " +
         std::to_string(searcher.collection().size()) +
         " strings, k=" + std::to_string(options.k) +
         " tau=" + JsonWriter::FormatDouble(options.tau) +
         " q=" + std::to_string(options.q) + " [" + simd::ActiveIsaName() +
         "]\n";
  for (const ExplainProbe& probe : result.data.probes) {
    out += "  probe length " + std::to_string(probe.length) + ": " +
           std::to_string(probe.indexed_ids) + " indexed";
    if (probe.num_segments > 0) {
      out += ", merged [";
      for (size_t x = 0; x < probe.merged_list_lengths.size(); ++x) {
        if (x > 0) out += ' ';
        out += std::to_string(probe.merged_list_lengths[x]);
      }
      out += "] over " + std::to_string(probe.num_segments) + " segments (" +
             std::to_string(probe.postings_scanned) + " postings, " +
             std::to_string(probe.lists_scanned) + " lists), pruned " +
             std::to_string(probe.support_pruned) + " support / " +
             std::to_string(probe.probability_pruned) + " probability";
    } else {
      out += " (q-gram filter off)";
    }
    out += " -> " + std::to_string(probe.candidates) + " candidates\n";
  }
  for (const ExplainCandidate& c : result.data.candidates) {
    out += "  candidate " + std::to_string(c.id) + " (length " +
           std::to_string(c.length) + ")";
    if (c.matched_segments >= 0) {
      out += ": segments " + std::to_string(c.matched_segments) + ", bound " +
             JsonWriter::FormatDouble(c.qgram_bound);
    }
    if (c.have_freq) {
      out += ", freq [" + std::to_string(c.freq_lower_bound) + ", " +
             JsonWriter::FormatDouble(c.freq_upper_bound) + "]";
    }
    if (c.have_cdf) {
      out += ", cdf_lower " + JsonWriter::FormatDouble(c.cdf_lower);
    }
    out += " -> ";
    out += ExplainStageName(c.stage);
    if (c.stage == ExplainStage::kVerified) {
      out += " (" + std::to_string(c.verify_worlds) + " worlds)";
    }
    if (c.emitted) {
      out += ", hit p=" + JsonWriter::FormatDouble(c.probability) +
             (c.exact ? " exact" : " lower-bound");
    }
    out += '\n';
  }
  out += "  verdict: " + std::to_string(result.hits.size()) + " hits, " +
         (result.stats.Inexact() ? "inexact" : "exact") + " (" +
         std::to_string(result.stats.budget_fallbacks) + " budget / " +
         std::to_string(result.stats.deadline_fallbacks) +
         " deadline fallbacks)\n";
  return out;
}

}  // namespace ujoin
