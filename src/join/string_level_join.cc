#include "join/string_level_join.h"

#include <algorithm>
#include <numeric>

#include "text/frequency.h"
#include "util/check.h"
#include "util/timer.h"

namespace ujoin {

namespace {

struct FreqEnvelope {
  std::vector<int> min_counts;
  std::vector<int> max_counts;
};

Result<FreqEnvelope> BuildEnvelope(const StringLevelUncertainString& s,
                                   const Alphabet& alphabet) {
  FreqEnvelope env;
  for (int i = 0; i < s.num_instances(); ++i) {
    Result<FrequencyVector> f =
        MakeFrequencyVector(s.instance(i).text, alphabet);
    if (!f.ok()) return f.status();
    if (i == 0) {
      env.min_counts = *f;
      env.max_counts = *f;
      continue;
    }
    for (size_t c = 0; c < f->size(); ++c) {
      env.min_counts[c] = std::min(env.min_counts[c], (*f)[c]);
      env.max_counts[c] = std::max(env.max_counts[c], (*f)[c]);
    }
  }
  return env;
}

}  // namespace

int StringLevelFreqDistanceLowerBound(const std::vector<int>& a_min_counts,
                                      const std::vector<int>& a_max_counts,
                                      const std::vector<int>& b_min_counts,
                                      const std::vector<int>& b_max_counts) {
  UJOIN_CHECK(a_min_counts.size() == b_min_counts.size());
  int pos = 0;  // surplus of A over B that no world pair can avoid
  int neg = 0;
  for (size_t c = 0; c < a_min_counts.size(); ++c) {
    if (a_min_counts[c] > b_max_counts[c]) {
      pos += a_min_counts[c] - b_max_counts[c];
    }
    if (b_min_counts[c] > a_max_counts[c]) {
      neg += b_min_counts[c] - a_max_counts[c];
    }
  }
  return std::max(pos, neg);
}

Result<SelfJoinResult> StringLevelSelfJoin(
    const std::vector<StringLevelUncertainString>& collection,
    const Alphabet& alphabet, const StringLevelJoinOptions& options) {
  UJOIN_CHECK(options.k >= 0);
  UJOIN_CHECK(options.tau >= 0.0 && options.tau <= 1.0);
  SelfJoinResult result;
  Timer total_timer;

  std::vector<FreqEnvelope> envelopes;
  envelopes.reserve(collection.size());
  for (const StringLevelUncertainString& s : collection) {
    Result<FreqEnvelope> env = BuildEnvelope(s, alphabet);
    if (!env.ok()) return env.status();
    envelopes.push_back(std::move(env).value());
  }

  // Visit in ascending min-length order so the length filter can stop the
  // inner scan early.
  std::vector<uint32_t> order(collection.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return collection[a].min_length() < collection[b].min_length();
  });

  for (size_t i = 0; i < order.size(); ++i) {
    const StringLevelUncertainString& r = collection[order[i]];
    for (size_t j = i; j-- > 0;) {
      const StringLevelUncertainString& s = collection[order[j]];
      ++result.stats.length_compatible_pairs;
      // Length filter: every world pair has ed >= length gap; prune when
      // even the closest lengths differ by more than k.  (No early break:
      // max_length is not monotone in the min_length visiting order.)
      if (r.min_length() - s.max_length() > options.k) continue;
      if (s.min_length() - r.max_length() > options.k) continue;
      ++result.stats.qgram_candidates;  // pairs past the cheap stage

      {
        ScopedTimer timer(&result.stats.freq_time);
        const int fd_bound = StringLevelFreqDistanceLowerBound(
            envelopes[order[i]].min_counts, envelopes[order[i]].max_counts,
            envelopes[order[j]].min_counts, envelopes[order[j]].max_counts);
        if (fd_bound > options.k) {
          ++result.stats.freq_lower_pruned;
          continue;
        }
      }
      ++result.stats.freq_candidates;

      ScopedTimer timer(&result.stats.verify_time);
      ++result.stats.verified_pairs;
      bool similar;
      double probability;
      bool exact;
      if (options.early_stop_verification) {
        const StringLevelVerdict verdict =
            DecideStringLevelSimilar(r, s, options.k, options.tau);
        similar = verdict.similar;
        probability = verdict.lower;
        exact = verdict.exact;
      } else {
        probability = StringLevelMatchProbability(r, s, options.k);
        similar = probability > options.tau;
        exact = true;
      }
      if (similar) {
        ++result.stats.result_pairs;
        uint32_t a = order[i];
        uint32_t b = order[j];
        if (a > b) std::swap(a, b);
        result.pairs.push_back(JoinPair{a, b, probability, exact});
      }
    }
  }
  std::sort(result.pairs.begin(), result.pairs.end());
  result.stats.total_time = total_timer.ElapsedSeconds();
  return result;
}

}  // namespace ujoin
