#ifndef UJOIN_JOIN_STRING_LEVEL_JOIN_H_
#define UJOIN_JOIN_STRING_LEVEL_JOIN_H_

#include <cstdint>
#include <vector>

#include "join/self_join.h"
#include "text/alphabet.h"
#include "text/string_level.h"

namespace ujoin {

/// \brief Options for the string-level self-join.
struct StringLevelJoinOptions {
  int k = 2;
  double tau = 0.1;
  /// Stop per-pair verification once the (k, τ) verdict is certain.
  bool early_stop_verification = true;
};

/// Self-join over string-level uncertain strings: all pairs with
/// Pr(ed(A, B) <= k) > τ under the explicit-pdf model.
///
/// Filtering pipeline (the character-level machinery adapted to explicit
/// pdfs):
///   1. length filter — instance length ranges must come within k,
///   2. frequency-distance lower bound over per-symbol [min, max] count
///      envelopes (the Lemma 6 idea applied to the instance set),
///   3. early-terminated exact verification over instance pairs.
Result<SelfJoinResult> StringLevelSelfJoin(
    const std::vector<StringLevelUncertainString>& collection,
    const Alphabet& alphabet, const StringLevelJoinOptions& options);

/// Lemma-6-style lower bound on fd(A, B) valid in every world pair, from
/// per-symbol minimum/maximum occurrence counts across instances.
int StringLevelFreqDistanceLowerBound(
    const std::vector<int>& a_min_counts, const std::vector<int>& a_max_counts,
    const std::vector<int>& b_min_counts, const std::vector<int>& b_max_counts);

}  // namespace ujoin

#endif  // UJOIN_JOIN_STRING_LEVEL_JOIN_H_
