#include "join/cross_join.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "join/search.h"
#include "obs/metrics.h"
#include "obs/obs_macros.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace ujoin {

Result<CrossJoinResult> SimilarityJoin(
    const std::vector<UncertainString>& left,
    const std::vector<UncertainString>& right, const Alphabet& alphabet,
    const JoinOptions& options) {
  CrossJoinResult result;
  Timer total_timer;

  // Index the smaller side; probe with the larger side.  The (k, τ)
  // predicate is symmetric, so only the reported pair orientation flips.
  const bool right_indexed = right.size() <= left.size();
  const std::vector<UncertainString>& indexed =
      right_indexed ? right : left;
  const std::vector<UncertainString>& probes = right_indexed ? left : right;

  obs::Recorder* const run_metrics = options.metrics;
  obs::TraceRecorder* const trace = options.trace;

  const int64_t build_span_start = trace != nullptr ? trace->NowNs() : 0;
  ScopedTimer build_timer(&result.stats.index_build_time);
  Result<SimilaritySearcher> searcher =
      SimilaritySearcher::Create(indexed, alphabet, options);
  build_timer.StopAndGet();
  if (trace != nullptr) {
    trace->AddSpan("index_build", build_span_start,
                   trace->NowNs() - build_span_start, /*tid=*/0);
  }
  if (!searcher.ok()) return searcher.status();

  int threads = options.threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  threads = std::min(threads,
                     static_cast<int>(std::max<size_t>(probes.size(), 1)));

  struct ProbeOutcome {
    Status status;
    std::vector<SearchHit> hits;
    JoinStats stats;
    obs::SpanCollector spans;  // probe-private trace spans (empty when off)
  };
  std::vector<ProbeOutcome> outcomes(probes.size());
  // Probe-private recorders, folded into the run sink in probe order below
  // — same determinism contract as the stats fold.
  std::vector<obs::Recorder> probe_metrics(
      run_metrics != nullptr ? probes.size() : 0);
  // One query workspace per worker thread: probes reuse its buffers so the
  // steady-state candidate-generation stage does not allocate.
  std::vector<QueryWorkspace> workspaces(static_cast<size_t>(threads));
  auto run_probe = [&](int worker, size_t probe_id) {
    ProbeOutcome& outcome = outcomes[probe_id];
    obs::Recorder* const rec =
        run_metrics != nullptr ? &probe_metrics[probe_id] : nullptr;
    obs::SpanCollector* span_sink = nullptr;
    // Probe-span sampling: keep/drop depends only on the sampling config and
    // the probe index, so sampled traces are thread-count invariant.
    if (trace != nullptr &&
        trace->SampleProbe(static_cast<int64_t>(probe_id))) {
      outcome.spans =
          obs::SpanCollector(trace, static_cast<uint32_t>(worker) + 1);
      span_sink = &outcome.spans;
    }
    Result<std::vector<SearchHit>> hits =
        searcher->Search(probes[probe_id], &outcome.stats,
                         &workspaces[static_cast<size_t>(worker)], rec,
                         span_sink);
    if (hits.ok()) {
      outcome.hits = std::move(hits).value();
    } else {
      outcome.status = hits.status();
    }
  };

  if (threads == 1) {
    for (size_t probe_id = 0; probe_id < probes.size(); ++probe_id) {
      run_probe(0, probe_id);
    }
  } else {
    std::atomic<size_t> next{0};
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t]() {
        for (;;) {
          const size_t probe_id = next.fetch_add(1);
          if (probe_id >= probes.size()) return;
          run_probe(t, probe_id);
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
  }

  for (size_t probe_id = 0; probe_id < probes.size(); ++probe_id) {
    const ProbeOutcome& outcome = outcomes[probe_id];
    if (!outcome.status.ok()) return outcome.status;
    for (const SearchHit& hit : outcome.hits) {
      const uint32_t lhs =
          right_indexed ? static_cast<uint32_t>(probe_id) : hit.id;
      const uint32_t rhs =
          right_indexed ? hit.id : static_cast<uint32_t>(probe_id);
      result.pairs.push_back(JoinPair{lhs, rhs, hit.probability, hit.exact});
    }
    result.stats.Merge(outcome.stats);
    if (run_metrics != nullptr) run_metrics->Merge(probe_metrics[probe_id]);
    if (trace != nullptr) {
      trace->NoteProbe(outcome.spans.enabled());
      trace->Append(outcome.spans.events());
    }
  }
  result.stats.peak_index_memory = searcher->IndexMemoryUsage();
  UJOIN_OBS_GAUGE(run_metrics, obs::Gauge::kThreads, threads);
  UJOIN_OBS_GAUGE(run_metrics, obs::Gauge::kCollectionSize,
                  static_cast<int64_t>(indexed.size() + probes.size()));
  UJOIN_OBS_GAUGE(run_metrics, obs::Gauge::kPeakIndexMemoryBytes,
                  static_cast<int64_t>(result.stats.peak_index_memory));
  std::sort(result.pairs.begin(), result.pairs.end());
  if (options.progress_fn != nullptr) {
    options.progress_fn(
        JoinProgress{probes.size(), probes.size(), result.pairs.size(),
                     total_timer.ElapsedSeconds()},
        options.progress_user);
  }
  result.stats.total_time = total_timer.ElapsedSeconds();
  return result;
}

}  // namespace ujoin
