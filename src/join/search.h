#ifndef UJOIN_JOIN_SEARCH_H_
#define UJOIN_JOIN_SEARCH_H_

#include <cstdint>
#include <vector>

#include "filter/freq_filter.h"
#include "index/segment_index.h"
#include "join/join_options.h"
#include "join/join_stats.h"
#include "text/alphabet.h"
#include "text/uncertain_string.h"
#include "util/status.h"

namespace ujoin {

namespace obs {
class QueryLog;
class Recorder;
class SpanCollector;
class TraceRecorder;
}  // namespace obs

struct ExplainData;
struct ExplainResult;

/// Version of the searcher save/load container (see Save/Load); exposed so
/// the serve health page can report what format is resident.
inline constexpr uint32_t kSearcherFormatVersion = 2;

/// \brief One hit of a similarity search: a collection index plus the match
/// probability (exact when `exact`, else a certified CDF lower bound > τ).
struct SearchHit {
  uint32_t id;
  double probability;
  bool exact;

  friend bool operator==(const SearchHit& a, const SearchHit& b) {
    return a.id == b.id;
  }
  friend bool operator<(const SearchHit& a, const SearchHit& b) {
    return a.id < b.id;
  }
};

/// \brief Prebuilt similarity-search structure over an uncertain string
/// collection: the inverted segment index plus the frequency side index.
///
/// Where the self-join interleaves querying and indexing, the searcher
/// indexes the whole collection once and answers arbitrarily many
/// (k, τ)-matching queries — the "similarity search" primitive the paper's
/// filters were originally designed around (cf. [4, 6]).  Queries may be
/// uncertain strings themselves; a deterministic query is simply the
/// single-instance special case (Section 3.1).
class SimilaritySearcher {
 public:
  /// Builds the index structures; the collection is copied in.
  static Result<SimilaritySearcher> Create(
      std::vector<UncertainString> collection, const Alphabet& alphabet,
      const JoinOptions& options);

  /// All ids with Pr(ed(query, S_id) <= k) > τ, sorted by id.
  ///
  /// `workspace` is the per-thread scratch for the index probe; callers
  /// issuing many searches should own one per thread and pass it in so the
  /// candidate-generation stage stops allocating.  When null, a workspace
  /// is created for the call.
  ///
  /// `metrics` and `spans` are optional observability sinks for this one
  /// query (see src/obs/): histograms of verify latency, explored trie
  /// nodes, merged-list lengths, and candidate α bounds go to `metrics`;
  /// per-stage trace spans go to `spans`.  Both must be private to the call
  /// (drivers use one per query and fold in query order).  Recording into
  /// `metrics` stays allocation-free; span collection may allocate.
  ///
  /// `limits`, when non-null, overrides the Create-time
  /// JoinOptions::limits for this query (the serve layer's per-query
  /// deadline / verification budget).  Candidates whose exact verification
  /// a limit forbids are decided from their CDF bounds instead and counted
  /// in stats->budget_fallbacks / deadline_fallbacks; when either count is
  /// non-zero the result set is certified-but-possibly-incomplete
  /// (JoinStats::Inexact).
  Result<std::vector<SearchHit>> Search(
      const UncertainString& query, JoinStats* stats = nullptr,
      QueryWorkspace* workspace = nullptr, obs::Recorder* metrics = nullptr,
      obs::SpanCollector* spans = nullptr,
      const SearchLimits* limits = nullptr) const;

  /// The `count` most probable matches with Pr(ed <= k) > τ, sorted by
  /// descending probability (ties by id).  Forces exact verification so
  /// probabilities are comparable.
  Result<std::vector<SearchHit>> SearchTopK(const UncertainString& query,
                                            int count,
                                            JoinStats* stats = nullptr,
                                            QueryWorkspace* workspace =
                                                nullptr) const;

  /// Answers many queries, optionally in parallel (`threads` <= 0 picks the
  /// hardware concurrency).  The searcher is immutable after Create, so
  /// concurrent Search calls are safe; each worker thread owns one
  /// QueryWorkspace.  Results arrive in query order.  When `stats` is
  /// non-null, every query's JoinStats are folded into it with
  /// JoinStats::Merge in query order, so the aggregate is identical for
  /// every thread count.  Observability sinks follow the same pattern: each
  /// query records into a private recorder/span buffer and the driver folds
  /// them into the sinks in query order — same determinism contract as the
  /// stats.  `metrics`/`trace` default to the sinks attached to the
  /// Create-time options (JoinOptions::metrics / JoinOptions::trace); pass
  /// them explicitly for searchers restored with Load, whose persisted
  /// options carry no sinks.
  /// `limits` follows the Search contract: a non-null value overrides the
  /// Create-time JoinOptions::limits for every query of the batch.
  /// `query_log`, when non-null, receives one QueryLogRecord per query —
  /// written in query order with connection 0 and seq = query index + 1, so
  /// the log's deterministic fields are identical for every thread count.
  Result<std::vector<std::vector<SearchHit>>> SearchMany(
      const std::vector<UncertainString>& queries, int threads = 1,
      JoinStats* stats = nullptr, obs::Recorder* metrics = nullptr,
      obs::TraceRecorder* trace = nullptr,
      const SearchLimits* limits = nullptr,
      obs::QueryLog* query_log = nullptr) const;

  /// Replays one query and records the full funnel narrative: per-length
  /// probe work, per-candidate filter outcomes with their bound values, and
  /// the verification verdicts (see join/explain.h).  Purely diagnostic —
  /// the hits are exactly Search's.  Unlike the obs sinks this works under
  /// -DUJOIN_OBS=OFF and on Load-restored searchers (it needs no
  /// Create-time sink attachment).  Defined in explain.cc.
  Result<ExplainResult> Explain(const UncertainString& query,
                                const SearchLimits* limits = nullptr) const;

  const std::vector<UncertainString>& collection() const {
    return collection_;
  }
  /// The alphabet the collection (and every query) must draw from; the
  /// serve layer parses request lines against it.
  const Alphabet& alphabet() const { return alphabet_; }
  /// The effective join options (Create-time or Load-restored).
  const JoinOptions& options() const { return options_; }
  size_t IndexMemoryUsage() const { return index_.MemoryUsage(); }
  /// Index shape, for the serve health page and explain envelope.
  int NumIndexLengthBuckets() const { return index_.num_length_buckets(); }
  int64_t NumIndexSegments() const { return index_.num_segments(); }

  /// Persists the searcher (join options, collection with full-precision
  /// probabilities, and the inverted segment index) to `path`.  Frequency
  /// summaries are cheap and rebuilt at load time.
  Status Save(const std::string& path) const;

  /// Restores a searcher written by Save.  The alphabet must contain every
  /// symbol of the persisted collection; corrupt or truncated files are
  /// rejected with InvalidArgument.
  static Result<SimilaritySearcher> Load(const std::string& path,
                                         const Alphabet& alphabet);

 private:
  SimilaritySearcher(std::vector<UncertainString> collection,
                     const Alphabet& alphabet, const JoinOptions& options);

  Result<std::vector<SearchHit>> SearchImpl(const UncertainString& query,
                                            JoinStats* stats, bool force_exact,
                                            QueryWorkspace* workspace,
                                            obs::Recorder* metrics,
                                            obs::SpanCollector* spans,
                                            const SearchLimits& limits,
                                            ExplainData* explain) const;

  std::vector<UncertainString> collection_;
  const Alphabet alphabet_;
  JoinOptions options_;
  InvertedSegmentIndex index_;
  std::vector<FrequencySummary> freq_summaries_;
  std::vector<std::vector<uint32_t>> ids_by_length_;  // indexed by length
};

}  // namespace ujoin

#endif  // UJOIN_JOIN_SEARCH_H_
