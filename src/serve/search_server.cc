#include "serve/search_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>

#include "obs/exposition.h"
#include "obs/obs_macros.h"
#include "obs/trace.h"
#include "serve/protocol.h"
#include "text/uncertain_string.h"

namespace ujoin {
namespace serve {

namespace {

/// Sends all of `data`, tolerating short writes.  MSG_NOSIGNAL turns a peer
/// that hung up into an error return instead of SIGPIPE.
void SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return;
    sent += static_cast<size_t>(n);
  }
}

}  // namespace

SearchServer::SearchServer(const SimilaritySearcher* searcher,
                           const ServeOptions& options)
    : searcher_(searcher),
      options_(options),
      pool_(options.max_connections),
      mailbox_(static_cast<size_t>(options.max_connections)) {}

SearchServer::~SearchServer() { Stop(); }

Status SearchServer::Start() {
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::IoError("socket() failed");
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
           sizeof(addr)) != 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    // std::strerror may return a static buffer; workers share this process.
    return Status::IoError("bind(127.0.0.1:" + std::to_string(options_.port) +
                           ") failed: " +
                           std::system_category().message(errno));
  }
  if (listen(listen_fd_, 16) != 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("listen() failed");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = static_cast<int>(ntohs(bound.sin_port));
  } else {
    port_ = options_.port;
  }

  if (options_.metrics_port >= 0) {
    const Status scrape_status = scrape_.Start(options_.metrics_port);
    if (!scrape_status.ok()) {
      close(listen_fd_);
      listen_fd_ = -1;
      return scrape_status;
    }
    scrape_running_ = true;
    // Serve identifies itself on /healthz: build-info block instead of the
    // bare scrape endpoint's "ok".
    scrape_.SetHealthBody(RenderServeHealth(*searcher_));
  }

  if (options_.watchdog_ms > 0) {
    watchdog_ = std::make_unique<obs::Watchdog>(obs::GlobalFlightRecorder());
    if (scrape_running_) {
      // The watchdog thread pushes a fresh stalls page after every capture;
      // publish the empty page now so /debug/stalls is live (zero stalls)
      // from the first scrape rather than 404 until the first capture.
      watchdog_->set_push_fn(
          [this](const std::string& json) { scrape_.UpdateStallsPage(json); });
      scrape_.UpdateStallsPage(watchdog_->StallsJson());
    }
    obs::WatchdogOptions wd;
    wd.stall_ns = options_.watchdog_ms * 1'000'000;
    wd.dump_path = options_.watchdog_dump_path;
    watchdog_->Start(wd);
  }

  stop_.store(false, std::memory_order_relaxed);
  {
    // Publish the empty snapshot so a scrape before the first batch sees a
    // complete (all-zero) page instead of an empty body.
    std::lock_guard<std::mutex> lock(agg_mu_);
    PushSnapshotLocked();
  }
  workers_.reserve(static_cast<size_t>(options_.max_connections));
  for (int slot = 0; slot < options_.max_connections; ++slot) {
    workers_.emplace_back(&SearchServer::ConnectionWorker, this, slot);
  }
  accept_thread_ = std::thread(&SearchServer::AcceptLoop, this);
  return Status::OK();
}

void SearchServer::Stop() {
  if (!accept_thread_.joinable()) return;
  stop_.store(true, std::memory_order_relaxed);
  mailbox_cv_.notify_all();
  accept_thread_.join();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  if (watchdog_ != nullptr) watchdog_->Stop();
  {
    std::lock_guard<std::mutex> lock(agg_mu_);
    PushSnapshotLocked();
  }
  if (scrape_running_) {
    scrape_.Stop();
    scrape_running_ = false;
  }
}

int SearchServer::metrics_port() const {
  return scrape_running_ ? scrape_.port() : -1;
}

obs::Recorder SearchServer::QueryMetrics() const {
  std::lock_guard<std::mutex> lock(agg_mu_);
  return query_metrics_;
}

obs::Recorder SearchServer::ServeMetrics() const {
  std::lock_guard<std::mutex> lock(agg_mu_);
  return serve_metrics_;
}

JoinStats SearchServer::Stats() const {
  std::lock_guard<std::mutex> lock(agg_mu_);
  return stats_;
}

std::vector<obs::QueryLogRecord> SearchServer::SlowQueriesByVerifyWorlds()
    const {
  std::lock_guard<std::mutex> lock(agg_mu_);
  return slow_by_worlds_.Records();
}

std::vector<obs::QueryLogRecord> SearchServer::SlowQueriesByLatency() const {
  std::lock_guard<std::mutex> lock(agg_mu_);
  return slow_by_latency_.Records();
}

std::string SearchServer::SlowQueriesJson() const {
  std::lock_guard<std::mutex> lock(agg_mu_);
  return obs::RenderSlowQueriesPage(slow_by_worlds_, slow_by_latency_);
}

int64_t SearchServer::WatchdogCaptures() const {
  return watchdog_ != nullptr ? watchdog_->captures() : 0;
}

std::string SearchServer::StallsJson() const {
  return watchdog_ != nullptr
             ? watchdog_->StallsJson()
             : obs::RenderStallsPage({}, /*captures=*/0);
}

void SearchServer::AcceptLoop() {
  // Poll-with-timeout instead of a bare blocking accept (the ScrapeServer
  // idiom): the 100 ms tick is how Stop() gets the thread's attention
  // without racing a close() against an accept() in flight.
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    const int slot = pool_.TryAcquire();
    if (slot < 0) {
      // Admission control: every workspace is leased to a live connection.
      {
        std::lock_guard<std::mutex> lock(agg_mu_);
        UJOIN_OBS_COUNTER(&serve_metrics_,
                          obs::Counter::kServeRejectedConnections, 1);
      }
      SendAll(fd, RenderBusyResponse());
      close(fd);
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(agg_mu_);
      UJOIN_OBS_COUNTER(&serve_metrics_, obs::Counter::kServeConnections, 1);
    }
    const int64_t conn = ++connections_accepted_;
    {
      std::lock_guard<std::mutex> lock(mailbox_mu_);
      mailbox_[static_cast<size_t>(slot)] = Mail{fd, conn};
    }
    mailbox_cv_.notify_all();
  }
}

void SearchServer::ConnectionWorker(int slot) {
  for (;;) {
    Mail mail;
    {
      std::unique_lock<std::mutex> lock(mailbox_mu_);
      mailbox_cv_.wait(lock, [&] {
        return stop_.load(std::memory_order_relaxed) ||
               mailbox_[static_cast<size_t>(slot)].fd >= 0;
      });
      mail = mailbox_[static_cast<size_t>(slot)];
      if (mail.fd < 0) return;  // stop requested while idle
    }
    HandleConnection(mail.fd, slot, mail.conn);
    close(mail.fd);
    {
      std::lock_guard<std::mutex> lock(mailbox_mu_);
      mailbox_[static_cast<size_t>(slot)] = Mail{};
    }
    // Mailbox is idle again before the lease returns, so an accept that
    // re-acquires this slot always finds the worker ready.
    pool_.Release(slot);
    if (stop_.load(std::memory_order_relaxed)) return;
  }
}

void SearchServer::HandleConnection(int fd, int slot, int64_t conn) {
  UJOIN_OBS_FLIGHT_EVENT(obs::FlightEvent::kConnOpen, conn, 0);
  QueryWorkspace* const workspace = pool_.workspace(slot);
  LineFramer framer(options_.max_request_bytes);
  BatchGuard guard(options_.max_batch_requests, options_.max_batch_bytes);
  // Per-connection query-log buffer: records accumulate allocation-free and
  // flush to the shared log at batch boundaries (FinishBatch).
  obs::QueryLogBuffer log_buffer;
  int64_t seq = 0;
  int64_t batch_queries = 0;
  std::string line;
  char buf[4096];
  bool open = true;
  // Answers one request with an error: response, optional query-log record,
  // and the run-level fold.
  const auto answer_error = [&](const std::string& message,
                                int64_t query_length) {
    SendAll(fd, RenderErrorResponse(seq, message));
    const obs::QueryLogRecord record = obs::MakeQueryLogRecord(
        obs::Recorder{}, conn, seq, query_length, /*hits=*/0, /*error=*/true);
    if (options_.query_log != nullptr) {
      log_buffer.Add(record);
      if (log_buffer.full()) log_buffer.FlushTo(options_.query_log);
    }
    FoldQuery(JoinStats{}, obs::Recorder{}, /*error=*/true, &record,
              /*spans=*/nullptr);
  };
  // Idle keep-alive accounting rides the existing 100 ms poll tick: a tick
  // with no readable bytes adds to the idle run, any received byte resets
  // it.  Granularity is therefore one tick, which is all a keep-alive
  // timeout needs.
  int64_t idle_ms = 0;
  while (open && !stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int ready = poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready < 0) break;
    if (ready == 0) {
      if (options_.idle_timeout_ms > 0) {
        idle_ms += 100;
        if (idle_ms >= options_.idle_timeout_ms) {
          UJOIN_OBS_FLIGHT_EVENT(obs::FlightEvent::kConnIdleClose, conn,
                                 idle_ms);
          std::lock_guard<std::mutex> lock(agg_mu_);
          UJOIN_OBS_COUNTER(&serve_metrics_,
                            obs::Counter::kServeIdleClosedConnections, 1);
          break;  // final batch flushes below, like a peer hang-up
        }
      }
      continue;
    }
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // EOF or error: final batch flushes below
    idle_ms = 0;
    framer.Append(buf, static_cast<size_t>(n));
    while (open && framer.NextLine(&line)) {
      if (line.empty()) {
        // Batch separator: fold boundary and snapshot push.
        guard.Reset();
        if (batch_queries > 0) {
          FinishBatch(batch_queries, &log_buffer);
          batch_queries = 0;
        }
        continue;
      }
      ++seq;
      ++batch_queries;
      if (!guard.AddRequest(line.size())) {
        // Oversized batch: the batch contract is broken, so answer once and
        // drop the connection (like a lost frame boundary).
        answer_error(guard.ViolationMessage(), /*query_length=*/0);
        open = false;
        continue;
      }
      if (line.size() > framer.max_line_bytes()) {
        answer_error("request line exceeds " +
                         std::to_string(framer.max_line_bytes()) + " bytes",
                     /*query_length=*/0);
        continue;
      }
      Result<UncertainString> query =
          UncertainString::Parse(line, searcher_->alphabet());
      if (!query.ok()) {
        answer_error(std::string(query.status().message()),
                     /*query_length=*/0);
        continue;
      }
      JoinStats query_stats;
      obs::Recorder query_rec;
      obs::SpanCollector spans;  // disabled unless a trace sink is attached
      obs::SpanCollector* span_sink = nullptr;
      if (options_.trace != nullptr) {
        spans = obs::SpanCollector(options_.trace,
                                   static_cast<uint32_t>(slot) + 1);
        span_sink = &spans;
      }
      // Stamp serve attribution on this thread's in-flight block before the
      // query opens its epoch, so a watchdog capture can name (conn, seq).
      UJOIN_OBS_FLIGHT_EVENT(obs::FlightEvent::kServeQuery, conn, seq);
      Result<std::vector<SearchHit>> hits =
          searcher_->Search(*query, &query_stats, workspace, &query_rec,
                            span_sink, &options_.limits);
      if (!hits.ok()) {
        answer_error(std::string(hits.status().message()), query->length());
        continue;
      }
      SendAll(fd, RenderHitsResponse(seq, *hits, query_stats.Inexact()));
      obs::QueryLogRecord record = obs::MakeQueryLogRecord(
          query_rec, conn, seq, query->length(),
          static_cast<int64_t>(hits->size()), /*error=*/false);
      // Stats-derived and wall-clock fields are caller-filled (see
      // MakeQueryLogRecord) so records survive -DUJOIN_OBS=OFF.
      record.budget_fallbacks = query_stats.budget_fallbacks;
      record.deadline_fallbacks = query_stats.deadline_fallbacks;
      record.inexact = query_stats.Inexact();
      record.total_ns = static_cast<int64_t>(query_stats.total_time * 1e9);
      record.verify_ns = static_cast<int64_t>(query_stats.verify_time * 1e9);
      if (options_.query_log != nullptr) {
        log_buffer.Add(record);
        if (log_buffer.full()) log_buffer.FlushTo(options_.query_log);
      }
      FoldQuery(query_stats, query_rec, /*error=*/false, &record, span_sink);
    }
    if (framer.PartialOverLimit()) {
      // No frame boundary within the cap: the stream cannot be
      // re-synchronized, so answer once and drop the connection.
      ++seq;
      ++batch_queries;
      answer_error("request line exceeds " +
                       std::to_string(framer.max_line_bytes()) +
                       " bytes without a newline",
                   /*query_length=*/0);
      open = false;
    }
  }
  if (batch_queries > 0) FinishBatch(batch_queries, &log_buffer);
  UJOIN_OBS_FLIGHT_EVENT(obs::FlightEvent::kConnClose, conn, seq);
}

void SearchServer::FoldQuery(const JoinStats& query_stats,
                             const obs::Recorder& query_rec, bool error,
                             const obs::QueryLogRecord* record,
                             const obs::SpanCollector* spans) {
  std::lock_guard<std::mutex> lock(agg_mu_);
  stats_.Merge(query_stats);
  query_metrics_.Merge(query_rec);
  UJOIN_OBS_COUNTER(&serve_metrics_, obs::Counter::kServeRequests, 1);
  if (error) {
    UJOIN_OBS_COUNTER(&serve_metrics_, obs::Counter::kServeRequestErrors, 1);
  }
  if (record != nullptr) {
    slow_by_worlds_.Offer(*record);
    slow_by_latency_.Offer(*record);
  }
  if (options_.trace != nullptr && spans != nullptr) {
    // Probe indexes are assigned in fold order; the sampler verdict plus
    // the slow-keep threshold decide whether this query's spans survive.
    // Append under agg_mu_ keeps the recorder single-writer.
    const int64_t idx = trace_probe_index_++;
    const bool keep = options_.trace->KeepProbe(
        options_.trace->SampleProbe(idx), record->total_ns);
    options_.trace->NoteProbe(keep);
    if (keep) options_.trace->Append(spans->events());
  }
}

void SearchServer::FinishBatch(int64_t batch_queries,
                               obs::QueryLogBuffer* log_buffer) {
  // Flush outside the aggregate lock: rendering + file IO must not block
  // other connections' folds.
  if (log_buffer != nullptr) log_buffer->FlushTo(options_.query_log);
  UJOIN_OBS_FLIGHT_EVENT(obs::FlightEvent::kBatchBoundary, batch_queries, 0);
  std::lock_guard<std::mutex> lock(agg_mu_);
  UJOIN_OBS_COUNTER(&serve_metrics_, obs::Counter::kServeBatches, 1);
  UJOIN_OBS_HIST(&serve_metrics_, obs::Hist::kServeBatchSize, batch_queries);
  PushSnapshotLocked();
}

void SearchServer::PushSnapshotLocked() {
  if (watchdog_ != nullptr) {
    // Fold the watchdog's lifetime capture count into the serve recorder as
    // a delta, so the counter is monotone no matter how often we snapshot.
    const int64_t captures = watchdog_->captures();
    UJOIN_OBS_COUNTER(&serve_metrics_, obs::Counter::kWatchdogStallsCaptured,
                      captures - watchdog_captures_folded_);
    watchdog_captures_folded_ = captures;
  }
  if (!scrape_running_) return;
  obs::Recorder merged = query_metrics_;
  merged.Merge(serve_metrics_);
  scrape_.UpdateMetrics(obs::RenderPrometheusText(merged));
  scrape_.UpdateDebugPage(
      obs::RenderSlowQueriesPage(slow_by_worlds_, slow_by_latency_));
}

}  // namespace serve
}  // namespace ujoin
