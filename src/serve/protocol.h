#ifndef UJOIN_SERVE_PROTOCOL_H_
#define UJOIN_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "join/search.h"

namespace ujoin {
namespace serve {

// ---------------------------------------------------------------------------
// Wire protocol of the resident search service (DESIGN.md "Resident search
// service").
//
// Requests are newline-delimited text frames on a plain TCP connection:
//
//   <uncertain string in the paper's notation>\n     one query
//   \n                                               batch separator
//
// A query line is exactly what UncertainString::Parse accepts (and what
// `ujoin_cli datagen` writes), e.g. `A{(C,0.5),(G,0.5)}AC`.  A blank line
// ends the current batch: the server folds the batch's metrics into its
// run-level recorder and pushes a fresh /metrics snapshot.  Closing the
// connection (or half-closing the write side) ends the final batch the same
// way.
//
// Every query line gets exactly one JSON response line, rendered through the
// deterministic obs::JsonWriter (no whitespace, shortest round-trip
// doubles), so a client that knows its own request sequence numbers can
// compare response bytes against a local re-rendering:
//
//   {"seq":N,"status":"ok","inexact":false,"hits":[
//       {"id":3,"probability":0.75,"exact":true},...]}
//   {"seq":N,"status":"error","error":"<message>"}
//
// `seq` counts request lines per connection, starting at 1; blank separator
// lines produce no response and do not advance it.  `inexact` is true when
// any candidate of the query was decided from its CDF bounds instead of
// exact verification (per-query budget or deadline, see
// JoinOptions::SearchLimits): the reported hits are still certified
// (lower bound > τ) but the set may be missing matches whose bounds were
// inconclusive.
//
// A connection rejected by admission control receives one
//   {"seq":0,"status":"busy","error":"..."}
// line and is closed.  An oversized request line (no newline within the
// configured cap) gets one seq-bearing error response and the connection is
// closed, because the frame boundary is lost.
// ---------------------------------------------------------------------------

/// \brief Splits a received byte stream into newline-terminated frames with
/// a bounded line length.
///
/// The framer owns one growing buffer per connection; steady state is
/// append + in-place scan.  A complete line longer than the cap is still
/// returned (the caller answers it with an error and keeps the connection:
/// framing is intact).  A *partial* line that already exceeds the cap is the
/// unrecoverable case — no frame boundary can be found — reported by
/// PartialOverLimit().
class LineFramer {
 public:
  explicit LineFramer(size_t max_line_bytes) : max_(max_line_bytes) {}

  void Append(const char* data, size_t n) { buf_.append(data, n); }

  /// Moves the next complete line (without the '\n'; one trailing '\r' is
  /// stripped for telnet-style clients) into `*line`.  Returns false when
  /// no full line is buffered.
  bool NextLine(std::string* line);

  /// True when the buffered partial line exceeds the cap: the connection
  /// cannot be re-synchronized and must be closed after an error response.
  bool PartialOverLimit() const { return buf_.size() - pos_ > max_; }

  size_t max_line_bytes() const { return max_; }

 private:
  size_t max_;
  std::string buf_;
  size_t pos_ = 0;  // consumed prefix of buf_
};

/// \brief Per-batch request-count and byte caps (serve hardening).
///
/// A client that streams requests without ever sending a batch separator
/// would otherwise make the server buffer responses and per-batch state
/// without bound.  The guard counts request lines and their bytes since the
/// last separator; the first line that exceeds either cap is answered with a
/// structured error and the connection is closed (like an oversized line,
/// the batch contract is broken).  A cap <= 0 is unlimited.
class BatchGuard {
 public:
  BatchGuard(int64_t max_requests, int64_t max_bytes)
      : max_requests_(max_requests), max_bytes_(max_bytes) {}

  /// Accounts one request line of `line_bytes` bytes.  Returns false when
  /// the line pushes the batch over either cap (the line is still counted,
  /// so ViolationMessage describes it).
  bool AddRequest(size_t line_bytes) {
    ++requests_;
    bytes_ += static_cast<int64_t>(line_bytes);
    return !OverLimit();
  }

  /// Starts the next batch (call at each batch separator).
  void Reset() {
    requests_ = 0;
    bytes_ = 0;
  }

  bool OverLimit() const {
    return (max_requests_ > 0 && requests_ > max_requests_) ||
           (max_bytes_ > 0 && bytes_ > max_bytes_);
  }

  /// Human-readable description of the tripped cap for the error response.
  std::string ViolationMessage() const;

  int64_t requests() const { return requests_; }
  int64_t bytes() const { return bytes_; }

 private:
  int64_t max_requests_;
  int64_t max_bytes_;
  int64_t requests_ = 0;
  int64_t bytes_ = 0;
};

/// Renders the success response line (newline-terminated) for request `seq`.
/// `hits` must already be in result order (Search returns them sorted by
/// id); rendering is byte-deterministic.
std::string RenderHitsResponse(int64_t seq, const std::vector<SearchHit>& hits,
                               bool inexact);

/// Renders the error response line (newline-terminated) for request `seq`.
std::string RenderErrorResponse(int64_t seq, std::string_view message);

/// Renders the admission-control rejection line (newline-terminated);
/// `seq` is 0 because no request was read.
std::string RenderBusyResponse();

/// Renders the serve layer's /healthz body: a JSON build-info block
/// (status, searcher format version, SIMD ISA, obs on/off, metrics schema,
/// collection and index shape) so operators can identify what is serving.
/// Newline-terminated, byte-deterministic for a fixed build and searcher.
std::string RenderServeHealth(const SimilaritySearcher& searcher);

}  // namespace serve
}  // namespace ujoin

#endif  // UJOIN_SERVE_PROTOCOL_H_
