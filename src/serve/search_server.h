#ifndef UJOIN_SERVE_SEARCH_SERVER_H_
#define UJOIN_SERVE_SEARCH_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "join/join_stats.h"
#include "join/search.h"
#include "obs/metrics.h"
#include "obs/query_log.h"
#include "obs/scrape_server.h"
#include "obs/watchdog.h"
#include "serve/workspace_pool.h"
#include "util/status.h"

namespace ujoin {

namespace obs {
class SpanCollector;
class TraceRecorder;
}  // namespace obs

namespace serve {

/// \brief Configuration of one SearchServer instance.
struct ServeOptions {
  /// TCP port to bind on 127.0.0.1 (0 picks an ephemeral port, readable
  /// from SearchServer::port() after Start).
  int port = 0;
  /// Admission control: connections served concurrently.  Each admitted
  /// connection leases one pooled QueryWorkspace; connections beyond the
  /// cap receive a busy response and are closed.
  int max_connections = 4;
  /// Per-query verification limits applied to every request (deadline and
  /// world-count budget; see JoinOptions::limits for semantics).
  SearchLimits limits;
  /// Longest accepted request line, in bytes.  A longer complete line is
  /// answered with an error; a longer partial line closes the connection
  /// (the frame boundary is lost).
  size_t max_request_bytes = size_t{1} << 16;
  /// Port of the embedded Prometheus scrape endpoint (/metrics + /healthz +
  /// /debug/slow): 0 picks an ephemeral port, -1 disables the endpoint.
  int metrics_port = -1;
  /// Per-batch caps (serve hardening; see protocol.h BatchGuard).  A batch
  /// that exceeds either cap is answered with a structured error and the
  /// connection is closed.  <= 0 disables the respective cap.
  int64_t max_batch_requests = 1024;
  int64_t max_batch_bytes = int64_t{1} << 20;
  /// Structured query log (borrowed, must outlive the server; null = off).
  /// One JSONL record per answered request, buffered per connection and
  /// flushed at batch boundaries so the probe path stays allocation-free.
  obs::QueryLog* query_log = nullptr;
  /// Trace sink for per-query spans (borrowed; null = off).  The sink's
  /// probe sampler and slow-keep threshold decide which queries' spans are
  /// kept; probe indexes are assigned in fold order.  Span collection
  /// allocates — it is a debugging mode, same caveat as JoinOptions::trace.
  obs::TraceRecorder* trace = nullptr;
  /// Idle keep-alive timeout, milliseconds.  A connection that sends no
  /// bytes for this long is closed (after its final batch flush) and
  /// counted under serve_idle_closed_connections.  <= 0 keeps connections
  /// open until the peer hangs up (the historical behavior).
  int64_t idle_timeout_ms = 0;
  /// Stall watchdog (see obs/watchdog.h).  > 0 starts a watchdog thread
  /// over the global flight recorder: a query stalls when it runs past
  /// 4x its own deadline, or past this flat threshold when it has none.
  /// Captured stalls are served at /debug/stalls on the scrape endpoint.
  /// <= 0 disables the watchdog.
  int64_t watchdog_ms = 0;
  /// When non-empty, every watchdog capture also dumps the full flight
  /// record here (reason "watchdog").
  std::string watchdog_dump_path;
};

/// \brief Resident similarity-search service: a frozen SimilaritySearcher
/// behind a newline-delimited TCP protocol (see protocol.h).
///
/// One accept thread admits connections against the workspace pool; a fixed
/// crew of `max_connections` connection threads (started once, joined at
/// Stop) each serve one connection at a time with a leased workspace, so the
/// steady-state probe path keeps its zero-allocation property across
/// connections.  The searcher is immutable after Create/Load, which is what
/// makes the concurrent Search calls safe without any locking on the query
/// path.
///
/// Observability follows the repo's fold discipline: every query records
/// into a private JoinStats + obs::Recorder and is folded into the server's
/// run-level aggregates under one mutex.  All folded state is int64, so the
/// aggregates are bit-identical to an in-process SearchMany over the same
/// queries regardless of connection count or interleaving — the property
/// the differential harness (tests/serve/) asserts.  Serve-layer events
/// (connections, rejections, request errors, batch sizes) go to a separate
/// recorder so the query-path fold stays directly comparable; the /metrics
/// page renders the merge of both.
class SearchServer {
 public:
  /// `searcher` is borrowed and must outlive the server.
  SearchServer(const SimilaritySearcher* searcher, const ServeOptions& options);
  ~SearchServer();

  SearchServer(const SearchServer&) = delete;
  SearchServer& operator=(const SearchServer&) = delete;

  /// Binds the sockets and starts the accept + connection threads.  Call at
  /// most once.
  Status Start();

  /// Drains the threads and closes the sockets.  Idempotent; also run by
  /// the destructor.  In-flight queries complete; idle connections are
  /// closed at the next 100 ms poll tick.
  void Stop();

  /// The bound query port, valid after a successful Start().
  int port() const { return port_; }
  /// The bound scrape port, or -1 when the endpoint is disabled.
  int metrics_port() const;

  /// Snapshot of the folded per-query recorder (query-path metrics only;
  /// comparable to an in-process SearchMany fold over the same queries).
  obs::Recorder QueryMetrics() const;
  /// Snapshot of the serve-layer recorder (connections, rejections,
  /// request errors, batch sizes).
  obs::Recorder ServeMetrics() const;
  /// Snapshot of the folded per-query JoinStats.
  JoinStats Stats() const;

  /// Snapshots of the slow-query rings (worst first).  The verify-worlds
  /// ring's deterministic fields are client-count invariant (a pure top-N
  /// by (verify cost, content)); the latency ring is wall-clock ordered and
  /// makes no such promise.
  std::vector<obs::QueryLogRecord> SlowQueriesByVerifyWorlds() const;
  std::vector<obs::QueryLogRecord> SlowQueriesByLatency() const;
  /// The current /debug/slow page body (also served by the scrape
  /// endpoint when one is running).
  std::string SlowQueriesJson() const;

  /// Lifetime watchdog captures (0 when the watchdog is disabled).
  int64_t WatchdogCaptures() const;
  /// The current /debug/stalls page body (the "ujoin.stalls" JSON; empty
  /// ring renders as zero stalls).  Valid only while the watchdog runs.
  std::string StallsJson() const;

 private:
  /// A connection handed to a worker: the socket plus the connection
  /// ordinal (accept order, from 1) that attributes its query-log records.
  struct Mail {
    int fd = -1;
    int64_t conn = 0;
  };

  void AcceptLoop();
  void ConnectionWorker(int slot);
  void HandleConnection(int fd, int slot, int64_t conn);
  /// Folds one answered query into the run-level aggregates: stats and
  /// metrics merge, the record (when given) is offered to both slow-query
  /// rings, and the query's spans (when given) pass the trace keep gate.
  void FoldQuery(const JoinStats& query_stats, const obs::Recorder& query_rec,
                 bool error, const obs::QueryLogRecord* record,
                 const obs::SpanCollector* spans);
  /// Closes a batch of `batch_queries` requests: flushes the connection's
  /// query-log buffer, then serve-layer accounting plus a fresh /metrics
  /// snapshot.
  void FinishBatch(int64_t batch_queries, obs::QueryLogBuffer* log_buffer);
  void PushSnapshotLocked();

  const SimilaritySearcher* searcher_;
  ServeOptions options_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;

  WorkspacePool pool_;
  // Connection-thread mailboxes: mailbox_[slot] holds the connection handed
  // to worker `slot` (fd < 0 = idle).  Guarded by mailbox_mu_.
  std::mutex mailbox_mu_;
  std::condition_variable mailbox_cv_;
  std::vector<Mail> mailbox_;
  std::vector<std::thread> workers_;
  int64_t connections_accepted_ = 0;  // accept thread only

  // Run-level aggregates, folded query by query.  Guarded by agg_mu_.
  mutable std::mutex agg_mu_;
  JoinStats stats_;
  obs::Recorder query_metrics_;
  obs::Recorder serve_metrics_;
  obs::SlowQueryRing slow_by_worlds_{obs::SlowQueryRing::Key::kVerifyWorlds};
  obs::SlowQueryRing slow_by_latency_{obs::SlowQueryRing::Key::kLatencyNs};
  int64_t trace_probe_index_ = 0;  // guarded by agg_mu_

  obs::ScrapeServer scrape_;
  bool scrape_running_ = false;

  // Stall watchdog over the global flight recorder (null = disabled).  Its
  // lifetime captures fold into the serve recorder as a counter delta at
  // each snapshot push, so /metrics and ServeMetrics() stay consistent.
  std::unique_ptr<obs::Watchdog> watchdog_;
  int64_t watchdog_captures_folded_ = 0;  // guarded by agg_mu_
};

}  // namespace serve
}  // namespace ujoin

#endif  // UJOIN_SERVE_SEARCH_SERVER_H_
