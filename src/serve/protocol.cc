#include "serve/protocol.h"

#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "util/simd.h"

namespace ujoin {
namespace serve {

bool LineFramer::NextLine(std::string* line) {
  const size_t nl = buf_.find('\n', pos_);
  if (nl == std::string::npos) {
    // Compact once the consumed prefix dominates, so a long-lived
    // connection does not grow the buffer without bound.
    if (pos_ > 0 && pos_ >= buf_.size() / 2) {
      buf_.erase(0, pos_);
      pos_ = 0;
    }
    return false;
  }
  size_t end = nl;
  if (end > pos_ && buf_[end - 1] == '\r') --end;
  line->assign(buf_, pos_, end - pos_);
  pos_ = nl + 1;
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  }
  return true;
}

std::string RenderHitsResponse(int64_t seq, const std::vector<SearchHit>& hits,
                               bool inexact) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("seq");
  w.Int(seq);
  w.Key("status");
  w.String("ok");
  w.Key("inexact");
  w.Bool(inexact);
  w.Key("hits");
  w.BeginArray();
  for (const SearchHit& hit : hits) {
    w.BeginObject();
    w.Key("id");
    w.Int(hit.id);
    w.Key("probability");
    w.Double(hit.probability);
    w.Key("exact");
    w.Bool(hit.exact);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  std::string out = w.TakeString();
  out += '\n';
  return out;
}

std::string RenderErrorResponse(int64_t seq, std::string_view message) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("seq");
  w.Int(seq);
  w.Key("status");
  w.String("error");
  w.Key("error");
  w.String(message);
  w.EndObject();
  std::string out = w.TakeString();
  out += '\n';
  return out;
}

std::string RenderBusyResponse() {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("seq");
  w.Int(0);
  w.Key("status");
  w.String("busy");
  w.Key("error");
  w.String("server at connection capacity");
  w.EndObject();
  std::string out = w.TakeString();
  out += '\n';
  return out;
}

std::string BatchGuard::ViolationMessage() const {
  if (max_requests_ > 0 && requests_ > max_requests_) {
    return "batch exceeds request cap of " + std::to_string(max_requests_) +
           " queries; send a blank separator line";
  }
  return "batch exceeds byte cap of " + std::to_string(max_bytes_) +
         " bytes; send a blank separator line";
}

std::string RenderServeHealth(const SimilaritySearcher& searcher) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("status");
  w.String("ok");
  w.Key("searcher_format_version");
  w.Int(static_cast<int64_t>(kSearcherFormatVersion));
  w.Key("simd_isa");
  w.String(simd::ActiveIsaName());
  w.Key("obs");
#ifdef UJOIN_OBS_DISABLED
  w.Bool(false);
#else
  w.Bool(true);
#endif
  w.Key("metrics_schema_version");
  w.Int(obs::kMetricsSchemaVersion);
  w.Key("collection_size");
  w.Int(static_cast<int64_t>(searcher.collection().size()));
  w.Key("index_length_buckets");
  w.Int(searcher.NumIndexLengthBuckets());
  w.Key("index_segments");
  w.Int(searcher.NumIndexSegments());
  w.EndObject();
  std::string out = w.TakeString();
  out += '\n';
  return out;
}

}  // namespace serve
}  // namespace ujoin
