#ifndef UJOIN_SERVE_WORKSPACE_POOL_H_
#define UJOIN_SERVE_WORKSPACE_POOL_H_

#include <mutex>
#include <vector>

#include "index/segment_index.h"
#include "util/check.h"

namespace ujoin {
namespace serve {

/// \brief Fixed pool of QueryWorkspaces, one per admitted connection.
///
/// The workspaces are constructed once at server start; after each has
/// served a few queries its buffers are grown to steady state and the probe
/// path stops allocating — the same amortization the batch drivers get from
/// one workspace per thread, carried across connections instead of being
/// rebuilt per accept.  The pool doubles as the admission-control token
/// bucket: TryAcquire() failing is exactly the "server at capacity" signal,
/// so the number of concurrently served connections can never exceed the
/// number of workspaces.
class WorkspacePool {
 public:
  explicit WorkspacePool(int size)
      : workspaces_(static_cast<size_t>(size)),
        free_(static_cast<size_t>(size), true) {
    UJOIN_CHECK(size > 0);
  }

  WorkspacePool(const WorkspacePool&) = delete;
  WorkspacePool& operator=(const WorkspacePool&) = delete;

  int size() const { return static_cast<int>(workspaces_.size()); }

  /// Claims a free workspace slot, or returns -1 when all are leased
  /// (admission control: reject the connection).
  int TryAcquire() {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < free_.size(); ++i) {
      if (free_[i]) {
        free_[i] = false;
        return static_cast<int>(i);
      }
    }
    return -1;
  }

  /// Returns a slot claimed by TryAcquire.
  void Release(int slot) {
    std::lock_guard<std::mutex> lock(mu_);
    UJOIN_CHECK(slot >= 0 && slot < size() &&
                !free_[static_cast<size_t>(slot)]);
    free_[static_cast<size_t>(slot)] = true;
  }

  /// The workspace of a claimed slot; the caller must hold the lease.
  QueryWorkspace* workspace(int slot) {
    return &workspaces_[static_cast<size_t>(slot)];
  }

 private:
  std::mutex mu_;
  std::vector<QueryWorkspace> workspaces_;
  std::vector<bool> free_;  // guarded by mu_
};

}  // namespace serve
}  // namespace ujoin

#endif  // UJOIN_SERVE_WORKSPACE_POOL_H_
