#ifndef UJOIN_FILTER_SELECTION_H_
#define UJOIN_FILTER_SELECTION_H_

#include "filter/partition.h"

namespace ujoin {

/// \brief Inclusive range of 0-based start positions in the probe string r
/// whose substrings must be tested against a segment (empty when lo > hi).
struct SelectionWindow {
  int lo;
  int hi;

  bool empty() const { return lo > hi; }
  int size() const { return empty() ? 0 : hi - lo + 1; }
};

/// \brief Position-aware substring selection policy (Section 2.1).
///
/// Both policies are *complete*: any segment preserved by an alignment of
/// cost <= k starts within the window, so Lemmas 1–5 hold under either.
enum class SelectionPolicy {
  /// Starts within [pos(seg) - k, pos(seg) + k] (at most 2k+1 of them).
  /// This is the window the paper's worked examples use (Table 1 and the
  /// Section 3.2 example), and the default.
  kPositional,
  /// The tighter shift-based window: admissible segment shifts d satisfy
  /// |d| + |Δ - d| <= k with Δ = |r| - |s|, giving the paper's formula
  /// [pos - ⌊(k-Δ)/2⌋, pos + ⌊(k+Δ)/2⌋] with at most k+1 starts.  Fewer
  /// probes, strictly contained in kPositional's window.
  kShiftBounded,
};

/// Start positions in a probe string of length `r_len` whose length-
/// `seg.length` substrings must be tested against segment `seg` of an
/// indexed string of length `s_len`, intersected with the valid substring
/// range.  Returns an empty window when ||r_len - s_len|| > k.
SelectionWindow SelectSubstringWindow(
    int r_len, int s_len, const Segment& seg, int k,
    SelectionPolicy policy = SelectionPolicy::kPositional);

}  // namespace ujoin

#endif  // UJOIN_FILTER_SELECTION_H_
