#include "filter/partition.h"

#include <algorithm>

#include "util/check.h"

namespace ujoin {

int SegmentCount(int len, int k, int q) {
  UJOIN_CHECK(len >= 1 && k >= 0 && q >= 1);
  const int m = std::max(k + 1, len / q);
  return std::min(m, len);
}

std::vector<Segment> EvenPartition(int len, int m) {
  UJOIN_CHECK(m >= 1 && m <= len);
  const int base = len / m;
  const int longer = len % m;  // the last `longer` segments get base + 1
  std::vector<Segment> segments;
  segments.reserve(static_cast<size_t>(m));
  int start = 0;
  for (int x = 0; x < m; ++x) {
    const int length = base + (x >= m - longer ? 1 : 0);
    segments.push_back(Segment{start, length});
    start += length;
  }
  UJOIN_DCHECK(start == len);
  return segments;
}

}  // namespace ujoin
