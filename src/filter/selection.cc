#include "filter/selection.h"

#include <algorithm>
#include <cstdlib>

namespace ujoin {

SelectionWindow SelectSubstringWindow(int r_len, int s_len, const Segment& seg,
                                      int k, SelectionPolicy policy) {
  const int delta = r_len - s_len;
  if (std::abs(delta) > k) return SelectionWindow{0, -1};
  int lo, hi;
  if (policy == SelectionPolicy::kPositional) {
    lo = seg.start - k;
    hi = seg.start + k;
  } else {
    // Admissible shifts d of the segment's start satisfy |d| + |Δ - d| <= k:
    // the interval [min(0,Δ), max(0,Δ)] widened by ⌊(k - |Δ|)/2⌋ both ways.
    const int slack = (k - std::abs(delta)) / 2;
    lo = seg.start + std::min(0, delta) - slack;
    hi = seg.start + std::max(0, delta) + slack;
  }
  lo = std::max(lo, 0);
  hi = std::min(hi, r_len - seg.length);
  return SelectionWindow{lo, hi};
}

}  // namespace ujoin
