#include "filter/freq_filter.h"

#include <algorithm>
#include <cmath>

#include "filter/event_dp.h"
#include "util/check.h"
#include "util/math_util.h"
#include "util/simd.h"

namespace ujoin {

double CharFrequencySummary::ExpectedExcessOver(int a) const {
  const int u = a - certain_count;
  if (u < 0) return expected - a;  // every world has f >= certain_count > a
  if (u >= uncertain_count) return 0.0;
  return scaled_tail[static_cast<size_t>(u) + 1];
}

double CharFrequencySummary::ExpectedDeficitBelow(int a) const {
  const int u = a - certain_count;
  if (u <= 0) return 0.0;  // f >= certain_count >= a in every world
  if (u > uncertain_count) return a - expected;
  return scaled_head[static_cast<size_t>(u)];
}

FrequencySummary FrequencySummary::Build(const UncertainString& s,
                                         const Alphabet& alphabet) {
  // ujoin-effect: declares(alloc) -- summaries are built once per query (and
  // once per string at index build), not per candidate pair.
  FrequencySummary out;
  out.length_ = s.length();
  out.chars_.resize(static_cast<size_t>(alphabet.size()));
  std::vector<std::vector<double>> uncertain_probs(
      static_cast<size_t>(alphabet.size()));
  for (int i = 0; i < s.length(); ++i) {
    for (const CharProb& cp : s.AlternativesAt(i)) {
      const int idx = alphabet.IndexOf(cp.symbol);
      UJOIN_CHECK(idx >= 0);
      if (s.IsCertain(i)) {
        ++out.chars_[static_cast<size_t>(idx)].certain_count;
      } else {
        uncertain_probs[static_cast<size_t>(idx)].push_back(cp.prob);
      }
    }
  }
  for (size_t c = 0; c < out.chars_.size(); ++c) {
    CharFrequencySummary& summary = out.chars_[c];
    summary.uncertain_count = static_cast<int>(uncertain_probs[c].size());
    summary.pmf = EventCountDistribution(uncertain_probs[c]);
    const size_t n = summary.pmf.size();  // uncertain_count + 1
    summary.tail.assign(n, 0.0);
    summary.scaled_tail.assign(n, 0.0);
    summary.scaled_head.assign(n, 0.0);
    summary.tail[n - 1] = summary.pmf[n - 1];
    summary.scaled_tail[n - 1] = summary.pmf[n - 1];
    for (size_t x = n - 1; x-- > 0;) {
      summary.tail[x] = summary.tail[x + 1] + summary.pmf[x];
      summary.scaled_tail[x] = summary.scaled_tail[x + 1] + summary.tail[x];
    }
    double head = summary.pmf[0];  // Σ_{y <= x-1} pmf[y] while filling x
    for (size_t x = 1; x < n; ++x) {
      summary.scaled_head[x] = summary.scaled_head[x - 1] + head;
      head += summary.pmf[x];
    }
    // Σ y·pmf[y] via the 4-slot dot kernel.  The tail/scaled_tail/scaled_head
    // scans above stay scalar on purpose: each element depends on the
    // previous one, so they are inherently sequential; the vectorizable
    // frequency-distance math is the dot products consuming these arrays
    // (here and in ExpectedPositivePart).
    const double mean_uncertain =
        n > 1 ? simd::IotaDotSlots(summary.pmf.data() + 1, 1, n - 1) : 0.0;
    summary.expected = summary.certain_count + mean_uncertain;
  }
  return out;
}

size_t FrequencySummary::MemoryUsage() const {
  size_t bytes = sizeof(*this) + chars_.capacity() * sizeof(CharFrequencySummary);
  for (const CharFrequencySummary& c : chars_) {
    bytes += (c.pmf.capacity() + c.tail.capacity() + c.scaled_tail.capacity() +
              c.scaled_head.capacity()) *
             sizeof(double);
  }
  return bytes;
}

double ExpectedPositivePart(const CharFrequencySummary& a,
                            const CharFrequencySummary& b) {
  if (b.uncertain_count < a.uncertain_count) {
    // E[(a-b)+] = E[a] - E[b] + E[(b-a)+]; recurse over the smaller support.
    return a.expected - b.expected + ExpectedPositivePart(b, a);
  }
  // E[(a-b)+] = Σ_x Pr(f_a = certain_a + x) · E[(certain_a + x - f_b)+].
  // Split by which branch of ExpectedDeficitBelow(certain_a + x) applies
  // (u = certain_a + x - certain_b):
  //   u <= 0                 -> deficit 0, no contribution;
  //   1 <= u <= uncertain_b  -> pmf[x] · scaled_head[u], one contiguous dot
  //                             product over the S-prefix array (kernel);
  //   u > uncertain_b        -> pmf[x] · ((certain_a + x) - E[f_b]), a short
  //                             (usually empty) scalar tail.
  const int off = a.certain_count - b.certain_count;
  const int mid_lo = std::max(0, 1 - off);
  const int mid_hi = std::min(a.uncertain_count, b.uncertain_count - off);
  double total = 0.0;
  if (mid_hi >= mid_lo) {
    total = simd::DotSlots(a.pmf.data() + mid_lo,
                           b.scaled_head.data() + (mid_lo + off),
                           static_cast<size_t>(mid_hi - mid_lo) + 1);
  }
  for (int x = std::max(0, b.uncertain_count - off + 1);
       x <= a.uncertain_count; ++x) {
    const double px = a.pmf[static_cast<size_t>(x)];
    if (px == 0.0) continue;
    total += px * (static_cast<double>(a.certain_count + x) - b.expected);
  }
  return std::max(total, 0.0);
}

int FreqDistanceLowerBound(const FrequencySummary& r,
                           const FrequencySummary& s) {
  UJOIN_CHECK(r.alphabet_size() == s.alphabet_size());
  int pos = 0;  // Σ over symbols with fS^t < fR^c of (fR^c - fS^t)
  int neg = 0;  // Σ over symbols with fR^t < fS^c of (fS^c - fR^t)
  for (int c = 0; c < r.alphabet_size(); ++c) {
    const CharFrequencySummary& fr = r.ForSymbol(c);
    const CharFrequencySummary& fs = s.ForSymbol(c);
    if (fs.max_count() < fr.certain_count) {
      pos += fr.certain_count - fs.max_count();
    }
    if (fr.max_count() < fs.certain_count) {
      neg += fs.certain_count - fr.max_count();
    }
  }
  return std::max(pos, neg);
}

ExpectedFreqDistances ExpectedFreqDistance(const FrequencySummary& r,
                                           const FrequencySummary& s) {
  UJOIN_CHECK(r.alphabet_size() == s.alphabet_size());
  ExpectedFreqDistances out{0.0, 0.0};
  for (int c = 0; c < r.alphabet_size(); ++c) {
    const CharFrequencySummary& fr = r.ForSymbol(c);
    const CharFrequencySummary& fs = s.ForSymbol(c);
    if (fr.max_count() == 0 && fs.max_count() == 0) continue;
    out.pos += ExpectedPositivePart(fr, fs);
    out.neg += ExpectedPositivePart(fs, fr);
  }
  return out;
}

double FreqChebyshevBound(const FrequencySummary& r, const FrequencySummary& s,
                          int k) {
  const ExpectedFreqDistances e = ExpectedFreqDistance(r, s);
  const double len_r = r.length();
  const double len_s = s.length();
  const double len_gap = std::fabs(len_r - len_s);
  // In every world pD - nD = |R| - |S|, so fd = (pD + nD + |Δ|) / 2 and
  // A below is exactly E[fd].
  const double a = (len_gap + e.pos + e.neg) / 2.0;
  if (a <= static_cast<double>(k)) return 1.0;  // Chebyshev needs E[fd] > k
  double b2 = (len_r - len_s) * (len_r - len_s) / 2.0 +
              len_gap * (e.pos + e.neg) / 2.0 +
              std::min(len_r * e.neg, len_s * e.pos) - a * a;
  b2 = std::max(b2, 0.0);
  const double gap = a - static_cast<double>(k);
  return ClampProb(b2 / (b2 + gap * gap));
}

FreqFilterOutcome EvaluateFreqFilter(const FrequencySummary& r,
                                     const FrequencySummary& s, int k) {
  FreqFilterOutcome out;
  out.fd_lower_bound = FreqDistanceLowerBound(r, s);
  if (out.fd_lower_bound > k) {
    out.upper_bound = 0.0;
    return out;
  }
  out.upper_bound = FreqChebyshevBound(r, s, k);
  return out;
}

}  // namespace ujoin
