#ifndef UJOIN_FILTER_FREQ_FILTER_H_
#define UJOIN_FILTER_FREQ_FILTER_H_

#include <cstddef>
#include <vector>

#include "text/alphabet.h"
#include "text/uncertain_string.h"

namespace ujoin {

/// \brief Frequency statistics of one alphabet symbol c_i in an uncertain
/// string (Section 5).
///
/// The symbol occurs at `certain_count` positions with probability 1 (f^c)
/// and may occur at `uncertain_count` further positions (f^u); its total
/// count is f^c plus a Poisson-binomial variable over the uncertain
/// positions.  The four precomputed arrays are the paper's S1..S4:
///   pmf[x]         = Pr(x uncertain occurrences)                     (S1)
///   tail[x]        = Pr(at least x uncertain occurrences)            (S2)
///   scaled_tail[x] = Σ_{y>=x} (y - x + 1) · pmf[y]                   (S3)
///   scaled_head[x] = Σ_{y<=x} (x - y) · pmf[y]                       (S4)
/// All are O(f^u) space and built in O((f^u)²) time (pmf) + O(f^u) (rest).
struct CharFrequencySummary {
  int certain_count = 0;
  int uncertain_count = 0;
  double expected = 0.0;  ///< E[f] = f^c + Σ y · pmf[y]
  std::vector<double> pmf;
  std::vector<double> tail;
  std::vector<double> scaled_tail;
  std::vector<double> scaled_head;

  int max_count() const { return certain_count + uncertain_count; }

  /// E[(f - a)+]: expected surplus of this symbol's count over `a`.
  double ExpectedExcessOver(int a) const;

  /// E[(a - f)+]: expected deficit of this symbol's count below `a`.
  double ExpectedDeficitBelow(int a) const;
};

/// \brief Per-string frequency side-structure kept in the join index so the
/// frequency filter runs in O(σ · θ · (|R| + |S|)) per candidate pair.
class FrequencySummary {
 public:
  /// Builds summaries for every symbol of `alphabet` appearing in `s`.
  /// Symbols of `s` outside the alphabet are a programming error (checked).
  static FrequencySummary Build(const UncertainString& s,
                                const Alphabet& alphabet);

  int length() const { return length_; }
  int alphabet_size() const { return static_cast<int>(chars_.size()); }
  const CharFrequencySummary& ForSymbol(int index) const {
    return chars_[static_cast<size_t>(index)];
  }

  /// Approximate heap footprint, for index memory accounting.
  size_t MemoryUsage() const;

 private:
  std::vector<CharFrequencySummary> chars_;
  int length_ = 0;
};

/// E[(a - b)+] for the independent per-symbol counts described by two
/// summaries, computed in O(min(f^u_a, f^u_b)) using the identity
/// E[(a-b)+] = E[a] - E[b] + E[(b-a)+].
double ExpectedPositivePart(const CharFrequencySummary& a,
                            const CharFrequencySummary& b);

/// Lemma 6: a lower bound on fd(R, S) that holds in *every* possible world.
/// Pairs with bound > k cannot satisfy ed(R, S) <= k in any world.
int FreqDistanceLowerBound(const FrequencySummary& r,
                           const FrequencySummary& s);

/// E[pD] and E[nD] over all possible worlds (Section 5).
struct ExpectedFreqDistances {
  double pos;  ///< E[pD] = Σ_i E[(fR_i - fS_i)+]
  double neg;  ///< E[nD] = Σ_i E[(fS_i - fR_i)+]
};
ExpectedFreqDistances ExpectedFreqDistance(const FrequencySummary& r,
                                           const FrequencySummary& s);

/// Theorem 3: one-sided-Chebyshev upper bound on
/// Pr(ed(R,S) <= k) <= Pr(fd(R,S) <= k).  Returns 1 when the inequality's
/// precondition (A > k) fails, i.e. the bound never over-prunes there.
double FreqChebyshevBound(const FrequencySummary& r, const FrequencySummary& s,
                          int k);

/// \brief Combined outcome of the frequency-distance filter for a pair.
struct FreqFilterOutcome {
  int fd_lower_bound = 0;    ///< Lemma 6
  double upper_bound = 1.0;  ///< Theorem 3

  bool Survives(int k, double tau) const {
    return fd_lower_bound <= k && upper_bound > tau;
  }
};

FreqFilterOutcome EvaluateFreqFilter(const FrequencySummary& r,
                                     const FrequencySummary& s, int k);

}  // namespace ujoin

#endif  // UJOIN_FILTER_FREQ_FILTER_H_
