#include "filter/cdf_filter.h"

#include <algorithm>
#include <cstdlib>

#include "util/check.h"
#include "util/math_util.h"
#include "util/simd.h"

namespace ujoin {

namespace {

// Probability that R[x] and S[y] hold the same symbol (both 0-based); the
// alternative lists are sorted by symbol, so a linear merge suffices.
double MatchCellProbability(const UncertainString& r, int x,
                            const UncertainString& s, int y) {
  auto ra = r.AlternativesAt(x);
  auto sa = s.AlternativesAt(y);
  double p = 0.0;
  size_t a = 0, b = 0;
  while (a < ra.size() && b < sa.size()) {
    if (ra[a].symbol == sa[b].symbol) {
      p += ra[a].prob * sa[b].prob;
      ++a;
      ++b;
    } else if (ra[a].symbol < sa[b].symbol) {
      ++a;
    } else {
      ++b;
    }
  }
  return p;
}

// The banded DP stores, per row, (k+1) bound values for each of the 2k+1
// band offsets.  Cells outside the band (or the matrix) read as all-zero.
class BandRow {
 public:
  BandRow(int k) : k_(k), values_(static_cast<size_t>((2 * k + 1) * (k + 1))) {}

  // Pointer to the k+1 values at band offset d = y - x + k; nullptr if the
  // offset is outside the band.
  double* at(int d) {
    if (d < 0 || d > 2 * k_) return nullptr;
    return values_.data() + static_cast<size_t>(d) * static_cast<size_t>(k_ + 1);
  }
  const double* at(int d) const {
    if (d < 0 || d > 2 * k_) return nullptr;
    return values_.data() + static_cast<size_t>(d) * static_cast<size_t>(k_ + 1);
  }

  void Clear() { std::fill(values_.begin(), values_.end(), 0.0); }

 private:
  int k_;
  std::vector<double> values_;
};

}  // namespace

CdfBounds ComputeCdfBounds(const UncertainString& r, const UncertainString& s,
                           int k) {
  // ujoin-effect: assumes(alloc) -- the per-pair CDF verify stage allocates
  // its banded DP rows by design (see DESIGN.md: verification stages are
  // outside the allocation-free candidate-generation invariant).
  UJOIN_CHECK(k >= 0);
  CdfBounds out;
  out.lower.assign(static_cast<size_t>(k) + 1, 0.0);
  out.upper.assign(static_cast<size_t>(k) + 1, 0.0);
  const int n = r.length();
  const int m = s.length();
  if (std::abs(n - m) > k) return out;  // ed >= |n - m| > k in every world

  const int width = k + 1;  // values per cell
  static const double kZeros[64] = {0.0};
  std::vector<double> zero_cell;
  const double* zeros = kZeros;
  if (width > 64) {
    zero_cell.assign(static_cast<size_t>(width), 0.0);
    zeros = zero_cell.data();
  }

  BandRow lower_prev(k), lower_cur(k), upper_prev(k), upper_cur(k);

  // Row 0: Pr(ed(ε, S[1..y]) <= j) = [j >= y].
  for (int y = 0; y <= std::min(m, k); ++y) {
    double* lo = lower_prev.at(y - 0 + k);
    double* up = upper_prev.at(y - 0 + k);
    for (int j = 0; j <= k; ++j) {
      const double v = j >= y ? 1.0 : 0.0;
      lo[j] = v;
      up[j] = v;
    }
  }

  for (int x = 1; x <= n; ++x) {
    lower_cur.Clear();
    upper_cur.Clear();
    double row_max_upper = 0.0;
    const int y_lo = std::max(0, x - k);
    const int y_hi = std::min(m, x + k);
    for (int y = y_lo; y <= y_hi; ++y) {
      const int d = y - x + k;
      double* lo = lower_cur.at(d);
      double* up = upper_cur.at(d);
      if (y == 0) {
        // Column 0: Pr(ed(R[1..x], ε) <= j) = [j >= x].
        for (int j = 0; j <= k; ++j) {
          const double v = j >= x ? 1.0 : 0.0;
          lo[j] = v;
          up[j] = v;
        }
        continue;
      }
      // Neighbors: D1 = (x-1, y-1), D2 = (x, y-1), D3 = (x-1, y).
      const double* l1 = lower_prev.at(d);
      const double* u1 = upper_prev.at(d);
      const double* l2 = lower_cur.at(d - 1);
      const double* u2 = upper_cur.at(d - 1);
      const double* l3 = lower_prev.at(d + 1);
      const double* u3 = upper_prev.at(d + 1);
      if (l1 == nullptr) l1 = zeros;
      if (u1 == nullptr) u1 = zeros;
      if (l2 == nullptr) l2 = zeros;
      if (u2 == nullptr) u2 = zeros;
      if (l3 == nullptr) l3 = zeros;
      if (u3 == nullptr) u3 = zeros;
      // (x, y-1) exists in the current row but may be column 0 handled above;
      // it was filled (or stays zero if out of range y-1 < y_lo, i.e. the
      // band boundary, where Pr is genuinely 0 for j <= k).

      const double p1 = MatchCellProbability(r, x - 1, s, y - 1);
      const double p2 = 1.0 - p1;

      // argmin neighbor: lexicographically greatest (L[0], L[1], ..., L[k]).
      const double* lsel = l1;
      for (const double* cand : {l2, l3}) {
        for (int j = 0; j <= k; ++j) {
          if (cand[j] > lsel[j]) {
            lsel = cand;
            break;
          }
          if (cand[j] < lsel[j]) break;
        }
      }

      // The k+1 (L[j], U[j]) lanes of this cell, as one vectorized kernel
      // call (bit-identical to the scalar recurrence; see util/simd.h).
      // Safe despite lsel/u2 possibly pointing into the row being written:
      // the kernel writes band offset d and reads offset d-1, which ends
      // before the written range begins.
      const double cell_max =
          simd::CdfCellUpdate(l1, u1, u2, u3, lsel, p1, p2, width, lo, up);
      row_max_upper = std::max(row_max_upper, cell_max);
    }
    // Prefix pruning (the probabilistic analogue of the deterministic
    // early-exit): once a row past the first k has all-zero upper bounds,
    // every later row — including the final cell — is identically zero.
    if (x > k && row_max_upper == 0.0) return out;
    std::swap(lower_prev, lower_cur);
    std::swap(upper_prev, upper_cur);
  }

  const int d = m - n + k;
  const double* lo = lower_prev.at(d);
  const double* up = upper_prev.at(d);
  UJOIN_CHECK(lo != nullptr && up != nullptr);
  for (int j = 0; j <= k; ++j) {
    out.lower[static_cast<size_t>(j)] = ClampProb(lo[j]);
    out.upper[static_cast<size_t>(j)] = ClampProb(up[j]);
  }
  return out;
}

CdfDecision DecideWithCdfBounds(const CdfBounds& bounds, int k, double tau) {
  if (bounds.lower[static_cast<size_t>(k)] > tau) return CdfDecision::kAccept;
  if (bounds.upper[static_cast<size_t>(k)] <= tau) return CdfDecision::kReject;
  return CdfDecision::kUndecided;
}

CdfFilterOutcome EvaluateCdfFilter(const UncertainString& r,
                                   const UncertainString& s, int k,
                                   double tau) {
  CdfFilterOutcome out;
  out.bounds = ComputeCdfBounds(r, s, k);
  out.decision = DecideWithCdfBounds(out.bounds, k, tau);
  return out;
}

}  // namespace ujoin
