#include "filter/qgram_filter.h"

#include "filter/event_dp.h"
#include "util/math_util.h"

namespace ujoin {

double SegmentMatchProbability(const std::vector<ProbeSubstring>& probe_set,
                               const UncertainString& segment) {
  double alpha = 0.0;
  for (const ProbeSubstring& probe : probe_set) {
    alpha += probe.prob * MatchProbability(probe.text, segment);
  }
  return ClampProb(alpha);
}

Result<QGramFilterOutcome> EvaluateQGramFilter(const UncertainString& r,
                                               const UncertainString& s,
                                               const QGramOptions& options) {
  QGramFilterOutcome out;
  if (s.empty()) {
    // ed(R, S) = |R| with certainty; no segments to match.
    out.upper_bound = r.length() <= options.k ? 1.0 : 0.0;
    out.support_pruned = r.length() > options.k;
    return out;
  }
  const std::vector<Segment> segments =
      PartitionForJoin(s.length(), options.k, options.q);
  out.m = static_cast<int>(segments.size());
  out.required_segments = out.m - options.k;
  out.alphas.reserve(segments.size());
  for (const Segment& seg : segments) {
    Result<std::vector<ProbeSubstring>> probe_set =
        BuildProbeSet(r, s.length(), seg, options.k, options.probe);
    if (!probe_set.ok()) {
      // Instance blow-up: treat the segment as matched with certainty, which
      // keeps the filter conservative (it can only under-prune).
      out.alphas.push_back(1.0);
      ++out.matched_segments;
      continue;
    }
    const double alpha =
        SegmentMatchProbability(probe_set.value(), s.Substring(seg.start, seg.length));
    out.alphas.push_back(alpha);
    if (alpha > 0.0) ++out.matched_segments;
  }
  if (out.matched_segments < out.required_segments) {
    out.support_pruned = true;  // Lemma 4: Pr(ed(R,S) <= k) = 0
    out.upper_bound = 0.0;
    return out;
  }
  out.upper_bound = ProbAtLeastEvents(out.alphas, out.required_segments);
  return out;
}

}  // namespace ujoin
