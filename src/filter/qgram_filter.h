#ifndef UJOIN_FILTER_QGRAM_FILTER_H_
#define UJOIN_FILTER_QGRAM_FILTER_H_

#include <vector>

#include "filter/partition.h"
#include "filter/probe_set.h"
#include "text/uncertain_string.h"
#include "util/status.h"

namespace ujoin {

/// \brief Parameters of the q-gram filter (and of the join that hosts it).
struct QGramOptions {
  int k = 2;  ///< edit-distance threshold
  int q = 3;  ///< target segment length (m = max(k+1, |S|/q) segments)
  ProbeSetOptions probe;
};

/// \brief Everything the q-gram filter learns about a candidate pair (R, S).
struct QGramFilterOutcome {
  /// Number of segments S was partitioned into.
  int m = 0;
  /// Segments that R matches with positive probability (α_x > 0).
  int matched_segments = 0;
  /// Minimum matches required by Lemmas 2/4: m - k (<= 0 disables pruning).
  int required_segments = 0;
  /// Per-segment match probabilities α_x (Sections 3.1–3.2).
  std::vector<double> alphas;
  /// Theorem 2 upper bound on Pr(ed(R, S) <= k): the probability that at
  /// least m - k segments of S match R.
  double upper_bound = 1.0;
  /// True when the support-level necessary condition failed
  /// (matched_segments < required_segments), which prunes the pair outright.
  bool support_pruned = false;

  /// True when the pair survives given probability threshold tau.
  bool Survives(double tau) const {
    return !support_pruned && upper_bound > tau;
  }
};

/// Evaluates the q-gram filter for the pair (R, S) directly, without an
/// index: partitions S, builds the probe sets q(r, x), computes each
/// α_x = Σ_w p_r(w) · Pr(w = S^x), and runs the event DP of Theorem 2.
///
/// The indexed join (src/index) computes the same α_x values from inverted
/// lists; this pair-level form backs tests, benches and the paper's Table 1.
Result<QGramFilterOutcome> EvaluateQGramFilter(const UncertainString& r,
                                               const UncertainString& s,
                                               const QGramOptions& options);

/// α_x for one segment: probability that some substring in the probe set
/// matches the (uncertain) segment S^x.
double SegmentMatchProbability(const std::vector<ProbeSubstring>& probe_set,
                               const UncertainString& segment);

}  // namespace ujoin

#endif  // UJOIN_FILTER_QGRAM_FILTER_H_
