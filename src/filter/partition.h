#ifndef UJOIN_FILTER_PARTITION_H_
#define UJOIN_FILTER_PARTITION_H_

#include <vector>

#include "text/uncertain_string.h"

namespace ujoin {

/// \brief One disjoint segment of a partitioned string (0-based half-open
/// start, inclusive length).
struct Segment {
  int start;
  int length;

  int end() const { return start + length; }  // one past the last position

  friend bool operator==(const Segment& a, const Segment& b) {
    return a.start == b.start && a.length == b.length;
  }
};

/// Number of segments the paper's scheme uses for a string of length `len`
/// with q-gram length `q` and edit threshold `k` (Section 4):
/// m = max(k + 1, ⌊len / q⌋), clamped so every segment is non-empty
/// (m <= len).  Requires len >= 1.
int SegmentCount(int len, int k, int q);

/// Even-partition scheme (Section 4, following Pass-Join): splits a string
/// of length `len` into `m` disjoint covering segments where the *last*
/// (len mod m) segments are one character longer than the rest.  With
/// m = ⌊len/q⌋ this yields segments of length q and q+1 exactly as the paper
/// describes.  Requires 1 <= m <= len.
std::vector<Segment> EvenPartition(int len, int m);

/// Convenience: partition positions for (len, k, q) per the paper's rule.
inline std::vector<Segment> PartitionForJoin(int len, int k, int q) {
  return EvenPartition(len, SegmentCount(len, k, q));
}

}  // namespace ujoin

#endif  // UJOIN_FILTER_PARTITION_H_
