#ifndef UJOIN_FILTER_PROBE_SET_H_
#define UJOIN_FILTER_PROBE_SET_H_

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "filter/partition.h"
#include "filter/selection.h"
#include "text/uncertain_string.h"
#include "util/status.h"

namespace ujoin {

/// \brief An element of the equivalent deterministic probe set q(r, x):
/// a distinct deterministic substring together with the probability that it
/// occurs at one or more admissible start positions of R.
struct ProbeSubstring {
  std::string text;
  double prob;
};

/// \brief One occurrence of a deterministic substring inside R.
struct ProbeOccurrence {
  int start;    // 0-based start position in R
  double prob;  // Pr(w = R[start .. start+|w|-1])
};

/// \brief Knobs for probe-set construction.
struct ProbeSetOptions {
  /// Cap on the possible instances enumerated per substring window; guards
  /// against pathological uncertainty blow-up (|q(r,x)| grows like γ^(θq)).
  int64_t max_instances_per_window = 1 << 14;

  /// Substring selection window (see SelectionPolicy).
  SelectionPolicy selection = SelectionPolicy::kPositional;

  /// When true, union probabilities over overlapping occurrences are computed
  /// exactly by enumerating the worlds of the covering region instead of the
  /// paper's overlap-grouping recursion (Section 3.2 Steps 1-2).  Exact mode
  /// falls back to the recursion when the region has too many worlds.
  bool exact_union_probability = false;
};

/// Union probability that `w` occurs at at least one of `occurrences` in R,
/// computed with the paper's two-step overlap grouping (Section 3.2):
/// occurrences are grouped into maximal overlapping runs, each run's
/// probability follows the β-recursion
///   β_j = β_{j-1} + Pr(w at ps_j) - Pr(w[0..ov-1] = R[y..z]),
/// and runs combine independently as 1 - Π(1 - p(g_i)).  Occurrences must be
/// sorted by start position.
double GroupedOccurrenceProbability(const UncertainString& r,
                                    std::string_view w,
                                    std::span<const ProbeOccurrence> occurrences);

/// Exact union probability that `w` occurs at at least one of `starts` in R,
/// by enumerating the possible worlds of the covering region.  Fails with
/// ResourceExhausted when the region exceeds `max_worlds` worlds.
Result<double> ExactOccurrenceProbability(const UncertainString& r,
                                          std::string_view w,
                                          std::span<const int> starts,
                                          int64_t max_worlds = 1 << 20);

/// Builds the equivalent deterministic probe set q(r, x) for segment `seg`
/// of an indexed string of length `s_len` (Sections 3.1–3.2): enumerates the
/// instances of every admissible uncertain substring of R (position-aware
/// selection window), merges duplicate instances across start positions, and
/// assigns each distinct substring its union occurrence probability.
///
/// Entries are sorted by substring text; probabilities lie in (0, 1].
Result<std::vector<ProbeSubstring>> BuildProbeSet(
    const UncertainString& r, int s_len, const Segment& seg, int k,
    const ProbeSetOptions& options = {});

}  // namespace ujoin

#endif  // UJOIN_FILTER_PROBE_SET_H_
