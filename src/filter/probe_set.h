#ifndef UJOIN_FILTER_PROBE_SET_H_
#define UJOIN_FILTER_PROBE_SET_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "filter/partition.h"
#include "filter/selection.h"
#include "text/uncertain_string.h"
#include "util/status.h"

namespace ujoin {

/// \brief An element of the equivalent deterministic probe set q(r, x):
/// a distinct deterministic substring together with the probability that it
/// occurs at one or more admissible start positions of R.
struct ProbeSubstring {
  std::string text;
  double prob;
};

/// \brief One occurrence of a deterministic substring inside R.
struct ProbeOccurrence {
  int start;    // 0-based start position in R
  double prob;  // Pr(w = R[start .. start+|w|-1])
};

/// \brief Knobs for probe-set construction.
struct ProbeSetOptions {
  /// Cap on the possible instances enumerated per substring window; guards
  /// against pathological uncertainty blow-up (|q(r,x)| grows like γ^(θq)).
  int64_t max_instances_per_window = 1 << 14;

  /// Substring selection window (see SelectionPolicy).
  SelectionPolicy selection = SelectionPolicy::kPositional;

  /// When true, union probabilities over overlapping occurrences are computed
  /// exactly by enumerating the worlds of the covering region instead of the
  /// paper's overlap-grouping recursion (Section 3.2 Steps 1-2).  Exact mode
  /// falls back to the recursion when the region has too many worlds.
  bool exact_union_probability = false;
};

/// \brief The probe sets q(r, x) of all m segments of one length bucket in
/// one flat, allocation-free-to-read layout.
///
/// Substring texts are appended to a shared character pool; entries carry
/// (offset, length, prob) and are grouped by segment via `segment_begin`.
/// All buffers grow but never shrink, so a workspace-owned instance reaches
/// a steady state after which repeated queries allocate nothing.
class FlatProbeSets {
 public:
  struct Entry {
    uint32_t offset;  // into pool()
    uint32_t length;
    double prob;
  };

  /// Starts a fresh build for `num_segments` segments; keeps capacity.
  void Reset(int num_segments) {
    pool_.clear();
    entries_.clear();
    segment_begin_.clear();
    segment_begin_.push_back(0);
    wildcard_.assign(static_cast<size_t>(num_segments), 0);
    num_segments_ = num_segments;
  }

  /// Appends one probe substring to the segment currently under
  /// construction (between Reset/FinishSegment calls).
  void Append(std::string_view text, double prob) {
    const uint32_t offset = static_cast<uint32_t>(pool_.size());
    pool_.append(text);
    entries_.push_back(Entry{offset, static_cast<uint32_t>(text.size()), prob});
  }

  /// Discards entries appended for the current segment beyond `entries`
  /// (used to roll back a segment whose construction failed mid-way).
  void RollBackTo(size_t num_entries, size_t pool_size) {
    entries_.resize(num_entries);
    pool_.resize(pool_size);
  }

  /// Closes the current segment.  A wildcard segment matched every indexed
  /// id with α = 1 (probe-set construction blew up); its entry range is
  /// empty.  Must be called exactly num_segments times after Reset.
  void FinishSegment(bool wildcard) {
    const int x = static_cast<int>(segment_begin_.size()) - 1;
    wildcard_[static_cast<size_t>(x)] = wildcard ? 1 : 0;
    segment_begin_.push_back(static_cast<uint32_t>(entries_.size()));
  }

  int num_segments() const { return num_segments_; }
  bool is_wildcard(int x) const {
    return wildcard_[static_cast<size_t>(x)] != 0;
  }
  std::span<const Entry> segment_entries(int x) const {
    return {entries_.data() + segment_begin_[static_cast<size_t>(x)],
            entries_.data() + segment_begin_[static_cast<size_t>(x) + 1]};
  }
  std::string_view text(const Entry& e) const {
    return {pool_.data() + e.offset, e.length};
  }
  size_t num_entries() const { return entries_.size(); }
  size_t pool_size() const { return pool_.size(); }

 private:
  std::string pool_;
  std::vector<Entry> entries_;
  std::vector<uint32_t> segment_begin_;  // num_segments() + 1 once built
  std::vector<uint8_t> wildcard_;
  int num_segments_ = 0;
};

/// \brief Grow-only scratch buffers for BuildProbeSetInto.
///
/// One instance per worker thread; buffers are reused across calls so
/// steady-state probe-set construction performs no heap allocation (with
/// the default options — exact_union_probability still enumerates covering
/// regions through the allocating path).
struct ProbeSetScratch {
  struct RawOccurrence {
    uint32_t text_offset;  // into text_pool, fixed stride per call
    int start;
    double prob;
  };
  std::string text_pool;                 // enumerated instance texts
  std::vector<RawOccurrence> occurrences;
  std::vector<uint32_t> order;           // sort permutation over occurrences
  std::vector<ProbeOccurrence> group;    // one text's occurrence run
  std::vector<int> starts;               // exact-union mode only
  // Window world enumeration (odometer over uncertain positions).
  std::vector<int> uncertain_positions;
  std::vector<int> choice;
  std::string instance;
};

/// Union probability that `w` occurs at at least one of `occurrences` in R,
/// computed with the paper's two-step overlap grouping (Section 3.2):
/// occurrences are grouped into maximal overlapping runs, each run's
/// probability follows the β-recursion
///   β_j = β_{j-1} + Pr(w at ps_j) - Pr(w[0..ov-1] = R[y..z]),
/// and runs combine independently as 1 - Π(1 - p(g_i)).  Occurrences must be
/// sorted by start position.
double GroupedOccurrenceProbability(const UncertainString& r,
                                    std::string_view w,
                                    std::span<const ProbeOccurrence> occurrences);

/// Exact union probability that `w` occurs at at least one of `starts` in R,
/// by enumerating the possible worlds of the covering region.  Fails with
/// ResourceExhausted when the region exceeds `max_worlds` worlds.
Result<double> ExactOccurrenceProbability(const UncertainString& r,
                                          std::string_view w,
                                          std::span<const int> starts,
                                          int64_t max_worlds = 1 << 20);

/// Builds the equivalent deterministic probe set q(r, x) for segment `seg`
/// of an indexed string of length `s_len` (Sections 3.1–3.2): enumerates the
/// instances of every admissible uncertain substring of R (position-aware
/// selection window), merges duplicate instances across start positions, and
/// assigns each distinct substring its union occurrence probability.
///
/// Entries are sorted by substring text; probabilities lie in (0, 1].
Result<std::vector<ProbeSubstring>> BuildProbeSet(
    const UncertainString& r, int s_len, const Segment& seg, int k,
    const ProbeSetOptions& options = {});

/// Workspace variant of BuildProbeSet: appends the probe set for `seg` as
/// one finished segment of `out` (callers Reset `out` once per query and
/// call this for every segment in order).  On blow-up the segment is closed
/// as a wildcard with no entries and the error is returned; `out` stays
/// consistent either way.  Produces entries identical to BuildProbeSet —
/// same texts, same order, bit-identical probabilities.
Status BuildProbeSetInto(const UncertainString& r, int s_len,
                         const Segment& seg, int k,
                         const ProbeSetOptions& options,
                         ProbeSetScratch* scratch, FlatProbeSets* out);

}  // namespace ujoin

#endif  // UJOIN_FILTER_PROBE_SET_H_
