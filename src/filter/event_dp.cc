#include "filter/event_dp.h"

#include "util/check.h"
#include "util/math_util.h"

namespace ujoin {

std::vector<double> EventCountDistribution(std::span<const double> alphas) {
  std::vector<double> dist(alphas.size() + 1, 0.0);
  dist[0] = 1.0;
  int upto = 0;
  for (double alpha : alphas) {
    UJOIN_DCHECK(alpha >= 0.0 && alpha <= 1.0);
    ++upto;
    for (int j = upto; j >= 1; --j) {
      dist[static_cast<size_t>(j)] =
          alpha * dist[static_cast<size_t>(j - 1)] +
          (1.0 - alpha) * dist[static_cast<size_t>(j)];
    }
    dist[0] *= (1.0 - alpha);
  }
  return dist;
}

double ProbAtLeastEvents(std::span<const double> alphas, int min_count) {
  if (min_count <= 0) return 1.0;
  if (min_count > static_cast<int>(alphas.size())) return 0.0;
  const std::vector<double> dist = EventCountDistribution(alphas);
  double p = 0.0;
  for (size_t y = static_cast<size_t>(min_count); y < dist.size(); ++y) {
    p += dist[y];
  }
  return ClampProb(p);
}

}  // namespace ujoin
