#include "filter/event_dp.h"

#include "util/check.h"
#include "util/math_util.h"
#include "util/simd.h"

namespace ujoin {

namespace {

// Shared DP core: `dist` must already hold m + 1 entries set to
// (1, 0, ..., 0).  Both public entry points funnel here so the allocating
// and scratch-reusing variants compute bit-identical rows.
void RunEventDp(std::span<const double> alphas, std::vector<double>* dist) {
  int upto = 0;
  double* row = dist->data();
  for (double alpha : alphas) {
    UJOIN_DCHECK(alpha >= 0.0 && alpha <= 1.0);
    ++upto;
    // One folded event per call; the row update is a pure shift-and-blend
    // over old values, vectorized in util/simd.h with bit-identical lanes.
    simd::EventDpStep(alpha, upto, row);
  }
}

double TailSum(const std::vector<double>& dist, int min_count) {
  double p = 0.0;
  for (size_t y = static_cast<size_t>(min_count); y < dist.size(); ++y) {
    p += dist[y];
  }
  return ClampProb(p);
}

}  // namespace

std::vector<double> EventCountDistribution(std::span<const double> alphas) {
  // ujoin-effect: declares(alloc) -- convenience overload returns a fresh
  // distribution; steady-state callers use EventCountDistributionInto.
  std::vector<double> dist(alphas.size() + 1, 0.0);
  dist[0] = 1.0;
  RunEventDp(alphas, &dist);
  return dist;
}

void EventCountDistributionInto(std::span<const double> alphas,
                                std::vector<double>* dist) {
  dist->assign(alphas.size() + 1, 0.0);
  (*dist)[0] = 1.0;
  RunEventDp(alphas, dist);
}

double ProbAtLeastEvents(std::span<const double> alphas, int min_count) {
  // ujoin-effect: declares(alloc) -- the analyzer merges both overloads
  // into one node; only this convenience form allocates (the probe path in
  // segment_index.cc calls the scratch form below).
  if (min_count <= 0) return 1.0;
  if (min_count > static_cast<int>(alphas.size())) return 0.0;
  const std::vector<double> dist = EventCountDistribution(alphas);
  return TailSum(dist, min_count);
}

double ProbAtLeastEvents(std::span<const double> alphas, int min_count,
                         std::vector<double>* scratch) {
  if (min_count <= 0) return 1.0;
  if (min_count > static_cast<int>(alphas.size())) return 0.0;
  EventCountDistributionInto(alphas, scratch);
  return TailSum(*scratch, min_count);
}

}  // namespace ujoin
