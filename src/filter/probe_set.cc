#include "filter/probe_set.h"

#include <algorithm>
#include <vector>

#include "text/possible_worlds.h"
#include "util/check.h"
#include "util/math_util.h"

namespace ujoin {

double GroupedOccurrenceProbability(
    const UncertainString& r, std::string_view w,
    std::span<const ProbeOccurrence> occurrences) {
  const int q = static_cast<int>(w.size());
  double none_prob = 1.0;  // Π (1 - p(g_i)) over completed groups
  size_t i = 0;
  while (i < occurrences.size()) {
    // One maximal run of pairwise-consecutive overlapping occurrences:
    // Section 3.2's Step 1.  β accumulates the union probability by adding
    // each occurrence and taking out its intersection with the previous one
    // ("the probability of its overlap").  The intersection of occurrences
    // at ps_{j-1} and ps_j exists only when w's suffix of the overlap
    // length equals its prefix, in which case the two occurrences pin R to
    // the merged pattern: P(A_{j-1} ∩ A_j) = P(A_{j-1}) · Pr(w's tail
    // beyond the overlap matches R after it).  (The formula as printed in
    // the paper subtracts the un-scaled overlap term; it reproduces the
    // paper's worked example but turns negative on simple inputs, so we use
    // the exact pairwise intersection — see DESIGN.md.)
    double beta = occurrences[i].prob;
    size_t j = i + 1;
    for (; j < occurrences.size();
         ++j) {
      const int prev_start = occurrences[j - 1].start;
      const int y = occurrences[j].start;
      const int z = prev_start + q - 1;  // last position of the previous occ
      if (y > z) break;                  // no overlap: the run ends
      const int overlap_len = z - y + 1;
      UJOIN_DCHECK(overlap_len >= 1 && overlap_len < q);
      double intersection = 0.0;
      const std::string_view prefix =
          w.substr(0, static_cast<size_t>(overlap_len));
      const std::string_view suffix =
          w.substr(static_cast<size_t>(q - overlap_len));
      if (prefix == suffix) {
        intersection =
            occurrences[j - 1].prob *
            MatchProbabilityAt(w.substr(static_cast<size_t>(overlap_len)), r,
                               z + 1);
      }
      beta += occurrences[j].prob - intersection;
    }
    none_prob *= 1.0 - ClampProb(beta);
    i = j;
  }
  return ClampProb(1.0 - none_prob);
}

Result<double> ExactOccurrenceProbability(const UncertainString& r,
                                          std::string_view w,
                                          std::span<const int> starts,
                                          int64_t max_worlds) {
  if (starts.empty()) return 0.0;
  const int q = static_cast<int>(w.size());
  const int region_lo = starts.front();
  const int region_hi = starts.back() + q;  // exclusive
  UJOIN_CHECK(region_lo >= 0 && region_hi <= r.length());
  const UncertainString region = r.Substring(region_lo, region_hi - region_lo);
  if (region.WorldCount() > max_worlds) {
    return Status::ResourceExhausted(
        "covering region has too many possible worlds");
  }
  double p = 0.0;
  ForEachWorld(region, [&](const std::string& instance, double prob) {
    for (int start : starts) {
      const size_t offset = static_cast<size_t>(start - region_lo);
      if (std::string_view(instance).substr(offset, w.size()) == w) {
        p += prob;
        return;
      }
    }
  });
  return ClampProb(p);
}

Result<std::vector<ProbeSubstring>> BuildProbeSet(
    const UncertainString& r, int s_len, const Segment& seg, int k,
    const ProbeSetOptions& options) {
  const SelectionWindow window =
      SelectSubstringWindow(r.length(), s_len, seg, k, options.selection);
  std::vector<ProbeSubstring> out;
  if (window.empty()) return out;

  // Enumerate instances per admissible start, then sort-and-group by
  // instance text (cheaper than a node-based map for the short-lived,
  // small-entry sets this produces).  Ties sort by start, so each group's
  // occurrence list ends up ordered by position as the grouping
  // probability requires.
  struct Occurrence {
    std::string text;
    int start;
    double prob;
  };
  std::vector<Occurrence> occurrences;
  for (int start = window.lo; start <= window.hi; ++start) {
    const UncertainString sub = r.Substring(start, seg.length);
    if (sub.WorldCount() > options.max_instances_per_window) {
      return Status::ResourceExhausted(
          "substring window at position " + std::to_string(start) + " has " +
          std::to_string(sub.WorldCount()) + " instances (cap " +
          std::to_string(options.max_instances_per_window) + ")");
    }
    ForEachWorld(sub, [&](const std::string& instance, double prob) {
      occurrences.push_back(Occurrence{instance, start, prob});
    });
  }
  std::sort(occurrences.begin(), occurrences.end(),
            [](const Occurrence& a, const Occurrence& b) {
              if (a.text != b.text) return a.text < b.text;
              return a.start < b.start;
            });

  std::vector<ProbeOccurrence> group;
  for (size_t i = 0; i < occurrences.size();) {
    size_t j = i;
    group.clear();
    while (j < occurrences.size() && occurrences[j].text == occurrences[i].text) {
      group.push_back(ProbeOccurrence{occurrences[j].start,
                                      occurrences[j].prob});
      ++j;
    }
    const std::string& text = occurrences[i].text;
    double prob = -1.0;
    if (options.exact_union_probability) {
      std::vector<int> starts;
      starts.reserve(group.size());
      for (const ProbeOccurrence& occ : group) starts.push_back(occ.start);
      Result<double> exact = ExactOccurrenceProbability(
          r, text, starts, options.max_instances_per_window);
      if (exact.ok()) prob = exact.value();
    }
    if (prob < 0.0) prob = GroupedOccurrenceProbability(r, text, group);
    if (prob > 0.0) out.push_back(ProbeSubstring{text, prob});
    i = j;
  }
  return out;
}

}  // namespace ujoin
