#include "filter/probe_set.h"

#include <algorithm>
#include <vector>

#include "text/possible_worlds.h"
#include "util/check.h"
#include "util/math_util.h"

namespace ujoin {

namespace {

// World count of the window r[start .. start+len), saturated exactly like
// UncertainString::WorldCount so the blow-up check below agrees with the
// Substring-based path it replaced.
int64_t WindowWorldCount(const UncertainString& r, int start, int len) {
  int64_t count = 1;
  for (int i = 0; i < len; ++i) {
    count = SaturatingMul(count, r.NumAlternatives(start + i));
  }
  return count;
}

// Enumerates the possible worlds of r[start .. start+len) in place —
// same odometer order and same probability arithmetic as
// ForEachWorld(r.Substring(start, len)), without materializing the
// substring.  fn(instance, prob) receives a view into scratch->instance.
template <typename Fn>
void ForEachWindowWorld(const UncertainString& r, int start, int len,
                        ProbeSetScratch* scratch, const Fn& fn) {
  scratch->instance.resize(static_cast<size_t>(len));
  scratch->uncertain_positions.clear();
  for (int i = 0; i < len; ++i) {
    const int pos = start + i;
    scratch->instance[static_cast<size_t>(i)] = r.AlternativesAt(pos)[0].symbol;
    if (r.NumAlternatives(pos) > 1) scratch->uncertain_positions.push_back(pos);
  }
  scratch->choice.assign(scratch->uncertain_positions.size(), 0);
  for (;;) {
    double p = 1.0;
    for (size_t u = 0; u < scratch->uncertain_positions.size(); ++u) {
      const int pos = scratch->uncertain_positions[u];
      p *= r.AlternativesAt(pos)[static_cast<size_t>(scratch->choice[u])].prob;
    }
    fn(std::string_view(scratch->instance), p);
    bool advanced = false;
    for (size_t u = scratch->uncertain_positions.size(); u-- > 0;) {
      const int pos = scratch->uncertain_positions[u];
      const size_t at = static_cast<size_t>(pos - start);
      if (scratch->choice[u] + 1 < r.NumAlternatives(pos)) {
        ++scratch->choice[u];
        scratch->instance[at] =
            r.AlternativesAt(pos)[static_cast<size_t>(scratch->choice[u])]
                .symbol;
        advanced = true;
        break;
      }
      scratch->choice[u] = 0;
      scratch->instance[at] = r.AlternativesAt(pos)[0].symbol;
    }
    if (!advanced) break;
  }
}

}  // namespace

double GroupedOccurrenceProbability(
    const UncertainString& r, std::string_view w,
    std::span<const ProbeOccurrence> occurrences) {
  const int q = static_cast<int>(w.size());
  double none_prob = 1.0;  // Π (1 - p(g_i)) over completed groups
  size_t i = 0;
  while (i < occurrences.size()) {
    // One maximal run of pairwise-consecutive overlapping occurrences:
    // Section 3.2's Step 1.  β accumulates the union probability by adding
    // each occurrence and taking out its intersection with the previous one
    // ("the probability of its overlap").  The intersection of occurrences
    // at ps_{j-1} and ps_j exists only when w's suffix of the overlap
    // length equals its prefix, in which case the two occurrences pin R to
    // the merged pattern: P(A_{j-1} ∩ A_j) = P(A_{j-1}) · Pr(w's tail
    // beyond the overlap matches R after it).  (The formula as printed in
    // the paper subtracts the un-scaled overlap term; it reproduces the
    // paper's worked example but turns negative on simple inputs, so we use
    // the exact pairwise intersection — see DESIGN.md.)
    double beta = occurrences[i].prob;
    size_t j = i + 1;
    for (; j < occurrences.size();
         ++j) {
      const int prev_start = occurrences[j - 1].start;
      const int y = occurrences[j].start;
      const int z = prev_start + q - 1;  // last position of the previous occ
      if (y > z) break;                  // no overlap: the run ends
      const int overlap_len = z - y + 1;
      UJOIN_DCHECK(overlap_len >= 1 && overlap_len < q);
      double intersection = 0.0;
      const std::string_view prefix =
          w.substr(0, static_cast<size_t>(overlap_len));
      const std::string_view suffix =
          w.substr(static_cast<size_t>(q - overlap_len));
      if (prefix == suffix) {
        intersection =
            occurrences[j - 1].prob *
            MatchProbabilityAt(w.substr(static_cast<size_t>(overlap_len)), r,
                               z + 1);
      }
      beta += occurrences[j].prob - intersection;
    }
    none_prob *= 1.0 - ClampProb(beta);
    i = j;
  }
  return ClampProb(1.0 - none_prob);
}

Result<double> ExactOccurrenceProbability(const UncertainString& r,
                                          std::string_view w,
                                          std::span<const int> starts,
                                          int64_t max_worlds) {
  // ujoin-effect: assumes(alloc) -- exact-union fallback materializes the
  // covering region and its worlds; bounded by max_worlds, taken only when
  // the grouped estimate is unusable.
  if (starts.empty()) return 0.0;
  const int q = static_cast<int>(w.size());
  const int region_lo = starts.front();
  const int region_hi = starts.back() + q;  // exclusive
  UJOIN_CHECK(region_lo >= 0 && region_hi <= r.length());
  const UncertainString region = r.Substring(region_lo, region_hi - region_lo);
  if (region.WorldCount() > max_worlds) {
    return Status::ResourceExhausted(
        "covering region has too many possible worlds");
  }
  double p = 0.0;
  ForEachWorld(region, [&](const std::string& instance, double prob) {
    for (int start : starts) {
      const size_t offset = static_cast<size_t>(start - region_lo);
      if (std::string_view(instance).substr(offset, w.size()) == w) {
        p += prob;
        return;
      }
    }
  });
  return ClampProb(p);
}

Status BuildProbeSetInto(const UncertainString& r, int s_len,
                         const Segment& seg, int k,
                         const ProbeSetOptions& options,
                         ProbeSetScratch* scratch, FlatProbeSets* out) {
  // ujoin-effect: declares(alloc) -- the ResourceExhausted message below
  // concatenates std::to_string; that path rolls the segment back and is
  // never the steady state.
  const size_t entries_mark = out->num_entries();
  const size_t pool_mark = out->pool_size();
  const SelectionWindow window =
      SelectSubstringWindow(r.length(), s_len, seg, k, options.selection);
  if (window.empty()) {
    out->FinishSegment(/*wildcard=*/false);
    return Status::OK();
  }

  // Enumerate instances per admissible start into the scratch pool (every
  // instance has length seg.length, so the pool has a fixed stride), then
  // sort a permutation by (instance text, start) and group equal texts.
  // Ties sort by start, so each group's occurrence list ends up ordered by
  // position as the grouping probability requires.
  const size_t stride = static_cast<size_t>(seg.length);
  scratch->text_pool.clear();
  scratch->occurrences.clear();
  for (int start = window.lo; start <= window.hi; ++start) {
    if (WindowWorldCount(r, start, seg.length) >
        options.max_instances_per_window) {
      out->RollBackTo(entries_mark, pool_mark);
      out->FinishSegment(/*wildcard=*/true);
      return Status::ResourceExhausted(
          "substring window at position " + std::to_string(start) + " has " +
          std::to_string(WindowWorldCount(r, start, seg.length)) +
          " instances (cap " +
          std::to_string(options.max_instances_per_window) + ")");
    }
    ForEachWindowWorld(
        r, start, seg.length, scratch, [&](std::string_view instance,
                                           double prob) {
          const uint32_t offset =
              static_cast<uint32_t>(scratch->text_pool.size());
          scratch->text_pool.append(instance);
          scratch->occurrences.push_back(
              ProbeSetScratch::RawOccurrence{offset, start, prob});
        });
  }
  const auto text_of = [&](const ProbeSetScratch::RawOccurrence& occ) {
    return std::string_view(scratch->text_pool.data() + occ.text_offset,
                            stride);
  };
  scratch->order.resize(scratch->occurrences.size());
  for (uint32_t i = 0; i < scratch->order.size(); ++i) scratch->order[i] = i;
  std::sort(scratch->order.begin(), scratch->order.end(),
            [&](uint32_t a, uint32_t b) {
              const ProbeSetScratch::RawOccurrence& oa =
                  scratch->occurrences[a];
              const ProbeSetScratch::RawOccurrence& ob =
                  scratch->occurrences[b];
              const std::string_view ta = text_of(oa);
              const std::string_view tb = text_of(ob);
              if (ta != tb) return ta < tb;
              return oa.start < ob.start;
            });

  for (size_t i = 0; i < scratch->order.size();) {
    const std::string_view text =
        text_of(scratch->occurrences[scratch->order[i]]);
    size_t j = i;
    scratch->group.clear();
    while (j < scratch->order.size() &&
           text_of(scratch->occurrences[scratch->order[j]]) == text) {
      const ProbeSetScratch::RawOccurrence& occ =
          scratch->occurrences[scratch->order[j]];
      scratch->group.push_back(ProbeOccurrence{occ.start, occ.prob});
      ++j;
    }
    double prob = -1.0;
    if (options.exact_union_probability) {
      scratch->starts.clear();
      for (const ProbeOccurrence& occ : scratch->group) {
        scratch->starts.push_back(occ.start);
      }
      Result<double> exact = ExactOccurrenceProbability(
          r, text, scratch->starts, options.max_instances_per_window);
      if (exact.ok()) prob = exact.value();
    }
    if (prob < 0.0) prob = GroupedOccurrenceProbability(r, text, scratch->group);
    if (prob > 0.0) out->Append(text, prob);
    i = j;
  }
  out->FinishSegment(/*wildcard=*/false);
  return Status::OK();
}

Result<std::vector<ProbeSubstring>> BuildProbeSet(
    const UncertainString& r, int s_len, const Segment& seg, int k,
    const ProbeSetOptions& options) {
  FlatProbeSets flat;
  flat.Reset(1);
  ProbeSetScratch scratch;
  UJOIN_RETURN_IF_ERROR(
      BuildProbeSetInto(r, s_len, seg, k, options, &scratch, &flat));
  std::vector<ProbeSubstring> out;
  out.reserve(flat.segment_entries(0).size());
  for (const FlatProbeSets::Entry& entry : flat.segment_entries(0)) {
    out.push_back(ProbeSubstring{std::string(flat.text(entry)), entry.prob});
  }
  return out;
}

}  // namespace ujoin
