#ifndef UJOIN_FILTER_CDF_FILTER_H_
#define UJOIN_FILTER_CDF_FILTER_H_

#include <vector>

#include "text/uncertain_string.h"

namespace ujoin {

/// \brief Lower and upper bounds on the edit-distance CDF of a string pair:
/// lower[j] <= Pr(ed(R, S) <= j) <= upper[j] for j = 0..k.
struct CdfBounds {
  std::vector<double> lower;
  std::vector<double> upper;
};

/// \brief Three-way decision of the CDF filter at threshold τ.
enum class CdfDecision {
  kAccept,     ///< lower[k] > τ: the pair is a result, no verification needed
  kReject,     ///< upper[k] <= τ: the pair cannot be a result
  kUndecided,  ///< bounds straddle τ: exact verification required
};

/// Computes Theorem 4's CDF bounds with the banded dynamic program of
/// Section 6.1: each in-band cell (x, y) carries k+1 (L[j], U[j]) pairs
/// bounding Pr(ed(R[1..x], S[1..y]) <= j); cells with |x - y| > k are
/// identically zero.  O(min(|R|,|S|) · (k+1) · max(k, γ)) time.
///
/// These are the paper's corrected bounds: the bounds of Ge & Li [6] are
/// invalid when both strings are uncertain (footnote 1 of the paper).
CdfBounds ComputeCdfBounds(const UncertainString& r, const UncertainString& s,
                           int k);

/// Applies the bounds at threshold τ.
CdfDecision DecideWithCdfBounds(const CdfBounds& bounds, int k, double tau);

/// Convenience: bounds + decision in one call.
struct CdfFilterOutcome {
  CdfBounds bounds;
  CdfDecision decision;
};
CdfFilterOutcome EvaluateCdfFilter(const UncertainString& r,
                                   const UncertainString& s, int k,
                                   double tau);

}  // namespace ujoin

#endif  // UJOIN_FILTER_CDF_FILTER_H_
