#ifndef UJOIN_FILTER_EVENT_DP_H_
#define UJOIN_FILTER_EVENT_DP_H_

#include <span>
#include <vector>

namespace ujoin {

/// Distribution of the number of successes among independent Bernoulli
/// events with probabilities `alphas` (the Poisson-binomial distribution).
/// Entry y of the result is Pr(exactly y events happen); size is m + 1.
///
/// This is the dynamic program of Section 3.1:
///   Pr(i, j) = α_i · Pr(i-1, j-1) + (1 - α_i) · Pr(i-1, j),
/// run in O(m²) (one rolling row).
std::vector<double> EventCountDistribution(std::span<const double> alphas);

/// Runs the same DP into `dist` (resized to m + 1), reusing its capacity so
/// hot callers can keep a scratch row across calls instead of allocating one
/// per evaluation.  Arithmetic is identical to EventCountDistribution.
void EventCountDistributionInto(std::span<const double> alphas,
                                std::vector<double>* dist);

/// Pr(at least `min_count` of the independent events happen).  This is the
/// upper bound of Theorems 1 and 2 when called with the segment-match
/// probabilities α_x and min_count = m - k; for m = k + 1 it coincides with
/// the closed form 1 - Π(1 - α_x) of Lemmas 3 and 5.
double ProbAtLeastEvents(std::span<const double> alphas, int min_count);

/// Scratch-buffer variant for the probe path: the DP row lives in `scratch`
/// (grown as needed, never shrunk), so steady-state calls do not allocate.
/// Returns bit-identical results to the allocating overload.
double ProbAtLeastEvents(std::span<const double> alphas, int min_count,
                         std::vector<double>* scratch);

}  // namespace ujoin

#endif  // UJOIN_FILTER_EVENT_DP_H_
