#ifndef UJOIN_EED_EED_H_
#define UJOIN_EED_EED_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "text/uncertain_string.h"
#include "util/status.h"

namespace ujoin {

/// \brief The expected-edit-distance baseline of Jestes et al. [10], which
/// the paper compares against qualitatively in Section 7.9.
///
/// eed(R, S) = Σ_{r_i, s_j} p(r_i) · p(s_j) · ed(r_i, s_j): a weighted
/// average over *all* possible worlds, which is precisely why it does not
/// implement possible-world semantics at the query level — every world
/// contributes regardless of whether it satisfies the edit threshold
/// (Section 1).  Computing it exactly requires enumerating all world pairs.

/// Exact eed by world-pair enumeration; fails with ResourceExhausted when
/// |worlds(R)| x |worlds(S)| exceeds `max_world_pairs`.
Result<double> ExpectedEditDistance(const UncertainString& r,
                                    const UncertainString& s,
                                    int64_t max_world_pairs = int64_t{1}
                                                              << 26);

/// \brief Options of the eed-threshold self-join baseline.
struct EedJoinOptions {
  double threshold = 2.0;  ///< report pairs with eed(R, S) <= threshold
  /// eed >= ed of any aligned world only in expectation; the only *safe*
  /// pre-filter is the length difference: |ΔL| <= threshold (every world
  /// pair has ed >= |ΔL|, hence eed >= |ΔL|).
  int64_t max_world_pairs = int64_t{1} << 26;
};

/// \brief One pair reported by the eed join.
struct EedJoinPair {
  uint32_t lhs;
  uint32_t rhs;
  double eed;
};

struct EedJoinResult {
  std::vector<EedJoinPair> pairs;
  int64_t pairs_evaluated = 0;
  double total_time = 0.0;
};

/// Self-join under the eed measure: all pairs with eed <= threshold.  Every
/// length-compatible pair is evaluated exactly — the per-pair cost the
/// paper's Section 7.9 highlights as the baseline's weakness.
Result<EedJoinResult> EedSelfJoin(const std::vector<UncertainString>& collection,
                                  const EedJoinOptions& options);

/// \brief Inverted index over *overlapping* q-grams of every possible
/// instance, as used by the eed join of [10] — built here to reproduce the
/// Section 7.9 storage comparison (≈5× the data size, versus ≈2× for the
/// disjoint-segment index of Section 4).
class OverlappingQGramIndex {
 public:
  explicit OverlappingQGramIndex(int q) : q_(q) {}

  /// Indexes every instance of every (overlapping) window of length q,
  /// weighted by instance probability.  Windows whose instance count
  /// exceeds `max_instances_per_window` are skipped (counted, not stored).
  Status Insert(uint32_t id, const UncertainString& s,
                int64_t max_instances_per_window = 1 << 14);

  int q() const { return q_; }
  int64_t num_postings() const { return num_postings_; }
  size_t MemoryUsage() const { return memory_bytes_; }

 private:
  struct Posting {
    uint32_t id;
    int32_t position;
    double prob;
  };

  int q_;
  std::unordered_map<std::string, std::vector<Posting>> lists_;
  int64_t num_postings_ = 0;
  size_t memory_bytes_ = 0;
};

}  // namespace ujoin

#endif  // UJOIN_EED_EED_H_
