#include "eed/eed.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "text/edit_distance.h"
#include "text/possible_worlds.h"
#include "util/check.h"
#include "util/math_util.h"
#include "util/timer.h"

namespace ujoin {

Result<double> ExpectedEditDistance(const UncertainString& r,
                                    const UncertainString& s,
                                    int64_t max_world_pairs) {
  const int64_t pairs = SaturatingMul(r.WorldCount(), s.WorldCount());
  if (pairs > max_world_pairs) {
    return Status::ResourceExhausted(
        "eed over " + std::to_string(pairs) + " world pairs exceeds cap of " +
        std::to_string(max_world_pairs));
  }
  double total = 0.0;
  ForEachWorld(r, [&](const std::string& ri, double pi) {
    ForEachWorld(s, [&](const std::string& sj, double pj) {
      total += pi * pj * static_cast<double>(EditDistance(ri, sj));
    });
  });
  return total;
}

Result<EedJoinResult> EedSelfJoin(
    const std::vector<UncertainString>& collection,
    const EedJoinOptions& options) {
  EedJoinResult result;
  Timer timer;
  std::vector<uint32_t> order(collection.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return collection[a].length() < collection[b].length();
  });
  const int max_gap = static_cast<int>(std::floor(options.threshold));
  for (size_t i = 0; i < order.size(); ++i) {
    const UncertainString& r = collection[order[i]];
    for (size_t j = i; j-- > 0;) {
      const UncertainString& s = collection[order[j]];
      if (r.length() - s.length() > max_gap) break;  // eed >= |ΔL|
      ++result.pairs_evaluated;
      Result<double> eed =
          ExpectedEditDistance(r, s, options.max_world_pairs);
      if (!eed.ok()) return eed.status();
      if (eed.value() <= options.threshold) {
        uint32_t a = order[i];
        uint32_t b = order[j];
        if (a > b) std::swap(a, b);
        result.pairs.push_back(EedJoinPair{a, b, eed.value()});
      }
    }
  }
  std::sort(result.pairs.begin(), result.pairs.end(),
            [](const EedJoinPair& a, const EedJoinPair& b) {
              return a.lhs != b.lhs ? a.lhs < b.lhs : a.rhs < b.rhs;
            });
  result.total_time = timer.ElapsedSeconds();
  return result;
}

Status OverlappingQGramIndex::Insert(uint32_t id, const UncertainString& s,
                                     int64_t max_instances_per_window) {
  constexpr size_t kMapNodeOverhead = 64;
  if (s.length() < q_) return Status::OK();
  for (int pos = 0; pos + q_ <= s.length(); ++pos) {
    const UncertainString window = s.Substring(pos, q_);
    if (window.WorldCount() > max_instances_per_window) continue;
    ForEachWorld(window, [&](const std::string& instance, double prob) {
      auto [it, inserted] = lists_.try_emplace(instance);
      if (inserted) {
        memory_bytes_ += instance.size() + sizeof(std::string) +
                         sizeof(std::vector<Posting>) + kMapNodeOverhead;
      }
      it->second.push_back(Posting{id, pos, prob});
      memory_bytes_ += sizeof(Posting);
      ++num_postings_;
    });
  }
  return Status::OK();
}

}  // namespace ujoin
