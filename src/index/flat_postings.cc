#include "index/flat_postings.h"

#include <cstring>

#include "util/simd.h"

namespace ujoin {
namespace {

// Power-of-2 slot table sizing: grow when load would exceed 7/8.
constexpr size_t kInitialSlots = 16;

bool NeedsGrow(size_t entries, size_t slots) {
  return (entries + 1) * 8 > slots * 7;
}

}  // namespace

uint64_t Fingerprint64(const void* data, size_t len) {
  // FNV-1a over the bytes, then a splitmix64-style finalizer so that short
  // keys still spread across the low bits the slot mask consumes.  The
  // algorithm itself lives in the kernel layer so the batched variant
  // (simd::Fingerprint64Batch) and this single-key path share one
  // definition and can never drift.
  return simd::scalar::Fingerprint64(data, len);
}

FlatPostings::FlatPostings(int key_length, FingerprintFn fingerprint)
    : key_length_(key_length),
      fingerprint_(fingerprint != nullptr ? fingerprint : &Fingerprint64) {}

void FlatPostings::Rehash(size_t slot_count) {
  slots_.assign(slot_count, 0);
  const size_t mask = slot_count - 1;
  for (uint32_t e = 0; e < entries_.size(); ++e) {
    size_t slot = entries_[e].fingerprint & mask;
    while (slots_[slot] != 0) slot = (slot + 1) & mask;
    slots_[slot] = e + 1;
  }
}

void FlatPostings::Add(std::string_view key, Posting posting) {
  if (slots_.empty()) Rehash(kInitialSlots);
  const uint64_t fp = fingerprint_(key.data(), key.size());
  const size_t mask = slots_.size() - 1;
  size_t slot = fp & mask;
  uint32_t entry_index;
  for (;;) {
    const uint32_t stored = slots_[slot];
    if (stored == 0) {
      entry_index = static_cast<uint32_t>(entries_.size());
      entries_.push_back(Entry{fp});
      key_arena_.insert(key_arena_.end(), key.begin(), key.end());
      slots_[slot] = entry_index + 1;
      // Growing right after the insertion that crossed the load threshold
      // makes the slot count a pure function of the number of distinct
      // keys — so MemoryBytes() is identical however the same content was
      // accumulated (e.g. original build vs. sorted-order deserialization).
      if (NeedsGrow(entries_.size(), slots_.size())) {
        Rehash(slots_.size() * 2);
      }
      break;
    }
    const uint32_t candidate = stored - 1;
    if (entries_[candidate].fingerprint == fp && KeyAt(candidate) == key) {
      entry_index = candidate;
      break;
    }
    slot = (slot + 1) & mask;
  }
  Entry& entry = entries_[entry_index];
  if (entry.delta_list < 0) {
    entry.delta_list = static_cast<int32_t>(delta_lists_.size());
    delta_lists_.emplace_back();
  }
  delta_lists_[static_cast<size_t>(entry.delta_list)].push_back(posting);
  ++num_postings_;
  ++delta_postings_;
}

FlatPostings::ListView FlatPostings::Find(std::string_view key) const {
  if (slots_.empty() || key.size() != static_cast<size_t>(key_length_)) {
    return {};
  }
  return FindWithFingerprint(fingerprint_(key.data(), key.size()), key);
}

void FlatPostings::PrefetchSlot(uint64_t fp) const {
  if (slots_.empty()) return;
  simd::PrefetchRead(slots_.data() + (fp & (slots_.size() - 1)));
}

FlatPostings::ListView FlatPostings::FindWithFingerprint(
    uint64_t fp, std::string_view key) const {
  if (slots_.empty() || key.size() != static_cast<size_t>(key_length_)) {
    return {};
  }
  const size_t mask = slots_.size() - 1;
  size_t slot = fp & mask;
  for (;;) {
    const uint32_t stored = slots_[slot];
    if (stored == 0) return {};
    const uint32_t candidate = stored - 1;
    if (entries_[candidate].fingerprint == fp &&
        std::memcmp(key_arena_.data() +
                        candidate * static_cast<size_t>(key_length_),
                    key.data(), key.size()) == 0) {
      return ViewOf(entries_[candidate]);
    }
    slot = (slot + 1) & mask;
  }
}

void FlatPostings::Freeze() {
  if (delta_postings_ == 0) return;
  std::vector<uint32_t> order(entries_.size());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](uint32_t a, uint32_t b) { return KeyAt(a) < KeyAt(b); });
  std::vector<Posting> packed;
  packed.reserve(static_cast<size_t>(num_postings_));
  for (uint32_t e : order) {
    Entry& entry = entries_[e];
    const size_t begin = packed.size();
    packed.insert(packed.end(), arena_.begin() + entry.arena_begin,
                  arena_.begin() + entry.arena_begin + entry.arena_count);
    if (entry.delta_list >= 0) {
      const std::vector<Posting>& d =
          delta_lists_[static_cast<size_t>(entry.delta_list)];
      packed.insert(packed.end(), d.begin(), d.end());
      entry.delta_list = -1;
    }
    entry.arena_begin = static_cast<uint32_t>(begin);
    entry.arena_count = static_cast<uint32_t>(packed.size() - begin);
  }
  arena_ = std::move(packed);
  delta_lists_.clear();
  delta_postings_ = 0;
}

size_t FlatPostings::MemoryBytes() const {
  return key_arena_.size() + entries_.size() * sizeof(Entry) +
         slots_.size() * sizeof(uint32_t) +
         static_cast<size_t>(num_postings_) * sizeof(Posting);
}

}  // namespace ujoin
