#ifndef UJOIN_INDEX_FLAT_POSTINGS_H_
#define UJOIN_INDEX_FLAT_POSTINGS_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace ujoin {

/// \brief One posting of an inverted list L^x_l(w): an uncertain string id
/// and the probability that its x-th segment equals w.
struct Posting {
  uint32_t id;
  double prob;
};

/// 64-bit fingerprint of a byte string (FNV-1a folded through a splitmix64
/// finalizer so low bits avalanche).  Collisions are tolerated — lookups
/// always confirm with a byte comparison — but must be rare for speed.
uint64_t Fingerprint64(const void* data, size_t len);

/// Injectable fingerprint function (tests force collisions with a constant
/// function to exercise the open-addressing tail comparison).
using FingerprintFn = uint64_t (*)(const void* data, size_t len);

/// \brief One segment's inverted lists in a flat, scan-friendly layout.
///
/// All instances of one segment share a fixed length, so keys live in a
/// single character arena with stride `key_length` and lookup needs no
/// per-key size header: an open-addressing table over 64-bit fingerprints
/// selects a slot, and one `memcmp` of `key_length` bytes confirms it.
/// `Find` is heterogeneous (`string_view` in, spans out) and performs no
/// heap allocation — the map-based layout it replaces copied every probe
/// substring into a `std::string` just to hash it.
///
/// Postings live in two tiers.  `Freeze()` packs everything accumulated so
/// far into one contiguous arena, grouped by key in ascending key order (a
/// deterministic layout, independent of insertion order and hash seeds).
/// Postings added after the last freeze sit in small per-key delta lists.
/// Ids are inserted in ascending order (the index drivers guarantee this),
/// so a key's logical list is its frozen extent followed by its delta
/// extent — already id-sorted, exposed as the two spans of a ListView.
/// Steady-state probing therefore never requires a re-pack: the wave
/// self-join queries an unfrozen index (all postings in deltas), while the
/// searcher freezes once after build and probes the arena.
///
/// Thread safety: `Find` and all const accessors are safe to call
/// concurrently as long as no `Add`/`Freeze` runs at the same time.
class FlatPostings {
 public:
  /// `key_length` is the fixed instance length; `fingerprint` defaults to
  /// Fingerprint64 (override only in tests).
  explicit FlatPostings(int key_length, FingerprintFn fingerprint = nullptr);

  /// A key's postings: frozen extent (smaller ids) then delta extent.
  struct ListView {
    std::span<const Posting> base;
    std::span<const Posting> delta;

    bool empty() const { return base.empty() && delta.empty(); }
    size_t size() const { return base.size() + delta.size(); }
    const Posting& operator[](size_t i) const {
      return i < base.size() ? base[i] : delta[i - base.size()];
    }
  };

  /// Appends `posting` to `key`'s list.  |key| must equal key_length();
  /// ids must be non-decreasing per key (the caller inserts strings in
  /// ascending id order).
  void Add(std::string_view key, Posting posting);

  /// Zero-allocation lookup; both spans empty when the key is absent.
  ListView Find(std::string_view key) const;

  /// Find with the fingerprint computed up front — the batched probe path
  /// fingerprints a whole segment's keys in one kernel call
  /// (simd::Fingerprint64Batch) and then probes with the results.  `fp`
  /// must equal the instance's fingerprint function applied to `key`.
  ListView FindWithFingerprint(uint64_t fp, std::string_view key) const;

  /// Hints the load of the hash slot `fp` would probe first, so a batch of
  /// FindWithFingerprint calls overlaps its cache misses.  No-op when empty.
  void PrefetchSlot(uint64_t fp) const;

  /// True when this instance hashes with the default Fingerprint64 — the
  /// precondition for probing it with externally batched fingerprints.
  bool uses_default_fingerprint() const {
    return fingerprint_ == &Fingerprint64;
  }

  /// Packs all postings (frozen extents + deltas) into one contiguous
  /// arena grouped by key in ascending key order, then clears the deltas.
  /// Idempotent; cheap when nothing changed since the last freeze.
  void Freeze();

  /// True when every posting lives in the packed arena.
  bool frozen() const { return delta_postings_ == 0; }

  int key_length() const { return key_length_; }
  size_t num_keys() const { return entries_.size(); }
  int64_t num_postings() const { return num_postings_; }

  /// Bytes of the flat layout: key arena + hash entries + slot table +
  /// postings.  A function of content only (sizes, not capacities), so the
  /// number is deterministic and save/load round-trips preserve it.
  size_t MemoryBytes() const;

  /// Invokes fn(key, view) for every key in ascending key order — the
  /// deterministic iteration serialization relies on.  Allocates a sort
  /// index (not for use on the probe path).
  template <typename Fn>
  void ForEachSorted(Fn&& fn) const {
    std::vector<uint32_t> order(entries_.size());
    for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](uint32_t a, uint32_t b) { return KeyAt(a) < KeyAt(b); });
    for (uint32_t e : order) fn(KeyAt(e), ViewOf(entries_[e]));
  }

 private:
  struct Entry {
    uint64_t fingerprint;
    uint32_t arena_begin = 0;  // frozen extent within arena_
    uint32_t arena_count = 0;
    int32_t delta_list = -1;   // index into delta_lists_, -1 when none
  };

  std::string_view KeyAt(size_t entry_index) const {
    return {key_arena_.data() + entry_index * static_cast<size_t>(key_length_),
            static_cast<size_t>(key_length_)};
  }
  ListView ViewOf(const Entry& e) const {
    ListView view;
    view.base = {arena_.data() + e.arena_begin, e.arena_count};
    if (e.delta_list >= 0) {
      const std::vector<Posting>& d =
          delta_lists_[static_cast<size_t>(e.delta_list)];
      view.delta = {d.data(), d.size()};
    }
    return view;
  }
  void Rehash(size_t slot_count);

  int key_length_;
  FingerprintFn fingerprint_;
  std::vector<Entry> entries_;
  std::vector<char> key_arena_;    // entry i's key at [i*key_length, ...)
  std::vector<uint32_t> slots_;    // open addressing; entry index + 1, 0 empty
  std::vector<Posting> arena_;     // frozen postings, grouped by key
  std::vector<std::vector<Posting>> delta_lists_;
  int64_t num_postings_ = 0;
  int64_t delta_postings_ = 0;
};

}  // namespace ujoin

#endif  // UJOIN_INDEX_FLAT_POSTINGS_H_
