#include "index/segment_index.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "filter/event_dp.h"
#include "obs/metrics.h"
#include "obs/obs_macros.h"
#include "text/possible_worlds.h"
#include "util/check.h"
#include "util/math_util.h"
#include "util/simd.h"
#include "util/timer.h"

namespace ujoin {

namespace {

using MergedEntry = QueryWorkspace::MergedEntry;
using Cursor = QueryWorkspace::Cursor;

// Binary-heap keys pack (id, list index) into one uint64 so the min-heap
// pops equal ids in ascending list order — the same order in which the
// linear min-scan folds their contributions, keeping the two merge
// strategies bit-identical.
constexpr uint64_t HeapKey(uint32_t id, uint32_t list) {
  return (static_cast<uint64_t>(id) << 32) | list;
}
constexpr uint32_t HeapId(uint64_t key) {
  return static_cast<uint32_t>(key >> 32);
}
constexpr uint32_t HeapList(uint64_t key) {
  return static_cast<uint32_t>(key);
}

void HeapPush(std::vector<uint64_t>* heap, uint64_t key) {
  heap->push_back(key);
  std::push_heap(heap->begin(), heap->end(), std::greater<uint64_t>());
}

uint64_t HeapPop(std::vector<uint64_t>* heap) {
  std::pop_heap(heap->begin(), heap->end(), std::greater<uint64_t>());
  const uint64_t key = heap->back();
  heap->pop_back();
  return key;
}

}  // namespace

LengthBucketIndex::LengthBucketIndex(int length, int k, int q)
    : length_(length), segments_(PartitionForJoin(length, k, q)) {
  lists_.reserve(segments_.size());
  for (const Segment& seg : segments_) {
    lists_.emplace_back(seg.length);
  }
  wildcard_ids_.resize(segments_.size());
}

Status LengthBucketIndex::Insert(uint32_t id, const UncertainString& s,
                                 int64_t max_instances_per_segment) {
  if (s.length() != length_) {
    return Status::InvalidArgument("string length " +
                                   std::to_string(s.length()) +
                                   " does not match bucket length " +
                                   std::to_string(length_));
  }
  if (!ids_.empty() && ids_.back() >= id) {
    return Status::FailedPrecondition(
        "ids must be inserted in increasing order to keep lists sorted");
  }
  ids_.push_back(id);
  for (size_t x = 0; x < segments_.size(); ++x) {
    const Segment& seg = segments_[x];
    const UncertainString sub = s.Substring(seg.start, seg.length);
    if (sub.WorldCount() > max_instances_per_segment) {
      // Too many instances to enumerate: record a wildcard so queries treat
      // this segment as matched with certainty (conservative, never unsafe).
      wildcard_ids_[x].push_back(id);
      continue;
    }
    ForEachWorld(sub, [&](const std::string& instance, double prob) {
      lists_[x].Add(instance, Posting{id, prob});
    });
  }
  return Status::OK();
}

void LengthBucketIndex::Freeze() {
  for (FlatPostings& list : lists_) list.Freeze();
}

std::span<const IndexCandidate> LengthBucketIndex::QueryCandidates(
    const FlatProbeSets& probes, int k, double tau, QueryWorkspace* ws,
    IndexQueryStats* stats, uint32_t id_limit) const {
  const int m = num_segments();
  const int required = m - k;
  UJOIN_CHECK(probes.num_segments() == m);

  ws->candidates.clear();
  if (ids_.empty() || ids_.front() >= id_limit) return {};
  if (required <= 0) {
    // Lemma 5 cannot prune and Theorem 2's bound degenerates to 1: every
    // indexed string is a candidate (short strings relative to k).
    for (uint32_t id : ids_) {
      if (id >= id_limit) break;  // ids_ is sorted ascending
      ws->candidates.push_back(IndexCandidate{id, m, 1.0});
      UJOIN_OBS_HIST(ws->obs, obs::Hist::kCandidateAlphaPpm, 1000000);
    }
    if (stats != nullptr) {
      stats->ids_touched += static_cast<int64_t>(ws->candidates.size());
      stats->candidates += static_cast<int64_t>(ws->candidates.size());
    }
    return ws->candidates;
  }

  // Stage 1 (per segment): merge the posting lists of the probe substrings
  // into one id-sorted list carrying α_x = Σ_w p_r(w) · Pr(w = S^x).  The
  // per-segment lists are laid out back to back in ws->merged.
  // Per-kernel wall-time counters, accumulated locally and folded once at
  // the end (clock reads only happen with a recorder attached).
  const bool timed = UJOIN_OBS_ENABLED(ws->obs);
  int64_t fingerprint_ns = 0;
  int64_t merge_ns = 0;
  Timer kernel_timer;
  ws->merged.clear();
  ws->merged_begin.clear();
  ws->merged_begin.push_back(0);
  for (int x = 0; x < m; ++x) {
    if (probes.is_wildcard(x)) {
      // Probe-set blow-up on the query side: α_x = 1 for every indexed id.
      for (uint32_t id : ids_) {
        if (id >= id_limit) break;
        ws->merged.push_back(MergedEntry{id, 1.0});
      }
      ws->merged_begin.push_back(static_cast<uint32_t>(ws->merged.size()));
      continue;
    }
    // Gather the extents to merge: up to two per probe substring (frozen
    // arena + delta list, each id-sorted, weighted by the substring's
    // occurrence probability) plus this segment's wildcard ids at α = 1.
    //
    // The probe keys of one segment share the segment's fixed length, so
    // their fingerprints batch into one kernel call (simd::Fingerprint64Batch,
    // interleaved FNV) and their hash slots prefetch ahead of the lookups.
    // A test-injected fingerprint function (or a malformed probe length,
    // which Find answers with "absent") falls back to the per-key path.
    ws->cursors.clear();
    const std::span<const FlatProbeSets::Entry> entries =
        probes.segment_entries(x);
    const FlatPostings& seg_lists = lists_[static_cast<size_t>(x)];
    const uint32_t seg_key_len =
        static_cast<uint32_t>(seg_lists.key_length());
    bool batched = seg_lists.uses_default_fingerprint() && !entries.empty();
    for (size_t i = 0; batched && i < entries.size(); ++i) {
      batched = entries[i].length == seg_key_len;
    }
    if (batched) {
      if (timed) kernel_timer.Reset();
      ws->probe_ptrs.clear();
      for (const FlatProbeSets::Entry& probe : entries) {
        ws->probe_ptrs.push_back(probes.text(probe).data());
      }
      ws->probe_fps.resize(entries.size());
      simd::Fingerprint64Batch(ws->probe_ptrs.data(), seg_key_len,
                               entries.size(), ws->probe_fps.data());
      for (const uint64_t fp : ws->probe_fps) seg_lists.PrefetchSlot(fp);
      if (timed) fingerprint_ns += kernel_timer.ElapsedNanos();
    }
    for (size_t i = 0; i < entries.size(); ++i) {
      const FlatProbeSets::Entry& probe = entries[i];
      const FlatPostings::ListView list =
          batched ? seg_lists.FindWithFingerprint(ws->probe_fps[i],
                                                  probes.text(probe))
                  : seg_lists.Find(probes.text(probe));
      if (list.empty()) continue;
      if (!list.base.empty()) {
        simd::PrefetchRead(list.base.data());
        ws->cursors.push_back(Cursor{list.base.data(),
                                     list.base.data() + list.base.size(),
                                     probe.prob});
      }
      if (!list.delta.empty()) {
        simd::PrefetchRead(list.delta.data());
        ws->cursors.push_back(Cursor{list.delta.data(),
                                     list.delta.data() + list.delta.size(),
                                     probe.prob});
      }
      if (stats != nullptr) ++stats->lists_scanned;
    }
    if (timed) kernel_timer.Reset();
    const std::vector<uint32_t>& wildcards =
        wildcard_ids_[static_cast<size_t>(x)];
    size_t wildcard_pos = 0;
    if (static_cast<int>(ws->cursors.size()) <= ws->heap_merge_threshold) {
      // Parallel scan with "top pointers" (Section 4): repeatedly take the
      // minimum id across list heads and fold its contributions into α_x.
      for (;;) {
        uint32_t min_id = UINT32_MAX;
        for (const Cursor& c : ws->cursors) {
          if (c.pos != c.end && c.pos->id < min_id) min_id = c.pos->id;
        }
        if (wildcard_pos < wildcards.size() &&
            wildcards[wildcard_pos] < min_id) {
          min_id = wildcards[wildcard_pos];
        }
        if (min_id == UINT32_MAX) break;
        // Lists are id-sorted, so once every head is past the limit no
        // in-range id remains; stop before touching out-of-range postings.
        if (min_id >= id_limit) break;
        double alpha = 0.0;
        for (Cursor& c : ws->cursors) {
          if (c.pos != c.end && c.pos->id == min_id) {
            alpha += c.weight * c.pos->prob;
            ++c.pos;
            // Hint ~2 cache lines ahead in this posting extent (offset
            // arithmetic over uintptr_t so a hint past the end is not UB).
            simd::PrefetchReadOffset(c.pos, 8 * sizeof(Posting));
            if (stats != nullptr) ++stats->postings_scanned;
          }
        }
        if (wildcard_pos < wildcards.size() &&
            wildcards[wildcard_pos] == min_id) {
          alpha = 1.0;
          ++wildcard_pos;
        }
        ws->merged.push_back(MergedEntry{min_id, ClampProb(alpha)});
      }
    } else {
      // Many lists: a binary-heap merge turns the O(#lists) min-scan per id
      // into O(log #lists) per posting.  Ties pop in cursor order, so the
      // α fold order — and hence every bit of the result — matches the
      // linear scan above.
      ws->heap.clear();
      for (uint32_t ci = 0; ci < ws->cursors.size(); ++ci) {
        HeapPush(&ws->heap, HeapKey(ws->cursors[ci].pos->id, ci));
      }
      for (;;) {
        uint32_t min_id =
            ws->heap.empty() ? UINT32_MAX : HeapId(ws->heap.front());
        if (wildcard_pos < wildcards.size() &&
            wildcards[wildcard_pos] < min_id) {
          min_id = wildcards[wildcard_pos];
        }
        if (min_id == UINT32_MAX) break;
        if (min_id >= id_limit) break;
        double alpha = 0.0;
        while (!ws->heap.empty() && HeapId(ws->heap.front()) == min_id) {
          const uint32_t ci = HeapList(HeapPop(&ws->heap));
          Cursor& c = ws->cursors[ci];
          alpha += c.weight * c.pos->prob;
          ++c.pos;
          simd::PrefetchReadOffset(c.pos, 8 * sizeof(Posting));
          if (stats != nullptr) ++stats->postings_scanned;
          if (c.pos != c.end) HeapPush(&ws->heap, HeapKey(c.pos->id, ci));
        }
        if (wildcard_pos < wildcards.size() &&
            wildcards[wildcard_pos] == min_id) {
          alpha = 1.0;
          ++wildcard_pos;
        }
        ws->merged.push_back(MergedEntry{min_id, ClampProb(alpha)});
      }
    }
    if (timed) merge_ns += kernel_timer.ElapsedNanos();
    ws->merged_begin.push_back(static_cast<uint32_t>(ws->merged.size()));
  }

  if (UJOIN_OBS_ENABLED(ws->obs)) {
    for (int x = 0; x < m; ++x) {
      const int64_t list_length =
          static_cast<int64_t>(ws->merged_begin[static_cast<size_t>(x) + 1]) -
          static_cast<int64_t>(ws->merged_begin[static_cast<size_t>(x)]);
      UJOIN_OBS_HIST(ws->obs, obs::Hist::kMergedListLength, list_length);
    }
  }
  if (ws->explain_merged != nullptr) {
    // Explain sink, deliberately outside the obs gate: the replay narrative
    // needs per-segment merged lengths even under -DUJOIN_OBS=OFF.
    for (int x = 0; x < m; ++x) {
      ws->explain_merged->push_back(
          static_cast<int64_t>(ws->merged_begin[static_cast<size_t>(x) + 1]) -
          static_cast<int64_t>(ws->merged_begin[static_cast<size_t>(x)]));
    }
  }

  // Stage 2: scan the m merged lists in parallel, counting matched segments
  // per id (Lemma 5) and bounding Pr(ed <= k) with the event DP (Theorem 2).
  const auto merged_list = [&](int x) {
    return std::span<const MergedEntry>(
        ws->merged.data() + ws->merged_begin[static_cast<size_t>(x)],
        ws->merged.data() + ws->merged_begin[static_cast<size_t>(x) + 1]);
  };
  if (timed) kernel_timer.Reset();
  ws->tops.assign(static_cast<size_t>(m), 0);
  ws->alphas.assign(static_cast<size_t>(m), 0.0);
  const std::span<const double> alphas_span(ws->alphas.data(),
                                            static_cast<size_t>(m));
  if (m <= ws->heap_merge_threshold) {
    for (;;) {
      uint32_t min_id = UINT32_MAX;
      for (int x = 0; x < m; ++x) {
        const auto list = merged_list(x);
        if (ws->tops[static_cast<size_t>(x)] < list.size()) {
          min_id = std::min(min_id, list[ws->tops[static_cast<size_t>(x)]].id);
        }
      }
      if (min_id == UINT32_MAX) break;
      int matched = 0;
      for (int x = 0; x < m; ++x) {
        const auto list = merged_list(x);
        size_t& top = ws->tops[static_cast<size_t>(x)];
        if (top < list.size() && list[top].id == min_id) {
          ws->alphas[static_cast<size_t>(x)] = list[top].alpha;
          if (list[top].alpha > 0.0) ++matched;
          ++top;
        } else {
          ws->alphas[static_cast<size_t>(x)] = 0.0;
        }
      }
      if (stats != nullptr) ++stats->ids_touched;
      if (matched < required) {
        if (stats != nullptr) ++stats->support_pruned;
        continue;
      }
      const double bound =
          ProbAtLeastEvents(alphas_span, required, &ws->dp_scratch);
      if (bound <= tau) {
        if (stats != nullptr) ++stats->probability_pruned;
        continue;
      }
      ws->candidates.push_back(IndexCandidate{min_id, matched, bound});
      UJOIN_OBS_HIST(ws->obs, obs::Hist::kCandidateAlphaPpm,
                     std::llround(bound * 1e6));
      if (stats != nullptr) ++stats->candidates;
    }
  } else {
    // Heap variant of the same scan.  α entries not owned by the current id
    // stay 0 (reset via `touched` after each round), so the event DP sees
    // exactly the α vector the linear scan would have built.
    ws->heap.clear();
    for (int x = 0; x < m; ++x) {
      const auto list = merged_list(x);
      if (!list.empty()) {
        HeapPush(&ws->heap, HeapKey(list.front().id, static_cast<uint32_t>(x)));
      }
    }
    while (!ws->heap.empty()) {
      const uint32_t min_id = HeapId(ws->heap.front());
      int matched = 0;
      ws->touched.clear();
      while (!ws->heap.empty() && HeapId(ws->heap.front()) == min_id) {
        const int x = static_cast<int>(HeapList(HeapPop(&ws->heap)));
        const auto list = merged_list(x);
        size_t& top = ws->tops[static_cast<size_t>(x)];
        ws->alphas[static_cast<size_t>(x)] = list[top].alpha;
        ws->touched.push_back(x);
        if (list[top].alpha > 0.0) ++matched;
        ++top;
        if (top < list.size()) {
          HeapPush(&ws->heap,
                   HeapKey(list[top].id, static_cast<uint32_t>(x)));
        }
      }
      if (stats != nullptr) ++stats->ids_touched;
      if (matched >= required) {
        const double bound =
            ProbAtLeastEvents(alphas_span, required, &ws->dp_scratch);
        if (bound > tau) {
          ws->candidates.push_back(IndexCandidate{min_id, matched, bound});
          UJOIN_OBS_HIST(ws->obs, obs::Hist::kCandidateAlphaPpm,
                         std::llround(bound * 1e6));
          if (stats != nullptr) ++stats->candidates;
        } else if (stats != nullptr) {
          ++stats->probability_pruned;
        }
      } else if (stats != nullptr) {
        ++stats->support_pruned;
      }
      for (int x : ws->touched) ws->alphas[static_cast<size_t>(x)] = 0.0;
    }
  }
  if (timed) {
    UJOIN_OBS_COUNTER(ws->obs, obs::Counter::kKernelEventDpNs,
                      kernel_timer.ElapsedNanos());
    UJOIN_OBS_COUNTER(ws->obs, obs::Counter::kKernelFingerprintNs,
                      fingerprint_ns);
    UJOIN_OBS_COUNTER(ws->obs, obs::Counter::kKernelMergeNs, merge_ns);
  }
  return ws->candidates;
}

std::vector<IndexCandidate> LengthBucketIndex::QueryCandidates(
    const std::vector<std::vector<ProbeSubstring>>& probe_sets,
    const std::vector<bool>& wildcard_segments, int k, double tau,
    IndexQueryStats* stats, uint32_t id_limit) const {
  const int m = num_segments();
  UJOIN_CHECK(static_cast<int>(probe_sets.size()) == m);
  UJOIN_CHECK(static_cast<int>(wildcard_segments.size()) == m);
  QueryWorkspace ws;
  ws.probes.Reset(m);
  for (int x = 0; x < m; ++x) {
    if (!wildcard_segments[static_cast<size_t>(x)]) {
      for (const ProbeSubstring& probe : probe_sets[static_cast<size_t>(x)]) {
        ws.probes.Append(probe.text, probe.prob);
      }
    }
    ws.probes.FinishSegment(wildcard_segments[static_cast<size_t>(x)]);
  }
  const std::span<const IndexCandidate> found =
      QueryCandidates(ws.probes, k, tau, &ws, stats, id_limit);
  return std::vector<IndexCandidate>(found.begin(), found.end());
}

size_t LengthBucketIndex::MemoryUsage() const {
  size_t total = ids_.size() * sizeof(uint32_t);
  for (const FlatPostings& list : lists_) total += list.MemoryBytes();
  for (const std::vector<uint32_t>& wildcards : wildcard_ids_) {
    total += wildcards.size() * sizeof(uint32_t);
  }
  return total;
}

int64_t LengthBucketIndex::num_postings() const {
  int64_t total = 0;
  for (const FlatPostings& list : lists_) total += list.num_postings();
  return total;
}

void LengthBucketIndex::Serialize(BinaryWriter* writer) const {
  writer->WriteI32(length_);
  writer->WriteU64(ids_.size());
  for (uint32_t id : ids_) writer->WriteU32(id);
  writer->WriteU64(lists_.size());
  for (size_t x = 0; x < lists_.size(); ++x) {
    writer->WriteU64(lists_[x].num_keys());
    // Keys in ascending order: serialized bytes are a pure function of the
    // indexed content, independent of insertion order and hash layout.
    lists_[x].ForEachSorted(
        [&](std::string_view key, FlatPostings::ListView postings) {
          writer->WriteString(key);
          writer->WriteU64(postings.size());
          for (size_t p = 0; p < postings.size(); ++p) {
            writer->WriteU32(postings[p].id);
            writer->WriteDouble(postings[p].prob);
          }
        });
    writer->WriteU64(wildcard_ids_[x].size());
    for (uint32_t id : wildcard_ids_[x]) writer->WriteU32(id);
  }
}

Result<LengthBucketIndex> LengthBucketIndex::Deserialize(BinaryReader* reader,
                                                         int k, int q) {
  Result<int32_t> length = reader->ReadI32();
  if (!length.ok()) return length.status();
  if (*length < 1) {
    return Status::InvalidArgument("corrupt index: bucket length " +
                                   std::to_string(*length));
  }
  LengthBucketIndex bucket(*length, k, q);
  Result<uint64_t> num_ids = reader->ReadU64();
  if (!num_ids.ok()) return num_ids.status();
  bucket.ids_.reserve(*num_ids);
  for (uint64_t i = 0; i < *num_ids; ++i) {
    Result<uint32_t> id = reader->ReadU32();
    if (!id.ok()) return id.status();
    bucket.ids_.push_back(*id);
  }
  Result<uint64_t> num_segments = reader->ReadU64();
  if (!num_segments.ok()) return num_segments.status();
  if (*num_segments != bucket.lists_.size()) {
    return Status::InvalidArgument(
        "corrupt index: segment count mismatch (expected " +
        std::to_string(bucket.lists_.size()) + ", got " +
        std::to_string(*num_segments) + ")");
  }
  for (size_t x = 0; x < bucket.lists_.size(); ++x) {
    Result<uint64_t> num_keys = reader->ReadU64();
    if (!num_keys.ok()) return num_keys.status();
    for (uint64_t e = 0; e < *num_keys; ++e) {
      Result<std::string> key = reader->ReadString();
      if (!key.ok()) return key.status();
      if (key->size() !=
          static_cast<size_t>(bucket.segments_[x].length)) {
        return Status::InvalidArgument(
            "corrupt index: key length does not match segment length");
      }
      Result<uint64_t> num_postings = reader->ReadU64();
      if (!num_postings.ok()) return num_postings.status();
      for (uint64_t p = 0; p < *num_postings; ++p) {
        Result<uint32_t> id = reader->ReadU32();
        if (!id.ok()) return id.status();
        Result<double> prob = reader->ReadDouble();
        if (!prob.ok()) return prob.status();
        bucket.lists_[x].Add(*key, Posting{*id, *prob});
      }
    }
    Result<uint64_t> num_wildcards = reader->ReadU64();
    if (!num_wildcards.ok()) return num_wildcards.status();
    for (uint64_t w = 0; w < *num_wildcards; ++w) {
      Result<uint32_t> id = reader->ReadU32();
      if (!id.ok()) return id.status();
      bucket.wildcard_ids_[x].push_back(*id);
    }
  }
  return bucket;
}

InvertedSegmentIndex::InvertedSegmentIndex(int k, int q,
                                           ProbeSetOptions probe_options)
    : k_(k), q_(q), probe_options_(probe_options) {
  UJOIN_CHECK(k >= 0 && q >= 1);
}

Status InvertedSegmentIndex::Insert(uint32_t id, const UncertainString& s) {
  if (s.empty()) {
    return Status::InvalidArgument("cannot index an empty string");
  }
  auto it = buckets_.find(s.length());
  if (it == buckets_.end()) {
    it = buckets_.emplace(s.length(), LengthBucketIndex(s.length(), k_, q_))
             .first;
  }
  return it->second.Insert(id, s, probe_options_.max_instances_per_window);
}

void InvertedSegmentIndex::Freeze() {
  for (auto& [length, bucket] : buckets_) bucket.Freeze();
}

std::span<const IndexCandidate> InvertedSegmentIndex::Query(
    const UncertainString& r, int length, double tau, QueryWorkspace* ws,
    IndexQueryStats* stats, uint32_t id_limit) const {
  auto it = buckets_.find(length);
  if (it == buckets_.end()) return {};
  const LengthBucketIndex& bucket = it->second;
  // A bucket holding only ids past the limit behaves like an absent bucket
  // (the sequential scan would not have created it yet): skip the probe-set
  // construction entirely.
  if (bucket.ids().empty() || bucket.ids().front() >= id_limit) return {};
  const int m = bucket.num_segments();
  ws->probes.Reset(m);
  for (int x = 0; x < m; ++x) {
    // A failed build (instance blow-up) closes the segment as a wildcard;
    // the error itself carries no extra information for the query path.
    (void)BuildProbeSetInto(r, length,
                            bucket.segments()[static_cast<size_t>(x)], k_,
                            probe_options_, &ws->probe_scratch, &ws->probes);
  }
  return bucket.QueryCandidates(ws->probes, k_, tau, ws, stats, id_limit);
}

std::vector<IndexCandidate> InvertedSegmentIndex::Query(
    const UncertainString& r, int length, double tau, IndexQueryStats* stats,
    uint32_t id_limit) const {
  QueryWorkspace ws;
  const std::span<const IndexCandidate> found =
      Query(r, length, tau, &ws, stats, id_limit);
  return std::vector<IndexCandidate>(found.begin(), found.end());
}

const LengthBucketIndex* InvertedSegmentIndex::bucket(int length) const {
  auto it = buckets_.find(length);
  return it == buckets_.end() ? nullptr : &it->second;
}

size_t InvertedSegmentIndex::MemoryUsage() const {
  size_t total = 0;
  for (const auto& [length, bucket] : buckets_) total += bucket.MemoryUsage();
  return total;
}

int64_t InvertedSegmentIndex::num_postings() const {
  int64_t total = 0;
  for (const auto& [length, bucket] : buckets_) total += bucket.num_postings();
  return total;
}

void InvertedSegmentIndex::Serialize(BinaryWriter* writer) const {
  writer->WriteI32(k_);
  writer->WriteI32(q_);
  writer->WriteU64(buckets_.size());
  for (const auto& [length, bucket] : buckets_) {
    bucket.Serialize(writer);
  }
}

Result<InvertedSegmentIndex> InvertedSegmentIndex::Deserialize(
    BinaryReader* reader, ProbeSetOptions probe_options) {
  Result<int32_t> k = reader->ReadI32();
  if (!k.ok()) return k.status();
  Result<int32_t> q = reader->ReadI32();
  if (!q.ok()) return q.status();
  if (*k < 0 || *q < 1) {
    return Status::InvalidArgument("corrupt index: bad k/q header");
  }
  InvertedSegmentIndex index(*k, *q, probe_options);
  Result<uint64_t> num_buckets = reader->ReadU64();
  if (!num_buckets.ok()) return num_buckets.status();
  for (uint64_t b = 0; b < *num_buckets; ++b) {
    Result<LengthBucketIndex> bucket =
        LengthBucketIndex::Deserialize(reader, *k, *q);
    if (!bucket.ok()) return bucket.status();
    const int length = bucket->length();
    if (!index.buckets_.emplace(length, std::move(bucket).value()).second) {
      return Status::InvalidArgument("corrupt index: duplicate bucket length");
    }
  }
  return index;
}

}  // namespace ujoin
