#include "index/segment_index.h"

#include <algorithm>

#include "filter/event_dp.h"
#include "text/possible_worlds.h"
#include "util/check.h"
#include "util/math_util.h"

namespace ujoin {

namespace {

// Rough per-entry overhead of an unordered_map node with a std::string key;
// used for the peak-memory accounting of Figure 7.
constexpr size_t kMapNodeOverhead = 64;

// A merged per-segment list entry: string id and its α_x.
struct MergedEntry {
  uint32_t id;
  double alpha;
};

}  // namespace

LengthBucketIndex::LengthBucketIndex(int length, int k, int q)
    : length_(length), segments_(PartitionForJoin(length, k, q)) {
  lists_.resize(segments_.size());
  wildcard_ids_.resize(segments_.size());
}

Status LengthBucketIndex::Insert(uint32_t id, const UncertainString& s,
                                 int64_t max_instances_per_segment) {
  if (s.length() != length_) {
    return Status::InvalidArgument("string length " +
                                   std::to_string(s.length()) +
                                   " does not match bucket length " +
                                   std::to_string(length_));
  }
  if (!ids_.empty() && ids_.back() >= id) {
    return Status::FailedPrecondition(
        "ids must be inserted in increasing order to keep lists sorted");
  }
  ids_.push_back(id);
  memory_bytes_ += sizeof(uint32_t);
  for (size_t x = 0; x < segments_.size(); ++x) {
    const Segment& seg = segments_[x];
    const UncertainString sub = s.Substring(seg.start, seg.length);
    if (sub.WorldCount() > max_instances_per_segment) {
      // Too many instances to enumerate: record a wildcard so queries treat
      // this segment as matched with certainty (conservative, never unsafe).
      wildcard_ids_[x].push_back(id);
      memory_bytes_ += sizeof(uint32_t);
      continue;
    }
    ForEachWorld(sub, [&](const std::string& instance, double prob) {
      auto [it, inserted] = lists_[x].try_emplace(instance);
      if (inserted) {
        memory_bytes_ += instance.size() + sizeof(std::string) +
                         sizeof(std::vector<Posting>) + kMapNodeOverhead;
      }
      it->second.push_back(Posting{id, prob});
      memory_bytes_ += sizeof(Posting);
      ++num_postings_;
    });
  }
  return Status::OK();
}

const std::vector<Posting>* LengthBucketIndex::Find(int x,
                                                    std::string_view w) const {
  const InvertedMap& map = lists_[static_cast<size_t>(x)];
  auto it = map.find(std::string(w));
  if (it == map.end()) return nullptr;
  return &it->second;
}

std::vector<IndexCandidate> LengthBucketIndex::QueryCandidates(
    const std::vector<std::vector<ProbeSubstring>>& probe_sets,
    const std::vector<bool>& wildcard_segments, int k, double tau,
    IndexQueryStats* stats, uint32_t id_limit) const {
  const int m = num_segments();
  const int required = m - k;
  UJOIN_CHECK(static_cast<int>(probe_sets.size()) == m);
  UJOIN_CHECK(static_cast<int>(wildcard_segments.size()) == m);

  std::vector<IndexCandidate> candidates;
  if (ids_.empty() || ids_.front() >= id_limit) return candidates;
  if (required <= 0) {
    // Lemma 5 cannot prune and Theorem 2's bound degenerates to 1: every
    // indexed string is a candidate (short strings relative to k).
    candidates.reserve(ids_.size());
    for (uint32_t id : ids_) {
      if (id >= id_limit) break;  // ids_ is sorted ascending
      candidates.push_back(IndexCandidate{id, m, 1.0});
    }
    if (stats != nullptr) {
      stats->ids_touched += static_cast<int64_t>(candidates.size());
      stats->candidates += static_cast<int64_t>(candidates.size());
    }
    return candidates;
  }

  // Stage 1 (per segment): merge the posting lists of the probe substrings
  // into one id-sorted list carrying α_x = Σ_w p_r(w) · Pr(w = S^x).
  std::vector<std::vector<MergedEntry>> merged(static_cast<size_t>(m));
  for (int x = 0; x < m; ++x) {
    std::vector<MergedEntry>& out = merged[static_cast<size_t>(x)];
    if (wildcard_segments[static_cast<size_t>(x)]) {
      // Probe-set blow-up on the query side: α_x = 1 for every indexed id.
      out.reserve(ids_.size());
      for (uint32_t id : ids_) {
        if (id >= id_limit) break;
        out.push_back(MergedEntry{id, 1.0});
      }
      continue;
    }
    // Gather the lists to merge: one per probe substring (weighted by its
    // occurrence probability) plus this segment's wildcard ids at α = 1.
    struct Cursor {
      const Posting* pos;
      const Posting* end;
      double weight;
    };
    std::vector<Cursor> cursors;
    for (const ProbeSubstring& probe : probe_sets[static_cast<size_t>(x)]) {
      const std::vector<Posting>* list = Find(x, probe.text);
      if (list == nullptr) continue;
      cursors.push_back(
          Cursor{list->data(), list->data() + list->size(), probe.prob});
      if (stats != nullptr) ++stats->lists_scanned;
    }
    const std::vector<uint32_t>& wildcards =
        wildcard_ids_[static_cast<size_t>(x)];
    size_t wildcard_pos = 0;
    // Parallel scan with "top pointers" (Section 4): repeatedly take the
    // minimum id across list heads and fold its contributions into α_x.
    for (;;) {
      uint32_t min_id = UINT32_MAX;
      for (const Cursor& c : cursors) {
        if (c.pos != c.end && c.pos->id < min_id) min_id = c.pos->id;
      }
      if (wildcard_pos < wildcards.size() && wildcards[wildcard_pos] < min_id) {
        min_id = wildcards[wildcard_pos];
      }
      if (min_id == UINT32_MAX) break;
      // Lists are id-sorted, so once every head is past the limit no
      // in-range id remains; stop before touching any out-of-range posting.
      if (min_id >= id_limit) break;
      double alpha = 0.0;
      for (Cursor& c : cursors) {
        if (c.pos != c.end && c.pos->id == min_id) {
          alpha += c.weight * c.pos->prob;
          ++c.pos;
          if (stats != nullptr) ++stats->postings_scanned;
        }
      }
      if (wildcard_pos < wildcards.size() && wildcards[wildcard_pos] == min_id) {
        alpha = 1.0;
        ++wildcard_pos;
      }
      out.push_back(MergedEntry{min_id, ClampProb(alpha)});
    }
  }

  // Stage 2: scan the m merged lists in parallel, counting matched segments
  // per id (Lemma 5) and bounding Pr(ed <= k) with the event DP (Theorem 2).
  std::vector<size_t> tops(static_cast<size_t>(m), 0);
  std::vector<double> alphas(static_cast<size_t>(m));
  for (;;) {
    uint32_t min_id = UINT32_MAX;
    for (int x = 0; x < m; ++x) {
      const auto& list = merged[static_cast<size_t>(x)];
      if (tops[static_cast<size_t>(x)] < list.size()) {
        min_id = std::min(min_id, list[tops[static_cast<size_t>(x)]].id);
      }
    }
    if (min_id == UINT32_MAX) break;
    int matched = 0;
    for (int x = 0; x < m; ++x) {
      const auto& list = merged[static_cast<size_t>(x)];
      size_t& top = tops[static_cast<size_t>(x)];
      if (top < list.size() && list[top].id == min_id) {
        alphas[static_cast<size_t>(x)] = list[top].alpha;
        if (list[top].alpha > 0.0) ++matched;
        ++top;
      } else {
        alphas[static_cast<size_t>(x)] = 0.0;
      }
    }
    if (stats != nullptr) ++stats->ids_touched;
    if (matched < required) {
      if (stats != nullptr) ++stats->support_pruned;
      continue;
    }
    const double bound = ProbAtLeastEvents(alphas, required);
    if (bound <= tau) {
      if (stats != nullptr) ++stats->probability_pruned;
      continue;
    }
    candidates.push_back(IndexCandidate{min_id, matched, bound});
    if (stats != nullptr) ++stats->candidates;
  }
  return candidates;
}

size_t LengthBucketIndex::MemoryUsage() const { return memory_bytes_; }

void LengthBucketIndex::Serialize(BinaryWriter* writer) const {
  writer->WriteI32(length_);
  writer->WriteU64(ids_.size());
  for (uint32_t id : ids_) writer->WriteU32(id);
  writer->WriteU64(lists_.size());
  for (size_t x = 0; x < lists_.size(); ++x) {
    writer->WriteU64(lists_[x].size());
    for (const auto& [key, postings] : lists_[x]) {
      writer->WriteString(key);
      writer->WriteU64(postings.size());
      for (const Posting& posting : postings) {
        writer->WriteU32(posting.id);
        writer->WriteDouble(posting.prob);
      }
    }
    writer->WriteU64(wildcard_ids_[x].size());
    for (uint32_t id : wildcard_ids_[x]) writer->WriteU32(id);
  }
  writer->WriteU64(static_cast<uint64_t>(memory_bytes_));
  writer->WriteI64(num_postings_);
}

Result<LengthBucketIndex> LengthBucketIndex::Deserialize(BinaryReader* reader,
                                                         int k, int q) {
  Result<int32_t> length = reader->ReadI32();
  if (!length.ok()) return length.status();
  if (*length < 1) {
    return Status::InvalidArgument("corrupt index: bucket length " +
                                   std::to_string(*length));
  }
  LengthBucketIndex bucket(*length, k, q);
  Result<uint64_t> num_ids = reader->ReadU64();
  if (!num_ids.ok()) return num_ids.status();
  bucket.ids_.reserve(*num_ids);
  for (uint64_t i = 0; i < *num_ids; ++i) {
    Result<uint32_t> id = reader->ReadU32();
    if (!id.ok()) return id.status();
    bucket.ids_.push_back(*id);
  }
  Result<uint64_t> num_segments = reader->ReadU64();
  if (!num_segments.ok()) return num_segments.status();
  if (*num_segments != bucket.lists_.size()) {
    return Status::InvalidArgument(
        "corrupt index: segment count mismatch (expected " +
        std::to_string(bucket.lists_.size()) + ", got " +
        std::to_string(*num_segments) + ")");
  }
  for (size_t x = 0; x < bucket.lists_.size(); ++x) {
    Result<uint64_t> num_keys = reader->ReadU64();
    if (!num_keys.ok()) return num_keys.status();
    for (uint64_t e = 0; e < *num_keys; ++e) {
      Result<std::string> key = reader->ReadString();
      if (!key.ok()) return key.status();
      Result<uint64_t> num_postings = reader->ReadU64();
      if (!num_postings.ok()) return num_postings.status();
      std::vector<Posting>& postings = bucket.lists_[x][*key];
      postings.reserve(*num_postings);
      for (uint64_t p = 0; p < *num_postings; ++p) {
        Result<uint32_t> id = reader->ReadU32();
        if (!id.ok()) return id.status();
        Result<double> prob = reader->ReadDouble();
        if (!prob.ok()) return prob.status();
        postings.push_back(Posting{*id, *prob});
      }
    }
    Result<uint64_t> num_wildcards = reader->ReadU64();
    if (!num_wildcards.ok()) return num_wildcards.status();
    for (uint64_t w = 0; w < *num_wildcards; ++w) {
      Result<uint32_t> id = reader->ReadU32();
      if (!id.ok()) return id.status();
      bucket.wildcard_ids_[x].push_back(*id);
    }
  }
  Result<uint64_t> memory = reader->ReadU64();
  if (!memory.ok()) return memory.status();
  bucket.memory_bytes_ = *memory;
  Result<int64_t> postings = reader->ReadI64();
  if (!postings.ok()) return postings.status();
  bucket.num_postings_ = *postings;
  return bucket;
}

InvertedSegmentIndex::InvertedSegmentIndex(int k, int q,
                                           ProbeSetOptions probe_options)
    : k_(k), q_(q), probe_options_(probe_options) {
  UJOIN_CHECK(k >= 0 && q >= 1);
}

Status InvertedSegmentIndex::Insert(uint32_t id, const UncertainString& s) {
  if (s.empty()) {
    return Status::InvalidArgument("cannot index an empty string");
  }
  auto it = buckets_.find(s.length());
  if (it == buckets_.end()) {
    it = buckets_.emplace(s.length(), LengthBucketIndex(s.length(), k_, q_))
             .first;
  }
  return it->second.Insert(id, s, probe_options_.max_instances_per_window);
}

std::vector<IndexCandidate> InvertedSegmentIndex::Query(
    const UncertainString& r, int length, double tau, IndexQueryStats* stats,
    uint32_t id_limit) const {
  auto it = buckets_.find(length);
  if (it == buckets_.end()) return {};
  const LengthBucketIndex& bucket = it->second;
  // A bucket holding only ids past the limit behaves like an absent bucket
  // (the sequential scan would not have created it yet): skip the probe-set
  // construction entirely.
  if (bucket.ids().empty() || bucket.ids().front() >= id_limit) return {};
  const int m = bucket.num_segments();
  std::vector<std::vector<ProbeSubstring>> probe_sets(
      static_cast<size_t>(m));
  std::vector<bool> wildcard(static_cast<size_t>(m), false);
  for (int x = 0; x < m; ++x) {
    Result<std::vector<ProbeSubstring>> probes = BuildProbeSet(
        r, length, bucket.segments()[static_cast<size_t>(x)], k_,
        probe_options_);
    if (probes.ok()) {
      probe_sets[static_cast<size_t>(x)] = std::move(probes).value();
    } else {
      wildcard[static_cast<size_t>(x)] = true;
    }
  }
  return bucket.QueryCandidates(probe_sets, wildcard, k_, tau, stats,
                                id_limit);
}

const LengthBucketIndex* InvertedSegmentIndex::bucket(int length) const {
  auto it = buckets_.find(length);
  return it == buckets_.end() ? nullptr : &it->second;
}

size_t InvertedSegmentIndex::MemoryUsage() const {
  size_t total = 0;
  for (const auto& [length, bucket] : buckets_) total += bucket.MemoryUsage();
  return total;
}

int64_t InvertedSegmentIndex::num_postings() const {
  int64_t total = 0;
  for (const auto& [length, bucket] : buckets_) total += bucket.num_postings();
  return total;
}

void InvertedSegmentIndex::Serialize(BinaryWriter* writer) const {
  writer->WriteI32(k_);
  writer->WriteI32(q_);
  writer->WriteU64(buckets_.size());
  for (const auto& [length, bucket] : buckets_) {
    bucket.Serialize(writer);
  }
}

Result<InvertedSegmentIndex> InvertedSegmentIndex::Deserialize(
    BinaryReader* reader, ProbeSetOptions probe_options) {
  Result<int32_t> k = reader->ReadI32();
  if (!k.ok()) return k.status();
  Result<int32_t> q = reader->ReadI32();
  if (!q.ok()) return q.status();
  if (*k < 0 || *q < 1) {
    return Status::InvalidArgument("corrupt index: bad k/q header");
  }
  InvertedSegmentIndex index(*k, *q, probe_options);
  Result<uint64_t> num_buckets = reader->ReadU64();
  if (!num_buckets.ok()) return num_buckets.status();
  for (uint64_t b = 0; b < *num_buckets; ++b) {
    Result<LengthBucketIndex> bucket =
        LengthBucketIndex::Deserialize(reader, *k, *q);
    if (!bucket.ok()) return bucket.status();
    const int length = bucket->length();
    if (!index.buckets_.emplace(length, std::move(bucket).value()).second) {
      return Status::InvalidArgument("corrupt index: duplicate bucket length");
    }
  }
  return index;
}

}  // namespace ujoin
