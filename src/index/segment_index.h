#ifndef UJOIN_INDEX_SEGMENT_INDEX_H_
#define UJOIN_INDEX_SEGMENT_INDEX_H_

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "filter/partition.h"
#include "filter/probe_set.h"
#include "index/flat_postings.h"
#include "text/uncertain_string.h"
#include "util/serde.h"
#include "util/status.h"

namespace ujoin {

namespace obs {
class Recorder;
}  // namespace obs

/// \brief Candidate produced by an index query: a string id together with
/// the q-gram filter evidence gathered during the merge scan.
struct IndexCandidate {
  uint32_t id;
  int matched_segments;
  double upper_bound;  ///< Theorem 2 bound on Pr(ed(R, S_id) <= k)
};

/// \brief Work counters for one index query.
struct IndexQueryStats {
  int64_t lists_scanned = 0;
  int64_t postings_scanned = 0;
  int64_t ids_touched = 0;            ///< ids appearing in >= 1 merged list
  int64_t support_pruned = 0;         ///< dropped by Lemma 5's count check
  int64_t probability_pruned = 0;     ///< dropped by Theorem 2's bound
  int64_t candidates = 0;             ///< survivors returned to the caller

  /// Accumulates another query's counters (used to fold thread-local stats
  /// into a run total).
  void Merge(const IndexQueryStats& other) {
    lists_scanned += other.lists_scanned;
    postings_scanned += other.postings_scanned;
    ids_touched += other.ids_touched;
    support_pruned += other.support_pruned;
    probability_pruned += other.probability_pruned;
    candidates += other.candidates;
  }
};

/// \brief Reusable per-thread scratch for the index query path.
///
/// Every buffer the merge scan needs — probe sets, merge cursors, heap,
/// merged lists, top pointers, α values, the event-DP row, and the output
/// candidates — lives here and grows to a steady state, after which
/// repeated queries through the same workspace perform no heap allocation.
/// Ownership rule: one workspace per worker thread, created by the driver
/// (self-join, cross join, SearchMany) next to that thread's other private
/// state; a workspace must never be shared by concurrent queries.  Results
/// are independent of the workspace's history: querying through a reused
/// workspace is bit-identical to querying through a fresh one.
struct QueryWorkspace {
  /// Merges with more than this many input lists use a binary-heap merge
  /// instead of the linear min-scan; results are identical either way (the
  /// heap pops ties in list order, matching the linear fold order).
  int heap_merge_threshold = 8;

  /// A merged per-segment list entry: string id and its α_x.
  struct MergedEntry {
    uint32_t id;
    double alpha;
  };
  /// A scan head into one id-sorted posting extent.
  struct Cursor {
    const Posting* pos;
    const Posting* end;
    double weight;
  };

  // Buffers below are owned by the query path; callers should treat them as
  // opaque except `candidates` (the storage Query's return span points
  // into) and `candidate_ids` (free driver-level scratch).
  FlatProbeSets probes;
  ProbeSetScratch probe_scratch;
  std::vector<const char*> probe_ptrs;   // batched-fingerprint key pointers
  std::vector<uint64_t> probe_fps;       // batched fingerprints, per segment
  std::vector<Cursor> cursors;
  std::vector<uint64_t> heap;            // (id << 32 | list) min-heap keys
  std::vector<MergedEntry> merged;       // all segments' merged lists, flat
  std::vector<uint32_t> merged_begin;    // m + 1 offsets into `merged`
  std::vector<size_t> tops;
  std::vector<double> alphas;
  std::vector<int> touched;              // alphas set this round (heap path)
  std::vector<double> dp_scratch;        // event-DP row
  std::vector<IndexCandidate> candidates;
  std::vector<uint32_t> candidate_ids;

  /// Observability sink for the probe path.  When non-null, QueryCandidates
  /// records merged-list lengths and candidate α upper bounds into it (see
  /// obs/metrics.h).  Drivers point this at the current rank's recorder
  /// before probing; the recorder's storage is fixed-size and inline, so
  /// recording keeps the steady-state query path allocation-free.  Null
  /// (the default) disables recording at the cost of one pointer test.
  obs::Recorder* obs = nullptr;

  /// Explain sink: when non-null, QueryCandidates appends each segment's
  /// merged-list length (m values per probed bucket).  Independent of `obs`
  /// so `ujoin_cli explain` works under -DUJOIN_OBS=OFF.  Only the explain
  /// replay sets this — it allocates, so the serve path leaves it null.
  std::vector<int64_t>* explain_merged = nullptr;
};

/// \brief Inverted index over the x-th segments of all indexed strings of
/// one length l (the paper's L^x_l lists, Section 4).
///
/// Each indexed string is partitioned with the even-partition scheme; every
/// possible instance w of its x-th segment is inserted into L^x_l(w) with
/// the instance probability.  A string id appears at most once per list and
/// lists are sorted by id (ids must be inserted in increasing order, which
/// the self-join driver guarantees by visiting strings in length order).
/// Lists live in per-segment FlatPostings (arena + fingerprint hash); see
/// flat_postings.h for the freeze/delta layout and DESIGN.md for the
/// layout's rationale.
class LengthBucketIndex {
 public:
  LengthBucketIndex(int length, int k, int q);

  /// Indexes string `id`.  Segments whose instance count exceeds
  /// `max_instances_per_segment` are recorded as wildcards: they count as
  /// matched with α = 1 during queries, which keeps pruning conservative.
  Status Insert(uint32_t id, const UncertainString& s,
                int64_t max_instances_per_segment = 1 << 14);

  int length() const { return length_; }
  int num_segments() const { return static_cast<int>(segments_.size()); }
  const std::vector<Segment>& segments() const { return segments_; }
  const std::vector<uint32_t>& ids() const { return ids_; }

  /// Posting list for instance `w` of segment `x`; empty when absent.
  /// Allocation-free; the view stays valid until the next Insert/Freeze.
  FlatPostings::ListView Find(int x, std::string_view w) const {
    return lists_[static_cast<size_t>(x)].Find(w);
  }

  /// Packs every segment's postings into its contiguous arena (see
  /// FlatPostings::Freeze).  Queries work before and after freezing;
  /// read-mostly users (the searcher) freeze once after the build.
  void Freeze();

  /// Runs the paper's two-level merge scan: for every segment x the lists
  /// L^x_l(w), w ∈ probes' segment x, are merged by id into (id, α_x)
  /// pairs; the per-segment merged lists are then scanned in parallel to
  /// count matched segments (Lemma 5) and evaluate Theorem 2's bound.
  /// Pairs with bound <= tau are pruned.  A wildcard segment of `probes`
  /// (probe set that could not be built due to instance blow-up) counts as
  /// matched with α = 1 for every id.
  ///
  /// Only indexed ids < `id_limit` are considered; higher ids are skipped
  /// before any counter is touched, so results and stats are exactly those
  /// of an index that stops at `id_limit`.  The wave-parallel self-join uses
  /// this to probe an index that already contains the probe's own wave.
  ///
  /// The returned span points into `workspace->candidates` and is valid
  /// until the workspace's next use.  Thread safety: const and safe to call
  /// concurrently from multiple threads with distinct workspaces, as long
  /// as no Insert/Freeze runs at the same time.
  std::span<const IndexCandidate> QueryCandidates(
      const FlatProbeSets& probes, int k, double tau,
      QueryWorkspace* workspace, IndexQueryStats* stats = nullptr,
      uint32_t id_limit = UINT32_MAX) const;

  /// Convenience overload taking the probe sets in their materialized form;
  /// allocates a workspace per call (tests and one-off callers only).
  std::vector<IndexCandidate> QueryCandidates(
      const std::vector<std::vector<ProbeSubstring>>& probe_sets,
      const std::vector<bool>& wildcard_segments, int k, double tau,
      IndexQueryStats* stats = nullptr,
      uint32_t id_limit = UINT32_MAX) const;

  /// Heap footprint of the flat inverted lists, in bytes.  Computed from
  /// content only, so it is deterministic and survives save/load intact.
  size_t MemoryUsage() const;

  /// Total postings across all inverted lists.
  int64_t num_postings() const;

  /// Appends this bucket to `writer` / restores it (k and q must match the
  /// values the bucket was built with; the partition is recomputed).
  /// Keys are emitted in sorted order, so serialized bytes are a pure
  /// function of the indexed content.
  void Serialize(BinaryWriter* writer) const;
  static Result<LengthBucketIndex> Deserialize(BinaryReader* reader, int k,
                                               int q);

 private:
  int length_;
  std::vector<Segment> segments_;
  std::vector<FlatPostings> lists_;                   // one per segment x
  std::vector<std::vector<uint32_t>> wildcard_ids_;   // per segment, sorted
  std::vector<uint32_t> ids_;                         // all indexed ids
};

/// \brief The full index: one LengthBucketIndex per string length, plus the
/// probe-set plumbing to query it (Section 4).
///
/// Usage in a join: strings are visited in ascending length order; for the
/// current string R the buckets of length |R|-k .. |R| are queried, then R
/// is inserted into its own bucket, so every pair is enumerated exactly
/// once.  The wave-parallel driver instead inserts a whole wave up front and
/// restricts each probe with `id_limit`, which yields the same pair set.
///
/// Thread safety: the query path (Query, bucket, MemoryUsage, Serialize) is
/// const and touches no mutable state, so any number of threads may query
/// concurrently — each with its own QueryWorkspace — provided the index is
/// not being mutated (no concurrent Insert/Freeze).  Drivers must freeze
/// the index for the duration of a concurrent probe phase.
class InvertedSegmentIndex {
 public:
  InvertedSegmentIndex(int k, int q, ProbeSetOptions probe_options = {});

  /// Indexes `s` under `id`; ids must be inserted in increasing order.
  /// Not thread-safe: must never run concurrently with Query or Insert.
  Status Insert(uint32_t id, const UncertainString& s);

  /// Packs every bucket's postings into contiguous arenas.  Call once after
  /// the last Insert when the index will be probed many times (the searcher
  /// does); the incremental self-join skips this and probes delta lists.
  void Freeze();

  /// Candidates among indexed strings of length `length` for probe string
  /// `r`, pruned with Lemma 5 and Theorem 2 at threshold `tau` (using the
  /// index's configured k and q).  Only ids < `id_limit` are considered
  /// (see LengthBucketIndex::QueryCandidates).  The returned span points
  /// into `workspace->candidates`; with a warmed-up workspace the call
  /// performs no heap allocation.
  std::span<const IndexCandidate> Query(const UncertainString& r, int length,
                                        double tau,
                                        QueryWorkspace* workspace,
                                        IndexQueryStats* stats = nullptr,
                                        uint32_t id_limit = UINT32_MAX) const;

  /// Convenience overload allocating a workspace per call (tests and
  /// one-off callers only).
  std::vector<IndexCandidate> Query(const UncertainString& r, int length,
                                    double tau,
                                    IndexQueryStats* stats = nullptr,
                                    uint32_t id_limit = UINT32_MAX) const;

  const LengthBucketIndex* bucket(int length) const;

  int k() const { return k_; }
  int q() const { return q_; }

  /// Number of per-length buckets currently in the index.
  int num_length_buckets() const { return static_cast<int>(buckets_.size()); }

  /// Total segment lists across all buckets (each bucket has k+1 segments).
  int64_t num_segments() const {
    int64_t total = 0;
    for (const auto& [length, bucket] : buckets_) {
      total += bucket.num_segments();
    }
    return total;
  }

  /// Total footprint of all buckets, in bytes.
  size_t MemoryUsage() const;

  /// Total postings across all buckets.
  int64_t num_postings() const;

  /// Serialization of the whole index (k, q and every bucket).  The probe
  /// options are not persisted — supply them when deserializing.  Output
  /// bytes depend only on the indexed content (keys are written sorted).
  void Serialize(BinaryWriter* writer) const;
  static Result<InvertedSegmentIndex> Deserialize(
      BinaryReader* reader, ProbeSetOptions probe_options = {});

 private:
  int k_;
  int q_;
  ProbeSetOptions probe_options_;
  std::map<int, LengthBucketIndex> buckets_;
};

}  // namespace ujoin

#endif  // UJOIN_INDEX_SEGMENT_INDEX_H_
