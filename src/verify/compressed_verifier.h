#ifndef UJOIN_VERIFY_COMPRESSED_VERIFIER_H_
#define UJOIN_VERIFY_COMPRESSED_VERIFIER_H_

#include "text/uncertain_string.h"
#include "util/status.h"
#include "verify/compressed_trie.h"
#include "verify/verifier.h"

namespace ujoin {

/// \brief Trie-based verification over the path-compressed instance trie.
///
/// Functionally identical to TrieVerifier (exact Pr(ed(R,S) <= k) and
/// τ-decided verdicts) but with a node budget independent of string length,
/// extending exact verification to long strings whose plain instance trie
/// would not fit (see CompressedInstanceTrie).  The walker runs the same
/// active-node DP over *virtual* nodes (node, label offset).
class CompressedTrieVerifier {
 public:
  /// Builds the compressed T_R; fails when it exceeds
  /// options.max_trie_nodes nodes.
  static Result<CompressedTrieVerifier> Create(
      const UncertainString& r, int k, const VerifyOptions& options = {});

  /// Exact Pr(ed(R, S) <= k).
  double Probability(const UncertainString& s,
                     VerifyStats* stats = nullptr) const;

  /// Threshold-decided verification with early termination (see
  /// TrieVerifier::DecideSimilar).
  ThresholdVerdict DecideSimilar(const UncertainString& s, double tau,
                                 VerifyStats* stats = nullptr) const;

  const CompressedInstanceTrie& trie() const { return trie_; }
  int k() const { return k_; }

 private:
  CompressedTrieVerifier(CompressedInstanceTrie trie, int k)
      : trie_(std::move(trie)), k_(k) {}

  CompressedInstanceTrie trie_;
  int k_;
};

/// One-shot compressed-trie verification of a single pair.
Result<double> CompressedTrieVerifyProbability(const UncertainString& r,
                                               const UncertainString& s, int k,
                                               const VerifyOptions& options = {},
                                               VerifyStats* stats = nullptr);

}  // namespace ujoin

#endif  // UJOIN_VERIFY_COMPRESSED_VERIFIER_H_
