#ifndef UJOIN_VERIFY_VERIFIER_H_
#define UJOIN_VERIFY_VERIFIER_H_

#include <cstdint>

#include "text/uncertain_string.h"
#include "util/status.h"
#include "verify/instance_trie.h"

namespace ujoin {

/// \brief Resource guards for exact verification (possible worlds grow
/// exponentially with the number of uncertain positions).
struct VerifyOptions {
  /// Cap on the materialized trie of R's instances.
  int64_t max_trie_nodes = int64_t{1} << 22;
  /// Cap on |worlds(R)| x |worlds(S)| for the naive verifier.
  int64_t max_world_pairs = int64_t{1} << 26;
};

/// \brief Work counters reported by the verifiers (Figure 8's cost drivers).
struct VerifyStats {
  int64_t r_trie_nodes = 0;       ///< nodes of the materialized T_R
  int64_t explored_s_nodes = 0;   ///< on-demand T_S nodes visited
  int64_t active_entries = 0;     ///< Σ active-set sizes over visited nodes
  int64_t world_pairs = 0;        ///< instance pairs compared (naive only)

  /// Accumulates another run's counters (used to fold thread-local stats
  /// into a run total).
  void Merge(const VerifyStats& other) {
    r_trie_nodes += other.r_trie_nodes;
    explored_s_nodes += other.explored_s_nodes;
    active_entries += other.active_entries;
    world_pairs += other.world_pairs;
  }
};

/// \brief Outcome of threshold-decided verification (DecideSimilar).
///
/// `lower` and `upper` are certified bounds on Pr(ed(R, S) <= k); when the
/// walk ran to completion they coincide and `exact` is true.  `similar` is
/// the (k, τ) verdict: Pr > τ.
struct ThresholdVerdict {
  bool similar;
  double lower;
  double upper;
  bool exact;
};

/// \brief Exact verification of candidates against one fixed R
/// (Section 6.2): builds the trie T_R once and reuses it for every candidate
/// pair (R, *), walking an on-demand trie of each S's instances with
/// incremental active-node sets.
///
/// For each node u of T_S the verifier maintains {(v, d)}: the T_R nodes
/// within edit distance d <= k of u's prefix, computed from the parent's set
/// alone.  Subtrees with an empty set are never materialized (prefix
/// pruning), which is what lets the verifier skip the vast majority of S's
/// possible worlds.  At leaf pairs the accumulated probability is exact:
/// the returned value equals Σ p(r_i)·p(s_j) over worlds with
/// ed(r_i, s_j) <= k.
class TrieVerifier {
 public:
  /// Builds T_R; fails when the trie would exceed options.max_trie_nodes.
  static Result<TrieVerifier> Create(const UncertainString& r, int k,
                                     const VerifyOptions& options = {});

  /// Exact Pr(ed(R, S) <= k).  `stats`, when given, is accumulated into.
  double Probability(const UncertainString& s,
                     VerifyStats* stats = nullptr) const;

  /// Threshold-decided verification with early termination (an extension of
  /// Section 6.2, in the spirit of the paper's future-work note): the walk
  /// over T_S stops as soon as the accumulated matching mass exceeds τ
  /// (accept) or the accumulated mass plus everything still unresolved can
  /// no longer exceed τ (reject).  Same worst-case cost as Probability, but
  /// often far cheaper on clear accepts/rejects.
  ThresholdVerdict DecideSimilar(const UncertainString& s, double tau,
                                 VerifyStats* stats = nullptr) const;

  const InstanceTrie& trie() const { return trie_; }
  int k() const { return k_; }

 private:
  TrieVerifier(InstanceTrie trie, int k) : trie_(std::move(trie)), k_(k) {}

  InstanceTrie trie_;
  int k_;
};

/// One-shot trie verification of a single pair.
Result<double> TrieVerifyProbability(const UncertainString& r,
                                     const UncertainString& s, int k,
                                     const VerifyOptions& options = {},
                                     VerifyStats* stats = nullptr);

/// Baseline verification (Section 7.7's "naive"): enumerates all possible
/// worlds of R × S and sums the probability of pairs within threshold,
/// using the thresholded banded DP (prefix pruning) per pair.
Result<double> NaiveVerifyProbability(const UncertainString& r,
                                      const UncertainString& s, int k,
                                      const VerifyOptions& options = {},
                                      VerifyStats* stats = nullptr);

/// Robust one-shot verification: builds the instance trie on whichever side
/// is cheaper (Pr(ed) is symmetric), falls back to the other side and then
/// to naive enumeration when resource caps are hit.  Fails only when every
/// strategy exceeds its cap.
Result<double> VerifyPairProbability(const UncertainString& r,
                                     const UncertainString& s, int k,
                                     const VerifyOptions& options = {},
                                     VerifyStats* stats = nullptr);

/// Saturating |worlds(R)| x |worlds(S)|: the a-priori cost estimate of
/// exactly verifying the pair (the quantity the kVerifyWorldCount histogram
/// records).  A pure function of the two strings, so any budget decided
/// from it is deterministic and thread-count invariant.
int64_t PairWorldCount(const UncertainString& r, const UncertainString& s);

/// Budget early-out predicate for exact verification: true when `budget`
/// is set (> 0) and the estimated pair world count exceeds it.  Callers
/// that skip verification on this signal must fall back to a certified
/// bound (the CDF bounds of Theorem 4) and surface the result as inexact.
bool ExceedsWorldBudget(int64_t pair_world_count, int64_t budget);

}  // namespace ujoin

#endif  // UJOIN_VERIFY_VERIFIER_H_
