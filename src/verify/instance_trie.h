#ifndef UJOIN_VERIFY_INSTANCE_TRIE_H_
#define UJOIN_VERIFY_INSTANCE_TRIE_H_

#include <cstdint>
#include <vector>

#include "text/uncertain_string.h"
#include "util/status.h"

namespace ujoin {

/// \brief Trie of all possible instances of an uncertain string
/// (Section 6.2's T_R), with per-node prefix probabilities.
///
/// Because a character-level uncertain string has fixed length, the trie is
/// levelled: nodes at depth d correspond to instances of the prefix
/// S[0..d-1], and every leaf sits at depth |S|.  A node's probability is the
/// product of the alternative probabilities along its path, i.e. the total
/// probability of all worlds sharing that prefix; leaf probabilities sum
/// to 1.
///
/// Nodes are stored in BFS order, so a node's id is larger than its
/// parent's and each node's children occupy a contiguous id range — the
/// property the verifier exploits to process active sets in id order.
class InstanceTrie {
 public:
  struct Node {
    char symbol;       ///< edge label from the parent (0 for the root)
    int32_t parent;    ///< parent id (-1 for the root)
    int32_t depth;     ///< distance from the root
    int32_t first_child;   ///< id of the first child (0 when childless)
    int32_t num_children;  ///< children occupy [first_child, first_child+n)
    double prob;       ///< probability of this prefix
  };

  /// Materializes the trie; fails with ResourceExhausted when it would
  /// exceed `max_nodes` nodes.
  static Result<InstanceTrie> Build(const UncertainString& s,
                                    int64_t max_nodes = 1 << 22);

  int64_t num_nodes() const { return static_cast<int64_t>(nodes_.size()); }
  const Node& node(int32_t id) const { return nodes_[static_cast<size_t>(id)]; }
  int32_t root() const { return 0; }
  int depth() const { return depth_; }  ///< string length = leaf depth

  bool IsLeaf(int32_t id) const { return node(id).depth == depth_; }

  /// Approximate heap footprint in bytes.
  size_t MemoryUsage() const { return nodes_.capacity() * sizeof(Node); }

 private:
  std::vector<Node> nodes_;
  int depth_ = 0;
};

}  // namespace ujoin

#endif  // UJOIN_VERIFY_INSTANCE_TRIE_H_
