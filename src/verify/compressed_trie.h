#ifndef UJOIN_VERIFY_COMPRESSED_TRIE_H_
#define UJOIN_VERIFY_COMPRESSED_TRIE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "text/uncertain_string.h"
#include "util/status.h"

namespace ujoin {

/// \brief Path-compressed trie of all possible instances of an uncertain
/// string — an engineering improvement over InstanceTrie in the direction
/// of the paper's future-work note on trie-based verification.
///
/// A plain instance trie replicates every deterministic run of the string
/// once per world, so a string with u uncertain positions and length l
/// needs Θ(worlds · l) nodes.  Here branching happens only at uncertain
/// positions: a node at level i >= 1 represents one alternative of the i-th
/// uncertain position, and its *label* is that branching character followed
/// by the maximal certain run up to the next uncertain position.  Because
/// every node of a level shares the same run, the run text is stored once
/// per level.  Node count drops to the number of distinct choice prefixes,
/// Σ_i Π_{j<=i} γ_j <= 2 · worlds — independent of the string length —
/// which is what lets verification handle long strings (e.g. the ×4
/// self-append workload of Figure 9) that overflow the plain trie.
///
/// Nodes are stored level by level: a node's id is larger than its
/// parent's and children occupy contiguous id ranges.
class CompressedInstanceTrie {
 public:
  struct Node {
    int32_t parent;        ///< parent id (-1 for the root)
    int32_t first_child;   ///< id of the first child (0 when childless)
    int32_t num_children;  ///< children occupy [first_child, first_child+n)
    int32_t level;         ///< 0 for the root, i for the i-th uncertain pos
    char branch_char;      ///< the alternative chosen (unused at the root)
    double prob;           ///< probability of the prefix ending at this node
  };

  /// Materializes the compressed trie; fails with ResourceExhausted when it
  /// would exceed `max_nodes` nodes.
  static Result<CompressedInstanceTrie> Build(const UncertainString& s,
                                              int64_t max_nodes = 1 << 22);

  int64_t num_nodes() const { return static_cast<int64_t>(nodes_.size()); }
  const Node& node(int32_t id) const { return nodes_[static_cast<size_t>(id)]; }
  int32_t root() const { return 0; }
  int depth() const { return depth_; }  ///< string length

  /// Length of node `id`'s label: branching char (levels >= 1) plus the
  /// level's shared certain run.  The root's label may be empty.
  int LabelLength(int32_t id) const {
    const Node& n = node(id);
    return (n.level > 0 ? 1 : 0) + RunLength(n.level);
  }

  /// Character at offset `off` (0-based) of node `id`'s label.
  char LabelChar(int32_t id, int off) const {
    const Node& n = node(id);
    if (n.level > 0) {
      if (off == 0) return n.branch_char;
      --off;
    }
    return runs_[static_cast<size_t>(run_begin_[static_cast<size_t>(n.level)] +
                                     off)];
  }

  /// Depth (0-based string position) of the first label character.
  int StartDepth(int32_t id) const {
    return level_start_depth_[static_cast<size_t>(node(id).level)];
  }

  /// Depth one past the last label character (= depth() for leaf levels).
  int EndDepth(int32_t id) const { return StartDepth(id) + LabelLength(id); }

  /// True when `id` terminates a full instance (deepest level).
  bool IsLeafNode(int32_t id) const { return node(id).num_children == 0; }

  /// Approximate heap footprint in bytes.
  size_t MemoryUsage() const {
    return nodes_.capacity() * sizeof(Node) + runs_.capacity() +
           run_begin_.capacity() * sizeof(int32_t) +
           level_start_depth_.capacity() * sizeof(int32_t);
  }

 private:
  int RunLength(int32_t level) const {
    return run_begin_[static_cast<size_t>(level) + 1] -
           run_begin_[static_cast<size_t>(level)];
  }

  std::vector<Node> nodes_;
  std::string runs_;                     // concatenated per-level runs
  std::vector<int32_t> run_begin_;       // level -> offset into runs_
  std::vector<int32_t> level_start_depth_;  // level -> depth of label start
  int depth_ = 0;
};

}  // namespace ujoin

#endif  // UJOIN_VERIFY_COMPRESSED_TRIE_H_
