#include "verify/compressed_trie.h"

#include "util/check.h"

namespace ujoin {

Result<CompressedInstanceTrie> CompressedInstanceTrie::Build(
    const UncertainString& s, int64_t max_nodes) {
  CompressedInstanceTrie trie;
  trie.depth_ = s.length();

  // Locate uncertain positions; the runs between them are shared per level.
  std::vector<int> uncertain;
  for (int i = 0; i < s.length(); ++i) {
    if (!s.IsCertain(i)) uncertain.push_back(i);
  }

  // Level 0: the root with the leading certain run.
  trie.run_begin_.push_back(0);
  trie.level_start_depth_.push_back(0);
  const int first_uncertain =
      uncertain.empty() ? s.length() : uncertain.front();
  for (int i = 0; i < first_uncertain; ++i) {
    trie.runs_.push_back(s.AlternativesAt(i)[0].symbol);
  }
  trie.run_begin_.push_back(static_cast<int32_t>(trie.runs_.size()));
  trie.nodes_.push_back(Node{-1, 0, 0, 0, 0, 1.0});

  int32_t level_begin = 0;
  int32_t level_end = 1;
  for (size_t u = 0; u < uncertain.size(); ++u) {
    const int pos = uncertain[u];
    auto alts = s.AlternativesAt(pos);
    const int64_t level_size = level_end - level_begin;
    const int64_t next_size = level_size * static_cast<int64_t>(alts.size());
    if (static_cast<int64_t>(trie.nodes_.size()) + next_size > max_nodes) {
      return Status::ResourceExhausted(
          "compressed instance trie would exceed " +
          std::to_string(max_nodes) + " nodes at uncertain position " +
          std::to_string(pos));
    }
    // The level's shared run: certain characters after `pos` up to the next
    // uncertain position (or the end of the string).
    const int run_end =
        u + 1 < uncertain.size() ? uncertain[u + 1] : s.length();
    trie.level_start_depth_.push_back(pos);
    for (int i = pos + 1; i < run_end; ++i) {
      trie.runs_.push_back(s.AlternativesAt(i)[0].symbol);
    }
    trie.run_begin_.push_back(static_cast<int32_t>(trie.runs_.size()));

    const int32_t level = static_cast<int32_t>(u) + 1;
    for (int32_t id = level_begin; id < level_end; ++id) {
      trie.nodes_[static_cast<size_t>(id)].first_child =
          static_cast<int32_t>(trie.nodes_.size());
      trie.nodes_[static_cast<size_t>(id)].num_children =
          static_cast<int32_t>(alts.size());
      const double parent_prob = trie.nodes_[static_cast<size_t>(id)].prob;
      for (const CharProb& cp : alts) {
        trie.nodes_.push_back(
            Node{id, 0, 0, level, cp.symbol, parent_prob * cp.prob});
      }
    }
    level_begin = level_end;
    level_end = static_cast<int32_t>(trie.nodes_.size());
  }
  return trie;
}

}  // namespace ujoin
