#include "verify/verifier.h"

#include <algorithm>
#include <queue>
#include <vector>

#include "text/edit_distance.h"
#include "text/possible_worlds.h"
#include "util/check.h"
#include "util/math_util.h"
#include "verify/compressed_verifier.h"

namespace ujoin {

namespace {

/// One active-node entry: T_R node id and its exact edit distance (<= k)
/// from the current T_S prefix.
struct ActiveEntry {
  int32_t node;
  int32_t dist;
};

using ActiveSet = std::vector<ActiveEntry>;  // sorted by node id

// Binary-searches `set` (sorted by node id) for `node`; -1 when absent.
int32_t LookupDistance(const ActiveSet& set, int32_t node) {
  auto it = std::lower_bound(
      set.begin(), set.end(), node,
      [](const ActiveEntry& e, int32_t id) { return e.node < id; });
  if (it == set.end() || it->node != node) return -1;
  return it->dist;
}

/// Walks the on-demand trie of S against a fixed T_R.
///
/// With a threshold τ >= 0 the walk terminates early: `total_` only grows
/// and `resolved_` tracks the S-prefix mass whose contribution is final, so
/// total_ > τ certifies "similar" and total_ + (1 - resolved_) <= τ
/// certifies "not similar".
class TrieWalker {
 public:
  TrieWalker(const InstanceTrie& trie, const UncertainString& s, int k,
             VerifyStats* stats, double tau = -1.0)
      : trie_(trie), s_(s), k_(k), tau_(tau), stats_(stats) {}

  double Run() {
    // Active set of the empty S-prefix: every T_R node of depth <= k, at
    // distance equal to its depth.  BFS ids are level-ordered, so these
    // nodes form a prefix of the id range.
    ActiveSet root_active;
    for (int32_t id = 0; id < trie_.num_nodes(); ++id) {
      const auto& node = trie_.node(id);
      if (node.depth > k_) break;
      root_active.push_back(ActiveEntry{id, node.depth});
    }
    Recurse(0, 1.0, root_active);
    return ClampProb(total_);
  }

  /// Certified lower / upper bounds after Run() (tight unless stopped).
  double lower_bound() const { return ClampProb(total_); }
  double upper_bound() const {
    return ClampProb(total_ + (1.0 - resolved_));
  }
  bool stopped_early() const { return stopped_; }

 private:
  void Recurse(int depth, double prefix_prob, const ActiveSet& active) {
    if (stats_ != nullptr) {
      ++stats_->explored_s_nodes;
      stats_->active_entries += static_cast<int64_t>(active.size());
    }
    if (depth == s_.length()) {
      for (const ActiveEntry& e : active) {
        if (trie_.IsLeaf(e.node)) {
          total_ += prefix_prob * trie_.node(e.node).prob;
        }
      }
      resolved_ += prefix_prob;
      MaybeStop();
      return;
    }
    for (const CharProb& cp : s_.AlternativesAt(depth)) {
      if (stopped_) return;
      const double child_prob = prefix_prob * cp.prob;
      ActiveSet child = Extend(active, cp.symbol, depth + 1);
      if (child.empty()) {
        // Prefix pruning: the subtree contributes exactly 0.
        resolved_ += child_prob;
        MaybeStop();
        continue;
      }
      Recurse(depth + 1, child_prob, child);
    }
  }

  void MaybeStop() {
    if (tau_ < 0.0) return;
    if (total_ > tau_ || total_ + (1.0 - resolved_) <= tau_) stopped_ = true;
  }

  /// A(u·c) from A(u): D(u·c, v) = min over match/substitute (diagonal),
  /// delete c (up), insert symbol(v) (left), exactly the edit-distance DP
  /// evaluated over trie paths.
  ///
  /// Candidate nodes — the root, members of A(u), their children, and the
  /// children of anything entering A(u·c) (insertion chains) — are visited
  /// in id order so a node's parent is always resolved before the node.
  /// Children occupy contiguous BFS id ranges, so the candidate stream is a
  /// merge of intervals managed by a small binary heap (no per-element
  /// allocations, unlike a node-based set).
  ActiveSet Extend(const ActiveSet& active, char c, int new_len) {
    ActiveSet next;
    using Range = std::pair<int32_t, int32_t>;  // [current, end)
    std::priority_queue<Range, std::vector<Range>, std::greater<Range>> heap;
    auto push_children = [&](int32_t v) {
      const auto& node = trie_.node(v);
      if (node.num_children > 0) {
        heap.push({node.first_child, node.first_child + node.num_children});
      }
    };
    if (new_len <= k_) heap.push({trie_.root(), trie_.root() + 1});
    for (const ActiveEntry& e : active) {
      heap.push({e.node, e.node + 1});
      push_children(e.node);
    }
    int32_t last = -1;
    while (!heap.empty()) {
      const auto [v, end] = heap.top();
      heap.pop();
      if (v + 1 < end) heap.push({v + 1, end});
      if (v == last) continue;  // ranges may overlap: dedup on pop
      last = v;
      int32_t best;
      if (v == trie_.root()) {
        best = new_len;  // ed(u·c, ε) = |u·c|
      } else {
        const auto& node = trie_.node(v);
        best = k_ + 1;
        const int32_t parent_du = LookupDistance(active, node.parent);
        if (parent_du >= 0) {
          const int32_t cost = node.symbol == c ? 0 : 1;
          best = std::min(best, parent_du + cost);  // diagonal
        }
        const int32_t self_du = LookupDistance(active, v);
        if (self_du >= 0) best = std::min(best, self_du + 1);  // delete c
        const int32_t parent_dnext = LookupDistance(next, node.parent);
        if (parent_dnext >= 0) {
          best = std::min(best, parent_dnext + 1);  // insert symbol(v)
        }
      }
      if (best > k_) continue;
      next.push_back(ActiveEntry{v, best});  // ids ascend: `next` stays sorted
      push_children(v);
    }
    return next;
  }

  const InstanceTrie& trie_;
  const UncertainString& s_;
  const int k_;
  const double tau_;  // negative disables early termination
  VerifyStats* stats_;
  double total_ = 0.0;     // accumulated matching mass (only grows)
  double resolved_ = 0.0;  // S-prefix mass with a final contribution
  bool stopped_ = false;
};

}  // namespace

Result<TrieVerifier> TrieVerifier::Create(const UncertainString& r, int k,
                                          const VerifyOptions& options) {
  UJOIN_CHECK(k >= 0);
  Result<InstanceTrie> trie = InstanceTrie::Build(r, options.max_trie_nodes);
  if (!trie.ok()) return trie.status();
  return TrieVerifier(std::move(trie).value(), k);
}

double TrieVerifier::Probability(const UncertainString& s,
                                 VerifyStats* stats) const {
  if (stats != nullptr) stats->r_trie_nodes += trie_.num_nodes();
  TrieWalker walker(trie_, s, k_, stats);
  return walker.Run();
}

ThresholdVerdict TrieVerifier::DecideSimilar(const UncertainString& s,
                                             double tau,
                                             VerifyStats* stats) const {
  UJOIN_CHECK(tau >= 0.0 && tau <= 1.0);
  if (stats != nullptr) stats->r_trie_nodes += trie_.num_nodes();
  TrieWalker walker(trie_, s, k_, stats, tau);
  walker.Run();
  ThresholdVerdict verdict;
  verdict.lower = walker.lower_bound();
  verdict.upper = walker.upper_bound();
  verdict.exact = !walker.stopped_early();
  verdict.similar = verdict.lower > tau;
  UJOIN_DCHECK(verdict.similar || verdict.upper <= tau || verdict.exact);
  return verdict;
}

Result<double> TrieVerifyProbability(const UncertainString& r,
                                     const UncertainString& s, int k,
                                     const VerifyOptions& options,
                                     VerifyStats* stats) {
  Result<TrieVerifier> verifier = TrieVerifier::Create(r, k, options);
  if (!verifier.ok()) return verifier.status();
  return verifier->Probability(s, stats);
}

Result<double> VerifyPairProbability(const UncertainString& r,
                                     const UncertainString& s, int k,
                                     const VerifyOptions& options,
                                     VerifyStats* stats) {
  // A string's trie has at most WorldCount() nodes per level; prefer the
  // side with fewer worlds as the materialized T_R.
  const UncertainString* first = &r;
  const UncertainString* second = &s;
  if (s.WorldCount() < r.WorldCount()) std::swap(first, second);
  Result<double> out = TrieVerifyProbability(*first, *second, k, options, stats);
  if (out.ok()) return out;
  out = TrieVerifyProbability(*second, *first, k, options, stats);
  if (out.ok()) return out;
  // The plain tries overflowed: the path-compressed trie's node budget is
  // independent of string length and usually still fits.
  out = CompressedTrieVerifyProbability(*first, *second, k, options, stats);
  if (out.ok()) return out;
  out = CompressedTrieVerifyProbability(*second, *first, k, options, stats);
  if (out.ok()) return out;
  return NaiveVerifyProbability(r, s, k, options, stats);
}

Result<double> NaiveVerifyProbability(const UncertainString& r,
                                      const UncertainString& s, int k,
                                      const VerifyOptions& options,
                                      VerifyStats* stats) {
  UJOIN_CHECK(k >= 0);
  const int64_t pairs = SaturatingMul(r.WorldCount(), s.WorldCount());
  if (pairs > options.max_world_pairs) {
    return Status::ResourceExhausted(
        "naive verification over " + std::to_string(pairs) +
        " world pairs exceeds the cap of " +
        std::to_string(options.max_world_pairs));
  }
  double total = 0.0;
  ForEachWorld(r, [&](const std::string& ri, double pi) {
    ForEachWorld(s, [&](const std::string& sj, double pj) {
      if (stats != nullptr) ++stats->world_pairs;
      if (BoundedEditDistance(ri, sj, k) <= k) total += pi * pj;
    });
  });
  return ClampProb(total);
}

int64_t PairWorldCount(const UncertainString& r, const UncertainString& s) {
  return SaturatingMul(r.WorldCount(), s.WorldCount());
}

bool ExceedsWorldBudget(int64_t pair_world_count, int64_t budget) {
  return budget > 0 && pair_world_count > budget;
}

}  // namespace ujoin
