#include "verify/instance_trie.h"

#include "util/check.h"

namespace ujoin {

Result<InstanceTrie> InstanceTrie::Build(const UncertainString& s,
                                         int64_t max_nodes) {
  InstanceTrie trie;
  trie.depth_ = s.length();
  trie.nodes_.push_back(Node{0, -1, 0, 0, 0, 1.0});
  int32_t level_begin = 0;
  int32_t level_end = 1;
  for (int d = 0; d < s.length(); ++d) {
    auto alts = s.AlternativesAt(d);
    const int64_t level_size = level_end - level_begin;
    const int64_t next_size = level_size * static_cast<int64_t>(alts.size());
    if (static_cast<int64_t>(trie.nodes_.size()) + next_size > max_nodes) {
      return Status::ResourceExhausted(
          "instance trie would exceed " + std::to_string(max_nodes) +
          " nodes at depth " + std::to_string(d));
    }
    for (int32_t id = level_begin; id < level_end; ++id) {
      trie.nodes_[static_cast<size_t>(id)].first_child =
          static_cast<int32_t>(trie.nodes_.size());
      trie.nodes_[static_cast<size_t>(id)].num_children =
          static_cast<int32_t>(alts.size());
      const double parent_prob = trie.nodes_[static_cast<size_t>(id)].prob;
      for (const CharProb& cp : alts) {
        trie.nodes_.push_back(Node{cp.symbol, id, d + 1, 0, 0,
                                   parent_prob * cp.prob});
      }
    }
    level_begin = level_end;
    level_end = static_cast<int32_t>(trie.nodes_.size());
  }
  return trie;
}

}  // namespace ujoin
