#include "verify/compressed_verifier.h"

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "util/check.h"
#include "util/math_util.h"

namespace ujoin {

namespace {

/// A virtual trie position: character `offset` of `node`'s label.  The
/// sentinel offset -1 on the root denotes the empty prefix ε (it doubles as
/// "last virtual position" of an empty-label root, which keeps parent
/// arithmetic uniform).
struct VirtualNode {
  int32_t node;
  int32_t offset;

  friend bool operator<(const VirtualNode& a, const VirtualNode& b) {
    return a.node != b.node ? a.node < b.node : a.offset < b.offset;
  }
  friend bool operator==(const VirtualNode& a, const VirtualNode& b) {
    return a.node == b.node && a.offset == b.offset;
  }
};

struct ActiveEntry {
  VirtualNode v;
  int32_t dist;
};

using ActiveSet = std::vector<ActiveEntry>;  // sorted by VirtualNode

int32_t LookupDistance(const ActiveSet& set, const VirtualNode& v) {
  auto it = std::lower_bound(
      set.begin(), set.end(), v,
      [](const ActiveEntry& e, const VirtualNode& key) { return e.v < key; });
  if (it == set.end() || !(it->v == v)) return -1;
  return it->dist;
}

/// Walks the on-demand trie of S against a fixed compressed T_R; mirrors
/// verifier.cc's TrieWalker, including τ early termination.
class CompressedTrieWalker {
 public:
  CompressedTrieWalker(const CompressedInstanceTrie& trie,
                       const UncertainString& s, int k, VerifyStats* stats,
                       double tau = -1.0)
      : trie_(trie), s_(s), k_(k), tau_(tau), stats_(stats) {}

  double Run() {
    ActiveSet root_active;
    // ε at distance 0, then every virtual position of depth <= k.  Virtual
    // depths ascend along each node's label and across levels, so a
    // bounded DFS over nodes collects them in (node, offset) order.
    root_active.push_back(ActiveEntry{VirtualNode{trie_.root(), -1}, 0});
    CollectShallow(trie_.root(), &root_active);
    std::sort(root_active.begin(), root_active.end(),
              [](const ActiveEntry& a, const ActiveEntry& b) {
                return a.v < b.v;
              });
    Recurse(0, 1.0, root_active);
    return ClampProb(total_);
  }

  double lower_bound() const { return ClampProb(total_); }
  double upper_bound() const { return ClampProb(total_ + (1.0 - resolved_)); }
  bool stopped_early() const { return stopped_; }

 private:
  // Depth of the prefix ending at virtual position v.
  int Depth(const VirtualNode& v) const {
    return trie_.StartDepth(v.node) + v.offset + 1;
  }

  bool IsFullInstance(const VirtualNode& v) const {
    return Depth(v) == trie_.depth() && trie_.IsLeafNode(v.node) &&
           v.offset == trie_.LabelLength(v.node) - 1;
  }

  // Collects virtual positions of depth <= k_ under `node` (inclusive).
  void CollectShallow(int32_t node, ActiveSet* out) {
    const int start = trie_.StartDepth(node);
    const int len = trie_.LabelLength(node);
    for (int off = 0; off < len; ++off) {
      const int depth = start + off + 1;
      if (depth > k_) return;  // deeper offsets/levels only grow
      out->push_back(ActiveEntry{VirtualNode{node, off},
                                 static_cast<int32_t>(depth)});
    }
    const auto& n = trie_.node(node);
    // A child's first virtual position sits at depth start + len + 1.
    if (start + len + 1 > k_) return;
    for (int32_t c = 0; c < n.num_children; ++c) {
      CollectShallow(n.first_child + c, out);
    }
  }

  void Recurse(int depth, double prefix_prob, const ActiveSet& active) {
    if (stats_ != nullptr) {
      ++stats_->explored_s_nodes;
      stats_->active_entries += static_cast<int64_t>(active.size());
    }
    if (depth == s_.length()) {
      for (const ActiveEntry& e : active) {
        if (IsFullInstance(e.v)) {
          total_ += prefix_prob * trie_.node(e.v.node).prob;
        }
      }
      resolved_ += prefix_prob;
      MaybeStop();
      return;
    }
    for (const CharProb& cp : s_.AlternativesAt(depth)) {
      if (stopped_) return;
      const double child_prob = prefix_prob * cp.prob;
      ActiveSet child = Extend(active, cp.symbol, depth + 1);
      if (child.empty()) {
        resolved_ += child_prob;
        MaybeStop();
        continue;
      }
      Recurse(depth + 1, child_prob, child);
    }
  }

  void MaybeStop() {
    if (tau_ < 0.0) return;
    if (total_ > tau_ || total_ + (1.0 - resolved_) <= tau_) stopped_ = true;
  }

  // The parent virtual position (ε's parent is ε itself; never queried).
  VirtualNode Parent(const VirtualNode& v) const {
    if (v.offset > 0 || (v.node == trie_.root() && v.offset == 0)) {
      return VirtualNode{v.node, v.offset - 1};
    }
    const int32_t parent_node = trie_.node(v.node).parent;
    return VirtualNode{parent_node, trie_.LabelLength(parent_node) - 1};
  }

  // Appends v's virtual children to `candidates`.
  void AddChildren(const VirtualNode& v, std::set<VirtualNode>* candidates) {
    if (v.offset + 1 < trie_.LabelLength(v.node)) {
      candidates->insert(VirtualNode{v.node, v.offset + 1});
      return;
    }
    const auto& n = trie_.node(v.node);
    for (int32_t c = 0; c < n.num_children; ++c) {
      candidates->insert(VirtualNode{n.first_child + c, 0});
    }
  }

  ActiveSet Extend(const ActiveSet& active, char c, int new_len) {
    ActiveSet next;
    std::set<VirtualNode> candidates;
    const VirtualNode epsilon{trie_.root(), -1};
    if (new_len <= k_) candidates.insert(epsilon);
    for (const ActiveEntry& e : active) {
      candidates.insert(e.v);
      AddChildren(e.v, &candidates);
    }
    for (auto it = candidates.begin(); it != candidates.end(); ++it) {
      const VirtualNode v = *it;
      int32_t best;
      if (v == epsilon) {
        best = new_len;  // ed(u·c, ε) = |u·c|
      } else {
        best = k_ + 1;
        const VirtualNode parent = Parent(v);
        const char vc = trie_.LabelChar(v.node, v.offset);
        const int32_t parent_du = LookupDistance(active, parent);
        if (parent_du >= 0) {
          best = std::min(best, parent_du + (vc == c ? 0 : 1));  // diagonal
        }
        const int32_t self_du = LookupDistance(active, v);
        if (self_du >= 0) best = std::min(best, self_du + 1);  // delete c
        const int32_t parent_dnext = LookupDistance(next, parent);
        if (parent_dnext >= 0) {
          best = std::min(best, parent_dnext + 1);  // insert vc
        }
      }
      if (best > k_) continue;
      next.push_back(ActiveEntry{v, best});  // set order keeps `next` sorted
      AddChildren(v, &candidates);  // larger positions: visited later
    }
    return next;
  }

  const CompressedInstanceTrie& trie_;
  const UncertainString& s_;
  const int k_;
  const double tau_;
  VerifyStats* stats_;
  double total_ = 0.0;
  double resolved_ = 0.0;
  bool stopped_ = false;
};

}  // namespace

Result<CompressedTrieVerifier> CompressedTrieVerifier::Create(
    const UncertainString& r, int k, const VerifyOptions& options) {
  UJOIN_CHECK(k >= 0);
  Result<CompressedInstanceTrie> trie =
      CompressedInstanceTrie::Build(r, options.max_trie_nodes);
  if (!trie.ok()) return trie.status();
  return CompressedTrieVerifier(std::move(trie).value(), k);
}

double CompressedTrieVerifier::Probability(const UncertainString& s,
                                           VerifyStats* stats) const {
  if (stats != nullptr) stats->r_trie_nodes += trie_.num_nodes();
  CompressedTrieWalker walker(trie_, s, k_, stats);
  return walker.Run();
}

ThresholdVerdict CompressedTrieVerifier::DecideSimilar(
    const UncertainString& s, double tau, VerifyStats* stats) const {
  UJOIN_CHECK(tau >= 0.0 && tau <= 1.0);
  if (stats != nullptr) stats->r_trie_nodes += trie_.num_nodes();
  CompressedTrieWalker walker(trie_, s, k_, stats, tau);
  walker.Run();
  ThresholdVerdict verdict;
  verdict.lower = walker.lower_bound();
  verdict.upper = walker.upper_bound();
  verdict.exact = !walker.stopped_early();
  verdict.similar = verdict.lower > tau;
  return verdict;
}

Result<double> CompressedTrieVerifyProbability(const UncertainString& r,
                                               const UncertainString& s, int k,
                                               const VerifyOptions& options,
                                               VerifyStats* stats) {
  Result<CompressedTrieVerifier> verifier =
      CompressedTrieVerifier::Create(r, k, options);
  if (!verifier.ok()) return verifier.status();
  return verifier->Probability(s, stats);
}

}  // namespace ujoin
