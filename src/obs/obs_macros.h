#ifndef UJOIN_OBS_OBS_MACROS_H_
#define UJOIN_OBS_OBS_MACROS_H_

#include "obs/flight_recorder.h"
#include "obs/metrics.h"

// UJOIN_OBS macro layer.
//
// Instrumentation sites go through these macros instead of calling the
// Recorder directly, so observability has two independent off switches:
//
//  * Run time: every hook takes an `obs::Recorder*` that is null unless the
//    caller attached one (JoinOptions::metrics, QueryWorkspace::obs).  The
//    enabled macros reduce to a single pointer test — the only cost paid by
//    uninstrumented runs.
//  * Compile time: configuring with -DUJOIN_OBS=OFF defines
//    UJOIN_OBS_DISABLED on every ujoin_obs dependent, and the macros expand
//    to nothing (UJOIN_OBS_ENABLED becomes the constant false, so guarded
//    blocks fold away as dead code).
//
// Recording itself performs no heap allocation (Recorder storage is inline),
// so these macros are safe inside the steady-state zero-allocation probe
// path.

#if defined(UJOIN_OBS_DISABLED)

// sizeof keeps the arguments un-evaluated (no codegen, no side effects)
// while still "using" them, so values computed only for recording do not
// trip -Wunused under -DUJOIN_OBS=OFF.
#define UJOIN_OBS_ENABLED(recorder) ((void)sizeof(recorder), false)
#define UJOIN_OBS_HIST(recorder, id, value)                            \
  do {                                                                 \
    (void)sizeof(recorder), (void)sizeof(id), (void)sizeof((value));   \
  } while (0)
#define UJOIN_OBS_COUNTER(recorder, id, delta)                         \
  do {                                                                 \
    (void)sizeof(recorder), (void)sizeof(id), (void)sizeof((delta));   \
  } while (0)
#define UJOIN_OBS_GAUGE(recorder, id, value)                           \
  do {                                                                 \
    (void)sizeof(recorder), (void)sizeof(id), (void)sizeof((value));   \
  } while (0)
#define UJOIN_OBS_FUNNEL(recorder, stage, entered, survived)           \
  do {                                                                 \
    (void)sizeof(recorder), (void)sizeof(stage),                       \
        (void)sizeof((entered)), (void)sizeof((survived));             \
  } while (0)
#define UJOIN_OBS_FLIGHT_ENABLED() (false)
#define UJOIN_OBS_FLIGHT_EVENT(kind, a, b)                             \
  do {                                                                 \
    (void)sizeof(kind), (void)sizeof((a)), (void)sizeof((b));          \
  } while (0)

#else  // !defined(UJOIN_OBS_DISABLED)

/// True when `recorder` (an obs::Recorder*) is attached; use to guard
/// instrumentation-only work such as reading a timer.
#define UJOIN_OBS_ENABLED(recorder) ((recorder) != nullptr)

/// Records `value` into histogram `id` when a recorder is attached.
#define UJOIN_OBS_HIST(recorder, id, value)                         \
  do {                                                              \
    if ((recorder) != nullptr) (recorder)->RecordHist((id), (value)); \
  } while (0)

/// Adds `delta` to counter `id` when a recorder is attached.
#define UJOIN_OBS_COUNTER(recorder, id, delta)                        \
  do {                                                                \
    if ((recorder) != nullptr) (recorder)->AddCounter((id), (delta)); \
  } while (0)

/// Raises gauge `id` to at least `value` when a recorder is attached.
#define UJOIN_OBS_GAUGE(recorder, id, value)                        \
  do {                                                              \
    if ((recorder) != nullptr) (recorder)->SetGauge((id), (value)); \
  } while (0)

/// Adds one probe's candidate flow through funnel stage `stage` when a
/// recorder is attached: `entered` candidates reached it, `survived` passed.
#define UJOIN_OBS_FUNNEL(recorder, stage, entered, survived) \
  do {                                                       \
    if ((recorder) != nullptr) {                             \
      (recorder)->AddFunnel((stage), (entered), (survived)); \
    }                                                        \
  } while (0)

/// True when the flight recorder is live; use to guard work done only to
/// feed a flight event's payload.
#define UJOIN_OBS_FLIGHT_ENABLED() \
  (::ujoin::obs::GlobalFlightRecorder()->enabled())

/// Records one lifecycle event (obs::FlightEvent `kind`, two int64 payload
/// words) on the calling thread's flight-recorder ring.  Always-on
/// black-box recording: unlike the metric macros there is no per-call-site
/// recorder pointer — the global ring is the point — so the only runtime
/// cost with recording disabled is one relaxed load.  Recording is
/// allocation-, lock- and syscall-free (see flight_recorder.h), so this is
/// safe on the steady-state probe path.
#define UJOIN_OBS_FLIGHT_EVENT(kind, a, b)                            \
  do {                                                                \
    ::ujoin::obs::GlobalFlightRecorder()->RecordEvent((kind), (a), (b)); \
  } while (0)

#endif  // defined(UJOIN_OBS_DISABLED)

#endif  // UJOIN_OBS_OBS_MACROS_H_
