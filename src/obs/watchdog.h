#ifndef UJOIN_OBS_WATCHDOG_H_
#define UJOIN_OBS_WATCHDOG_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.h"

namespace ujoin {
namespace obs {

// ---------------------------------------------------------------------------
// Stall watchdog
//
// A background thread that scans the flight recorder's per-thread in-flight
// blocks (FlightRecorder::ReadInFlight) and captures a stall report when a
// query (or self-join wave) has been running longer than its threshold:
// `deadline_multiple` times the query's own deadline when one is set, else
// the flat `stall_ns` fallback.  The flight macros already stamp the
// in-flight block (query begin/end, funnel stage, verify-world estimate,
// serve attribution), so no extra plumbing runs on the query path — the
// watchdog is a pure reader.
//
// Captured reports land in a bounded ring rendered as the versioned
// "ujoin.stalls" JSON page (served at /debug/stalls by the serve layer).
// Ring order and the page's non-timing fields are a pure function of the
// stalled queries' content — reports sort by (band, funnel_stage,
// verify_worlds, deadline_ns, connection, seq), never by capture time — so
// the page is comparable across runs and client counts after stripping the
// timing tier (elapsed_ns).  Each (thread slot, epoch) is captured at most
// once: a stall that persists across scan ticks yields one report.
// ---------------------------------------------------------------------------

struct WatchdogOptions {
  /// Flat stall threshold for work without a deadline, ns.  <= 0 disables
  /// the fallback (deadline-less work is then never flagged).
  int64_t stall_ns = 0;
  /// A query with a deadline stalls when elapsed exceeds deadline times
  /// this multiple.
  double deadline_multiple = 4.0;
  /// Scan period, milliseconds.
  int poll_ms = 50;
  /// When non-empty, the full flight record is dumped here (reason
  /// "watchdog") every time a stall is captured.
  std::string dump_path;
};

/// One captured stall.  All fields except elapsed_ns are determinism
/// tier 2/3 (attribution/content); elapsed_ns is tier 1 wall clock.
struct StallReport {
  int64_t band = 0;           ///< length band (query) or wave index
  int64_t funnel_stage = -1;  ///< obs::FunnelStage, -1 = before the funnel
  int64_t verify_worlds = 0;  ///< last verify-begin world estimate
  int64_t deadline_ns = 0;    ///< the query's deadline, 0 = none
  int64_t threshold_ns = 0;   ///< threshold that tripped the capture
  int64_t connection = -1;    ///< serve attribution, -1 outside serve
  int64_t seq = 0;            ///< serve attribution, 0 outside serve
  int64_t elapsed_ns = 0;     ///< elapsed at capture (wall clock)
};

inline constexpr int kStallsSchemaVersion = 1;

/// Renders the "ujoin.stalls" page: `reports` in the ring's content order,
/// `captures` the lifetime capture count.  Deterministic: bytes are a pure
/// function of the arguments.
std::string RenderStallsPage(const std::vector<StallReport>& reports,
                             int64_t captures);

class Watchdog {
 public:
  static constexpr int kMaxReports = 8;

  /// Watches `recorder` (not owned; typically GlobalFlightRecorder()).
  explicit Watchdog(FlightRecorder* recorder) : recorder_(recorder) {}
  ~Watchdog() { Stop(); }
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Called with the freshly rendered stalls page after every capture
  /// (from the watchdog thread).  Set before Start.
  void set_push_fn(std::function<void(const std::string&)> push_fn) {
    push_fn_ = std::move(push_fn);
  }

  /// Sets the scan options without starting the thread.  Deterministic
  /// tests call this and drive ScanOnce with explicit clock values;
  /// Start calls it on the way to spawning the scan thread.
  void Configure(const WatchdogOptions& options) { options_ = options; }

  /// Starts the scan thread.  No-op when already running.
  void Start(const WatchdogOptions& options);

  /// Stops and joins the scan thread.  Safe to call when not running.
  void Stop();

  /// One synchronous scan at recorder-clock time `now_ns`; the thread
  /// calls this every poll_ms.  Exposed for deterministic tests.
  void ScanOnce(int64_t now_ns);

  /// Lifetime captures (kept past ring eviction).
  int64_t captures() const {
    return captures_.load(std::memory_order_relaxed);
  }

  /// Ring contents in content order (see RenderStallsPage).
  std::vector<StallReport> Reports() const;

  /// The rendered "ujoin.stalls" page for the current ring.
  std::string StallsJson() const;

 private:
  void Loop();

  FlightRecorder* const recorder_;
  WatchdogOptions options_;
  std::function<void(const std::string&)> push_fn_;

  mutable std::mutex mu_;
  std::vector<StallReport> reports_;                 // content-sorted
  int64_t last_epoch_[FlightRecorder::kMaxThreadSlots] = {};

  std::atomic<int64_t> captures_{0};
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_ = true;
  std::thread thread_;
};

}  // namespace obs
}  // namespace ujoin

#endif  // UJOIN_OBS_WATCHDOG_H_
