#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstring>

#include "util/simd.h"

namespace ujoin {
namespace obs {

namespace {

// Registry names, in FlightEvent order (the dump's "registry" object and
// every event's "kind" field spell these).
constexpr const char* kFlightEventNames[kNumFlightEvents] = {
    "wave_start",      "wave_end",   "probe_begin", "funnel_stage",
    "verify_begin",    "query_begin", "query_end",  "batch_boundary",
    "conn_open",       "conn_close", "conn_idle_close", "serve_query",
    "stall_captured",
};

/// Process-wide logical thread ids, 1-based.  Assigned once per thread on
/// first use; FlightRecorder slots key their claims on this id so a thread
/// that touches two recorder instances (tests) reuses its claim per
/// instance instead of leaking slots.
std::atomic<int64_t> g_thread_ids{0};

int64_t ThisThreadId() {
  thread_local const int64_t id =
      g_thread_ids.fetch_add(1, std::memory_order_relaxed) + 1;
  return id;
}

int64_t OsTid() { return static_cast<int64_t>(syscall(SYS_gettid)); }

struct ThreadSlotCache {
  const void* recorder = nullptr;
  int slot = -1;
};
thread_local ThreadSlotCache t_slot_cache;

// --- async-signal-safe sink ------------------------------------------------
//
// The dump path formats into a fixed caller-provided buffer and emits bytes
// with raw write(2): no malloc, no locks, no stdio, so the same code runs
// inside the SIGSEGV handler.  tools/ujoin_effects.py roots its
// "flight-path" contract at DumpToFd; FlightSinkWrite is the one blessed
// I/O sink below it.

constexpr int kSinkBufBytes = 512;

// ujoin-effect: declares(io) -- raw write(2) to the pre-opened dump fd,
// the only I/O on the async-signal-safe dump path (blessed by the
// flight-path contract).
void FlightSinkWrite(int fd, const char* data, int64_t n) {
  int64_t off = 0;
  while (off < n) {
    const ssize_t wrote =
        write(fd, data + off, static_cast<size_t>(n - off));
    if (wrote <= 0) return;  // dump is best-effort; never loop on error
    off += static_cast<int64_t>(wrote);
  }
}

void SinkFlush(int fd, char* buf, int* len) {
  if (*len > 0) FlightSinkWrite(fd, buf, *len);
  *len = 0;
}

void SinkRaw(int fd, char* buf, int* len, const char* s) {
  for (const char* p = s; *p != '\0'; ++p) {
    if (*len == kSinkBufBytes) SinkFlush(fd, buf, len);
    buf[(*len)++] = *p;
  }
}

void SinkInt(int fd, char* buf, int* len, int64_t v) {
  // Hand-rolled decimal renderer: snprintf is not async-signal-safe.
  char tmp[24];
  int n = 0;
  uint64_t mag = v < 0 ? 0 - static_cast<uint64_t>(v)
                       : static_cast<uint64_t>(v);
  do {
    tmp[n++] = static_cast<char>('0' + static_cast<char>(mag % 10));
    mag /= 10;
  } while (mag != 0);
  if (v < 0) tmp[n++] = '-';
  while (n > 0) {
    if (*len == kSinkBufBytes) SinkFlush(fd, buf, len);
    buf[(*len)++] = tmp[--n];
  }
}

// --- crash handler ---------------------------------------------------------

std::atomic<int> g_crash_fd{-1};

void CrashDumpHandler(int sig) {
  const int fd = g_crash_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    FlightDumpOptions options;
    options.reason = "crash";
    options.signal = sig;
    GlobalFlightRecorder()->DumpToFd(fd, options);
  }
  // SA_RESETHAND restored the default disposition before we ran; re-raise
  // so the process still dies with the original signal.
  raise(sig);
}

// The global recorder lives in static storage (no construction order, no
// function-local-static guard) so the crash handler can reach it without
// any synchronization.
FlightRecorder g_flight_recorder;

}  // namespace

const char* FlightEventName(FlightEvent kind) {
  const int k = static_cast<int>(kind);
  if (k < 0 || k >= kNumFlightEvents) return "unknown";
  return kFlightEventNames[k];
}

FlightRecorder* GlobalFlightRecorder() { return &g_flight_recorder; }

int64_t FlightRecorder::NowNs() {
  static const std::chrono::steady_clock::time_point origin =
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - origin)
      .count();
}

int FlightRecorder::SlotForThisThread() {
  const int64_t tid = ThisThreadId();
  if (t_slot_cache.recorder == this) {
    const int cached = t_slot_cache.slot;
    // Revalidate the claim: a destroyed instance's address can be reused by
    // a new recorder (tests), making the cache hit spurious.
    if (cached < 0 ||
        slots_[static_cast<size_t>(cached)].claimed_thread.load(
            std::memory_order_relaxed) == tid) {
      return cached;
    }
  }
  int slot = -1;
  // Reuse an existing claim first (a thread re-entering this instance
  // after touching another recorder, e.g. in tests).
  const int used = slots_used();
  for (int i = 0; i < used; ++i) {
    if (slots_[i].claimed_thread.load(std::memory_order_relaxed) == tid) {
      slot = i;
      break;
    }
  }
  if (slot < 0) {
    const int64_t claimed =
        slots_used_.fetch_add(1, std::memory_order_acq_rel);
    if (claimed < kMaxThreadSlots) {
      slot = static_cast<int>(claimed);
      slots_[slot].claimed_thread.store(tid, std::memory_order_relaxed);
      slots_[slot].os_tid.store(OsTid(), std::memory_order_relaxed);
    }
    // Overshoot stays in slots_used_; every reader clamps to
    // kMaxThreadSlots, and this thread's events count as dropped.
  }
  t_slot_cache.recorder = this;
  t_slot_cache.slot = slot;
  return slot;
}

void FlightRecorder::RecordEvent(FlightEvent kind, int64_t a, int64_t b) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  const int slot_index = SlotForThisThread();
  if (slot_index < 0) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Slot& slot = slots_[static_cast<size_t>(slot_index)];
  const int64_t ts = NowNs();
  const int64_t head = slot.head.load(std::memory_order_relaxed);
  std::atomic<int64_t>* w =
      &slot.words[static_cast<size_t>(head % kEventsPerThread) *
                  kWordsPerEvent];
  // Per-event seqlock: word 0 goes to 0 (being written), then the payload,
  // then the 1-based sequence.  A dump racing this write sees either the
  // old sequence with the old payload, 0, or the new sequence with the new
  // payload — torn events are skipped, never misreported.
  w[0].store(0, std::memory_order_release);
  w[1].store(ts, std::memory_order_relaxed);
  w[2].store(static_cast<int64_t>(kind), std::memory_order_relaxed);
  w[3].store(a, std::memory_order_relaxed);
  w[4].store(b, std::memory_order_relaxed);
  w[0].store(head + 1, std::memory_order_release);
  slot.head.store(head + 1, std::memory_order_release);
  kind_counts_[static_cast<size_t>(kind)].fetch_add(
      1, std::memory_order_relaxed);

  // In-flight block for the watchdog: begin/end events open and close an
  // epoch (odd = in flight); progress events refresh single words.
  switch (kind) {
    case FlightEvent::kQueryBegin:
    case FlightEvent::kWaveStart: {
      slot.q_begin_ns.store(ts, std::memory_order_relaxed);
      slot.q_deadline_ns.store(kind == FlightEvent::kQueryBegin ? a : 0,
                               std::memory_order_relaxed);
      slot.q_band.store(kind == FlightEvent::kQueryBegin ? b : a,
                        std::memory_order_relaxed);
      slot.q_verify_worlds.store(0, std::memory_order_relaxed);
      slot.q_funnel_stage.store(-1, std::memory_order_relaxed);
      const int64_t e = slot.q_epoch.load(std::memory_order_relaxed);
      slot.q_epoch.store(e + ((e & 1) != 0 ? 2 : 1),
                         std::memory_order_release);
      break;
    }
    case FlightEvent::kQueryEnd:
    case FlightEvent::kWaveEnd: {
      const int64_t e = slot.q_epoch.load(std::memory_order_relaxed);
      if ((e & 1) != 0) {
        slot.q_epoch.store(e + 1, std::memory_order_release);
      }
      break;
    }
    case FlightEvent::kServeQuery:
      slot.q_connection.store(a, std::memory_order_relaxed);
      slot.q_seq.store(b, std::memory_order_relaxed);
      break;
    case FlightEvent::kFunnelStage:
      slot.q_funnel_stage.store(a, std::memory_order_relaxed);
      break;
    case FlightEvent::kVerifyBegin:
      slot.q_verify_worlds.store(a, std::memory_order_relaxed);
      // Verification has no explicit kFunnelStage event; stamp the stage so
      // a stall report can say "stuck in verify" (3 == FunnelStage::kVerify).
      slot.q_funnel_stage.store(3, std::memory_order_relaxed);
      break;
    default:
      break;
  }
}

InFlightSnapshot FlightRecorder::ReadInFlight(int slot) const {
  InFlightSnapshot snap;
  if (slot < 0 || slot >= slots_used()) return snap;
  const Slot& s = slots_[static_cast<size_t>(slot)];
  const int64_t e1 = s.q_epoch.load(std::memory_order_acquire);
  if ((e1 & 1) == 0) return snap;
  snap.epoch = e1;
  snap.begin_ns = s.q_begin_ns.load(std::memory_order_relaxed);
  snap.deadline_ns = s.q_deadline_ns.load(std::memory_order_relaxed);
  snap.band = s.q_band.load(std::memory_order_relaxed);
  snap.connection = s.q_connection.load(std::memory_order_relaxed);
  snap.seq = s.q_seq.load(std::memory_order_relaxed);
  snap.verify_worlds = s.q_verify_worlds.load(std::memory_order_relaxed);
  snap.funnel_stage = s.q_funnel_stage.load(std::memory_order_relaxed);
  const int64_t e2 = s.q_epoch.load(std::memory_order_acquire);
  if (e2 != e1) return InFlightSnapshot{};  // torn by a begin/end; skip
  snap.in_flight = true;
  return snap;
}

void FlightRecorder::DumpSlot(int fd, int slot, bool redact, char* buf,
                              int* len) const {
  const Slot& s = slots_[static_cast<size_t>(slot)];
  const int64_t head = s.head.load(std::memory_order_acquire);
  SinkRaw(fd, buf, len, "{\"slot\":");
  SinkInt(fd, buf, len, slot);
  SinkRaw(fd, buf, len, ",\"os_tid\":");
  SinkInt(fd, buf, len,
          redact ? 0 : s.os_tid.load(std::memory_order_relaxed));
  SinkRaw(fd, buf, len, ",\"recorded\":");
  SinkInt(fd, buf, len, head);
  SinkRaw(fd, buf, len, ",\"events\":[");
  const int64_t first =
      head > kEventsPerThread ? head - kEventsPerThread : 0;
  bool first_out = true;
  for (int64_t i = first; i < head; ++i) {
    const std::atomic<int64_t>* w =
        &s.words[static_cast<size_t>(i % kEventsPerThread) * kWordsPerEvent];
    const int64_t s1 = w[0].load(std::memory_order_acquire);
    if (s1 != i + 1) continue;  // overwritten or mid-write: skip
    const int64_t ts = w[1].load(std::memory_order_relaxed);
    const int64_t kind = w[2].load(std::memory_order_relaxed);
    const int64_t a = w[3].load(std::memory_order_relaxed);
    const int64_t b = w[4].load(std::memory_order_relaxed);
    const int64_t s2 = w[0].load(std::memory_order_acquire);
    if (s2 != s1) continue;  // torn by a live writer: skip
    if (!first_out) SinkRaw(fd, buf, len, ",");
    first_out = false;
    SinkRaw(fd, buf, len, "{\"seq\":");
    SinkInt(fd, buf, len, s1);
    SinkRaw(fd, buf, len, ",\"ts_ns\":");
    SinkInt(fd, buf, len, redact ? 0 : ts);
    SinkRaw(fd, buf, len, ",\"kind\":\"");
    SinkRaw(fd, buf, len, FlightEventName(static_cast<FlightEvent>(kind)));
    SinkRaw(fd, buf, len, "\",\"a\":");
    SinkInt(fd, buf, len, a);
    SinkRaw(fd, buf, len, ",\"b\":");
    SinkInt(fd, buf, len, b);
    SinkRaw(fd, buf, len, "}");
  }
  SinkRaw(fd, buf, len, "]}");
}

void FlightRecorder::DumpToFd(int fd, const FlightDumpOptions& options) const {
  char buf[kSinkBufBytes];
  int len = 0;
  SinkRaw(fd, buf, &len,
          "{\"schema\":\"ujoin.flight_record\",\"schema_version\":1,"
          "\"reason\":\"");
  SinkRaw(fd, buf, &len, options.reason);
  SinkRaw(fd, buf, &len, "\",\"signal\":");
  SinkInt(fd, buf, &len, options.signal);
  SinkRaw(fd, buf, &len, ",\"build\":{\"compiler\":\"");
  SinkRaw(fd, buf, &len, __VERSION__);
  SinkRaw(fd, buf, &len, "\",\"simd_isa\":\"");
  SinkRaw(fd, buf, &len, simd::ActiveIsaName());
  SinkRaw(fd, buf, &len, "\"},\"dropped_events\":");
  SinkInt(fd, buf, &len, dropped_.load(std::memory_order_relaxed));
  SinkRaw(fd, buf, &len, ",\"threads_registered\":");
  const int used = slots_used();
  SinkInt(fd, buf, &len, used);
  SinkRaw(fd, buf, &len, ",\"registry\":{");
  for (int k = 0; k < kNumFlightEvents; ++k) {
    if (k > 0) SinkRaw(fd, buf, &len, ",");
    SinkRaw(fd, buf, &len, "\"");
    SinkRaw(fd, buf, &len, kFlightEventNames[k]);
    SinkRaw(fd, buf, &len, "\":");
    SinkInt(fd, buf, &len,
            kind_counts_[static_cast<size_t>(k)].load(
                std::memory_order_relaxed));
  }
  SinkRaw(fd, buf, &len, "},\"threads\":[");
  for (int slot = 0; slot < used; ++slot) {
    if (slot > 0) SinkRaw(fd, buf, &len, ",");
    DumpSlot(fd, slot, options.redact_timing, buf, &len);
  }
  SinkRaw(fd, buf, &len, "]}\n");
  SinkFlush(fd, buf, &len);
}

bool InstallCrashDump(const char* path) {
  const int fd = open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  const int old = g_crash_fd.exchange(fd, std::memory_order_relaxed);
  if (old >= 0) close(old);
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = &CrashDumpHandler;
  sigemptyset(&sa.sa_mask);
  // One shot: the handler dumps, then the re-raise hits the restored
  // default disposition, so a crash inside the dump cannot recurse.
  sa.sa_flags = static_cast<int>(SA_RESETHAND);
  sigaction(SIGSEGV, &sa, nullptr);
  sigaction(SIGABRT, &sa, nullptr);
  sigaction(SIGBUS, &sa, nullptr);
  return true;
}

bool DumpFlightRecord(const char* path, const FlightDumpOptions& options) {
  const int fd = open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  GlobalFlightRecorder()->DumpToFd(fd, options);
  close(fd);
  return true;
}

}  // namespace obs
}  // namespace ujoin
