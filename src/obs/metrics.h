#ifndef UJOIN_OBS_METRICS_H_
#define UJOIN_OBS_METRICS_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>
#include <string>

namespace ujoin {
namespace obs {

class JsonWriter;

// ---------------------------------------------------------------------------
// Metric registry
//
// The registry is a fixed, enum-indexed set of metrics known at compile time:
// no string lookups on the hot path, no registration order to get wrong, and
// a Recorder is a flat value type whose size is a compile-time constant.
// Adding a metric means adding an enumerator here and one metadata row in
// metrics.cc; the JSON schema picks it up automatically.
//
// Naming scheme (documented in DESIGN.md "Observability"): lower_snake_case,
// with the unit as a suffix when the value is not a plain count
// (`_ns`, `_bytes`, `_ppm` = parts-per-million, `_permille`).
// ---------------------------------------------------------------------------

/// Histograms: distributions recorded per event on worker ranks.
enum class Hist : int {
  /// Wall time of one trie verification (PairVerifier::Decide), nanoseconds.
  kVerifyLatencyNs = 0,
  /// s-trie nodes explored by one verification (Section 6.2 search).
  kExploredTrieNodes,
  /// Length of one per-segment merged posting list (stage 1 of
  /// QueryCandidates), in postings.
  kMergedListLength,
  /// Candidate upper bound from Theorem 2's DP, in parts-per-million
  /// (round(1e6 * P(>= required matches))).
  kCandidateAlphaPpm,
  /// Per-wave probe imbalance: round(1000 * max_rank_ns / mean_rank_ns) for
  /// waves with at least two ranks.  1000 = perfectly balanced.
  kWaveImbalancePermille,
  /// Wall time of one whole probe (one rank in a wave, or one query),
  /// nanoseconds.
  kProbeLatencyNs,
  /// Saturating possible-world count of one verified pair: the product of
  /// per-position alternative counts over both strings.  Makes the known
  /// exponential `always_verify` blowup visible before the guard lands
  /// (ROADMAP "Guard against exponential exact verification").
  kVerifyWorldCount,
  /// Queries answered in one serve-layer batch (requests between batch
  /// separators on one connection; see src/serve/).
  kServeBatchSize,
};
inline constexpr int kNumHists = 8;

/// Counters: monotonically increasing event counts.
enum class Counter : int {
  /// Waves executed by the self-join driver.
  kWaves = 0,
  /// Probes executed (self-join ranks + cross-join probes).
  kProbes,
  /// Queries answered by SimilaritySearcher::Search/SearchMany.
  kQueries,
  /// Candidates decided from CDF bounds because the possible-world product
  /// exceeded SearchLimits::max_verify_worlds.
  kVerifyBudgetFallbacks,
  /// Candidates decided from CDF bounds because the per-query deadline
  /// (SearchLimits::deadline_ns) expired.
  kVerifyDeadlineFallbacks,
  /// Connections accepted by the serve layer (src/serve/).
  kServeConnections,
  /// Connections rejected by admission control (429-style busy response).
  kServeRejectedConnections,
  /// Request lines answered by the serve layer (including error responses).
  kServeRequests,
  /// Request lines answered with an error (malformed or oversized).
  kServeRequestErrors,
  /// Query batches completed (metric-snapshot boundaries).
  kServeBatches,
  // Per-kernel wall time of the vectorized probe-path loops (util/simd.h),
  // in nanoseconds.  Like the latency histograms these carry wall-clock
  // values, so they are excluded from cross-run bit-identity comparisons
  // (unit "ns"); their *fold* is still the deterministic int64 sum.
  /// CDF-bound filter evaluation: the banded DP cell kernel (Theorem 4).
  kKernelCdfDpNs,
  /// Stage-2 merged-list scan incl. the event-count DP kernel (Theorem 2).
  kKernelEventDpNs,
  /// Frequency-distance filter evaluation: the S-array dot kernels
  /// (Theorem 3).
  kKernelFreqDistNs,
  /// Batched probe-key fingerprinting (FNV+splitmix kernel).
  kKernelFingerprintNs,
  /// Stage-1 posting-list merge (prefetched linear/heap scan).
  kKernelMergeNs,
  /// Connections closed by the serve-layer idle keep-alive timeout
  /// (--idle-timeout-ms).
  kServeIdleClosedConnections,
  /// Stall reports captured by the watchdog (src/obs/watchdog.h).
  kWatchdogStallsCaptured,
};
inline constexpr int kNumCounters = 17;

/// Gauges: point-in-time values; Merge keeps the maximum so folds are
/// order-independent.
enum class Gauge : int {
  kThreads = 0,
  kWaveSize,
  kPeakIndexMemoryBytes,
  kCollectionSize,
};
inline constexpr int kNumGauges = 4;

/// Filter-funnel stages, in pipeline order (Section 5's cascade): each stage
/// records the candidates that entered it and the candidates that survived
/// it.  A disabled stage is a pass-through (entered == survived), so the
/// funnel shape is always a connected chain.
enum class FunnelStage : int {
  /// q-gram index probe (Theorem 2).  Enters: length-compatible pairs.
  kQgram = 0,
  /// Frequency-distance filter (Theorem 3).
  kFreqDistance,
  /// CDF-bound filter (Theorem 4).  Survivors are the accepted + undecided
  /// candidates (rejects are pruned).
  kCdfBound,
  /// Trie verification (Section 6).  Enters: pairs actually verified
  /// (CDF-accepted pairs that skip verification never enter this stage).
  /// Survives: verified pairs emitted as results.
  kVerify,
};
inline constexpr int kNumFunnelStages = 4;

/// Static metadata for one registry entry.
struct MetricInfo {
  const char* name;  ///< JSON key, lower_snake_case with unit suffix.
  const char* unit;  ///< "ns", "count", "ppm", "permille", "bytes".
  const char* help;  ///< One-line description.
};

const MetricInfo& HistInfo(Hist h);
const MetricInfo& CounterInfo(Counter c);
const MetricInfo& GaugeInfo(Gauge g);
/// `name` holds the stage label ("qgram", "freq_distance", ...).
const MetricInfo& FunnelStageInfo(FunnelStage s);

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// \brief Fixed-bucket log2-scale histogram of non-negative int64 samples.
///
/// Bucket 0 holds values <= 0; bucket b (1..63) holds values with bit width
/// b, i.e. [2^(b-1), 2^b).  All state is int64, so Merge is a plain integer
/// sum: commutative, associative, and bit-identical under any fold order —
/// the property the deterministic (wave, rank) folding relies on.  Storage
/// is a fixed inline array; recording never allocates.
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;

  void Record(int64_t value) {
    ++buckets_[static_cast<size_t>(BucketIndex(value))];
    ++count_;
    sum_ += value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }

  void Merge(const Histogram& other) {
    for (size_t b = 0; b < buckets_.size(); ++b) buckets_[b] += other.buckets_[b];
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  void Clear() { *this = Histogram(); }

  int64_t count() const { return count_; }
  int64_t sum() const { return sum_; }
  /// Minimum recorded value; meaningless when count() == 0.
  int64_t min() const { return min_; }
  int64_t max() const { return max_; }
  int64_t bucket(int b) const { return buckets_[static_cast<size_t>(b)]; }

  /// Bucket index for a value: 0 for value <= 0, else its bit width
  /// (clamped to the last bucket, which is unreachable for int64 inputs).
  static int BucketIndex(int64_t value) {
    if (value <= 0) return 0;
    int width = 0;
    for (uint64_t v = static_cast<uint64_t>(value); v != 0; v >>= 1) ++width;
    return width < kNumBuckets ? width : kNumBuckets - 1;
  }

  /// Inclusive lower bound of bucket b (0 for bucket 0, else 2^(b-1)).
  static int64_t BucketLowerBound(int b) {
    return b <= 0 ? 0 : int64_t{1} << (b - 1);
  }

  /// Estimate of the p-quantile (p in [0, 1]): the lower bound of the bucket
  /// holding the rank-ceil(p * count) sample, clamped to [min, max].  Exact
  /// for the distribution of bucket lower bounds; within one power of two of
  /// the true quantile otherwise.
  int64_t Percentile(double p) const;

  bool operator==(const Histogram& other) const {
    return buckets_ == other.buckets_ && count_ == other.count_ &&
           sum_ == other.sum_ && min_ == other.min_ && max_ == other.max_;
  }

 private:
  std::array<int64_t, kNumBuckets> buckets_{};
  int64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = std::numeric_limits<int64_t>::max();
  int64_t max_ = std::numeric_limits<int64_t>::min();
};

// ---------------------------------------------------------------------------
// Recorder
// ---------------------------------------------------------------------------

/// \brief One rank's (or one run's) metric state: every registry histogram,
/// counter, and gauge, inline.
///
/// A Recorder is a flat value type (~3 KiB) with no heap state: recording is
/// a few integer ops and never allocates, which is how instrumentation stays
/// inside the steady-state zero-allocation guarantee of the probe path.
/// Drivers give each worker rank its own Recorder and fold them with Merge
/// in the same deterministic (wave, rank) order as JoinStats::Merge; because
/// all state is int64, the folded totals are bit-identical for every thread
/// count and fold order.
///
/// Recording is disabled by default in the sense that no Recorder is
/// attached: pipeline hooks take a `Recorder*` that is null unless the
/// caller opted in (JoinOptions::metrics, QueryWorkspace::obs), and the
/// UJOIN_OBS_* macros reduce to one null check.
class Recorder {
 public:
  void RecordHist(Hist h, int64_t value) {
    hists_[static_cast<size_t>(h)].Record(value);
  }
  void AddCounter(Counter c, int64_t delta = 1) {
    counters_[static_cast<size_t>(c)] += delta;
  }
  void SetGauge(Gauge g, int64_t value) {
    gauges_[static_cast<size_t>(g)] =
        std::max(gauges_[static_cast<size_t>(g)], value);
  }
  /// Adds one probe's candidate flow through funnel stage `s`: `entered`
  /// candidates reached the stage, `survived` of them passed it.
  void AddFunnel(FunnelStage s, int64_t entered, int64_t survived) {
    funnel_entered_[static_cast<size_t>(s)] += entered;
    funnel_survived_[static_cast<size_t>(s)] += survived;
  }

  /// Folds `other` into this recorder: histograms and counters add, gauges
  /// take the max.  Integer-only state makes the result independent of fold
  /// order.
  void Merge(const Recorder& other);

  void Clear() { *this = Recorder(); }

  const Histogram& hist(Hist h) const {
    return hists_[static_cast<size_t>(h)];
  }
  int64_t counter(Counter c) const {
    return counters_[static_cast<size_t>(c)];
  }
  int64_t gauge(Gauge g) const { return gauges_[static_cast<size_t>(g)]; }
  int64_t funnel_entered(FunnelStage s) const {
    return funnel_entered_[static_cast<size_t>(s)];
  }
  int64_t funnel_survived(FunnelStage s) const {
    return funnel_survived_[static_cast<size_t>(s)];
  }

  bool operator==(const Recorder& other) const {
    return hists_ == other.hists_ && counters_ == other.counters_ &&
           gauges_ == other.gauges_ &&
           funnel_entered_ == other.funnel_entered_ &&
           funnel_survived_ == other.funnel_survived_;
  }

  /// Appends the metrics JSON object (schema documented in DESIGN.md
  /// "Observability"; versioned via kMetricsSchemaVersion) as a value.
  void AppendJson(JsonWriter* w) const;

  /// Renders AppendJson into a standalone string.
  std::string ToJson() const;

 private:
  std::array<Histogram, kNumHists> hists_{};
  std::array<int64_t, kNumCounters> counters_{};
  std::array<int64_t, kNumGauges> gauges_{};
  std::array<int64_t, kNumFunnelStages> funnel_entered_{};
  std::array<int64_t, kNumFunnelStages> funnel_survived_{};
};

/// Version of the "metrics" JSON object emitted by Recorder::AppendJson.
inline constexpr int kMetricsSchemaVersion = 1;

}  // namespace obs
}  // namespace ujoin

#endif  // UJOIN_OBS_METRICS_H_
