#ifndef UJOIN_OBS_REPORT_H_
#define UJOIN_OBS_REPORT_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace ujoin {
namespace obs {

/// Schema identifier and version of the run-report envelope.  Bump the
/// version on any incompatible key change; the schema is documented in
/// DESIGN.md "Observability".
inline constexpr const char* kRunReportSchema = "ujoin.run_report";
inline constexpr int kRunReportSchemaVersion = 1;

/// \brief One top-level section of a run report: a key plus a pre-rendered
/// JSON value.
///
/// Sections keep the envelope generic: obs does not depend on JoinStats or
/// JoinOptions; callers serialize those with their own ToJson and pass the
/// bytes here.  `json` must be a complete, valid JSON value.
struct ReportSection {
  std::string key;
  std::string json;
};

/// \brief Renders the run-report envelope shared by `ujoin_cli
/// join|search --metrics-out` and every BENCH_*.json:
///
///   {"schema":"ujoin.run_report","schema_version":1,
///    "command":<command>, <sections in order>}
///
/// Section keys in common use: "options", "stats" (JoinStats::ToJson),
/// "metrics" (Recorder::ToJson), "results" (bench-specific measurements).
/// Serialization is deterministic: same inputs, same bytes.
std::string RenderRunReport(std::string_view command,
                            const std::vector<ReportSection>& sections);

/// Writes RenderRunReport to `path`.
Status WriteRunReport(const std::string& path, std::string_view command,
                      const std::vector<ReportSection>& sections);

}  // namespace obs
}  // namespace ujoin

#endif  // UJOIN_OBS_REPORT_H_
