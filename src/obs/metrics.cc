#include "obs/metrics.h"

#include <cmath>

#include "obs/json_writer.h"

namespace ujoin {
namespace obs {

namespace {

constexpr MetricInfo kHistInfo[kNumHists] = {
    {"verify_latency_ns", "ns", "wall time of one trie verification"},
    {"explored_trie_nodes", "count",
     "s-trie nodes explored by one verification"},
    {"merged_list_length", "count",
     "length of one per-segment merged posting list"},
    {"candidate_alpha_ppm", "ppm",
     "candidate upper bound from the q-gram DP, parts-per-million"},
    {"wave_imbalance_permille", "permille",
     "per-wave probe imbalance, 1000*max/mean over ranks"},
    {"probe_latency_ns", "ns", "wall time of one probe or query"},
    {"verify_world_count", "count",
     "saturating possible-world count of one verified pair"},
    {"serve_batch_size", "count",
     "queries answered in one serve-layer batch"},
};

constexpr MetricInfo kCounterInfo[kNumCounters] = {
    {"waves", "count", "waves executed by the self-join driver"},
    {"probes", "count", "probes executed against the segment index"},
    {"queries", "count", "similarity-search queries answered"},
    {"verify_budget_fallbacks", "count",
     "candidates decided from CDF bounds under the world-count budget"},
    {"verify_deadline_fallbacks", "count",
     "candidates decided from CDF bounds after the per-query deadline"},
    {"serve_connections", "count", "connections accepted by the serve layer"},
    {"serve_rejected_connections", "count",
     "connections rejected by admission control"},
    {"serve_requests", "count", "request lines answered by the serve layer"},
    {"serve_request_errors", "count",
     "request lines answered with an error (malformed or oversized)"},
    {"serve_batches", "count",
     "query batches completed (metric-snapshot boundaries)"},
    {"kernel_cdf_dp_ns", "ns",
     "wall time in the CDF-bound filter (banded DP cell kernel)"},
    {"kernel_event_dp_ns", "ns",
     "wall time in the stage-2 scan incl. the event-count DP kernel"},
    {"kernel_freq_dist_ns", "ns",
     "wall time in the frequency-distance filter (S-array dot kernels)"},
    {"kernel_fingerprint_ns", "ns",
     "wall time batch-fingerprinting probe keys"},
    {"kernel_merge_ns", "ns",
     "wall time in the stage-1 posting-list merge (prefetched scan)"},
    {"serve_idle_closed_connections", "count",
     "connections closed by the idle keep-alive timeout"},
    {"watchdog_stalls_captured", "count",
     "stall reports captured by the watchdog"},
};

constexpr MetricInfo kGaugeInfo[kNumGauges] = {
    {"threads", "count", "worker threads used"},
    {"wave_size", "count", "strings per self-join wave"},
    {"peak_index_memory_bytes", "bytes", "peak segment-index memory"},
    {"collection_size", "count", "strings in the joined collection"},
};

constexpr MetricInfo kFunnelInfo[kNumFunnelStages] = {
    {"qgram", "count", "q-gram index probe (Theorem 2)"},
    {"freq_distance", "count", "frequency-distance filter (Theorem 3)"},
    {"cdf_bound", "count", "CDF-bound filter (Theorem 4)"},
    {"verify", "count", "trie verification (Section 6)"},
};

void AppendHistogramJson(const Histogram& h, const MetricInfo& info,
                         JsonWriter* w) {
  w->BeginObject();
  w->Key("unit");
  w->String(info.unit);
  w->Key("count");
  w->Int(h.count());
  w->Key("sum");
  w->Int(h.sum());
  if (h.count() > 0) {
    w->Key("min");
    w->Int(h.min());
    w->Key("max");
    w->Int(h.max());
    w->Key("p50");
    w->Int(h.Percentile(0.50));
    w->Key("p90");
    w->Int(h.Percentile(0.90));
    w->Key("p99");
    w->Int(h.Percentile(0.99));
  }
  // Sparse bucket encoding: [inclusive lower bound, count] for non-empty
  // buckets only, in ascending bound order.
  w->Key("buckets");
  w->BeginArray();
  for (int b = 0; b < Histogram::kNumBuckets; ++b) {
    if (h.bucket(b) == 0) continue;
    w->BeginArray();
    w->Int(Histogram::BucketLowerBound(b));
    w->Int(h.bucket(b));
    w->EndArray();
  }
  w->EndArray();
  w->EndObject();
}

}  // namespace

const MetricInfo& HistInfo(Hist h) {
  return kHistInfo[static_cast<size_t>(h)];
}

const MetricInfo& CounterInfo(Counter c) {
  return kCounterInfo[static_cast<size_t>(c)];
}

const MetricInfo& GaugeInfo(Gauge g) {
  return kGaugeInfo[static_cast<size_t>(g)];
}

const MetricInfo& FunnelStageInfo(FunnelStage s) {
  return kFunnelInfo[static_cast<size_t>(s)];
}

int64_t Histogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  const double clamped = std::min(std::max(p, 0.0), 1.0);
  const int64_t target =
      std::max<int64_t>(1, static_cast<int64_t>(std::ceil(clamped *
                                                static_cast<double>(count_))));
  int64_t cumulative = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    cumulative += buckets_[static_cast<size_t>(b)];
    if (cumulative >= target) {
      return std::min(std::max(BucketLowerBound(b), min_), max_);
    }
  }
  return max_;
}

void Recorder::Merge(const Recorder& other) {
  for (size_t h = 0; h < hists_.size(); ++h) hists_[h].Merge(other.hists_[h]);
  for (size_t c = 0; c < counters_.size(); ++c) {
    counters_[c] += other.counters_[c];
  }
  for (size_t g = 0; g < gauges_.size(); ++g) {
    gauges_[g] = std::max(gauges_[g], other.gauges_[g]);
  }
  for (size_t s = 0; s < funnel_entered_.size(); ++s) {
    funnel_entered_[s] += other.funnel_entered_[s];
    funnel_survived_[s] += other.funnel_survived_[s];
  }
}

void Recorder::AppendJson(JsonWriter* w) const {
  w->BeginObject();
  w->Key("schema_version");
  w->Int(kMetricsSchemaVersion);
  w->Key("counters");
  w->BeginObject();
  for (size_t c = 0; c < counters_.size(); ++c) {
    w->Key(kCounterInfo[c].name);
    w->Int(counters_[c]);
  }
  w->EndObject();
  w->Key("gauges");
  w->BeginObject();
  for (size_t g = 0; g < gauges_.size(); ++g) {
    w->Key(kGaugeInfo[g].name);
    w->Int(gauges_[g]);
  }
  w->EndObject();
  w->Key("histograms");
  w->BeginObject();
  for (size_t h = 0; h < hists_.size(); ++h) {
    w->Key(kHistInfo[h].name);
    AppendHistogramJson(hists_[h], kHistInfo[h], w);
  }
  w->EndObject();
  w->Key("funnel");
  w->BeginObject();
  for (size_t s = 0; s < funnel_entered_.size(); ++s) {
    w->Key(kFunnelInfo[s].name);
    w->BeginObject();
    w->Key("entered");
    w->Int(funnel_entered_[s]);
    w->Key("survived");
    w->Int(funnel_survived_[s]);
    w->EndObject();
  }
  w->EndObject();
  w->EndObject();
}

std::string Recorder::ToJson() const {
  JsonWriter w;
  AppendJson(&w);
  return w.TakeString();
}

}  // namespace obs
}  // namespace ujoin
