#ifndef UJOIN_OBS_TRACE_H_
#define UJOIN_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace ujoin {
namespace obs {

/// \brief One completed span on the run's shared steady-clock timeline.
///
/// `name` must point at storage outliving the recorder (in practice a string
/// literal); spans are recorded on hot-ish paths and must not own strings.
struct TraceEvent {
  const char* name;
  int64_t ts_ns;   ///< Start, nanoseconds since the TraceRecorder's origin.
  int64_t dur_ns;  ///< Duration in nanoseconds.
  uint32_t tid;    ///< Logical lane: 0 = driver, worker rank + 1 otherwise.
};

/// \brief Collects spans and writes them as Chrome trace-event JSON.
///
/// The recorder owns the run's clock origin: all timestamps are nanoseconds
/// since construction, taken from the same steady clock as util/Timer, so
/// spans from different threads share one timeline.  The recorder itself is
/// single-threaded — only the driver thread calls AddSpan/Append.  Worker
/// ranks record into their own SpanCollector (below), and the driver folds
/// those buffers in deterministic (wave, rank) order, mirroring how
/// JoinStats and metrics merge.
///
/// The output is the Chrome trace-event format ("X" complete events plus
/// thread-name metadata), loadable in chrome://tracing and Perfetto.
class TraceRecorder {
 public:
  TraceRecorder() : origin_(std::chrono::steady_clock::now()) {}

  /// Nanoseconds since this recorder's origin.
  int64_t NowNs() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - origin_)
        .count();
  }

  /// Records one completed span.  `name` must be a string literal (or
  /// otherwise outlive the recorder).  Driver thread only.
  void AddSpan(const char* name, int64_t ts_ns, int64_t dur_ns,
               uint32_t tid) {
    events_.push_back(TraceEvent{name, ts_ns, dur_ns, tid});
  }

  /// Appends a rank's collected spans.  Driver thread only; call in
  /// (wave, rank) order so traces are reproducibly ordered.
  void Append(const std::vector<TraceEvent>& events) {
    events_.insert(events_.end(), events.begin(), events.end());
  }

  size_t num_events() const { return events_.size(); }

  const std::vector<TraceEvent>& events() const { return events_; }

  /// Enables 1-in-`n` probe-span sampling (1 keeps every probe; 0 keeps
  /// none — useful with SetSlowKeepNs to trace only slow queries).
  /// Driver/wave spans are never sampled out — only per-probe span buffers
  /// gated through SampleProbe.  The decision for a probe is a pure function
  /// of (`seed`, probe index), so sampled traces are reproducible and
  /// identical for every thread count.  Driver thread only, before the run.
  void SetProbeSampling(int64_t n, uint64_t seed) {
    sample_n_ = n >= 0 ? n : 1;
    sample_seed_ = seed;
  }

  /// Whether the probe with global index `probe_index` keeps its spans.
  /// Const and thread-safe: callable from any rank (each call derives its
  /// own seeded Rng), and depends only on the sampling config and the index.
  bool SampleProbe(int64_t probe_index) const {
    if (sample_n_ == 1) return true;
    if (sample_n_ <= 0) return false;
    Rng rng(sample_seed_ ^
            (static_cast<uint64_t>(probe_index) + 1) * 0x9E3779B97F4A7C15ULL);
    return rng.Uniform(static_cast<uint64_t>(sample_n_)) == 0;
  }

  /// Force-keep threshold for slow probes: a probe whose wall time reaches
  /// `ns` keeps its spans regardless of the sampler's decision (0 disables).
  /// Driver thread only, before the run.
  void SetSlowKeepNs(int64_t ns) { slow_keep_ns_ = ns > 0 ? ns : 0; }

  int64_t slow_keep_ns() const { return slow_keep_ns_; }

  /// The final keep decision for one probe, combining the deterministic
  /// sampler verdict with the slow-probe threshold.  Unlike SampleProbe this
  /// depends on wall clock, so force-kept spans vary run to run — that is
  /// the point: the sampler keeps traces reproducible, the threshold makes
  /// sure the query you are hunting is never the one sampled out.
  bool KeepProbe(bool sampled, int64_t probe_ns) const {
    return sampled || (slow_keep_ns_ > 0 && probe_ns >= slow_keep_ns_);
  }

  /// Driver-side bookkeeping: call once per probe (sampled or not) so the
  /// trace metadata can report coverage.  Driver thread only.
  void NoteProbe(bool sampled) {
    ++probes_seen_;
    if (sampled) ++probes_sampled_;
  }

  int64_t sample_n() const { return sample_n_; }
  int64_t probes_seen() const { return probes_seen_; }
  int64_t probes_sampled() const { return probes_sampled_; }

  /// Renders the full Chrome trace document:
  /// {"traceEvents":[...],"displayTimeUnit":"ms"}.
  std::string ToJson() const;

  /// Writes ToJson() to `path`.
  Status WriteFile(const std::string& path) const;

 private:
  std::chrono::steady_clock::time_point origin_;
  std::vector<TraceEvent> events_;
  int64_t sample_n_ = 1;
  uint64_t sample_seed_ = 0;
  int64_t slow_keep_ns_ = 0;
  int64_t probes_seen_ = 0;
  int64_t probes_sampled_ = 0;
};

/// \brief A worker rank's private span buffer.
///
/// Ranks must not touch the shared TraceRecorder concurrently; instead each
/// rank gets a SpanCollector that shares the recorder's clock (for a common
/// timeline) but buffers spans locally.  The driver appends the buffers in
/// (wave, rank) order after the parallel phase.  A default-constructed
/// collector is disabled: NowNs() returns 0 and Span() is a no-op, so call
/// sites need no separate tracing flag.
class SpanCollector {
 public:
  SpanCollector() = default;
  SpanCollector(const TraceRecorder* clock, uint32_t tid)
      : clock_(clock), tid_(tid) {}

  bool enabled() const { return clock_ != nullptr; }

  int64_t NowNs() const { return clock_ != nullptr ? clock_->NowNs() : 0; }

  void Span(const char* name, int64_t ts_ns, int64_t dur_ns) {
    if (clock_ == nullptr) return;
    events_.push_back(TraceEvent{name, ts_ns, dur_ns, tid_});
  }

  const std::vector<TraceEvent>& events() const { return events_; }

 private:
  const TraceRecorder* clock_ = nullptr;
  uint32_t tid_ = 0;
  std::vector<TraceEvent> events_;
};

}  // namespace obs
}  // namespace ujoin

#endif  // UJOIN_OBS_TRACE_H_
