#ifndef UJOIN_OBS_SCRAPE_SERVER_H_
#define UJOIN_OBS_SCRAPE_SERVER_H_

#include <atomic>
#include <mutex>
#include <string>
#include <thread>

#include "util/status.h"

namespace ujoin {
namespace obs {

// ---------------------------------------------------------------------------
// ScrapeServer
//
// A deliberately tiny HTTP/1.0 endpoint for Prometheus scrapes: one
// listening socket on 127.0.0.1, one accept thread, one connection handled
// at a time.  It serves exactly three paths —
//
//   GET /metrics       -> the most recent snapshot pushed via UpdateMetrics
//   GET /healthz       -> "ok" (or the body set via SetHealthBody; the serve
//                         layer installs a JSON build-info block here)
//   GET /debug/slow    -> the most recent page pushed via UpdateDebugPage
//                         (404 until a page has been pushed)
//   GET /debug/stalls  -> the most recent page pushed via UpdateStallsPage
//                         (404 until a page has been pushed; the watchdog
//                         pushes after every capture, so the page is live
//                         even while the stalled query is still running)
//
// and 404s everything else.  The join/search pipeline never blocks on a
// scrape: workers do not know the server exists.  The driver renders a
// Prometheus page at its own safe points (wave boundaries, query folds) and
// pushes the finished bytes with UpdateMetrics / UpdateDebugPage; the accept
// thread serves whatever snapshot it holds under a mutex held only for a
// string copy.  Scrapes therefore observe a consistent (wave-boundary)
// snapshot, never a half-merged recorder.
// ---------------------------------------------------------------------------

class ScrapeServer {
 public:
  ScrapeServer() = default;
  ~ScrapeServer() { Stop(); }

  ScrapeServer(const ScrapeServer&) = delete;
  ScrapeServer& operator=(const ScrapeServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port, readable from
  /// port() afterwards) and starts the accept thread.  Call at most once.
  Status Start(int port);

  /// Stops the accept thread and closes the socket.  Idempotent; also run
  /// by the destructor.
  void Stop();

  /// The bound port, valid after a successful Start().
  int port() const { return port_; }

  /// Replaces the /metrics snapshot.  Callable from the driver thread while
  /// the accept thread serves; the new page is visible to the next scrape.
  void UpdateMetrics(std::string text);

  /// Replaces the /debug/slow snapshot (application/json).  Same contract
  /// as UpdateMetrics; the path 404s until the first push.
  void UpdateDebugPage(std::string json);

  /// Replaces the /debug/stalls snapshot (application/json).  Same contract
  /// as UpdateDebugPage; pushed by the watchdog after each capture.
  void UpdateStallsPage(std::string json);

  /// Replaces the /healthz body.  The default body "ok\n" is preserved when
  /// this is never called, so bare scrape endpoints (`ujoin_cli join
  /// --listen`) keep their historical health page.
  void SetHealthBody(std::string body);

  /// Snapshots served so far (across both paths); test/introspection aid.
  int64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  void Serve();
  void HandleConnection(int fd);

  int listen_fd_ = -1;
  int port_ = 0;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<int64_t> requests_served_{0};
  std::mutex mu_;
  std::string metrics_text_;        // guarded by mu_
  std::string debug_text_;          // guarded by mu_; empty = 404
  bool debug_set_ = false;          // guarded by mu_
  std::string stalls_text_;         // guarded by mu_; empty = 404
  bool stalls_set_ = false;         // guarded by mu_
  std::string health_body_ = "ok\n";  // guarded by mu_
};

}  // namespace obs
}  // namespace ujoin

#endif  // UJOIN_OBS_SCRAPE_SERVER_H_
