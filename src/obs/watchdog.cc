#include "obs/watchdog.h"

#include <algorithm>
#include <chrono>
#include <tuple>

#include "obs/json_writer.h"
#include "obs/metrics.h"

namespace ujoin {
namespace obs {

namespace {

/// Content order: every tier-2/3 field, never capture time.  Ring
/// membership and page order are a pure function of what stalled, so the
/// page compares equal across runs and client counts once the timing tier
/// is stripped.
std::tuple<int64_t, int64_t, int64_t, int64_t, int64_t, int64_t> ContentKey(
    const StallReport& r) {
  return {r.band, r.funnel_stage, r.verify_worlds, r.deadline_ns,
          r.connection, r.seq};
}

const char* StageName(int64_t stage) {
  if (stage < 0 || stage >= kNumFunnelStages) return "none";
  return FunnelStageInfo(static_cast<FunnelStage>(stage)).name;
}

}  // namespace

std::string RenderStallsPage(const std::vector<StallReport>& reports,
                             int64_t captures) {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema");
  w.String("ujoin.stalls");
  w.Key("schema_version");
  w.Int(kStallsSchemaVersion);
  w.Key("captures");
  w.Int(captures);
  w.Key("stalls");
  w.BeginArray();
  for (const StallReport& r : reports) {
    w.BeginObject();
    w.Key("band");
    w.Int(r.band);
    w.Key("funnel_stage");
    w.String(StageName(r.funnel_stage));
    w.Key("verify_worlds");
    w.Int(r.verify_worlds);
    w.Key("deadline_ns");
    w.Int(r.deadline_ns);
    w.Key("threshold_ns");
    w.Int(r.threshold_ns);
    w.Key("connection");
    w.Int(r.connection);
    w.Key("seq");
    w.Int(r.seq);
    w.Key("elapsed_ns");
    w.Int(r.elapsed_ns);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

void Watchdog::Start(const WatchdogOptions& options) {
  if (thread_.joinable()) return;
  Configure(options);
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stop_ = false;
  }
  thread_ = std::thread(&Watchdog::Loop, this);
}

void Watchdog::Stop() {
  if (!thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stop_ = true;
  }
  stop_cv_.notify_all();
  thread_.join();
}

void Watchdog::Loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(stop_mu_);
      stop_cv_.wait_for(lock, std::chrono::milliseconds(options_.poll_ms),
                        [this] { return stop_; });
      if (stop_) return;
    }
    ScanOnce(FlightRecorder::NowNs());
  }
}

void Watchdog::ScanOnce(int64_t now_ns) {
  const int used = recorder_->slots_used();
  bool captured = false;
  for (int slot = 0; slot < used; ++slot) {
    const InFlightSnapshot snap = recorder_->ReadInFlight(slot);
    if (!snap.in_flight) continue;
    const int64_t threshold =
        snap.deadline_ns > 0
            ? static_cast<int64_t>(static_cast<double>(snap.deadline_ns) *
                                   options_.deadline_multiple)
            : options_.stall_ns;
    if (threshold <= 0) continue;
    if (now_ns - snap.begin_ns <= threshold) continue;
    if (last_epoch_[slot] == snap.epoch) continue;  // already captured
    last_epoch_[slot] = snap.epoch;

    StallReport report;
    report.band = snap.band;
    report.funnel_stage = snap.funnel_stage;
    report.verify_worlds = snap.verify_worlds;
    report.deadline_ns = snap.deadline_ns;
    report.threshold_ns = threshold;
    report.connection = snap.connection;
    report.seq = snap.seq;
    report.elapsed_ns = now_ns - snap.begin_ns;
    {
      std::lock_guard<std::mutex> lock(mu_);
      reports_.push_back(report);
      std::sort(reports_.begin(), reports_.end(),
                [](const StallReport& a, const StallReport& b) {
                  return ContentKey(a) < ContentKey(b);
                });
      // Bounded ring: keep the kMaxReports smallest content keys, so the
      // retained set is arrival-order-invariant.
      if (reports_.size() > static_cast<size_t>(kMaxReports)) {
        reports_.resize(static_cast<size_t>(kMaxReports));
      }
    }
    captures_.fetch_add(1, std::memory_order_relaxed);
    recorder_->RecordEvent(FlightEvent::kStallCaptured, slot,
                           now_ns - snap.begin_ns);
    captured = true;
  }
  if (!captured) return;
  if (!options_.dump_path.empty()) {
    FlightDumpOptions dump;
    dump.reason = "watchdog";
    DumpFlightRecord(options_.dump_path.c_str(), dump);
  }
  if (push_fn_) push_fn_(StallsJson());
}

std::vector<StallReport> Watchdog::Reports() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reports_;
}

std::string Watchdog::StallsJson() const {
  return RenderStallsPage(Reports(),
                          captures_.load(std::memory_order_relaxed));
}

}  // namespace obs
}  // namespace ujoin
