#ifndef UJOIN_OBS_QUERY_LOG_H_
#define UJOIN_OBS_QUERY_LOG_H_

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/status.h"

namespace ujoin {
namespace obs {

class JsonWriter;

// ---------------------------------------------------------------------------
// Per-query diagnostics (DESIGN.md "Per-query diagnostics")
//
// The registry answers "how did the run behave"; the query log answers
// "which query was slow and why".  One QueryLogRecord per answered request
// captures the paper's q-gram -> frequency-distance -> CDF-bound -> verify
// funnel for that single query, plus the verification cost and the verdict.
//
// Records split into three determinism tiers, mirroring how the registry
// excludes `ns`-unit counters from bit-identity:
//   1. wall-clock fields (`total_ns`, `verify_ns`) — never compared;
//   2. attribution (`request_id`, `connection`, `seq`) — deterministic for a
//      fixed client topology (same clients, same query assignment), but a
//      query's (connection, seq) naturally changes when the same workload is
//      spread over a different number of connections;
//   3. query-content fields (everything else) — a pure function of the query
//      and the frozen index, bit-identical across thread and client counts.
// ---------------------------------------------------------------------------

/// \brief One answered query, as a flat POD: building and buffering a record
/// performs no heap allocation, which keeps the serve path inside the
/// steady-state zero-allocation guarantee.
struct QueryLogRecord {
  // Attribution (determinism tier 2).
  uint64_t request_id = 0;  ///< QueryRequestId(connection, seq).
  int64_t connection = 0;   ///< Connection ordinal (accept order; 0 = batch).
  int64_t seq = 0;          ///< Query ordinal within the connection, from 1.

  // Query content (determinism tier 3).
  int64_t query_length = 0;
  int64_t length_band = 0;  ///< Histogram::BucketIndex(query_length).
  int64_t funnel_entered[kNumFunnelStages] = {};
  int64_t funnel_survived[kNumFunnelStages] = {};
  int64_t candidates = 0;      ///< q-gram stage survivors.
  int64_t verify_worlds = 0;   ///< Sum of verified pairs' world products.
  int64_t budget_fallbacks = 0;
  int64_t deadline_fallbacks = 0;
  int64_t hits = 0;
  bool inexact = false;
  bool error = false;

  // Wall clock (determinism tier 1; excluded from every comparison).
  int64_t total_ns = 0;
  int64_t verify_ns = 0;
};

/// Version of the "ujoin.query_log" JSONL line schema.
inline constexpr int kQueryLogSchemaVersion = 1;

/// Deterministic request id: splitmix64 over (connection << 32) ^ seq.
/// Reimplemented (with 64-bit masking) by tools/validate_query_log.py, so
/// the mixing constants are part of the schema.
inline uint64_t QueryRequestId(int64_t connection, int64_t seq) {
  uint64_t x = (static_cast<uint64_t>(connection) << 32) ^
               static_cast<uint64_t>(seq);
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Builds a record from one query's private recorder (funnel deltas,
/// candidate count, verify worlds).  Allocation-free.  The caller overlays
/// the JoinStats-derived fields (fallback counts, inexact flag) and the
/// wall-clock fields afterwards — those come from sources outside obs/, and
/// keeping them caller-filled means they survive `-DUJOIN_OBS=OFF`, which
/// zeroes everything recorder-derived.
QueryLogRecord MakeQueryLogRecord(const Recorder& rec, int64_t connection,
                                  int64_t seq, int64_t query_length,
                                  int64_t hits, bool error);

/// Appends the record as one JSON value (fixed key order; see
/// RenderQueryLogLine for the newline-terminated JSONL form).
void AppendQueryLogRecord(const QueryLogRecord& rec, JsonWriter* w);

/// The record's JSONL line, newline-terminated.  Byte-deterministic.
std::string RenderQueryLogLine(const QueryLogRecord& rec);

/// The record's query-content fields only (no attribution, no timing),
/// rendered as one JSON object.  Two queries with equal content are
/// interchangeable for the slow-query ring's tie-breaking, which is what
/// makes the ring's deterministic fields client-count invariant.
std::string DeterministicContentJson(const QueryLogRecord& rec);

/// \brief JSONL sink for query-log records: one mutex, one output stream.
///
/// Writers render under the lock into a reused scratch buffer; the intended
/// callers batch their writes (QueryLogBuffer::FlushTo at batch boundaries),
/// so the lock is taken once per batch, not once per query.
class QueryLog {
 public:
  QueryLog() = default;

  /// Opens (truncates) `path`.  Call once, before any Write.
  Status Open(const std::string& path);

  bool is_open() const { return open_; }

  /// Renders and writes one record.
  void Write(const QueryLogRecord& rec);

  /// Renders and writes `count` records under one lock acquisition.
  void WriteAll(const QueryLogRecord* recs, size_t count);

  /// Flushes and closes; reports stream failure.  Idempotent.
  Status Close();

  /// Records written so far.
  int64_t records_written() const;

 private:
  mutable std::mutex mu_;
  std::ofstream out_;
  bool open_ = false;
  int64_t written_ = 0;
};

/// \brief Fixed-capacity per-connection record buffer.
///
/// The serve path appends one record per answered query — allocation-free
/// once constructed, because the storage is reserved up front — and flushes
/// to the shared QueryLog at batch boundaries (or when full).  One buffer
/// per connection, never shared.
class QueryLogBuffer {
 public:
  static constexpr size_t kDefaultCapacity = 256;

  explicit QueryLogBuffer(size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {
    records_.reserve(capacity_);
  }

  /// Appends a record.  Never allocates; a full buffer drops the record and
  /// counts it (callers flush on full(), so drops indicate misuse).
  void Add(const QueryLogRecord& rec) {
    if (records_.size() < capacity_) {
      records_.push_back(rec);
    } else {
      ++dropped_;
    }
  }

  bool full() const { return records_.size() >= capacity_; }
  size_t size() const { return records_.size(); }
  size_t capacity() const { return capacity_; }
  int64_t dropped() const { return dropped_; }
  const QueryLogRecord* data() const { return records_.data(); }

  void Clear() { records_.clear(); }

  /// Writes the buffered records to `log` (no-op when null or empty) and
  /// clears the buffer.  Capacity is retained, so the next Add stays
  /// allocation-free.
  void FlushTo(QueryLog* log) {
    if (log != nullptr && !records_.empty()) {
      log->WriteAll(records_.data(), records_.size());
    }
    records_.clear();
  }

 private:
  size_t capacity_;
  std::vector<QueryLogRecord> records_;
  int64_t dropped_ = 0;
};

/// \brief Fixed-size ring of the N worst queries by one key.
///
/// Entries are kept sorted by (key descending, deterministic content
/// ascending).  The content tie-break makes the kept multiset of
/// (key, content) pairs a pure top-N of everything offered, independent of
/// arrival order — which is what lets the verify-cost ring stay
/// client-count invariant (the latency ring's key is wall clock, so it
/// makes no such promise).
class SlowQueryRing {
 public:
  enum class Key {
    kVerifyWorlds,  ///< Deterministic verify cost.
    kLatencyNs,     ///< Wall clock (tier 1: not compared).
  };

  static constexpr size_t kDefaultCapacity = 8;

  explicit SlowQueryRing(Key key, size_t capacity = kDefaultCapacity)
      : key_(key), capacity_(capacity) {}

  /// Considers one record for the ring.
  void Offer(const QueryLogRecord& rec);

  Key key() const { return key_; }
  size_t capacity() const { return capacity_; }
  size_t size() const { return entries_.size(); }
  const QueryLogRecord& record(size_t i) const { return entries_[i].rec; }

  /// Snapshot of the kept records, worst first.
  std::vector<QueryLogRecord> Records() const;

  /// Appends the ring as a JSON array of records, worst first.
  void AppendJson(JsonWriter* w) const;

 private:
  struct Entry {
    int64_t key;
    QueryLogRecord rec;
    std::string content;  ///< DeterministicContentJson, cached for ordering.
  };

  int64_t KeyOf(const QueryLogRecord& rec) const {
    return key_ == Key::kVerifyWorlds ? rec.verify_worlds : rec.total_ns;
  }

  Key key_;
  size_t capacity_;
  std::vector<Entry> entries_;  // sorted: key desc, content asc
};

/// Version of the "ujoin.slow_queries" /debug/slow page schema.
inline constexpr int kSlowQueriesSchemaVersion = 1;

/// Renders the /debug/slow page: both rings plus schema/version/capacity.
std::string RenderSlowQueriesPage(const SlowQueryRing& by_verify_worlds,
                                  const SlowQueryRing& by_latency);

}  // namespace obs
}  // namespace ujoin

#endif  // UJOIN_OBS_QUERY_LOG_H_
