#include "obs/query_log.h"

#include <algorithm>

#include "obs/json_writer.h"

namespace ujoin {
namespace obs {

namespace {

/// The record's content fields, shared by the full line and the
/// content-only rendering (attribution and timing are what differ).
void AppendContentFields(const QueryLogRecord& rec, JsonWriter* w) {
  w->Key("query_length");
  w->Int(rec.query_length);
  w->Key("length_band");
  w->Int(rec.length_band);
  w->Key("funnel");
  w->BeginObject();
  for (int s = 0; s < kNumFunnelStages; ++s) {
    w->Key(FunnelStageInfo(static_cast<FunnelStage>(s)).name);
    w->BeginObject();
    w->Key("entered");
    w->Int(rec.funnel_entered[s]);
    w->Key("survived");
    w->Int(rec.funnel_survived[s]);
    w->EndObject();
  }
  w->EndObject();
  w->Key("candidates");
  w->Int(rec.candidates);
  w->Key("verify_worlds");
  w->Int(rec.verify_worlds);
  w->Key("budget_fallbacks");
  w->Int(rec.budget_fallbacks);
  w->Key("deadline_fallbacks");
  w->Int(rec.deadline_fallbacks);
  w->Key("hits");
  w->Int(rec.hits);
  w->Key("status");
  w->String(rec.error ? "error" : "ok");
  w->Key("inexact");
  w->Bool(rec.inexact);
}

}  // namespace

QueryLogRecord MakeQueryLogRecord(const Recorder& rec, int64_t connection,
                                  int64_t seq, int64_t query_length,
                                  int64_t hits, bool error) {
  QueryLogRecord out;
  out.request_id = QueryRequestId(connection, seq);
  out.connection = connection;
  out.seq = seq;
  out.query_length = query_length;
  out.length_band = Histogram::BucketIndex(query_length);
  for (int s = 0; s < kNumFunnelStages; ++s) {
    out.funnel_entered[s] = rec.funnel_entered(static_cast<FunnelStage>(s));
    out.funnel_survived[s] = rec.funnel_survived(static_cast<FunnelStage>(s));
  }
  out.candidates = rec.funnel_survived(FunnelStage::kQgram);
  out.verify_worlds = rec.hist(Hist::kVerifyWorldCount).sum();
  out.budget_fallbacks = rec.counter(Counter::kVerifyBudgetFallbacks);
  out.deadline_fallbacks = rec.counter(Counter::kVerifyDeadlineFallbacks);
  out.hits = hits;
  out.inexact = out.budget_fallbacks + out.deadline_fallbacks > 0;
  out.error = error;
  return out;
}

void AppendQueryLogRecord(const QueryLogRecord& rec, JsonWriter* w) {
  w->BeginObject();
  w->Key("schema");
  w->String("ujoin.query_log");
  w->Key("schema_version");
  w->Int(kQueryLogSchemaVersion);
  w->Key("request_id");
  w->UInt(rec.request_id);
  w->Key("connection");
  w->Int(rec.connection);
  w->Key("seq");
  w->Int(rec.seq);
  AppendContentFields(rec, w);
  w->Key("timing");
  w->BeginObject();
  w->Key("total_ns");
  w->Int(rec.total_ns);
  w->Key("verify_ns");
  w->Int(rec.verify_ns);
  w->EndObject();
  w->EndObject();
}

std::string RenderQueryLogLine(const QueryLogRecord& rec) {
  JsonWriter w;
  AppendQueryLogRecord(rec, &w);
  std::string out = w.TakeString();
  out += '\n';
  return out;
}

std::string DeterministicContentJson(const QueryLogRecord& rec) {
  JsonWriter w;
  w.BeginObject();
  AppendContentFields(rec, &w);
  w.EndObject();
  return w.TakeString();
}

Status QueryLog::Open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (open_) return Status::FailedPrecondition("query log already open");
  out_.open(path, std::ios::out | std::ios::trunc | std::ios::binary);
  if (!out_.is_open()) {
    return Status::IoError("cannot open query log " + path);
  }
  open_ = true;
  return Status::OK();
}

void QueryLog::Write(const QueryLogRecord& rec) { WriteAll(&rec, 1); }

void QueryLog::WriteAll(const QueryLogRecord* recs, size_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!open_) return;
  for (size_t i = 0; i < count; ++i) {
    const std::string line = RenderQueryLogLine(recs[i]);
    out_.write(line.data(), static_cast<std::streamsize>(line.size()));
    ++written_;
  }
}

Status QueryLog::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!open_) return Status::OK();
  open_ = false;
  out_.flush();
  const bool failed = out_.fail();
  out_.close();
  if (failed) return Status::IoError("query log write failed");
  return Status::OK();
}

int64_t QueryLog::records_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return written_;
}

void SlowQueryRing::Offer(const QueryLogRecord& rec) {
  if (capacity_ == 0) return;
  const int64_t key = KeyOf(rec);
  if (entries_.size() >= capacity_ && key < entries_.back().key) return;
  Entry entry{key, rec, DeterministicContentJson(rec)};
  // Insert position under (key desc, content asc): the first slot whose
  // entry sorts after the new one.
  const auto after = [](const Entry& a, const Entry& b) {
    if (a.key != b.key) return a.key > b.key;
    return a.content < b.content;
  };
  auto it = entries_.begin();
  while (it != entries_.end() && !after(entry, *it)) ++it;
  entries_.insert(it, std::move(entry));
  if (entries_.size() > capacity_) entries_.pop_back();
}

std::vector<QueryLogRecord> SlowQueryRing::Records() const {
  std::vector<QueryLogRecord> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) out.push_back(entry.rec);
  return out;
}

void SlowQueryRing::AppendJson(JsonWriter* w) const {
  w->BeginArray();
  for (const Entry& entry : entries_) AppendQueryLogRecord(entry.rec, w);
  w->EndArray();
}

std::string RenderSlowQueriesPage(const SlowQueryRing& by_verify_worlds,
                                  const SlowQueryRing& by_latency) {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema");
  w.String("ujoin.slow_queries");
  w.Key("schema_version");
  w.Int(kSlowQueriesSchemaVersion);
  w.Key("capacity");
  w.Int(static_cast<int64_t>(by_verify_worlds.capacity()));
  w.Key("by_verify_worlds");
  by_verify_worlds.AppendJson(&w);
  w.Key("by_latency_ns");
  by_latency.AppendJson(&w);
  w.EndObject();
  std::string out = w.TakeString();
  out += '\n';
  return out;
}

}  // namespace obs
}  // namespace ujoin
