#ifndef UJOIN_OBS_JSON_WRITER_H_
#define UJOIN_OBS_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ujoin {
namespace obs {

/// \brief Minimal deterministic JSON emitter.
///
/// Every machine-readable artefact in ujoin (run reports, metrics dumps,
/// Chrome traces, BENCH_*.json) funnels through this writer so that the same
/// logical content always serializes to the same bytes: keys are emitted in
/// the order the caller writes them, there is no whitespace, and doubles use
/// the shortest decimal form that round-trips through strtod (tried at 15,
/// 16, then 17 significant digits).  That byte-stability is what lets tests
/// compare whole documents with string equality.
///
/// The writer is structural, not schema-aware: callers are responsible for
/// pairing Begin/End calls and for writing a Key before each value inside an
/// object.  Misuse is a programming error; the writer keeps enough state to
/// place commas correctly but does not validate nesting.
class JsonWriter {
 public:
  JsonWriter() { levels_.reserve(8); }

  void BeginObject() {
    BeforeValue();
    out_ += '{';
    levels_.push_back({/*is_object=*/true, /*has_items=*/false});
  }
  void EndObject() {
    out_ += '}';
    levels_.pop_back();
  }
  void BeginArray() {
    BeforeValue();
    out_ += '[';
    levels_.push_back({/*is_object=*/false, /*has_items=*/false});
  }
  void EndArray() {
    out_ += ']';
    levels_.pop_back();
  }

  /// Writes an object key; the next value call provides its value.
  void Key(std::string_view key);

  void String(std::string_view value);
  void Int(int64_t value);
  void UInt(uint64_t value);
  /// Non-finite doubles have no JSON spelling and are emitted as null.
  void Double(double value);
  void Bool(bool value);
  void Null();

  /// Splices a pre-rendered JSON value verbatim (used to assemble run
  /// reports from sections serialized by different modules).
  void RawValue(std::string_view json);

  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

  /// Shortest decimal form of `value` that round-trips exactly.  Exposed for
  /// callers that format doubles outside a document (tests, ToString).
  static std::string FormatDouble(double value);

 private:
  struct Level {
    bool is_object;
    bool has_items;
  };

  // Emits the separating comma for container members.  A value following a
  // Key must not add a comma (Key already did).
  void BeforeValue() {
    if (pending_key_) {
      pending_key_ = false;
      return;
    }
    if (levels_.empty()) return;
    if (levels_.back().has_items) out_ += ',';
    levels_.back().has_items = true;
  }

  void AppendEscaped(std::string_view s);

  std::string out_;
  std::vector<Level> levels_;
  bool pending_key_ = false;
};

}  // namespace obs
}  // namespace ujoin

#endif  // UJOIN_OBS_JSON_WRITER_H_
