#include "obs/json_writer.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ujoin {
namespace obs {

void JsonWriter::Key(std::string_view key) {
  if (!levels_.empty()) {
    if (levels_.back().has_items) out_ += ',';
    levels_.back().has_items = true;
  }
  AppendEscaped(key);
  out_ += ':';
  pending_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  BeforeValue();
  AppendEscaped(value);
}

void JsonWriter::Int(int64_t value) {
  BeforeValue();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  out_ += buf;
}

void JsonWriter::UInt(uint64_t value) {
  BeforeValue();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  out_ += buf;
}

void JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";
    return;
  }
  out_ += FormatDouble(value);
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
}

void JsonWriter::RawValue(std::string_view json) {
  BeforeValue();
  out_.append(json.data(), json.size());
}

std::string JsonWriter::FormatDouble(double value) {
  char buf[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  // %g can print bare exponents or integers; both are valid JSON numbers as
  // long as there is no "inf"/"nan" (excluded by the isfinite check above).
  return std::string(buf);
}

void JsonWriter::AppendEscaped(std::string_view s) {
  out_ += '"';
  for (char c : s) {
    const unsigned char uc = static_cast<unsigned char>(c);
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\r':
        out_ += "\\r";
        break;
      case '\t':
        out_ += "\\t";
        break;
      default:
        if (uc < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", uc);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

}  // namespace obs
}  // namespace ujoin
