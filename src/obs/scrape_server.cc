#include "obs/scrape_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>

namespace ujoin {
namespace obs {

namespace {

/// Sends all of `data`, tolerating short writes.  MSG_NOSIGNAL turns a peer
/// that hung up into an error return instead of SIGPIPE.
void SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = send(fd, data.data() + sent, data.size() - sent,
                           MSG_NOSIGNAL);
    if (n <= 0) return;
    sent += static_cast<size_t>(n);
  }
}

std::string HttpResponse(const char* status_line, const char* content_type,
                         const std::string& body) {
  std::string r;
  r.reserve(body.size() + 128);
  r.append("HTTP/1.0 ");
  r.append(status_line);
  r.append("\r\nContent-Type: ");
  r.append(content_type);
  r.append("\r\nContent-Length: ");
  r.append(std::to_string(body.size()));
  r.append("\r\nConnection: close\r\n\r\n");
  r.append(body);
  return r;
}

}  // namespace

Status ScrapeServer::Start(int port) {
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::IoError("socket() failed");
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
           sizeof(addr)) != 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    // std::strerror may return a static buffer; workers share this process.
    return Status::IoError("bind(127.0.0.1:" + std::to_string(port) +
                           ") failed: " +
                           std::system_category().message(errno));
  }
  if (listen(listen_fd_, 8) != 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("listen() failed");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = static_cast<int>(ntohs(bound.sin_port));
  } else {
    port_ = port;
  }
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread(&ScrapeServer::Serve, this);
  return Status::OK();
}

void ScrapeServer::Stop() {
  if (!thread_.joinable()) return;
  stop_.store(true, std::memory_order_relaxed);
  thread_.join();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
}

void ScrapeServer::UpdateMetrics(std::string text) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_text_ = std::move(text);
}

void ScrapeServer::UpdateDebugPage(std::string json) {
  std::lock_guard<std::mutex> lock(mu_);
  debug_text_ = std::move(json);
  debug_set_ = true;
}

void ScrapeServer::UpdateStallsPage(std::string json) {
  std::lock_guard<std::mutex> lock(mu_);
  stalls_text_ = std::move(json);
  stalls_set_ = true;
}

void ScrapeServer::SetHealthBody(std::string body) {
  std::lock_guard<std::mutex> lock(mu_);
  health_body_ = std::move(body);
}

void ScrapeServer::Serve() {
  // Poll-with-timeout instead of a bare blocking accept: the 100 ms tick is
  // how Stop() gets the thread's attention without racing a close() against
  // an accept() in flight.
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    HandleConnection(fd);
    close(fd);
  }
}

void ScrapeServer::HandleConnection(int fd) {
  // A scrape request fits in one read in practice; loop until the header
  // terminator anyway, bounded by the buffer and a receive timeout so a
  // stalled peer cannot wedge the accept thread.
  timeval timeout{};
  timeout.tv_sec = 2;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

  char buf[2048];
  size_t used = 0;
  while (used < sizeof(buf) - 1) {
    const ssize_t n = recv(fd, buf + used, sizeof(buf) - 1 - used, 0);
    if (n <= 0) break;
    used += static_cast<size_t>(n);
    buf[used] = '\0';
    if (std::strstr(buf, "\r\n\r\n") != nullptr ||
        std::strstr(buf, "\n\n") != nullptr) {
      break;
    }
  }
  buf[used] = '\0';

  // Request line: METHOD SP PATH SP VERSION.
  std::string path;
  {
    const char* sp1 = std::strchr(buf, ' ');
    if (sp1 != nullptr) {
      const char* sp2 = std::strchr(sp1 + 1, ' ');
      if (sp2 != nullptr) path.assign(sp1 + 1, sp2);
    }
  }

  std::string response;
  if (path == "/metrics") {
    std::string body;
    {
      std::lock_guard<std::mutex> lock(mu_);
      body = metrics_text_;
    }
    response = HttpResponse("200 OK", "text/plain; version=0.0.4", body);
  } else if (path == "/healthz") {
    std::string body;
    {
      std::lock_guard<std::mutex> lock(mu_);
      body = health_body_;
    }
    const char* type =
        !body.empty() && body[0] == '{' ? "application/json" : "text/plain";
    response = HttpResponse("200 OK", type, body);
  } else if (path == "/debug/slow") {
    std::string body;
    bool have = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      body = debug_text_;
      have = debug_set_;
    }
    if (have) {
      response = HttpResponse("200 OK", "application/json", body);
    } else {
      response = HttpResponse("404 Not Found", "text/plain", "not found\n");
    }
  } else if (path == "/debug/stalls") {
    std::string body;
    bool have = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      body = stalls_text_;
      have = stalls_set_;
    }
    if (have) {
      response = HttpResponse("200 OK", "application/json", body);
    } else {
      response = HttpResponse("404 Not Found", "text/plain", "not found\n");
    }
  } else {
    response = HttpResponse("404 Not Found", "text/plain", "not found\n");
  }
  SendAll(fd, response);
  requests_served_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace ujoin
