#include "obs/report.h"

#include <fstream>

#include "obs/json_writer.h"
#include "util/simd.h"

namespace ujoin {
namespace obs {

std::string RenderRunReport(std::string_view command,
                            const std::vector<ReportSection>& sections) {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema");
  w.String(kRunReportSchema);
  w.Key("schema_version");
  w.Int(kRunReportSchemaVersion);
  w.Key("command");
  w.String(command);
  // Which kernel dispatch the producing process ran with (util/simd.h):
  // "avx2", "sse2", "neon", or "scalar".  Machine metadata, not a result —
  // readers comparing reports across hosts should expect it to differ.
  w.Key("simd_isa");
  w.String(simd::ActiveIsaName());
  for (const ReportSection& section : sections) {
    w.Key(section.key);
    w.RawValue(section.json);
  }
  w.EndObject();
  return w.TakeString();
}

Status WriteRunReport(const std::string& path, std::string_view command,
                      const std::vector<ReportSection>& sections) {
  const std::string json = RenderRunReport(command, sections);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  if (!out) return Status::IoError("write to '" + path + "' failed");
  return Status::OK();
}

}  // namespace obs
}  // namespace ujoin
