#include "obs/trace.h"

#include <algorithm>
#include <fstream>

#include "obs/json_writer.h"

namespace ujoin {
namespace obs {

std::string TraceRecorder::ToJson() const {
  // Collect the distinct lanes so each gets a thread_name metadata event;
  // that is what makes the lanes legible in chrome://tracing/Perfetto.
  std::vector<uint32_t> tids;
  for (const TraceEvent& e : events_) tids.push_back(e.tid);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());

  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents");
  w.BeginArray();
  w.BeginObject();
  w.Key("name");
  w.String("process_name");
  w.Key("ph");
  w.String("M");
  w.Key("pid");
  w.Int(1);
  w.Key("args");
  w.BeginObject();
  w.Key("name");
  w.String("ujoin");
  w.EndObject();
  w.EndObject();
  for (uint32_t tid : tids) {
    w.BeginObject();
    w.Key("name");
    w.String("thread_name");
    w.Key("ph");
    w.String("M");
    w.Key("pid");
    w.Int(1);
    w.Key("tid");
    w.Int(tid);
    w.Key("args");
    w.BeginObject();
    w.Key("name");
    w.String(tid == 0 ? std::string("driver")
                      : "worker " + std::to_string(tid - 1));
    w.EndObject();
    w.EndObject();
  }
  for (const TraceEvent& e : events_) {
    w.BeginObject();
    w.Key("name");
    w.String(e.name);
    w.Key("cat");
    w.String("ujoin");
    w.Key("ph");
    w.String("X");
    // Trace-event timestamps are microseconds; fractional values are
    // accepted, so keep nanosecond precision as a decimal fraction.
    w.Key("ts");
    w.Double(static_cast<double>(e.ts_ns) / 1e3);
    w.Key("dur");
    w.Double(static_cast<double>(e.dur_ns) / 1e3);
    w.Key("pid");
    w.Int(1);
    w.Key("tid");
    w.Int(e.tid);
    w.EndObject();
  }
  w.EndArray();
  w.Key("displayTimeUnit");
  w.String("ms");
  // Sampling coverage: always emitted (sample_n == 1 means every probe kept)
  // so consumers can tell a sparse trace from a sampled one.
  w.Key("metadata");
  w.BeginObject();
  w.Key("probe_span_sample_n");
  w.Int(sample_n_);
  w.Key("probes_seen");
  w.Int(probes_seen_);
  w.Key("probes_sampled");
  w.Int(probes_sampled_);
  w.EndObject();
  w.EndObject();
  return w.TakeString();
}

Status TraceRecorder::WriteFile(const std::string& path) const {
  const std::string json = ToJson();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  if (!out) return Status::IoError("write to '" + path + "' failed");
  return Status::OK();
}

}  // namespace obs
}  // namespace ujoin
