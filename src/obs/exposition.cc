#include "obs/exposition.h"

#include <cstdint>
#include <cstdio>
#include <fstream>

#include "obs/metrics.h"

namespace ujoin {
namespace obs {

namespace {

constexpr char kPrefix[] = "ujoin_";

/// Escapes a HELP line per the exposition format: backslash and newline.
void AppendEscapedHelp(const char* help, std::string* out) {
  for (const char* p = help; *p != '\0'; ++p) {
    switch (*p) {
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      default:
        out->push_back(*p);
    }
  }
}

void AppendHeader(const std::string& family, const char* help,
                  const char* type, std::string* out) {
  out->append("# HELP ");
  out->append(family);
  out->push_back(' ');
  AppendEscapedHelp(help, out);
  out->push_back('\n');
  out->append("# TYPE ");
  out->append(family);
  out->push_back(' ');
  out->append(type);
  out->push_back('\n');
}

void AppendSample(const std::string& name, int64_t value, std::string* out) {
  out->append(name);
  out->push_back(' ');
  out->append(std::to_string(value));
  out->push_back('\n');
}

void AppendHistogramFamily(const std::string& family, const Histogram& h,
                           std::string* out) {
  // Cumulative buckets from bucket 0 through the highest non-empty bucket.
  // Bucket b holds values in [2^(b-1), 2^b), so its exact inclusive upper
  // bound — the `le` label — is 2^b - 1; bucket 0 (values <= 0) gets le="0".
  int highest = -1;
  for (int b = Histogram::kNumBuckets - 1; b >= 0; --b) {
    if (h.bucket(b) != 0) {
      highest = b;
      break;
    }
  }
  int64_t cumulative = 0;
  for (int b = 0; b <= highest; ++b) {
    cumulative += h.bucket(b);
    const int64_t le =
        b == 0 ? 0
               : static_cast<int64_t>((uint64_t{1} << b) - 1);
    out->append(family);
    out->append("_bucket{le=\"");
    out->append(std::to_string(le));
    out->append("\"} ");
    out->append(std::to_string(cumulative));
    out->push_back('\n');
  }
  out->append(family);
  out->append("_bucket{le=\"+Inf\"} ");
  out->append(std::to_string(h.count()));
  out->push_back('\n');
  AppendSample(family + "_sum", h.sum(), out);
  AppendSample(family + "_count", h.count(), out);
}

}  // namespace

std::string RenderPrometheusText(const Recorder& r) {
  std::string out;
  out.reserve(4096);
  for (int c = 0; c < kNumCounters; ++c) {
    const MetricInfo& info = CounterInfo(static_cast<Counter>(c));
    const std::string family = std::string(kPrefix) + info.name + "_total";
    AppendHeader(family, info.help, "counter", &out);
    AppendSample(family, r.counter(static_cast<Counter>(c)), &out);
  }
  for (int g = 0; g < kNumGauges; ++g) {
    const MetricInfo& info = GaugeInfo(static_cast<Gauge>(g));
    const std::string family = std::string(kPrefix) + info.name;
    AppendHeader(family, info.help, "gauge", &out);
    AppendSample(family, r.gauge(static_cast<Gauge>(g)), &out);
  }
  {
    const std::string family =
        std::string(kPrefix) + "filter_funnel_candidates_total";
    AppendHeader(family,
                 "candidates entering and surviving each filter stage, in "
                 "pipeline order",
                 "counter", &out);
    for (int s = 0; s < kNumFunnelStages; ++s) {
      const FunnelStage stage = static_cast<FunnelStage>(s);
      const char* name = FunnelStageInfo(stage).name;
      out.append(family);
      out.append("{stage=\"");
      out.append(name);
      out.append("\",edge=\"entered\"} ");
      out.append(std::to_string(r.funnel_entered(stage)));
      out.push_back('\n');
      out.append(family);
      out.append("{stage=\"");
      out.append(name);
      out.append("\",edge=\"survived\"} ");
      out.append(std::to_string(r.funnel_survived(stage)));
      out.push_back('\n');
    }
  }
  for (int h = 0; h < kNumHists; ++h) {
    const MetricInfo& info = HistInfo(static_cast<Hist>(h));
    const std::string family = std::string(kPrefix) + info.name;
    AppendHeader(family, info.help, "histogram", &out);
    AppendHistogramFamily(family, r.hist(static_cast<Hist>(h)), &out);
  }
  return out;
}

Status WritePrometheusTextfile(const Recorder& r, const std::string& path) {
  const std::string text = RenderPrometheusText(r);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot open '" + tmp + "' for writing");
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
    if (!out) return Status::IoError("write to '" + tmp + "' failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("rename '" + tmp + "' -> '" + path + "' failed");
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace ujoin
