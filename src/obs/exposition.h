#ifndef UJOIN_OBS_EXPOSITION_H_
#define UJOIN_OBS_EXPOSITION_H_

#include <string>

#include "util/status.h"

namespace ujoin {
namespace obs {

class Recorder;

// ---------------------------------------------------------------------------
// Prometheus text exposition (version 0.0.4)
//
// Renders a Recorder snapshot in the Prometheus text format, driven entirely
// by the enum metadata rows in metrics.cc — adding a metric to the registry
// makes it appear here with no further wiring.  The mapping (documented in
// DESIGN.md "Live monitoring"):
//
//  * counters  -> `ujoin_<name>_total`, TYPE counter
//  * gauges    -> `ujoin_<name>`, TYPE gauge
//  * log2 histograms -> `ujoin_<name>`, TYPE histogram.  Bucket b of the
//    repo Histogram holds int64 values of bit width b, i.e. [2^(b-1), 2^b),
//    so its exact inclusive upper bound is 2^b - 1 and that is the `le`
//    label (bucket 0, which holds values <= 0, gets le="0").  Cumulative
//    counts run from bucket 0 through the highest non-empty bucket, then
//    the mandatory le="+Inf" terminal; `_sum` and `_count` follow.
//  * funnel    -> one family `ujoin_filter_funnel_candidates_total` with
//    `stage` and `edge` ("entered"/"survived") labels, TYPE counter.
//
// Unit suffixes from the registry names (`_ns`, `_bytes`, ...) are kept
// as-is; `# HELP` text comes from the registry doc rows.  Rendering is
// deterministic: same Recorder state, same bytes.
// ---------------------------------------------------------------------------

/// Renders `r` as a complete Prometheus text-format page.
std::string RenderPrometheusText(const Recorder& r);

/// Writes RenderPrometheusText(r) to `path` for the node_exporter textfile
/// collector: the page is written to `path + ".tmp"` and renamed into place
/// so a concurrent collector never reads a half-written file.
Status WritePrometheusTextfile(const Recorder& r, const std::string& path);

}  // namespace obs
}  // namespace ujoin

#endif  // UJOIN_OBS_EXPOSITION_H_
