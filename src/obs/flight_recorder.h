#ifndef UJOIN_OBS_FLIGHT_RECORDER_H_
#define UJOIN_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>

namespace ujoin {
namespace obs {

// ---------------------------------------------------------------------------
// Black-box flight recorder
//
// An always-on, allocation-free record of what every thread was doing
// *recently*: fixed-capacity per-thread ring buffers of compact lifecycle
// events (wave/probe/verify/query/batch/connection transitions), written
// through the UJOIN_OBS_FLIGHT macro (obs_macros.h) from the join pipeline
// and the serve layer.  Metrics (metrics.h) answer "how much, overall";
// the flight recorder answers "what was in flight when it died or hung".
//
// Design constraints, in order:
//
//  * Record path: no heap allocation, no locks, no syscalls beyond the
//    clock read — it runs inside the steady-state zero-allocation probe
//    path.  One writer per ring (the owning thread); every ring word is a
//    relaxed std::atomic<int64_t>, so concurrent dump reads are racy-by-
//    design but never data races (TSan-clean torn reads, detected and
//    skipped via a per-event sequence word).
//  * Dump path: async-signal-safe.  DumpToFd formats into a fixed stack
//    buffer with a hand-rolled integer renderer and emits bytes with raw
//    write(2) to a pre-opened fd — no malloc, no locks, no stdio — so the
//    same code serves the SIGSEGV/SIGABRT/SIGBUS crash handler installed
//    by InstallCrashDump and the orderly end-of-run dump.
//  * Both paths are contract roots of tools/ujoin_effects.py
//    ("flight-path"): an allocation or lock introduced anywhere below
//    RecordEvent or DumpToFd fails CI.
//
// The dump is the versioned "ujoin.flight_record" JSON document (see
// DESIGN.md "Flight recorder and watchdog" and
// tools/validate_flight_record.py): per-thread recent events, the event
// registry snapshot (per-kind totals + drop count), build info, and the
// active SIMD instruction set.
//
// Ring sizing: kMaxThreadSlots covers the worker crews this repo ever
// starts (join workers + serve crew + watchdog + main); kEventsPerThread
// covers several waves or serve batches of lifecycle events.  Storage is
// static (one global recorder, ~200 KiB) so recording needs no setup and
// the crash handler needs no indirection.
// ---------------------------------------------------------------------------

/// Event kinds, in registry order.  The dump spells these names; adding a
/// kind means appending here and one row in kFlightEventNames.
enum class FlightEvent : int {
  /// Self-join wave started: a = wave index, b = strings in the wave.
  kWaveStart = 0,
  /// Self-join wave finished: a = wave index, b = 0.
  kWaveEnd,
  /// One rank's probe task started: a = worker rank, b = global string rank.
  kProbeBegin,
  /// Funnel stage entered: a = stage (obs::FunnelStage), b = candidates.
  kFunnelStage,
  /// Trie verification started: a = saturating possible-world estimate
  /// (0 when no metrics recorder is attached), b = 0.
  kVerifyBegin,
  /// Query started: a = deadline_ns (0 = none), b = length band.
  kQueryBegin,
  /// Query finished: a = hits, b = 1 on error else 0.
  kQueryEnd,
  /// Serve batch boundary: a = queries answered in the batch, b = 0.
  kBatchBoundary,
  /// Serve connection accepted: a = connection id, b = 0.
  kConnOpen,
  /// Serve connection closed: a = connection id, b = requests answered.
  kConnClose,
  /// Serve connection closed by the idle keep-alive timeout:
  /// a = connection id, b = idle milliseconds observed.
  kConnIdleClose,
  /// Serve request attribution, recorded just before the query executes:
  /// a = connection id, b = request seq.  Stamps the in-flight block so a
  /// stall report can name the connection.
  kServeQuery,
  /// The watchdog captured a stall report: a = stalled thread slot,
  /// b = elapsed ns at capture.
  kStallCaptured,
};
inline constexpr int kNumFlightEvents = 13;

/// The registry name of `kind` ("wave_start", ...).
const char* FlightEventName(FlightEvent kind);

/// A seqlock-consistent snapshot of one thread's in-flight work, read by
/// the watchdog.  Valid (in_flight == true) only between a begin event
/// (kQueryBegin / kWaveStart) and its matching end.
struct InFlightSnapshot {
  bool in_flight = false;
  int64_t epoch = 0;          ///< odd while in flight; stamps the capture
  int64_t begin_ns = 0;       ///< recorder clock at the begin event
  int64_t deadline_ns = 0;    ///< per-query deadline, 0 = none
  int64_t band = 0;           ///< length band (queries) or wave index
  int64_t connection = -1;    ///< serve attribution, -1 outside serve
  int64_t seq = 0;            ///< serve attribution, 0 outside serve
  int64_t verify_worlds = 0;  ///< last kVerifyBegin estimate this query
  int64_t funnel_stage = -1;  ///< last kFunnelStage entered this query
};

/// Options for DumpToFd.  `redact_timing` zeroes every wall-clock-derived
/// field (event ts_ns, OS thread ids) so two dumps with the same logical
/// event content are byte-identical — the "non-timing projection" the
/// tests and the serve smoke pin.
struct FlightDumpOptions {
  const char* reason = "manual";  ///< "manual" | "crash" | "watchdog"
  int signal = 0;                 ///< delivering signal for "crash", else 0
  bool redact_timing = false;
};

class FlightRecorder {
 public:
  static constexpr int kMaxThreadSlots = 32;
  static constexpr int kEventsPerThread = 128;

  FlightRecorder() = default;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Records one event on the calling thread's ring.  Allocation-, lock-
  /// and syscall-free; safe on the probe path.  The first event on a
  /// thread claims a slot; once kMaxThreadSlots threads have claimed one,
  /// further threads' events count into dropped_events instead.
  void RecordEvent(FlightEvent kind, int64_t a, int64_t b);

  /// Runtime kill switch (default on).  A disabled recorder reduces
  /// RecordEvent to one relaxed load and a branch; the overhead gate
  /// (bench_obs_overhead) measures exactly this delta.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Writes the "ujoin.flight_record" JSON document to `fd`.
  /// Async-signal-safe: fixed buffers + raw write(2) only.  Readers may
  /// race live writers; torn events are detected via their sequence word
  /// and skipped.
  void DumpToFd(int fd, const FlightDumpOptions& options) const;

  /// Seqlock-consistent read of slot `slot`'s in-flight block.  Returns
  /// in_flight == false for unclaimed slots, idle threads, and snapshots
  /// torn by a concurrent begin/end.
  InFlightSnapshot ReadInFlight(int slot) const;

  /// Thread slots claimed so far (watchdog scan bound).  Clamped to
  /// kMaxThreadSlots: the claim counter overshoots when more threads than
  /// slots show up, and readers index slots_ with this value.
  int slots_used() const {
    const int64_t used = slots_used_.load(std::memory_order_acquire);
    return static_cast<int>(used < kMaxThreadSlots ? used : kMaxThreadSlots);
  }

  /// Events dropped because every thread slot was claimed.
  int64_t dropped_events() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Monotonic recorder clock, nanoseconds since the first use in this
  /// process.  Event timestamps and watchdog elapsed math share it.
  static int64_t NowNs();

 private:
  // Ring event layout: 5 words per event.  Word 0 is the per-event
  // sequence (1-based; 0 = being written), doubling as a seqlock so a
  // reader can detect an event overwritten mid-read.
  static constexpr int kWordsPerEvent = 5;

  struct Slot {
    std::atomic<int64_t> claimed_thread{0};  // logical thread id + 1; 0=free
    std::atomic<int64_t> os_tid{0};
    std::atomic<int64_t> head{0};            // events ever recorded
    std::atomic<int64_t> words[kEventsPerThread * kWordsPerEvent] = {};
    // In-flight block (see InFlightSnapshot).  Owner-written, watchdog-read.
    std::atomic<int64_t> q_epoch{0};
    std::atomic<int64_t> q_begin_ns{0};
    std::atomic<int64_t> q_deadline_ns{0};
    std::atomic<int64_t> q_band{0};
    std::atomic<int64_t> q_connection{-1};
    std::atomic<int64_t> q_seq{0};
    std::atomic<int64_t> q_verify_worlds{0};
    std::atomic<int64_t> q_funnel_stage{-1};
  };

  int SlotForThisThread();
  void DumpSlot(int fd, int slot, bool redact, char* buf, int* len) const;

  Slot slots_[kMaxThreadSlots];
  std::atomic<int64_t> slots_used_{0};
  std::atomic<int64_t> dropped_{0};
  std::atomic<int64_t> kind_counts_[kNumFlightEvents] = {};
  std::atomic<bool> enabled_{true};
};

/// The process-global recorder the UJOIN_OBS_FLIGHT macro targets.
/// Static storage: valid before main, valid inside signal handlers.
FlightRecorder* GlobalFlightRecorder();

/// Opens `path` (created/truncated) and installs SIGSEGV/SIGABRT/SIGBUS
/// handlers that dump the global recorder's flight record to the
/// pre-opened fd and then re-raise with the default disposition
/// (SA_RESETHAND).  Returns false when the file cannot be opened.  Safe to
/// call at most once per process; later calls replace the dump target.
bool InstallCrashDump(const char* path);

/// Dumps the global recorder to `path` with `options` (orderly, non-crash
/// path: open/dump/close).  Returns false when the file cannot be opened.
bool DumpFlightRecord(const char* path, const FlightDumpOptions& options);

}  // namespace obs
}  // namespace ujoin

#endif  // UJOIN_OBS_FLIGHT_RECORDER_H_
