#ifndef UJOIN_DATAGEN_DATAGEN_H_
#define UJOIN_DATAGEN_DATAGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "text/alphabet.h"
#include "text/uncertain_string.h"
#include "util/rng.h"
#include "util/status.h"

namespace ujoin {

/// \brief Synthetic workloads mirroring the paper's two data sources
/// (Section 7).
///
/// The paper derives character-level uncertain strings from real corpora by
/// sampling a neighbourhood A(s) of strings within edit distance 4 of each
/// base string s and turning per-position letter frequencies into pdfs.  We
/// reproduce the procedure on generated base strings: substitution
/// neighbourhoods yield per-position letter frequency pdfs with the same θ
/// (fraction of uncertain positions) and γ (mean number of alternatives)
/// knobs.  See DESIGN.md for the substitution rationale.
struct DatasetOptions {
  enum class Kind {
    kNames,    ///< dblp-like author names, |Σ| = 27, ~normal lengths [10,35]
    kProtein,  ///< protein-like sequences, |Σ| = 22, uniform lengths [20,45]
  };

  Kind kind = Kind::kNames;
  int size = 1000;      ///< number of strings
  double theta = 0.2;   ///< fraction of uncertain positions per string
  int gamma = 5;        ///< mean number of alternatives per uncertain position
  uint64_t seed = 42;   ///< RNG seed: identical options => identical dataset

  /// Length bounds; negative values pick the paper's defaults for `kind`
  /// (names: [10, 35]; protein: [20, 45]).
  int min_length = -1;
  int max_length = -1;

  /// Neighbourhood size used to derive per-position pdfs.
  int neighbourhood_size = 16;

  /// Fraction of strings generated as near-duplicates of an earlier base
  /// string (at most `similar_max_edits` random edits away), mimicking the
  /// name variants / homologous subsequences that make real dblp and
  /// protein corpora join-rich.  0 disables cluster planting.
  double similar_fraction = 0.35;
  int similar_max_edits = 2;

  /// Cap on uncertain positions per string (Figure 9 caps this at 8);
  /// <= 0 means unlimited.
  int max_uncertain_positions = 0;
};

/// \brief A generated collection plus its alphabet.
struct Dataset {
  Alphabet alphabet;
  std::vector<UncertainString> strings;
};

/// Generates a dataset; deterministic in `options.seed`.
Dataset GenerateDataset(const DatasetOptions& options);

/// The alphabet a dataset kind uses (Names() or Protein()).
Alphabet AlphabetFor(DatasetOptions::Kind kind);

/// Appends `s` to itself `times` times (the Figure 9 length workload).
UncertainString AppendSelf(const UncertainString& s, int times);

/// Returns `s` with at most `max_uncertain` uncertain positions: every
/// later uncertain position is collapsed to its most likely symbol
/// (Figure 9 limits strings to 8 probabilistic characters this way).
UncertainString CapUncertainPositions(const UncertainString& s,
                                      int max_uncertain);

/// Writes one string per line in the paper's `A{(C,0.5),...}A` notation.
Status SaveDataset(const Dataset& dataset, const std::string& path);

/// Reads a dataset previously written by SaveDataset.
Result<std::vector<UncertainString>> LoadDataset(const std::string& path,
                                                 const Alphabet& alphabet);

}  // namespace ujoin

#endif  // UJOIN_DATAGEN_DATAGEN_H_
