#include "datagen/datagen.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>

#include "util/check.h"

namespace ujoin {

namespace {

// Rough English letter weights (per mille) so generated names look like
// names rather than uniform noise; index matches Alphabet::Names().
constexpr int kEnglishWeights[27] = {
    82, 15, 28, 43, 127, 22, 20, 61, 70, 2, 8, 40, 24,
    67, 75, 19, 1,  60,  63, 91, 28, 10, 24, 2, 20, 1, 0 /*space: explicit*/};

// Amino-acid composition weights (per mille, approximate natural
// frequencies); index matches Alphabet::Protein() = "ACDEFGHIKLMNPQRSTVWYBZ".
constexpr int kProteinWeights[22] = {
    83, 14, 55, 67, 39, 72, 22, 59, 58, 97, 24,
    41, 47, 39, 55, 66, 54, 69, 11, 29, 2, 2};

char SampleWeighted(const Alphabet& alphabet, const int* weights, int n,
                    Rng& rng) {
  int64_t total = 0;
  for (int i = 0; i < n; ++i) total += weights[i];
  int64_t pick = static_cast<int64_t>(rng.Uniform(static_cast<uint64_t>(total)));
  for (int i = 0; i < n; ++i) {
    pick -= weights[i];
    if (pick < 0) return alphabet.SymbolAt(i);
  }
  return alphabet.SymbolAt(n - 1);
}

std::string GenerateName(const Alphabet& alphabet, int length, Rng& rng) {
  // First and last name separated by one space; letters ~ English weights.
  std::string s(static_cast<size_t>(length), 'a');
  const int space_pos =
      static_cast<int>(rng.UniformInt(length / 3, 2 * length / 3));
  for (int i = 0; i < length; ++i) {
    if (i == space_pos) {
      s[static_cast<size_t>(i)] = ' ';
    } else {
      s[static_cast<size_t>(i)] = SampleWeighted(alphabet, kEnglishWeights,
                                                 26, rng);  // letters only
    }
  }
  return s;
}

std::string GenerateProtein(const Alphabet& alphabet, int length, Rng& rng) {
  std::string s(static_cast<size_t>(length), 'A');
  for (int i = 0; i < length; ++i) {
    s[static_cast<size_t>(i)] =
        SampleWeighted(alphabet, kProteinWeights, alphabet.size(), rng);
  }
  return s;
}

int SampleLength(const DatasetOptions& options, int lo, int hi, Rng& rng) {
  if (options.kind == DatasetOptions::Kind::kNames) {
    // Approximately normal within [lo, hi], like the dblp name lengths.
    const double mean = (lo + hi) / 2.0 - (hi - lo) / 6.0;  // skew shortish
    const double sd = (hi - lo) / 6.0;
    const int len = static_cast<int>(std::lround(mean + sd * rng.Normal()));
    return std::clamp(len, lo, hi);
  }
  return static_cast<int>(rng.UniformInt(lo, hi));
}

// Builds the pdf of one uncertain position the way the paper does: sample a
// neighbourhood of strings within a small edit distance (substitutions keep
// positions aligned), then normalize the letter frequencies observed at the
// position.  `base` always participates, so it stays the likeliest symbol.
std::vector<CharProb> MakeUncertainPosition(char base, const Alphabet& alphabet,
                                            const int* weights, int weight_n,
                                            int gamma, int neighbourhood,
                                            Rng& rng) {
  std::map<char, int> freq;
  // The base string plus the unchanged neighbours dominate the frequency
  // count; a neighbour substitutes this position with probability chosen so
  // the expected number of alternatives tracks γ.
  const int changed = std::max(
      1, static_cast<int>(rng.UniformInt(gamma - 1, gamma + 1)));
  freq[base] = std::max(1, neighbourhood - changed);
  for (int n = 0; n < changed; ++n) {
    const char c = SampleWeighted(alphabet, weights, weight_n, rng);
    ++freq[c];
  }
  int total = 0;
  for (const auto& [c, f] : freq) total += f;
  std::vector<CharProb> alts;
  alts.reserve(freq.size());
  for (const auto& [c, f] : freq) {
    alts.push_back(CharProb{c, static_cast<double>(f) / total});
  }
  return alts;
}

}  // namespace

Alphabet AlphabetFor(DatasetOptions::Kind kind) {
  return kind == DatasetOptions::Kind::kNames ? Alphabet::Names()
                                              : Alphabet::Protein();
}

Dataset GenerateDataset(const DatasetOptions& options) {
  UJOIN_CHECK(options.size >= 0);
  UJOIN_CHECK(options.theta >= 0.0 && options.theta <= 1.0);
  UJOIN_CHECK(options.gamma >= 2);
  Dataset dataset{AlphabetFor(options.kind), {}};
  const Alphabet& alphabet = dataset.alphabet;
  const bool names = options.kind == DatasetOptions::Kind::kNames;
  const int lo = options.min_length > 0 ? options.min_length : (names ? 10 : 20);
  const int hi = options.max_length > 0 ? options.max_length : (names ? 35 : 45);
  UJOIN_CHECK(lo >= 1 && lo <= hi);
  const int* weights = names ? kEnglishWeights : kProteinWeights;
  const int weight_n = names ? 26 : alphabet.size();

  Rng rng(options.seed);
  dataset.strings.reserve(static_cast<size_t>(options.size));
  std::vector<std::string> bases;
  bases.reserve(static_cast<size_t>(options.size));
  for (int n = 0; n < options.size; ++n) {
    std::string base;
    if (!bases.empty() && rng.Bernoulli(options.similar_fraction)) {
      // Near-duplicate of an earlier string: real corpora are join-rich
      // because of name variants and homologous subsequences.
      const std::string& origin =
          bases[rng.Uniform(bases.size())];
      base = origin;
      const int edits =
          static_cast<int>(rng.UniformInt(0, options.similar_max_edits));
      for (int e = 0; e < edits && !base.empty(); ++e) {
        const int op = static_cast<int>(rng.Uniform(3));
        const size_t pos = rng.Uniform(base.size());
        const char sub = SampleWeighted(alphabet, weights, weight_n, rng);
        if (op == 0) {
          base[pos] = sub;
        } else if (op == 1 && static_cast<int>(base.size()) > lo) {
          base.erase(pos, 1);
        } else if (static_cast<int>(base.size()) < hi) {
          base.insert(base.begin() + static_cast<ptrdiff_t>(pos), sub);
        }
      }
    } else {
      const int length = SampleLength(options, lo, hi, rng);
      base = names ? GenerateName(alphabet, length, rng)
                   : GenerateProtein(alphabet, length, rng);
    }
    bases.push_back(base);
    const int length = static_cast<int>(base.size());
    // Choose the uncertain positions: each position independently with
    // probability θ, bounded by the optional cap.
    UncertainString::Builder builder;
    int uncertain_used = 0;
    const int cap = options.max_uncertain_positions > 0
                        ? options.max_uncertain_positions
                        : length;
    for (int i = 0; i < length; ++i) {
      const char c = base[static_cast<size_t>(i)];
      const bool make_uncertain =
          uncertain_used < cap && c != ' ' && rng.Bernoulli(options.theta);
      if (!make_uncertain) {
        builder.AddCertain(c);
        continue;
      }
      ++uncertain_used;
      builder.AddUncertain(MakeUncertainPosition(
          c, alphabet, weights, weight_n, options.gamma,
          options.neighbourhood_size, rng));
    }
    Result<UncertainString> s = builder.Build();
    UJOIN_CHECK(s.ok());
    dataset.strings.push_back(std::move(s).value());
  }
  return dataset;
}

UncertainString AppendSelf(const UncertainString& s, int times) {
  UncertainString out = s;
  for (int t = 0; t < times; ++t) out = UncertainString::Concat(out, s);
  return out;
}

UncertainString CapUncertainPositions(const UncertainString& s,
                                      int max_uncertain) {
  if (s.NumUncertainPositions() <= max_uncertain) return s;
  UncertainString::Builder builder;
  int used = 0;
  for (int i = 0; i < s.length(); ++i) {
    if (s.IsCertain(i)) {
      builder.AddCertain(s.AlternativesAt(i)[0].symbol);
      continue;
    }
    if (used < max_uncertain) {
      ++used;
      auto alts = s.AlternativesAt(i);
      builder.AddUncertain(std::vector<CharProb>(alts.begin(), alts.end()));
    } else {
      builder.AddCertain(s.MostLikelySymbol(i));
    }
  }
  Result<UncertainString> out = builder.Build();
  UJOIN_CHECK(out.ok());
  return std::move(out).value();
}

Status SaveDataset(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  for (const UncertainString& s : dataset.strings) {
    out << s.ToString() << '\n';
  }
  if (!out) return Status::IoError("write to '" + path + "' failed");
  return Status::OK();
}

Result<std::vector<UncertainString>> LoadDataset(const std::string& path,
                                                 const Alphabet& alphabet) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");
  std::vector<UncertainString> strings;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    Result<UncertainString> s = UncertainString::Parse(line, alphabet);
    if (!s.ok()) {
      return Status::InvalidArgument("line " + std::to_string(line_no) + ": " +
                                     s.status().message());
    }
    strings.push_back(std::move(s).value());
  }
  return strings;
}

}  // namespace ujoin
