#ifndef UJOIN_UTIL_SIMD_H_
#define UJOIN_UTIL_SIMD_H_

#include <cstddef>
#include <cstdint>

// ---------------------------------------------------------------------------
// Vectorized kernel layer for the probe-path hot loops.
//
// This header is the only place in the tree allowed to touch ISA intrinsics
// (enforced by tools/ujoin_lint.py, rule `simd-intrinsics`).  It exposes a
// small set of kernels, each in three forms:
//
//  * `scalar::Kernel(...)`  — the reference implementation, always compiled,
//    plain portable C++.  This is the semantic definition of the kernel.
//  * `detail::KernelSse2/KernelAvx2/KernelNeon(...)` — ISA variants.  Every
//    variant computes bit-identical results to the scalar reference (see
//    DESIGN.md "SIMD kernels" for the argument; the differential ctest
//    `simd_kernel_test` enforces it on random + adversarial inputs).
//  * `Kernel(...)` — the dispatched entry point the pipeline calls.  It
//    selects the widest variant the CPU supports at run time (AVX2 via
//    __builtin_cpu_supports on x86-64, NEON on aarch64), and falls back to
//    the scalar reference everywhere else — including when the tree is
//    configured with -DUJOIN_SIMD=off (UJOIN_SIMD_DISABLED).
//
// Bit-identity ground rules every variant obeys:
//  * per-lane operations only, in the scalar per-lane expression order
//    (the build pins -ffp-contract=off, so no FMA contraction can merge a
//    mul+add pair the scalar code keeps separate);
//  * reductions use the fixed 4-slot fold defined by the scalar reference
//    (slot i%4, combined as (s0+s1)+(s2+s3)) so the result is independent
//    of the vector width;
//  * min/max lanes hold non-negative finite values, where _mm_min_pd /
//    _mm_max_pd agree bit-for-bit with std::min / std::max (the two differ
//    only on NaN and on -0.0 vs +0.0 operands, which cannot occur here:
//    every lane is a product/sum of probabilities in [0, 1]).
//
// None of the kernels allocates; all write only through caller-provided
// pointers, preserving the steady-state zero-allocation probe path.
// ---------------------------------------------------------------------------

#if !defined(UJOIN_SIMD_DISABLED)
#if defined(__x86_64__) || defined(_M_X64)
#define UJOIN_SIMD_X86 1
#include <immintrin.h>  // SSE2 baseline + AVX2 target-attribute variants
#elif defined(__aarch64__) && defined(__ARM_NEON)
#define UJOIN_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif  // !defined(UJOIN_SIMD_DISABLED)

namespace ujoin {
namespace simd {

/// Instruction set the dispatcher selected for this process.
enum class Isa : int { kScalar = 0, kSse2, kAvx2, kNeon };

namespace detail {
// Detected once at static initialization (simd.cc); reads are branch-free.
extern const Isa kActiveIsa;
}  // namespace detail

/// The instruction set every dispatched kernel below will use.
inline Isa ActiveIsa() { return detail::kActiveIsa; }

/// Human-readable name of ActiveIsa(): "scalar", "sse2", "avx2", or "neon".
/// Surfaces in the ujoin.run_report envelope ("simd_isa") and in
/// `ujoin_cli simd-info`.
const char* ActiveIsaName();

// ---------------------------------------------------------------------------
// Scalar reference kernels.  These define the semantics; every ISA variant
// must match them bit-for-bit.
// ---------------------------------------------------------------------------

namespace scalar {

/// CDF banded-DP cell update (Theorem 4, cdf_filter.cc).  Computes the
/// `width` = k+1 (L[j], U[j]) bound lanes of one band cell from its three
/// neighbor cells and the selected argmin-lower neighbor `lsel`:
///   lo[j] = max(p1 * l1[j], p2 * lsel[j-1])
///   up[j] = min(1, p1 * u1[j] + p2 * u1[j-1] + u2[j-1] + u3[j-1])
/// with index -1 reading as 0.  Returns max_j up[j] (the caller folds it
/// into the row maximum for prefix pruning).  `lo`/`up` must not alias any
/// input at an overlapping index range (the DP writes cell d while reading
/// cells d-1 of the same row and d, d+1 of the previous row).
inline double CdfCellUpdate(const double* l1, const double* u1,
                            const double* u2, const double* u3,
                            const double* lsel, double p1, double p2,
                            int width, double* lo, double* up) {
  double cell_max = 0.0;
  for (int j = 0; j < width; ++j) {
    const double lsel_prev = j > 0 ? lsel[j - 1] : 0.0;
    lo[j] = p1 * l1[j] < p2 * lsel_prev ? p2 * lsel_prev : p1 * l1[j];
    const double u1_prev = j > 0 ? u1[j - 1] : 0.0;
    const double u2_prev = j > 0 ? u2[j - 1] : 0.0;
    const double u3_prev = j > 0 ? u3[j - 1] : 0.0;
    const double sum = p1 * u1[j] + p2 * u1_prev + u2_prev + u3_prev;
    up[j] = sum < 1.0 ? sum : 1.0;
    cell_max = cell_max < up[j] ? up[j] : cell_max;
  }
  return cell_max;
}

/// One row of the event-count DP (Theorem 2, event_dp.cc): folds an event of
/// probability `alpha` into `dist[0..upto]` in place:
///   dist[j] = alpha * dist[j-1] + (1-alpha) * dist[j]   for j = upto..1,
///   dist[0] *= 1 - alpha.
/// Each new lane depends only on old lanes j-1 and j, so any descending
/// block order computes the same bits.
inline void EventDpStep(double alpha, int upto, double* dist) {
  const double beta = 1.0 - alpha;
  for (int j = upto; j >= 1; --j) {
    dist[j] = alpha * dist[j - 1] + beta * dist[j];
  }
  dist[0] *= beta;
}

/// Dot product Σ a[i]·b[i] with the layer's fixed 4-slot fold: term i goes
/// to slot i%4 in ascending i order; slots combine as (s0+s1)+(s2+s3).
/// The fold is the kernel's contract — scalar, SSE2 (two 2-lane
/// accumulators) and AVX2 (one 4-lane accumulator) all produce the slots,
/// and therefore the result, bit-for-bit.
inline double DotSlots(const double* a, const double* b, size_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  if (i < n) s0 += a[i] * b[i];
  if (i + 1 < n) s1 += a[i + 1] * b[i + 1];
  if (i + 2 < n) s2 += a[i + 2] * b[i + 2];
  return (s0 + s1) + (s2 + s3);
}

/// Weighted index sum Σ a[i]·double(k0+i) with the same 4-slot fold as
/// DotSlots.  double(k0+i) is exact for the count-sized integers the
/// frequency summaries use, and equals double(k0)+double(i) bit-for-bit
/// (both addends are exactly representable integers), which is what the
/// vector variants compute.
inline double IotaDotSlots(const double* a, int k0, size_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i] * static_cast<double>(k0 + static_cast<int>(i));
    s1 += a[i + 1] * static_cast<double>(k0 + static_cast<int>(i) + 1);
    s2 += a[i + 2] * static_cast<double>(k0 + static_cast<int>(i) + 2);
    s3 += a[i + 3] * static_cast<double>(k0 + static_cast<int>(i) + 3);
  }
  if (i < n) s0 += a[i] * static_cast<double>(k0 + static_cast<int>(i));
  if (i + 1 < n) {
    s1 += a[i + 1] * static_cast<double>(k0 + static_cast<int>(i) + 1);
  }
  if (i + 2 < n) {
    s2 += a[i + 2] * static_cast<double>(k0 + static_cast<int>(i) + 2);
  }
  return (s0 + s1) + (s2 + s3);
}

/// The index fingerprint (FNV-1a + splitmix64 finalizer), byte-for-byte the
/// algorithm FlatPostings uses.  flat_postings.cc's public Fingerprint64
/// forwards here so the batched kernel and the single-key path can never
/// drift apart.
inline uint64_t Fingerprint64(const void* data, size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

/// Batched fingerprints: out[i] = Fingerprint64(keys[i], len).  All keys
/// share one length (segment keys have the segment's fixed length).
inline void Fingerprint64Batch(const char* const* keys, size_t len,
                               size_t count, uint64_t* out) {
  for (size_t i = 0; i < count; ++i) out[i] = Fingerprint64(keys[i], len);
}

}  // namespace scalar

// ---------------------------------------------------------------------------
// ISA variants.  SSE2/NEON variants are inline here (always compilable at
// the baseline target); AVX2 variants live in simd.cc behind
// __attribute__((target("avx2"))) and are only called when
// __builtin_cpu_supports("avx2") said so at startup.
// ---------------------------------------------------------------------------

namespace detail {

// Interleaved-FNV core shared by every batched fingerprint variant: four
// keys advance together, breaking the serial multiply dependency chain of
// one hash (~3 cycles/byte) into four independent chains the core can
// overlap.  Integer math — trivially bit-identical to the scalar reference.
// The finalizer is left to the caller (vectorized under AVX2).
inline void Fnv4(const unsigned char* p0, const unsigned char* p1,
                 const unsigned char* p2, const unsigned char* p3, size_t len,
                 uint64_t* h) {
  uint64_t h0 = 0xcbf29ce484222325ULL, h1 = h0, h2 = h0, h3 = h0;
  for (size_t b = 0; b < len; ++b) {
    h0 = (h0 ^ p0[b]) * 0x100000001b3ULL;
    h1 = (h1 ^ p1[b]) * 0x100000001b3ULL;
    h2 = (h2 ^ p2[b]) * 0x100000001b3ULL;
    h3 = (h3 ^ p3[b]) * 0x100000001b3ULL;
  }
  h[0] = h0;
  h[1] = h1;
  h[2] = h2;
  h[3] = h3;
}

// splitmix64 finalizer, scalar form.
inline uint64_t SplitmixFinalize(uint64_t h) {
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

// Batched fingerprints via the interleaved core: plain portable C++, used
// by every vector dispatch.  Measured finding (BENCH_simd.json): a vector
// splitmix finalizer — 64x64 low multiplies emulated from 32x32 products —
// loses to four scalar imuls (the h[4] store/reload adds a store-forward
// round trip, and out-of-order execution already overlaps the scalar
// finalizer chains), so the interleaved FNV core carries the whole win.
inline void Fingerprint64BatchInterleaved(const char* const* keys, size_t len,
                                          size_t count, uint64_t* out) {
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    Fnv4(reinterpret_cast<const unsigned char*>(keys[i]),
         reinterpret_cast<const unsigned char*>(keys[i + 1]),
         reinterpret_cast<const unsigned char*>(keys[i + 2]),
         reinterpret_cast<const unsigned char*>(keys[i + 3]), len, out + i);
    out[i] = SplitmixFinalize(out[i]);
    out[i + 1] = SplitmixFinalize(out[i + 1]);
    out[i + 2] = SplitmixFinalize(out[i + 2]);
    out[i + 3] = SplitmixFinalize(out[i + 3]);
  }
  for (; i < count; ++i) out[i] = scalar::Fingerprint64(keys[i], len);
}

#if defined(UJOIN_SIMD_X86)

inline double CdfCellUpdateSse2(const double* l1, const double* u1,
                                const double* u2, const double* u3,
                                const double* lsel, double p1, double p2,
                                int width, double* lo, double* up) {
  // Lane 0 reads the implicit -1 neighbors as 0; keep it scalar.
  lo[0] = p1 * l1[0] < p2 * 0.0 ? p2 * 0.0 : p1 * l1[0];
  const double sum0 = p1 * u1[0] + p2 * 0.0 + 0.0 + 0.0;
  up[0] = sum0 < 1.0 ? sum0 : 1.0;
  double cell_max = 0.0 < up[0] ? up[0] : 0.0;
  const __m128d vp1 = _mm_set1_pd(p1);
  const __m128d vp2 = _mm_set1_pd(p2);
  const __m128d vone = _mm_set1_pd(1.0);
  __m128d vmax = _mm_setzero_pd();
  int j = 1;
  for (; j + 1 < width; j += 2) {
    const __m128d vlo = _mm_max_pd(_mm_mul_pd(vp1, _mm_loadu_pd(l1 + j)),
                                   _mm_mul_pd(vp2, _mm_loadu_pd(lsel + j - 1)));
    _mm_storeu_pd(lo + j, vlo);
    __m128d t = _mm_mul_pd(vp1, _mm_loadu_pd(u1 + j));
    t = _mm_add_pd(t, _mm_mul_pd(vp2, _mm_loadu_pd(u1 + j - 1)));
    t = _mm_add_pd(t, _mm_loadu_pd(u2 + j - 1));
    t = _mm_add_pd(t, _mm_loadu_pd(u3 + j - 1));
    const __m128d vup = _mm_min_pd(vone, t);
    _mm_storeu_pd(up + j, vup);
    vmax = _mm_max_pd(vmax, vup);
  }
  const __m128d vmax_hi = _mm_unpackhi_pd(vmax, vmax);
  const double m = _mm_cvtsd_f64(_mm_max_sd(vmax, vmax_hi));
  cell_max = cell_max < m ? m : cell_max;
  for (; j < width; ++j) {
    lo[j] = p1 * l1[j] < p2 * lsel[j - 1] ? p2 * lsel[j - 1] : p1 * l1[j];
    const double sum = p1 * u1[j] + p2 * u1[j - 1] + u2[j - 1] + u3[j - 1];
    up[j] = sum < 1.0 ? sum : 1.0;
    cell_max = cell_max < up[j] ? up[j] : cell_max;
  }
  return cell_max;
}

inline void EventDpStepSse2(double alpha, int upto, double* dist) {
  const double beta = 1.0 - alpha;
  const __m128d va = _mm_set1_pd(alpha);
  const __m128d vb = _mm_set1_pd(beta);
  int j = upto;
  // Descending 2-lane blocks [j-1, j]: each block reads only lanes the
  // blocks above it did not write (they wrote >= j+1), so in-place is safe.
  for (; j >= 2; j -= 2) {
    const __m128d cur = _mm_loadu_pd(dist + j - 1);
    const __m128d prev = _mm_loadu_pd(dist + j - 2);
    _mm_storeu_pd(dist + j - 1,
                  _mm_add_pd(_mm_mul_pd(va, prev), _mm_mul_pd(vb, cur)));
  }
  for (; j >= 1; --j) dist[j] = alpha * dist[j - 1] + beta * dist[j];
  dist[0] *= beta;
}

inline double DotSlotsSse2(const double* a, const double* b, size_t n) {
  // Two 2-lane accumulators hold the contract's slots (s0,s1) and (s2,s3).
  __m128d acc01 = _mm_setzero_pd();
  __m128d acc23 = _mm_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc01 = _mm_add_pd(acc01,
                       _mm_mul_pd(_mm_loadu_pd(a + i), _mm_loadu_pd(b + i)));
    acc23 = _mm_add_pd(
        acc23, _mm_mul_pd(_mm_loadu_pd(a + i + 2), _mm_loadu_pd(b + i + 2)));
  }
  double s[4];
  _mm_storeu_pd(s + 0, acc01);
  _mm_storeu_pd(s + 2, acc23);
  for (; i < n; ++i) s[i & 3] += a[i] * b[i];
  return (s[0] + s[1]) + (s[2] + s[3]);
}

inline double IotaDotSlotsSse2(const double* a, int k0, size_t n) {
  __m128d acc01 = _mm_setzero_pd();
  __m128d acc23 = _mm_setzero_pd();
  const __m128d four = _mm_set1_pd(4.0);
  // double(k0 + i) == double(k0) + double(i) exactly (integer-valued
  // doubles), so the lanes can carry a running index vector.
  __m128d idx01 = _mm_set_pd(static_cast<double>(k0) + 1.0,
                             static_cast<double>(k0));
  __m128d idx23 = _mm_set_pd(static_cast<double>(k0) + 3.0,
                             static_cast<double>(k0) + 2.0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc01 = _mm_add_pd(acc01, _mm_mul_pd(_mm_loadu_pd(a + i), idx01));
    acc23 = _mm_add_pd(acc23, _mm_mul_pd(_mm_loadu_pd(a + i + 2), idx23));
    idx01 = _mm_add_pd(idx01, four);
    idx23 = _mm_add_pd(idx23, four);
  }
  double s[4];
  _mm_storeu_pd(s + 0, acc01);
  _mm_storeu_pd(s + 2, acc23);
  for (; i < n; ++i) {
    s[i & 3] += a[i] * static_cast<double>(k0 + static_cast<int>(i));
  }
  return (s[0] + s[1]) + (s[2] + s[3]);
}

// AVX2 variants (simd.cc, compiled with target("avx2"), dispatched only
// when the CPU supports it).
double CdfCellUpdateAvx2(const double* l1, const double* u1, const double* u2,
                         const double* u3, const double* lsel, double p1,
                         double p2, int width, double* lo, double* up);
void EventDpStepAvx2(double alpha, int upto, double* dist);
double DotSlotsAvx2(const double* a, const double* b, size_t n);
double IotaDotSlotsAvx2(const double* a, int k0, size_t n);

#elif defined(UJOIN_SIMD_NEON)

inline double CdfCellUpdateNeon(const double* l1, const double* u1,
                                const double* u2, const double* u3,
                                const double* lsel, double p1, double p2,
                                int width, double* lo, double* up) {
  lo[0] = p1 * l1[0] < p2 * 0.0 ? p2 * 0.0 : p1 * l1[0];
  const double sum0 = p1 * u1[0] + p2 * 0.0 + 0.0 + 0.0;
  up[0] = sum0 < 1.0 ? sum0 : 1.0;
  double cell_max = 0.0 < up[0] ? up[0] : 0.0;
  const float64x2_t vp1 = vdupq_n_f64(p1);
  const float64x2_t vp2 = vdupq_n_f64(p2);
  const float64x2_t vone = vdupq_n_f64(1.0);
  float64x2_t vmax = vdupq_n_f64(0.0);
  int j = 1;
  for (; j + 1 < width; j += 2) {
    const float64x2_t vlo = vmaxq_f64(vmulq_f64(vp1, vld1q_f64(l1 + j)),
                                      vmulq_f64(vp2, vld1q_f64(lsel + j - 1)));
    vst1q_f64(lo + j, vlo);
    float64x2_t t = vmulq_f64(vp1, vld1q_f64(u1 + j));
    t = vaddq_f64(t, vmulq_f64(vp2, vld1q_f64(u1 + j - 1)));
    t = vaddq_f64(t, vld1q_f64(u2 + j - 1));
    t = vaddq_f64(t, vld1q_f64(u3 + j - 1));
    const float64x2_t vup = vminq_f64(vone, t);
    vst1q_f64(up + j, vup);
    vmax = vmaxq_f64(vmax, vup);
  }
  const double m = vmaxvq_f64(vmax);
  cell_max = cell_max < m ? m : cell_max;
  for (; j < width; ++j) {
    lo[j] = p1 * l1[j] < p2 * lsel[j - 1] ? p2 * lsel[j - 1] : p1 * l1[j];
    const double sum = p1 * u1[j] + p2 * u1[j - 1] + u2[j - 1] + u3[j - 1];
    up[j] = sum < 1.0 ? sum : 1.0;
    cell_max = cell_max < up[j] ? up[j] : cell_max;
  }
  return cell_max;
}

inline void EventDpStepNeon(double alpha, int upto, double* dist) {
  const double beta = 1.0 - alpha;
  const float64x2_t va = vdupq_n_f64(alpha);
  const float64x2_t vb = vdupq_n_f64(beta);
  int j = upto;
  for (; j >= 2; j -= 2) {
    const float64x2_t cur = vld1q_f64(dist + j - 1);
    const float64x2_t prev = vld1q_f64(dist + j - 2);
    vst1q_f64(dist + j - 1, vaddq_f64(vmulq_f64(va, prev), vmulq_f64(vb, cur)));
  }
  for (; j >= 1; --j) dist[j] = alpha * dist[j - 1] + beta * dist[j];
  dist[0] *= beta;
}

inline double DotSlotsNeon(const double* a, const double* b, size_t n) {
  float64x2_t acc01 = vdupq_n_f64(0.0);
  float64x2_t acc23 = vdupq_n_f64(0.0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc01 = vaddq_f64(acc01, vmulq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
    acc23 = vaddq_f64(acc23,
                      vmulq_f64(vld1q_f64(a + i + 2), vld1q_f64(b + i + 2)));
  }
  double s[4];
  vst1q_f64(s + 0, acc01);
  vst1q_f64(s + 2, acc23);
  for (; i < n; ++i) s[i & 3] += a[i] * b[i];
  return (s[0] + s[1]) + (s[2] + s[3]);
}

inline double IotaDotSlotsNeon(const double* a, int k0, size_t n) {
  float64x2_t acc01 = vdupq_n_f64(0.0);
  float64x2_t acc23 = vdupq_n_f64(0.0);
  const float64x2_t four = vdupq_n_f64(4.0);
  const double base = static_cast<double>(k0);
  float64x2_t idx01 = {base, base + 1.0};
  float64x2_t idx23 = {base + 2.0, base + 3.0};
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc01 = vaddq_f64(acc01, vmulq_f64(vld1q_f64(a + i), idx01));
    acc23 = vaddq_f64(acc23, vmulq_f64(vld1q_f64(a + i + 2), idx23));
    idx01 = vaddq_f64(idx01, four);
    idx23 = vaddq_f64(idx23, four);
  }
  double s[4];
  vst1q_f64(s + 0, acc01);
  vst1q_f64(s + 2, acc23);
  for (; i < n; ++i) {
    s[i & 3] += a[i] * static_cast<double>(k0 + static_cast<int>(i));
  }
  return (s[0] + s[1]) + (s[2] + s[3]);
}

#endif  // UJOIN_SIMD_X86 / UJOIN_SIMD_NEON

}  // namespace detail

// ---------------------------------------------------------------------------
// Dispatched entry points: what the pipeline calls.
// ---------------------------------------------------------------------------

/// See scalar::CdfCellUpdate.
inline double CdfCellUpdate(const double* l1, const double* u1,
                            const double* u2, const double* u3,
                            const double* lsel, double p1, double p2,
                            int width, double* lo, double* up) {
#if defined(UJOIN_SIMD_X86)
  if (ActiveIsa() == Isa::kAvx2) {
    return detail::CdfCellUpdateAvx2(l1, u1, u2, u3, lsel, p1, p2, width, lo,
                                     up);
  }
  return detail::CdfCellUpdateSse2(l1, u1, u2, u3, lsel, p1, p2, width, lo,
                                   up);
#elif defined(UJOIN_SIMD_NEON)
  return detail::CdfCellUpdateNeon(l1, u1, u2, u3, lsel, p1, p2, width, lo,
                                   up);
#else
  return scalar::CdfCellUpdate(l1, u1, u2, u3, lsel, p1, p2, width, lo, up);
#endif
}

/// See scalar::EventDpStep.
inline void EventDpStep(double alpha, int upto, double* dist) {
#if defined(UJOIN_SIMD_X86)
  if (ActiveIsa() == Isa::kAvx2) {
    detail::EventDpStepAvx2(alpha, upto, dist);
    return;
  }
  detail::EventDpStepSse2(alpha, upto, dist);
#elif defined(UJOIN_SIMD_NEON)
  detail::EventDpStepNeon(alpha, upto, dist);
#else
  scalar::EventDpStep(alpha, upto, dist);
#endif
}

/// See scalar::DotSlots.
inline double DotSlots(const double* a, const double* b, size_t n) {
#if defined(UJOIN_SIMD_X86)
  if (ActiveIsa() == Isa::kAvx2) return detail::DotSlotsAvx2(a, b, n);
  return detail::DotSlotsSse2(a, b, n);
#elif defined(UJOIN_SIMD_NEON)
  return detail::DotSlotsNeon(a, b, n);
#else
  return scalar::DotSlots(a, b, n);
#endif
}

/// See scalar::IotaDotSlots.
inline double IotaDotSlots(const double* a, int k0, size_t n) {
#if defined(UJOIN_SIMD_X86)
  if (ActiveIsa() == Isa::kAvx2) return detail::IotaDotSlotsAvx2(a, k0, n);
  return detail::IotaDotSlotsSse2(a, k0, n);
#elif defined(UJOIN_SIMD_NEON)
  return detail::IotaDotSlotsNeon(a, k0, n);
#else
  return scalar::IotaDotSlots(a, k0, n);
#endif
}

/// See scalar::Fingerprint64Batch.  Every vector ISA dispatches to the same
/// interleaved core — see its comment for why there is no AVX2 variant.
inline void Fingerprint64Batch(const char* const* keys, size_t len,
                               size_t count, uint64_t* out) {
#if defined(UJOIN_SIMD_X86) || defined(UJOIN_SIMD_NEON)
  detail::Fingerprint64BatchInterleaved(keys, len, count, out);
#else
  scalar::Fingerprint64Batch(keys, len, count, out);
#endif
}

// ---------------------------------------------------------------------------
// Software prefetch.  Purely a scheduling hint — results never depend on it
// — so it is grouped with the kernel layer only because __builtin_prefetch
// is restricted to this file by the same lint rule as the intrinsics.
// A -DUJOIN_SIMD=off build compiles both to nothing, keeping the scalar
// configuration free of every architecture-aware instruction.
// ---------------------------------------------------------------------------

/// Hints the read of the cache line at `p` (moderate temporal locality).
inline void PrefetchRead(const void* p) {
#if !defined(UJOIN_SIMD_DISABLED) && (defined(__GNUC__) || defined(__clang__))
  __builtin_prefetch(p, 0, 2);
#else
  (void)p;
#endif
}

/// PrefetchRead of `p + byte_offset`, computed over uintptr_t so a hint a
/// few lines past the end of an array stays free of pointer-arithmetic UB
/// (prefetch of any address, mapped or not, is architecturally a no-op).
inline void PrefetchReadOffset(const void* p, size_t byte_offset) {
  PrefetchRead(reinterpret_cast<const void*>(reinterpret_cast<uintptr_t>(p) +
                                             byte_offset));
}

}  // namespace simd
}  // namespace ujoin

#endif  // UJOIN_UTIL_SIMD_H_
