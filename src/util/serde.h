#ifndef UJOIN_UTIL_SERDE_H_
#define UJOIN_UTIL_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace ujoin {

/// \brief Little binary serialization layer used for index persistence.
///
/// Values are written in native byte order with explicit sizes; strings and
/// vectors are length-prefixed with uint64.  The reader bounds-checks every
/// access and reports corruption as Status instead of crashing, so loading
/// an untrusted or truncated file is safe.
class BinaryWriter {
 public:
  void WriteU8(uint8_t v) { Append(&v, sizeof(v)); }
  void WriteU32(uint32_t v) { Append(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { Append(&v, sizeof(v)); }
  void WriteI32(int32_t v) { Append(&v, sizeof(v)); }
  void WriteI64(int64_t v) { Append(&v, sizeof(v)); }
  void WriteDouble(double v) { Append(&v, sizeof(v)); }
  void WriteString(std::string_view s) {
    WriteU64(s.size());
    Append(s.data(), s.size());
  }

  const std::string& buffer() const { return buffer_; }

  /// Writes the accumulated buffer to `path` atomically enough for tests
  /// (write + rename is overkill here; document non-atomicity).
  Status WriteToFile(const std::string& path) const;

 private:
  void Append(const void* data, size_t size) {
    buffer_.append(static_cast<const char*>(data), size);
  }

  std::string buffer_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::string buffer) : buffer_(std::move(buffer)) {}

  /// Reads a whole file into a reader.
  static Result<BinaryReader> FromFile(const std::string& path);

  Result<uint8_t> ReadU8() { return ReadScalar<uint8_t>(); }
  Result<uint32_t> ReadU32() { return ReadScalar<uint32_t>(); }
  Result<uint64_t> ReadU64() { return ReadScalar<uint64_t>(); }
  Result<int32_t> ReadI32() { return ReadScalar<int32_t>(); }
  Result<int64_t> ReadI64() { return ReadScalar<int64_t>(); }
  Result<double> ReadDouble() { return ReadScalar<double>(); }

  Result<std::string> ReadString() {
    Result<uint64_t> size = ReadU64();
    if (!size.ok()) return size.status();
    if (*size > buffer_.size() - offset_) {
      return Corrupt("string length exceeds remaining bytes");
    }
    std::string out = buffer_.substr(offset_, *size);
    offset_ += *size;
    return out;
  }

  /// True when every byte has been consumed.
  bool AtEnd() const { return offset_ == buffer_.size(); }

 private:
  template <typename T>
  Result<T> ReadScalar() {
    if (sizeof(T) > buffer_.size() - offset_) {
      return Corrupt("scalar read past end of buffer");
    }
    T v;
    std::memcpy(&v, buffer_.data() + offset_, sizeof(T));
    offset_ += sizeof(T);
    return v;
  }

  static Status Corrupt(const char* what) {
    return Status::InvalidArgument(std::string("corrupt input: ") + what);
  }

  std::string buffer_;
  size_t offset_ = 0;
};

}  // namespace ujoin

#endif  // UJOIN_UTIL_SERDE_H_
