#include "util/simd.h"

// AVX2 kernel variants and the one-time ISA detection.  Everything here
// compiles at the baseline target; the AVX2 function bodies are opted into
// the wider ISA per-function with __attribute__((target)) and are only ever
// called after __builtin_cpu_supports("avx2") approved (detail::kActiveIsa).

namespace ujoin {
namespace simd {

namespace {

Isa DetectIsa() {
#if defined(UJOIN_SIMD_X86)
#if defined(__GNUC__) || defined(__clang__)
  if (__builtin_cpu_supports("avx2")) return Isa::kAvx2;
#endif
  return Isa::kSse2;
#elif defined(UJOIN_SIMD_NEON)
  return Isa::kNeon;
#else
  return Isa::kScalar;
#endif
}

}  // namespace

namespace detail {
const Isa kActiveIsa = DetectIsa();
}  // namespace detail

const char* ActiveIsaName() {
  switch (ActiveIsa()) {
    case Isa::kSse2:
      return "sse2";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kNeon:
      return "neon";
    case Isa::kScalar:
      break;
  }
  return "scalar";
}

#if defined(UJOIN_SIMD_X86)

namespace detail {

__attribute__((target("avx2"))) double CdfCellUpdateAvx2(
    const double* l1, const double* u1, const double* u2, const double* u3,
    const double* lsel, double p1, double p2, int width, double* lo,
    double* up) {
  // Lane 0 reads the implicit -1 neighbors as 0; keep it scalar.
  lo[0] = p1 * l1[0] < p2 * 0.0 ? p2 * 0.0 : p1 * l1[0];
  const double sum0 = p1 * u1[0] + p2 * 0.0 + 0.0 + 0.0;
  up[0] = sum0 < 1.0 ? sum0 : 1.0;
  double cell_max = 0.0 < up[0] ? up[0] : 0.0;
  const __m256d vp1 = _mm256_set1_pd(p1);
  const __m256d vp2 = _mm256_set1_pd(p2);
  const __m256d vone = _mm256_set1_pd(1.0);
  __m256d vmax = _mm256_setzero_pd();
  int j = 1;
  for (; j + 3 < width; j += 4) {
    const __m256d vlo =
        _mm256_max_pd(_mm256_mul_pd(vp1, _mm256_loadu_pd(l1 + j)),
                      _mm256_mul_pd(vp2, _mm256_loadu_pd(lsel + j - 1)));
    _mm256_storeu_pd(lo + j, vlo);
    __m256d t = _mm256_mul_pd(vp1, _mm256_loadu_pd(u1 + j));
    t = _mm256_add_pd(t, _mm256_mul_pd(vp2, _mm256_loadu_pd(u1 + j - 1)));
    t = _mm256_add_pd(t, _mm256_loadu_pd(u2 + j - 1));
    t = _mm256_add_pd(t, _mm256_loadu_pd(u3 + j - 1));
    const __m256d vup = _mm256_min_pd(vone, t);
    _mm256_storeu_pd(up + j, vup);
    vmax = _mm256_max_pd(vmax, vup);
  }
  const __m128d pair =
      _mm_max_pd(_mm256_castpd256_pd128(vmax), _mm256_extractf128_pd(vmax, 1));
  const double m = _mm_cvtsd_f64(_mm_max_sd(pair, _mm_unpackhi_pd(pair, pair)));
  cell_max = cell_max < m ? m : cell_max;
  for (; j < width; ++j) {
    lo[j] = p1 * l1[j] < p2 * lsel[j - 1] ? p2 * lsel[j - 1] : p1 * l1[j];
    const double sum = p1 * u1[j] + p2 * u1[j - 1] + u2[j - 1] + u3[j - 1];
    up[j] = sum < 1.0 ? sum : 1.0;
    cell_max = cell_max < up[j] ? up[j] : cell_max;
  }
  return cell_max;
}

__attribute__((target("avx2"))) void EventDpStepAvx2(double alpha, int upto,
                                                     double* dist) {
  const double beta = 1.0 - alpha;
  const __m256d va = _mm256_set1_pd(alpha);
  const __m256d vb = _mm256_set1_pd(beta);
  int j = upto;
  // Descending 4-lane blocks [j-3, j]: blocks above wrote only lanes >= j+1,
  // so every load below still sees old values — in-place is safe.
  for (; j >= 4; j -= 4) {
    const __m256d cur = _mm256_loadu_pd(dist + j - 3);
    const __m256d prev = _mm256_loadu_pd(dist + j - 4);
    _mm256_storeu_pd(
        dist + j - 3,
        _mm256_add_pd(_mm256_mul_pd(va, prev), _mm256_mul_pd(vb, cur)));
  }
  for (; j >= 1; --j) dist[j] = alpha * dist[j - 1] + beta * dist[j];
  dist[0] *= beta;
}

__attribute__((target("avx2"))) double DotSlotsAvx2(const double* a,
                                                    const double* b,
                                                    size_t n) {
  // One 4-lane accumulator holds the contract's slots (s0, s1, s2, s3).
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(acc,
                        _mm256_mul_pd(_mm256_loadu_pd(a + i),
                                      _mm256_loadu_pd(b + i)));
  }
  double s[4];
  _mm256_storeu_pd(s, acc);
  for (; i < n; ++i) s[i & 3] += a[i] * b[i];
  return (s[0] + s[1]) + (s[2] + s[3]);
}

__attribute__((target("avx2"))) double IotaDotSlotsAvx2(const double* a,
                                                        int k0, size_t n) {
  __m256d acc = _mm256_setzero_pd();
  const __m256d four = _mm256_set1_pd(4.0);
  const double base = static_cast<double>(k0);
  __m256d idx = _mm256_set_pd(base + 3.0, base + 2.0, base + 1.0, base);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_loadu_pd(a + i), idx));
    idx = _mm256_add_pd(idx, four);
  }
  double s[4];
  _mm256_storeu_pd(s, acc);
  for (; i < n; ++i) {
    s[i & 3] += a[i] * static_cast<double>(k0 + static_cast<int>(i));
  }
  return (s[0] + s[1]) + (s[2] + s[3]);
}

// There is deliberately no Fingerprint64BatchAvx2: the batched fingerprint
// dispatches to detail::Fingerprint64BatchInterleaved (simd.h) on every
// vector ISA.  A vectorized splitmix finalizer was tried and measured
// slower — see the interleaved kernel's comment.

}  // namespace detail

#endif  // defined(UJOIN_SIMD_X86)

}  // namespace simd
}  // namespace ujoin
