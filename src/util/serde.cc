#include "util/serde.h"

#include <fstream>

namespace ujoin {

Status BinaryWriter::WriteToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out.write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
  if (!out) return Status::IoError("write to '" + path + "' failed");
  return Status::OK();
}

Result<BinaryReader> BinaryReader::FromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");
  std::string buffer((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IoError("read from '" + path + "' failed");
  return BinaryReader(std::move(buffer));
}

}  // namespace ujoin
