#ifndef UJOIN_UTIL_CHECK_H_
#define UJOIN_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace ujoin::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "ujoin check failed at %s:%d: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace ujoin::internal

/// Aborts the process when an internal invariant is violated.  These guard
/// programmer errors, not user input; user input errors surface as Status.
#define UJOIN_CHECK(expr)                                         \
  do {                                                            \
    if (!(expr)) ::ujoin::internal::CheckFailed(__FILE__, __LINE__, #expr); \
  } while (0)

#ifndef NDEBUG
#define UJOIN_DCHECK(expr) UJOIN_CHECK(expr)
#else
#define UJOIN_DCHECK(expr) \
  do {                     \
  } while (0)
#endif

#endif  // UJOIN_UTIL_CHECK_H_
