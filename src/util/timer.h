#ifndef UJOIN_UTIL_TIMER_H_
#define UJOIN_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace ujoin {

/// \brief Monotonic wall-clock stopwatch used by the per-stage join
/// statistics and the benchmark harnesses.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Resets the stopwatch to zero.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Reset, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in microseconds.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief Adds the scope's wall time to an accumulator on destruction.
///
/// Used to attribute join time to pipeline stages without littering the
/// driver with explicit stopwatch bookkeeping.
class ScopedTimer {
 public:
  explicit ScopedTimer(double* accumulator_seconds)
      : accumulator_(accumulator_seconds) {}
  ~ScopedTimer() { *accumulator_ += timer_.ElapsedSeconds(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double* accumulator_;
  Timer timer_;
};

}  // namespace ujoin

#endif  // UJOIN_UTIL_TIMER_H_
