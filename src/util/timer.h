#ifndef UJOIN_UTIL_TIMER_H_
#define UJOIN_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace ujoin {

/// \brief Monotonic wall-clock stopwatch used by the per-stage join
/// statistics and the benchmark harnesses.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Resets the stopwatch to zero.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Reset, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in microseconds.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

  /// Elapsed time in nanoseconds.  Sub-millisecond stages (per-pair filter
  /// and verification scopes) accumulate these integer nanoseconds instead
  /// of round-tripping through seconds-doubles, which lose precision once
  /// the accumulator grows.
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief Adds the scope's wall time to an accumulator on destruction.
///
/// Used to attribute join time to pipeline stages without littering the
/// driver with explicit stopwatch bookkeeping.
class ScopedTimer {
 public:
  explicit ScopedTimer(double* accumulator_seconds)
      : accumulator_(accumulator_seconds) {}
  ~ScopedTimer() {
    if (accumulator_ != nullptr) *accumulator_ += timer_.ElapsedSeconds();
  }

  /// Stops the clock now: adds the elapsed time to the accumulator, detaches
  /// (the destructor becomes a no-op), and returns the elapsed seconds so
  /// callers can reuse the measurement (e.g. feed it to a histogram) without
  /// reading the clock twice.
  double StopAndGet() {
    const double elapsed = timer_.ElapsedSeconds();
    if (accumulator_ != nullptr) {
      *accumulator_ += elapsed;
      accumulator_ = nullptr;
    }
    return elapsed;
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double* accumulator_;
  Timer timer_;
};

/// \brief Nanosecond-precision counterpart of ScopedTimer.
///
/// Accumulates integer nanoseconds into an int64 so sub-millisecond stages
/// measured per pair do not lose precision in a double accumulator; drivers
/// fold the total into the seconds-based JoinStats fields once per rank.
class ScopedNanoTimer {
 public:
  explicit ScopedNanoTimer(int64_t* accumulator_ns)
      : accumulator_(accumulator_ns) {}
  ~ScopedNanoTimer() {
    if (accumulator_ != nullptr) *accumulator_ += timer_.ElapsedNanos();
  }

  /// Stops the clock now, adds to the accumulator, detaches, and returns the
  /// elapsed nanoseconds.
  int64_t StopAndGet() {
    const int64_t elapsed = timer_.ElapsedNanos();
    if (accumulator_ != nullptr) {
      *accumulator_ += elapsed;
      accumulator_ = nullptr;
    }
    return elapsed;
  }

  ScopedNanoTimer(const ScopedNanoTimer&) = delete;
  ScopedNanoTimer& operator=(const ScopedNanoTimer&) = delete;

 private:
  int64_t* accumulator_;
  Timer timer_;
};

}  // namespace ujoin

#endif  // UJOIN_UTIL_TIMER_H_
