#ifndef UJOIN_UTIL_STATUS_H_
#define UJOIN_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace ujoin {

/// \brief Error category attached to a failed Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kResourceExhausted,
  kFailedPrecondition,
  kIoError,
  kInternal,
};

/// \brief Returns a stable human-readable name for a status code.
const char* StatusCodeName(StatusCode code);

/// \brief Success-or-error outcome of a fallible operation.
///
/// ujoin never throws across its public API: operations that can fail return a
/// Status (or a Result<T>, below).  Statuses are cheap to copy in the success
/// case and carry a code plus message otherwise.
class Status {
 public:
  /// Constructs an OK (successful) status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// \brief Value-or-error result of a fallible operation producing a T.
///
/// A Result is either a value (status().ok()) or an error Status.  Accessing
/// the value of an errored Result aborts, so call sites must check first:
///
///   Result<UncertainString> r = UncertainString::Parse(text, alphabet);
///   if (!r.ok()) return r.status();
///   Use(r.value());
template <typename T>
class Result {
 public:
  /// Implicit from a value: makes `return some_t;` work.
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from an error status (must not be OK).
  Result(Status status) : payload_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(payload_); }

  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  const T& value() const& { return std::get<T>(payload_); }
  T& value() & { return std::get<T>(payload_); }
  T&& value() && { return std::get<T>(std::move(payload_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> payload_;
};

/// Propagates a non-OK Status from the enclosing function.
#define UJOIN_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::ujoin::Status _ujoin_st = (expr);              \
    if (!_ujoin_st.ok()) return _ujoin_st;           \
  } while (0)

}  // namespace ujoin

#endif  // UJOIN_UTIL_STATUS_H_
