#ifndef UJOIN_UTIL_MATH_UTIL_H_
#define UJOIN_UTIL_MATH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace ujoin {

/// Probabilities accumulated over many floating-point operations can drift a
/// hair outside [0, 1]; tolerance used when validating / clamping them.
inline constexpr double kProbEpsilon = 1e-9;

/// Clamps a computed probability into [0, 1].
inline double ClampProb(double p) { return std::clamp(p, 0.0, 1.0); }

/// True when |a - b| is within an absolute-plus-relative tolerance; used by
/// internal sanity checks on probability arithmetic.
inline bool ApproxEqual(double a, double b, double tol = kProbEpsilon) {
  return std::fabs(a - b) <= tol * (1.0 + std::max(std::fabs(a), std::fabs(b)));
}

/// Saturating multiply for world counts: the number of possible worlds of an
/// uncertain string overflows int64 quickly, so counting code saturates at
/// kWorldCountCap instead of overflowing.
inline constexpr int64_t kWorldCountCap = INT64_MAX / 2;

inline int64_t SaturatingMul(int64_t a, int64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > kWorldCountCap / b) return kWorldCountCap;
  return a * b;
}

}  // namespace ujoin

#endif  // UJOIN_UTIL_MATH_UTIL_H_
