#ifndef UJOIN_UTIL_RNG_H_
#define UJOIN_UTIL_RNG_H_

#include <cmath>
#include <cstdint>

#include "util/check.h"

namespace ujoin {

/// \brief Small, fast, deterministic pseudo-random generator (xoshiro256**).
///
/// Every randomized component in ujoin (data generation, property tests,
/// benchmark workloads) takes an explicit seed so that runs are reproducible
/// across machines; std::mt19937 distributions are implementation-defined,
/// which is why we ship our own.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97f4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound); bound must be positive.
  uint64_t Uniform(uint64_t bound) {
    UJOIN_DCHECK(bound > 0);
    // Multiply-shift rejection-free mapping (Lemire); bias is negligible for
    // the bounds used in this library (<< 2^32).
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    UJOIN_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Standard normal variate (Marsaglia polar method).
  double Normal() {
    for (;;) {
      double u = 2.0 * UniformDouble() - 1.0;
      double v = 2.0 * UniformDouble() - 1.0;
      double s = u * u + v * v;
      if (s > 0.0 && s < 1.0) {
        double factor = std::sqrt(-2.0 * std::log(s) / s);
        return u * factor;
      }
    }
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace ujoin

#endif  // UJOIN_UTIL_RNG_H_
