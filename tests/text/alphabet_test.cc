#include "text/alphabet.h"

#include <gtest/gtest.h>

namespace ujoin {
namespace {

TEST(AlphabetTest, CreateMapsSymbolsToDenseIndices) {
  Result<Alphabet> a = Alphabet::Create("ACGT");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->size(), 4);
  EXPECT_EQ(a->IndexOf('A'), 0);
  EXPECT_EQ(a->IndexOf('C'), 1);
  EXPECT_EQ(a->IndexOf('G'), 2);
  EXPECT_EQ(a->IndexOf('T'), 3);
  EXPECT_EQ(a->SymbolAt(2), 'G');
}

TEST(AlphabetTest, IndexOfUnknownSymbolIsNegative) {
  Alphabet dna = Alphabet::Dna();
  EXPECT_EQ(dna.IndexOf('X'), -1);
  EXPECT_FALSE(dna.Contains('x'));
  EXPECT_TRUE(dna.Contains('T'));
}

TEST(AlphabetTest, RejectsEmptyAlphabet) {
  Result<Alphabet> a = Alphabet::Create("");
  ASSERT_FALSE(a.ok());
  EXPECT_EQ(a.status().code(), StatusCode::kInvalidArgument);
}

TEST(AlphabetTest, RejectsDuplicateSymbols) {
  Result<Alphabet> a = Alphabet::Create("ABCA");
  ASSERT_FALSE(a.ok());
  EXPECT_EQ(a.status().code(), StatusCode::kInvalidArgument);
}

TEST(AlphabetTest, FactoriesMatchPaperSizes) {
  EXPECT_EQ(Alphabet::Names().size(), 27);    // dblp: |Σ| = 27
  EXPECT_EQ(Alphabet::Protein().size(), 22);  // protein: |Σ| = 22
  EXPECT_EQ(Alphabet::Dna().size(), 4);
}

TEST(AlphabetTest, NamesIncludesSpace) {
  EXPECT_TRUE(Alphabet::Names().Contains(' '));
  EXPECT_TRUE(Alphabet::Names().Contains('a'));
  EXPECT_FALSE(Alphabet::Names().Contains('A'));
}

TEST(AlphabetTest, SymbolsRoundTripThroughIndex) {
  Alphabet p = Alphabet::Protein();
  for (int i = 0; i < p.size(); ++i) {
    EXPECT_EQ(p.IndexOf(p.SymbolAt(i)), i);
  }
}

}  // namespace
}  // namespace ujoin
