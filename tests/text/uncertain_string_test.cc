#include "text/uncertain_string.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"
#include "text/alphabet.h"
#include "text/possible_worlds.h"
#include "util/math_util.h"
#include "util/rng.h"

namespace ujoin {
namespace {

constexpr double kTol = 1e-12;

TEST(UncertainStringTest, FromDeterministicIsAllCertain) {
  UncertainString s = UncertainString::FromDeterministic("ACGT");
  EXPECT_EQ(s.length(), 4);
  EXPECT_TRUE(s.IsDeterministic());
  EXPECT_EQ(s.NumUncertainPositions(), 0);
  EXPECT_EQ(s.WorldCount(), 1);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(s.IsCertain(i));
    EXPECT_EQ(s.NumAlternatives(i), 1);
  }
  EXPECT_EQ(s.MostLikelyInstance(), "ACGT");
}

TEST(UncertainStringTest, ParsePaperNotation) {
  Alphabet dna = Alphabet::Dna();
  // The S3 string from Table 1 of the paper.
  Result<UncertainString> s =
      UncertainString::Parse("A{(C,0.5),(G,0.5)}A{(C,0.5),(G,0.5)}AC", dna);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_EQ(s->length(), 6);
  EXPECT_EQ(s->NumUncertainPositions(), 2);
  EXPECT_EQ(s->WorldCount(), 4);
  EXPECT_TRUE(s->IsCertain(0));
  EXPECT_FALSE(s->IsCertain(1));
  EXPECT_NEAR(s->ProbabilityOf(1, 'C'), 0.5, kTol);
  EXPECT_NEAR(s->ProbabilityOf(1, 'G'), 0.5, kTol);
  EXPECT_NEAR(s->ProbabilityOf(1, 'A'), 0.0, kTol);
}

TEST(UncertainStringTest, ParseFormatsRoundTrip) {
  Alphabet dna = Alphabet::Dna();
  const std::string text = "G{(A,0.8),(G,0.2)}CT{(A,0.8),(C,0.1),(T,0.1)}C";
  Result<UncertainString> s = UncertainString::Parse(text, dna);
  ASSERT_TRUE(s.ok());
  Result<UncertainString> reparsed = UncertainString::Parse(s->ToString(), dna);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_TRUE(*s == *reparsed);
}

TEST(UncertainStringTest, ParseRejectsUnknownSymbol) {
  Alphabet dna = Alphabet::Dna();
  EXPECT_FALSE(UncertainString::Parse("AXC", dna).ok());
  EXPECT_FALSE(UncertainString::Parse("A{(X,1.0)}", dna).ok());
}

TEST(UncertainStringTest, ParseRejectsMalformedInput) {
  Alphabet dna = Alphabet::Dna();
  EXPECT_FALSE(UncertainString::Parse("A{(C,0.5)", dna).ok());    // no '}'
  EXPECT_FALSE(UncertainString::Parse("A{C,0.5)}", dna).ok());    // no '('
  EXPECT_FALSE(UncertainString::Parse("A{(C0.5)}", dna).ok());    // no ','
  EXPECT_FALSE(UncertainString::Parse("A{(C,x)}", dna).ok());     // bad prob
  EXPECT_FALSE(UncertainString::Parse("A{(C,0.5),(G,0.2)}", dna).ok());  // sum
}

TEST(UncertainStringTest, BuilderRejectsBadDistributions) {
  {
    UncertainString::Builder b;
    b.AddUncertain({{'A', 0.5}, {'A', 0.5}});  // duplicate symbol
    EXPECT_FALSE(b.Build().ok());
  }
  {
    UncertainString::Builder b;
    b.AddUncertain({{'A', 0.7}, {'C', 0.7}});  // sums to 1.4
    EXPECT_FALSE(b.Build().ok());
  }
  {
    UncertainString::Builder b;
    b.AddUncertain({{'A', -0.5}, {'C', 1.5}});  // negative
    EXPECT_FALSE(b.Build().ok());
  }
  {
    UncertainString::Builder b;
    b.AddUncertain({});  // empty position
    EXPECT_FALSE(b.Build().ok());
  }
}

TEST(UncertainStringTest, BuilderNormalizesWithinTolerance) {
  UncertainString::Builder b;
  b.AddUncertain({{'A', 0.3000001}, {'C', 0.7}});
  Result<UncertainString> s = b.Build();
  ASSERT_TRUE(s.ok());
  const double sum = s->ProbabilityOf(0, 'A') + s->ProbabilityOf(0, 'C');
  EXPECT_NEAR(sum, 1.0, kTol);
}

TEST(UncertainStringTest, AlternativesSortedBySymbol) {
  UncertainString::Builder b;
  b.AddUncertain({{'T', 0.5}, {'A', 0.3}, {'G', 0.2}});
  Result<UncertainString> s = b.Build();
  ASSERT_TRUE(s.ok());
  auto alts = s->AlternativesAt(0);
  ASSERT_EQ(alts.size(), 3u);
  EXPECT_EQ(alts[0].symbol, 'A');
  EXPECT_EQ(alts[1].symbol, 'G');
  EXPECT_EQ(alts[2].symbol, 'T');
}

TEST(UncertainStringTest, MostLikelySymbolPrefersHighestProbability) {
  UncertainString::Builder b;
  b.AddUncertain({{'A', 0.2}, {'C', 0.5}, {'G', 0.3}});
  b.AddCertain('T');
  Result<UncertainString> s = b.Build();
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->MostLikelySymbol(0), 'C');
  EXPECT_EQ(s->MostLikelyInstance(), "CT");
}

TEST(UncertainStringTest, SubstringKeepsDistributions) {
  Alphabet dna = Alphabet::Dna();
  Result<UncertainString> s =
      UncertainString::Parse("A{(C,0.5),(G,0.5)}A{(C,0.4),(G,0.6)}AC", dna);
  ASSERT_TRUE(s.ok());
  UncertainString sub = s->Substring(1, 3);
  EXPECT_EQ(sub.length(), 3);
  EXPECT_EQ(sub.NumUncertainPositions(), 2);
  EXPECT_NEAR(sub.ProbabilityOf(0, 'C'), 0.5, kTol);
  EXPECT_NEAR(sub.ProbabilityOf(2, 'G'), 0.6, kTol);
}

TEST(UncertainStringTest, SubstringOfWholeStringEqualsOriginal) {
  Alphabet dna = Alphabet::Dna();
  Result<UncertainString> s =
      UncertainString::Parse("A{(C,0.5),(G,0.5)}AC", dna);
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->Substring(0, s->length()) == *s);
}

TEST(UncertainStringTest, ConcatJoinsStringsAndCounts) {
  Alphabet dna = Alphabet::Dna();
  Result<UncertainString> a = UncertainString::Parse("A{(C,0.5),(G,0.5)}", dna);
  Result<UncertainString> b = UncertainString::Parse("{(A,0.9),(T,0.1)}C", dna);
  ASSERT_TRUE(a.ok() && b.ok());
  UncertainString c = UncertainString::Concat(*a, *b);
  EXPECT_EQ(c.length(), 4);
  EXPECT_EQ(c.NumUncertainPositions(), 2);
  EXPECT_EQ(c.WorldCount(), 4);
  EXPECT_NEAR(c.ProbabilityOf(2, 'T'), 0.1, kTol);
  EXPECT_NEAR(c.ProbabilityOf(3, 'C'), 1.0, kTol);
}

TEST(UncertainStringTest, EmptyStringBasics) {
  UncertainString s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.length(), 0);
  EXPECT_EQ(s.WorldCount(), 1);
  EXPECT_EQ(s.ToString(), "");
}

TEST(MatchProbabilityTest, DeterministicPatternAgainstUncertainText) {
  Alphabet dna = Alphabet::Dna();
  Result<UncertainString> t =
      UncertainString::Parse("A{(C,0.5),(G,0.5)}A{(C,0.4),(G,0.6)}", dna);
  ASSERT_TRUE(t.ok());
  EXPECT_NEAR(MatchProbabilityAt("AC", *t, 0), 0.5, kTol);
  EXPECT_NEAR(MatchProbabilityAt("CA", *t, 1), 0.5, kTol);
  EXPECT_NEAR(MatchProbabilityAt("AG", *t, 2), 0.6, kTol);
  EXPECT_NEAR(MatchProbabilityAt("AC", *t, 2), 0.4, kTol);
  EXPECT_NEAR(MatchProbabilityAt("TG", *t, 2), 0.0, kTol);  // T impossible
  EXPECT_NEAR(MatchProbabilityAt("AC", *t, 3), 0.0, kTol);  // window overflow
  EXPECT_NEAR(MatchProbability("ACAC", *t), 0.5 * 0.4, kTol);
  EXPECT_NEAR(MatchProbability("ACA", *t), 0.0, kTol);  // length mismatch
}

TEST(MatchProbabilityTest, UncertainAgainstUncertainMergesAlternatives) {
  Alphabet dna = Alphabet::Dna();
  Result<UncertainString> w = UncertainString::Parse("{(A,0.5),(C,0.5)}", dna);
  Result<UncertainString> t = UncertainString::Parse("{(A,0.4),(G,0.6)}", dna);
  ASSERT_TRUE(w.ok() && t.ok());
  EXPECT_NEAR(MatchProbability(*w, *t), 0.5 * 0.4, kTol);
}

TEST(MatchProbabilityTest, MatchesBruteForceOverWorlds) {
  Alphabet dna = Alphabet::Dna();
  Rng rng(7);
  testing::RandomStringOptions opt;
  opt.min_length = 2;
  opt.max_length = 5;
  for (int trial = 0; trial < 50; ++trial) {
    UncertainString w = testing::RandomUncertainString(dna, opt, rng);
    testing::RandomStringOptions opt2 = opt;
    opt2.min_length = opt2.max_length = w.length();
    UncertainString t = testing::RandomUncertainString(dna, opt2, rng);
    double brute = 0.0;
    ForEachWorld(w, [&](const std::string& wi, double pw) {
      ForEachWorld(t, [&](const std::string& ti, double pt) {
        if (wi == ti) brute += pw * pt;
      });
    });
    EXPECT_NEAR(MatchProbability(w, t), brute, 1e-9);
  }
}

TEST(UncertainStringTest, WorldCountSaturatesInsteadOfOverflowing) {
  UncertainString::Builder b;
  for (int i = 0; i < 80; ++i) {
    b.AddUncertain({{'A', 0.5}, {'C', 0.5}});
  }
  Result<UncertainString> s = b.Build();
  ASSERT_TRUE(s.ok());
  EXPECT_GT(s->WorldCount(), 0);
  EXPECT_EQ(s->WorldCount(), kWorldCountCap);
}

}  // namespace
}  // namespace ujoin
