#include "text/edit_distance.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"
#include "text/alphabet.h"
#include "util/rng.h"

namespace ujoin {
namespace {

TEST(EditDistanceTest, KnownValues) {
  EXPECT_EQ(EditDistance("", ""), 0);
  EXPECT_EQ(EditDistance("abc", ""), 3);
  EXPECT_EQ(EditDistance("", "abc"), 3);
  EXPECT_EQ(EditDistance("abc", "abc"), 0);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3);
  EXPECT_EQ(EditDistance("flaw", "lawn"), 2);
  EXPECT_EQ(EditDistance("intention", "execution"), 5);
  EXPECT_EQ(EditDistance("abc", "acb"), 2);  // no transposition operation
}

TEST(EditDistanceTest, SymmetricAndTriangleOnRandomStrings) {
  Alphabet dna = Alphabet::Dna();
  Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    const std::string a =
        testing::RandomString(dna, static_cast<int>(rng.UniformInt(0, 12)), rng);
    const std::string b =
        testing::RandomString(dna, static_cast<int>(rng.UniformInt(0, 12)), rng);
    const std::string c =
        testing::RandomString(dna, static_cast<int>(rng.UniformInt(0, 12)), rng);
    EXPECT_EQ(EditDistance(a, b), EditDistance(b, a));
    EXPECT_LE(EditDistance(a, c), EditDistance(a, b) + EditDistance(b, c));
    EXPECT_GE(EditDistance(a, b),
              std::abs(static_cast<int>(a.size()) - static_cast<int>(b.size())));
  }
}

TEST(BoundedEditDistanceTest, AgreesWithFullDistanceWithinThreshold) {
  Alphabet names = Alphabet::Names();
  Rng rng(17);
  for (int trial = 0; trial < 300; ++trial) {
    const std::string a = testing::RandomString(
        names, static_cast<int>(rng.UniformInt(0, 15)), rng);
    const std::string b = testing::RandomEdits(a, names, 5, rng);
    const int exact = EditDistance(a, b);
    for (int k = 0; k <= 6; ++k) {
      const int bounded = BoundedEditDistance(a, b, k);
      if (exact <= k) {
        EXPECT_EQ(bounded, exact) << "a=" << a << " b=" << b << " k=" << k;
      } else {
        EXPECT_EQ(bounded, k + 1) << "a=" << a << " b=" << b << " k=" << k;
      }
      EXPECT_EQ(WithinEditDistance(a, b, k), exact <= k);
    }
  }
}

TEST(BoundedEditDistanceTest, LengthGapShortCircuits) {
  EXPECT_EQ(BoundedEditDistance("aaaaaaaa", "a", 3), 4);
  EXPECT_EQ(BoundedEditDistance("a", "aaaaaaaa", 3), 4);
}

TEST(BoundedEditDistanceTest, ZeroThreshold) {
  EXPECT_EQ(BoundedEditDistance("abc", "abc", 0), 0);
  EXPECT_EQ(BoundedEditDistance("abc", "abd", 0), 1);
  EXPECT_TRUE(WithinEditDistance("", "", 0));
}

TEST(BoundedEditDistanceTest, NegativeThresholdNeverMatches) {
  EXPECT_FALSE(WithinEditDistance("a", "a", -1));
}

TEST(BoundedEditDistanceTest, EmptyStrings) {
  EXPECT_EQ(BoundedEditDistance("", "abc", 5), 3);
  EXPECT_EQ(BoundedEditDistance("abc", "", 2), 3);
  EXPECT_EQ(BoundedEditDistance("", "", 4), 0);
}

}  // namespace
}  // namespace ujoin
