#include "text/possible_worlds.h"

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "testing/test_util.h"
#include "text/alphabet.h"
#include "util/rng.h"

namespace ujoin {
namespace {

TEST(PossibleWorldsTest, DeterministicStringHasOneWorld) {
  UncertainString s = UncertainString::FromDeterministic("ACGT");
  Result<std::vector<std::pair<std::string, double>>> worlds = AllWorlds(s);
  ASSERT_TRUE(worlds.ok());
  ASSERT_EQ(worlds->size(), 1u);
  EXPECT_EQ((*worlds)[0].first, "ACGT");
  EXPECT_DOUBLE_EQ((*worlds)[0].second, 1.0);
}

TEST(PossibleWorldsTest, EnumeratesAllCombinationsExactlyOnce) {
  Alphabet dna = Alphabet::Dna();
  Result<UncertainString> s = UncertainString::Parse(
      "{(A,0.5),(C,0.5)}G{(A,0.2),(G,0.3),(T,0.5)}", dna);
  ASSERT_TRUE(s.ok());
  Result<std::vector<std::pair<std::string, double>>> worlds = AllWorlds(*s);
  ASSERT_TRUE(worlds.ok());
  EXPECT_EQ(worlds->size(), 6u);
  std::map<std::string, double> by_instance;
  for (const auto& [instance, prob] : *worlds) {
    EXPECT_TRUE(by_instance.emplace(instance, prob).second)
        << "duplicate instance " << instance;
  }
  EXPECT_DOUBLE_EQ(by_instance.at("AGA"), 0.5 * 0.2);
  EXPECT_DOUBLE_EQ(by_instance.at("CGT"), 0.5 * 0.5);
}

TEST(PossibleWorldsTest, ProbabilitiesSumToOne) {
  Alphabet names = Alphabet::Names();
  Rng rng(11);
  testing::RandomStringOptions opt;
  opt.min_length = 1;
  opt.max_length = 8;
  opt.theta = 0.5;
  for (int trial = 0; trial < 30; ++trial) {
    UncertainString s = testing::RandomUncertainString(names, opt, rng);
    double total = 0.0;
    int64_t count = 0;
    ForEachWorld(s, [&](const std::string& instance, double prob) {
      EXPECT_EQ(static_cast<int>(instance.size()), s.length());
      total += prob;
      ++count;
    });
    EXPECT_EQ(count, s.WorldCount());
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(PossibleWorldsTest, EmptyStringHasOneEmptyWorld) {
  UncertainString s;
  int64_t count = 0;
  ForEachWorld(s, [&](const std::string& instance, double prob) {
    EXPECT_TRUE(instance.empty());
    EXPECT_DOUBLE_EQ(prob, 1.0);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(PossibleWorldsTest, AllWorldsEnforcesCap) {
  UncertainString::Builder b;
  for (int i = 0; i < 8; ++i) b.AddUncertain({{'A', 0.5}, {'C', 0.5}});
  Result<UncertainString> s = b.Build();
  ASSERT_TRUE(s.ok());
  Result<std::vector<std::pair<std::string, double>>> capped =
      AllWorlds(*s, /*max_worlds=*/100);
  ASSERT_FALSE(capped.ok());
  EXPECT_EQ(capped.status().code(), StatusCode::kResourceExhausted);
  Result<std::vector<std::pair<std::string, double>>> ok =
      AllWorlds(*s, /*max_worlds=*/256);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->size(), 256u);
}

TEST(PossibleWorldsTest, ResetRestartsEnumeration) {
  Alphabet dna = Alphabet::Dna();
  Result<UncertainString> s = UncertainString::Parse("{(A,0.5),(C,0.5)}G", dna);
  ASSERT_TRUE(s.ok());
  WorldEnumerator worlds(*s);
  std::string first, again;
  double prob;
  ASSERT_TRUE(worlds.Next(&first, &prob));
  worlds.Reset();
  ASSERT_TRUE(worlds.Next(&again, &prob));
  EXPECT_EQ(first, again);
}

TEST(PossibleWorldsTest, WorldsOfSubstringMatchSubstringsOfWorlds) {
  Alphabet dna = Alphabet::Dna();
  Result<UncertainString> s = UncertainString::Parse(
      "A{(C,0.5),(G,0.5)}T{(A,0.3),(T,0.7)}C", dna);
  ASSERT_TRUE(s.ok());
  // Marginal distribution of S[1..3] from full worlds must equal the world
  // distribution of Substring(1, 3).
  std::map<std::string, double> marginal;
  ForEachWorld(*s, [&](const std::string& instance, double prob) {
    marginal[instance.substr(1, 3)] += prob;
  });
  std::map<std::string, double> direct;
  ForEachWorld(s->Substring(1, 3),
               [&](const std::string& instance, double prob) {
                 direct[instance] += prob;
               });
  ASSERT_EQ(marginal.size(), direct.size());
  for (const auto& [instance, prob] : direct) {
    EXPECT_NEAR(marginal.at(instance), prob, 1e-12);
  }
}

}  // namespace
}  // namespace ujoin
