#include "text/string_level.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"
#include "text/alphabet.h"
#include "util/rng.h"

namespace ujoin {
namespace {

using Instance = StringLevelUncertainString::Instance;

TEST(StringLevelTest, CreateValidatesAndSortsByProbability) {
  Result<StringLevelUncertainString> s = StringLevelUncertainString::Create(
      {{"ACGT", 0.2}, {"ACG", 0.5}, {"ACGTT", 0.3}});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->num_instances(), 3);
  EXPECT_EQ(s->MostLikelyInstance(), "ACG");
  EXPECT_EQ(s->instance(0).text, "ACG");
  EXPECT_EQ(s->instance(1).text, "ACGTT");
  EXPECT_EQ(s->instance(2).text, "ACGT");
  EXPECT_EQ(s->min_length(), 3);
  EXPECT_EQ(s->max_length(), 5);
}

TEST(StringLevelTest, CreateRejectsBadPdfs) {
  EXPECT_FALSE(StringLevelUncertainString::Create({}).ok());
  EXPECT_FALSE(
      StringLevelUncertainString::Create({{"A", 0.5}, {"A", 0.5}}).ok());
  EXPECT_FALSE(
      StringLevelUncertainString::Create({{"A", 0.4}, {"B", 0.4}}).ok());
  EXPECT_FALSE(
      StringLevelUncertainString::Create({{"A", -0.5}, {"B", 1.5}}).ok());
}

TEST(StringLevelTest, FromCharacterLevelEnumeratesWorlds) {
  Alphabet dna = Alphabet::Dna();
  Result<UncertainString> cl =
      UncertainString::Parse("A{(C,0.3),(G,0.7)}T", dna);
  ASSERT_TRUE(cl.ok());
  Result<StringLevelUncertainString> sl =
      StringLevelUncertainString::FromCharacterLevel(*cl);
  ASSERT_TRUE(sl.ok());
  ASSERT_EQ(sl->num_instances(), 2);
  EXPECT_EQ(sl->instance(0).text, "AGT");
  EXPECT_NEAR(sl->instance(0).prob, 0.7, 1e-12);
  EXPECT_EQ(sl->instance(1).text, "ACT");
  EXPECT_NEAR(sl->instance(1).prob, 0.3, 1e-12);
}

TEST(StringLevelTest, RoundTripThroughCharacterLevel) {
  Alphabet dna = Alphabet::Dna();
  Rng rng(501);
  testing::RandomStringOptions opt;
  opt.min_length = 1;
  opt.max_length = 7;
  opt.theta = 0.4;
  for (int trial = 0; trial < 40; ++trial) {
    const UncertainString original =
        testing::RandomUncertainString(dna, opt, rng);
    Result<StringLevelUncertainString> sl =
        StringLevelUncertainString::FromCharacterLevel(original);
    ASSERT_TRUE(sl.ok());
    Result<UncertainString> back = sl->ToCharacterLevel();
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back->length(), original.length());
    for (int i = 0; i < original.length(); ++i) {
      auto got = back->AlternativesAt(i);
      auto want = original.AlternativesAt(i);
      ASSERT_EQ(got.size(), want.size());
      for (size_t a = 0; a < got.size(); ++a) {
        EXPECT_EQ(got[a].symbol, want[a].symbol);
        EXPECT_NEAR(got[a].prob, want[a].prob, 1e-9);
      }
    }
  }
}

TEST(StringLevelTest, ToCharacterLevelRejectsCorrelatedPdfs) {
  // AA and BB each with 0.5: marginals are uniform per position but the
  // product form would put mass on AB and BA.
  Result<StringLevelUncertainString> s = StringLevelUncertainString::Create(
      {{"AA", 0.5}, {"BB", 0.5}});
  ASSERT_TRUE(s.ok());
  Result<UncertainString> converted = s->ToCharacterLevel();
  ASSERT_FALSE(converted.ok());
  EXPECT_EQ(converted.status().code(), StatusCode::kFailedPrecondition);
}

TEST(StringLevelTest, ToCharacterLevelRejectsMixedLengths) {
  Result<StringLevelUncertainString> s = StringLevelUncertainString::Create(
      {{"AB", 0.5}, {"ABC", 0.5}});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->ToCharacterLevel().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(StringLevelTest, MatchProbabilityAgreesWithCharacterLevel) {
  Alphabet dna = Alphabet::Dna();
  Rng rng(502);
  testing::RandomStringOptions opt;
  opt.min_length = 1;
  opt.max_length = 7;
  opt.theta = 0.4;
  for (int trial = 0; trial < 60; ++trial) {
    const UncertainString r = testing::RandomUncertainString(dna, opt, rng);
    const UncertainString s = testing::RandomUncertainString(dna, opt, rng);
    const int k = static_cast<int>(rng.UniformInt(0, 3));
    Result<StringLevelUncertainString> rl =
        StringLevelUncertainString::FromCharacterLevel(r);
    Result<StringLevelUncertainString> sl =
        StringLevelUncertainString::FromCharacterLevel(s);
    ASSERT_TRUE(rl.ok() && sl.ok());
    EXPECT_NEAR(StringLevelMatchProbability(*rl, *sl, k),
                testing::BruteForceMatchProbability(r, s, k), 1e-9);
  }
}

TEST(StringLevelTest, MixedLengthInstancesAreSupported) {
  // The capability the character-level model lacks (|S| is fixed there).
  Result<StringLevelUncertainString> a = StringLevelUncertainString::Create(
      {{"data base", 0.6}, {"database", 0.4}});
  Result<StringLevelUncertainString> b = StringLevelUncertainString::Create(
      {{"databse", 0.7}, {"data base", 0.3}});
  ASSERT_TRUE(a.ok() && b.ok());
  // Worlds: ("data base","databse") ed 2; ("data base","data base") ed 0;
  //         ("database","databse") ed 1; ("database","data base") ed 1.
  EXPECT_NEAR(StringLevelMatchProbability(*a, *b, 1),
              0.6 * 0.3 + 0.4 * 0.7 + 0.4 * 0.3, 1e-12);
  EXPECT_NEAR(StringLevelExpectedEditDistance(*a, *b),
              0.6 * 0.7 * 2 + 0.6 * 0.3 * 0 + 0.4 * 0.7 * 1 + 0.4 * 0.3 * 1,
              1e-12);
}

TEST(StringLevelTest, DecideSimilarMatchesExact) {
  Alphabet dna = Alphabet::Dna();
  Rng rng(503);
  testing::RandomStringOptions opt;
  opt.min_length = 2;
  opt.max_length = 7;
  opt.theta = 0.4;
  int early = 0;
  for (int trial = 0; trial < 150; ++trial) {
    Result<StringLevelUncertainString> a =
        StringLevelUncertainString::FromCharacterLevel(
            testing::RandomUncertainString(dna, opt, rng));
    Result<StringLevelUncertainString> b =
        StringLevelUncertainString::FromCharacterLevel(
            testing::RandomUncertainString(dna, opt, rng));
    ASSERT_TRUE(a.ok() && b.ok());
    const int k = static_cast<int>(rng.UniformInt(0, 2));
    const double tau = rng.UniformDouble();
    const double exact = StringLevelMatchProbability(*a, *b, k);
    const StringLevelVerdict verdict =
        DecideStringLevelSimilar(*a, *b, k, tau);
    EXPECT_EQ(verdict.similar, exact > tau);
    EXPECT_LE(verdict.lower, exact + 1e-9);
    EXPECT_GE(verdict.upper, exact - 1e-9);
    early += !verdict.exact;
  }
  EXPECT_GT(early, 20);
}

}  // namespace
}  // namespace ujoin
