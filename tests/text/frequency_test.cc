#include "text/frequency.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"
#include "text/edit_distance.h"
#include "util/rng.h"

namespace ujoin {
namespace {

TEST(FrequencyVectorTest, CountsSymbols) {
  Alphabet dna = Alphabet::Dna();
  Result<FrequencyVector> f = MakeFrequencyVector("ACCGGG", dna);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ((*f)[0], 1);  // A
  EXPECT_EQ((*f)[1], 2);  // C
  EXPECT_EQ((*f)[2], 3);  // G
  EXPECT_EQ((*f)[3], 0);  // T
}

TEST(FrequencyVectorTest, RejectsForeignSymbols) {
  Alphabet dna = Alphabet::Dna();
  EXPECT_FALSE(MakeFrequencyVector("ACX", dna).ok());
}

TEST(FrequencyDistanceTest, KnownValues) {
  Alphabet dna = Alphabet::Dna();
  auto fd = [&](std::string_view a, std::string_view b) {
    return FrequencyDistance(MakeFrequencyVector(a, dna).value(),
                             MakeFrequencyVector(b, dna).value());
  };
  EXPECT_EQ(fd("ACGT", "ACGT"), 0);
  EXPECT_EQ(fd("AAAA", "CCCC"), 4);   // pD = 4, nD = 4
  EXPECT_EQ(fd("AAC", "AC"), 1);      // one surplus A
  EXPECT_EQ(fd("ACGT", "TGCA"), 0);   // permutation
}

TEST(FrequencyDistanceTest, LowerBoundsEditDistance) {
  Alphabet names = Alphabet::Names();
  Rng rng(23);
  for (int trial = 0; trial < 300; ++trial) {
    const std::string a = testing::RandomString(
        names, static_cast<int>(rng.UniformInt(0, 12)), rng);
    const std::string b = testing::RandomEdits(a, names, 4, rng);
    const int fd = FrequencyDistance(MakeFrequencyVector(a, names).value(),
                                     MakeFrequencyVector(b, names).value());
    EXPECT_LE(fd, EditDistance(a, b)) << "a=" << a << " b=" << b;
  }
}

TEST(FrequencyDistanceTest, SymmetricAndAtLeastLengthGap) {
  Alphabet dna = Alphabet::Dna();
  Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    const std::string a = testing::RandomString(
        dna, static_cast<int>(rng.UniformInt(0, 10)), rng);
    const std::string b = testing::RandomString(
        dna, static_cast<int>(rng.UniformInt(0, 10)), rng);
    const FrequencyVector fa = MakeFrequencyVector(a, dna).value();
    const FrequencyVector fb = MakeFrequencyVector(b, dna).value();
    EXPECT_EQ(FrequencyDistance(fa, fb), FrequencyDistance(fb, fa));
    EXPECT_GE(FrequencyDistance(fa, fb),
              std::abs(static_cast<int>(a.size()) - static_cast<int>(b.size())));
  }
}

}  // namespace
}  // namespace ujoin
