#include "eed/eed.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"
#include "text/alphabet.h"
#include "text/edit_distance.h"
#include "text/possible_worlds.h"
#include "util/rng.h"

namespace ujoin {
namespace {

UncertainString Parse(const char* text, const Alphabet& alphabet) {
  Result<UncertainString> s = UncertainString::Parse(text, alphabet);
  UJOIN_CHECK(s.ok());
  return std::move(s).value();
}

TEST(ExpectedEditDistanceTest, DeterministicPairsReduceToEditDistance) {
  const UncertainString a = UncertainString::FromDeterministic("kitten");
  const UncertainString b = UncertainString::FromDeterministic("sitting");
  Result<double> eed = ExpectedEditDistance(a, b);
  ASSERT_TRUE(eed.ok());
  EXPECT_DOUBLE_EQ(*eed, 3.0);
}

TEST(ExpectedEditDistanceTest, HandComputedUncertainPair) {
  Alphabet dna = Alphabet::Dna();
  // R = A{(C,0.6),(G,0.4)}, S = AC: ed = 0 w.p. 0.6, ed = 1 w.p. 0.4.
  Result<double> eed =
      ExpectedEditDistance(Parse("A{(C,0.6),(G,0.4)}", dna),
                           UncertainString::FromDeterministic("AC"));
  ASSERT_TRUE(eed.ok());
  EXPECT_NEAR(*eed, 0.4, 1e-12);
}

TEST(ExpectedEditDistanceTest, SymmetricAndBounded) {
  Alphabet dna = Alphabet::Dna();
  Rng rng(201);
  testing::RandomStringOptions opt;
  opt.min_length = 1;
  opt.max_length = 6;
  opt.theta = 0.4;
  for (int trial = 0; trial < 50; ++trial) {
    const UncertainString r = testing::RandomUncertainString(dna, opt, rng);
    const UncertainString s = testing::RandomUncertainString(dna, opt, rng);
    Result<double> ab = ExpectedEditDistance(r, s);
    Result<double> ba = ExpectedEditDistance(s, r);
    ASSERT_TRUE(ab.ok() && ba.ok());
    EXPECT_NEAR(*ab, *ba, 1e-9);
    EXPECT_GE(*ab, std::abs(r.length() - s.length()) - 1e-9);
    EXPECT_LE(*ab, std::max(r.length(), s.length()) + 1e-9);
  }
}

TEST(ExpectedEditDistanceTest, CapReturnsResourceExhausted) {
  UncertainString::Builder b;
  for (int i = 0; i < 16; ++i) b.AddUncertain({{'A', 0.5}, {'C', 0.5}});
  const UncertainString s = b.Build().value();
  Result<double> eed = ExpectedEditDistance(s, s, /*max_world_pairs=*/100);
  ASSERT_FALSE(eed.ok());
  EXPECT_EQ(eed.status().code(), StatusCode::kResourceExhausted);
}

TEST(EedSelfJoinTest, FindsPairsBelowThreshold) {
  Alphabet dna = Alphabet::Dna();
  const std::vector<UncertainString> collection = {
      Parse("ACGTAC", dna),
      Parse("ACGTAG", dna),                  // ed 1 from [0]
      Parse("A{(C,0.8),(G,0.2)}GTAC", dna),  // eed 0.2 from [0]
      Parse("TTTTTT", dna),                  // far from everything
  };
  EedJoinOptions options;
  options.threshold = 1.0;
  Result<EedJoinResult> out = EedSelfJoin(collection, options);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->pairs.size(), 2u);
  EXPECT_EQ(out->pairs[0].lhs, 0u);
  EXPECT_EQ(out->pairs[0].rhs, 1u);
  EXPECT_NEAR(out->pairs[0].eed, 1.0, 1e-12);
  EXPECT_EQ(out->pairs[1].lhs, 0u);
  EXPECT_EQ(out->pairs[1].rhs, 2u);
  EXPECT_NEAR(out->pairs[1].eed, 0.2, 1e-12);
  EXPECT_GT(out->pairs_evaluated, 0);
}

TEST(EedSelfJoinTest, EedAndKTauSemanticsDisagree) {
  // The motivating example of Section 1: eed blends all worlds, so a pair
  // can have a large eed yet high probability of a small edit distance.
  Alphabet dna = Alphabet::Dna();
  // S agrees with R on 8 of 10 positions with probability 0.9 and is
  // completely different with probability 0.1 (one uncertain position that
  // cascades is impossible character-level; emulate with a far tail).
  const UncertainString r = UncertainString::FromDeterministic("AAAAAAAAAA");
  const UncertainString s = Parse(
      "AAAAAAAAA{(A,0.9),(T,0.1)}", dna);  // ed 0 w.p. 0.9, else 1
  Result<double> eed = ExpectedEditDistance(r, s);
  ASSERT_TRUE(eed.ok());
  EXPECT_NEAR(*eed, 0.1, 1e-12);
  // Now a string with many slightly-uncertain positions: every world is at
  // distance >= 2, yet eed can be lower than a (k=1)-similar pair's eed
  // depending on weights — the semantics order pairs differently.
  const UncertainString far = Parse("AAAAAAAATT", dna);
  Result<double> eed_far = ExpectedEditDistance(r, far);
  ASSERT_TRUE(eed_far.ok());
  EXPECT_NEAR(*eed_far, 2.0, 1e-12);
}

TEST(OverlappingQGramIndexTest, CountsPostingsOfAllInstances) {
  Alphabet dna = Alphabet::Dna();
  OverlappingQGramIndex index(3);
  // Deterministic string of length 6: 4 overlapping 3-grams.
  ASSERT_TRUE(index.Insert(0, Parse("ACGTAC", dna)).ok());
  EXPECT_EQ(index.num_postings(), 4);
  const size_t deterministic_size = index.MemoryUsage();
  // One uncertain position multiplies instances in the windows covering it.
  ASSERT_TRUE(index.Insert(1, Parse("AC{(G,0.5),(T,0.5)}TAC", dna)).ok());
  EXPECT_EQ(index.num_postings(), 4 + 3 * 2 + 1);  // 3 windows x 2, 1 certain
  EXPECT_GT(index.MemoryUsage(), deterministic_size);
}

TEST(OverlappingQGramIndexTest, ShortStringsContributeNothing) {
  Alphabet dna = Alphabet::Dna();
  OverlappingQGramIndex index(4);
  ASSERT_TRUE(index.Insert(0, Parse("ACG", dna)).ok());
  EXPECT_EQ(index.num_postings(), 0);
}

}  // namespace
}  // namespace ujoin
