#ifndef UJOIN_TESTS_TESTING_TEST_UTIL_H_
#define UJOIN_TESTS_TESTING_TEST_UTIL_H_

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "text/alphabet.h"
#include "text/edit_distance.h"
#include "text/possible_worlds.h"
#include "text/uncertain_string.h"
#include "util/check.h"
#include "util/rng.h"

namespace ujoin::testing {

/// Knobs for random uncertain-string generation in property tests.
struct RandomStringOptions {
  int min_length = 3;
  int max_length = 10;
  double theta = 0.3;  ///< probability a position is uncertain
  int max_alternatives = 3;
};

/// Uniformly random symbol index in [0, alphabet.size()).
inline int RandomSymbolIndex(const Alphabet& alphabet, Rng& rng) {
  return static_cast<int>(
      rng.Uniform(static_cast<uint64_t>(alphabet.size())));
}

/// Deterministic Fisher-Yates over the repo `Rng`.  std::shuffle's
/// permutation *sequence* is implementation-defined even for a fixed seed,
/// so "same seed, same order everywhere" tests must not use it (the
/// rng-source lint rule bans the std entropy sources that would feed it).
/// `RngTest.ShufflePermutationIsPlatformStable` pins the exact output.
template <typename T>
void Shuffle(std::vector<T>* v, Rng& rng) {
  for (size_t i = v->size(); i > 1; --i) {
    const size_t j = static_cast<size_t>(rng.Uniform(i));
    std::swap((*v)[i - 1], (*v)[j]);
  }
}

/// Uniformly random symbol from `alphabet`.
inline char RandomSymbol(const Alphabet& alphabet, Rng& rng) {
  return alphabet.SymbolAt(RandomSymbolIndex(alphabet, rng));
}

/// A random uncertain string over `alphabet`, driven by `rng`.
inline UncertainString RandomUncertainString(const Alphabet& alphabet,
                                             const RandomStringOptions& opt,
                                             Rng& rng) {
  const int length =
      static_cast<int>(rng.UniformInt(opt.min_length, opt.max_length));
  UncertainString::Builder builder;
  for (int i = 0; i < length; ++i) {
    if (!rng.Bernoulli(opt.theta)) {
      builder.AddCertain(RandomSymbol(alphabet, rng));
      continue;
    }
    const int num_alts = static_cast<int>(
        rng.UniformInt(2, std::min(opt.max_alternatives, alphabet.size())));
    // Pick distinct symbols.
    std::vector<int> symbols;
    while (static_cast<int>(symbols.size()) < num_alts) {
      const int s = RandomSymbolIndex(alphabet, rng);
      bool seen = false;
      for (int t : symbols) seen = seen || t == s;
      if (!seen) symbols.push_back(s);
    }
    std::vector<CharProb> alts;
    double remaining = 1.0;
    for (size_t j = 0; j < symbols.size(); ++j) {
      double p = (j + 1 == symbols.size())
                     ? remaining
                     : remaining * (0.2 + 0.6 * rng.UniformDouble());
      remaining -= (j + 1 == symbols.size()) ? 0.0 : p;
      alts.push_back(CharProb{alphabet.SymbolAt(symbols[j]), p});
    }
    builder.AddUncertain(std::move(alts));
  }
  Result<UncertainString> s = builder.Build();
  UJOIN_CHECK(s.ok());
  return std::move(s).value();
}

/// Ground-truth Pr(ed(R, S) <= k) by full world enumeration with the plain
/// (unbanded) edit distance — an independent path from the verifiers.
inline double BruteForceMatchProbability(const UncertainString& r,
                                         const UncertainString& s, int k) {
  double total = 0.0;
  ForEachWorld(r, [&](const std::string& ri, double pi) {
    ForEachWorld(s, [&](const std::string& sj, double pj) {
      if (EditDistance(ri, sj) <= k) total += pi * pj;
    });
  });
  return total;
}

/// Ground-truth Pr(fd(R, S) <= k) by full world enumeration.
double BruteForceFreqDistanceProbability(const UncertainString& r,
                                         const UncertainString& s, int k,
                                         const Alphabet& alphabet);

/// Minimum frequency distance over all world pairs.
int BruteForceMinFreqDistance(const UncertainString& r,
                              const UncertainString& s,
                              const Alphabet& alphabet);

/// Deterministic random string over `alphabet`.
inline std::string RandomString(const Alphabet& alphabet, int length,
                                Rng& rng) {
  std::string s(static_cast<size_t>(length), alphabet.SymbolAt(0));
  for (int i = 0; i < length; ++i) {
    s[static_cast<size_t>(i)] = RandomSymbol(alphabet, rng);
  }
  return s;
}

/// Applies up to `max_edits` random edits (ins/del/sub) to `s`.
std::string RandomEdits(const std::string& s, const Alphabet& alphabet,
                        int max_edits, Rng& rng);

}  // namespace ujoin::testing

#endif  // UJOIN_TESTS_TESTING_TEST_UTIL_H_
