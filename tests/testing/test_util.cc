#include "testing/test_util.h"

#include "text/frequency.h"

namespace ujoin::testing {

double BruteForceFreqDistanceProbability(const UncertainString& r,
                                         const UncertainString& s, int k,
                                         const Alphabet& alphabet) {
  double total = 0.0;
  ForEachWorld(r, [&](const std::string& ri, double pi) {
    Result<FrequencyVector> fr = MakeFrequencyVector(ri, alphabet);
    UJOIN_CHECK(fr.ok());
    ForEachWorld(s, [&](const std::string& sj, double pj) {
      Result<FrequencyVector> fs = MakeFrequencyVector(sj, alphabet);
      UJOIN_CHECK(fs.ok());
      if (FrequencyDistance(fr.value(), fs.value()) <= k) total += pi * pj;
    });
  });
  return total;
}

int BruteForceMinFreqDistance(const UncertainString& r,
                              const UncertainString& s,
                              const Alphabet& alphabet) {
  int min_fd = INT32_MAX;
  ForEachWorld(r, [&](const std::string& ri, double) {
    Result<FrequencyVector> fr = MakeFrequencyVector(ri, alphabet);
    UJOIN_CHECK(fr.ok());
    ForEachWorld(s, [&](const std::string& sj, double) {
      Result<FrequencyVector> fs = MakeFrequencyVector(sj, alphabet);
      UJOIN_CHECK(fs.ok());
      min_fd = std::min(min_fd, FrequencyDistance(fr.value(), fs.value()));
    });
  });
  return min_fd;
}

std::string RandomEdits(const std::string& s, const Alphabet& alphabet,
                        int max_edits, Rng& rng) {
  std::string out = s;
  const int edits = static_cast<int>(rng.UniformInt(0, max_edits));
  for (int e = 0; e < edits; ++e) {
    const int op = static_cast<int>(rng.Uniform(3));
    if (op == 0 && !out.empty()) {  // substitution
      const size_t pos = rng.Uniform(out.size());
      out[pos] = RandomSymbol(alphabet, rng);
    } else if (op == 1 && !out.empty()) {  // deletion
      out.erase(rng.Uniform(out.size()), 1);
    } else {  // insertion
      const size_t pos = rng.Uniform(out.size() + 1);
      out.insert(out.begin() + static_cast<ptrdiff_t>(pos),
                 RandomSymbol(alphabet, rng));
    }
  }
  return out;
}

}  // namespace ujoin::testing
