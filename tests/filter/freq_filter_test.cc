#include "filter/freq_filter.h"

#include <cmath>

#include <gtest/gtest.h>

#include "testing/test_util.h"
#include "text/frequency.h"
#include "text/possible_worlds.h"
#include "util/rng.h"

namespace ujoin {
namespace {

UncertainString Parse(const char* text, const Alphabet& alphabet) {
  Result<UncertainString> s = UncertainString::Parse(text, alphabet);
  UJOIN_CHECK(s.ok());
  return std::move(s).value();
}

TEST(FrequencySummaryTest, DeterministicStringCountsExactly) {
  Alphabet dna = Alphabet::Dna();
  FrequencySummary f =
      FrequencySummary::Build(UncertainString::FromDeterministic("ACCGGG"), dna);
  EXPECT_EQ(f.length(), 6);
  EXPECT_EQ(f.ForSymbol(dna.IndexOf('A')).certain_count, 1);
  EXPECT_EQ(f.ForSymbol(dna.IndexOf('C')).certain_count, 2);
  EXPECT_EQ(f.ForSymbol(dna.IndexOf('G')).certain_count, 3);
  EXPECT_EQ(f.ForSymbol(dna.IndexOf('T')).certain_count, 0);
  for (int c = 0; c < dna.size(); ++c) {
    EXPECT_EQ(f.ForSymbol(c).uncertain_count, 0);
    EXPECT_DOUBLE_EQ(f.ForSymbol(c).expected,
                     f.ForSymbol(c).certain_count);
  }
}

TEST(FrequencySummaryTest, PmfMatchesBruteForceWorldEnumeration) {
  Alphabet dna = Alphabet::Dna();
  Rng rng(41);
  testing::RandomStringOptions opt;
  opt.min_length = 2;
  opt.max_length = 9;
  opt.theta = 0.5;
  for (int trial = 0; trial < 60; ++trial) {
    const UncertainString s = testing::RandomUncertainString(dna, opt, rng);
    const FrequencySummary summary = FrequencySummary::Build(s, dna);
    for (int c = 0; c < dna.size(); ++c) {
      const CharFrequencySummary& cs = summary.ForSymbol(c);
      // Brute-force distribution of the symbol's total count.
      std::vector<double> truth(static_cast<size_t>(s.length()) + 1, 0.0);
      double expected = 0.0;
      ForEachWorld(s, [&](const std::string& instance, double prob) {
        int count = 0;
        for (char ch : instance) count += ch == dna.SymbolAt(c);
        truth[static_cast<size_t>(count)] += prob;
        expected += prob * count;
      });
      EXPECT_NEAR(cs.expected, expected, 1e-9);
      for (int x = 0; x <= s.length(); ++x) {
        const int u = x - cs.certain_count;
        const double pmf = (u >= 0 && u <= cs.uncertain_count)
                               ? cs.pmf[static_cast<size_t>(u)]
                               : 0.0;
        EXPECT_NEAR(pmf, truth[static_cast<size_t>(x)], 1e-9);
      }
    }
  }
}

TEST(FrequencySummaryTest, PrecomputedArraysAreConsistent) {
  Alphabet dna = Alphabet::Dna();
  Rng rng(42);
  testing::RandomStringOptions opt;
  opt.theta = 0.6;
  for (int trial = 0; trial < 40; ++trial) {
    const UncertainString s = testing::RandomUncertainString(dna, opt, rng);
    const FrequencySummary summary = FrequencySummary::Build(s, dna);
    for (int c = 0; c < dna.size(); ++c) {
      const CharFrequencySummary& cs = summary.ForSymbol(c);
      const int fu = cs.uncertain_count;
      for (int x = 0; x <= fu; ++x) {
        double tail = 0.0, scaled_tail = 0.0, scaled_head = 0.0;
        for (int y = 0; y <= fu; ++y) {
          const double p = cs.pmf[static_cast<size_t>(y)];
          if (y >= x) {
            tail += p;
            scaled_tail += (y - x + 1) * p;
          }
          if (y <= x) scaled_head += (x - y) * p;
        }
        EXPECT_NEAR(cs.tail[static_cast<size_t>(x)], tail, 1e-9);
        EXPECT_NEAR(cs.scaled_tail[static_cast<size_t>(x)], scaled_tail, 1e-9);
        EXPECT_NEAR(cs.scaled_head[static_cast<size_t>(x)], scaled_head, 1e-9);
      }
    }
  }
}

TEST(ExpectedPositivePartTest, MatchesDoubleSum) {
  Alphabet dna = Alphabet::Dna();
  Rng rng(43);
  testing::RandomStringOptions opt;
  opt.theta = 0.5;
  for (int trial = 0; trial < 60; ++trial) {
    const UncertainString a = testing::RandomUncertainString(dna, opt, rng);
    const UncertainString b = testing::RandomUncertainString(dna, opt, rng);
    const FrequencySummary fa = FrequencySummary::Build(a, dna);
    const FrequencySummary fb = FrequencySummary::Build(b, dna);
    for (int c = 0; c < dna.size(); ++c) {
      const CharFrequencySummary& ca = fa.ForSymbol(c);
      const CharFrequencySummary& cb = fb.ForSymbol(c);
      double truth = 0.0;  // naive O(f^u_a · f^u_b) double sum
      for (int x = 0; x <= ca.uncertain_count; ++x) {
        for (int y = 0; y <= cb.uncertain_count; ++y) {
          const int diff =
              (ca.certain_count + x) - (cb.certain_count + y);
          if (diff > 0) {
            truth += ca.pmf[static_cast<size_t>(x)] *
                     cb.pmf[static_cast<size_t>(y)] * diff;
          }
        }
      }
      EXPECT_NEAR(ExpectedPositivePart(ca, cb), truth, 1e-9);
    }
  }
}

TEST(FreqLowerBoundTest, NeverExceedsAnyWorldsFrequencyDistance) {
  Alphabet dna = Alphabet::Dna();
  Rng rng(44);
  testing::RandomStringOptions opt;
  opt.min_length = 2;
  opt.max_length = 8;
  opt.theta = 0.4;
  for (int trial = 0; trial < 100; ++trial) {
    const UncertainString r = testing::RandomUncertainString(dna, opt, rng);
    const UncertainString s = testing::RandomUncertainString(dna, opt, rng);
    const int bound =
        FreqDistanceLowerBound(FrequencySummary::Build(r, dna),
                               FrequencySummary::Build(s, dna));
    const int min_fd = testing::BruteForceMinFreqDistance(r, s, dna);
    EXPECT_LE(bound, min_fd) << "R=" << r.ToString() << " S=" << s.ToString();
  }
}

TEST(FreqLowerBoundTest, TightOnDeterministicStrings) {
  Alphabet dna = Alphabet::Dna();
  Rng rng(45);
  for (int trial = 0; trial < 100; ++trial) {
    const std::string a = testing::RandomString(
        dna, static_cast<int>(rng.UniformInt(1, 10)), rng);
    const std::string b = testing::RandomString(
        dna, static_cast<int>(rng.UniformInt(1, 10)), rng);
    const int bound = FreqDistanceLowerBound(
        FrequencySummary::Build(UncertainString::FromDeterministic(a), dna),
        FrequencySummary::Build(UncertainString::FromDeterministic(b), dna));
    const int exact = FrequencyDistance(MakeFrequencyVector(a, dna).value(),
                                        MakeFrequencyVector(b, dna).value());
    EXPECT_EQ(bound, exact);
  }
}

TEST(ExpectedFreqDistanceTest, MatchesBruteForceExpectations) {
  Alphabet dna = Alphabet::Dna();
  Rng rng(46);
  testing::RandomStringOptions opt;
  opt.min_length = 2;
  opt.max_length = 7;
  opt.theta = 0.4;
  for (int trial = 0; trial < 40; ++trial) {
    const UncertainString r = testing::RandomUncertainString(dna, opt, rng);
    const UncertainString s = testing::RandomUncertainString(dna, opt, rng);
    double true_pos = 0.0, true_neg = 0.0;
    ForEachWorld(r, [&](const std::string& ri, double pi) {
      const FrequencyVector fr = MakeFrequencyVector(ri, dna).value();
      ForEachWorld(s, [&](const std::string& sj, double pj) {
        const FrequencyVector fs = MakeFrequencyVector(sj, dna).value();
        int pd = 0, nd = 0;
        for (size_t c = 0; c < fr.size(); ++c) {
          if (fr[c] > fs[c]) pd += fr[c] - fs[c];
          if (fs[c] > fr[c]) nd += fs[c] - fr[c];
        }
        true_pos += pi * pj * pd;
        true_neg += pi * pj * nd;
      });
    });
    const ExpectedFreqDistances e = ExpectedFreqDistance(
        FrequencySummary::Build(r, dna), FrequencySummary::Build(s, dna));
    EXPECT_NEAR(e.pos, true_pos, 1e-9);
    EXPECT_NEAR(e.neg, true_neg, 1e-9);
  }
}

TEST(FreqChebyshevBoundTest, UpperBoundsTrueFdProbability) {
  // Theorem 3: the bound must sit above Pr(fd(R,S) <= k), hence above
  // Pr(ed(R,S) <= k), on random uncertain pairs.
  Alphabet dna = Alphabet::Dna();
  Rng rng(47);
  testing::RandomStringOptions opt;
  opt.min_length = 2;
  opt.max_length = 8;
  opt.theta = 0.4;
  int nontrivial = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const UncertainString r = testing::RandomUncertainString(dna, opt, rng);
    const UncertainString s = testing::RandomUncertainString(dna, opt, rng);
    const FrequencySummary fr = FrequencySummary::Build(r, dna);
    const FrequencySummary fs = FrequencySummary::Build(s, dna);
    for (int k = 0; k <= 3; ++k) {
      const double bound = FreqChebyshevBound(fr, fs, k);
      const double truth =
          testing::BruteForceFreqDistanceProbability(r, s, k, dna);
      EXPECT_GE(bound, truth - 1e-9)
          << "R=" << r.ToString() << " S=" << s.ToString() << " k=" << k;
      nontrivial += bound < 1.0;
    }
  }
  EXPECT_GT(nontrivial, 50);  // the bound must actually prune sometimes
}

TEST(FreqFilterTest, OutcomeCombinesBothBounds) {
  Alphabet dna = Alphabet::Dna();
  // fd(R, S) = 4 with certainty: lower bound prunes at k <= 3.
  const FrequencySummary r = FrequencySummary::Build(
      UncertainString::FromDeterministic("AAAA"), dna);
  const FrequencySummary s = FrequencySummary::Build(
      UncertainString::FromDeterministic("CCCC"), dna);
  const FreqFilterOutcome out = EvaluateFreqFilter(r, s, /*k=*/3);
  EXPECT_EQ(out.fd_lower_bound, 4);
  EXPECT_DOUBLE_EQ(out.upper_bound, 0.0);
  EXPECT_FALSE(out.Survives(3, 0.0));
  EXPECT_TRUE(EvaluateFreqFilter(r, s, /*k=*/4).Survives(4, 0.5));
}

TEST(FreqFilterTest, IdenticalStringsAlwaysSurvive) {
  Alphabet dna = Alphabet::Dna();
  const UncertainString s = Parse("A{(C,0.5),(G,0.5)}GT", dna);
  const FrequencySummary f = FrequencySummary::Build(s, dna);
  const FreqFilterOutcome out = EvaluateFreqFilter(f, f, /*k=*/1);
  EXPECT_EQ(out.fd_lower_bound, 0);
  EXPECT_TRUE(out.Survives(1, 0.99));
}

TEST(FrequencySummaryTest, MemoryUsageGrowsWithUncertainty) {
  Alphabet dna = Alphabet::Dna();
  const FrequencySummary certain = FrequencySummary::Build(
      UncertainString::FromDeterministic("ACGTACGT"), dna);
  const FrequencySummary uncertain = FrequencySummary::Build(
      Parse("{(A,0.5),(C,0.5)}{(A,0.5),(G,0.5)}{(A,0.5),(T,0.5)}TACGT", dna),
      dna);
  EXPECT_GT(uncertain.MemoryUsage(), certain.MemoryUsage());
}

}  // namespace
}  // namespace ujoin
