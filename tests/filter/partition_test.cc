#include "filter/partition.h"

#include <gtest/gtest.h>

namespace ujoin {
namespace {

TEST(SegmentCountTest, FollowsPaperRule) {
  // m = max(k + 1, ⌊len / q⌋), clamped to len.
  EXPECT_EQ(SegmentCount(6, 1, 2), 3);   // Table 1: len 6, q 2 -> m 3
  EXPECT_EQ(SegmentCount(19, 2, 3), 6);  // dblp defaults
  EXPECT_EQ(SegmentCount(32, 4, 3), 10); // protein defaults
  EXPECT_EQ(SegmentCount(5, 4, 3), 5);   // k+1 = 5 > ⌊5/3⌋ but m <= len
  EXPECT_EQ(SegmentCount(3, 4, 3), 3);   // clamp to len
  EXPECT_EQ(SegmentCount(1, 0, 1), 1);
}

TEST(EvenPartitionTest, SegmentsAreDisjointAndCover) {
  for (int len = 1; len <= 40; ++len) {
    for (int m = 1; m <= len; ++m) {
      const std::vector<Segment> segments = EvenPartition(len, m);
      ASSERT_EQ(static_cast<int>(segments.size()), m);
      int expected_start = 0;
      for (const Segment& seg : segments) {
        EXPECT_EQ(seg.start, expected_start);
        EXPECT_GE(seg.length, 1);
        expected_start = seg.end();
      }
      EXPECT_EQ(expected_start, len);
    }
  }
}

TEST(EvenPartitionTest, LengthsDifferByAtMostOneAndLongerComeLast) {
  for (int len = 1; len <= 40; ++len) {
    for (int m = 1; m <= len; ++m) {
      const std::vector<Segment> segments = EvenPartition(len, m);
      const int base = len / m;
      bool seen_longer = false;
      for (const Segment& seg : segments) {
        EXPECT_TRUE(seg.length == base || seg.length == base + 1);
        if (seg.length == base + 1) seen_longer = true;
        if (seen_longer) {
          EXPECT_EQ(seg.length, base + 1);
        }
      }
    }
  }
}

TEST(EvenPartitionTest, PaperSchemeGivesQAndQPlusOneSegments) {
  // Section 4: with m = ⌊|S|/q⌋, the last |S| - mq segments have length q+1.
  const int len = 20, q = 3;
  const std::vector<Segment> segments = PartitionForJoin(len, /*k=*/2, q);
  ASSERT_EQ(segments.size(), 6u);  // ⌊20/3⌋ = 6 > k+1 = 3
  int longer = 0;
  for (const Segment& seg : segments) {
    EXPECT_TRUE(seg.length == q || seg.length == q + 1);
    longer += seg.length == q + 1;
  }
  EXPECT_EQ(longer, len - (len / q) * q);  // 20 - 18 = 2
}

TEST(EvenPartitionTest, ShortStringUsesKPlusOneSegments) {
  const std::vector<Segment> segments = PartitionForJoin(8, /*k=*/3, /*q=*/3);
  EXPECT_EQ(segments.size(), 4u);  // max(4, ⌊8/3⌋=2) = 4
}

}  // namespace
}  // namespace ujoin
