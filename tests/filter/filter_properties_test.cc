// Cross-cutting analytical properties of the filter bounds.

#include <gtest/gtest.h>

#include "filter/cdf_filter.h"
#include "filter/event_dp.h"
#include "filter/freq_filter.h"
#include "testing/test_util.h"
#include "text/alphabet.h"
#include "util/rng.h"

namespace ujoin {
namespace {

TEST(FilterPropertiesTest, CdfAtKZeroIsExactMatchProbability) {
  // With k = 0 the only alignment is the diagonal: both bounds collapse to
  // the exact Pr(R = S).
  Alphabet dna = Alphabet::Dna();
  Rng rng(601);
  testing::RandomStringOptions opt;
  opt.min_length = 1;
  opt.max_length = 8;
  opt.theta = 0.5;
  for (int trial = 0; trial < 100; ++trial) {
    const UncertainString r = testing::RandomUncertainString(dna, opt, rng);
    testing::RandomStringOptions opt2 = opt;
    opt2.min_length = opt2.max_length = r.length();
    const UncertainString s = testing::RandomUncertainString(dna, opt2, rng);
    const CdfBounds bounds = ComputeCdfBounds(r, s, 0);
    const double match = MatchProbability(r, s);
    EXPECT_NEAR(bounds.lower[0], match, 1e-9);
    EXPECT_NEAR(bounds.upper[0], match, 1e-9);
  }
}

TEST(FilterPropertiesTest, CdfBoundsWidenWithUncertainty) {
  // A deterministic pair has exact (0/1) bounds; blurring one position can
  // only move bounds inward from {0,1}, never invert them.
  Alphabet dna = Alphabet::Dna();
  const UncertainString r = UncertainString::FromDeterministic("ACGTAC");
  const UncertainString s_sharp = UncertainString::FromDeterministic("ACGTAC");
  Result<UncertainString> s_blurred =
      UncertainString::Parse("ACG{(T,0.7),(A,0.3)}AC", dna);
  ASSERT_TRUE(s_blurred.ok());
  const CdfBounds sharp = ComputeCdfBounds(r, s_sharp, 1);
  const CdfBounds blurred = ComputeCdfBounds(r, *s_blurred, 1);
  EXPECT_DOUBLE_EQ(sharp.lower[1], 1.0);
  EXPECT_LE(blurred.lower[1], 1.0);
  EXPECT_GE(blurred.upper[1], blurred.lower[1]);
}

TEST(FilterPropertiesTest, ChebyshevBoundMonotoneInK) {
  // Pr(fd <= k) grows with k, and so must any upper bound worth its salt.
  Alphabet dna = Alphabet::Dna();
  Rng rng(602);
  testing::RandomStringOptions opt;
  opt.min_length = 3;
  opt.max_length = 10;
  opt.theta = 0.4;
  for (int trial = 0; trial < 80; ++trial) {
    const FrequencySummary a = FrequencySummary::Build(
        testing::RandomUncertainString(dna, opt, rng), dna);
    const FrequencySummary b = FrequencySummary::Build(
        testing::RandomUncertainString(dna, opt, rng), dna);
    double previous = 0.0;
    for (int k = 0; k <= 5; ++k) {
      const double bound = FreqChebyshevBound(a, b, k);
      EXPECT_GE(bound, previous - 1e-12) << "k=" << k;
      previous = bound;
    }
  }
}

TEST(FilterPropertiesTest, FreqLowerBoundNeverExceedsChebyshevSupport) {
  // Whenever Lemma 6 proves fd > k in every world, Theorem 3's bound on
  // Pr(fd <= k) must be compatible (it cannot certify mass below k).
  Alphabet dna = Alphabet::Dna();
  Rng rng(603);
  testing::RandomStringOptions opt;
  opt.min_length = 2;
  opt.max_length = 9;
  opt.theta = 0.4;
  for (int trial = 0; trial < 100; ++trial) {
    const UncertainString ra = testing::RandomUncertainString(dna, opt, rng);
    const UncertainString rb = testing::RandomUncertainString(dna, opt, rng);
    const FrequencySummary a = FrequencySummary::Build(ra, dna);
    const FrequencySummary b = FrequencySummary::Build(rb, dna);
    const int lower = FreqDistanceLowerBound(a, b);
    for (int k = 0; k < lower; ++k) {
      const double truth =
          testing::BruteForceFreqDistanceProbability(ra, rb, k, dna);
      EXPECT_DOUBLE_EQ(truth, 0.0);  // Lemma 6's claim, brute-force checked
    }
  }
}

TEST(FilterPropertiesTest, EventDpHandlesDegenerateProbabilities) {
  // Exact zeros and ones must behave like deterministic events.
  const std::vector<double> alphas = {1.0, 0.0, 1.0, 0.5};
  const std::vector<double> dist = EventCountDistribution(alphas);
  ASSERT_EQ(dist.size(), 5u);
  EXPECT_DOUBLE_EQ(dist[0], 0.0);  // two certain events always fire
  EXPECT_DOUBLE_EQ(dist[1], 0.0);
  EXPECT_NEAR(dist[2], 0.5, 1e-12);
  EXPECT_NEAR(dist[3], 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(dist[4], 0.0);  // the zero event never fires
  EXPECT_NEAR(ProbAtLeastEvents(alphas, 2), 1.0, 1e-12);
  EXPECT_NEAR(ProbAtLeastEvents(alphas, 3), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(ProbAtLeastEvents(alphas, 4), 0.0);
}

TEST(FilterPropertiesTest, ChebyshevIsOneWhenExpectationBelowK) {
  // The one-sided Chebyshev inequality needs E[fd] > k; the implementation
  // must return the vacuous bound 1 otherwise, never something tighter.
  Alphabet dna = Alphabet::Dna();
  const FrequencySummary a = FrequencySummary::Build(
      UncertainString::FromDeterministic("ACGT"), dna);
  // Identical strings: E[fd] = 0 <= k for every k >= 0.
  for (int k = 0; k <= 3; ++k) {
    EXPECT_DOUBLE_EQ(FreqChebyshevBound(a, a, k), 1.0);
  }
}

TEST(FilterPropertiesTest, CdfUpperDominatesLower) {
  Alphabet dna = Alphabet::Dna();
  Rng rng(604);
  testing::RandomStringOptions opt;
  opt.theta = 0.5;
  for (int trial = 0; trial < 150; ++trial) {
    const UncertainString r = testing::RandomUncertainString(dna, opt, rng);
    const UncertainString s = testing::RandomUncertainString(dna, opt, rng);
    const int k = static_cast<int>(rng.UniformInt(0, 4));
    const CdfBounds bounds = ComputeCdfBounds(r, s, k);
    for (int j = 0; j <= k; ++j) {
      EXPECT_LE(bounds.lower[static_cast<size_t>(j)],
                bounds.upper[static_cast<size_t>(j)] + 1e-12);
    }
  }
}

}  // namespace
}  // namespace ujoin
