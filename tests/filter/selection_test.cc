#include "filter/selection.h"

#include <string_view>

#include <gtest/gtest.h>

#include "filter/partition.h"
#include "testing/test_util.h"
#include "text/alphabet.h"
#include "text/edit_distance.h"
#include "util/rng.h"

namespace ujoin {
namespace {

TEST(SelectionWindowTest, EmptyWhenLengthGapExceedsK) {
  const Segment seg{2, 3};
  EXPECT_TRUE(SelectSubstringWindow(10, 20, seg, 4).empty());
  EXPECT_TRUE(SelectSubstringWindow(20, 10, seg, 4).empty());
}

TEST(SelectionWindowTest, PositionalWindowMatchesTable1) {
  // Table 1: r = GGATCC (len 6), s len 6, q = 2, k = 1, m = 3.
  const std::vector<Segment> segments = EvenPartition(6, 3);
  // Segment 1 at 0-based start 0: starts {0, 1} (clipped at 0).
  SelectionWindow w1 = SelectSubstringWindow(6, 6, segments[0], 1);
  EXPECT_EQ(w1.lo, 0);
  EXPECT_EQ(w1.hi, 1);
  // Segment 2 at start 2: starts {1, 2, 3}.
  SelectionWindow w2 = SelectSubstringWindow(6, 6, segments[1], 1);
  EXPECT_EQ(w2.lo, 1);
  EXPECT_EQ(w2.hi, 3);
  // Segment 3 at start 4: starts {3, 4} (clipped at |r| - q = 4).
  SelectionWindow w3 = SelectSubstringWindow(6, 6, segments[2], 1);
  EXPECT_EQ(w3.lo, 3);
  EXPECT_EQ(w3.hi, 4);
}

TEST(SelectionWindowTest, ShiftBoundedIsTighterAndBoundedByKPlusOne) {
  Rng rng(31);
  for (int trial = 0; trial < 500; ++trial) {
    const int k = static_cast<int>(rng.UniformInt(0, 5));
    const int s_len = static_cast<int>(rng.UniformInt(4, 30));
    const int r_len =
        s_len + static_cast<int>(rng.UniformInt(-k, k));
    if (r_len < 1) continue;
    const int m = SegmentCount(s_len, k, 3);
    for (const Segment& seg : EvenPartition(s_len, m)) {
      SelectionWindow tight = SelectSubstringWindow(
          r_len, s_len, seg, k, SelectionPolicy::kShiftBounded);
      SelectionWindow wide = SelectSubstringWindow(
          r_len, s_len, seg, k, SelectionPolicy::kPositional);
      EXPECT_LE(tight.size(), k + 1);
      EXPECT_LE(wide.size(), 2 * k + 1);
      if (!tight.empty()) {
        EXPECT_GE(tight.lo, wide.lo);
        EXPECT_LE(tight.hi, wide.hi);
      }
    }
  }
}

// Completeness (Lemma 1): if ed(r, s) <= k then r contains substrings
// matching at least m - k segments of s *within the selection windows* —
// for both policies, over many random similar pairs.
class SelectionCompletenessTest
    : public ::testing::TestWithParam<SelectionPolicy> {};

TEST_P(SelectionCompletenessTest, SimilarPairsShareEnoughSegments) {
  const SelectionPolicy policy = GetParam();
  Alphabet dna = Alphabet::Dna();
  Rng rng(101);
  int checked = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    const int k = static_cast<int>(rng.UniformInt(1, 4));
    const int q = static_cast<int>(rng.UniformInt(2, 4));
    const std::string s = testing::RandomString(
        dna, static_cast<int>(rng.UniformInt(k + 1, 16)), rng);
    const std::string r = testing::RandomEdits(s, dna, k, rng);
    if (r.empty()) continue;
    if (EditDistance(r, s) > k) continue;  // only similar pairs matter
    ++checked;
    const int m = SegmentCount(static_cast<int>(s.size()), k, q);
    const std::vector<Segment> segments =
        EvenPartition(static_cast<int>(s.size()), m);
    int matched = 0;
    for (const Segment& seg : segments) {
      const SelectionWindow window = SelectSubstringWindow(
          static_cast<int>(r.size()), static_cast<int>(s.size()), seg, k,
          policy);
      const std::string_view segment_text =
          std::string_view(s).substr(static_cast<size_t>(seg.start),
                                     static_cast<size_t>(seg.length));
      for (int start = window.lo; start <= window.hi; ++start) {
        if (std::string_view(r).substr(static_cast<size_t>(start),
                                       static_cast<size_t>(seg.length)) ==
            segment_text) {
          ++matched;
          break;
        }
      }
    }
    EXPECT_GE(matched, m - k) << "r=" << r << " s=" << s << " k=" << k
                              << " q=" << q;
  }
  EXPECT_GT(checked, 500);  // the generator must actually produce close pairs
}

INSTANTIATE_TEST_SUITE_P(Policies, SelectionCompletenessTest,
                         ::testing::Values(SelectionPolicy::kPositional,
                                           SelectionPolicy::kShiftBounded));

}  // namespace
}  // namespace ujoin
