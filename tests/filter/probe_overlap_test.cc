// Focused tests of the overlap-grouping union probability (Section 3.2)
// on adversarial occurrence patterns: periodic substrings, chained
// overlaps, and mixtures of overlapping and disjoint occurrences.

#include <gtest/gtest.h>

#include "filter/probe_set.h"
#include "testing/test_util.h"
#include "text/alphabet.h"
#include "util/rng.h"

namespace ujoin {
namespace {

UncertainString Parse(const char* text, const Alphabet& alphabet) {
  Result<UncertainString> s = UncertainString::Parse(text, alphabet);
  UJOIN_CHECK(s.ok());
  return std::move(s).value();
}

std::vector<ProbeOccurrence> Occurrences(const UncertainString& r,
                                         std::string_view w) {
  std::vector<ProbeOccurrence> out;
  for (int start = 0; start + static_cast<int>(w.size()) <= r.length();
       ++start) {
    const double p = MatchProbabilityAt(w, r, start);
    if (p > 0.0) out.push_back(ProbeOccurrence{start, p});
  }
  return out;
}

std::vector<int> Starts(const std::vector<ProbeOccurrence>& occs) {
  std::vector<int> out;
  for (const ProbeOccurrence& o : occs) out.push_back(o.start);
  return out;
}

TEST(ProbeOverlapTest, DeterministicStringGivesProbabilityOne) {
  const UncertainString r = UncertainString::FromDeterministic("AAAAAA");
  const std::vector<ProbeOccurrence> occs = Occurrences(r, "AAA");
  ASSERT_EQ(occs.size(), 4u);
  EXPECT_DOUBLE_EQ(GroupedOccurrenceProbability(r, "AAA", occs), 1.0);
}

TEST(ProbeOverlapTest, DisjointOccurrencesAreExactlyIndependent) {
  Alphabet dna = Alphabet::Dna();
  // "AC" can occur at 0 and 3 (disjoint): union = 1 - (1-p0)(1-p3).
  const UncertainString r =
      Parse("{(A,0.5),(G,0.5)}CT{(A,0.3),(G,0.7)}C", dna);
  const std::vector<ProbeOccurrence> occs = Occurrences(r, "AC");
  ASSERT_EQ(occs.size(), 2u);
  const double grouped = GroupedOccurrenceProbability(r, "AC", occs);
  EXPECT_NEAR(grouped, 1.0 - (1.0 - 0.5) * (1.0 - 0.3), 1e-12);
  Result<double> exact = ExactOccurrenceProbability(r, "AC", Starts(occs));
  ASSERT_TRUE(exact.ok());
  EXPECT_NEAR(grouped, *exact, 1e-12);
}

TEST(ProbeOverlapTest, PairwiseOverlapIsExact) {
  Alphabet dna = Alphabet::Dna();
  // Two overlapping occurrences of "CC" (the case the paper's literal
  // formula got wrong — see DESIGN.md).
  const UncertainString r =
      Parse("{(C,0.4),(G,0.6)}C{(C,0.5),(T,0.5)}", dna);
  const std::vector<ProbeOccurrence> occs = Occurrences(r, "CC");
  ASSERT_EQ(occs.size(), 2u);
  const double grouped = GroupedOccurrenceProbability(r, "CC", occs);
  Result<double> exact = ExactOccurrenceProbability(r, "CC", Starts(occs));
  ASSERT_TRUE(exact.ok());
  // Union = P(C at 0)·P(C at 1 certain... positions: r0 uncertain, r1='C',
  // r2 uncertain: occ0 = r0=C (0.4), occ1 = r2=C (0.5), independent.
  EXPECT_NEAR(*exact, 0.4 + 0.5 - 0.2, 1e-12);
  EXPECT_NEAR(grouped, *exact, 1e-12);
}

TEST(ProbeOverlapTest, IncompatibleSuffixPrefixHasEmptyIntersection) {
  Alphabet dna = Alphabet::Dna();
  // w = "AC": suffix "C" != prefix "A", so overlapping occurrences are
  // mutually exclusive and the union is the plain sum.
  const UncertainString r = Parse("{(A,0.5),(C,0.5)}{(A,0.3),(C,0.7)}C", dna);
  const std::vector<ProbeOccurrence> occs = Occurrences(r, "AC");
  ASSERT_EQ(occs.size(), 2u);  // starts 0 and 1, overlapping
  const double grouped = GroupedOccurrenceProbability(r, "AC", occs);
  Result<double> exact = ExactOccurrenceProbability(r, "AC", Starts(occs));
  ASSERT_TRUE(exact.ok());
  // occ0 = r0=A ∧ r1=C (0.35); occ1 = r1=A ∧ r2=C certain (0.3); disjoint
  // events (r1 can't be both C and A): union = 0.65.
  EXPECT_NEAR(*exact, 0.65, 1e-12);
  EXPECT_NEAR(grouped, *exact, 1e-12);
}

TEST(ProbeOverlapTest, PeriodicTripleOverlapStaysValidAndNearExact) {
  Alphabet dna = Alphabet::Dna();
  // w = "ACAC" with period 2 over a fully uncertain region: three chained
  // occurrences where A_0 ∩ A_2 ⊄ A_1 — the paper's chain recursion is a
  // heuristic here.  It must stay a valid probability and, on this input,
  // within a small absolute error of exact.
  std::string pattern = "ACAC";
  UncertainString::Builder b;
  for (int i = 0; i < 8; ++i) {
    b.AddUncertain({{'A', 0.5}, {'C', 0.5}});
  }
  const UncertainString r = b.Build().value();
  const std::vector<ProbeOccurrence> occs = Occurrences(r, pattern);
  ASSERT_EQ(occs.size(), 5u);
  const double grouped = GroupedOccurrenceProbability(r, pattern, occs);
  Result<double> exact = ExactOccurrenceProbability(r, pattern, Starts(occs));
  ASSERT_TRUE(exact.ok());
  EXPECT_GE(grouped, 0.0);
  EXPECT_LE(grouped, 1.0);
  EXPECT_NEAR(grouped, *exact, 0.05);
}

TEST(ProbeOverlapTest, RandomizedGroupedStaysNearExact) {
  // Across random uncertain strings and patterns, the grouped recursion
  // must stay a valid probability and track the exact union closely (it is
  // exact except for >= 3 chained occurrences with conflicting periods).
  Alphabet dna = Alphabet::Dna();
  Rng rng(57);
  double worst = 0.0;
  int evaluated = 0;
  for (int trial = 0; trial < 900; ++trial) {
    testing::RandomStringOptions opt;
    opt.min_length = 4;
    opt.max_length = 10;
    opt.theta = 0.6;
    opt.max_alternatives = 2;
    const UncertainString r = testing::RandomUncertainString(dna, opt, rng);
    const int q = static_cast<int>(rng.UniformInt(2, 4));
    // Patterns with self-overlap potential: draw from {A,C} only.
    std::string w;
    for (int i = 0; i < q; ++i) w.push_back(rng.Bernoulli(0.5) ? 'A' : 'C');
    const std::vector<ProbeOccurrence> occs = Occurrences(r, w);
    if (occs.empty()) continue;
    ++evaluated;
    const double grouped = GroupedOccurrenceProbability(r, w, occs);
    Result<double> exact = ExactOccurrenceProbability(r, w, Starts(occs));
    ASSERT_TRUE(exact.ok());
    EXPECT_GE(grouped, -1e-12);
    EXPECT_LE(grouped, 1.0 + 1e-12);
    worst = std::max(worst, std::fabs(grouped - *exact));
  }
  EXPECT_GT(evaluated, 200);
  EXPECT_LT(worst, 0.12) << "grouped recursion drifted too far from exact";
}

}  // namespace
}  // namespace ujoin
