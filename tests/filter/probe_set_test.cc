#include "filter/probe_set.h"

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "testing/test_util.h"
#include "text/alphabet.h"
#include "text/possible_worlds.h"
#include "util/rng.h"

namespace ujoin {
namespace {

std::map<std::string, double> ToMap(const std::vector<ProbeSubstring>& set) {
  std::map<std::string, double> out;
  for (const ProbeSubstring& p : set) out[p.text] = p.prob;
  return out;
}

TEST(ProbeSetTest, DeterministicProbeSetListsWindowSubstrings) {
  // Table 1: r = GGATCC, q = 2, k = 1, m = 3, positional windows.
  const UncertainString r = UncertainString::FromDeterministic("GGATCC");
  const std::vector<Segment> segments = EvenPartition(6, 3);
  ProbeSetOptions opt;

  auto set1 = BuildProbeSet(r, 6, segments[0], 1, opt);
  ASSERT_TRUE(set1.ok());
  EXPECT_EQ(ToMap(*set1), (std::map<std::string, double>{{"GA", 1.0},
                                                         {"GG", 1.0}}));
  auto set2 = BuildProbeSet(r, 6, segments[1], 1, opt);
  ASSERT_TRUE(set2.ok());
  EXPECT_EQ(ToMap(*set2), (std::map<std::string, double>{
                              {"AT", 1.0}, {"GA", 1.0}, {"TC", 1.0}}));
  auto set3 = BuildProbeSet(r, 6, segments[2], 1, opt);
  ASSERT_TRUE(set3.ok());
  EXPECT_EQ(ToMap(*set3), (std::map<std::string, double>{{"CC", 1.0},
                                                         {"TC", 1.0}}));
}

TEST(ProbeSetTest, Section32OverlapGroupingExample) {
  // R = A{(A,0.8),(C,0.2)}AATT, q = 3, k = 1, segment S^1 at position 0:
  // the naive sum double-counts AAA (1.32); the grouped set is
  // {(AAA, 0.8), (ACA, 0.2), (CAA, 0.2)}.
  Alphabet dna = Alphabet::Dna();
  Result<UncertainString> r =
      UncertainString::Parse("A{(A,0.8),(C,0.2)}AATT", dna);
  ASSERT_TRUE(r.ok());
  const Segment seg{0, 3};
  Result<std::vector<ProbeSubstring>> set =
      BuildProbeSet(*r, 6, seg, 1, ProbeSetOptions{});
  ASSERT_TRUE(set.ok());
  const std::map<std::string, double> got = ToMap(*set);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_NEAR(got.at("AAA"), 0.8, 1e-12);
  EXPECT_NEAR(got.at("ACA"), 0.2, 1e-12);
  EXPECT_NEAR(got.at("CAA"), 0.2, 1e-12);
}

TEST(ProbeSetTest, GroupedMatchesExactOnPaperExample) {
  Alphabet dna = Alphabet::Dna();
  Result<UncertainString> r =
      UncertainString::Parse("A{(A,0.8),(C,0.2)}AATT", dna);
  ASSERT_TRUE(r.ok());
  ProbeSetOptions exact_opt;
  exact_opt.exact_union_probability = true;
  Result<std::vector<ProbeSubstring>> exact =
      BuildProbeSet(*r, 6, Segment{0, 3}, 1, exact_opt);
  ASSERT_TRUE(exact.ok());
  EXPECT_NEAR(ToMap(*exact).at("AAA"), 0.8, 1e-12);
}

TEST(ProbeSetTest, ExactOccurrenceProbabilityViaEnumeration) {
  Alphabet dna = Alphabet::Dna();
  Result<UncertainString> r =
      UncertainString::Parse("{(A,0.5),(C,0.5)}A{(A,0.5),(C,0.5)}A", dna);
  ASSERT_TRUE(r.ok());
  // Pr("AA" occurs at start 0 or 2) = Pr(R0=A) + Pr(R2=A) - Pr(both) with
  // independence = 0.5 + 0.5 - 0.25 = 0.75.
  const std::vector<int> starts = {0, 2};
  Result<double> p = ExactOccurrenceProbability(*r, "AA", starts);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(*p, 0.75, 1e-12);
}

TEST(ProbeSetTest, GroupedProbabilityAgainstBruteForceUnion) {
  // Randomized: the paper's grouped recursion versus exact enumeration.
  // Occurrences that do not overlap are exact; overlapping suffix-prefix
  // cases follow the paper's approximation, so we compare against exact
  // union probabilities and record agreement within a loose tolerance while
  // asserting exactness for the non-overlapping decomposition.
  Alphabet dna = Alphabet::Dna();
  Rng rng(55);
  int exact_cases = 0;
  for (int trial = 0; trial < 400; ++trial) {
    testing::RandomStringOptions opt;
    opt.min_length = 4;
    opt.max_length = 9;
    opt.theta = 0.4;
    opt.max_alternatives = 2;
    const UncertainString r = testing::RandomUncertainString(dna, opt, rng);
    const int q = static_cast<int>(rng.UniformInt(2, 3));
    const std::string w = testing::RandomString(dna, q, rng);
    // Candidate occurrence starts: every position where w can occur.
    std::vector<ProbeOccurrence> occurrences;
    std::vector<int> starts;
    for (int start = 0; start + q <= r.length(); ++start) {
      const double p = MatchProbabilityAt(w, r, start);
      if (p > 0.0) {
        occurrences.push_back(ProbeOccurrence{start, p});
        starts.push_back(start);
      }
    }
    if (occurrences.empty()) continue;
    Result<double> exact = ExactOccurrenceProbability(r, w, starts);
    ASSERT_TRUE(exact.ok());
    const double grouped =
        GroupedOccurrenceProbability(r, w, occurrences);
    // Always a valid probability.
    EXPECT_GE(grouped, -1e-12);
    EXPECT_LE(grouped, 1.0 + 1e-12);
    // Check exactness when no two occurrences overlap.
    bool overlapping = false;
    for (size_t i = 1; i < starts.size(); ++i) {
      overlapping = overlapping || starts[i] < starts[i - 1] + q;
    }
    if (!overlapping) {
      EXPECT_NEAR(grouped, *exact, 1e-9);
      ++exact_cases;
    }
  }
  EXPECT_GT(exact_cases, 30);
}

TEST(ProbeSetTest, EmptyWindowYieldsEmptySet) {
  const UncertainString r = UncertainString::FromDeterministic("ACGT");
  // |r| - |s| = 4 - 10 exceeds k = 2: nothing to probe.
  Result<std::vector<ProbeSubstring>> set =
      BuildProbeSet(r, 10, Segment{0, 3}, 2, ProbeSetOptions{});
  ASSERT_TRUE(set.ok());
  EXPECT_TRUE(set->empty());
}

TEST(ProbeSetTest, InstanceCapReturnsResourceExhausted) {
  UncertainString::Builder b;
  for (int i = 0; i < 10; ++i) b.AddUncertain({{'A', 0.5}, {'C', 0.5}});
  Result<UncertainString> r = b.Build();
  ASSERT_TRUE(r.ok());
  ProbeSetOptions opt;
  opt.max_instances_per_window = 8;
  Result<std::vector<ProbeSubstring>> set =
      BuildProbeSet(*r, 10, Segment{0, 5}, 1, opt);
  ASSERT_FALSE(set.ok());
  EXPECT_EQ(set.status().code(), StatusCode::kResourceExhausted);
}

TEST(ProbeSetTest, ProbabilitiesArePositiveAndSortedUnique) {
  Alphabet dna = Alphabet::Dna();
  Rng rng(56);
  testing::RandomStringOptions opt;
  opt.min_length = 6;
  opt.max_length = 12;
  for (int trial = 0; trial < 100; ++trial) {
    const UncertainString r = testing::RandomUncertainString(dna, opt, rng);
    Result<std::vector<ProbeSubstring>> set = BuildProbeSet(
        r, r.length(), Segment{2, 3}, 2, ProbeSetOptions{});
    ASSERT_TRUE(set.ok());
    for (size_t i = 0; i < set->size(); ++i) {
      EXPECT_GT((*set)[i].prob, 0.0);
      EXPECT_LE((*set)[i].prob, 1.0 + 1e-12);
      if (i > 0) {
        EXPECT_LT((*set)[i - 1].text, (*set)[i].text);
      }
    }
  }
}

}  // namespace
}  // namespace ujoin
