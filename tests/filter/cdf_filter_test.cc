#include "filter/cdf_filter.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"
#include "text/alphabet.h"
#include "text/edit_distance.h"
#include "util/rng.h"

namespace ujoin {
namespace {

UncertainString Parse(const char* text, const Alphabet& alphabet) {
  Result<UncertainString> s = UncertainString::Parse(text, alphabet);
  UJOIN_CHECK(s.ok());
  return std::move(s).value();
}

TEST(CdfFilterTest, DeterministicPairBoundsAreExact) {
  Alphabet names = Alphabet::Names();
  Rng rng(61);
  for (int trial = 0; trial < 200; ++trial) {
    const std::string a = testing::RandomString(
        names, static_cast<int>(rng.UniformInt(0, 10)), rng);
    const std::string b = testing::RandomEdits(a, names, 4, rng);
    const int k = static_cast<int>(rng.UniformInt(0, 4));
    const CdfBounds bounds =
        ComputeCdfBounds(UncertainString::FromDeterministic(a),
                         UncertainString::FromDeterministic(b), k);
    const int ed = EditDistance(a, b);
    for (int j = 0; j <= k; ++j) {
      const double exact = ed <= j ? 1.0 : 0.0;
      EXPECT_DOUBLE_EQ(bounds.lower[static_cast<size_t>(j)], exact)
          << "a=" << a << " b=" << b << " j=" << j;
      EXPECT_DOUBLE_EQ(bounds.upper[static_cast<size_t>(j)], exact)
          << "a=" << a << " b=" << b << " j=" << j;
    }
  }
}

TEST(CdfFilterTest, BoundsBracketExactProbabilityOnRandomPairs) {
  // Theorem 4: L[j] <= Pr(ed(R,S) <= j) <= U[j] on random uncertain pairs,
  // verified against brute-force world enumeration.
  Alphabet dna = Alphabet::Dna();
  Rng rng(62);
  testing::RandomStringOptions opt;
  opt.min_length = 1;
  opt.max_length = 8;
  opt.theta = 0.4;
  int informative = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const UncertainString r = testing::RandomUncertainString(dna, opt, rng);
    const UncertainString s = testing::RandomUncertainString(dna, opt, rng);
    const int k = static_cast<int>(rng.UniformInt(0, 3));
    const CdfBounds bounds = ComputeCdfBounds(r, s, k);
    for (int j = 0; j <= k; ++j) {
      const double truth = testing::BruteForceMatchProbability(r, s, j);
      EXPECT_LE(bounds.lower[static_cast<size_t>(j)], truth + 1e-9)
          << "R=" << r.ToString() << " S=" << s.ToString() << " j=" << j;
      EXPECT_GE(bounds.upper[static_cast<size_t>(j)], truth - 1e-9)
          << "R=" << r.ToString() << " S=" << s.ToString() << " j=" << j;
      informative += bounds.lower[static_cast<size_t>(j)] > 1e-9;
      informative += bounds.upper[static_cast<size_t>(j)] < 1.0 - 1e-9;
    }
  }
  EXPECT_GT(informative, 200);  // the bounds must often carry signal
}

TEST(CdfFilterTest, PaperFootnoteCounterexamplesHold) {
  // Footnote 1 shows the bounds of Ge & Li [6] are invalid on these inputs;
  // Theorem 4's corrected bounds must bracket the exact probability.
  Alphabet ascii =
      Alphabet::Create("ACDGIRST").value();  // covers both examples
  {
    // (a) old lower-bound violation: r = ACC,
    //     S = A{(C,0.7),(G,0.1),(T,0.1)}... + implicit 4th alternative mass.
    // The footnote's pdf sums to 0.9; we renormalize the remainder onto a
    // distinct symbol (D) to keep a valid distribution.
    const UncertainString r = UncertainString::FromDeterministic("ACC");
    const UncertainString s =
        Parse("A{(C,0.7),(G,0.1),(T,0.1),(D,0.1)}", ascii);
    const int k = 1;
    const CdfBounds bounds = ComputeCdfBounds(r, s, k);
    const double truth = testing::BruteForceMatchProbability(r, s, k);
    EXPECT_LE(bounds.lower[1], truth + 1e-9);
    EXPECT_GE(bounds.upper[1], truth - 1e-9);
  }
  {
    // (b) old upper-bound violation: r = DISC,
    //     S = DI{(C,0.4),(S,0.5),(R,0.1)}.
    const UncertainString r = UncertainString::FromDeterministic("DISC");
    const UncertainString s = Parse("DI{(C,0.4),(S,0.5),(R,0.1)}", ascii);
    const int k = 1;
    const CdfBounds bounds = ComputeCdfBounds(r, s, k);
    const double truth = testing::BruteForceMatchProbability(r, s, k);
    EXPECT_LE(bounds.lower[1], truth + 1e-9);
    EXPECT_GE(bounds.upper[1], truth - 1e-9);
  }
}

TEST(CdfFilterTest, LengthGapBeyondKGivesZeroBounds) {
  const UncertainString r = UncertainString::FromDeterministic("AAAAAAA");
  const UncertainString s = UncertainString::FromDeterministic("AA");
  const CdfBounds bounds = ComputeCdfBounds(r, s, 2);
  for (int j = 0; j <= 2; ++j) {
    EXPECT_DOUBLE_EQ(bounds.lower[static_cast<size_t>(j)], 0.0);
    EXPECT_DOUBLE_EQ(bounds.upper[static_cast<size_t>(j)], 0.0);
  }
}

TEST(CdfFilterTest, EmptyStringsAreDistanceZero) {
  const CdfBounds bounds =
      ComputeCdfBounds(UncertainString(), UncertainString(), 1);
  EXPECT_DOUBLE_EQ(bounds.lower[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds.upper[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds.lower[1], 1.0);
  EXPECT_DOUBLE_EQ(bounds.upper[1], 1.0);
}

TEST(CdfFilterTest, EmptyVersusNonEmptyCountsInsertions) {
  const UncertainString r = UncertainString::FromDeterministic("AC");
  const CdfBounds bounds = ComputeCdfBounds(r, UncertainString(), 3);
  // ed = 2 exactly.
  EXPECT_DOUBLE_EQ(bounds.lower[1], 0.0);
  EXPECT_DOUBLE_EQ(bounds.upper[1], 0.0);
  EXPECT_DOUBLE_EQ(bounds.lower[2], 1.0);
  EXPECT_DOUBLE_EQ(bounds.upper[2], 1.0);
  EXPECT_DOUBLE_EQ(bounds.lower[3], 1.0);
}

TEST(CdfFilterTest, DecisionsFollowBounds) {
  CdfBounds bounds;
  bounds.lower = {0.0, 0.3};
  bounds.upper = {0.1, 0.8};
  EXPECT_EQ(DecideWithCdfBounds(bounds, 1, 0.25), CdfDecision::kAccept);
  EXPECT_EQ(DecideWithCdfBounds(bounds, 1, 0.8), CdfDecision::kReject);
  EXPECT_EQ(DecideWithCdfBounds(bounds, 1, 0.5), CdfDecision::kUndecided);
}

TEST(CdfFilterTest, MonotoneInJ) {
  Alphabet dna = Alphabet::Dna();
  Rng rng(63);
  testing::RandomStringOptions opt;
  opt.theta = 0.5;
  for (int trial = 0; trial < 100; ++trial) {
    const UncertainString r = testing::RandomUncertainString(dna, opt, rng);
    const UncertainString s = testing::RandomUncertainString(dna, opt, rng);
    const int k = 3;
    const CdfBounds bounds = ComputeCdfBounds(r, s, k);
    for (int j = 1; j <= k; ++j) {
      EXPECT_GE(bounds.upper[static_cast<size_t>(j)],
                bounds.upper[static_cast<size_t>(j - 1)] - 1e-12);
    }
  }
}

TEST(CdfFilterTest, AcceptExampleIdenticalCertainPrefix) {
  Alphabet dna = Alphabet::Dna();
  // Identical strings with mild uncertainty: probability of ed <= 1 is high,
  // the lower bound should accept at small τ.
  const UncertainString s = Parse("AC{(G,0.9),(T,0.1)}TACG", dna);
  const CdfFilterOutcome out = EvaluateCdfFilter(s, s, 1, 0.05);
  EXPECT_EQ(out.decision, CdfDecision::kAccept);
}

}  // namespace
}  // namespace ujoin
